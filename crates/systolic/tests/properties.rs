//! Property-based tests of the scheduling and cycle-model invariants.

use owlp_format::decode::DecodedOperand;
use owlp_format::{encode_tensor, Bf16, BiasDecoder, ExponentWindow};
use owlp_systolic::cycle_model::{cycles_with_overhead, utilization};
use owlp_systolic::schedule::{outlier_mask, OutlierSchedule};
use owlp_systolic::ArrayConfig;
use proptest::prelude::*;

/// A decoded segment with a controlled outlier pattern.
fn segment(outlier_positions: &[usize], len: usize) -> Vec<DecodedOperand> {
    let w = ExponentWindow::owlp(124);
    let dec = BiasDecoder::new(124);
    (0..len)
        .map(|i| {
            let x = if outlier_positions.contains(&i) {
                Bf16::from_f32(1.0e25 + i as f32)
            } else {
                Bf16::from_f32(1.0 + i as f32 / 64.0)
            };
            dec.decode_bf16(x, w)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Splitting invariants: every sub-row respects the path budget, every
    /// position is non-zero in exactly one sub-row, and the original value
    /// lives there.
    #[test]
    fn split_invariants(
        len in 1usize..40,
        paths in 1usize..5,
        outlier_bits in any::<u64>(),
    ) {
        let positions: Vec<usize> =
            (0..len.min(64)).filter(|i| outlier_bits & (1 << i) != 0).collect();
        let seg = segment(&positions, len);
        let sched = OutlierSchedule::new(len.max(1), paths, paths);
        let subs = sched.split_activation_row(&seg);
        // Budget.
        for sub in &subs {
            prop_assert!(sub.iter().filter(|o| o.tag).count() <= paths);
            prop_assert_eq!(sub.len(), seg.len());
        }
        // Minimality: exactly ceil(outliers / paths) sub-rows (min 1).
        let expected = positions.len().div_ceil(paths).max(1);
        prop_assert_eq!(subs.len(), expected);
        // Partition-of-support.
        for i in 0..len {
            let holders: Vec<_> = subs.iter().filter(|s| !s[i].is_zero()).collect();
            if seg[i].is_zero() {
                prop_assert!(holders.is_empty());
            } else {
                prop_assert_eq!(holders.len(), 1);
                prop_assert_eq!(holders[0][i], seg[i]);
            }
        }
    }

    /// Ratio bookkeeping: `ratio == (base + extra) / base` always, and more
    /// paths never increase the overhead.
    #[test]
    fn stats_ratio_consistency(
        m in 1usize..20,
        k in 1usize..100,
        density_pct in 0usize..20,
        seed in 0u64..10_000,
    ) {
        let mut state = seed | 1;
        let mask: Vec<bool> = (0..m * k)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % 100 < density_pct as u64
            })
            .collect();
        let mut prev = f64::INFINITY;
        for paths in [1usize, 2, 4, 8] {
            let s = OutlierSchedule::new(32, paths, paths).activation_stats(&mask, m, k);
            prop_assert!(
                (s.ratio - (s.base_units + s.extra_units) as f64 / s.base_units as f64).abs()
                    < 1e-12
            );
            prop_assert!(s.ratio <= prev + 1e-12);
            prev = s.ratio;
        }
    }

    /// Weight stats on a transposed mask equal activation stats on the
    /// original (the two paths share their counting logic).
    #[test]
    fn weight_stats_transpose_duality(
        rows in 1usize..12,
        cols in 1usize..12,
        bits in any::<u128>(),
    ) {
        let mask: Vec<bool> =
            (0..rows * cols).map(|i| bits & (1u128 << (i % 128)) != 0).collect();
        let mut transposed = vec![false; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                transposed[c * rows + r] = mask[r * cols + c];
            }
        }
        let sched = OutlierSchedule::new(8, 2, 2);
        // activation stats treat rows as units over K=cols;
        // weight stats treat columns as units over K=rows.
        let a = sched.activation_stats(&mask, rows, cols);
        let w = sched.weight_stats(&transposed, cols, rows);
        prop_assert_eq!(a.extra_units, w.extra_units);
        prop_assert_eq!(a.base_units, w.base_units);
    }

    /// Eq. (3) monotonicity: cycles never decrease when any dimension grows.
    #[test]
    fn eq3_is_monotone(
        m in 1usize..64,
        k in 1usize..256,
        n in 1usize..64,
    ) {
        let cfg = ArrayConfig::OWLP_PAPER;
        let base = cycles_with_overhead(&cfg, m, k, n, 1.0, 1.0).total_parallel;
        prop_assert!(cycles_with_overhead(&cfg, m + 1, k, n, 1.0, 1.0).total_parallel >= base);
        prop_assert!(cycles_with_overhead(&cfg, m, k + 1, n, 1.0, 1.0).total_parallel >= base);
        prop_assert!(cycles_with_overhead(&cfg, m, k, n + 1, 1.0, 1.0).total_parallel >= base);
    }

    /// Utilisation never exceeds 1 and improves with M.
    #[test]
    fn utilization_bounds(k in 1usize..512, n in 1usize..512) {
        let cfg = ArrayConfig::BASELINE_PAPER;
        let u1 = utilization(&cfg, 1, k, n);
        let u512 = utilization(&cfg, 512, k, n);
        prop_assert!((0.0..=1.0).contains(&u1));
        prop_assert!(u512 <= 1.0);
        prop_assert!(u512 >= u1);
    }

    /// The mask derived from an encoded tensor marks exactly the nonzero
    /// out-of-window values.
    #[test]
    fn outlier_mask_matches_window_membership(
        values in prop::collection::vec(
            (0u16..0x80, 1u16..255, any::<bool>())
                .prop_map(|(f, e, s)| Bf16::from_bits(((s as u16) << 15) | (e << 7) | f)),
            1..100,
        ),
    ) {
        let w = ExponentWindow::owlp(120);
        let enc = encode_tensor(&values, Some(w)).expect("finite");
        let mask = outlier_mask(&enc);
        for (x, m) in values.iter().zip(&mask) {
            let expected = !w.contains(*x) && !x.is_zero();
            prop_assert_eq!(*m, expected, "value {:?}", x);
        }
    }
}
