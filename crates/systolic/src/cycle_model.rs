//! Closed-form weight-stationary cycle model (paper Eq. 3 and Eq. 4).
//!
//! For operand matrices `(M, K) × (K, N)` on an `(R, C)` weight-stationary
//! array, the paper (following ScaleSIM) gives
//!
//! ```text
//! T = (2R + C + M − 2) × ⌈N / C⌉ × ⌈K / R⌉                      (Eq. 3)
//! T = (2R + C + M·r_a − 2) × ⌈N·r_w / C⌉ × ⌈K / R⌉              (Eq. 4)
//! ```
//!
//! where `r_a`/`r_w` account for the zero-insertion cycles of outlier
//! scheduling. For OwL-P, `R` in the fill/drain term is the *physical* PE
//! row count while the K-coverage per fold is `rows × lanes`; with
//! `lanes == 1` the formulas reduce exactly to the paper's.

use crate::config::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Cycle count with its constituents, for reporting and cross-validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Cycles of one fold (fill + stream + drain): `2R + C + M' − 2`.
    pub per_fold: u64,
    /// Number of weight folds: `⌈N' / C⌉ × ⌈K / k_tile⌉`.
    pub folds: u64,
    /// Effective (zero-inserted) row count `M'` streamed per fold.
    pub effective_m: u64,
    /// Effective (zero-inserted) column count `N'`.
    pub effective_n: u64,
    /// Total cycles on a single array: `per_fold × folds`.
    pub total: u64,
    /// Total cycles with folds spread over `num_arrays` arrays.
    pub total_parallel: u64,
}

impl CycleBreakdown {
    /// Wall-clock seconds at the configured frequency.
    pub fn seconds(&self, clock_mhz: f64) -> f64 {
        self.total_parallel as f64 / (clock_mhz * 1.0e6)
    }
}

/// Eq. (3): cycles without outlier-scheduling overhead.
///
/// `m`, `k`, `n` are the GEMM dimensions; zero-sized GEMMs cost zero cycles.
pub fn cycles_eq3(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> u64 {
    cycles_with_overhead(cfg, m, k, n, 1.0, 1.0).total_parallel
}

/// Eq. (4): cycles with the activation/weight scheduling overheads
/// `r_a ≥ 1`, `r_w ≥ 1` applied.
///
/// # Panics
///
/// Panics if `r_a < 1` or `r_w < 1` (the overheads only add cycles).
pub fn cycles_eq4(cfg: &ArrayConfig, m: usize, k: usize, n: usize, r_a: f64, r_w: f64) -> u64 {
    cycles_with_overhead(cfg, m, k, n, r_a, r_w).total_parallel
}

/// Full breakdown of Eq. (4) (Eq. (3) when `r_a = r_w = 1`).
///
/// # Panics
///
/// Panics if `r_a < 1` or `r_w < 1`.
pub fn cycles_with_overhead(
    cfg: &ArrayConfig,
    m: usize,
    k: usize,
    n: usize,
    r_a: f64,
    r_w: f64,
) -> CycleBreakdown {
    assert!(r_a >= 1.0, "r_a must be ≥ 1, got {r_a}");
    assert!(r_w >= 1.0, "r_w must be ≥ 1, got {r_w}");
    if m == 0 || k == 0 || n == 0 {
        return CycleBreakdown {
            per_fold: 0,
            folds: 0,
            effective_m: 0,
            effective_n: 0,
            total: 0,
            total_parallel: 0,
        };
    }
    let effective_m = (m as f64 * r_a).ceil() as u64;
    let effective_n = (n as f64 * r_w).ceil() as u64;
    let per_fold = (2 * cfg.rows + cfg.cols) as u64 + effective_m - 2;
    let folds = (effective_n).div_ceil(cfg.cols as u64) * (k as u64).div_ceil(cfg.k_tile() as u64);
    let total = per_fold * folds;
    let total_parallel = per_fold * folds.div_ceil(cfg.num_arrays as u64);
    CycleBreakdown {
        per_fold,
        folds,
        effective_m,
        effective_n,
        total,
        total_parallel,
    }
}

/// Cycle count under an **output-stationary** dataflow, for comparison
/// with the paper's weight-stationary choice: each `R×C` PE tile holds an
/// output block while the reduction dimension streams through at `lanes`
/// elements per PE per cycle:
///
/// ```text
/// T_os = (⌈K / lanes⌉ + R + C − 2) × ⌈M / R⌉ × ⌈N / C⌉
/// ```
///
/// OwL-P's outlier bypass does not map onto OS — outlier products would
/// need per-PE storage for a whole K pass instead of riding the psum
/// wavefront — so this serves as an architectural ablation only (it is why
/// the paper's design is weight-stationary).
pub fn cycles_os(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> u64 {
    if m == 0 || k == 0 || n == 0 {
        return 0;
    }
    let per_tile = (k as u64).div_ceil(cfg.lanes as u64) + (cfg.rows + cfg.cols) as u64 - 2;
    let tiles = (m as u64).div_ceil(cfg.rows as u64) * (n as u64).div_ceil(cfg.cols as u64);
    per_tile * tiles.div_ceil(cfg.num_arrays as u64)
}

/// MAC-array utilisation of a GEMM under Eq. (3): useful MAC operations
/// divided by available MAC-cycles. Exposes why small-`M` decode phases are
/// memory/fill-bound.
pub fn utilization(cfg: &ArrayConfig, m: usize, k: usize, n: usize) -> f64 {
    if m == 0 || k == 0 || n == 0 {
        return 0.0;
    }
    let b = cycles_with_overhead(cfg, m, k, n, 1.0, 1.0);
    let useful = m as u64 * k as u64 * n as u64;
    let available = b.total_parallel * cfg.total_macs() as u64;
    useful as f64 / available as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq3_matches_paper_formula_for_unit_lane() {
        // With lanes = 1, the formula must be literally Eq. (3).
        let cfg = ArrayConfig::small(32, 32, 1);
        let (m, k, n) = (512, 768, 768);
        let expected =
            (2 * 32 + 32 + 512 - 2) as u64 * (768u64.div_ceil(32)) * (768u64.div_ceil(32));
        assert_eq!(cycles_eq3(&cfg, m, k, n), expected);
    }

    #[test]
    fn eq4_reduces_to_eq3_without_overhead() {
        let cfg = ArrayConfig::OWLP_PAPER;
        assert_eq!(
            cycles_eq4(&cfg, 100, 200, 300, 1.0, 1.0),
            cycles_eq3(&cfg, 100, 200, 300)
        );
    }

    #[test]
    fn overheads_increase_cycles_monotonically() {
        let cfg = ArrayConfig::OWLP_PAPER;
        let base = cycles_eq4(&cfg, 512, 768, 768, 1.0, 1.0);
        let with_ra = cycles_eq4(&cfg, 512, 768, 768, 1.3, 1.0);
        let with_rw = cycles_eq4(&cfg, 512, 768, 768, 1.3, 1.1);
        assert!(with_ra > base);
        assert!(with_rw >= with_ra);
    }

    #[test]
    fn zero_dimension_costs_nothing() {
        let cfg = ArrayConfig::OWLP_PAPER;
        assert_eq!(cycles_eq3(&cfg, 0, 10, 10), 0);
        assert_eq!(cycles_eq3(&cfg, 10, 0, 10), 0);
        assert_eq!(cycles_eq3(&cfg, 10, 10, 0), 0);
    }

    #[test]
    fn owlp_triples_compute_bound_throughput() {
        // Same fold count per array shape, but 3× the arrays and a much
        // smaller fill overhead: compute-bound cycles drop by ≥ 3×.
        let owlp = ArrayConfig::OWLP_PAPER;
        let base = ArrayConfig::BASELINE_PAPER;
        let b_owlp = cycles_with_overhead(&owlp, 512, 960, 960, 1.0, 1.0);
        let b_base = cycles_with_overhead(&base, 512, 960, 960, 1.0, 1.0);
        assert_eq!(b_owlp.folds, b_base.folds);
        let ratio = b_base.total_parallel as f64 / b_owlp.total_parallel as f64;
        assert!(ratio >= 3.0, "compute-bound speedup {ratio}");
    }

    #[test]
    fn parallel_arrays_divide_folds() {
        let mut cfg = ArrayConfig::OWLP_PAPER;
        cfg.num_arrays = 1;
        let single = cycles_with_overhead(&cfg, 64, 96 * 16, 32 * 16, 1.0, 1.0);
        cfg.num_arrays = 16;
        let sixteen = cycles_with_overhead(&cfg, 64, 96 * 16, 32 * 16, 1.0, 1.0);
        assert_eq!(single.total, sixteen.total);
        assert_eq!(sixteen.total_parallel * 16, single.total);
    }

    #[test]
    fn decode_phase_has_low_utilization() {
        // M = 1 (single-token decode): utilisation is tiny, confirming the
        // memory-bound regime the compression targets.
        let cfg = ArrayConfig::BASELINE_PAPER;
        let u_decode = utilization(&cfg, 1, 4096, 4096);
        let u_prefill = utilization(&cfg, 512, 4096, 4096);
        assert!(u_decode < 0.05, "decode utilisation {u_decode}");
        assert!(u_prefill > 10.0 * u_decode);
    }

    #[test]
    fn seconds_conversion() {
        let cfg = ArrayConfig::OWLP_PAPER;
        let b = cycles_with_overhead(&cfg, 512, 768, 768, 1.0, 1.0);
        let s = b.seconds(cfg.clock_mhz);
        assert!((s - b.total_parallel as f64 / 500.0e6).abs() < 1e-15);
    }

    #[test]
    fn output_stationary_comparison() {
        let cfg = ArrayConfig::OWLP_PAPER;
        // On pure cycle counts the two dataflows are comparable: OS
        // amortises long K per output tile (it wins the fill-overhead game
        // on small-M decode shapes), WS is slightly ahead on prefill. The
        // decisive argument for WS in OwL-P is *architectural*, not cycles:
        // the outlier bypass rides the WS psum wavefront, and OS would need
        // per-PE FP accumulation plus outlier storage across the whole K
        // pass — exactly the hardware the paper removes.
        let ws_prefill = cycles_eq3(&cfg, 4096, 4096, 12288);
        let os_prefill = cycles_os(&cfg, 4096, 4096, 12288);
        assert!(
            ws_prefill <= os_prefill,
            "ws {ws_prefill} vs os {os_prefill}"
        );
        let ws_decode = cycles_eq3(&cfg, 32, 4096, 4096);
        let os_decode = cycles_os(&cfg, 32, 4096, 4096);
        assert!(os_decode < ws_decode, "os {os_decode} vs ws {ws_decode}");
        // Both within 2× of each other in either regime.
        assert!(ws_decode < 2 * os_decode);
        assert!(os_prefill < 2 * ws_prefill);
        // Zero shapes cost nothing; K scaling is monotone.
        assert_eq!(cycles_os(&cfg, 0, 4, 4), 0);
        assert!(cycles_os(&cfg, 64, 2048, 512) < cycles_os(&cfg, 64, 4096, 512));
    }

    #[test]
    fn effective_dimensions_round_up() {
        let cfg = ArrayConfig::OWLP_PAPER;
        let b = cycles_with_overhead(&cfg, 10, 96, 10, 1.25, 1.05);
        assert_eq!(b.effective_m, 13); // ceil(12.5)
        assert_eq!(b.effective_n, 11); // ceil(10.5)
    }
}
