//! Event-driven cycle-accurate array simulation.
//!
//! An independent implementation of the weight-stationary dataflow used to
//! validate the closed-form cycle model and the scheduler's no-conflict
//! guarantee:
//!
//! * weights are preloaded per fold; activation rows stream through skewed;
//! * every PE's products are evaluated with the real `owlp-arith` datapath;
//! * outlier results of one input row form one wavefront travelling down
//!   the column — the simulator tracks the wavefront occupancy at every PE
//!   boundary and flags any excess over the outlier-register capacity;
//! * outputs accumulate exactly across K-folds and convert to FP32 once,
//!   so the simulated array reproduces `exact_gemm` bit-for-bit.

use crate::config::ArrayConfig;
use crate::schedule::OutlierSchedule;
use owlp_arith::kulisch::KulischAcc;
use owlp_arith::microkernel;
use owlp_arith::pe::{PeConfig, ProcessingElement};
use owlp_arith::window::WindowAcc;
use owlp_arith::ArithError;
use owlp_format::decode::DecodedOperand;
use owlp_format::{encode_tensor, Bf16};
use serde::{Deserialize, Serialize};

/// Whether a physical stream (activation row or weight column) carries no
/// tagged outliers — computed once per stream when the K-tile is built, so
/// the per-wavefront fast-path test is two boolean loads.
fn stream_is_clean(ops: &[DecodedOperand]) -> bool {
    ops.iter().all(|o| !o.tag)
}

/// A physical stream ready to meet a wavefront: logical index, decoded
/// operands, the pre-folded signed sval plane ([`DecodedOperand::sval`],
/// consumed by the clean-pair microkernel), and the cleanliness flag.
struct Stream {
    idx: usize,
    ops: Vec<DecodedOperand>,
    sval: Vec<i16>,
    clean: bool,
}

impl Stream {
    fn new(idx: usize, ops: Vec<DecodedOperand>) -> Self {
        let sval = ops.iter().map(|o| o.sval()).collect();
        let clean = stream_is_clean(&ops);
        Stream {
            idx,
            ops,
            sval,
            clean,
        }
    }
}

/// Outcome of an event-driven simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSimResult {
    /// Total cycles, accumulated fold by fold (`2R + C + M_fold − 2` each).
    pub cycles: u64,
    /// Row-major `m×n` FP32 outputs.
    pub outputs: Vec<f32>,
    /// Largest outlier-wavefront occupancy observed at any column bottom.
    pub max_wavefront_occupancy: usize,
    /// Whether every wavefront stayed within the outlier-path capacity.
    pub conflict_free: bool,
    /// Effective activation rows streamed (across folds), for `r_a`
    /// cross-checks.
    pub streamed_rows: u64,
    /// Effective physical weight columns (across K-tiles), for `r_w`
    /// cross-checks.
    pub physical_columns: u64,
    /// Cycles of each fold in issue order (`Σ fold_cycles == cycles`).
    /// This is the phase-coupling hook for the `owlp-mem` co-simulator:
    /// each fold is one compute group whose makespan races its tile fetch.
    pub fold_cycles: Vec<u64>,
}

/// Simulates the OwL-P array on a GEMM, **with** outlier-aware scheduling.
///
/// `a` is `m×k` row-major activations, `b` is `k×n` row-major weights.
///
/// # Errors
///
/// Propagates encoding errors ([`ArithError::Format`]) and shape mismatches.
pub fn simulate_gemm(
    cfg: &ArrayConfig,
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
) -> Result<EventSimResult, ArithError> {
    run(cfg, a, b, m, k, n, true)
}

/// Simulates **without** scheduling (raw streams). Conflicts are reported
/// via `conflict_free == false` rather than an error, so the hazard the
/// scheduler removes can be observed directly.
///
/// # Errors
///
/// As [`simulate_gemm`].
pub fn simulate_gemm_unscheduled(
    cfg: &ArrayConfig,
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
) -> Result<EventSimResult, ArithError> {
    run(cfg, a, b, m, k, n, false)
}

/// Simulates the **FP baseline** array (single-MAC BF16×BF16 PEs with FP32
/// partial sums flowing down the column): outputs are accumulated in K
/// order with one FP32 rounding per PE — exactly the arithmetic of
/// `owlp_arith::fp_mac_gemm`, which this simulation must (and does,
/// per the tests) reproduce bit-for-bit. Cycle accounting follows Eq. (3).
///
/// # Errors
///
/// Shape mismatches as [`simulate_gemm`].
pub fn simulate_gemm_fp_baseline(
    cfg: &ArrayConfig,
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
) -> Result<EventSimResult, ArithError> {
    check(a.len() == m * k, "A", m * k, a.len())?;
    check(b.len() == k * n, "B", k * n, b.len())?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(EventSimResult {
            cycles: 0,
            outputs: vec![0.0; m * n],
            max_wavefront_occupancy: 0,
            conflict_free: true,
            streamed_rows: 0,
            physical_columns: 0,
            fold_cycles: Vec::new(),
        });
    }
    // The baseline covers `rows` K-elements per fold (one MAC per PE).
    let k_tile = cfg.rows;
    let tiles = k.div_ceil(k_tile);
    let mut outputs = vec![0.0f32; m * n];
    let mut cycles = 0u64;
    let mut streamed_rows = 0u64;
    let mut physical_columns = 0u64;
    let mut fold_cycles = Vec::new();
    for t in 0..tiles {
        let lo = t * k_tile;
        let hi = (lo + k_tile).min(k);
        physical_columns += n as u64;
        for fold_cols in (0..n).collect::<Vec<_>>().chunks(cfg.cols) {
            let fold = (2 * cfg.rows + cfg.cols) as u64 + m as u64 - 2;
            cycles += fold;
            fold_cycles.push(fold);
            streamed_rows += m as u64;
            for i in 0..m {
                for &j in fold_cols {
                    // Partial sum flows down the column: one FP32 add per
                    // PE, in K order.
                    let mut psum = outputs[i * n + j];
                    for kk in lo..hi {
                        psum += a[i * k + kk].to_f32() * b[kk * n + j].to_f32();
                    }
                    outputs[i * n + j] = psum;
                }
            }
        }
    }
    Ok(EventSimResult {
        cycles,
        outputs,
        max_wavefront_occupancy: 0,
        conflict_free: true,
        streamed_rows,
        physical_columns,
        fold_cycles,
    })
}

fn check(cond: bool, what: &'static str, expected: usize, actual: usize) -> Result<(), ArithError> {
    if cond {
        Ok(())
    } else {
        Err(ArithError::DimensionMismatch {
            what,
            expected,
            actual,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn run(
    cfg: &ArrayConfig,
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    scheduled: bool,
) -> Result<EventSimResult, ArithError> {
    check(a.len() == m * k, "A", m * k, a.len())?;
    check(b.len() == k * n, "B", k * n, b.len())?;
    if m == 0 || k == 0 || n == 0 {
        return Ok(EventSimResult {
            cycles: 0,
            outputs: vec![0.0; m * n],
            max_wavefront_occupancy: 0,
            conflict_free: true,
            streamed_rows: 0,
            physical_columns: 0,
            fold_cycles: Vec::new(),
        });
    }
    let enc_a = encode_tensor(a, None)?;
    let enc_b = encode_tensor(b, None)?;
    let shared_a = enc_a.shared_exp();
    let shared_w = enc_b.shared_exp();
    let ops_a = enc_a.decode_operands();
    let ops_b = enc_b.decode_operands();
    let k_tile = cfg.k_tile();
    let sched = OutlierSchedule {
        k_tile,
        act_paths: cfg.act_outlier_paths.max(1),
        weight_paths: cfg.weight_outlier_paths.max(1),
    };
    let capacity = cfg.total_outlier_paths();
    let pe = ProcessingElement::new(PeConfig {
        lanes: cfg.lanes,
        act_outlier_paths: cfg.act_outlier_paths,
        weight_outlier_paths: cfg.weight_outlier_paths,
    });

    let mut accs: Vec<KulischAcc> = vec![KulischAcc::new(); m * n];
    let mut cycles = 0u64;
    let mut max_occ = 0usize;
    let mut streamed_rows = 0u64;
    let mut physical_columns = 0u64;
    let mut fold_cycles = Vec::new();

    // The bounded window of one K-tile's all-normal wavefronts (shared by
    // every clean activation-row × weight-column pair).
    let win0 = WindowAcc::for_owlp_normal(shared_a, shared_w, k_tile.max(1));
    // Kernel tier resolved before the column fan-out so a `with_tier`
    // override on this thread applies inside every pool worker.
    let tier = microkernel::selected_tier();

    // One wavefront: an activation row meeting a weight column. Clean
    // pairs (no tagged outlier on either stream) take the bounded-window
    // fast path — the sval-plane microkernel dot product spilled into the
    // Kulisch register. Both paths add the same exact value into the
    // accumulator (Kulisch addition is exact integer addition, so the
    // decomposition into per-PE partials vs one wide spill cannot differ
    // by a bit), and a clean wavefront's occupancy is zero on either path.
    let wavefront = |arow: &Stream, wcol: &Stream, acc: &mut KulischAcc| -> usize {
        if arow.clean && wcol.clean {
            let win = microkernel::dot_sval_with(tier, &arow.sval, &wcol.sval, win0);
            win.merge_into(acc);
            return 0;
        }
        let mut occupancy = 0usize;
        for r in 0..cfg.rows {
            let a_lo = r * cfg.lanes;
            if a_lo >= arow.ops.len() {
                break;
            }
            let a_hi = (a_lo + cfg.lanes).min(arow.ops.len());
            let w_hi = (a_lo + cfg.lanes).min(wcol.ops.len());
            let out = pe.dot_unchecked(
                &arow.ops[a_lo..a_hi],
                &wcol.ops[a_lo..w_hi.max(a_lo)],
                shared_a,
                shared_w,
            );
            occupancy += out.outliers.len();
            acc.add_scaled(out.normal_sum, out.normal_frame);
            for o in &out.outliers {
                acc.add_scaled(o.mag, o.frame);
            }
        }
        occupancy
    };

    let tiles = k.div_ceil(k_tile);
    for t in 0..tiles {
        let lo = t * k_tile;
        let hi = (lo + k_tile).min(k);

        // Physical weight columns of this K-tile (with zero insertion),
        // each carrying its sval plane and precomputed cleanliness flag.
        let mut wcols: Vec<Stream> = Vec::new();
        for j in 0..n {
            let col: Vec<DecodedOperand> = (lo..hi).map(|kk| ops_b[kk * n + j]).collect();
            if scheduled {
                for sub in sched.split_weight_column(&col) {
                    wcols.push(Stream::new(j, sub));
                }
            } else {
                wcols.push(Stream::new(j, col));
            }
        }
        physical_columns += wcols.len() as u64;

        // Physical activation rows of this K-tile.
        let mut arows: Vec<Stream> = Vec::new();
        for i in 0..m {
            let row: Vec<DecodedOperand> = ops_a[i * k + lo..i * k + hi].to_vec();
            if scheduled {
                for sub in sched.split_activation_row(&row) {
                    arows.push(Stream::new(i, sub));
                }
            } else {
                arows.push(Stream::new(i, row));
            }
        }

        // Stream every fold of C physical columns. Cycle accounting depends
        // only on the fold structure; the numeric work shards by physical
        // column (each column's wavefront tracking is independent within a
        // fold) and merges into the Kulisch grid in column order. Kulisch
        // accumulation is an exact fixed-point integer sum, so regrouping
        // per-column partials cannot change a single bit of any output —
        // the parallel run is bit-identical to the serial sweep.
        let col_ops = 2 * (arows.len() as u64).saturating_mul((hi - lo) as u64).max(1);
        for fold in wcols.chunks(cfg.cols) {
            let fold_len = (2 * cfg.rows + cfg.cols) as u64 + arows.len() as u64 - 2;
            cycles += fold_len;
            fold_cycles.push(fold_len);
            streamed_rows += arows.len() as u64;
            let column_pass = |wcol: &Stream| {
                let mut partials = vec![KulischAcc::new(); arows.len()];
                let mut col_max = 0usize;
                for (arow, acc) in arows.iter().zip(&mut partials) {
                    col_max = col_max.max(wavefront(arow, wcol, acc));
                }
                (wcol.idx, partials, col_max)
            };
            // Dispatch weighted by the fold's actual arithmetic volume so
            // small folds stay serial rather than paying thread hand-off
            // for a handful of products.
            let shards =
                owlp_par::map_indexed_weighted(fold.len(), 1, col_ops, |c| column_pass(&fold[c]));
            for (j, partials, col_max) in shards {
                max_occ = max_occ.max(col_max);
                for (arow, partial) in arows.iter().zip(&partials) {
                    accs[arow.idx * n + j].merge(partial);
                }
            }
        }
    }

    let outputs = accs.iter().map(|acc| acc.round_to_f32()).collect();
    Ok(EventSimResult {
        cycles,
        outputs,
        max_wavefront_occupancy: max_occ,
        conflict_free: capacity == 0 || max_occ <= capacity,
        streamed_rows,
        physical_columns,
        fold_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_model::cycles_with_overhead;
    use crate::schedule::outlier_mask;
    use owlp_arith::exact::exact_gemm;

    fn synth(len: usize, seed: u64, outlier_every: usize) -> Vec<Bf16> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 40) as f32 / (1u64 << 24) as f32;
                let sign = if state & (1 << 13) == 0 { 1.0 } else { -1.0 };
                let base = sign * (0.75 + u * 0.5);
                let v = if outlier_every > 0 && i % outlier_every == outlier_every - 1 {
                    base * 1.0e12
                } else {
                    base
                };
                Bf16::from_f32(v)
            })
            .collect()
    }

    #[test]
    fn outputs_match_exact_gemm_bitwise() {
        let cfg = ArrayConfig::small(2, 3, 4);
        let (m, k, n) = (5, 17, 7);
        let a = synth(m * k, 1, 6);
        let b = synth(k * n, 2, 9);
        let r = simulate_gemm(&cfg, &a, &b, m, k, n).unwrap();
        let golden = exact_gemm(&a, &b, m, k, n);
        for (x, y) in r.outputs.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(r.conflict_free);
    }

    #[test]
    fn scheduled_streams_never_exceed_capacity() {
        let cfg = ArrayConfig::small(3, 2, 4);
        let (m, k, n) = (6, 24, 4);
        // Dense outliers to stress the scheduler.
        let a = synth(m * k, 3, 3);
        let b = synth(k * n, 4, 5);
        let r = simulate_gemm(&cfg, &a, &b, m, k, n).unwrap();
        assert!(r.conflict_free, "occupancy {}", r.max_wavefront_occupancy);
        assert!(r.max_wavefront_occupancy <= cfg.total_outlier_paths());
        // Without scheduling the same tensors overflow the paths.
        let raw = simulate_gemm_unscheduled(&cfg, &a, &b, m, k, n).unwrap();
        assert!(
            !raw.conflict_free,
            "expected a conflict, got {}",
            raw.max_wavefront_occupancy
        );
        // Numerics are identical either way (the hazard is structural).
        assert_eq!(raw.outputs, r.outputs);
    }

    #[test]
    fn cycle_count_matches_closed_form_without_outliers() {
        let cfg = ArrayConfig::small(4, 4, 2);
        let (m, k, n) = (10, 32, 9);
        let a = synth(m * k, 5, 0);
        let b = synth(k * n, 6, 0);
        let r = simulate_gemm(&cfg, &a, &b, m, k, n).unwrap();
        let expect = cycles_with_overhead(&cfg, m, k, n, 1.0, 1.0);
        assert_eq!(r.cycles, expect.total);
        assert_eq!(r.streamed_rows, (m as u64) * expect.folds);
    }

    #[test]
    fn cycle_count_matches_eq4_with_measured_ratios() {
        let cfg = ArrayConfig::small(2, 4, 4);
        let (m, k, n) = (8, 16, 8);
        let a = synth(m * k, 7, 4);
        let b = synth(k * n, 8, 7);
        let r = simulate_gemm(&cfg, &a, &b, m, k, n).unwrap();
        // Measure r_a / r_w from the masks, then compare Eq. (4).
        let enc_a = encode_tensor(&a, None).unwrap();
        let enc_b = encode_tensor(&b, None).unwrap();
        let sched = OutlierSchedule::new(cfg.k_tile(), 2, 2);
        let sa = sched.activation_stats(&outlier_mask(&enc_a), m, k);
        let sw = sched.weight_stats(&outlier_mask(&enc_b), k, n);
        let eq4 = cycles_with_overhead(&cfg, m, k, n, sa.ratio, sw.ratio);
        // Eq. (4) folds per-tile overheads into one global ratio, so allow a
        // small discrepancy; the simulator is the ground truth.
        let rel = (r.cycles as f64 - eq4.total as f64).abs() / r.cycles as f64;
        assert!(rel < 0.15, "sim {} vs eq4 {}", r.cycles, eq4.total);
        assert!(r.cycles >= cycles_with_overhead(&cfg, m, k, n, 1.0, 1.0).total);
    }

    #[test]
    fn zero_dimensions() {
        let cfg = ArrayConfig::small(2, 2, 2);
        let r = simulate_gemm(&cfg, &[], &[], 0, 0, 0).unwrap();
        assert_eq!(r.cycles, 0);
        assert!(r.outputs.is_empty());
    }

    #[test]
    fn single_element_gemm() {
        let cfg = ArrayConfig::small(1, 1, 1);
        let a = vec![Bf16::from_f32(3.0)];
        let b = vec![Bf16::from_f32(-1.5)];
        let r = simulate_gemm(&cfg, &a, &b, 1, 1, 1).unwrap();
        assert_eq!(r.outputs, vec![-4.5]);
        assert_eq!(r.cycles, (2 + 1 + 1 - 2) as u64);
    }

    #[test]
    fn fp_baseline_sim_reproduces_sequential_fp_gemm() {
        use owlp_arith::fpmac::fp_mac_gemm;
        let cfg = ArrayConfig::small(4, 4, 1);
        let (m, k, n) = (6, 20, 5);
        let a = synth(m * k, 11, 7);
        let b = synth(k * n, 12, 9);
        let sim = simulate_gemm_fp_baseline(&cfg, &a, &b, m, k, n).unwrap();
        let reference = fp_mac_gemm(&a, &b, m, k, n);
        for (x, y) in sim.outputs.iter().zip(&reference) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // Cycle count follows Eq. (3).
        let eq3 = cycles_with_overhead(&cfg, m, k, n, 1.0, 1.0);
        assert_eq!(sim.cycles, eq3.total);
    }

    #[test]
    fn fp_baseline_differs_from_owlp_on_cancellation_heavy_inputs() {
        let cfg = ArrayConfig::small(4, 4, 1);
        let owlp_cfg = ArrayConfig::small(2, 4, 8);
        let (m, k, n) = (1, 12, 1);
        let mut a = vec![Bf16::from_f32(0.5); m * k];
        a[0] = Bf16::from_f32(1.0e30);
        a[11] = Bf16::from_f32(-1.0e30);
        let b = vec![Bf16::from_f32(1.0); k * n];
        let fp = simulate_gemm_fp_baseline(&cfg, &a, &b, m, k, n).unwrap();
        let owlp = simulate_gemm(&owlp_cfg, &a, &b, m, k, n).unwrap();
        // Exact: 10 × 0.5 = 5.0 survives on OwL-P; the FP column loses it.
        assert_eq!(owlp.outputs[0], 5.0);
        assert_eq!(fp.outputs[0], 0.0);
    }

    #[test]
    fn parallel_event_sim_is_bit_identical_to_serial() {
        let cfg = ArrayConfig::small(3, 2, 4);
        let (m, k, n) = (7, 40, 9);
        let a = synth(m * k, 31, 5);
        let b = synth(k * n, 32, 7);
        let serial = owlp_par::with_threads(1, || simulate_gemm(&cfg, &a, &b, m, k, n).unwrap());
        for t in [2, 4, 8] {
            let par = owlp_par::with_threads(t, || simulate_gemm(&cfg, &a, &b, m, k, n).unwrap());
            assert_eq!(par, serial, "{t} threads");
            let raw_ser = owlp_par::with_threads(1, || {
                simulate_gemm_unscheduled(&cfg, &a, &b, m, k, n).unwrap()
            });
            let raw_par = owlp_par::with_threads(t, || {
                simulate_gemm_unscheduled(&cfg, &a, &b, m, k, n).unwrap()
            });
            assert_eq!(raw_par, raw_ser, "{t} threads (unscheduled)");
        }
    }

    #[test]
    fn fold_cycles_sum_to_total_on_both_datapaths() {
        let cfg = ArrayConfig::small(3, 2, 4);
        let (m, k, n) = (5, 26, 9);
        let a = synth(m * k, 21, 6);
        let b = synth(k * n, 22, 8);
        let owlp = simulate_gemm(&cfg, &a, &b, m, k, n).unwrap();
        assert_eq!(owlp.fold_cycles.iter().sum::<u64>(), owlp.cycles);
        assert!(!owlp.fold_cycles.is_empty());
        let fp = simulate_gemm_fp_baseline(&cfg, &a, &b, m, k, n).unwrap();
        assert_eq!(fp.fold_cycles.iter().sum::<u64>(), fp.cycles);
        assert_eq!(fp.fold_cycles.len() as u64, fp.streamed_rows / m as u64);
    }

    #[test]
    fn weight_splitting_increases_physical_columns() {
        let cfg = ArrayConfig::small(1, 2, 8); // k_tile 8, paths 2
        let (m, k, n) = (2, 8, 2);
        let a = synth(m * k, 9, 0);
        // Force 3 weight outliers into column 0.
        let mut bt = synth(k * n, 10, 0);
        for kk in [0usize, 3, 6] {
            bt[kk * n] = Bf16::from_f32(1.0e15);
        }
        let r = simulate_gemm(&cfg, &a, &bt, m, k, n).unwrap();
        // Column 0 splits into 2 physical columns: 3 total for 2 logical.
        assert_eq!(r.physical_columns, 3);
        let golden = exact_gemm(&a, &bt, m, k, n);
        for (x, y) in r.outputs.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
