//! # owlp-systolic
//!
//! Weight-stationary systolic-array performance model for OwL-P (paper §V):
//!
//! * [`config`] — array geometries for the TPU-like BF16 baseline and the
//!   OwL-P INT design (paper Table V).
//! * [`cycle_model`] — the closed-form cycle counts: Eq. (3) for the plain
//!   weight-stationary dataflow and Eq. (4) with the outlier-scheduling
//!   overheads `r_a`/`r_w` folded in.
//! * [`schedule`] — the outlier-aware scheduler (paper Fig. 6): measures
//!   outlier pressure per input row / weight column and inserts zeros to
//!   regulate the number of simultaneous outlier results per column
//!   wavefront; computes `T_a`, `T_w` and therefore `r_a`, `r_w`.
//! * [`trace`] — VCD waveform dumps of simulated GEMMs (fold activity,
//!   streamed rows, zero insertions, outlier wavefront occupancy);
//! * [`traces`] — ScaleSIM-style per-cycle operand access traces (ifmap /
//!   filter / ofmap) and bandwidth-demand profiles;
//! * [`event_sim`] — an independent cycle-accurate event-driven simulation
//!   of a (small) array that tracks outlier-path occupancy per PE per cycle,
//!   verifies the scheduler's no-conflict guarantee, reproduces the GEMM
//!   results bit-exactly and cross-validates the closed-form cycle counts.
//!
//! ```
//! use owlp_systolic::{ArrayConfig, cycle_model};
//!
//! let cfg = ArrayConfig::OWLP_PAPER;
//! let t = cycle_model::cycles_eq3(&cfg, 512, 768, 768);
//! assert!(t > 0);
//! ```

pub mod config;
pub mod cycle_model;
pub mod event_sim;
pub mod schedule;
pub mod trace;
pub mod traces;

pub use config::ArrayConfig;
pub use cycle_model::{cycles_eq3, cycles_eq4, CycleBreakdown};
pub use schedule::{OutlierSchedule, ScheduleStats};
