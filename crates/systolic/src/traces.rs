//! SRAM/DRAM access-trace generation (the ScaleSIM-style output).
//!
//! ScaleSIM's primary artefacts are per-cycle operand access traces —
//! ifmap (activation) reads, filter (weight) reads, ofmap (output) writes —
//! from which bandwidth demand over time is derived. This module generates
//! the same traces for the weight-stationary dataflow of Eq. (3), with
//! per-value byte costs as a parameter so the compressed OwL-P format and
//! the raw BF16 baseline produce their respective traffic.

use crate::config::ArrayConfig;
use serde::{Deserialize, Serialize};

/// Per-value storage costs (bytes) for one trace run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByteCosts {
    /// Streamed activation bytes per element.
    pub activation: f64,
    /// Stationary weight bytes per element.
    pub weight: f64,
    /// Output bytes per element (FP32 written back, later re-encoded).
    pub output: f64,
}

impl ByteCosts {
    /// Raw BF16 operands, FP32 outputs (the baseline).
    pub const BF16: ByteCosts = ByteCosts {
        activation: 2.0,
        weight: 2.0,
        output: 4.0,
    };

    /// OwL-P packed operands (≈ 11.5 bits/value), FP32 outputs.
    pub const OWLP: ByteCosts = ByteCosts {
        activation: 1.47,
        weight: 1.45,
        output: 4.0,
    };
}

/// One access event: `(cycle, bytes)`.
pub type Access = (u64, u64);

/// The generated trace of one GEMM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessTrace {
    /// Activation (ifmap) read events.
    pub ifmap_reads: Vec<Access>,
    /// Weight (filter) read events.
    pub filter_reads: Vec<Access>,
    /// Output (ofmap) write events.
    pub ofmap_writes: Vec<Access>,
    /// Total cycles spanned.
    pub cycles: u64,
}

impl AccessTrace {
    /// Total bytes of one stream.
    fn stream_bytes(stream: &[Access]) -> u64 {
        stream.iter().map(|&(_, b)| b).sum()
    }

    /// Total activation bytes read.
    pub fn ifmap_bytes(&self) -> u64 {
        Self::stream_bytes(&self.ifmap_reads)
    }

    /// Total weight bytes read.
    pub fn filter_bytes(&self) -> u64 {
        Self::stream_bytes(&self.filter_reads)
    }

    /// Total output bytes written.
    pub fn ofmap_bytes(&self) -> u64 {
        Self::stream_bytes(&self.ofmap_writes)
    }

    /// All traffic combined.
    pub fn total_bytes(&self) -> u64 {
        self.ifmap_bytes() + self.filter_bytes() + self.ofmap_bytes()
    }

    /// Demand bandwidth profile: total bytes per `bucket`-cycle window,
    /// in bytes/cycle.
    ///
    /// # Panics
    ///
    /// Panics if `bucket == 0`.
    pub fn bandwidth_profile(&self, bucket: u64) -> Vec<f64> {
        assert!(bucket > 0, "bucket must be positive");
        let buckets = self.cycles.div_ceil(bucket).max(1) as usize;
        let mut out = vec![0.0f64; buckets];
        for stream in [&self.ifmap_reads, &self.filter_reads, &self.ofmap_writes] {
            for &(c, b) in stream.iter() {
                let idx = ((c.min(self.cycles.saturating_sub(1))) / bucket) as usize;
                out[idx] += b as f64;
            }
        }
        for v in &mut out {
            *v /= bucket as f64;
        }
        out
    }

    /// Peak demand bandwidth over `bucket`-cycle windows, bytes/cycle.
    pub fn peak_bandwidth(&self, bucket: u64) -> f64 {
        self.bandwidth_profile(bucket)
            .into_iter()
            .fold(0.0, f64::max)
    }
}

/// Generates the weight-stationary access trace of one `(m,k) × (k,n)` GEMM
/// on `cfg`, with per-value costs `bytes`.
///
/// Event placement follows the Eq. (3) schedule: each fold loads its
/// stationary tile over the `rows` fill cycles, streams `m` activation rows
/// (one row's K-slice per cycle), and drains `m × cols` outputs over the
/// drain window.
pub fn generate_trace(
    cfg: &ArrayConfig,
    m: usize,
    k: usize,
    n: usize,
    bytes: ByteCosts,
) -> AccessTrace {
    let mut trace = AccessTrace {
        ifmap_reads: Vec::new(),
        filter_reads: Vec::new(),
        ofmap_writes: Vec::new(),
        cycles: 0,
    };
    if m == 0 || k == 0 || n == 0 {
        return trace;
    }
    let k_tile = cfg.k_tile();
    let mut cycle = 0u64;
    for t in 0..k.div_ceil(k_tile) {
        let lo = t * k_tile;
        let tile_k = (k - lo).min(k_tile);
        for fold_cols in (0..n).collect::<Vec<_>>().chunks(cfg.cols) {
            // Fill: the stationary tile streams in over `rows` cycles.
            let tile_elems = (tile_k * fold_cols.len()) as f64 * bytes.weight;
            let per_cycle = (tile_elems / cfg.rows as f64).ceil() as u64;
            for r in 0..cfg.rows {
                trace.filter_reads.push((cycle + r as u64, per_cycle));
            }
            cycle += cfg.rows as u64;
            // Stream M rows: one K-slice per cycle.
            let row_bytes = (tile_k as f64 * bytes.activation).ceil() as u64;
            for row in 0..m {
                trace.ifmap_reads.push((cycle + row as u64, row_bytes));
            }
            cycle += m as u64;
            // Drain: outputs leave over rows + cols − 2 cycles (only on the
            // final K-tile; partial sums of earlier tiles stay on chip).
            let drain = (cfg.rows + cfg.cols - 2).max(1) as u64;
            if t == k.div_ceil(k_tile) - 1 {
                let out_bytes = (m * fold_cols.len()) as f64 * bytes.output;
                let per_cycle = (out_bytes / drain as f64).ceil() as u64;
                for d in 0..drain {
                    trace.ofmap_writes.push((cycle + d, per_cycle));
                }
            }
            cycle += drain;
        }
    }
    trace.cycles = cycle;
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle_model::cycles_with_overhead;

    #[test]
    fn totals_match_closed_form_volumes() {
        let cfg = ArrayConfig::small(4, 4, 8); // k_tile 32
        let (m, k, n) = (16, 64, 12);
        let t = generate_trace(&cfg, m, k, n, ByteCosts::BF16);
        // Weights: each K-tile × each fold loads its slice once.
        let expected_weights = (k * n) as u64 * 2;
        assert_eq!(t.filter_bytes(), expected_weights);
        // Activations: each row's K-slice streams once per N-fold.
        let n_folds = n.div_ceil(cfg.cols) as u64;
        assert_eq!(t.ifmap_bytes(), (m * k) as u64 * 2 * n_folds);
        // Outputs written exactly once.
        let drain = (cfg.rows + cfg.cols - 2) as u64;
        let per_cycle = ((m * cfg.cols.min(n)) as f64 * 4.0 / drain as f64).ceil() as u64;
        assert!(t.ofmap_bytes() >= (m * n) as u64 * 4);
        assert!(t.ofmap_bytes() <= per_cycle * drain * n_folds);
    }

    #[test]
    fn trace_span_matches_cycle_model() {
        let cfg = ArrayConfig::small(4, 4, 8);
        let (m, k, n) = (10, 96, 8);
        let t = generate_trace(&cfg, m, k, n, ByteCosts::BF16);
        let eq3 = cycles_with_overhead(&cfg, m, k, n, 1.0, 1.0);
        assert_eq!(t.cycles, eq3.total);
    }

    #[test]
    fn compression_shrinks_every_operand_stream() {
        let cfg = ArrayConfig::OWLP_PAPER;
        let (m, k, n) = (32, 4096, 4096);
        let raw = generate_trace(&cfg, m, k, n, ByteCosts::BF16);
        let packed = generate_trace(&cfg, m, k, n, ByteCosts::OWLP);
        assert!(packed.filter_bytes() < raw.filter_bytes());
        assert!(packed.ifmap_bytes() < raw.ifmap_bytes());
        let ratio = raw.filter_bytes() as f64 / packed.filter_bytes() as f64;
        assert!((1.3..1.45).contains(&ratio), "{ratio}");
    }

    #[test]
    fn bandwidth_profile_sums_to_total() {
        let cfg = ArrayConfig::small(2, 2, 4);
        let t = generate_trace(&cfg, 8, 16, 6, ByteCosts::BF16);
        for bucket in [1u64, 7, 64] {
            let profile = t.bandwidth_profile(bucket);
            let sum: f64 = profile.iter().map(|v| v * bucket as f64).sum();
            assert!(
                (sum - t.total_bytes() as f64).abs() < 1e-6,
                "bucket {bucket}: {sum} vs {}",
                t.total_bytes()
            );
            assert!(t.peak_bandwidth(bucket) >= sum / (t.cycles as f64 + bucket as f64));
        }
    }

    #[test]
    fn fill_phase_is_filter_dominated_stream_phase_is_ifmap_dominated() {
        let cfg = ArrayConfig::small(8, 8, 4);
        let t = generate_trace(&cfg, 64, 32, 8, ByteCosts::BF16);
        // First `rows` cycles: only filter reads.
        let early_filter: u64 = t
            .filter_reads
            .iter()
            .filter(|&&(c, _)| c < 8)
            .map(|&(_, b)| b)
            .sum();
        let early_ifmap: u64 = t
            .ifmap_reads
            .iter()
            .filter(|&&(c, _)| c < 8)
            .map(|&(_, b)| b)
            .sum();
        assert!(early_filter > 0);
        assert_eq!(early_ifmap, 0);
    }

    #[test]
    fn empty_gemm_has_empty_trace() {
        let cfg = ArrayConfig::small(2, 2, 2);
        let t = generate_trace(&cfg, 0, 4, 4, ByteCosts::BF16);
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.cycles, 0);
    }
}
