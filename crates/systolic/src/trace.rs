//! VCD (Value Change Dump) waveform tracing for the array simulation.
//!
//! Dumps per-cycle signals of a simulated GEMM — fold activity, streamed
//! row index, outlier-wavefront occupancy, busy flags — as an IEEE-1364
//! VCD file viewable in GTKWave & friends. Useful for eyeballing the
//! skew/fill/drain behaviour and for seeing the zero-inserted rows the
//! outlier scheduler adds.

use crate::config::ArrayConfig;
use crate::schedule::OutlierSchedule;
use owlp_arith::pe::{PeConfig, ProcessingElement};
use owlp_arith::ArithError;
use owlp_format::{encode_tensor, Bf16};
use std::fmt::Write as _;

/// One traced signal.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Signal {
    id: char,
    name: &'static str,
    width: u32,
    last: Option<u64>,
}

/// A simple VCD writer over a fixed signal set.
#[derive(Debug, Clone)]
pub struct VcdTrace {
    signals: Vec<Signal>,
    body: String,
    time: u64,
}

impl VcdTrace {
    fn new(signals: &[(&'static str, u32)]) -> Self {
        let signals = signals
            .iter()
            .enumerate()
            .map(|(i, &(name, width))| Signal {
                id: (b'!' + i as u8) as char,
                name,
                width,
                last: None,
            })
            .collect();
        VcdTrace {
            signals,
            body: String::new(),
            time: 0,
        }
    }

    fn tick(&mut self, time: u64, values: &[u64]) {
        debug_assert_eq!(values.len(), self.signals.len());
        let mut changes = String::new();
        for (sig, &v) in self.signals.iter_mut().zip(values) {
            if sig.last != Some(v) {
                if sig.width == 1 {
                    let _ = writeln!(changes, "{}{}", v & 1, sig.id);
                } else {
                    let _ = writeln!(changes, "b{:b} {}", v, sig.id);
                }
                sig.last = Some(v);
            }
        }
        if !changes.is_empty() {
            let _ = write!(self.body, "#{time}\n{changes}");
        }
        self.time = time;
    }

    /// Renders the complete VCD file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("$date owlp-repro $end\n$version owlp-systolic vcd trace $end\n");
        out.push_str("$timescale 1ns $end\n$scope module owlp_array $end\n");
        for s in &self.signals {
            let _ = writeln!(out, "$var wire {} {} {} $end", s.width, s.id, s.name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        out.push_str(&self.body);
        let _ = writeln!(out, "#{}", self.time + 1);
        out
    }
}

/// Simulates a (small) GEMM on the OwL-P array while recording a waveform:
/// `busy`, `fold` (current fold index), `row` (streamed physical row),
/// `zero_inserted` (the row is a scheduler-inserted split), and
/// `wavefront_outliers`.
///
/// Returns the VCD text and the total simulated cycles.
///
/// # Errors
///
/// Propagates encoding errors; shapes must satisfy `a.len() == m·k`,
/// `b.len() == k·n`.
pub fn trace_gemm(
    cfg: &ArrayConfig,
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
) -> Result<(String, u64), ArithError> {
    if a.len() != m * k {
        return Err(ArithError::DimensionMismatch {
            what: "A",
            expected: m * k,
            actual: a.len(),
        });
    }
    if b.len() != k * n {
        return Err(ArithError::DimensionMismatch {
            what: "B",
            expected: k * n,
            actual: b.len(),
        });
    }
    let mut vcd = VcdTrace::new(&[
        ("busy", 1),
        ("fold", 16),
        ("row", 16),
        ("zero_inserted", 1),
        ("wavefront_outliers", 8),
    ]);
    if m == 0 || k == 0 || n == 0 {
        return Ok((vcd.render(), 0));
    }
    let enc_a = encode_tensor(a, None)?;
    let enc_b = encode_tensor(b, None)?;
    let ops_a = enc_a.decode_operands();
    let ops_b = enc_b.decode_operands();
    let k_tile = cfg.k_tile();
    let sched = OutlierSchedule::new(
        k_tile,
        cfg.act_outlier_paths.max(1),
        cfg.weight_outlier_paths.max(1),
    );
    let pe = ProcessingElement::new(PeConfig {
        lanes: cfg.lanes,
        act_outlier_paths: cfg.act_outlier_paths,
        weight_outlier_paths: cfg.weight_outlier_paths,
    });
    let mut cycle = 0u64;
    let mut fold_idx = 0u64;
    let tiles = k.div_ceil(k_tile);
    for t in 0..tiles {
        let lo = t * k_tile;
        let hi = (lo + k_tile).min(k);
        let mut wcols: Vec<Vec<_>> = Vec::new();
        for j in 0..n {
            let col: Vec<_> = (lo..hi).map(|kk| ops_b[kk * n + j]).collect();
            wcols.extend(sched.split_weight_column(&col));
        }
        // Expanded activation rows with an inserted-zero marker.
        let mut arows: Vec<(bool, Vec<_>)> = Vec::new();
        for i in 0..m {
            let row: Vec<_> = ops_a[i * k + lo..i * k + hi].to_vec();
            for (s, sub) in sched.split_activation_row(&row).into_iter().enumerate() {
                arows.push((s > 0, sub));
            }
        }
        for fold in wcols.chunks(cfg.cols) {
            // Fill.
            for _ in 0..cfg.rows {
                cycle += 1;
                vcd.tick(cycle, &[1, fold_idx, 0, 0, 0]);
            }
            // Stream rows; record the worst wavefront across the fold's
            // columns for this row.
            for (r, (inserted, arow)) in arows.iter().enumerate() {
                cycle += 1;
                let mut worst = 0u64;
                for wcol in fold {
                    let mut occupancy = 0u64;
                    for pr in 0..cfg.rows {
                        let a_lo = pr * cfg.lanes;
                        if a_lo >= arow.len() {
                            break;
                        }
                        let a_hi = (a_lo + cfg.lanes).min(arow.len());
                        let out = pe.dot_unchecked(
                            &arow[a_lo..a_hi],
                            &wcol[a_lo..a_hi],
                            enc_a.shared_exp(),
                            enc_b.shared_exp(),
                        );
                        occupancy += out.outliers.len() as u64;
                    }
                    worst = worst.max(occupancy);
                }
                vcd.tick(cycle, &[1, fold_idx, r as u64, *inserted as u64, worst]);
            }
            // Drain.
            for _ in 0..(cfg.rows + cfg.cols - 2) {
                cycle += 1;
                vcd.tick(cycle, &[1, fold_idx, 0, 0, 0]);
            }
            fold_idx += 1;
        }
    }
    cycle += 1;
    vcd.tick(cycle, &[0, fold_idx, 0, 0, 0]);
    Ok((vcd.render(), cycle))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synth(len: usize, outlier_every: usize) -> Vec<Bf16> {
        (0..len)
            .map(|i| {
                let base = 1.0 + (i % 19) as f32 / 16.0;
                Bf16::from_f32(
                    if outlier_every > 0 && i % outlier_every == outlier_every - 1 {
                        base * 1.0e15
                    } else {
                        base
                    },
                )
            })
            .collect()
    }

    #[test]
    fn vcd_has_valid_structure() {
        let cfg = ArrayConfig::small(2, 2, 4);
        let a = synth(4 * 16, 5);
        let b = synth(16 * 3, 0);
        let (vcd, cycles) = trace_gemm(&cfg, &a, &b, 4, 16, 3).unwrap();
        assert!(cycles > 0);
        assert!(vcd.starts_with("$date"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$var wire 1 ! busy"));
        assert!(vcd.contains("#1\n"));
        // Signals toggle: busy rises and falls.
        assert!(vcd.contains("1!"));
        assert!(vcd.contains("0!"));
    }

    #[test]
    fn inserted_rows_are_marked() {
        let cfg = ArrayConfig::small(2, 2, 4); // k_tile 8, 2+2 paths
                                               // 3 outliers in one row-tile → a split → zero_inserted pulses.
        let mut xs = [1.0f32; 2 * 8];
        xs[1] = 1e20;
        xs[3] = 2e20;
        xs[6] = 3e20;
        let a: Vec<Bf16> = xs.iter().map(|&x| Bf16::from_f32(x)).collect();
        let b = synth(8 * 2, 0);
        let (vcd, _) = trace_gemm(&cfg, &a, &b, 2, 8, 2).unwrap();
        // The zero_inserted signal (id '$') must go high somewhere.
        assert!(
            vcd.contains("1$"),
            "no inserted-row marker in trace:\n{vcd}"
        );
    }

    #[test]
    fn cycle_count_matches_closed_form() {
        use crate::cycle_model::cycles_with_overhead;
        let cfg = ArrayConfig::small(3, 2, 2);
        let a = synth(5 * 12, 0);
        let b = synth(12 * 4, 0);
        let (_, cycles) = trace_gemm(&cfg, &a, &b, 5, 12, 4).unwrap();
        let eq3 = cycles_with_overhead(&cfg, 5, 12, 4, 1.0, 1.0);
        // +1 for the final idle tick.
        assert_eq!(cycles, eq3.total + 1);
    }

    #[test]
    fn empty_gemm_traces_cleanly() {
        let cfg = ArrayConfig::small(1, 1, 1);
        let (vcd, cycles) = trace_gemm(&cfg, &[], &[], 0, 0, 0).unwrap();
        assert_eq!(cycles, 0);
        assert!(vcd.contains("$enddefinitions"));
    }
}
