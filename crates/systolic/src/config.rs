//! Array geometry and design-point configuration (paper Table V).
//!
//! The baseline is a TPU-like engine: 16 systolic arrays of 32×32 BF16
//! MACs. OwL-P packs 3× the MAC count into the same compute area by using
//! 8-way INT dot-product PEs: 49 152 MACs = 48 arrays × (4 rows × 32
//! columns) × 8 lanes. The paper gives the MAC totals and the per-array
//! 32×32 shape of the baseline but not OwL-P's array organisation; we pick
//! many small 4×32×8 arrays so that (a) the per-column reduction coverage
//! (`rows × lanes = 32`) matches the baseline's K-tile — required for the
//! paper's outlier-scheduling overheads (`r_a ≈ 1.1–1.3` at ~3 % activation
//! outliers implies a 32-element column wavefront) — and (b) fill/drain
//! overhead per fold is small, consistent with the paper's 2-stage PE
//! pipeline and its near-3× gains on small-batch decode GEMMs.

use serde::{Deserialize, Serialize};

/// Geometry and scheduling parameters of one accelerator design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrayConfig {
    /// Physical PE rows per systolic array (pipeline/skew depth).
    pub rows: usize,
    /// PE columns per systolic array (output columns per pass).
    pub cols: usize,
    /// Dot-product lanes per PE (1 for the FP baseline, 8 for OwL-P).
    pub lanes: usize,
    /// Number of independent systolic arrays.
    pub num_arrays: usize,
    /// Outlier paths per PE reserved for activation outliers (0 disables
    /// outlier handling, i.e. the baseline).
    pub act_outlier_paths: usize,
    /// Outlier paths per PE reserved for weight outliers.
    pub weight_outlier_paths: usize,
    /// Clock frequency in MHz (both designs target 500 MHz in the paper).
    pub clock_mhz: f64,
}

impl ArrayConfig {
    /// The TPU-like BF16 baseline: 16 × (32×32) single-MAC PEs, 500 MHz.
    pub const BASELINE_PAPER: ArrayConfig = ArrayConfig {
        rows: 32,
        cols: 32,
        lanes: 1,
        num_arrays: 16,
        act_outlier_paths: 0,
        weight_outlier_paths: 0,
        clock_mhz: 500.0,
    };

    /// The OwL-P design point: 48 × (4×32) 8-way INT PEs with 4 outlier
    /// paths per PE (2 activation + 2 weight), 500 MHz — 49 152 MACs.
    pub const OWLP_PAPER: ArrayConfig = ArrayConfig {
        rows: 4,
        cols: 32,
        lanes: 8,
        num_arrays: 48,
        act_outlier_paths: 2,
        weight_outlier_paths: 2,
        clock_mhz: 500.0,
    };

    /// Reduction-dimension coverage of one array pass: `rows × lanes`
    /// elements of K.
    pub fn k_tile(&self) -> usize {
        self.rows * self.lanes
    }

    /// MACs per array.
    pub fn macs_per_array(&self) -> usize {
        self.rows * self.cols * self.lanes
    }

    /// Total MACs across all arrays.
    pub fn total_macs(&self) -> usize {
        self.macs_per_array() * self.num_arrays
    }

    /// Total outlier paths per PE.
    pub fn total_outlier_paths(&self) -> usize {
        self.act_outlier_paths + self.weight_outlier_paths
    }

    /// A scaled-down variant for event-driven simulation and tests.
    pub fn small(rows: usize, cols: usize, lanes: usize) -> Self {
        ArrayConfig {
            rows,
            cols,
            lanes,
            num_arrays: 1,
            act_outlier_paths: 2,
            weight_outlier_paths: 2,
            clock_mhz: 500.0,
        }
    }

    /// Returns a copy with a different outlier-path split (for Fig. 9/10
    /// sweeps).
    pub fn with_outlier_paths(mut self, act: usize, weight: usize) -> Self {
        self.act_outlier_paths = act;
        self.weight_outlier_paths = weight;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_mac_counts() {
        assert_eq!(ArrayConfig::BASELINE_PAPER.total_macs(), 16_384);
        assert_eq!(ArrayConfig::OWLP_PAPER.total_macs(), 49_152);
        // 3× more compute in the same area (paper §VI-B).
        assert_eq!(
            ArrayConfig::OWLP_PAPER.total_macs() / ArrayConfig::BASELINE_PAPER.total_macs(),
            3
        );
    }

    #[test]
    fn k_tile_matches_baseline_coverage() {
        assert_eq!(ArrayConfig::BASELINE_PAPER.k_tile(), 32);
        assert_eq!(ArrayConfig::OWLP_PAPER.k_tile(), 32);
    }

    #[test]
    fn outlier_path_sweep() {
        let cfg = ArrayConfig::OWLP_PAPER.with_outlier_paths(1, 1);
        assert_eq!(cfg.total_outlier_paths(), 2);
        assert_eq!(ArrayConfig::BASELINE_PAPER.total_outlier_paths(), 0);
    }
}
