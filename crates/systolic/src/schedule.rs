//! Outlier-aware zero-insertion scheduling (paper §V-A, Fig. 6).
//!
//! Outlier products belonging to one input row travel down a PE column in a
//! single wavefront; the wavefront can carry at most as many outlier results
//! as each PE has outlier registers. When an input row (respectively a
//! stationary weight column) holds more outliers *within one K-tile* than
//! the path budget, the scheduler splits it into several sub-rows
//! (sub-columns) by inserting zeros, each carrying at most `paths` outliers.
//! The extra streamed rows/columns are the `T_a`/`T_w` cycle overheads of
//! paper Eq. (4), summarised as `r_a = (M + T_a)/M` and `r_w = (N + T_w)/N`.

use owlp_format::decode::DecodedOperand;
use owlp_format::EncodedTensor;
use serde::{Deserialize, Serialize};

/// Aggregate scheduling overhead for one tensor of one GEMM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Row-streams (or column-slots) without zero insertion:
    /// `M × ⌈K / k_tile⌉` for activations, `N × ⌈K / k_tile⌉` for weights.
    pub base_units: u64,
    /// Extra streams added by zero insertion (`T_a` or `T_w`, summed over
    /// K-tiles).
    pub extra_units: u64,
    /// The overhead ratio `r = (base + extra) / base`; 1.0 when nothing was
    /// split.
    pub ratio: f64,
    /// The largest outlier count seen in any single unit (row×tile or
    /// column×tile) before splitting.
    pub max_outliers_per_unit: usize,
}

impl ScheduleStats {
    fn from_counts(base_units: u64, extra_units: u64, max_outliers: usize) -> Self {
        let ratio = if base_units == 0 {
            1.0
        } else {
            (base_units + extra_units) as f64 / base_units as f64
        };
        ScheduleStats {
            base_units,
            extra_units,
            ratio,
            max_outliers_per_unit: max_outliers,
        }
    }
}

/// The outlier scheduler: splits over-subscribed rows/columns and measures
/// the resulting `r_a`/`r_w` overheads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierSchedule {
    /// K-elements covered by one array fold (`rows × lanes`).
    pub k_tile: usize,
    /// Outlier paths per PE for activation outliers.
    pub act_paths: usize,
    /// Outlier paths per PE for weight outliers.
    pub weight_paths: usize,
}

impl OutlierSchedule {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `k_tile == 0` or both path budgets are zero.
    pub fn new(k_tile: usize, act_paths: usize, weight_paths: usize) -> Self {
        assert!(k_tile > 0, "k_tile must be positive");
        assert!(
            act_paths > 0 || weight_paths > 0,
            "an outlier-aware schedule needs at least one outlier path"
        );
        OutlierSchedule {
            k_tile,
            act_paths,
            weight_paths,
        }
    }

    /// `T_a`/`r_a` for an `m×k` activation outlier mask (row-major, `true`
    /// marks an outlier element).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != m*k` or the activation path budget is zero
    /// while outliers are present.
    pub fn activation_stats(&self, mask: &[bool], m: usize, k: usize) -> ScheduleStats {
        assert_eq!(mask.len(), m * k, "mask shape mismatch");
        let tiles = k.div_ceil(self.k_tile).max(usize::from(k == 0));
        let mut extra = 0u64;
        let mut max_out = 0usize;
        for row in 0..m {
            for t in 0..tiles {
                let lo = t * self.k_tile;
                let hi = (lo + self.k_tile).min(k);
                let count = mask[row * k + lo..row * k + hi]
                    .iter()
                    .filter(|&&b| b)
                    .count();
                max_out = max_out.max(count);
                if count > 0 {
                    assert!(
                        self.act_paths > 0,
                        "activation outliers but no activation paths"
                    );
                    extra += (count.div_ceil(self.act_paths) - 1) as u64;
                }
            }
        }
        ScheduleStats::from_counts((m * tiles) as u64, extra, max_out)
    }

    /// `T_w`/`r_w` for a `k×n` weight outlier mask (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != k*n` or the weight path budget is zero while
    /// outliers are present.
    pub fn weight_stats(&self, mask: &[bool], k: usize, n: usize) -> ScheduleStats {
        assert_eq!(mask.len(), k * n, "mask shape mismatch");
        let tiles = k.div_ceil(self.k_tile).max(usize::from(k == 0));
        let mut extra = 0u64;
        let mut max_out = 0usize;
        for col in 0..n {
            for t in 0..tiles {
                let lo = t * self.k_tile;
                let hi = (lo + self.k_tile).min(k);
                let count = (lo..hi).filter(|&kk| mask[kk * n + col]).count();
                max_out = max_out.max(count);
                if count > 0 {
                    assert!(self.weight_paths > 0, "weight outliers but no weight paths");
                    extra += (count.div_ceil(self.weight_paths) - 1) as u64;
                }
            }
        }
        ScheduleStats::from_counts((n * tiles) as u64, extra, max_out)
    }

    /// Splits one activation row segment (≤ `k_tile` operands) into
    /// sub-rows, each with at most `act_paths` outlier operands: the zero
    /// insertion of paper Fig. 6. Normal operands stay in the first
    /// sub-row; the `s`-th sub-row carries the outliers with ordinals
    /// `[s·paths, (s+1)·paths)` at their original positions and zeros
    /// elsewhere, so the sub-rows' dot products sum to the original's.
    pub fn split_activation_row(&self, row: &[DecodedOperand]) -> Vec<Vec<DecodedOperand>> {
        split_segment(row, self.act_paths)
    }

    /// Splits one stationary weight column segment analogously, with the
    /// weight path budget.
    pub fn split_weight_column(&self, col: &[DecodedOperand]) -> Vec<Vec<DecodedOperand>> {
        split_segment(col, self.weight_paths)
    }
}

/// Shared splitting kernel (see [`OutlierSchedule::split_activation_row`]).
fn split_segment(seg: &[DecodedOperand], paths: usize) -> Vec<Vec<DecodedOperand>> {
    let outlier_count = seg.iter().filter(|o| o.tag).count();
    if paths == 0 {
        assert_eq!(outlier_count, 0, "outliers present but no outlier paths");
        return vec![seg.to_vec()];
    }
    let splits = outlier_count.div_ceil(paths).max(1);
    let mut out = vec![vec![DecodedOperand::ZERO; seg.len()]; splits];
    let mut ordinal = 0usize;
    for (i, &op) in seg.iter().enumerate() {
        if op.tag {
            out[ordinal / paths][i] = op;
            ordinal += 1;
        } else {
            out[0][i] = op;
        }
    }
    out
}

/// Builds the outlier mask of an encoded tensor: `true` where the element
/// travels the outlier datapath (nonzero out-of-window values; stored zeros
/// and in-window values are `false`).
pub fn outlier_mask(enc: &EncodedTensor) -> Vec<bool> {
    enc.decode_operands().iter().map(|op| op.tag).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::{encode_tensor, Bf16, BiasDecoder, ExponentWindow};

    fn ops(xs: &[f32], base: u8) -> Vec<DecodedOperand> {
        let w = ExponentWindow::owlp(base);
        let dec = BiasDecoder::new(base);
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    }

    #[test]
    fn no_outliers_means_no_overhead() {
        let sched = OutlierSchedule::new(32, 2, 2);
        let mask = vec![false; 8 * 64];
        let s = sched.activation_stats(&mask, 8, 64);
        assert_eq!(s.ratio, 1.0);
        assert_eq!(s.extra_units, 0);
        assert_eq!(s.base_units, 8 * 2);
    }

    #[test]
    fn fig6_example_three_outliers_two_paths() {
        // Fig. 6: a column with 3 outliers and 2 paths splits into 2+1.
        let sched = OutlierSchedule::new(8, 2, 2);
        let mut mask = vec![false; 8];
        mask[1] = true;
        mask[4] = true;
        mask[6] = true;
        let s = sched.activation_stats(&mask, 1, 8);
        assert_eq!(s.extra_units, 1); // one extra sub-row
        assert_eq!(s.ratio, 2.0); // (1 + 1) / 1 for this single-row tensor
        assert_eq!(s.max_outliers_per_unit, 3);
    }

    #[test]
    fn split_preserves_values_and_respects_budget() {
        let sched = OutlierSchedule::new(8, 2, 2);
        let mut xs = vec![1.0f32; 8];
        xs[1] = 3.0e20;
        xs[4] = -1.0e22;
        xs[6] = 2.0e25;
        let row = ops(&xs, 124);
        let subs = sched.split_activation_row(&row);
        assert_eq!(subs.len(), 2);
        for sub in &subs {
            assert!(sub.iter().filter(|o| o.tag).count() <= 2);
            assert_eq!(sub.len(), 8);
        }
        // Each position is nonzero in exactly one sub-row and carries the
        // original operand there.
        for i in 0..8 {
            let nonzero: Vec<&DecodedOperand> = subs
                .iter()
                .map(|s| &s[i])
                .filter(|o| !o.is_zero())
                .collect();
            assert_eq!(nonzero.len(), 1, "position {i}");
            assert_eq!(*nonzero[0], row[i]);
        }
    }

    #[test]
    fn split_sum_of_dot_products_is_preserved() {
        use owlp_arith::column::PeColumn;
        use owlp_arith::exact_dot;
        use owlp_arith::pe::PeConfig;

        let sched = OutlierSchedule::new(16, 2, 2);
        let mut xs: Vec<f32> = (0..16).map(|i| 1.0 + i as f32 / 8.0).collect();
        xs[2] = 1e20;
        xs[7] = -3e21;
        xs[11] = 5e19;
        xs[13] = 2e22;
        let ys: Vec<f32> = (0..16).map(|i| 0.5 + i as f32 / 16.0).collect();
        let row = ops(&xs, 124);
        let wcol = ops(&ys, 124);
        let subs = sched.split_activation_row(&row);
        assert_eq!(subs.len(), 2);
        // Compute each sub-row against the weights and combine the *exact*
        // contributions — equality is checked at f64 precision because each
        // sub-pass is itself exact.
        let col = PeColumn::new(PeConfig::PAPER, 2);
        let mut combined = 0.0f64;
        for sub in &subs {
            let out = col.compute(sub, &wcol, 124, 124).unwrap();
            combined += out.value as f64;
        }
        let a_bf: Vec<Bf16> = xs.iter().map(|&x| Bf16::from_f32(x)).collect();
        let b_bf: Vec<Bf16> = ys.iter().map(|&x| Bf16::from_f32(x)).collect();
        let golden = exact_dot(&a_bf, &b_bf) as f64;
        let rel = (combined - golden).abs() / golden.abs().max(1e-30);
        assert!(rel < 1e-6, "combined {combined} vs golden {golden}");
    }

    #[test]
    fn weight_stats_column_major_access() {
        // k=4, n=3; outliers down column 1 only.
        let sched = OutlierSchedule::new(4, 2, 1);
        let mut mask = vec![false; 12];
        for kk in 0..4 {
            mask[kk * 3 + 1] = true;
        }
        let s = sched.weight_stats(&mask, 4, 3);
        // Column 1 has 4 outliers, 1 path → 4 slots, 3 extra.
        assert_eq!(s.extra_units, 3);
        assert_eq!(s.base_units, 3);
        assert!((s.ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn tiling_splits_pressure() {
        // 4 outliers in one row of 64: within one 64-tile → 1 extra
        // (4 outliers / 2 paths = 2 slots); within two 32-tiles of 2 each →
        // no extra.
        let mut mask = vec![false; 64];
        mask[1] = true;
        mask[2] = true;
        mask[40] = true;
        mask[41] = true;
        let wide = OutlierSchedule::new(64, 2, 2).activation_stats(&mask, 1, 64);
        let narrow = OutlierSchedule::new(32, 2, 2).activation_stats(&mask, 1, 64);
        assert_eq!(wide.extra_units, 1);
        assert_eq!(narrow.extra_units, 0);
    }

    #[test]
    fn outlier_mask_from_encoded_tensor() {
        let mut xs = [1.0f32; 10];
        xs[3] = 1e30;
        xs[7] = 0.0; // stored as exponent-0 outlier but not a datapath outlier
        let t: Vec<Bf16> = xs.iter().map(|&x| Bf16::from_f32(x)).collect();
        let enc = encode_tensor(&t, None).unwrap();
        let mask = outlier_mask(&enc);
        assert!(mask[3]);
        assert!(!mask[7]);
        assert_eq!(mask.iter().filter(|&&b| b).count(), 1);
    }

    #[test]
    fn more_paths_less_overhead() {
        // Fig. 10's monotonicity: r decreases as paths increase.
        let mut mask = vec![false; 4 * 96];
        for (i, m) in mask.iter_mut().enumerate() {
            if i % 13 == 0 {
                *m = true;
            }
        }
        let mut prev = f64::INFINITY;
        for paths in [1usize, 2, 4, 8] {
            let s = OutlierSchedule::new(96, paths, paths).activation_stats(&mask, 4, 96);
            assert!(s.ratio <= prev, "paths {paths}: {} > {prev}", s.ratio);
            prev = s.ratio;
        }
    }

    #[test]
    #[should_panic(expected = "at least one outlier path")]
    fn zero_paths_rejected() {
        let _ = OutlierSchedule::new(32, 0, 0);
    }

    #[test]
    fn empty_gemm_edge() {
        let sched = OutlierSchedule::new(32, 2, 2);
        let s = sched.activation_stats(&[], 0, 0);
        assert_eq!(s.ratio, 1.0);
    }
}
