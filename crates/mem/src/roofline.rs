//! Roofline aggregation over co-simulated phases.
//!
//! The paper's Eq. 3/4 discussion argues decode is bandwidth-bound: one
//! token's GEMMs touch every weight byte once, so arithmetic intensity is
//! ~`batch` MACs per weight byte and the 256 GB/s link, not the 49 K MACs,
//! sets the decode rate — while prefill amortises the same bytes over the
//! whole prompt and lives on the compute roof. This module turns a set of
//! [`PhaseResult`]s into exactly that comparison: per-op roofline points
//! and per-class (prefill/decode) aggregates with an explicit
//! memory-bound/compute-bound verdict.

use crate::cosim::{PhaseClass, PhaseResult};
use owlp_hw::MemorySystem;
use serde::{Deserialize, Serialize};

/// One op's position on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Op label.
    pub label: String,
    /// Serving phase class.
    pub class: PhaseClass,
    /// Arithmetic intensity: MACs per fetched off-chip byte.
    pub intensity_macs_per_byte: f64,
    /// Achieved off-chip bandwidth over the makespan, GB/s.
    pub achieved_gbps: f64,
    /// Achieved compute rate over the makespan, GMAC/s.
    pub achieved_gmacs: f64,
    /// `max(compute, memory) / makespan` — 1.0 is perfect overlap.
    pub overlap_efficiency: f64,
    /// Whether the op is bandwidth-bound.
    pub memory_bound: bool,
    /// The underlying co-sim result.
    pub result: PhaseResult,
}

/// Per-phase-class totals and verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseAggregate {
    /// The class being aggregated.
    pub class: PhaseClass,
    /// Σ compute cycles across the class's ops.
    pub compute_cycles: f64,
    /// Σ pure-memory cycles.
    pub memory_cycles: f64,
    /// Σ makespans (ops execute back to back within a phase).
    pub makespan: f64,
    /// Σ off-chip payload bytes.
    pub fetched_bytes: u64,
    /// Σ outlier-spill bytes.
    pub overflow_bytes: u64,
    /// Σ MACs.
    pub macs: u64,
    /// Class-level arithmetic intensity, MACs per byte.
    pub intensity_macs_per_byte: f64,
    /// Achieved bandwidth over the class makespan, GB/s.
    pub achieved_gbps: f64,
    /// Fraction of the class makespan covered by `max(compute, memory)`.
    pub overlap_efficiency: f64,
    /// The roofline verdict: `Σ memory > Σ compute`.
    pub memory_bound: bool,
    /// Whether every op in the class conserved bytes across channels.
    pub bytes_conserved: bool,
}

/// A full roofline report: points, class aggregates, and machine limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineReport {
    /// Accelerator clock, Hz.
    pub clock_hz: f64,
    /// Peak off-chip bandwidth, GB/s.
    pub peak_gbps: f64,
    /// Per-op points in input order.
    pub points: Vec<RooflinePoint>,
    /// One aggregate per class present, in [`PhaseClass`] declaration
    /// order (Single, Prefill, Decode).
    pub aggregates: Vec<PhaseAggregate>,
}

impl RooflineReport {
    /// Builds the report from co-sim results.
    pub fn new(mem: &MemorySystem, clock_hz: f64, results: Vec<PhaseResult>) -> Self {
        let points: Vec<RooflinePoint> = results
            .into_iter()
            .map(|r| {
                let seconds = r.makespan / clock_hz;
                let (gbps, gmacs) = if seconds > 0.0 {
                    (
                        r.fetched_bytes as f64 / seconds / 1e9,
                        r.macs as f64 / seconds / 1e9,
                    )
                } else {
                    (0.0, 0.0)
                };
                RooflinePoint {
                    label: r.label.clone(),
                    class: r.class,
                    intensity_macs_per_byte: if r.fetched_bytes > 0 {
                        r.macs as f64 / r.fetched_bytes as f64
                    } else {
                        f64::INFINITY
                    },
                    achieved_gbps: gbps,
                    achieved_gmacs: gmacs,
                    overlap_efficiency: r.overlap_efficiency(),
                    memory_bound: r.memory_bound,
                    result: r,
                }
            })
            .collect();
        let aggregates = [PhaseClass::Single, PhaseClass::Prefill, PhaseClass::Decode]
            .into_iter()
            .filter_map(|class| aggregate(&points, class, clock_hz))
            .collect();
        RooflineReport {
            clock_hz,
            peak_gbps: mem.offchip_bytes_per_s / 1e9,
            points,
            aggregates,
        }
    }

    /// The aggregate for `class`, if any op of that class was simulated.
    pub fn class_aggregate(&self, class: PhaseClass) -> Option<&PhaseAggregate> {
        self.aggregates.iter().find(|a| a.class == class)
    }

    /// Whether every simulated op conserved bytes.
    pub fn bytes_conserved(&self) -> bool {
        self.aggregates.iter().all(|a| a.bytes_conserved)
    }
}

fn aggregate(points: &[RooflinePoint], class: PhaseClass, clock_hz: f64) -> Option<PhaseAggregate> {
    let of_class: Vec<&RooflinePoint> = points.iter().filter(|p| p.class == class).collect();
    if of_class.is_empty() {
        return None;
    }
    let compute_cycles: f64 = of_class.iter().map(|p| p.result.compute_cycles).sum();
    let memory_cycles: f64 = of_class.iter().map(|p| p.result.memory_cycles).sum();
    let makespan: f64 = of_class.iter().map(|p| p.result.makespan).sum();
    let fetched_bytes: u64 = of_class.iter().map(|p| p.result.fetched_bytes).sum();
    let overflow_bytes: u64 = of_class.iter().map(|p| p.result.overflow_bytes).sum();
    let macs: u64 = of_class.iter().map(|p| p.result.macs).sum();
    let seconds = makespan / clock_hz;
    Some(PhaseAggregate {
        class,
        compute_cycles,
        memory_cycles,
        makespan,
        fetched_bytes,
        overflow_bytes,
        macs,
        intensity_macs_per_byte: if fetched_bytes > 0 {
            macs as f64 / fetched_bytes as f64
        } else {
            f64::INFINITY
        },
        achieved_gbps: if seconds > 0.0 {
            fetched_bytes as f64 / seconds / 1e9
        } else {
            0.0
        },
        overlap_efficiency: if makespan > 0.0 {
            compute_cycles.max(memory_cycles) / makespan
        } else {
            1.0
        },
        memory_bound: memory_cycles > compute_cycles,
        bytes_conserved: of_class.iter().all(|p| p.result.conserves_bytes()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cosim::{CosimEngine, PhaseSpec};

    fn result(label: &str, class: PhaseClass, compute: u64, bytes: u64) -> PhaseResult {
        let e = CosimEngine::new(MemorySystem::paper(), 500.0e6);
        e.run_phase(&PhaseSpec {
            label: label.into(),
            class,
            groups: 100,
            compute_cycles_per_group: compute,
            tile_bytes_per_group: bytes,
            outliers_per_group: 0,
            resident_bytes: 0,
            macs: 1_000_000,
        })
    }

    #[test]
    fn aggregates_split_by_class_and_carry_the_verdict() {
        let mem = MemorySystem::paper();
        let rep = RooflineReport::new(
            &mem,
            500.0e6,
            vec![
                result("prefill/qkv", PhaseClass::Prefill, 5000, 512),
                result("decode/qkv", PhaseClass::Decode, 4, 8192),
                result("decode/ffn", PhaseClass::Decode, 8, 8192),
            ],
        );
        assert_eq!(rep.aggregates.len(), 2);
        let pre = rep.class_aggregate(PhaseClass::Prefill).unwrap();
        let dec = rep.class_aggregate(PhaseClass::Decode).unwrap();
        assert!(!pre.memory_bound);
        assert!(dec.memory_bound);
        assert!(rep.bytes_conserved());
        assert_eq!(rep.peak_gbps, 256.0);
        // Achieved bandwidth can approach but never beat the roof.
        for a in &rep.aggregates {
            assert!(
                a.achieved_gbps <= rep.peak_gbps + 1e-9,
                "{}",
                a.achieved_gbps
            );
        }
        assert!(dec.achieved_gbps > 0.9 * rep.peak_gbps);
    }

    #[test]
    fn intensity_orders_prefill_above_decode() {
        let mem = MemorySystem::paper();
        let rep = RooflineReport::new(
            &mem,
            500.0e6,
            vec![
                result("prefill", PhaseClass::Prefill, 5000, 512),
                result("decode", PhaseClass::Decode, 4, 8192),
            ],
        );
        let pre = rep.class_aggregate(PhaseClass::Prefill).unwrap();
        let dec = rep.class_aggregate(PhaseClass::Decode).unwrap();
        assert!(pre.intensity_macs_per_byte > dec.intensity_macs_per_byte);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let mem = MemorySystem::paper();
        let rep = RooflineReport::new(
            &mem,
            500.0e6,
            vec![result("x", PhaseClass::Single, 10, 512)],
        );
        let v = rep.to_value();
        let back = RooflineReport::from_value(&v).unwrap();
        assert_eq!(back, rep);
    }
}
