//! Double-buffered on-chip tile planning over the SRAM budget.
//!
//! Each fold group's stationary weight-tile set is one prefetch unit. The
//! tile manager decides how many of those units the 12 MB buffer can hold
//! simultaneously next to the phase's resident data (streamed activations
//! and accumulating outputs): depth 2 is classic double buffering — fetch
//! group `i+1` while group `i` computes — and depth 1 means the buffer is
//! too full to prefetch, serialising fetch and compute.
//!
//! The outlier-exponent buffer (paper §IV-D) is planned here too: entries
//! beyond its capacity spill off chip and are re-fetched burst by burst,
//! inflating the group's traffic.

use owlp_hw::memory::OutlierBuffer;
use owlp_hw::MemorySystem;
use serde::{Deserialize, Serialize};

/// SRAM residency plan for one phase of uniform fold groups.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TilePlan {
    /// Off-chip bytes per group: the tile set plus any outlier spill.
    pub group_bytes: u64,
    /// Portion of `group_bytes` caused by outlier-buffer overflow.
    pub overflow_bytes: u64,
    /// Tile-buffer slots actually usable (≤ configured depth; ≥ 1).
    pub effective_depth: usize,
    /// Whether even a single group plus the resident set fits on chip.
    /// When false the group streams through in fragments; the model keeps
    /// depth 1 (no prefetch overlap) as the conservative account.
    pub fits: bool,
}

impl TilePlan {
    /// Plans the buffer split for groups of `tile_bytes` each, with
    /// `tile_outliers` outlier entries per group and `resident_bytes` of
    /// phase-persistent data sharing the SRAM.
    pub fn new(
        mem: &MemorySystem,
        tile_bytes: u64,
        tile_outliers: usize,
        resident_bytes: u64,
    ) -> Self {
        let overflow_bytes = mem.outlier_buffer.overflow_bytes(tile_outliers);
        let group_bytes = tile_bytes + overflow_bytes;
        let budget = mem.sram_bytes.saturating_sub(resident_bytes);
        // Zero-byte tiles fit trivially: grant the full configured depth.
        let max_slots = budget
            .checked_div(tile_bytes)
            .unwrap_or(mem.double_buffer as u64);
        let effective_depth = (mem.double_buffer as u64).min(max_slots).max(1) as usize;
        TilePlan {
            group_bytes,
            overflow_bytes,
            effective_depth,
            fits: max_slots >= 1,
        }
    }

    /// Whether prefetch overlap is possible at all.
    pub fn overlapped(&self) -> bool {
        self.effective_depth >= 2
    }
}

/// Outlier entries a tile of `elements` values contributes at `rate`
/// (fraction of elements tagged as outliers), rounded up so a non-zero
/// rate always books at least the entries it implies.
pub fn tile_outlier_entries(elements: u64, rate: f64) -> usize {
    (elements as f64 * rate.clamp(0.0, 1.0)).ceil() as usize
}

/// Convenience: the spill bytes `buffer` adds for a tile of `elements`
/// values at outlier `rate` (zero whenever the buffer holds them all).
pub fn spill_bytes(buffer: &OutlierBuffer, elements: u64, rate: f64) -> u64 {
    buffer.overflow_bytes(tile_outlier_entries(elements, rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_double_buffer_weight_tiles() {
        let mem = MemorySystem::paper();
        // One OwL-P fold group: 48 arrays × (4×32×8 lanes) stationary
        // weights at 1.5 B/element ≈ 590 KB — double buffering fits with
        // megabytes to spare.
        let tile_bytes = (48 * 4 * 32 * 8) as u64 * 3 / 2;
        let plan = TilePlan::new(&mem, tile_bytes, 0, 2 * 1024 * 1024);
        assert_eq!(plan.effective_depth, 2);
        assert!(plan.fits && plan.overlapped());
        assert_eq!(plan.group_bytes, tile_bytes);
        assert_eq!(plan.overflow_bytes, 0);
    }

    #[test]
    fn depth_degrades_when_tiles_crowd_the_buffer() {
        let mem = MemorySystem::paper();
        let seven_mb = 7 * 1024 * 1024;
        let plan = TilePlan::new(&mem, seven_mb, 0, 0);
        assert_eq!(plan.effective_depth, 1);
        assert!(plan.fits && !plan.overlapped());
        // Oversized tile: still depth 1, flagged as not fitting.
        let plan = TilePlan::new(&mem, 13 * 1024 * 1024, 0, 0);
        assert_eq!(plan.effective_depth, 1);
        assert!(!plan.fits);
    }

    #[test]
    fn resident_data_shrinks_the_tile_budget() {
        let mem = MemorySystem::paper();
        let five_mb = 5 * 1024 * 1024;
        assert!(TilePlan::new(&mem, five_mb, 0, 0).overlapped());
        assert!(!TilePlan::new(&mem, five_mb, 0, 3 * 1024 * 1024).overlapped());
    }

    #[test]
    fn outlier_overflow_inflates_group_traffic() {
        let mem = MemorySystem::paper();
        let entries = mem.outlier_buffer.entries;
        let plan = TilePlan::new(&mem, 1024, entries + 10, 0);
        assert_eq!(plan.overflow_bytes, 10 * mem.outlier_buffer.burst_bytes);
        assert_eq!(plan.group_bytes, 1024 + plan.overflow_bytes);
        // At paper outlier rates (~1.5 %) a full tile set never spills.
        let tile_elements = (48 * 4 * 32 * 8) as u64;
        assert_eq!(spill_bytes(&mem.outlier_buffer, tile_elements, 0.015), 0);
    }

    #[test]
    fn outlier_entry_rounding_books_partial_elements() {
        assert_eq!(tile_outlier_entries(1000, 0.0015), 2);
        assert_eq!(tile_outlier_entries(1000, 0.0), 0);
        assert_eq!(tile_outlier_entries(1000, 2.0), 1000);
    }
}
