//! The compute/memory co-simulation engine.
//!
//! A GEMM phase is a stream of *fold groups*: every group preloads one
//! stationary weight-tile set (all arrays in parallel) and then computes
//! its folds. The engine races each group's tile fetch — timed burst by
//! burst on the per-channel HBM model — against the previous group's
//! compute, under the tile manager's prefetch depth:
//!
//! ```text
//! fetch_start(g)   = max(fetch_end(g−1), compute_end(g−depth))
//! compute_start(g) = max(compute_end(g−1), fetch_end(g))
//! compute_end(g)   = compute_start(g) + compute_cycles(g)
//! ```
//!
//! `fetch_end` comes from [`ChannelSim::request`]. With depth ≥ 2 the
//! steady state runs at `max(compute_one, fetch_one)` per group, so the
//! phase makespan is `max(compute_cycles, memory_cycles)` plus a
//! non-overlapped prologue (the head fetch when compute-bound, the tail
//! compute when bandwidth-bound) — exposed explicitly as
//! [`PhaseResult::prologue`]. Depth 1 serialises fetch and compute.
//!
//! Uniform phases (every group identical) take a steady-state fast path:
//! the recurrence is simulated exactly for a warm-up window, verified to
//! have settled into a constant per-group increment, and extrapolated —
//! bit-reproducibly, since the whole engine is serial f64 arithmetic.

use crate::offchip::{request_footprint, ChannelSim};
use crate::tiles::TilePlan;
use owlp_hw::MemorySystem;
use owlp_systolic::event_sim::EventSimResult;
use serde::{Deserialize, Serialize};

/// Which serving phase a GEMM stream belongs to (mirrors
/// `owlp_model::Phase`; redeclared here so `owlp-mem` stays below
/// `owlp-model` in the crate DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseClass {
    /// Single-pass inference (no prefill/decode distinction).
    Single,
    /// Prompt processing.
    Prefill,
    /// Auto-regressive generation.
    Decode,
}

/// One uniform GEMM phase: `groups` identical fold groups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Human-readable op label (e.g. `"decode/ffn_up"`).
    pub label: String,
    /// Serving phase this stream belongs to.
    pub class: PhaseClass,
    /// Fold groups in the stream.
    pub groups: u64,
    /// Compute cycles of one group (all arrays run it in lockstep).
    pub compute_cycles_per_group: u64,
    /// Off-chip bytes of one group's stationary tile set (compressed).
    pub tile_bytes_per_group: u64,
    /// Outlier-exponent entries one tile set stages on chip.
    pub outliers_per_group: usize,
    /// Phase-persistent SRAM bytes (streamed activations + outputs) that
    /// shrink the tile-buffer budget.
    pub resident_bytes: u64,
    /// MAC operations the phase performs (for roofline intensity).
    pub macs: u64,
}

/// Timing outcome of one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseResult {
    /// Label copied from the spec.
    pub label: String,
    /// Serving phase class copied from the spec.
    pub class: PhaseClass,
    /// Fold groups simulated.
    pub groups: u64,
    /// Pure compute time: Σ per-group compute cycles.
    pub compute_cycles: f64,
    /// Pure memory time: the phase's traffic streamed at full tilt
    /// (most-loaded channel's total busy time, no compute coupling).
    pub memory_cycles: f64,
    /// Coupled end-to-end cycles of the phase.
    pub makespan: f64,
    /// Non-overlapped cycles: `makespan − max(compute, memory)` ≥ 0.
    pub prologue: f64,
    /// Tile-buffer slots the SRAM budget allowed (1 = no overlap).
    pub effective_depth: usize,
    /// Whether one group plus the resident set fit on chip at all.
    pub fits: bool,
    /// Total off-chip payload bytes (tiles + outlier spill).
    pub fetched_bytes: u64,
    /// Portion of `fetched_bytes` from outlier-buffer overflow.
    pub overflow_bytes: u64,
    /// Payload bytes delivered by each HBM channel.
    pub channel_bytes: Vec<u64>,
    /// MAC operations (copied from the spec).
    pub macs: u64,
    /// `memory_cycles > compute_cycles`: the phase is bandwidth-bound.
    pub memory_bound: bool,
}

impl PhaseResult {
    /// Byte-conservation check: every requested byte is accounted to
    /// exactly one channel.
    pub fn conserves_bytes(&self) -> bool {
        self.channel_bytes.iter().sum::<u64>() == self.fetched_bytes
    }

    /// Achieved off-chip bandwidth over the makespan, bytes per cycle.
    pub fn achieved_bytes_per_cycle(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 0.0;
        }
        self.fetched_bytes as f64 / self.makespan
    }

    /// Overlap efficiency: `max(compute, memory) / makespan` (1.0 means
    /// the prologue vanished; lower means exposed serialisation).
    pub fn overlap_efficiency(&self) -> f64 {
        if self.makespan <= 0.0 {
            return 1.0;
        }
        self.compute_cycles.max(self.memory_cycles) / self.makespan
    }
}

/// Groups the engine simulates exactly before extrapolating a uniform
/// stream (enough to flush the prefetch pipeline and channel skew).
const WARMUP_GROUPS: u64 = 64;

/// The deterministic compute/memory co-simulator for one memory system.
#[derive(Debug, Clone)]
pub struct CosimEngine {
    mem: MemorySystem,
    clock_hz: f64,
}

impl CosimEngine {
    /// An engine over `mem` at `clock_hz`.
    pub fn new(mem: MemorySystem, clock_hz: f64) -> Self {
        CosimEngine { mem, clock_hz }
    }

    /// The memory system being simulated.
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Accelerator clock, Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Seconds for `cycles` at the engine clock.
    pub fn seconds(&self, cycles: f64) -> f64 {
        cycles / self.clock_hz
    }

    /// Closed-form fallback: cycles to move `bytes` at perfect channel
    /// utilisation ([`MemorySystem::transfer_seconds`] in cycle units).
    pub fn transfer_cycles(&self, bytes: u64) -> f64 {
        self.mem.transfer_seconds(bytes) * self.clock_hz
    }

    /// Runs one uniform phase.
    pub fn run_phase(&self, spec: &PhaseSpec) -> PhaseResult {
        let plan = TilePlan::new(
            &self.mem,
            spec.tile_bytes_per_group,
            spec.outliers_per_group,
            spec.resident_bytes,
        );
        let g = spec.groups;
        if g == 0 || (spec.compute_cycles_per_group == 0 && plan.group_bytes == 0) {
            return self.empty_result(spec, &plan);
        }

        let warmup = g.min(WARMUP_GROUPS.max(plan.effective_depth as u64 + 8));
        let computes = vec![spec.compute_cycles_per_group; warmup as usize];
        let trace = self.simulate(&plan, &computes);

        let (makespan, channel_bytes) = if g == warmup {
            (trace.makespan, trace.channel_bytes)
        } else {
            // Steady state: the per-group increment settles to a constant
            // once the prefetch pipeline is full; extrapolate the rest.
            let ce = &trace.compute_ends;
            let w = ce.len();
            let d1 = ce[w - 1] - ce[w - 2];
            let d2 = ce[w - 2] - ce[w - 3];
            debug_assert!(
                (d1 - d2).abs() <= 1e-6 * d1.abs().max(1.0),
                "uniform stream did not reach steady state: {d1} vs {d2}"
            );
            let makespan = ce[w - 1] + (g - warmup) as f64 * d1;
            let foot = request_footprint(self.mem.channels, self.mem.burst_bytes, plan.group_bytes);
            let channel_bytes = foot.iter().map(|b| b * g).collect();
            (makespan, channel_bytes)
        };

        self.finish(
            spec,
            &plan,
            g,
            g as f64 * spec.compute_cycles_per_group as f64,
            makespan,
            channel_bytes,
        )
    }

    /// Runs a phase whose per-group compute cycles are given explicitly
    /// (no extrapolation) — e.g. the measured fold trace of an event
    /// simulation. Every group still fetches `tile_bytes_per_group`.
    pub fn run_groups(&self, spec: &PhaseSpec, compute_cycles: &[u64]) -> PhaseResult {
        let plan = TilePlan::new(
            &self.mem,
            spec.tile_bytes_per_group,
            spec.outliers_per_group,
            spec.resident_bytes,
        );
        if compute_cycles.is_empty() {
            return self.empty_result(spec, &plan);
        }
        let trace = self.simulate(&plan, compute_cycles);
        self.finish(
            spec,
            &plan,
            compute_cycles.len() as u64,
            compute_cycles.iter().map(|&c| c as f64).sum(),
            trace.makespan,
            trace.channel_bytes,
        )
    }

    /// Couples the engine to an event-simulation run: each simulated fold
    /// becomes one compute group racing its tile fetch. The spec's
    /// `groups`/`compute_cycles_per_group` are ignored in favour of the
    /// measured [`EventSimResult::fold_cycles`] trace.
    pub fn couple_event_sim(&self, spec: &PhaseSpec, sim: &EventSimResult) -> PhaseResult {
        self.run_groups(spec, &sim.fold_cycles)
    }

    /// The prefetch recurrence over an explicit compute trace.
    fn simulate(&self, plan: &TilePlan, compute_cycles: &[u64]) -> StreamTrace {
        let depth = plan.effective_depth;
        let mut hbm = ChannelSim::new(&self.mem, self.clock_hz);
        let mut fetch_end = 0.0f64;
        // compute_end(g−depth) gate: ring buffer of the last `depth` ends.
        let mut ring = vec![0.0f64; depth];
        let mut compute_end = 0.0f64;
        let mut compute_ends = Vec::with_capacity(compute_cycles.len());
        for (g, &c) in compute_cycles.iter().enumerate() {
            let freed = ring[g % depth];
            let fetch_start = fetch_end.max(freed);
            fetch_end = hbm.request(fetch_start, plan.group_bytes);
            let compute_start = compute_end.max(fetch_end);
            compute_end = compute_start + c as f64;
            ring[g % depth] = compute_end;
            compute_ends.push(compute_end);
        }
        StreamTrace {
            makespan: compute_end,
            channel_bytes: hbm.channel_bytes().to_vec(),
            compute_ends,
        }
    }

    /// Pure memory time: the stream's bursts delivered back to back — the
    /// most-loaded channel (channel 0, which round-robin fills first)
    /// carries `⌈bursts/channels⌉` bursts per group.
    fn stream_memory_cycles(&self, group_bytes: u64, groups: u64) -> f64 {
        if group_bytes == 0 {
            return 0.0;
        }
        let bursts = group_bytes.div_ceil(self.mem.burst_bytes.max(1));
        let per_channel = bursts.div_ceil(self.mem.channels.max(1) as u64);
        groups as f64 * per_channel as f64 * self.mem.burst_cycles(self.clock_hz)
    }

    fn finish(
        &self,
        spec: &PhaseSpec,
        plan: &TilePlan,
        groups: u64,
        compute_cycles: f64,
        makespan: f64,
        channel_bytes: Vec<u64>,
    ) -> PhaseResult {
        let memory_cycles = self.stream_memory_cycles(plan.group_bytes, groups);
        let bound = compute_cycles.max(memory_cycles);
        PhaseResult {
            label: spec.label.clone(),
            class: spec.class,
            groups,
            compute_cycles,
            memory_cycles,
            makespan,
            prologue: makespan - bound,
            effective_depth: plan.effective_depth,
            fits: plan.fits,
            fetched_bytes: groups * plan.group_bytes,
            overflow_bytes: groups * plan.overflow_bytes,
            channel_bytes,
            macs: spec.macs,
            memory_bound: memory_cycles > compute_cycles,
        }
    }

    fn empty_result(&self, spec: &PhaseSpec, plan: &TilePlan) -> PhaseResult {
        PhaseResult {
            label: spec.label.clone(),
            class: spec.class,
            groups: 0,
            compute_cycles: 0.0,
            memory_cycles: 0.0,
            makespan: 0.0,
            prologue: 0.0,
            effective_depth: plan.effective_depth,
            fits: plan.fits,
            fetched_bytes: 0,
            overflow_bytes: 0,
            channel_bytes: vec![0; self.mem.channels.max(1)],
            macs: spec.macs,
            memory_bound: false,
        }
    }
}

struct StreamTrace {
    makespan: f64,
    channel_bytes: Vec<u64>,
    compute_ends: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CosimEngine {
        CosimEngine::new(MemorySystem::paper(), 500.0e6)
    }

    fn spec(groups: u64, compute: u64, bytes: u64) -> PhaseSpec {
        PhaseSpec {
            label: "test".into(),
            class: PhaseClass::Single,
            groups,
            compute_cycles_per_group: compute,
            tile_bytes_per_group: bytes,
            outliers_per_group: 0,
            resident_bytes: 0,
            macs: 0,
        }
    }

    /// One group of 512 B is 1 fetch cycle at paper defaults (8 × 64 B in
    /// parallel); fetch of group i+1 hides behind compute of group i.
    #[test]
    fn compute_bound_matches_double_buffered_closed_form() {
        let e = engine();
        for groups in [1u64, 2, 5, 64, 1000, 1_000_000] {
            let r = e.run_phase(&spec(groups, 100, 512));
            // fetch_one = 1 cycle, compute_one = 100 cycles:
            // T = fetch_one + groups × compute_one.
            let expect = double_buffered(100, 1, groups);
            assert_eq!(r.makespan, expect as f64, "{groups} groups");
            assert_eq!(r.prologue, 1.0);
            assert!(!r.memory_bound);
            assert!(r.conserves_bytes());
            assert_eq!(r.fetched_bytes, groups * 512);
        }
    }

    /// Mirror of `owlp_core::timing::double_buffered_cycles` (owlp-mem
    /// sits below owlp-core in the crate DAG, so restate the formula).
    fn double_buffered(compute_one: u64, fetch_one: u64, groups: u64) -> u64 {
        fetch_one + groups * compute_one.max(fetch_one)
    }

    #[test]
    fn bandwidth_bound_runs_at_memory_speed_plus_tail_compute() {
        let e = engine();
        // 8 KB per group = 16 cycles of fetch vs 4 cycles of compute.
        let r = e.run_phase(&spec(100, 4, 8192));
        assert!(r.memory_bound);
        assert_eq!(r.memory_cycles, 1600.0);
        // Steady state at fetch rate; the last group's compute is exposed.
        assert_eq!(r.makespan, 1600.0 + 4.0);
        assert_eq!(r.prologue, 4.0);
        assert!(r.overlap_efficiency() > 0.99);
    }

    #[test]
    fn extrapolated_and_fully_simulated_streams_agree() {
        let e = engine();
        for (c, b) in [(100u64, 512u64), (4, 8192), (37, 700), (1, 64)] {
            // 200 groups: above the warm-up window, so run_phase
            // extrapolates; run_groups simulates every group.
            let s = spec(200, c, b);
            let fast = e.run_phase(&s);
            let full = e.run_groups(&s, &vec![c; 200]);
            assert_eq!(fast.makespan, full.makespan, "c={c} b={b}");
            assert_eq!(fast.channel_bytes, full.channel_bytes);
            assert_eq!(fast.memory_cycles, full.memory_cycles);
        }
    }

    #[test]
    fn depth_one_serialises_fetch_and_compute() {
        let mut mem = MemorySystem::paper();
        mem.double_buffer = 1;
        let e = CosimEngine::new(mem, 500.0e6);
        let r = e.run_phase(&spec(10, 100, 512));
        // No overlap: every group pays fetch (1) + compute (100).
        assert_eq!(r.makespan, 10.0 * 101.0);
        assert_eq!(r.effective_depth, 1);
    }

    #[test]
    fn cosim_never_beats_the_closed_form_transfer_time() {
        let e = engine();
        for (g, c, b) in [
            (100u64, 10u64, 513u64),
            (7, 0, 64),
            (1000, 3, 100),
            (64, 1000, 8192),
        ] {
            let r = e.run_phase(&spec(g, c, b));
            let closed = e.transfer_cycles(r.fetched_bytes);
            assert!(
                r.memory_cycles >= closed - 1e-9,
                "memory {} < closed-form {closed}",
                r.memory_cycles
            );
            assert!(r.makespan >= r.memory_cycles);
            assert!(r.makespan >= r.compute_cycles);
            assert!(r.prologue >= 0.0);
        }
    }

    #[test]
    fn outlier_overflow_adds_traffic_and_can_flip_the_verdict() {
        let e = engine();
        let lean = PhaseSpec {
            outliers_per_group: 0,
            ..spec(50, 8, 2048)
        };
        let entries = e.memory().outlier_buffer.entries;
        let spilling = PhaseSpec {
            outliers_per_group: entries + 256,
            ..lean.clone()
        };
        let a = e.run_phase(&lean);
        let b = e.run_phase(&spilling);
        assert_eq!(a.overflow_bytes, 0);
        assert_eq!(b.overflow_bytes, 50 * 256 * 32);
        assert!(b.fetched_bytes > a.fetched_bytes);
        assert!(b.memory_cycles > a.memory_cycles);
        assert!(b.conserves_bytes());
        // The spill alone turns a compute-bound stream bandwidth-bound.
        assert!(!a.memory_bound);
        assert!(b.memory_bound);
    }

    #[test]
    fn empty_phase_is_zero_cost() {
        let e = engine();
        let r = e.run_phase(&spec(0, 100, 512));
        assert_eq!(r.makespan, 0.0);
        assert!(r.conserves_bytes());
        assert_eq!(r.overlap_efficiency(), 1.0);
    }

    #[test]
    fn event_sim_coupling_uses_the_measured_fold_trace() {
        use owlp_format::Bf16;
        use owlp_systolic::{event_sim::simulate_gemm, ArrayConfig};
        let cfg = ArrayConfig::small(4, 4, 2);
        let (m, k, n) = (6, 32, 12);
        let a: Vec<Bf16> = (0..m * k)
            .map(|i| Bf16::from_f32(0.5 + (i % 7) as f32 * 0.1))
            .collect();
        let b: Vec<Bf16> = (0..k * n)
            .map(|i| Bf16::from_f32(1.0 - (i % 5) as f32 * 0.05))
            .collect();
        let sim = simulate_gemm(&cfg, &a, &b, m, k, n).unwrap();
        let e = engine();
        let s = spec(0, 0, 512);
        let coupled = e.couple_event_sim(&s, &sim);
        assert_eq!(coupled.groups, sim.fold_cycles.len() as u64);
        assert_eq!(coupled.compute_cycles, sim.cycles as f64);
        // Compute-bound here, so the coupled makespan is exactly
        // max(compute, memory) + head fetch.
        assert_eq!(
            coupled.makespan,
            coupled.compute_cycles.max(coupled.memory_cycles) + coupled.prologue
        );
        assert!(coupled.conserves_bytes());
    }
}
