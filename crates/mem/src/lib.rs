//! # owlp-mem
//!
//! Deterministic, event-driven HBM/SRAM co-simulation for the OwL-P
//! accelerator (paper §VI-A: 12 MB on-chip buffers, 256 GB/s HBM2):
//!
//! * [`offchip`] — per-channel burst timing: each tile request's bursts
//!   interleave across the HBM channels (bank-conflict-free streaming),
//!   with exact per-channel byte accounting;
//! * [`tiles`] — the double-buffered tile manager over the SRAM budget,
//!   including the §IV-D outlier-buffer overflow spill;
//! * [`cosim`] — the prefetch recurrence coupling tile fetches to fold
//!   compute, yielding per-phase `max(compute, memory)` makespans with
//!   the non-overlapped prologue exposed;
//! * [`roofline`] — per-op roofline points and per-phase-class
//!   (prefill/decode) aggregates with memory-bound verdicts.
//!
//! The whole engine is serial f64 arithmetic over integer cycle counts —
//! bit-identical across runs and `OWLP_THREADS` settings by construction,
//! and it can only *match or exceed* the closed-form
//! `MemorySystem::transfer_seconds` lower bound.
//!
//! ```
//! use owlp_hw::MemorySystem;
//! use owlp_mem::{CosimEngine, PhaseClass, PhaseSpec};
//!
//! let engine = CosimEngine::new(MemorySystem::paper(), 500.0e6);
//! let phase = engine.run_phase(&PhaseSpec {
//!     label: "decode/ffn_up".into(),
//!     class: PhaseClass::Decode,
//!     groups: 256,
//!     compute_cycles_per_group: 8,
//!     tile_bytes_per_group: 64 * 1024,
//!     outliers_per_group: 0,
//!     resident_bytes: 1 << 20,
//!     macs: 0,
//! });
//! // One token's worth of weight tiles at batch 1: the link, not the
//! // array, sets the pace.
//! assert!(phase.memory_bound);
//! assert_eq!(phase.makespan, phase.compute_cycles.max(phase.memory_cycles) + phase.prologue);
//! ```

pub mod cosim;
pub mod offchip;
pub mod roofline;
pub mod tiles;

pub use cosim::{CosimEngine, PhaseClass, PhaseResult, PhaseSpec};
pub use offchip::ChannelSim;
pub use roofline::{PhaseAggregate, RooflinePoint, RooflineReport};
pub use tiles::TilePlan;
