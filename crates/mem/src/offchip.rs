//! Per-channel off-chip request timing.
//!
//! HBM2 exposes independent channels; the tile streamer interleaves each
//! request's bursts across all of them, starting every request at channel 0
//! (tiles are allocated at channel-aligned addresses, so the interleave
//! phase resets per tile). Under the paper's bank-conflict-free streaming
//! assumption a channel is simply busy for `bursts × burst_cycles`; the
//! simulator therefore keeps one `busy-until` horizon per channel instead
//! of an event queue, which makes a request O(channels) while remaining
//! cycle-exact for this access pattern.

use owlp_hw::MemorySystem;

/// Deterministic per-channel burst-level timing model.
///
/// All times are in accelerator clock cycles (f64; exact at paper defaults,
/// where one 64 B burst is exactly one channel-cycle).
#[derive(Debug, Clone)]
pub struct ChannelSim {
    burst_bytes: u64,
    burst_cycles: f64,
    /// Per-channel time at which the channel next becomes free.
    busy_until: Vec<f64>,
    /// Per-channel payload bytes delivered so far.
    channel_bytes: Vec<u64>,
}

impl ChannelSim {
    /// A simulator for `mem`'s channel geometry at `clock_hz`.
    pub fn new(mem: &MemorySystem, clock_hz: f64) -> Self {
        let channels = mem.channels.max(1);
        ChannelSim {
            burst_bytes: mem.burst_bytes.max(1),
            burst_cycles: mem.burst_cycles(clock_hz),
            busy_until: vec![0.0; channels],
            channel_bytes: vec![0; channels],
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.busy_until.len()
    }

    /// Cycles one burst occupies its channel.
    pub fn burst_cycles(&self) -> f64 {
        self.burst_cycles
    }

    /// Issues a request for `bytes` at time `t_issue` and returns its
    /// completion time (when the last burst lands).
    ///
    /// The request is split into `⌈bytes/burst⌉` bursts dealt round-robin
    /// from channel 0; every burst occupies its channel for a full
    /// [`burst_cycles`](Self::burst_cycles), but the byte accounting
    /// credits only the payload — the final burst carries the partial
    /// remainder, so `Σ channel_bytes == Σ requested bytes` exactly.
    pub fn request(&mut self, t_issue: f64, bytes: u64) -> f64 {
        if bytes == 0 {
            return t_issue;
        }
        let channels = self.channels() as u64;
        let bursts = bytes.div_ceil(self.burst_bytes);
        let pad = bursts * self.burst_bytes - bytes;
        let last_channel = ((bursts - 1) % channels) as usize;
        let mut done = t_issue;
        for c in 0..self.channels() {
            let q = bursts / channels + u64::from((c as u64) < bursts % channels);
            if q == 0 {
                continue;
            }
            let start = if self.busy_until[c] > t_issue {
                self.busy_until[c]
            } else {
                t_issue
            };
            let end = start + q as f64 * self.burst_cycles;
            self.busy_until[c] = end;
            self.channel_bytes[c] += q * self.burst_bytes;
            if end > done {
                done = end;
            }
        }
        self.channel_bytes[last_channel] -= pad;
        done
    }

    /// Per-channel payload bytes delivered so far.
    pub fn channel_bytes(&self) -> &[u64] {
        &self.channel_bytes
    }

    /// Total payload bytes delivered so far.
    pub fn total_bytes(&self) -> u64 {
        self.channel_bytes.iter().sum()
    }

    /// Time at which the last busy channel goes idle.
    pub fn finish_time(&self) -> f64 {
        self.busy_until.iter().copied().fold(0.0, f64::max)
    }
}

/// Per-request channel-byte footprint: how many payload bytes of one
/// `bytes`-sized request land on each of `channels` channels. Used by the
/// steady-state extrapolation to scale traffic exactly (every request of a
/// uniform group stream has this same footprint).
pub fn request_footprint(channels: usize, burst_bytes: u64, bytes: u64) -> Vec<u64> {
    let channels = channels.max(1);
    let burst_bytes = burst_bytes.max(1);
    let mut out = vec![0u64; channels];
    if bytes == 0 {
        return out;
    }
    let bursts = bytes.div_ceil(burst_bytes);
    let pad = bursts * burst_bytes - bytes;
    for (c, slot) in out.iter_mut().enumerate() {
        *slot = (bursts / channels as u64 + u64::from((c as u64) < bursts % channels as u64))
            * burst_bytes;
    }
    out[((bursts - 1) % channels as u64) as usize] -= pad;
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_sim() -> ChannelSim {
        ChannelSim::new(&MemorySystem::paper(), 500.0e6)
    }

    #[test]
    fn one_burst_takes_one_cycle_at_paper_defaults() {
        let mut sim = paper_sim();
        assert_eq!(sim.request(0.0, 64), 1.0);
        assert_eq!(sim.total_bytes(), 64);
        assert_eq!(sim.channel_bytes()[0], 64);
    }

    #[test]
    fn full_interleave_finishes_in_parallel() {
        let mut sim = paper_sim();
        // 8 channels × 64 B: all bursts land in the same cycle.
        assert_eq!(sim.request(0.0, 512), 1.0);
        // Twice the bytes: two bursts deep on every channel.
        assert_eq!(sim.request(1.0, 1024), 3.0);
        assert_eq!(sim.total_bytes(), 1536);
    }

    #[test]
    fn partial_last_burst_conserves_bytes() {
        let mut sim = paper_sim();
        sim.request(0.0, 100); // 2 bursts, 28 B padding on channel 1
        assert_eq!(sim.total_bytes(), 100);
        assert_eq!(sim.channel_bytes()[0], 64);
        assert_eq!(sim.channel_bytes()[1], 36);
    }

    #[test]
    fn back_to_back_requests_queue_per_channel() {
        let mut sim = paper_sim();
        let t1 = sim.request(0.0, 576); // 9 bursts: channel 0 gets 2
        assert_eq!(t1, 2.0);
        // Issued before channel 0 frees: queues behind it.
        let t2 = sim.request(0.5, 64);
        assert_eq!(t2, 3.0);
        // Idle gap: issue time dominates.
        let t3 = sim.request(10.0, 64);
        assert_eq!(t3, 11.0);
    }

    #[test]
    fn zero_byte_request_is_free() {
        let mut sim = paper_sim();
        assert_eq!(sim.request(5.0, 0), 5.0);
        assert_eq!(sim.total_bytes(), 0);
        assert_eq!(sim.finish_time(), 0.0);
    }

    #[test]
    fn footprint_matches_simulated_distribution() {
        for bytes in [1u64, 63, 64, 100, 512, 513, 4096, 70_001] {
            let mut sim = paper_sim();
            sim.request(0.0, bytes);
            let foot = request_footprint(8, 64, bytes);
            assert_eq!(sim.channel_bytes(), &foot[..], "{bytes} bytes");
            assert_eq!(foot.iter().sum::<u64>(), bytes);
        }
    }
}
