//! Property tests for the co-simulation invariants the rest of the
//! workspace builds on: exact byte conservation across channels, the
//! closed-form transfer time as an unbeatable lower bound, and
//! non-negative exposed prologue with `makespan == max(c, m) + prologue`.

use owlp_hw::MemorySystem;
use owlp_mem::offchip::request_footprint;
use owlp_mem::{ChannelSim, CosimEngine, PhaseClass, PhaseSpec};
use proptest::prelude::*;

fn spec(groups: u64, compute: u64, bytes: u64, outliers: usize, resident: u64) -> PhaseSpec {
    PhaseSpec {
        label: "prop".into(),
        class: PhaseClass::Single,
        groups,
        compute_cycles_per_group: compute,
        tile_bytes_per_group: bytes,
        outliers_per_group: outliers,
        resident_bytes: resident,
        macs: 1,
    }
}

fn varied_memory(channels: usize, burst: u64, depth: usize) -> MemorySystem {
    let mut m = MemorySystem::paper();
    m.channels = channels;
    m.burst_bytes = burst;
    m.double_buffer = depth;
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Σ per-channel payload bytes == requested bytes, for any request
    /// size and channel geometry.
    #[test]
    fn channel_sim_conserves_bytes(
        channels in 1usize..16,
        burst in 1u64..512,
        requests in prop::collection::vec(0u64..100_000, 1..20),
    ) {
        let mem = varied_memory(channels, burst, 2);
        let mut sim = ChannelSim::new(&mem, 500.0e6);
        let mut t = 0.0;
        for &r in &requests {
            t = sim.request(t, r);
        }
        let total: u64 = requests.iter().sum();
        prop_assert_eq!(sim.total_bytes(), total);
        prop_assert_eq!(sim.channel_bytes().iter().sum::<u64>(), total);
        for &r in &requests {
            let foot = request_footprint(channels, burst, r);
            prop_assert_eq!(foot.iter().sum::<u64>(), r);
        }
    }

    /// Phase traffic: Σ per-channel bytes == groups × (tile bytes +
    /// outlier spill), including the extrapolated fast path.
    #[test]
    fn phase_traffic_conserves_bytes(
        channels in 1usize..16,
        burst in 1u64..256,
        depth in 1usize..4,
        groups in 1u64..5_000,
        compute in 0u64..2_000,
        bytes in 0u64..100_000,
        extra_outliers in 0usize..4_096,
    ) {
        let mem = varied_memory(channels, burst, depth);
        let outliers = mem.outlier_buffer.entries + extra_outliers;
        let e = CosimEngine::new(mem, 500.0e6);
        let r = e.run_phase(&spec(groups, compute, bytes, outliers, 0));
        let spill = extra_outliers as u64 * mem.outlier_buffer.burst_bytes;
        prop_assert!(r.conserves_bytes());
        prop_assert_eq!(r.fetched_bytes, groups * (bytes + spill));
        prop_assert_eq!(r.overflow_bytes, groups * spill);
    }

    /// The event-driven model never beats the closed-form
    /// `transfer_seconds` bound, and the makespan decomposes exactly into
    /// `max(compute, memory) + prologue` with `prologue ≥ 0`.
    #[test]
    fn cosim_never_beats_closed_form_and_prologue_is_nonnegative(
        channels in 1usize..16,
        burst in 1u64..256,
        depth in 1usize..4,
        groups in 1u64..5_000,
        compute in 0u64..2_000,
        bytes in 1u64..100_000,
        resident in 0u64..(16 * 1024 * 1024),
    ) {
        let mem = varied_memory(channels, burst, depth);
        let e = CosimEngine::new(mem, 500.0e6);
        let r = e.run_phase(&spec(groups, compute, bytes, 0, resident));
        let closed = e.transfer_cycles(r.fetched_bytes);
        prop_assert!(r.memory_cycles >= closed - 1e-6 * closed.max(1.0),
            "memory {} vs closed {}", r.memory_cycles, closed);
        prop_assert!(r.prologue >= 0.0);
        let recomposed = r.compute_cycles.max(r.memory_cycles) + r.prologue;
        prop_assert!((r.makespan - recomposed).abs() <= 1e-9 * r.makespan.max(1.0));
        prop_assert!(r.makespan >= r.compute_cycles);
        prop_assert!(r.makespan >= r.memory_cycles - 1e-9 * r.memory_cycles);
    }

    /// Extrapolated uniform phases agree exactly with the fully
    /// simulated recurrence.
    #[test]
    fn extrapolation_is_exact(
        channels in 1usize..16,
        burst in 1u64..256,
        depth in 1usize..4,
        groups in 65u64..400,
        compute in 0u64..2_000,
        bytes in 0u64..50_000,
    ) {
        let mem = varied_memory(channels, burst, depth);
        let e = CosimEngine::new(mem, 500.0e6);
        let s = spec(groups, compute, bytes, 0, 0);
        let fast = e.run_phase(&s);
        let full = e.run_groups(&s, &vec![compute; groups as usize]);
        prop_assert!((fast.makespan - full.makespan).abs()
            <= 1e-9 * full.makespan.max(1.0),
            "fast {} vs full {}", fast.makespan, full.makespan);
        prop_assert_eq!(fast.channel_bytes, full.channel_bytes);
        prop_assert_eq!(fast.memory_cycles, full.memory_cycles);
    }
}
