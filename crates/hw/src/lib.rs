//! # owlp-hw
//!
//! Analytical hardware cost models for the OwL-P evaluation (paper §VI-B):
//!
//! * [`tech`] — a 28 nm-class component library (area/energy per multiplier
//!   bit², adder bit, register bit, shifter stage, SRAM byte, HBM bit);
//! * [`pe`] — PE-level composition: the baseline BF16-multiply/FP32-add
//!   fused MAC (4-stage) versus the OwL-P 8-way INT dot-product PE with
//!   configurable outlier paths (2-stage) — reproducing Fig. 9's area/power
//!   scaling versus the number of outlier paths;
//! * [`aux`] — component models of the non-MAC units (decoders, data
//!   setup, outlier scheduler, align/INT2FP, output encoder) checking the
//!   Table V "Datasetup"/"Others" buckets;
//! * [`design`] — array- and chip-level roll-up: MAC array, data setup,
//!   decoder/align/INT2FP ("others") and layout overhead, reproducing the
//!   Table V comparison;
//! * [`memory`] — the 12 MB on-chip SRAM and the 256 GB/s HBM2 off-chip
//!   link with per-access energies;
//! * [`energy`] — per-GEMM energy accounting (compute + SRAM + DRAM).
//!
//! ## Substitution note
//!
//! The paper synthesises RTL with Synopsys ICC II on a commercial 28 nm
//! process. We replace that flow with a component-level analytical model
//! whose constants are **calibrated once** against the paper's published
//! anchors (Table V: 49.46/49.52 mm², 13.04/8.93 W, 3× MAC density,
//! 4.89× per-PE energy). The model's *relative* scaling across outlier-path
//! counts and design points — which is what every conclusion rests on —
//! then follows from the component composition, not from further fitting.
//!
//! ```
//! use owlp_hw::{pe::PeCost, tech::TechLibrary};
//!
//! let lib = TechLibrary::CMOS28;
//! let fma = PeCost::bf16_fma(&lib);
//! let owlp = PeCost::owlp_pe(&lib, 8, 2, 2);
//! // ~3× more MACs in the same area.
//! let density = (fma.area_um2 / 1.0) / (owlp.area_um2 / 8.0);
//! assert!(density > 2.5 && density < 3.6);
//! ```

pub mod aux;
pub mod design;
pub mod energy;
pub mod memory;
pub mod pe;
pub mod tech;

pub use design::{DesignPoint, DesignSummary};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use memory::MemorySystem;
pub use pe::PeCost;
pub use tech::TechLibrary;
