//! Auxiliary (non-MAC) datapath units: bias decoders, data setup, the
//! outlier scheduling unit, bottom-of-column align + INT2FP, and the
//! output (vector-unit) encoder.
//!
//! Table V buckets these as "Datasetup" (2.7 % baseline / 2.0 % OwL-P) and
//! "Others" (4.7 %, OwL-P only — the decoder/align/INT2FP logic the INT
//! design needs). This module composes the same buckets from components so
//! the percentages can be *checked* rather than assumed; the
//! [`crate::design::DesignPoint`] roll-up keeps the paper's published
//! fractions as its contract, and the tests here confirm the component sums
//! land in the same range.

use crate::tech::TechLibrary;
use serde::{Deserialize, Serialize};

/// Cost of one auxiliary unit instance.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuxCost {
    /// Area of one instance, µm².
    pub area_um2: f64,
    /// Energy per processed value, pJ.
    pub energy_per_value_pj: f64,
}

/// The bias decoder (paper Algorithm 1): outlier-marker compare on the
/// 3-bit bias, a 2-LSB (0–3 position) shifter over the 8-bit significand,
/// and the tag/shift-bit latch.
pub fn bias_decoder(lib: &TechLibrary) -> AuxCost {
    let compare = lib.add_area_per_bit * 3.0;
    let shifter = lib.shift_area_per_bit_stage * 11.0 * 2.0;
    let latch = lib.reg_area_per_bit * 14.0; // 11-bit value + sh + sign + tag
    AuxCost {
        area_um2: compare + shifter + latch,
        energy_per_value_pj: lib.add_energy_per_bit * 3.0
            + lib.shift_energy_per_bit_stage * 11.0 * 2.0
            + lib.reg_energy_per_bit * 14.0,
    }
}

/// The data setup unit (skew registers feeding one array edge lane).
pub fn data_setup_lane(lib: &TechLibrary, depth: usize) -> AuxCost {
    let bits = 14.0 * depth as f64;
    AuxCost {
        area_um2: lib.reg_area_per_bit * bits + lib.mux_area_per_bit * 14.0,
        energy_per_value_pj: lib.reg_energy_per_bit * 14.0 + lib.mux_energy_per_bit * 14.0,
    }
}

/// The outlier scheduling unit for one column stream: an outlier counter,
/// a comparator against the path budget, and the zero-insertion mux.
pub fn outlier_scheduler(lib: &TechLibrary) -> AuxCost {
    let counter = lib.reg_area_per_bit * 6.0 + lib.add_area_per_bit * 6.0;
    let compare = lib.add_area_per_bit * 3.0;
    let zero_mux = lib.mux_area_per_bit * 14.0;
    AuxCost {
        area_um2: counter + compare + zero_mux,
        energy_per_value_pj: lib.add_energy_per_bit * 9.0
            + lib.reg_energy_per_bit * 6.0
            + lib.mux_energy_per_bit * 14.0,
    }
}

/// Bottom-of-column align + INT2FP (paper Fig. 4b/c): exponent max tree,
/// a wide aligned adder, leading-zero detect, normalisation shift and
/// rounding to FP32.
pub fn align_int2fp(lib: &TechLibrary) -> AuxCost {
    let exp_compare = lib.add_area_per_bit * 9.0 * 5.0; // E_max over psum + 4 outliers
    let align_shift = lib.shift_area_per_bit_stage * 40.0 * 6.0;
    let adder = lib.add_area_per_bit * 48.0;
    let norm = lib.fp_norm_area_per_bit * 32.0;
    let regs = lib.reg_area_per_bit * 48.0;
    AuxCost {
        area_um2: exp_compare + align_shift + adder + norm + regs,
        energy_per_value_pj: lib.add_energy_per_bit * (45.0 + 48.0)
            + lib.shift_energy_per_bit_stage * 240.0
            + lib.fp_norm_energy_per_bit * 32.0
            + lib.reg_energy_per_bit * 48.0,
    }
}

/// The output (vector-unit) encoder: BF16 rounding of the FP32 result,
/// window compare, bias subtract and code packing.
pub fn output_encoder(lib: &TechLibrary) -> AuxCost {
    let round = lib.fp_norm_area_per_bit * 16.0;
    let window_compare = lib.add_area_per_bit * 8.0 * 2.0;
    let pack = lib.mux_area_per_bit * 11.0;
    AuxCost {
        area_um2: round + window_compare + pack,
        energy_per_value_pj: lib.fp_norm_energy_per_bit * 16.0
            + lib.add_energy_per_bit * 16.0
            + lib.mux_energy_per_bit * 11.0,
    }
}

/// Component-level totals of the non-MAC buckets for one design, mm².
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AuxBreakdown {
    /// Data setup (skew registers + input muxing).
    pub datasetup_mm2: f64,
    /// Decoder + scheduler + align/INT2FP + output encoder ("Others").
    pub others_mm2: f64,
}

/// OwL-P auxiliary totals for `arrays` arrays of `rows × cols` PEs with
/// `lanes` lanes.
pub fn owlp_aux(
    lib: &TechLibrary,
    arrays: usize,
    rows: usize,
    cols: usize,
    lanes: usize,
) -> AuxBreakdown {
    let input_lanes = arrays * rows * lanes; // activation edge streams
    let columns = arrays * cols;
    let datasetup = input_lanes as f64
        * (data_setup_lane(lib, rows).area_um2 + outlier_scheduler(lib).area_um2);
    let others = input_lanes as f64 * bias_decoder(lib).area_um2          // activation decode
        + columns as f64 * lanes as f64 * bias_decoder(lib).area_um2 / 4.0 // weight decode (amortised over loads)
        + columns as f64 * (align_int2fp(lib).area_um2 + output_encoder(lib).area_um2);
    AuxBreakdown {
        datasetup_mm2: datasetup / 1e6,
        others_mm2: others / 1e6,
    }
}

/// Baseline auxiliary totals (data setup only; FP PEs need no decode or
/// column-bottom conversion).
pub fn baseline_aux(lib: &TechLibrary, arrays: usize, rows: usize, cols: usize) -> AuxBreakdown {
    let input_lanes = arrays * rows;
    let datasetup = input_lanes as f64 * data_setup_lane(lib, rows).area_um2
        // FP32 operand width costs more setup registers per lane.
        * 2.0
        + (arrays * cols) as f64 * lib.reg_area_per_bit * 32.0;
    AuxBreakdown {
        datasetup_mm2: datasetup / 1e6,
        others_mm2: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::design::DesignPoint;

    #[test]
    fn owlp_buckets_land_near_table5_percentages() {
        // Paper: Datasetup 2.0 %, Others 4.7 % of 49.52 mm².
        let lib = TechLibrary::CMOS28;
        let aux = owlp_aux(&lib, 48, 4, 32, 8);
        let total = DesignPoint::owlp_paper().compute_area_mm2();
        let ds_pct = aux.datasetup_mm2 / total * 100.0;
        let others_pct = aux.others_mm2 / total * 100.0;
        assert!(
            (0.8..=4.0).contains(&ds_pct),
            "datasetup {ds_pct}% (paper 2.0%)"
        );
        assert!(
            (2.0..=8.0).contains(&others_pct),
            "others {others_pct}% (paper 4.7%)"
        );
    }

    #[test]
    fn baseline_bucket_lands_near_table5_percentage() {
        // Paper: Datasetup 2.7 % of 49.46 mm², no "Others" bucket.
        let lib = TechLibrary::CMOS28;
        let aux = baseline_aux(&lib, 16, 32, 32);
        let total = DesignPoint::baseline_paper().compute_area_mm2();
        let ds_pct = aux.datasetup_mm2 / total * 100.0;
        assert!(
            (0.5..=5.0).contains(&ds_pct),
            "datasetup {ds_pct}% (paper 2.7%)"
        );
        assert_eq!(aux.others_mm2, 0.0);
    }

    #[test]
    fn aux_units_are_tiny_next_to_a_pe() {
        // The decoder/scheduler must be negligible next to an 8-lane PE —
        // the premise of "negligible hardware overhead" (paper §I).
        let lib = TechLibrary::CMOS28;
        let pe = crate::pe::PeCost::owlp_pe(&lib, 8, 2, 2);
        assert!(bias_decoder(&lib).area_um2 * 8.0 < 0.2 * pe.area_um2);
        assert!(outlier_scheduler(&lib).area_um2 * 8.0 < 0.2 * pe.area_um2);
    }

    #[test]
    fn align_unit_is_cheaper_than_a_full_fp_adder_chain() {
        // One align+INT2FP per column replaces per-PE FP alignment — the
        // core of the area win. It must cost less than `rows` FP FMAs'
        // alignment logic.
        let lib = TechLibrary::CMOS28;
        let align = align_int2fp(&lib);
        let fma = crate::pe::PeCost::bf16_fma(&lib);
        assert!(align.area_um2 < fma.area_um2 * 4.0);
    }
}
