//! 28 nm-class technology component library.
//!
//! Per-component area and switching-energy constants in the range published
//! for planar 28 nm CMOS (Horowitz ISSCC'14 energy tables and standard-cell
//! datasheet orders of magnitude), with one calibration pass against the
//! paper's Table V anchors (see [`crate::design`]). All areas are µm²; all
//! energies are pJ per operation at nominal voltage.

use serde::{Deserialize, Serialize};

/// Component-level area/energy constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechLibrary {
    /// Array-multiplier area per (operand-bit × operand-bit) product cell.
    pub mult_area_per_bit2: f64,
    /// Ripple/prefix adder area per result bit.
    pub add_area_per_bit: f64,
    /// Barrel/mux shifter area per data bit per stage.
    pub shift_area_per_bit_stage: f64,
    /// Flip-flop area per bit.
    pub reg_area_per_bit: f64,
    /// 2:1 mux area per bit.
    pub mux_area_per_bit: f64,
    /// Leading-zero/normalisation and rounding logic area per datapath bit
    /// (FP-specific overhead).
    pub fp_norm_area_per_bit: f64,

    /// Multiplier switching energy per bit² per operation.
    pub mult_energy_per_bit2: f64,
    /// Adder energy per result bit per operation.
    pub add_energy_per_bit: f64,
    /// Shifter energy per bit per stage per operation.
    pub shift_energy_per_bit_stage: f64,
    /// Register write energy per bit.
    pub reg_energy_per_bit: f64,
    /// Mux energy per bit.
    pub mux_energy_per_bit: f64,
    /// FP normalisation/rounding energy per datapath bit.
    pub fp_norm_energy_per_bit: f64,

    /// On-chip SRAM read energy per byte (large banked arrays).
    pub sram_read_pj_per_byte: f64,
    /// On-chip SRAM write energy per byte.
    pub sram_write_pj_per_byte: f64,
    /// Off-chip HBM2 access energy per bit (I/O + DRAM core).
    pub dram_pj_per_bit: f64,
    /// SRAM macro density, bytes per µm² (≈ 0.25 MB/mm² at 28 nm).
    pub sram_bytes_per_um2: f64,
    /// Static leakage per mm² of logic, mW.
    pub leakage_mw_per_mm2: f64,
}

impl TechLibrary {
    /// The calibrated 28 nm library used throughout the reproduction.
    pub const CMOS28: TechLibrary = TechLibrary {
        mult_area_per_bit2: 4.4,
        add_area_per_bit: 4.0,
        shift_area_per_bit_stage: 1.2,
        reg_area_per_bit: 4.5,
        mux_area_per_bit: 1.4,
        fp_norm_area_per_bit: 9.0,

        mult_energy_per_bit2: 0.0034,
        add_energy_per_bit: 0.0028,
        shift_energy_per_bit_stage: 0.0011,
        reg_energy_per_bit: 0.0030,
        mux_energy_per_bit: 0.0008,
        fp_norm_energy_per_bit: 0.0090,

        sram_read_pj_per_byte: 6.0,
        sram_write_pj_per_byte: 7.5,
        dram_pj_per_bit: 2.5,
        sram_bytes_per_um2: 0.26,
        leakage_mw_per_mm2: 18.0,
    };
}

impl Default for TechLibrary {
    fn default() -> Self {
        Self::CMOS28
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_positive() {
        let l = TechLibrary::CMOS28;
        for v in [
            l.mult_area_per_bit2,
            l.add_area_per_bit,
            l.shift_area_per_bit_stage,
            l.reg_area_per_bit,
            l.mux_area_per_bit,
            l.fp_norm_area_per_bit,
            l.mult_energy_per_bit2,
            l.add_energy_per_bit,
            l.shift_energy_per_bit_stage,
            l.reg_energy_per_bit,
            l.mux_energy_per_bit,
            l.fp_norm_energy_per_bit,
            l.sram_read_pj_per_byte,
            l.sram_write_pj_per_byte,
            l.dram_pj_per_bit,
            l.sram_bytes_per_um2,
            l.leakage_mw_per_mm2,
        ] {
            assert!(v > 0.0);
        }
    }

    #[test]
    fn orders_of_magnitude_are_sane() {
        let l = TechLibrary::CMOS28;
        // An 8×8 multiplier lands in the few-hundred-µm² range.
        let m8 = l.mult_area_per_bit2 * 64.0;
        assert!((150.0..600.0).contains(&m8), "{m8}");
        // DRAM access energy dwarfs a MAC (the memory-wall premise).
        let mac_pj = l.mult_energy_per_bit2 * 64.0 + l.add_energy_per_bit * 32.0;
        assert!(l.dram_pj_per_bit * 16.0 > 50.0 * mac_pj);
    }
}
