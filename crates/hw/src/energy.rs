//! GEMM-level energy accounting: compute + SRAM + off-chip DRAM.
//!
//! The paper's energy result (Fig. 11b, §VI-D) combines three effects:
//! cheaper INT MACs (4.89× per PE), fewer off-chip bytes (the compressed
//! number format), and better array utilisation. This module adds the three
//! energy components for one GEMM given its operation and traffic counts.

use crate::memory::MemorySystem;
use crate::pe::PeCost;
use serde::{Deserialize, Serialize};

/// Energy of one (group of) GEMM(s), joules.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// MAC-array dynamic energy.
    pub compute_j: f64,
    /// On-chip buffer read/write energy.
    pub sram_j: f64,
    /// Off-chip access energy.
    pub dram_j: f64,
    /// Static leakage over the execution window.
    pub leakage_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.compute_j + self.sram_j + self.dram_j + self.leakage_j
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &EnergyBreakdown) {
        self.compute_j += other.compute_j;
        self.sram_j += other.sram_j;
        self.dram_j += other.dram_j;
        self.leakage_j += other.leakage_j;
    }
}

/// Energy model binding a PE cost, a memory system and chip-level leakage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// PE cost model in use.
    pub pe: PeCost,
    /// Memory system in use.
    pub memory: MemorySystem,
    /// Total logic area for leakage, mm².
    pub logic_area_mm2: f64,
}

impl EnergyModel {
    /// Energy of a workload slice.
    ///
    /// * `macs` — useful MAC operations executed;
    /// * `dram_bytes` — bytes moved over the off-chip link;
    /// * `sram_bytes` — bytes moved through the on-chip buffers (operands
    ///   are read once, outputs written once; double counting for the
    ///   write-then-read of staged tiles is the caller's choice);
    /// * `seconds` — execution window for leakage integration.
    pub fn energy(
        &self,
        macs: u64,
        dram_bytes: u64,
        sram_bytes: u64,
        seconds: f64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: macs as f64 * self.pe.energy_per_mac_pj * 1e-12,
            sram_j: self.memory.sram_read_energy_j(sram_bytes),
            dram_j: self.memory.dram_energy_j(dram_bytes),
            leakage_j: self.logic_area_mm2 * self.memory.lib.leakage_mw_per_mm2 * 1e-3 * seconds,
        }
    }

    /// Energy with compute charged **per occupied array cycle** rather than
    /// per useful MAC: the whole array toggles (at the calibrated activity)
    /// for every cycle it is busy, including fill/drain and zero-inserted
    /// cycles. This is the accounting the chip-level Table V power numbers
    /// imply, and what the Fig. 11 energy comparison uses.
    ///
    /// * `compute_cycles` — cycles the array spends on this work;
    /// * `array_macs` — MAC units in the whole engine;
    /// * `activity` — switching-activity factor (see
    ///   [`crate::design::ACTIVITY_FACTOR`]).
    pub fn energy_with_cycles(
        &self,
        compute_cycles: u64,
        array_macs: usize,
        activity: f64,
        dram_bytes: u64,
        sram_bytes: u64,
        seconds: f64,
    ) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_j: compute_cycles as f64
                * array_macs as f64
                * self.pe.energy_per_mac_pj
                * 1e-12
                * activity,
            sram_j: self.memory.sram_read_energy_j(sram_bytes),
            dram_j: self.memory.dram_energy_j(dram_bytes),
            leakage_j: self.logic_area_mm2 * self.memory.lib.leakage_mw_per_mm2 * 1e-3 * seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::TechLibrary;

    fn model() -> EnergyModel {
        EnergyModel {
            pe: PeCost::owlp_pe(&TechLibrary::CMOS28, 8, 2, 2),
            memory: MemorySystem::paper(),
            logic_area_mm2: 49.5,
        }
    }

    #[test]
    fn components_sum() {
        let m = model();
        let e = m.energy(1_000_000, 4096, 8192, 1e-3);
        assert!(e.compute_j > 0.0 && e.sram_j > 0.0 && e.dram_j > 0.0 && e.leakage_j > 0.0);
        let total = e.compute_j + e.sram_j + e.dram_j + e.leakage_j;
        assert!((e.total_j() - total).abs() < 1e-18);
    }

    #[test]
    fn add_accumulates() {
        let m = model();
        let mut a = m.energy(10, 10, 10, 1e-6);
        let b = m.energy(20, 20, 20, 2e-6);
        let expect = m.energy(30, 30, 30, 3e-6);
        a.add(&b);
        assert!((a.total_j() - expect.total_j()).abs() < 1e-18);
    }

    #[test]
    fn memory_bound_workloads_are_dram_dominated() {
        // A decode-style GEMM: few MACs per byte moved.
        let m = model();
        let e = m.energy(32 * 4096, 4096 * 4096 * 2, 4096 * 4096 * 2, 0.0);
        assert!(
            e.dram_j > e.compute_j,
            "dram {} vs compute {}",
            e.dram_j,
            e.compute_j
        );
    }

    #[test]
    fn zero_work_costs_only_leakage() {
        let m = model();
        let e = m.energy(0, 0, 0, 1.0);
        assert_eq!(e.compute_j, 0.0);
        assert!(e.leakage_j > 0.0);
    }
}
