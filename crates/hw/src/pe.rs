//! PE-level area/energy composition (paper Fig. 4, Fig. 9, Table V).
//!
//! Two processing elements are composed from the [`crate::tech`] library:
//!
//! * the baseline **BF16-multiply / FP32-accumulate fused MAC** — significand
//!   multiplier, exponent path, alignment barrel shifter, wide adder,
//!   normalisation/rounding, 4 pipeline stages;
//! * the **OwL-P 8-way INT dot-product PE** — eight significand multipliers
//!   with small post-multiply shifters (the decoder's 2-LSB pre-shift and
//!   the PE's `{0,4,8}` shift commute with the multiply, so the synthesis
//!   model folds them into one short shifter), an integer adder tree, the
//!   path-selection muxes, `k` outlier result registers and 2 pipeline
//!   stages.
//!
//! One explicit calibration constant ([`FMA_SYNTH_ENERGY_FACTOR`]) absorbs
//! the activity/glitching overhead of the FP datapath that a component sum
//! underestimates; it is fixed once against the paper's 4.89× per-PE energy
//! anchor and never varied across experiments.

use crate::tech::TechLibrary;
use serde::{Deserialize, Serialize};

/// FP datapath switching-activity calibration (glitching in the long
/// align/normalise chains), fitted once to Table V / §VI-D anchors.
pub const FMA_SYNTH_ENERGY_FACTOR: f64 = 1.35;

/// Cost summary of one PE.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeCost {
    /// Logic area, µm².
    pub area_um2: f64,
    /// Dynamic energy per multiply-accumulate, pJ.
    pub energy_per_mac_pj: f64,
    /// MAC operations this PE performs per cycle.
    pub macs: usize,
    /// Pipeline depth.
    pub pipeline_stages: u32,
}

impl PeCost {
    /// The baseline BF16×BF16 + FP32 fused MAC (4-stage; paper Table V).
    pub fn bf16_fma(lib: &TechLibrary) -> PeCost {
        // Significand multiply (8×8 incl. hidden bits) + exponent add.
        let mult_area = lib.mult_area_per_bit2 * 64.0 + lib.add_area_per_bit * 8.0;
        let mult_energy = lib.mult_energy_per_bit2 * 64.0 + lib.add_energy_per_bit * 8.0;
        // Alignment of the 16-bit product against the 32-bit accumulator:
        // 48-bit barrel, 6 stages.
        let align_area = lib.shift_area_per_bit_stage * 48.0 * 6.0;
        let align_energy = lib.shift_energy_per_bit_stage * 48.0 * 6.0;
        // Wide (48-bit effective) accumulator adder.
        let add_area = lib.add_area_per_bit * 48.0;
        let add_energy = lib.add_energy_per_bit * 48.0;
        // Leading-zero detect + normalisation shift + rounding over the
        // 32-bit result datapath.
        let norm_area = lib.fp_norm_area_per_bit * 32.0;
        let norm_energy = lib.fp_norm_energy_per_bit * 32.0;
        // 4 pipeline stages over ≈ 74 live bits (operands, product, psum).
        let reg_bits = 74.0 * 4.0;
        let reg_area = lib.reg_area_per_bit * reg_bits;
        let reg_energy = lib.reg_energy_per_bit * reg_bits;
        PeCost {
            area_um2: mult_area + align_area + add_area + norm_area + reg_area,
            energy_per_mac_pj: (mult_energy + align_energy + add_energy + norm_energy + reg_energy)
                * FMA_SYNTH_ENERGY_FACTOR,
            macs: 1,
            pipeline_stages: 4,
        }
    }

    /// The OwL-P INT PE: `lanes`-way dot product with
    /// `act_paths + weight_paths` outlier result registers (2-stage).
    pub fn owlp_pe(
        lib: &TechLibrary,
        lanes: usize,
        act_paths: usize,
        weight_paths: usize,
    ) -> PeCost {
        let l = lanes as f64;
        let paths = (act_paths + weight_paths) as f64;
        // Per lane: 8×8 significand multiplier + a 5-stage combined product
        // shifter (2-LSB pre-shifts of both operands fold with the {0,4,8}
        // shift bit stage; 22-bit product datapath).
        let mult_area = (lib.mult_area_per_bit2 * 64.0) * l;
        let mult_energy = (lib.mult_energy_per_bit2 * 64.0) * l;
        let shift_area = lib.shift_area_per_bit_stage * 22.0 * 5.0 * l;
        let shift_energy = lib.shift_energy_per_bit_stage * 22.0 * 5.0 * l;
        // Binary adder tree: (lanes − 1) adders, average ≈ 28-bit.
        let tree_adders = (lanes.saturating_sub(1)) as f64;
        let tree_area = lib.add_area_per_bit * 28.0 * tree_adders;
        let tree_energy = lib.add_energy_per_bit * 28.0 * tree_adders;
        // Partial-sum accumulator (36-bit add + register shared per PE).
        let psum_area = lib.add_area_per_bit * 36.0 + lib.reg_area_per_bit * 36.0;
        let psum_energy = lib.add_energy_per_bit * 36.0 + lib.reg_energy_per_bit * 36.0;
        // Path-selection muxes on each 30-bit product.
        let sel_area = lib.mux_area_per_bit * 30.0 * l;
        let sel_energy = lib.mux_energy_per_bit * 30.0 * l;
        // Outlier result registers (24-bit truncation-free product register;
        // the exponent travels on the shared side-band) and forwarding muxes.
        let outlier_area = paths * (lib.reg_area_per_bit * 24.0 + lib.mux_area_per_bit * 24.0);
        // Outlier registers clock only on outlier events (a few % of
        // cycles); charge 10 % activity.
        let outlier_energy =
            paths * (lib.reg_energy_per_bit * 24.0 + lib.mux_energy_per_bit * 24.0) * 0.10;
        // Stationary decoded weights (12 bits/lane, no per-cycle toggling —
        // area only) and 2 pipeline stages over activations + psum.
        let weight_reg_area = lib.reg_area_per_bit * 12.0 * l;
        let pipe_bits = (12.0 * l + 40.0) * 2.0;
        let pipe_area = lib.reg_area_per_bit * pipe_bits;
        let pipe_energy = lib.reg_energy_per_bit * pipe_bits;
        let area = mult_area
            + shift_area
            + tree_area
            + psum_area
            + sel_area
            + outlier_area
            + weight_reg_area
            + pipe_area;
        let energy = mult_energy
            + shift_energy
            + tree_energy
            + psum_energy
            + sel_energy
            + outlier_energy
            + pipe_energy;
        PeCost {
            area_um2: area,
            energy_per_mac_pj: energy / l,
            macs: lanes,
            pipeline_stages: 2,
        }
    }

    /// Area per MAC operation, µm².
    pub fn area_per_mac(&self) -> f64 {
        self.area_um2 / self.macs as f64
    }

    /// Dynamic power of one PE at full activity, watts.
    pub fn power_w(&self, clock_mhz: f64, activity: f64) -> f64 {
        self.energy_per_mac_pj * 1e-12 * self.macs as f64 * clock_mhz * 1e6 * activity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib() -> TechLibrary {
        TechLibrary::CMOS28
    }

    #[test]
    fn mac_density_is_about_3x() {
        // Paper §VI-B: 3× more MACs in the same compute area.
        let fma = PeCost::bf16_fma(&lib());
        let owlp = PeCost::owlp_pe(&lib(), 8, 2, 2);
        let density = fma.area_per_mac() / owlp.area_per_mac();
        assert!((2.6..=3.4).contains(&density), "density ratio {density}");
    }

    #[test]
    fn per_mac_energy_ratio_is_about_4_9x() {
        // Paper §VI-D: single-PE-tile energy decreases 4.89×.
        let fma = PeCost::bf16_fma(&lib());
        let owlp = PeCost::owlp_pe(&lib(), 8, 2, 2);
        let ratio = fma.energy_per_mac_pj / owlp.energy_per_mac_pj;
        assert!((4.3..=5.5).contains(&ratio), "energy ratio {ratio}");
    }

    #[test]
    fn fma_energy_order_of_magnitude() {
        // A BF16 FMA at 28 nm lands in the low single-digit pJ.
        let fma = PeCost::bf16_fma(&lib());
        assert!(
            (1.0..=4.0).contains(&fma.energy_per_mac_pj),
            "{}",
            fma.energy_per_mac_pj
        );
    }

    #[test]
    fn outlier_paths_add_modest_area() {
        // Fig. 9: the outlier-path sweep moves area by percents, not factors.
        let p0 = PeCost::owlp_pe(&lib(), 8, 0, 0);
        let p4 = PeCost::owlp_pe(&lib(), 8, 2, 2);
        let p8 = PeCost::owlp_pe(&lib(), 8, 4, 4);
        assert!(p4.area_um2 > p0.area_um2);
        assert!(p8.area_um2 > p4.area_um2);
        assert!(
            p8.area_um2 / p0.area_um2 < 1.25,
            "{}",
            p8.area_um2 / p0.area_um2
        );
    }

    #[test]
    fn pipeline_depths_match_table5() {
        assert_eq!(PeCost::bf16_fma(&lib()).pipeline_stages, 4);
        assert_eq!(PeCost::owlp_pe(&lib(), 8, 2, 2).pipeline_stages, 2);
    }

    #[test]
    fn power_scales_linearly_with_clock_and_activity() {
        let pe = PeCost::owlp_pe(&lib(), 8, 2, 2);
        let p1 = pe.power_w(500.0, 0.5);
        assert!((pe.power_w(1000.0, 0.5) - 2.0 * p1).abs() < 1e-12);
        assert!((pe.power_w(500.0, 1.0) - 2.0 * p1).abs() < 1e-12);
    }
}
