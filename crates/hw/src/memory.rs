//! On-chip SRAM and off-chip HBM2 model (paper §VI-A: 12 MB buffers,
//! 256 GB/s HBM2).

use crate::tech::TechLibrary;
use serde::{Deserialize, Serialize};

/// The accelerator memory system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemorySystem {
    /// Unified on-chip buffer capacity, bytes (12 MB in the paper).
    pub sram_bytes: u64,
    /// Off-chip bandwidth, bytes per second (256 GB/s HBM2).
    pub offchip_bytes_per_s: f64,
    /// Component energies.
    pub lib: TechLibrary,
}

impl MemorySystem {
    /// The paper's memory configuration.
    pub fn paper() -> Self {
        MemorySystem {
            sram_bytes: 12 * 1024 * 1024,
            offchip_bytes_per_s: 256.0e9,
            lib: TechLibrary::CMOS28,
        }
    }

    /// Seconds to move `bytes` across the off-chip link (bandwidth-limited;
    /// latency is hidden by double buffering, as both designs stream).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.offchip_bytes_per_s
    }

    /// Off-chip access energy for `bytes`, joules.
    pub fn dram_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.lib.dram_pj_per_bit * 1e-12
    }

    /// SRAM read energy for `bytes`, joules.
    pub fn sram_read_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.lib.sram_read_pj_per_byte * 1e-12
    }

    /// SRAM write energy for `bytes`, joules.
    pub fn sram_write_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.lib.sram_write_pj_per_byte * 1e-12
    }

    /// SRAM macro area, mm².
    pub fn sram_area_mm2(&self) -> f64 {
        self.sram_bytes as f64 / self.lib.sram_bytes_per_um2 / 1e6
    }

    /// Whether a working set fits in the on-chip buffer.
    pub fn fits_on_chip(&self, bytes: u64) -> bool {
        bytes <= self.sram_bytes
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::paper()
    }
}

/// The on-chip outlier-exponent buffer (paper §IV-D): outlier exponents of
/// the active tiles are staged on chip; "in case the number of outliers is
/// too large …, the outliers can be fetched from the external memory using
/// a combination of the 11-bit address pointer values and meta-data."
///
/// This model quantifies that fallback: overflowing entries are fetched
/// on demand, each costing one DRAM burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierBuffer {
    /// Exponent entries the buffer holds.
    pub entries: usize,
    /// Bytes fetched per on-demand pointer access (one DRAM burst).
    pub burst_bytes: u64,
}

impl OutlierBuffer {
    /// A plausible sizing: 64 KiB of exponent storage.
    pub fn paper_sized() -> Self {
        OutlierBuffer {
            entries: 64 * 1024,
            burst_bytes: 32,
        }
    }

    /// Outlier entries of one resident tile set that do not fit on chip.
    pub fn overflow_entries(&self, tile_outliers: usize) -> usize {
        tile_outliers.saturating_sub(self.entries)
    }

    /// Extra off-chip bytes caused by the overflow of one tile set.
    pub fn overflow_bytes(&self, tile_outliers: usize) -> u64 {
        self.overflow_entries(tile_outliers) as u64 * self.burst_bytes
    }

    /// Largest per-element outlier rate a tile of `tile_elements` values
    /// can sustain without overflow.
    pub fn max_outlier_rate(&self, tile_elements: usize) -> f64 {
        if tile_elements == 0 {
            return 1.0;
        }
        (self.entries as f64 / tile_elements as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let m = MemorySystem::paper();
        assert_eq!(m.sram_bytes, 12 * 1024 * 1024);
        assert_eq!(m.offchip_bytes_per_s, 256.0e9);
    }

    #[test]
    fn transfer_time_is_bandwidth_bound() {
        let m = MemorySystem::paper();
        // 256 GB at 256 GB/s takes one second.
        assert!((m.transfer_seconds(256_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dram_energy_dominates_sram() {
        let m = MemorySystem::paper();
        assert!(m.dram_energy_j(1024) > 3.0 * m.sram_read_energy_j(1024));
    }

    #[test]
    fn sram_area_is_plausible_for_12mb_at_28nm() {
        let m = MemorySystem::paper();
        let a = m.sram_area_mm2();
        // 12 MB ≈ 40–60 mm² at 28 nm.
        assert!((30.0..80.0).contains(&a), "{a}");
    }

    #[test]
    fn outlier_buffer_rarely_overflows_at_paper_rates() {
        // A Llama2-7B weight-stationary tile set: one layer's largest
        // matrix tile resident per array, ~1.5 % outliers. The 64 KiB
        // buffer holds them with an order of magnitude to spare.
        let buf = OutlierBuffer::paper_sized();
        let tile_elements = 48 * 32 * 32 * 8; // all arrays' stationary tiles
        let outliers = (tile_elements as f64 * 0.015) as usize;
        assert_eq!(buf.overflow_entries(outliers), 0);
        assert!(buf.max_outlier_rate(tile_elements) > 0.10);
    }

    #[test]
    fn outlier_buffer_overflow_accounting() {
        let buf = OutlierBuffer {
            entries: 100,
            burst_bytes: 32,
        };
        assert_eq!(buf.overflow_entries(99), 0);
        assert_eq!(buf.overflow_entries(100), 0);
        assert_eq!(buf.overflow_entries(150), 50);
        assert_eq!(buf.overflow_bytes(150), 50 * 32);
        assert_eq!(buf.max_outlier_rate(0), 1.0);
        assert_eq!(buf.max_outlier_rate(1000), 0.1);
    }

    #[test]
    fn working_set_check() {
        let m = MemorySystem::paper();
        assert!(m.fits_on_chip(8 * 1024 * 1024));
        assert!(!m.fits_on_chip(16 * 1024 * 1024));
    }
}
