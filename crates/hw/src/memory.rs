//! On-chip SRAM and off-chip HBM2 model (paper §VI-A: 12 MB buffers,
//! 256 GB/s HBM2).

use crate::tech::TechLibrary;
use serde::{DeError, Deserialize, Serialize, Value};

/// The accelerator memory system.
///
/// Besides the flat capacity/bandwidth pair used by the closed-form model,
/// the struct now carries the channel-level parameters the `owlp-mem`
/// co-simulator needs: channel count, burst size, and the depth of the
/// on-chip tile double buffer. All of them deserialize with [`paper`]
/// defaults when absent, so configuration JSON written before this field
/// set existed keeps loading unchanged (the vendored serde shim has no
/// `#[serde(default)]`, hence the hand-written [`Deserialize`] below).
///
/// [`paper`]: MemorySystem::paper
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemorySystem {
    /// Unified on-chip buffer capacity, bytes (12 MB in the paper).
    pub sram_bytes: u64,
    /// Off-chip bandwidth, bytes per second (256 GB/s HBM2).
    pub offchip_bytes_per_s: f64,
    /// Independent HBM channels; tile requests interleave across them
    /// burst by burst (HBM2 exposes 8 channels per stack).
    pub channels: usize,
    /// Bytes one burst moves on one channel (the transfer quantum).
    pub burst_bytes: u64,
    /// On-chip tile-buffer slots: 2 is classic double buffering (fetch
    /// tile `i+1` while tile `i` computes); 1 disables overlap.
    pub double_buffer: usize,
    /// The on-chip outlier-exponent buffer whose overflow spills off chip
    /// (paper §IV-D fallback path).
    pub outlier_buffer: OutlierBuffer,
    /// Component energies.
    pub lib: TechLibrary,
}

impl MemorySystem {
    /// The paper's memory configuration.
    pub fn paper() -> Self {
        MemorySystem {
            sram_bytes: 12 * 1024 * 1024,
            offchip_bytes_per_s: 256.0e9,
            channels: 8,
            burst_bytes: 64,
            double_buffer: 2,
            outlier_buffer: OutlierBuffer::paper_sized(),
            lib: TechLibrary::CMOS28,
        }
    }

    /// Seconds to move `bytes` across the off-chip link.
    ///
    /// This is the closed-form lower bound: perfect channel utilisation and
    /// fully hidden latency. It remains the documented fallback when the
    /// event-driven co-simulation (`owlp-mem`) is not in play; the co-sim
    /// can only match or exceed it (padding, outlier spills, and the
    /// max-over-channels finish time all push upward), a property the
    /// integration tests assert.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.offchip_bytes_per_s
    }

    /// Aggregate off-chip bytes deliverable per accelerator clock cycle.
    pub fn bytes_per_cycle(&self, clock_hz: f64) -> f64 {
        self.offchip_bytes_per_s / clock_hz
    }

    /// Bytes one channel delivers per accelerator clock cycle.
    pub fn channel_bytes_per_cycle(&self, clock_hz: f64) -> f64 {
        self.bytes_per_cycle(clock_hz) / self.channels as f64
    }

    /// Cycles one burst occupies its channel (exact at paper defaults:
    /// a 64 B burst on 1/8 of 512 B/cycle is one cycle).
    pub fn burst_cycles(&self, clock_hz: f64) -> f64 {
        self.burst_bytes as f64 / self.channel_bytes_per_cycle(clock_hz)
    }

    /// Off-chip access energy for `bytes`, joules.
    pub fn dram_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * 8.0 * self.lib.dram_pj_per_bit * 1e-12
    }

    /// SRAM read energy for `bytes`, joules.
    pub fn sram_read_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.lib.sram_read_pj_per_byte * 1e-12
    }

    /// SRAM write energy for `bytes`, joules.
    pub fn sram_write_energy_j(&self, bytes: u64) -> f64 {
        bytes as f64 * self.lib.sram_write_pj_per_byte * 1e-12
    }

    /// SRAM macro area, mm².
    pub fn sram_area_mm2(&self) -> f64 {
        self.sram_bytes as f64 / self.lib.sram_bytes_per_um2 / 1e6
    }

    /// Whether a working set fits in the on-chip buffer.
    pub fn fits_on_chip(&self, bytes: u64) -> bool {
        bytes <= self.sram_bytes
    }
}

impl Default for MemorySystem {
    fn default() -> Self {
        Self::paper()
    }
}

/// Missing-key-tolerant deserialization: every absent field falls back to
/// its [`MemorySystem::paper`] value, so sweep JSON may specify only the
/// knobs it varies (and pre-existing configs without the channel-level
/// fields keep parsing).
impl<'de> Deserialize<'de> for MemorySystem {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        if !matches!(v, Value::Object(_)) {
            return Err(DeError::unexpected("MemorySystem object", v));
        }
        let d = MemorySystem::paper();
        fn field<'de, T: Deserialize<'de>>(v: &Value, key: &str, default: T) -> Result<T, DeError> {
            match v.get(key) {
                Some(found) => T::from_value(found),
                None => Ok(default),
            }
        }
        Ok(MemorySystem {
            sram_bytes: field(v, "sram_bytes", d.sram_bytes)?,
            offchip_bytes_per_s: field(v, "offchip_bytes_per_s", d.offchip_bytes_per_s)?,
            channels: field(v, "channels", d.channels)?,
            burst_bytes: field(v, "burst_bytes", d.burst_bytes)?,
            double_buffer: field(v, "double_buffer", d.double_buffer)?,
            outlier_buffer: field(v, "outlier_buffer", d.outlier_buffer)?,
            lib: field(v, "lib", d.lib)?,
        })
    }
}

/// The on-chip outlier-exponent buffer (paper §IV-D): outlier exponents of
/// the active tiles are staged on chip; "in case the number of outliers is
/// too large …, the outliers can be fetched from the external memory using
/// a combination of the 11-bit address pointer values and meta-data."
///
/// This model quantifies that fallback: overflowing entries are fetched
/// on demand, each costing one DRAM burst.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierBuffer {
    /// Exponent entries the buffer holds.
    pub entries: usize,
    /// Bytes fetched per on-demand pointer access (one DRAM burst).
    pub burst_bytes: u64,
}

impl OutlierBuffer {
    /// A plausible sizing: 64 KiB of exponent storage.
    pub fn paper_sized() -> Self {
        OutlierBuffer {
            entries: 64 * 1024,
            burst_bytes: 32,
        }
    }

    /// Outlier entries of one resident tile set that do not fit on chip.
    pub fn overflow_entries(&self, tile_outliers: usize) -> usize {
        tile_outliers.saturating_sub(self.entries)
    }

    /// Extra off-chip bytes caused by the overflow of one tile set.
    pub fn overflow_bytes(&self, tile_outliers: usize) -> u64 {
        self.overflow_entries(tile_outliers) as u64 * self.burst_bytes
    }

    /// Largest per-element outlier rate a tile of `tile_elements` values
    /// can sustain without overflow.
    pub fn max_outlier_rate(&self, tile_elements: usize) -> f64 {
        if tile_elements == 0 {
            return 1.0;
        }
        (self.entries as f64 / tile_elements as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration() {
        let m = MemorySystem::paper();
        assert_eq!(m.sram_bytes, 12 * 1024 * 1024);
        assert_eq!(m.offchip_bytes_per_s, 256.0e9);
    }

    #[test]
    fn transfer_time_is_bandwidth_bound() {
        let m = MemorySystem::paper();
        // 256 GB at 256 GB/s takes one second.
        assert!((m.transfer_seconds(256_000_000_000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dram_energy_dominates_sram() {
        let m = MemorySystem::paper();
        assert!(m.dram_energy_j(1024) > 3.0 * m.sram_read_energy_j(1024));
    }

    #[test]
    fn sram_area_is_plausible_for_12mb_at_28nm() {
        let m = MemorySystem::paper();
        let a = m.sram_area_mm2();
        // 12 MB ≈ 40–60 mm² at 28 nm.
        assert!((30.0..80.0).contains(&a), "{a}");
    }

    #[test]
    fn outlier_buffer_rarely_overflows_at_paper_rates() {
        // A Llama2-7B weight-stationary tile set: one layer's largest
        // matrix tile resident per array, ~1.5 % outliers. The 64 KiB
        // buffer holds them with an order of magnitude to spare.
        let buf = OutlierBuffer::paper_sized();
        let tile_elements = 48 * 32 * 32 * 8; // all arrays' stationary tiles
        let outliers = (tile_elements as f64 * 0.015) as usize;
        assert_eq!(buf.overflow_entries(outliers), 0);
        assert!(buf.max_outlier_rate(tile_elements) > 0.10);
    }

    #[test]
    fn outlier_buffer_overflow_accounting() {
        let buf = OutlierBuffer {
            entries: 100,
            burst_bytes: 32,
        };
        assert_eq!(buf.overflow_entries(99), 0);
        assert_eq!(buf.overflow_entries(100), 0);
        assert_eq!(buf.overflow_entries(150), 50);
        assert_eq!(buf.overflow_bytes(150), 50 * 32);
        assert_eq!(buf.max_outlier_rate(0), 1.0);
        assert_eq!(buf.max_outlier_rate(1000), 0.1);
    }

    #[test]
    fn working_set_check() {
        let m = MemorySystem::paper();
        assert!(m.fits_on_chip(8 * 1024 * 1024));
        assert!(!m.fits_on_chip(16 * 1024 * 1024));
    }

    #[test]
    fn channel_geometry_is_exact_at_paper_defaults() {
        let m = MemorySystem::paper();
        assert_eq!(m.channels, 8);
        assert_eq!(m.burst_bytes, 64);
        assert_eq!(m.double_buffer, 2);
        // 256 GB/s at 500 MHz: 512 B/cycle total, 64 B/cycle per channel,
        // so one 64 B burst occupies its channel for exactly one cycle.
        let clock = 500.0e6;
        assert_eq!(m.bytes_per_cycle(clock), 512.0);
        assert_eq!(m.channel_bytes_per_cycle(clock), 64.0);
        assert_eq!(m.burst_cycles(clock), 1.0);
    }

    #[test]
    fn serde_round_trip_preserves_channel_config() {
        let mut m = MemorySystem::paper();
        m.channels = 4;
        m.burst_bytes = 128;
        m.double_buffer = 3;
        let v = m.to_value();
        let back = MemorySystem::from_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn deserialize_fills_missing_keys_with_paper_defaults() {
        // A pre-PR6 config carrying only the flat capacity/bandwidth pair.
        let v = Value::parse(r#"{"sram_bytes": 1048576, "offchip_bytes_per_s": 1.0e11}"#).unwrap();
        let m = MemorySystem::from_value(&v).unwrap();
        assert_eq!(m.sram_bytes, 1024 * 1024);
        assert_eq!(m.offchip_bytes_per_s, 1.0e11);
        let d = MemorySystem::paper();
        assert_eq!(m.channels, d.channels);
        assert_eq!(m.burst_bytes, d.burst_bytes);
        assert_eq!(m.double_buffer, d.double_buffer);
        assert_eq!(m.outlier_buffer, d.outlier_buffer);
        assert_eq!(m.lib, d.lib);
    }

    #[test]
    fn deserialize_rejects_non_objects() {
        assert!(MemorySystem::from_value(&Value::Int(3)).is_err());
    }
}
