//! Chip-level design points (paper Table V, Fig. 9).
//!
//! A [`DesignPoint`] rolls PE costs up to the compute-logic level using the
//! paper's published area composition (MAC array / data setup / others /
//! layout overhead percentages) and a single switching-activity factor
//! calibrated to the Table V power anchors.

use crate::memory::MemorySystem;
use crate::pe::PeCost;
use crate::tech::TechLibrary;
use serde::{Deserialize, Serialize};

/// Array-level switching activity used for the Table V power roll-up
/// (weight-stationary arrays do not toggle every operand bit every cycle).
pub const ACTIVITY_FACTOR: f64 = 0.55;

/// One accelerator design point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Display name.
    pub name: &'static str,
    /// PE cost model.
    pub pe: PeCost,
    /// PEs per systolic array.
    pub pes_per_array: usize,
    /// Independent arrays.
    pub num_arrays: usize,
    /// Memory system.
    pub memory: MemorySystem,
    /// Fraction of compute area occupied by the MAC array (Table V).
    pub mac_array_fraction: f64,
    /// Clock, MHz.
    pub clock_mhz: f64,
}

impl DesignPoint {
    /// The TPU-like baseline of Table V: 16 × (32×32) BF16 FMAs, 73.1 %
    /// MAC-array share, 12 MB buffers, 500 MHz.
    pub fn baseline_paper() -> Self {
        DesignPoint {
            name: "TPU-like Systolic Engine",
            pe: PeCost::bf16_fma(&TechLibrary::CMOS28),
            pes_per_array: 32 * 32,
            num_arrays: 16,
            memory: MemorySystem::paper(),
            mac_array_fraction: 0.731,
            clock_mhz: 500.0,
        }
    }

    /// The OwL-P design of Table V: 48 × (4×32) 8-way INT PEs with 4
    /// outlier paths, 73.3 % MAC-array share.
    pub fn owlp_paper() -> Self {
        DesignPoint {
            name: "OwL-P",
            pe: PeCost::owlp_pe(&TechLibrary::CMOS28, 8, 2, 2),
            pes_per_array: 4 * 32,
            num_arrays: 48,
            memory: MemorySystem::paper(),
            mac_array_fraction: 0.733,
            clock_mhz: 500.0,
        }
    }

    /// Total MAC operations per cycle.
    pub fn total_macs(&self) -> usize {
        self.pe.macs * self.pes_per_array * self.num_arrays
    }

    /// MAC-array logic area, mm².
    pub fn mac_array_area_mm2(&self) -> f64 {
        self.pe.area_um2 * (self.pes_per_array * self.num_arrays) as f64 / 1e6
    }

    /// Total compute-logic area (MAC array ÷ its Table V share), mm².
    /// Memory buffers are excluded, as in the paper's table footnote.
    pub fn compute_area_mm2(&self) -> f64 {
        self.mac_array_area_mm2() / self.mac_array_fraction
    }

    /// Compute-logic power at the calibrated activity, watts: dynamic MAC
    /// power + proportional data-setup/decoder overhead + leakage.
    pub fn power_w(&self) -> f64 {
        let macs = self.total_macs() as f64;
        let dynamic =
            macs * self.pe.energy_per_mac_pj * 1e-12 * self.clock_mhz * 1e6 * ACTIVITY_FACTOR;
        // Non-MAC logic (data setup, decoders, align/INT2FP) toggles in
        // proportion to its area share.
        let non_mac_dynamic = dynamic * (1.0 / self.mac_array_fraction - 1.0) * 0.4;
        let leakage = self.compute_area_mm2() * self.memory.lib.leakage_mw_per_mm2 * 1e-3;
        dynamic + non_mac_dynamic + leakage
    }

    /// One Table V row.
    pub fn summary(&self) -> DesignSummary {
        DesignSummary {
            name: self.name.to_string(),
            pipeline_stages: self.pe.pipeline_stages,
            memory_mb: self.memory.sram_bytes as f64 / (1024.0 * 1024.0),
            power_w: self.power_w(),
            macs: self.total_macs(),
            total_area_mm2: self.compute_area_mm2(),
            mac_array_pct: self.mac_array_fraction * 100.0,
        }
    }
}

/// A Table V row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignSummary {
    /// Design name.
    pub name: String,
    /// PE pipeline depth.
    pub pipeline_stages: u32,
    /// On-chip memory, MB.
    pub memory_mb: f64,
    /// Compute power, W.
    pub power_w: f64,
    /// Total MACs.
    pub macs: usize,
    /// Compute-logic area, mm².
    pub total_area_mm2: f64,
    /// MAC-array share of the compute area, %.
    pub mac_array_pct: f64,
}

/// Fig. 9 sweep: area and power of an OwL-P array with `total_paths`
/// outlier paths per PE, normalised to a BF16 baseline array with the same
/// MAC count.
pub fn fig9_point(total_paths: usize) -> (f64, f64) {
    let lib = TechLibrary::CMOS28;
    let fma = PeCost::bf16_fma(&lib);
    let act = total_paths / 2;
    let w = total_paths - act;
    let owlp = PeCost::owlp_pe(&lib, 8, act, w);
    // Same MAC count: 8 FMAs per OwL-P PE.
    let area_norm = owlp.area_um2 / (8.0 * fma.area_um2);
    let power_norm = (owlp.energy_per_mac_pj * 8.0) / (fma.energy_per_mac_pj * 8.0);
    (area_norm, power_norm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_mac_counts() {
        assert_eq!(DesignPoint::baseline_paper().total_macs(), 16_384);
        assert_eq!(DesignPoint::owlp_paper().total_macs(), 49_152);
    }

    #[test]
    fn table5_areas_are_close_and_equal_to_each_other() {
        // Paper: 49.46 vs 49.52 mm² — near-identical compute area.
        let b = DesignPoint::baseline_paper().compute_area_mm2();
        let o = DesignPoint::owlp_paper().compute_area_mm2();
        let ratio = o / b;
        assert!((0.9..=1.1).contains(&ratio), "area ratio {ratio}");
        // Absolute anchor within ±20 % of 49.5 mm².
        assert!((39.0..=60.0).contains(&b), "baseline area {b}");
    }

    #[test]
    fn table5_power_anchors() {
        // Paper: 13.04 W baseline, 8.93 W OwL-P.
        let b = DesignPoint::baseline_paper().power_w();
        let o = DesignPoint::owlp_paper().power_w();
        assert!((10.5..=15.5).contains(&b), "baseline power {b}");
        assert!((7.0..=11.0).contains(&o), "owlp power {o}");
        let ratio = b / o;
        assert!(
            (1.25..=1.75).contains(&ratio),
            "power ratio {ratio} (paper 1.46)"
        );
    }

    #[test]
    fn fig9_trends() {
        // Area/power grow slowly with outlier paths and stay far below the
        // FP baseline (normalised < 0.5 at every swept point).
        let mut prev_area = 0.0;
        for paths in [0usize, 2, 4, 8] {
            let (a, p) = fig9_point(paths);
            assert!(a < 0.5, "paths {paths}: area {a}");
            assert!(p < 0.5, "paths {paths}: power {p}");
            assert!(a >= prev_area, "area must be monotone in paths");
            prev_area = a;
        }
        let (a0, _) = fig9_point(0);
        let (a8, _) = fig9_point(8);
        assert!(a8 / a0 < 1.25, "8 paths cost < 25 % extra area");
    }

    #[test]
    fn summary_row_contents() {
        let s = DesignPoint::owlp_paper().summary();
        assert_eq!(s.name, "OwL-P");
        assert_eq!(s.pipeline_stages, 2);
        assert_eq!(s.memory_mb, 12.0);
        assert_eq!(s.macs, 49_152);
    }
}
