//! Property-based tests of the hardware cost-model invariants.

use owlp_hw::design::fig9_point;
use owlp_hw::energy::EnergyModel;
use owlp_hw::pe::PeCost;
use owlp_hw::tech::TechLibrary;
use owlp_hw::MemorySystem;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PE area/energy are monotone in lanes and outlier paths.
    #[test]
    fn pe_cost_monotonicity(lanes in 1usize..16, act in 0usize..5, w in 0usize..5) {
        let lib = TechLibrary::CMOS28;
        let pe = PeCost::owlp_pe(&lib, lanes, act, w);
        let more_lanes = PeCost::owlp_pe(&lib, lanes + 1, act, w);
        let more_paths = PeCost::owlp_pe(&lib, lanes, act + 1, w);
        prop_assert!(more_lanes.area_um2 > pe.area_um2);
        prop_assert!(more_paths.area_um2 > pe.area_um2);
        prop_assert!(pe.area_um2 > 0.0 && pe.energy_per_mac_pj > 0.0);
        // Wider dot products amortise shared logic: per-MAC area shrinks.
        prop_assert!(more_lanes.area_per_mac() < pe.area_per_mac() + 1e-9);
    }

    /// Fig. 9 normalisation stays below the baseline for any path count the
    /// architecture would plausibly use.
    #[test]
    fn fig9_always_below_baseline(paths in 0usize..12) {
        let (a, p) = fig9_point(paths);
        prop_assert!(a > 0.0 && a < 1.0);
        prop_assert!(p > 0.0 && p < 1.0);
    }

    /// Energy accounting is additive and linear in each driver.
    #[test]
    fn energy_linearity(
        macs in 0u64..1_000_000,
        dram in 0u64..1_000_000,
        sram in 0u64..1_000_000,
    ) {
        let m = EnergyModel {
            pe: PeCost::owlp_pe(&TechLibrary::CMOS28, 8, 2, 2),
            memory: MemorySystem::paper(),
            logic_area_mm2: 50.0,
        };
        let e1 = m.energy(macs, dram, sram, 0.0);
        let e2 = m.energy(2 * macs, 2 * dram, 2 * sram, 0.0);
        prop_assert!((e2.total_j() - 2.0 * e1.total_j()).abs() <= 1e-12 * e2.total_j().max(1e-30));
    }

    /// Transfer time is inverse in bandwidth and linear in bytes.
    #[test]
    fn transfer_scaling(bytes in 1u64..1_000_000_000) {
        let mut m = MemorySystem::paper();
        let t1 = m.transfer_seconds(bytes);
        m.offchip_bytes_per_s *= 2.0;
        let t2 = m.transfer_seconds(bytes);
        prop_assert!((t1 - 2.0 * t2).abs() < 1e-15 + 1e-12 * t1);
        prop_assert!((m.transfer_seconds(2 * bytes) - 2.0 * t2).abs() < 1e-15 + 1e-12 * t1);
    }

    /// Cycle-based compute energy equals per-MAC energy when the array is
    /// fully utilised at activity 1.
    #[test]
    fn cycle_energy_consistency(cycles in 1u64..100_000) {
        let pe = PeCost::owlp_pe(&TechLibrary::CMOS28, 8, 2, 2);
        let m = EnergyModel { pe, memory: MemorySystem::paper(), logic_area_mm2: 50.0 };
        let array_macs = 1024usize;
        let full = m.energy_with_cycles(cycles, array_macs, 1.0, 0, 0, 0.0);
        let per_mac = m.energy(cycles * array_macs as u64, 0, 0, 0.0);
        prop_assert!((full.compute_j - per_mac.compute_j).abs() < 1e-12 * full.compute_j.max(1e-30));
    }
}
