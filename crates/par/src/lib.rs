//! # owlp-par — deterministic data-parallel execution
//!
//! A small persistent worker pool used by every hot path of the
//! reproduction (GEMM verification, tensor encode/decode, the event-driven
//! array simulator, the serving pool). Its one contract is **determinism**:
//! for a pure per-chunk function, the result of [`map_chunks`] is
//! bit-for-bit identical at every thread count, including 1.
//!
//! Three design rules make that structural rather than conventional:
//!
//! 1. **Fixed chunk grid.** Work over `0..n` is split into contiguous
//!    chunks of a caller-chosen `grain`; chunk boundaries depend only on
//!    `(n, grain)`, never on the thread count or scheduling. A function
//!    whose per-chunk value depends on the chunk shape (e.g. a blocked
//!    reduction) therefore still sees the *same* blocks at every budget.
//! 2. **Ordered assembly.** Each chunk's result lands in a slot indexed by
//!    its chunk id; the output vector is assembled in chunk order after all
//!    workers quiesce. Callers that reduce across chunks do so serially over
//!    this ordered vector, so reduction order is fixed too.
//! 3. **Dynamic scheduling of chunks, not of values.** Workers pull chunk
//!    ids from an atomic counter (good load balance for skewed tiles), but
//!    since a chunk's value is a pure function of its range, *which* worker
//!    computes it cannot matter.
//!
//! ## Worker reuse and the serial-fallback threshold
//!
//! Worker threads are spawned once (lazily, up to the largest budget ever
//! requested) and parked between jobs, so a parallel call costs one
//! condvar broadcast instead of a `thread::spawn` per worker per call —
//! the difference between profitable and regressive fan-out for the
//! many-small-dispatch paths (event-sim per-column passes, per-token
//! decode). On top of that, [`Pool::run`] falls back to a plain serial
//! loop whenever the caller's estimated work is under
//! [`MIN_PARALLEL_OPS`]: dispatching threads for less work than the
//! dispatch itself costs can only lose. The weighted entry points
//! ([`map_chunks_weighted`], [`map_indexed_weighted`]) are how hot paths
//! communicate that estimate.
//!
//! The thread budget comes from the `OWLP_THREADS` environment variable
//! (unset/invalid/0 ⇒ `std::thread::available_parallelism()`), **clamped to
//! the machine's real hardware parallelism** — oversubscribing a host with
//! more software threads than cores cannot make a compute-bound loop
//! faster, only less deterministic in wall-clock. A scoped [`with_threads`]
//! override takes precedence *unclamped* — the override is what the
//! determinism property tests use to exercise 8-way schedules on any host
//! without racing on the process environment. Inside a worker, nested
//! calls run serially (budget 1): the top-level call owns the parallelism,
//! which keeps thread counts bounded and oversubscription impossible.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::cell::Cell;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Environment variable naming the worker-thread budget.
pub const ENV_THREADS: &str = "OWLP_THREADS";

/// Minimum estimated scalar-op-equivalents a weighted call must carry
/// before it fans out. Calibrated against the pool's dispatch cost (one
/// lock + condvar broadcast + chunk-counter traffic, order ~10 µs): below
/// roughly 32 Ki scalar ops the serial loop finishes before the workers
/// would have woken.
pub const MIN_PARALLEL_OPS: u64 = 1 << 15;

/// Hard cap on pool threads, far above any sane budget — a safety net
/// against a runaway `OWLP_THREADS`, not a tuning knob.
const MAX_POOL_THREADS: usize = 64;

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside pool workers: nested parallel calls run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The machine's real hardware parallelism, detected once and cached.
pub fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The number of worker threads a parallel call may use right now:
/// a [`with_threads`] override if one is active (unclamped), else 1 inside
/// a pool worker, else `OWLP_THREADS` — clamped to [`hardware_threads`] —
/// else the machine's available parallelism.
///
/// Always ≥ 1; a budget of 1 means "run serially on the calling thread".
pub fn thread_budget() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    requested_threads().min(hardware_threads()).max(1)
}

/// The budget as *requested* — override or `OWLP_THREADS` or the hardware
/// default — before the hardware clamp. `bench-json` records both so a
/// report shows when a requested budget was cut down to the real core
/// count.
pub fn requested_threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    env_threads().unwrap_or_else(hardware_threads)
}

fn env_threads() -> Option<usize> {
    std::env::var(ENV_THREADS)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

/// Runs `f` with the thread budget pinned to `threads` (min 1) on this
/// thread, restoring the previous budget afterwards (also on unwind).
///
/// This is the race-free way to compare thread counts in one process:
///
/// ```
/// let serial = owlp_par::with_threads(1, || owlp_par::map_chunks(10, 3, |r| r.len()));
/// let parallel = owlp_par::with_threads(8, || owlp_par::map_chunks(10, 3, |r| r.len()));
/// assert_eq!(serial, parallel);
/// ```
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads.max(1)))));
    f()
}

/// Number of chunks the fixed grid splits `n` items into at `grain`.
pub fn chunk_count(n: usize, grain: usize) -> usize {
    n.div_ceil(grain.max(1))
}

fn chunk_range(c: usize, grain: usize, n: usize) -> Range<usize> {
    let lo = c * grain;
    lo..(lo + grain).min(n)
}

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

/// Type-erased per-chunk work. The pointee lives on the dispatching
/// caller's stack; the dispatch protocol in [`Pool::run`] guarantees no
/// worker dereferences it after the caller returns.
type ChunkFn<'a> = dyn Fn(usize) + Sync + 'a;

/// One dispatched job: the chunk function plus the claim counter.
struct Job {
    f: *const ChunkFn<'static>,
    chunks: usize,
    /// Next unclaimed chunk id; stores `chunks` to short-circuit on panic.
    next: AtomicUsize,
    /// First panic payload from any chunk (caller re-raises it).
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `f` points at a `Sync` closure that the dispatching thread keeps
// alive (and borrowed) until every registered worker has deregistered.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

#[derive(Default)]
struct PoolState {
    /// The job currently offered to workers (`None` between jobs).
    job: Option<Arc<Job>>,
    /// Bumped per job so a worker never re-enters a job it already ran.
    seq: u64,
    /// Worker threads spawned so far.
    spawned: usize,
    /// Workers currently registered on the offered job.
    active: usize,
}

/// The process-wide persistent worker pool.
///
/// Workers are spawned on first demand (up to the requested budget, capped
/// at [`MAX_POOL_THREADS`]) and then parked on a condvar between jobs —
/// reused across every parallel call for the life of the process, which is
/// what makes many-small-dispatch hot paths (event-sim column passes)
/// profitable at all.
pub struct Pool {
    state: Mutex<PoolState>,
    /// Signalled when a new job is offered.
    work: Condvar,
    /// Signalled when the last registered worker deregisters.
    done: Condvar,
    /// Serialises top-level dispatches; a concurrent caller runs serially
    /// (bit-identical by the determinism contract) instead of blocking.
    dispatch: Mutex<()>,
}

impl Pool {
    /// The global pool.
    pub fn get() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| Pool {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            dispatch: Mutex::new(()),
        })
    }

    /// Runs `f(0..chunks)` with up to `helpers` pool workers assisting the
    /// calling thread, falling back to a plain serial loop when the fan-out
    /// cannot pay for itself:
    ///
    /// * fewer than two chunks, or a zero helper budget;
    /// * an estimated total work (`total_ops`, when given) under
    ///   [`MIN_PARALLEL_OPS`] — the tuned threshold below which dispatch
    ///   overhead exceeds the work itself;
    /// * a nested call from inside a pool worker, or a dispatch already in
    ///   flight on another thread (results are identical either way; the
    ///   serial loop is the non-blocking choice).
    ///
    /// A panic in any chunk propagates to the caller with its original
    /// payload after remaining chunks are cancelled.
    pub fn run(
        &'static self,
        chunks: usize,
        helpers: usize,
        total_ops: Option<u64>,
        f: &ChunkFn<'_>,
    ) {
        let serial = chunks <= 1
            || helpers == 0
            || total_ops.is_some_and(|ops| ops < MIN_PARALLEL_OPS)
            || IN_WORKER.with(Cell::get);
        if serial {
            for c in 0..chunks {
                f(c);
            }
            return;
        }
        let Some(_dispatch) = self.dispatch.try_lock() else {
            for c in 0..chunks {
                f(c);
            }
            return;
        };
        let job = Arc::new(Job {
            // SAFETY (lifetime erasure): the quiesce protocol below keeps
            // the pointee alive until every registered worker lets go.
            f: unsafe { std::mem::transmute::<*const ChunkFn<'_>, *const ChunkFn<'static>>(f) },
            chunks,
            next: AtomicUsize::new(0),
            panic: Mutex::new(None),
        });
        {
            let mut st = self.state.lock();
            let want = helpers.min(MAX_POOL_THREADS);
            while st.spawned < want {
                let spawned = std::thread::Builder::new()
                    .name(format!("owlp-par-{}", st.spawned))
                    .spawn(move || worker_loop(Pool::get()))
                    .is_ok();
                if !spawned {
                    break; // fewer helpers; the caller still drains chunks
                }
                st.spawned += 1;
            }
            st.job = Some(job.clone());
            st.seq = st.seq.wrapping_add(1);
            self.work.notify_all();
        }
        // The caller participates (it counts toward the budget); nested
        // parallel calls inside `f` must run serially here exactly as they
        // do inside a pool worker.
        let was_worker = IN_WORKER.with(|w| w.replace(true));
        run_chunks(&job);
        IN_WORKER.with(|w| w.set(was_worker));
        // Quiesce: withdraw the job so no new worker registers, then wait
        // until every registered worker has deregistered — only then is the
        // erased borrow of `f` (and of everything it captures) dead.
        let mut st = self.state.lock();
        st.job = None;
        while st.active > 0 {
            self.done.wait(&mut st);
        }
        drop(st);
        let payload = job.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Claims and runs chunks until the counter is exhausted, capturing the
/// first panic and cancelling the remainder.
fn run_chunks(job: &Job) {
    loop {
        let c = job.next.fetch_add(1, Ordering::Relaxed);
        if c >= job.chunks {
            return;
        }
        // SAFETY: the dispatching caller keeps the pointee alive until all
        // registered workers deregister (quiesce protocol in `Pool::run`).
        let f = unsafe { &*job.f };
        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(c))) {
            let mut slot = job.panic.lock();
            if slot.is_none() {
                *slot = Some(payload);
            }
            drop(slot);
            job.next.store(job.chunks, Ordering::Relaxed);
        }
    }
}

fn worker_loop(pool: &'static Pool) {
    IN_WORKER.with(|w| w.set(true));
    let mut last_seq = 0u64;
    let mut st = pool.state.lock();
    loop {
        let job = match st.job.as_ref() {
            Some(job) if st.seq != last_seq => job.clone(),
            _ => {
                pool.work.wait(&mut st);
                continue;
            }
        };
        last_seq = st.seq;
        st.active += 1;
        drop(st);
        run_chunks(&job);
        st = pool.state.lock();
        st.active -= 1;
        if st.active == 0 {
            pool.done.notify_all();
        }
    }
}

// ---------------------------------------------------------------------------
// Mapping entry points.
// ---------------------------------------------------------------------------

/// Maps `f` over the fixed chunk grid of `0..n` (contiguous ranges of at
/// most `grain` indices) and returns the per-chunk results **in chunk
/// order**. Runs on up to [`thread_budget`] threads (the caller plus
/// persistent pool workers); with a budget of 1 (or a single chunk) it
/// degenerates to a plain serial loop on the calling thread.
///
/// A panic in `f` propagates to the caller, exactly as it would serially.
pub fn map_chunks<U, F>(n: usize, grain: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    map_chunks_inner(n, grain, None, f)
}

/// [`map_chunks`] with a per-item work estimate (scalar-op equivalents):
/// when `n × ops_per_item` is under [`MIN_PARALLEL_OPS`] the call runs
/// serially regardless of budget — the fix for hot paths whose individual
/// dispatches are too small to pay for fan-out.
pub fn map_chunks_weighted<U, F>(n: usize, grain: usize, ops_per_item: u64, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    let total = (n as u64).saturating_mul(ops_per_item.max(1));
    map_chunks_inner(n, grain, Some(total), f)
}

fn map_chunks_inner<U, F>(n: usize, grain: usize, total_ops: Option<u64>, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    let grain = grain.max(1);
    let chunks = n.div_ceil(grain);
    let workers = thread_budget().min(chunks);
    if workers <= 1 || total_ops.is_some_and(|ops| ops < MIN_PARALLEL_OPS) {
        return (0..chunks).map(|c| f(chunk_range(c, grain, n))).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let chunk_fn = |c: usize| {
        let out = f(chunk_range(c, grain, n));
        *slots[c].lock() = Some(out);
    };
    Pool::get().run(chunks, workers - 1, total_ops, &chunk_fn);
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every chunk id was claimed"))
        .collect()
}

/// Maps `f` over `0..n` item-wise and returns the results in index order,
/// scheduling `grain` indices per chunk. Equivalent to
/// `(0..n).map(f).collect()` at every thread count.
pub fn map_indexed<U, F>(n: usize, grain: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if thread_budget() <= 1 || chunk_count(n, grain) <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out = Vec::with_capacity(n);
    for chunk in map_chunks(n, grain, |r| r.map(&f).collect::<Vec<U>>()) {
        out.extend(chunk);
    }
    out
}

/// [`map_indexed`] with a per-item work estimate — see
/// [`map_chunks_weighted`] for the fallback rule.
pub fn map_indexed_weighted<U, F>(n: usize, grain: usize, ops_per_item: u64, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if thread_budget() <= 1
        || chunk_count(n, grain) <= 1
        || (n as u64).saturating_mul(ops_per_item.max(1)) < MIN_PARALLEL_OPS
    {
        return (0..n).map(f).collect();
    }
    let mut out = Vec::with_capacity(n);
    for chunk in map_chunks(n, grain, |r| r.map(&f).collect::<Vec<U>>()) {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn chunk_grid_is_fixed() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(8, 4), 2);
        assert_eq!(chunk_count(9, 4), 3);
        assert_eq!(chunk_range(2, 4, 9), 8..9);
    }

    #[test]
    fn map_chunks_orders_results_at_every_budget() {
        let expect: Vec<Range<usize>> = vec![0..3, 3..6, 6..9, 9..10];
        for t in [1, 2, 4, 8] {
            let got = with_threads(t, || map_chunks(10, 3, |r| r));
            assert_eq!(got, expect, "threads {t}");
        }
    }

    #[test]
    fn map_indexed_matches_serial_iterator() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for t in [1, 2, 4, 8] {
            assert_eq!(with_threads(t, || map_indexed(100, 7, |i| i * i)), expect);
        }
    }

    #[test]
    fn weighted_variants_match_unweighted_results() {
        let expect: Vec<usize> = (0..200).map(|i| i + 1).collect();
        for t in [1, 4, 8] {
            // Tiny estimated work → serial fallback path.
            let small = with_threads(t, || map_indexed_weighted(200, 8, 1, |i| i + 1));
            assert_eq!(small, expect, "threads {t} (small)");
            // Huge estimated work → pool path.
            let big = with_threads(t, || {
                map_indexed_weighted(200, 8, u64::MAX / 4096, |i| i + 1)
            });
            assert_eq!(big, expect, "threads {t} (big)");
            let chunked = with_threads(t, || map_chunks_weighted(200, 8, 1 << 20, |r| r.len()));
            assert_eq!(chunked.iter().sum::<usize>(), 200, "threads {t} (chunks)");
        }
    }

    #[test]
    fn budget_override_wins_and_restores() {
        let outer = thread_budget();
        let inner = with_threads(3, thread_budget);
        assert_eq!(inner, 3);
        assert_eq!(thread_budget(), outer);
        // Zero is clamped to 1, not treated as "default".
        assert_eq!(with_threads(0, thread_budget), 1);
    }

    #[test]
    fn default_budget_is_clamped_to_hardware() {
        // Without an override, the resolved budget never exceeds the real
        // core count (the override path is deliberately unclamped).
        assert!(thread_budget() <= hardware_threads());
        assert_eq!(with_threads(64, thread_budget), 64);
    }

    #[test]
    fn nested_calls_run_serially_inside_workers() {
        let nested_budgets = with_threads(4, || map_indexed(4, 1, |_| thread_budget()));
        assert_eq!(nested_budgets, vec![1; 4]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        with_threads(8, || {
            map_indexed(50, 1, |i| hits[i].fetch_add(1, Ordering::Relaxed))
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(with_threads(4, || map_chunks(0, 8, |r| r)).is_empty());
        assert!(with_threads(4, || map_indexed(0, 8, |i| i)).is_empty());
    }

    #[test]
    fn pool_workers_are_reused_across_calls() {
        // Repeated dispatches must not grow the pool beyond the budget:
        // the whole point of the persistent pool is amortised spawning.
        for _ in 0..50 {
            let v = with_threads(4, || map_indexed(64, 1, |i| i));
            assert_eq!(v.len(), 64);
        }
        let spawned = Pool::get().state.lock().spawned;
        assert!(spawned <= MAX_POOL_THREADS, "spawned {spawned}");
    }

    #[test]
    fn concurrent_top_level_calls_agree() {
        // Two threads dispatching at once: one wins the pool, the other
        // silently runs serially — results are identical either way.
        let expect: Vec<usize> = (0..500).map(|i| i * 3).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|_| s.spawn(|| with_threads(4, || map_indexed(500, 7, |i| i * 3))))
                .collect();
            for h in handles {
                assert_eq!(h.join().expect("no panic"), expect);
            }
        });
    }

    #[test]
    #[should_panic(expected = "chunk 3 exploded")]
    fn worker_panics_propagate() {
        // The pool cancels outstanding chunks and re-raises the original
        // payload on the calling thread; the caller never observes a
        // silently truncated result.
        with_threads(4, || {
            map_chunks(8, 1, |r| {
                if r.start == 3 {
                    panic!("chunk 3 exploded");
                }
                r.start
            })
        });
    }
}
