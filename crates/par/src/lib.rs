//! # owlp-par — deterministic data-parallel execution
//!
//! A small scoped worker pool used by every hot path of the reproduction
//! (GEMM verification, tensor encode/decode, the event-driven array
//! simulator, the serving pool). Its one contract is **determinism**: for a
//! pure per-chunk function, the result of [`map_chunks`] is bit-for-bit
//! identical at every thread count, including 1.
//!
//! Three design rules make that structural rather than conventional:
//!
//! 1. **Fixed chunk grid.** Work over `0..n` is split into contiguous
//!    chunks of a caller-chosen `grain`; chunk boundaries depend only on
//!    `(n, grain)`, never on the thread count or scheduling. A function
//!    whose per-chunk value depends on the chunk shape (e.g. a blocked
//!    reduction) therefore still sees the *same* blocks at every budget.
//! 2. **Ordered assembly.** Each chunk's result lands in a slot indexed by
//!    its chunk id; the output vector is assembled in chunk order after all
//!    workers join. Callers that reduce across chunks do so serially over
//!    this ordered vector, so reduction order is fixed too.
//! 3. **Dynamic scheduling of chunks, not of values.** Workers pull chunk
//!    ids from an atomic counter (good load balance for skewed tiles), but
//!    since a chunk's value is a pure function of its range, *which* worker
//!    computes it cannot matter.
//!
//! The thread budget comes from the `OWLP_THREADS` environment variable
//! (unset/invalid/0 ⇒ `std::thread::available_parallelism()`), or from a
//! scoped [`with_threads`] override that takes precedence — the override is
//! what the determinism property tests use so they never race on the
//! process environment. Inside a worker, nested calls run serially
//! (budget 1): the top-level call owns the parallelism, which keeps thread
//! counts bounded and oversubscription impossible.

use parking_lot::Mutex;
use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable naming the worker-thread budget.
pub const ENV_THREADS: &str = "OWLP_THREADS";

thread_local! {
    /// Scoped override installed by [`with_threads`].
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// Set inside pool workers: nested parallel calls run serially.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The number of worker threads a parallel call may use right now:
/// a [`with_threads`] override if one is active, else 1 inside a pool
/// worker, else `OWLP_THREADS`, else the machine's available parallelism.
///
/// Always ≥ 1; a budget of 1 means "run serially on the calling thread".
pub fn thread_budget() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    env_threads().unwrap_or_else(default_threads)
}

fn env_threads() -> Option<usize> {
    std::env::var(ENV_THREADS)
        .ok()?
        .trim()
        .parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` with the thread budget pinned to `threads` (min 1) on this
/// thread, restoring the previous budget afterwards (also on unwind).
///
/// This is the race-free way to compare thread counts in one process:
///
/// ```
/// let serial = owlp_par::with_threads(1, || owlp_par::map_chunks(10, 3, |r| r.len()));
/// let parallel = owlp_par::with_threads(8, || owlp_par::map_chunks(10, 3, |r| r.len()));
/// assert_eq!(serial, parallel);
/// ```
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(threads.max(1)))));
    f()
}

/// Number of chunks the fixed grid splits `n` items into at `grain`.
pub fn chunk_count(n: usize, grain: usize) -> usize {
    n.div_ceil(grain.max(1))
}

fn chunk_range(c: usize, grain: usize, n: usize) -> Range<usize> {
    let lo = c * grain;
    lo..(lo + grain).min(n)
}

/// Maps `f` over the fixed chunk grid of `0..n` (contiguous ranges of at
/// most `grain` indices) and returns the per-chunk results **in chunk
/// order**. Runs on up to [`thread_budget`] scoped worker threads; with a
/// budget of 1 (or a single chunk) it degenerates to a plain serial loop
/// on the calling thread.
///
/// A panic in `f` propagates to the caller, exactly as it would serially.
pub fn map_chunks<U, F>(n: usize, grain: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(Range<usize>) -> U + Sync,
{
    let grain = grain.max(1);
    let chunks = n.div_ceil(grain);
    let workers = thread_budget().min(chunks);
    if workers <= 1 {
        return (0..chunks).map(|c| f(chunk_range(c, grain, n))).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<U>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    crossbeam::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                IN_WORKER.with(|w| w.set(true));
                loop {
                    let c = next.fetch_add(1, Ordering::Relaxed);
                    if c >= chunks {
                        break;
                    }
                    let out = f(chunk_range(c, grain, n));
                    *slots[c].lock() = Some(out);
                }
            });
        }
    })
    .expect("scoped workers joined");
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every chunk id was claimed"))
        .collect()
}

/// Maps `f` over `0..n` item-wise and returns the results in index order,
/// scheduling `grain` indices per chunk. Equivalent to
/// `(0..n).map(f).collect()` at every thread count.
pub fn map_indexed<U, F>(n: usize, grain: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    if thread_budget() <= 1 || chunk_count(n, grain) <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out = Vec::with_capacity(n);
    for chunk in map_chunks(n, grain, |r| r.map(&f).collect::<Vec<U>>()) {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn chunk_grid_is_fixed() {
        assert_eq!(chunk_count(0, 4), 0);
        assert_eq!(chunk_count(1, 4), 1);
        assert_eq!(chunk_count(8, 4), 2);
        assert_eq!(chunk_count(9, 4), 3);
        assert_eq!(chunk_range(2, 4, 9), 8..9);
    }

    #[test]
    fn map_chunks_orders_results_at_every_budget() {
        let expect: Vec<Range<usize>> = vec![0..3, 3..6, 6..9, 9..10];
        for t in [1, 2, 4, 8] {
            let got = with_threads(t, || map_chunks(10, 3, |r| r));
            assert_eq!(got, expect, "threads {t}");
        }
    }

    #[test]
    fn map_indexed_matches_serial_iterator() {
        let expect: Vec<usize> = (0..100).map(|i| i * i).collect();
        for t in [1, 2, 4, 8] {
            assert_eq!(with_threads(t, || map_indexed(100, 7, |i| i * i)), expect);
        }
    }

    #[test]
    fn budget_override_wins_and_restores() {
        let outer = thread_budget();
        let inner = with_threads(3, thread_budget);
        assert_eq!(inner, 3);
        assert_eq!(thread_budget(), outer);
        // Zero is clamped to 1, not treated as "default".
        assert_eq!(with_threads(0, thread_budget), 1);
    }

    #[test]
    fn nested_calls_run_serially_inside_workers() {
        let nested_budgets = with_threads(4, || map_indexed(4, 1, |_| thread_budget()));
        assert_eq!(nested_budgets, vec![1; 4]);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU32> = (0..50).map(|_| AtomicU32::new(0)).collect();
        with_threads(8, || {
            map_indexed(50, 1, |i| hits[i].fetch_add(1, Ordering::Relaxed))
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(with_threads(4, || map_chunks(0, 8, |r| r)).is_empty());
        assert!(with_threads(4, || map_indexed(0, 8, |i| i)).is_empty());
    }

    #[test]
    #[should_panic(expected = "panicked")]
    fn worker_panics_propagate() {
        // std::thread::scope re-panics with its own message once the
        // workers join; the point is that the caller does not observe a
        // silently truncated result.
        with_threads(4, || {
            map_chunks(8, 1, |r| {
                if r.start == 3 {
                    panic!("chunk 3 exploded");
                }
                r.start
            })
        });
    }
}
