//! Criterion: encoder/decoder and memory-map pack/unpack throughput — the
//! software cost of the OwL-P number format — plus per-tier groups that
//! pin the encode classify loop and the packed-plane decode to each
//! available SIMD tier (the forced-scalar row is the oracle the vector
//! rows are measured against).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use owlp_format::chunk::{ChunkMeta, PackedTensor};
use owlp_format::{encode_tensor, encode_tensor_into, simd, EncodedTensor, PackedOperands};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};

fn bench_codec(c: &mut Criterion) {
    let p = profile_for(
        ModelId::Gpt2Base,
        OpKind::FfnUp,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    let data = TensorGen::new(p, 256, 1024).values(3);
    let enc = encode_tensor(&data, None).unwrap();
    let packed = PackedTensor::pack(&enc, ChunkMeta::default()).unwrap();

    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("encode_tensor", |b| {
        b.iter(|| encode_tensor(&data, None).unwrap())
    });
    group.bench_function("decode_operands", |b| b.iter(|| enc.decode_operands()));
    group.bench_function("to_bf16_roundtrip", |b| b.iter(|| enc.to_bf16_vec()));
    group.bench_function("pack_fig5_memory_map", |b| {
        b.iter(|| PackedTensor::pack(&enc, ChunkMeta::default()).unwrap())
    });
    group.bench_function("unpack_fig5_memory_map", |b| {
        b.iter(|| packed.unpack().unwrap())
    });
    group.finish();
}

/// Encode and packed-decode throughput with the codec pinned to each
/// available kernel tier. Serial (`with_threads(1)`) so the ratio between
/// rows is the vector width, not the thread fan-out, and with reused
/// output buffers so neither side pays allocation in steady state.
fn bench_codec_tiers(c: &mut Criterion) {
    let p = profile_for(
        ModelId::Gpt2Base,
        OpKind::FfnUp,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    let data = TensorGen::new(p, 256, 1024).values(7);
    let enc = encode_tensor(&data, None).unwrap();

    let mut group = c.benchmark_group("codec_tiers");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(data.len() as u64));
    for &tier in simd::available_tiers() {
        group.bench_function(format!("encode_tensor/{}", tier.name()), |b| {
            let mut buf = EncodedTensor::default();
            b.iter(|| {
                simd::with_tier(tier, || {
                    owlp_par::with_threads(1, || encode_tensor_into(&data, None, &mut buf))
                })
                .unwrap()
            })
        });
        group.bench_function(format!("decode_packed_into/{}", tier.name()), |b| {
            let mut out = PackedOperands::default();
            b.iter(|| {
                simd::with_tier(tier, || {
                    owlp_par::with_threads(1, || enc.decode_packed_into(&mut out))
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_codec_tiers);
criterion_main!(benches);
