//! Criterion: encoder/decoder and memory-map pack/unpack throughput — the
//! software cost of the OwL-P number format.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use owlp_format::chunk::{ChunkMeta, PackedTensor};
use owlp_format::encode_tensor;
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};

fn bench_codec(c: &mut Criterion) {
    let p = profile_for(
        ModelId::Gpt2Base,
        OpKind::FfnUp,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    let data = TensorGen::new(p, 256, 1024).values(3);
    let enc = encode_tensor(&data, None).unwrap();
    let packed = PackedTensor::pack(&enc, ChunkMeta::default()).unwrap();

    let mut group = c.benchmark_group("codec");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(data.len() as u64));
    group.bench_function("encode_tensor", |b| {
        b.iter(|| encode_tensor(&data, None).unwrap())
    });
    group.bench_function("decode_operands", |b| b.iter(|| enc.decode_operands()));
    group.bench_function("to_bf16_roundtrip", |b| b.iter(|| enc.to_bf16_vec()));
    group.bench_function("pack_fig5_memory_map", |b| {
        b.iter(|| PackedTensor::pack(&enc, ChunkMeta::default()).unwrap())
    });
    group.bench_function("unpack_fig5_memory_map", |b| {
        b.iter(|| packed.unpack().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
