//! Criterion: functional GEMM kernel throughput — the OwL-P INT datapath
//! versus the FP32-sequential baseline versus the exact Kulisch reference,
//! plus the Table I quantization comparators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use owlp_arith::exact::exact_gemm;
use owlp_arith::fpmac::fp_mac_gemm;
use owlp_arith::gemm::owlp_gemm;
use owlp_arith::quant::{blockfp_gemm, int8_gemm};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};

fn bench_gemms(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_kernels");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(m, k, n) in &[(8usize, 64usize, 8usize), (16, 256, 16), (32, 512, 32)] {
        let act = profile_for(
            ModelId::Gpt2Base,
            OpKind::FfnUp,
            TensorRole::Activation,
            Dataset::WikiText2,
        );
        let wt = profile_for(
            ModelId::Gpt2Base,
            OpKind::FfnUp,
            TensorRole::Weight,
            Dataset::WikiText2,
        );
        let a = TensorGen::new(act, m, k).values(1);
        let b = TensorGen::new(wt, k, n).values(2);
        let macs = (m * k * n) as u64;
        group.throughput(Throughput::Elements(macs));
        let shape = format!("{m}x{k}x{n}");
        group.bench_with_input(
            BenchmarkId::new("owlp_int_datapath", &shape),
            &(),
            |bench, _| bench.iter(|| owlp_gemm(&a, &b, m, k, n).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("fp32_sequential", &shape),
            &(),
            |bench, _| bench.iter(|| fp_mac_gemm(&a, &b, m, k, n)),
        );
        group.bench_with_input(
            BenchmarkId::new("exact_kulisch", &shape),
            &(),
            |bench, _| bench.iter(|| exact_gemm(&a, &b, m, k, n)),
        );
        group.bench_with_input(BenchmarkId::new("int8_quant", &shape), &(), |bench, _| {
            bench.iter(|| int8_gemm(&a, &b, m, k, n))
        });
        group.bench_with_input(BenchmarkId::new("blockfp", &shape), &(), |bench, _| {
            bench.iter(|| blockfp_gemm(&a, &b, m, k, n, 32, 8))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gemms);
criterion_main!(benches);
