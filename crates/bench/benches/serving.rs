//! Criterion: continuous-batching scheduler hot path — one full trace
//! simulation per iteration, with the cost model's shape caches warmed so
//! the measurement isolates the scheduler loop (admission, batching,
//! iteration pricing, completion bookkeeping) rather than the cycle model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owlp_core::Accelerator;
use owlp_model::{Dataset, ModelId};
use owlp_serve::{
    scheduler, simulate_pool, ArrivalProcess, CostModel, LengthDistribution, PoolConfig, Request,
    SchedulerConfig, TraceSpec,
};

fn trace(requests: usize, rate_rps: f64) -> Vec<Request> {
    TraceSpec {
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt: LengthDistribution::Uniform { lo: 32, hi: 96 },
        gen: LengthDistribution::Uniform { lo: 8, hi: 32 },
        requests,
        seed: 0x0DD5_EED5,
    }
    .generate()
}

fn bench_scheduler(c: &mut Criterion) {
    let cost = CostModel::new(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2);
    let cfg = SchedulerConfig {
        max_batch: 16,
        queue_capacity: 64,
    };
    let mut group = c.benchmark_group("serve_scheduler");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &requests in &[64usize, 256] {
        let t = trace(requests, 800.0);
        // Warm the memoised shape tables outside the measured region.
        scheduler::simulate(&cost, &cfg, &t);
        group.bench_with_input(BenchmarkId::new("simulate", requests), &t, |bench, t| {
            bench.iter(|| scheduler::simulate(&cost, &cfg, t))
        });
    }
    let t = trace(256, 3_200.0);
    let pool = PoolConfig {
        workers: 4,
        scheduler: cfg,
    };
    simulate_pool(&cost, &pool, &t).unwrap();
    group.bench_with_input(BenchmarkId::new("pool4", 256usize), &t, |bench, t| {
        bench.iter(|| simulate_pool(&cost, &pool, t).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
