//! Criterion: event-driven array simulation cost — cycle-accurate GEMMs on
//! small arrays, scheduled vs unscheduled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use owlp_systolic::event_sim::{simulate_gemm, simulate_gemm_unscheduled};
use owlp_systolic::ArrayConfig;

fn bench_event_sim(c: &mut Criterion) {
    let act = profile_for(
        ModelId::Gpt2Base,
        OpKind::QkvProj,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let wt = profile_for(
        ModelId::Gpt2Base,
        OpKind::QkvProj,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    let mut group = c.benchmark_group("event_sim");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &(m, k, n) in &[(8usize, 64usize, 8usize), (16, 128, 16)] {
        let a = TensorGen::new(act, m, k).values(4);
        let b = TensorGen::new(wt, k, n).values(5);
        let cfg = ArrayConfig::small(4, 4, 8);
        let shape = format!("{m}x{k}x{n}");
        group.bench_with_input(BenchmarkId::new("scheduled", &shape), &(), |bench, _| {
            bench.iter(|| simulate_gemm(&cfg, &a, &b, m, k, n).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("unscheduled", &shape), &(), |bench, _| {
            bench.iter(|| simulate_gemm_unscheduled(&cfg, &a, &b, m, k, n).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_sim);
criterion_main!(benches);
