//! Criterion: accumulator kernels — per-product `KulischAcc::add_product`
//! vs the hoisted `add_product_batch` vs the bounded-window `WindowAcc`
//! fast path vs the register-tiled sval microkernel, plus the
//! panel-cache hit/miss cost of a prepared-weight GEMM, so future
//! accumulator changes have a tracked baseline.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use owlp_arith::gemm::{owlp_gemm_prepared, PreparedTensor};
use owlp_arith::kulisch::KulischAcc;
use owlp_arith::{microkernel, WindowAcc};
use owlp_format::packed::{META_SH, META_SIGN};
use owlp_format::{encode_tensor, Bf16};

/// Deterministic BF16 operands in the normal band (exponents 126..=127),
/// the all-normal common case every fast path targets.
fn normal_tensor(len: usize, seed: u64) -> Vec<Bf16> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 40) as f32 / (1u64 << 24) as f32;
            let sign = if state & 2 == 0 { 1.0 } else { -1.0 };
            Bf16::from_f32(sign * (0.75 + u * 0.5))
        })
        .collect()
}

fn bench_accumulators(c: &mut Criterion) {
    const N: usize = 4096;
    let a = normal_tensor(N, 0x5EED);
    let b = normal_tensor(N, 0xBEEF);
    // The struct-of-arrays planes the GEMM fast path streams.
    let enc_a = encode_tensor(&a, None).unwrap();
    let enc_b = encode_tensor(&b, None).unwrap();
    let pa = enc_a.decode_packed();
    let pb = enc_b.decode_packed();
    assert_eq!(pa.tagged_count() + pb.tagged_count(), 0, "all-normal input");
    let (shared_a, shared_w) = (enc_a.shared_exp(), enc_b.shared_exp());

    let mut group = c.benchmark_group("accumulators");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("kulisch_add_product", |bch| {
        bch.iter(|| {
            let mut acc = KulischAcc::new();
            for (x, y) in a.iter().zip(&b) {
                acc.add_product(*x, *y);
            }
            acc.round_to_f32()
        })
    });
    group.bench_function("kulisch_add_product_batch", |bch| {
        bch.iter(|| {
            let mut acc = KulischAcc::new();
            acc.add_product_batch(&a, &b);
            acc.round_to_f32()
        })
    });
    group.bench_function("window_acc", |bch| {
        // The exact inner loop of the all-normal GEMM wavefront: flat mag
        // and meta planes, i64 partial spilled into the i128 window.
        let (am, amt) = (pa.mags(), pa.metas());
        let (bm, bmt) = (pb.mags(), pb.metas());
        bch.iter(|| {
            let mut win = WindowAcc::for_owlp_normal(shared_a, shared_w, N);
            let mut sum = 0i64;
            for kk in 0..N {
                let p = am[kk] as i64 * bm[kk] as i64;
                if p != 0 {
                    let sh = 2 * ((amt[kk] & META_SH) + (bmt[kk] & META_SH)) as i32;
                    let v = p << sh;
                    sum += if (amt[kk] ^ bmt[kk]) & META_SIGN != 0 {
                        -v
                    } else {
                        v
                    };
                }
                if kk & 0x1F == 0x1F {
                    win.add_aligned(sum);
                    sum = 0;
                }
            }
            win.add_aligned(sum);
            win.round_to_f32()
        })
    });
    // The same dot product through the register-tiled sval plane: one
    // MR×NR tile whose rows/columns all alias the same vectors, so the
    // per-element work matches `window_acc` while exercising the
    // i16×i16→i32 lane structure — once per kernel tier this host can
    // run, so the SIMD speedup itself has a tracked baseline.
    let a_sval = pa.svals();
    let panel: Vec<i16> = pb
        .svals()
        .iter()
        .flat_map(|&s| std::iter::repeat_n(s, microkernel::NR))
        .collect();
    let a_rows: [&[i16]; microkernel::MR] = [a_sval, a_sval, a_sval, a_sval];
    let win0 = WindowAcc::for_owlp_normal(shared_a, shared_w, N);
    for &tier in microkernel::available_tiers() {
        group.bench_function(format!("microkernel_tile_dot/{tier}"), |bch| {
            bch.iter(|| {
                microkernel::with_tier(tier, || {
                    let wins = microkernel::tile_dot_i16(a_rows, &panel, win0);
                    wins[0][0].round_to_f32()
                })
            })
        });
    }
    group.finish();

    // Panel cache: a prepared weight either carries its packed B panels
    // (`with_shape` — cache hit on every GEMM) or forces `owlp_gemm` to
    // re-tile per call (`new` — cache miss). Same arithmetic, same result;
    // the delta is the per-call packing cost the cache removes.
    let (m, k, n) = (16, 64, 64);
    let act = normal_tensor(m * k, 0xAC75);
    let wt = normal_tensor(k * n, 0x3E16);
    let hit = PreparedTensor::with_shape(&wt, k, n).unwrap();
    let miss = PreparedTensor::new(&wt).unwrap();
    let mut group = c.benchmark_group("panel-cache");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(2 * (m * k * n) as u64));
    group.bench_function("prepared_hit", |bch| {
        bch.iter(|| owlp_gemm_prepared(&act, &hit, m, k, n).unwrap().output)
    });
    group.bench_function("prepared_miss", |bch| {
        bch.iter(|| owlp_gemm_prepared(&act, &miss, m, k, n).unwrap().output)
    });
    group.finish();
}

criterion_group!(benches, bench_accumulators);
criterion_main!(benches);
