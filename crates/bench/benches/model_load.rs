//! Criterion: model cold start — eager decode vs zero-copy archive mmap,
//! plus the bounded-memory streaming encode that produces the archive.
//!
//! The mmap path is the tentpole claim of the archive-v2 layout: opening
//! the file and adopting every plane must be O(index), independent of
//! tensor bytes, where the eager path re-encodes and re-packs every
//! weight from BF16.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use owlp_arith::gemm::PreparedTensor;
use owlp_core::{TinyConfig, TinyTransformer};
use owlp_format::{Bf16, MappedArchive};
use owlp_model::ModelId;
use std::path::PathBuf;

/// The model every case loads: the deterministic smoke transformer.
fn model() -> (TinyConfig, TinyTransformer) {
    let cfg = TinyConfig::small();
    (
        cfg,
        TinyTransformer::new(cfg, ModelId::Gpt2Base, 0x0005_1eed),
    )
}

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "owlp-bench-model-load-{}-{name}.owl2",
        std::process::id()
    ));
    p
}

fn bench_model_load(c: &mut Criterion) {
    let (_, m) = model();
    let path = temp_path("mmap");
    let summary = m.save_archive(&path).unwrap();

    // Flat copies of every weight for the eager case, shaped as the
    // archive stores them.
    let archive = MappedArchive::open(&path).unwrap();
    let names: Vec<String> = archive.names().map(str::to_string).collect();
    let tensors: Vec<(usize, usize, Vec<Bf16>)> = names
        .iter()
        .map(|n| {
            let t = archive.tensor(n).unwrap();
            (t.k(), t.n(), t.to_bf16_vec())
        })
        .collect();
    let weight_bytes: u64 = tensors.iter().map(|(_, _, v)| 2 * v.len() as u64).sum();
    drop(archive);

    let mut group = c.benchmark_group("model_load");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes(weight_bytes));
    // Eager: encode + pack + panel-tile every tensor from BF16.
    group.bench_function("eager_decode", |b| {
        b.iter(|| {
            tensors
                .iter()
                .map(|(k, n, v)| PreparedTensor::with_shape(v, *k, *n).unwrap())
                .collect::<Vec<_>>()
        })
    });
    // Zero-copy: map the file and adopt the planes (no digest pass).
    group.bench_function("mmap_adopt", |b| {
        b.iter(|| {
            let a = MappedArchive::open(&path).unwrap();
            names
                .iter()
                .map(|n| PreparedTensor::from_mapped(a.tensor_unverified(n).unwrap()))
                .collect::<Vec<_>>()
        })
    });
    // Digest-verified variant: what `ServedWeights::load` pays.
    group.bench_function("mmap_adopt_verified", |b| {
        b.iter(|| {
            let a = MappedArchive::open(&path).unwrap();
            names
                .iter()
                .map(|n| PreparedTensor::from_mapped(a.tensor(n).unwrap()))
                .collect::<Vec<_>>()
        })
    });
    group.finish();
    std::fs::remove_file(&path).ok();

    // Streaming encode under a budget far below the largest tensor's
    // plane bytes, forcing many row-aligned chunks.
    let mut group = c.benchmark_group("streaming_encode");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Bytes(weight_bytes));
    group.bench_function("budget_8k", |b| {
        let out = temp_path("stream");
        b.iter(|| {
            let s = m.save_archive_with_budget(&out, 8 << 10).unwrap();
            assert!(s.peak_alloc <= s.budget);
            s.file_len
        });
        std::fs::remove_file(&out).ok();
    });
    group.finish();

    // Sanity tie-back to the offline summary: the mmap cases above load
    // exactly what the pack step wrote.
    assert_eq!(summary.tensors, names.len());
}

criterion_group!(benches, bench_model_load);
criterion_main!(benches);
