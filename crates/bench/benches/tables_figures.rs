//! Criterion: cost of regenerating each paper artefact end to end — the
//! repro harness itself as a benchmark (keeps `repro all` fast).

use criterion::{criterion_group, criterion_main, Criterion};
use owlp_bench::{eq34, fig1, fig11, fig9, table1, table5, SEED};

fn bench_experiments(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_figures");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_function("table1_accuracy", |b| b.iter(|| table1::run(SEED)));
    group.bench_function("fig1_histogram", |b| b.iter(|| fig1::run(SEED)));
    group.bench_function("fig9_area_power_sweep", |b| b.iter(fig9::run));
    group.bench_function("table5_design_rollup", |b| b.iter(table5::run));
    group.bench_function("fig11_ten_workloads", |b| b.iter(fig11::run));
    group.bench_function("eq34_validation", |b| b.iter(|| eq34::run(SEED)));
    group.finish();
}

criterion_group!(benches, bench_experiments);
criterion_main!(benches);
