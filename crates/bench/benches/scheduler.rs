//! Criterion: outlier-scheduling throughput — mask statistics and
//! zero-insertion splitting at realistic tensor sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use owlp_systolic::schedule::OutlierSchedule;

fn bench_scheduler(c: &mut Criterion) {
    let p = profile_for(
        ModelId::Llama2_7b,
        OpKind::QkvProj,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let (m, k) = (512usize, 2048usize);
    let gen = TensorGen::new(p, m, k);
    let mask = gen.mask(7);
    let ops_row: Vec<_> = {
        let values = TensorGen::new(p, 1, 32).values(9);
        let enc = owlp_format::encode_tensor(&values, None).unwrap();
        enc.decode_operands()
    };

    let mut group = c.benchmark_group("scheduler");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements((m * k) as u64));
    for paths in [1usize, 2, 4] {
        let sched = OutlierSchedule::new(32, paths, paths);
        group.bench_with_input(
            BenchmarkId::new("activation_stats", paths),
            &sched,
            |b, sched| b.iter(|| sched.activation_stats(&mask, m, k)),
        );
        group.bench_with_input(
            BenchmarkId::new("weight_stats", paths),
            &sched,
            |b, sched| b.iter(|| sched.weight_stats(&mask, m, k)),
        );
    }
    let sched = OutlierSchedule::new(32, 2, 2);
    group.bench_function("split_activation_row_32", |b| {
        b.iter(|| sched.split_activation_row(&ops_row))
    });
    group.bench_function("mask_generation_512x2048", |b| b.iter(|| gen.mask(7)));
    group.finish();
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
