//! Fig. 1 — exponent distribution of the layer-0 FFN weights of GPT2-Base.
//!
//! Synthesises the corresponding weight tensor, builds the exponent
//! histogram with `owlp-format::stats`, and renders it as a text bar chart
//! with the densest 7-exponent window (the paper's "normal values")
//! marked.

use crate::render::bar;
use owlp_format::stats::ExponentHistogram;
use owlp_format::{ExponentWindow, NORMAL_WINDOW_WIDTH};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use serde::{Deserialize, Serialize};

/// The Fig. 1 experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1 {
    /// `(exponent, count)` series, sorted by exponent.
    pub series: Vec<(u8, u64)>,
    /// The densest 7-exponent window.
    pub window: (u8, u8),
    /// Fraction of values inside the window.
    pub normal_ratio: f64,
}

/// Runs the Fig. 1 experiment.
pub fn run(seed: u64) -> Fig1 {
    let p = profile_for(
        ModelId::Gpt2Base,
        OpKind::FfnUp,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    // GPT2-Base layer-0 FFN-up weight: 768 × 3072.
    let t = TensorGen::new(p, 768, 3072).values(seed);
    let hist = ExponentHistogram::from_values(&t);
    let window: ExponentWindow = hist.densest_window(NORMAL_WINDOW_WIDTH);
    Fig1 {
        series: hist.series(),
        window: (window.base(), window.last()),
        normal_ratio: hist.normal_ratio(window),
    }
}

/// Renders the histogram.
pub fn render(f: &Fig1) -> String {
    let max = f.series.iter().map(|&(_, c)| c).max().unwrap_or(1) as f64;
    let mut out = String::from(
        "Fig. 1 — exponent distribution, GPT2-Base layer-0 FFN weights\n(← outliers | [window] normal values | outliers →)\n",
    );
    for &(e, c) in &f.series {
        let marker = if e >= f.window.0 && e <= f.window.1 {
            "*"
        } else {
            " "
        };
        out.push_str(&format!(
            "  exp {e:>3} {marker} {:>9}  {}\n",
            c,
            bar(c as f64 / max, 50)
        ));
    }
    out.push_str(&format!(
        "window [{}..{}] covers {:.1}% of values (paper: 98.4% for GPT2-Base FFN weights)\n",
        f.window.0,
        f.window.1,
        f.normal_ratio * 100.0
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_covers_about_98_percent() {
        let f = run(crate::SEED);
        assert!(
            (0.973..=0.995).contains(&f.normal_ratio),
            "{}",
            f.normal_ratio
        );
    }

    #[test]
    fn distribution_is_bell_shaped_with_tails() {
        let f = run(crate::SEED);
        // The peak bin sits inside the window; bins exist outside it.
        let peak = f.series.iter().max_by_key(|&&(_, c)| c).unwrap().0;
        assert!(peak >= f.window.0 && peak <= f.window.1);
        assert!(f
            .series
            .iter()
            .any(|&(e, _)| e < f.window.0 || e > f.window.1));
    }

    #[test]
    fn render_marks_window_bins() {
        let f = run(crate::SEED);
        let s = render(&f);
        assert!(s.contains("Fig. 1"));
        assert!(s.contains('*'));
    }
}
