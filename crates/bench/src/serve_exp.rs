//! Load sweep over the serving simulator (supporting analysis).
//!
//! Drives `owlp-serve` with Poisson traces at increasing offered load and
//! reports the latency/throughput curve of the baseline FP32 array versus
//! OwL-P: p50/p95/p99 TTFT and TPOT, goodput, and rejection rate at each
//! point. The per-GEMM speedup of the paper's Fig. 11 compounds under
//! continuous batching — before saturation OwL-P banks strictly more
//! goodput, and past the baseline's knee it keeps tail TTFT flat roughly
//! one octave of load longer.

use crate::render::TextTable;
use crate::SEED;
use owlp_core::Accelerator;
use owlp_model::{Dataset, ModelId};
use owlp_serve::{
    serve_trace, ArrivalProcess, LengthDistribution, PoolConfig, SchedulerConfig, ServingSummary,
    TraceSpec,
};
use serde::Serialize;

/// Offered-load points swept, requests per second.
pub const LOADS_RPS: [f64; 5] = [50.0, 200.0, 800.0, 3_200.0, 12_800.0];

/// Requests per trace.
const REQUESTS: usize = 256;

/// Both designs' summaries at one offered load.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LoadPoint {
    /// Nominal Poisson arrival rate, requests per second.
    pub offered_rps: f64,
    /// Baseline FP32 systolic array.
    pub baseline: ServingSummary,
    /// OwL-P array.
    pub owlp: ServingSummary,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LoadSweep {
    /// One entry per offered-load point, ascending.
    pub points: Vec<LoadPoint>,
}

fn pool() -> PoolConfig {
    PoolConfig {
        workers: 4,
        scheduler: SchedulerConfig {
            max_batch: 16,
            queue_capacity: 32,
        },
    }
}

fn trace_at(rate_rps: f64) -> Vec<owlp_serve::Request> {
    TraceSpec {
        arrivals: ArrivalProcess::Poisson { rate_rps },
        prompt: LengthDistribution::Uniform { lo: 32, hi: 96 },
        gen: LengthDistribution::Uniform { lo: 8, hi: 32 },
        requests: REQUESTS,
        seed: SEED,
    }
    .generate()
}

/// Runs the sweep on a 4-worker pool (GPT2-Base, WikiText-2 outlier rates).
pub fn run() -> LoadSweep {
    let points = LOADS_RPS
        .iter()
        .map(|&rate| {
            let trace = trace_at(rate);
            let serve = |acc: Accelerator| {
                serve_trace(acc, ModelId::Gpt2Base, Dataset::WikiText2, &pool(), &trace)
                    .expect("sweep pool config is valid")
            };
            LoadPoint {
                offered_rps: rate,
                baseline: serve(Accelerator::baseline()),
                owlp: serve(Accelerator::owlp()),
            }
        })
        .collect();
    LoadSweep { points }
}

/// Renders the sweep as a text table.
pub fn render(sweep: &LoadSweep) -> String {
    let mut t = TextTable::new([
        "load req/s",
        "design",
        "goodput",
        "reject%",
        "TTFT p50",
        "TTFT p95",
        "TTFT p99",
        "TPOT p50",
        "TPOT p95",
        "TPOT p99",
    ]);
    for p in &sweep.points {
        for s in [&p.baseline, &p.owlp] {
            t.row([
                format!("{:.0}", p.offered_rps),
                s.design.clone(),
                format!("{:.1}", s.goodput_rps),
                format!("{:.1}", s.rejection_rate * 100.0),
                format!("{:.2}", s.ttft_ms.p50),
                format!("{:.2}", s.ttft_ms.p95),
                format!("{:.2}", s.ttft_ms.p99),
                format!("{:.3}", s.tpot_ms.p50),
                format!("{:.3}", s.tpot_ms.p95),
                format!("{:.3}", s.tpot_ms.p99),
            ]);
        }
    }
    format!(
        "Serving load sweep — GPT2-Base, 4-worker pool, batch 16, queue 32\n\
         (TTFT/TPOT in ms; {} Poisson requests per point, seed {SEED:#x})\n{}",
        REQUESTS,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_sustains_strictly_higher_goodput() {
        let sweep = run();
        assert_eq!(sweep.points.len(), LOADS_RPS.len());
        for p in &sweep.points {
            // Before the baseline saturates the margin is thin (both designs
            // keep up with arrivals and goodput tracks offered load); past
            // the knee it opens to >2x. Strict at every point either way.
            assert!(
                p.owlp.goodput_rps > p.baseline.goodput_rps,
                "owlp goodput {} <= baseline {} at {} req/s",
                p.owlp.goodput_rps,
                p.baseline.goodput_rps,
                p.offered_rps
            );
        }
    }

    #[test]
    fn latency_percentiles_are_ordered_and_grow_with_load() {
        let sweep = run();
        for p in &sweep.points {
            for s in [&p.baseline, &p.owlp] {
                assert!(s.ttft_ms.p50 <= s.ttft_ms.p95 && s.ttft_ms.p95 <= s.ttft_ms.p99);
                assert!(s.tpot_ms.p50 <= s.tpot_ms.p95 && s.tpot_ms.p95 <= s.tpot_ms.p99);
                assert!(s.tpot_ms.p50 > 0.0);
            }
        }
        // Tail TTFT at the heaviest load dwarfs the lightest for the
        // baseline (it is saturated), and the gap is far smaller for OwL-P.
        let first = &sweep.points[0];
        let last = sweep.points.last().unwrap();
        assert!(last.baseline.ttft_ms.p99 > 4.0 * first.baseline.ttft_ms.p99);
        assert!(last.baseline.ttft_ms.p99 > 2.0 * last.owlp.ttft_ms.p99);
    }

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(), run());
    }
}
