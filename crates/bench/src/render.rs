//! Plain-text table rendering for the repro harness.

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio like `2.70x`.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage like `98.4`.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

/// Formats an `r` value like `1.216`.
pub fn rval(v: f64) -> String {
    format!("{v:.3}")
}

/// A unicode bar of width proportional to `frac` (0..=1), max `width`.
pub fn bar(frac: f64, width: usize) -> String {
    let n = (frac.clamp(0.0, 1.0) * width as f64).round() as usize;
    "█".repeat(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["model", "value"]);
        t.row(["BERT-Base", "1.2"]);
        t.row(["x", "123456"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].starts_with("BERT-Base"));
    }

    #[test]
    fn row_padding() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["1"]);
        assert!(t.render().contains('1'));
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(2.7), "2.70x");
        assert_eq!(pct(0.984), "98.4");
        assert_eq!(rval(1.2163), "1.216");
        assert_eq!(bar(0.5, 10).chars().count(), 5);
        assert_eq!(bar(2.0, 4).chars().count(), 4);
    }
}
