//! Ablation studies of OwL-P's design choices (beyond the paper's own
//! figures):
//!
//! * [`align_width`] — how wide the bottom-of-column align unit must be
//!   before results stop being bit-exact (the paper's exactness claim
//!   implicitly assumes "wide enough"; this quantifies it);
//! * [`window_width`] — the bias-field size trade-off: a `b`-bit bias gives
//!   a `2^b − 1`-exponent window; wider windows mean fewer outliers but
//!   more bits per value;
//! * [`path_split`] — how the 4 outlier paths per PE should be divided
//!   between activation and weight outliers.

use crate::render::{pct, rval, TextTable};
use owlp_arith::align::AlignUnit;
use owlp_arith::exact::exact_gemm;
use owlp_arith::gemm::owlp_gemm_with;
use owlp_arith::pe::PeConfig;
use owlp_core::{workloads, Accelerator};
use owlp_format::stats::ExponentHistogram;
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use owlp_systolic::schedule::OutlierSchedule;
use serde::{Deserialize, Serialize};

/// Result of the align-width ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AlignWidthAblation {
    /// `(width_bits, bit_exact_fraction_typical, bit_exact_fraction_adversarial)`.
    pub points: Vec<(u32, f64, f64)>,
}

/// Sweeps the bounded align-unit width on typical LLM tensors and on an
/// adversarial cancellation-heavy tensor.
pub fn align_width(seed: u64) -> AlignWidthAblation {
    let (m, k, n) = (8usize, 64usize, 8usize);
    let act = profile_for(
        ModelId::Gpt2Base,
        OpKind::AttnContext,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let wt = profile_for(
        ModelId::Gpt2Base,
        OpKind::AttnContext,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    let a_typ = TensorGen::new(act, m, k).values(seed);
    let b_typ = TensorGen::new(wt, k, n).values(seed ^ 1);
    // Adversarial: huge *exactly cancelling* pairs around a small signal —
    // activation +big at position i pairs with −big at i+4, and the weight
    // rows i and i+4 are made identical so the two outlier products cancel
    // exactly, leaving only the tiny normal partial sum. A narrow align
    // unit truncates that survivor into its sticky bit.
    let mut a_adv = a_typ.clone();
    let mut b_adv = b_typ.clone();
    for i in (0..k).step_by(8) {
        for r in 0..m {
            a_adv[r * k + i] = owlp_format::Bf16::from_f32(3.0e18);
            a_adv[r * k + i + 4] = owlp_format::Bf16::from_f32(-3.0e18);
        }
        for j in 0..n {
            b_adv[(i + 4) * n + j] = b_adv[i * n + j];
        }
    }
    let golden_typ = exact_gemm(&a_typ, &b_typ, m, k, n);
    let golden_adv = exact_gemm(&a_adv, &b_adv, m, k, n);
    let frac = |width: u32, a: &[owlp_format::Bf16], b: &[owlp_format::Bf16], g: &[f32]| -> f64 {
        let out = owlp_gemm_with(a, b, m, k, n, PeConfig::PAPER, AlignUnit::bounded(width))
            .expect("finite tensors")
            .output;
        out.iter()
            .zip(g)
            .filter(|(x, y)| x.to_bits() == y.to_bits())
            .count() as f64
            / g.len() as f64
    };
    let points = [32u32, 40, 48, 64, 96, 120]
        .iter()
        .map(|&w| {
            (
                w,
                frac(w, &a_typ, &b_typ, &golden_typ),
                frac(w, &a_adv, &b_adv, &golden_adv),
            )
        })
        .collect();
    AlignWidthAblation { points }
}

/// Renders the align-width ablation.
pub fn render_align(a: &AlignWidthAblation) -> String {
    let mut t = TextTable::new([
        "align width (bits)",
        "bit-exact, typical",
        "bit-exact, adversarial",
    ]);
    for &(w, typ, adv) in &a.points {
        t.row([w.to_string(), pct(typ), pct(adv)]);
    }
    format!(
        "Ablation — bounded align-unit width vs bit-exactness (%)\n\
         (the paper's exactness claim requires the combine before INT2FP to be lossless;\n\
          typical LLM tensors need modest width, adversarial cancellations need more)\n{}",
        t.render()
    )
}

/// Result of the window-width ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowWidthAblation {
    /// `(bias_bits, window_width, outlier_rate, bits_per_value, r_a)`.
    pub points: Vec<(u32, u8, f64, f64, f64)>,
}

/// Sweeps the bias-field width for GPT2-Base activations: window width
/// `2^b − 1` (one pattern reserved for the outlier marker).
pub fn window_width(seed: u64) -> WindowWidthAblation {
    let p = profile_for(
        ModelId::Gpt2Base,
        OpKind::FfnUp,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let (m, k) = (256usize, 768usize);
    let values = TensorGen::new(p, m, k).values(seed);
    let hist = ExponentHistogram::from_values(&values);
    let points = (1u32..=4)
        .map(|bias_bits| {
            let width = ((1u16 << bias_bits) - 1).min(254) as u8;
            let window = hist.densest_window(width);
            let normal_ratio = hist.normal_ratio(window);
            let outlier_rate = 1.0 - normal_ratio;
            // Storage: sign + bias + 7-bit frac per value, plus 8 bits per
            // outlier exponent and the Fig. 5 group framing (16/32 values).
            let bits_per_value = (1 + bias_bits + 7) as f64 + outlier_rate * 8.0 + 16.0 / 32.0;
            // Scheduling: mask against this window.
            let mask: Vec<bool> = values
                .iter()
                .map(|v| !window.contains(*v) && !v.is_zero())
                .collect();
            let r_a = OutlierSchedule::new(32, 2, 2)
                .activation_stats(&mask, m, k)
                .ratio;
            (bias_bits, width, outlier_rate, bits_per_value, r_a)
        })
        .collect();
    WindowWidthAblation { points }
}

/// Renders the window-width ablation.
pub fn render_window(w: &WindowWidthAblation) -> String {
    let mut t = TextTable::new(["bias bits", "window", "outlier %", "bits/value", "r_a"]);
    for &(b, width, rate, bits, ra) in &w.points {
        t.row([
            b.to_string(),
            format!("{width} exps"),
            pct(rate),
            format!("{bits:.2}"),
            rval(ra),
        ]);
    }
    format!(
        "Ablation — bias-field width (GPT2-Base activations)\n\
         (3 bits is the knee: 2 bits leaves too many outliers, 4 bits buys almost nothing)\n{}",
        t.render()
    )
}

/// Result of the path-split ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSplitAblation {
    /// `(act_paths, weight_paths, total_cycles)` on the BERT-Base workload.
    pub points: Vec<(usize, usize, u64)>,
}

/// Sweeps how 4 outlier paths divide between activation and weight
/// outliers, on the BERT-Base 512-token workload.
pub fn path_split() -> PathSplitAblation {
    let wl = &workloads::paper_workloads()[0];
    let ds = workloads::default_dataset(wl.model);
    let points = [(1usize, 3usize), (2, 2), (3, 1)]
        .iter()
        .map(|&(a, w)| {
            (
                a,
                w,
                Accelerator::owlp_with_paths(a, w).simulate(wl, ds).cycles,
            )
        })
        .collect();
    PathSplitAblation { points }
}

/// Renders the path-split ablation.
pub fn render_paths(p: &PathSplitAblation) -> String {
    let mut t = TextTable::new(["act paths", "weight paths", "total cycles"]);
    let best = p.points.iter().map(|&(_, _, c)| c).min().unwrap_or(0);
    for &(a, w, c) in &p.points {
        let marker = if c == best { " <- best" } else { "" };
        t.row([a.to_string(), w.to_string(), format!("{c}{marker}")]);
    }
    format!(
        "Ablation — splitting the 4 outlier paths per PE (BERT-Base, 512 tokens)\n\
         (activations carry most of the outlier pressure: starving them (1+3) is\n\
          costly, while 2+2 and 3+1 are within a percent of each other — the\n\
          paper's symmetric split is effectively optimal and simpler to schedule)\n{}",
        t.render()
    )
}

/// Result of the subset-granularity (block size) ablation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockSizeAblation {
    /// `(block_len, bits_per_value, outlier_rate)` at each granularity,
    /// plus the monolithic single-window reference as `block_len == 0`.
    pub points: Vec<(usize, f64, f64)>,
}

/// Sweeps the "subset tensor" size over which the shared exponent is
/// chosen (paper §III-A stores one shared exponent per subset), on an
/// activation stream with a mid-tensor distribution shift (as happens
/// across layer boundaries in a fused buffer).
pub fn block_size(seed: u64) -> BlockSizeAblation {
    use owlp_format::stream::{encode_stream, monolithic_bits_per_value};
    // Two regimes: attention-probability-like small values, then
    // FFN-activation-like larger ones.
    let p1 = profile_for(
        ModelId::Gpt2Base,
        OpKind::AttnContext,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let p2 = profile_for(
        ModelId::Gpt2Base,
        OpKind::FfnUp,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let mut data = TensorGen::new(p1, 64, 64).values(seed);
    data.extend(TensorGen::new(p2, 64, 64).values(seed ^ 9));
    let mut points = Vec::new();
    for block in [256usize, 1024, 4096] {
        let stream = encode_stream(&data, block).expect("profile tensors encode");
        let bits = stream.bits_per_value().expect("packs");
        let outlier_rate = stream.outlier_count() as f64 / data.len() as f64;
        points.push((block, bits, outlier_rate));
    }
    let mono = monolithic_bits_per_value(&data).expect("packs");
    let enc = owlp_format::encode_tensor(&data, None).expect("encodes");
    points.push((0, mono, enc.outlier_count() as f64 / data.len() as f64));
    BlockSizeAblation { points }
}

/// Renders the block-size ablation.
pub fn render_blocks(b: &BlockSizeAblation) -> String {
    let mut t = TextTable::new(["subset size", "bits/value", "outlier %"]);
    for &(block, bits, rate) in &b.points {
        let label = if block == 0 {
            "whole tensor".to_string()
        } else {
            block.to_string()
        };
        t.row([label, format!("{bits:.2}"), pct(rate)]);
    }
    format!(
        "Ablation — shared-exponent subset size (activation stream with a\n\
         mid-tensor distribution shift; smaller subsets adapt, at a small\n\
         metadata cost — why the paper shares per subset, not per tensor)\n{}",
        t.render()
    )
}

/// Result of the block-FP precision sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockFpSweep {
    /// `(block_size, mean relative error)` of the MX-style comparator.
    pub by_block: Vec<(usize, f64)>,
    /// `(mantissa_bits, mean relative error)` at block 32.
    pub by_mantissa: Vec<(u32, f64)>,
}

/// Sweeps the block-FP comparator's block size and mantissa width, showing
/// why no block-FP point reaches OwL-P's exactness (Table I context).
pub fn blockfp_sweep(seed: u64) -> BlockFpSweep {
    use owlp_arith::exact::exact_gemm_f64;
    use owlp_arith::quant::{blockfp_gemm, ErrorStats};
    let (m, k, n) = (16usize, 128usize, 16usize);
    let a = TensorGen::new(
        profile_for(
            ModelId::Gpt2Base,
            OpKind::FfnUp,
            TensorRole::Activation,
            Dataset::WikiText2,
        ),
        m,
        k,
    )
    .values(seed);
    let b = TensorGen::new(
        profile_for(
            ModelId::Gpt2Base,
            OpKind::FfnUp,
            TensorRole::Weight,
            Dataset::WikiText2,
        ),
        k,
        n,
    )
    .values(seed ^ 5);
    let golden = exact_gemm_f64(&a, &b, m, k, n);
    let err = |block: usize, bits: u32| {
        ErrorStats::compare(&blockfp_gemm(&a, &b, m, k, n, block, bits), &golden).mean_rel
    };
    BlockFpSweep {
        by_block: [8usize, 16, 32, 64, 128]
            .iter()
            .map(|&bl| (bl, err(bl, 8)))
            .collect(),
        by_mantissa: [4u32, 6, 8, 10, 12]
            .iter()
            .map(|&bits| (bits, err(32, bits)))
            .collect(),
    }
}

/// Renders the block-FP sweep.
pub fn render_blockfp(s: &BlockFpSweep) -> String {
    let mut t1 = TextTable::new(["block size", "mean rel err (8-bit mant)"]);
    for &(bl, e) in &s.by_block {
        t1.row([bl.to_string(), format!("{e:.3e}")]);
    }
    let mut t2 = TextTable::new(["mantissa bits", "mean rel err (block 32)"]);
    for &(bits, e) in &s.by_mantissa {
        t2.row([bits.to_string(), format!("{e:.3e}")]);
    }
    format!(
        "Ablation — block-FP comparator sweep (no point reaches OwL-P's 0 error)\n{}\n{}",
        t1.render(),
        t2.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_align_units_are_bit_exact_on_typical_tensors() {
        let a = align_width(crate::SEED);
        let widest = a.points.last().unwrap();
        assert_eq!(widest.1, 1.0, "120-bit align must be exact on typical data");
        // Exactness is monotone in width on the typical workload.
        for w in a.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn adversarial_tensors_need_more_width() {
        let a = align_width(crate::SEED);
        let narrow = a.points.first().unwrap();
        assert!(
            narrow.2 <= narrow.1,
            "adversarial exactness {} should not exceed typical {}",
            narrow.2,
            narrow.1
        );
    }

    #[test]
    fn three_bias_bits_is_the_knee() {
        let w = window_width(crate::SEED);
        let rate = |bits: u32| w.points.iter().find(|p| p.0 == bits).unwrap().2;
        // 2 → 3 bits cuts outliers by a lot; 3 → 4 bits barely moves them.
        assert!(rate(2) > 2.0 * rate(3), "{} vs {}", rate(2), rate(3));
        assert!(rate(3) < rate(2));
        assert!(rate(4) <= rate(3));
        // Storage knee: bits/value grows linearly while the win saturates.
        let bits = |b: u32| w.points.iter().find(|p| p.0 == b).unwrap().3;
        assert!(bits(4) > bits(3));
    }

    #[test]
    fn blockfp_error_improves_with_smaller_blocks_and_more_mantissa() {
        let s = blockfp_sweep(crate::SEED);
        // Smaller blocks adapt better: error non-increasing as blocks shrink.
        for w in s.by_block.windows(2) {
            assert!(w[0].1 <= w[1].1 * 1.5, "{:?}", s.by_block);
        }
        assert!(s.by_block.first().unwrap().1 < s.by_block.last().unwrap().1);
        // More mantissa bits help monotonically.
        for w in s.by_mantissa.windows(2) {
            assert!(w[1].1 <= w[0].1, "{:?}", s.by_mantissa);
        }
        // And even the best point is still approximate (OwL-P is exact).
        assert!(s.by_mantissa.last().unwrap().1 > 0.0);
    }

    #[test]
    fn finer_subsets_reduce_outliers_under_distribution_shift() {
        let b = block_size(crate::SEED);
        let rate = |block: usize| b.points.iter().find(|p| p.0 == block).unwrap().2;
        assert!(
            rate(256) < rate(0),
            "256-subsets {} vs whole {}",
            rate(256),
            rate(0)
        );
        assert!(rate(1024) <= rate(4096) + 1e-9);
    }

    #[test]
    fn starving_activation_paths_is_costly_and_2_2_is_near_optimal() {
        let p = path_split();
        let cycles = |a: usize| p.points.iter().find(|x| x.0 == a).unwrap().2;
        // 1+3 starves the dominant (activation) pressure: clearly worse.
        assert!(
            cycles(1) as f64 > 1.05 * cycles(2) as f64,
            "{} vs {}",
            cycles(1),
            cycles(2)
        );
        // 2+2 and 3+1 are within 2 % of each other — a tie in practice.
        let rel = (cycles(2) as f64 - cycles(3) as f64).abs() / cycles(2) as f64;
        assert!(rel < 0.02, "2+2 vs 3+1 differ by {rel}");
    }
}
