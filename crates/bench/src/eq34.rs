//! Eq. (3)/(4) validation — the closed-form cycle model against the
//! event-driven array simulation, on sweeps of (M, K, N) and array shapes.

use crate::render::TextTable;
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use owlp_systolic::event_sim::simulate_gemm;
use owlp_systolic::ArrayConfig;
use serde::{Deserialize, Serialize};

/// One validation point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// GEMM shape.
    pub m: usize,
    /// Reduction dim.
    pub k: usize,
    /// Output columns.
    pub n: usize,
    /// Array rows/cols/lanes.
    pub array: (usize, usize, usize),
    /// Event-simulated cycles.
    pub simulated: u64,
    /// Eq. (4) cycles with the simulator's effective M/N folded in exactly.
    pub closed_form: u64,
    /// Whether the simulated array stayed conflict-free.
    pub conflict_free: bool,
    /// Whether outputs matched `exact_gemm` bit-for-bit.
    pub bit_exact: bool,
}

/// The validation result set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Eq34 {
    /// All validation points.
    pub points: Vec<ValidationPoint>,
}

/// Runs the validation sweep.
pub fn run(seed: u64) -> Eq34 {
    let shapes = [
        (5usize, 17usize, 7usize),
        (8, 32, 8),
        (16, 64, 12),
        (3, 96, 33),
    ];
    let arrays = [(2usize, 3usize, 4usize), (4, 4, 2), (1, 8, 8), (3, 2, 8)];
    let act_profile = profile_for(
        ModelId::Gpt2Base,
        OpKind::QkvProj,
        TensorRole::Activation,
        Dataset::WikiText2,
    );
    let wt_profile = profile_for(
        ModelId::Gpt2Base,
        OpKind::QkvProj,
        TensorRole::Weight,
        Dataset::WikiText2,
    );
    let mut points = Vec::new();
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        for (j, &(rows, cols, lanes)) in arrays.iter().enumerate() {
            let cfg = ArrayConfig::small(rows, cols, lanes);
            let a = TensorGen::new(act_profile, m, k).values(seed + i as u64);
            let b = TensorGen::new(wt_profile, k, n).values(seed + 100 + j as u64);
            let sim = simulate_gemm(&cfg, &a, &b, m, k, n).expect("simulation runs");
            let golden = owlp_arith::exact::exact_gemm(&a, &b, m, k, n);
            let bit_exact = sim
                .outputs
                .iter()
                .zip(&golden)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            // Reconstruct the closed form from the simulator's effective
            // row/column counts (exact, unlike the global r approximation).
            let tiles = k.div_ceil(cfg.k_tile()) as u64;
            let folds_per_tile = sim
                .physical_columns
                .div_ceil(tiles)
                .div_ceil(cfg.cols as u64);
            let rows_per_tile = sim.streamed_rows / (tiles * folds_per_tile).max(1);
            let per_fold = (2 * cfg.rows + cfg.cols) as u64 + rows_per_tile - 2;
            let closed_form = per_fold * folds_per_tile * tiles;
            points.push(ValidationPoint {
                m,
                k,
                n,
                array: (rows, cols, lanes),
                simulated: sim.cycles,
                closed_form,
                conflict_free: sim.conflict_free,
                bit_exact,
            });
        }
    }
    Eq34 { points }
}

/// Renders the validation table.
pub fn render(e: &Eq34) -> String {
    let mut t = TextTable::new([
        "M,K,N",
        "array RxCxL",
        "sim cycles",
        "closed form",
        "rel err",
        "conflict-free",
        "bit-exact",
    ]);
    for p in &e.points {
        let rel = (p.simulated as f64 - p.closed_form as f64).abs() / p.simulated.max(1) as f64;
        t.row([
            format!("{},{},{}", p.m, p.k, p.n),
            format!("{}x{}x{}", p.array.0, p.array.1, p.array.2),
            p.simulated.to_string(),
            p.closed_form.to_string(),
            format!("{:.1}%", rel * 100.0),
            p.conflict_free.to_string(),
            p.bit_exact.to_string(),
        ]);
    }
    format!(
        "Eq. (3)/(4) validation — event-driven simulation vs closed-form cycle model\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_are_correct_and_conflict_free() {
        let e = run(crate::SEED);
        assert!(!e.points.is_empty());
        for p in &e.points {
            assert!(p.conflict_free, "{p:?}");
            assert!(p.bit_exact, "{p:?}");
        }
    }

    #[test]
    fn closed_form_tracks_simulation_closely() {
        let e = run(crate::SEED);
        for p in &e.points {
            let rel = (p.simulated as f64 - p.closed_form as f64).abs() / p.simulated.max(1) as f64;
            assert!(rel < 0.25, "{p:?}: rel {rel}");
        }
    }
}
