//! Machine-readable parallel-speedup baselines (`repro bench-json`).
//!
//! Times the four `owlp-par` hot paths — exact/OwL-P GEMM, tensor
//! encode/decode, the event-driven array simulation, and the serving
//! pool — serially (`with_threads(1)`) and at the resolved thread budget,
//! and writes one JSON report (default `BENCH_PR3.json`) that CI archives
//! per commit. Every case also re-checks the determinism contract: the
//! parallel result must be bit-identical to the serial one.
//!
//! Wall-clock numbers are min-of-`REPS` ([`Instant`]), so the report is a
//! *measurement*, not a promise: on a single-hardware-thread host the
//! speedups hover around 1× and `hardware_threads` says why.

use crate::render::TextTable;
use crate::SEED;
use owlp_core::Accelerator;
use owlp_model::{Dataset, ModelId};
use owlp_serve::{
    simulate_pool_with, ArrivalProcess, CostModel, LengthDistribution, PoolConfig, SchedulerConfig,
    ShardScratch, TraceSpec,
};
use owlp_systolic::{event_sim, ArrayConfig};
use serde::Serialize;
use std::time::Instant;

/// Repetitions per timing (the minimum is reported); `--smoke` uses 1.
const REPS: usize = 7;

/// Report schema version (bump on breaking field changes). v2 adds the
/// requested-vs-clamped thread accounting and the old-baseline comparison
/// fields; v3 adds the `memory` co-simulation section; v4 adds the
/// `integrity` fault-sweep and checksum-overhead section; v5 adds the
/// `simd` dispatch section (detected features, selected tier, per-tier
/// throughput and cross-tier bit-identity) and per-case `serial_gain`
/// regression gating; v6 adds the `weights` archive-v2 section
/// (mmap-vs-eager cold load, streaming-encode budget conformance, and the
/// mapped-vs-owned GEMM bit-identity gate); v7 adds the `host` section
/// (CPU model, SIMD features, cache sizes), the `blocking` section
/// (blocked-vs-unblocked drive-loop gains and vector-vs-scalar codec
/// gains, both gated on full runs), and the two large cache-spilling
/// GEMM cases.
pub const SCHEMA: u32 = 7;

/// Minimum serial blocked-vs-unblocked gain the exact-GEMM drive loop
/// must show on the large shape of a full run (schema v7 `blocking`
/// section) — the whole point of the three-level loop nest.
pub const BLOCKED_GAIN_FLOOR_EXACT: f64 = 1.4;

/// Same floor for the packed OwL-P drive loop. Lower than the exact
/// floor: the i16 operand planes are half as wide, so the unblocked
/// order spills caches later and the blocked order has less to recover.
pub const BLOCKED_GAIN_FLOOR_OWLP: f64 = 1.3;

/// Minimum serial vector-vs-scalar encode gain a full run must show when
/// the codec dispatch selected a vector tier (skipped on scalar-only
/// hosts, where the ratio is 1.0 by construction).
pub const ENCODE_VECTOR_GAIN_FLOOR: f64 = 1.5;

/// Maximum acceptable checksum overhead on the serial GEMM paths
/// (fraction of plain throughput). CI fails a full run that exceeds it.
///
/// Raised from 5% when the SIMD microkernels roughly doubled unguarded
/// serial throughput: the guarded boundary's absolute cost per call
/// (plane CRCs + side-band parity + ABFT reference/verify, ~60µs at the
/// bench shape) is unchanged, but the plain denominator halved, so the
/// same protection now reads as ~6–11% relative. The budget tracks the
/// relative cost of a *fixed* absolute boundary on the current kernels.
pub const OVERHEAD_LIMIT_FRAC: f64 = 0.10;

/// Fault strikes the integrity sweep injects (full / `--smoke`).
const SWEEP_FAULTS: u64 = 10_000;
const SWEEP_FAULTS_SMOKE: u64 = 1_500;

/// Repetitions of each plain/checked timing pair. The overhead ratio
/// gates at [`OVERHEAD_LIMIT_FRAC`], so it needs more samples than the
/// throughput cases: on a
/// shared host the per-call spread is far wider than the budget, and only
/// the interleaved minimum over many rounds converges below it.
const OVERHEAD_REPS: usize = 20;

/// One timed workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchCase {
    /// Hot path exercised (`gemm-exact`, `gemm-owlp`, `encode`, `decode`,
    /// `event-sim`, `serve-pool`).
    pub name: String,
    /// Human-readable workload shape.
    pub shape: String,
    /// Work units per run (scalar products, elements, or requests).
    pub ops: u64,
    /// Threads used for the parallel timing.
    pub threads: usize,
    /// Best serial wall-clock, seconds (`OWLP_THREADS=1`).
    pub serial_s: f64,
    /// Best parallel wall-clock, seconds. Equal to `serial_s` when the
    /// resolved budget is one thread (there is nothing parallel to time).
    pub parallel_s: f64,
    /// `ops / serial_s`.
    pub serial_ops_per_s: f64,
    /// `ops / parallel_s`.
    pub parallel_ops_per_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether the parallel result matched the serial result bit-for-bit.
    pub bit_identical: bool,
    /// Serial ops/s of the same case in the previous baseline report
    /// (`None` when no baseline file was supplied or the case is new).
    pub baseline_serial_ops_per_s: Option<f64>,
    /// `serial_ops_per_s / baseline_serial_ops_per_s` — the old-vs-new
    /// serial gain this PR's fast paths delivered.
    pub serial_gain: Option<f64>,
}

/// One per-design, per-phase verdict from the `owlp-mem` co-simulation.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MemoryPhaseVerdict {
    /// Design point (`baseline` / `owlp`).
    pub design: String,
    /// Serving phase (`Prefill` / `Decode`).
    pub phase: String,
    /// Achieved off-chip bandwidth over the phase makespan, GB/s.
    pub achieved_gbps: f64,
    /// `max(compute, memory) / makespan` — 1.0 is perfect prefetch overlap.
    pub overlap_efficiency: f64,
    /// Event-driven verdict: memory cycles exceed compute cycles.
    pub memory_bound: bool,
}

/// The `memory` section: event-driven HBM/SRAM co-simulation verdicts on
/// the paper's generation workload. Not a timing — a model-consistency
/// gate: CI fails when `byte_conservation_ok` is false.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MemorySection {
    /// Off-chip bandwidth roof, GB/s (same HBM on both designs).
    pub peak_gbps: f64,
    /// Per-design, per-phase verdicts.
    pub phases: Vec<MemoryPhaseVerdict>,
    /// Every phase's channel-level byte accounting matched its request
    /// stream (outlier spill included).
    pub byte_conservation_ok: bool,
}

/// One checked-vs-plain serial timing of a GEMM path: the cost of the
/// full integrity ladder (parity scan + plane CRC + ABFT collect/verify)
/// relative to the unguarded kernel.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntegrityOverhead {
    /// GEMM path measured (`gemm-owlp` / `gemm-exact`).
    pub case: String,
    /// Workload shape.
    pub shape: String,
    /// Unguarded serial throughput, ops/s.
    pub plain_ops_per_s: f64,
    /// Fully-checked serial throughput, ops/s.
    pub checked_ops_per_s: f64,
    /// `1 − checked/plain` — positive means the checks cost throughput.
    pub overhead_frac: f64,
}

/// The `integrity` section (schema v4): a seeded fault sweep over every
/// wire class plus the checksum-overhead gate. Deterministic except for
/// the two timings, so CI can gate hard on the coverage fields.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct IntegritySection {
    /// Sweep RNG seed.
    pub seed: u64,
    /// Strikes injected.
    pub faults_injected: u64,
    /// Strikes a detector caught.
    pub detected: u64,
    /// Caught strikes corrected back to oracle bits.
    pub corrected: u64,
    /// Undetected corruptions of delivered output — must be zero with
    /// every detector armed.
    pub escaped_total: u64,
    /// Undetected strikes absorbed by FP32 rounding.
    pub masked: u64,
    /// Detector firings on fault-free probes — must be zero always.
    pub false_positives: u64,
    /// Every corrected run delivered oracle-identical bits.
    pub corrected_bit_identical: bool,
    /// Per-wire-class coverage breakdown.
    pub classes: Vec<owlp_integrity::ClassCoverage>,
    /// Checked-vs-plain serial timings.
    pub overhead: Vec<IntegrityOverhead>,
    /// Worst `overhead_frac` across the timed paths.
    pub max_overhead_frac: f64,
}

/// Tier one public microkernel entry point dispatches to (schema v5).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EntryPointTier {
    /// Entry point name (`tile_dot_i16`, `tile_dot_i32`, `dot_sval`).
    pub entry: String,
    /// Kernel tier it resolves to under the current dispatch.
    pub tier: String,
}

/// Serial throughput of one GEMM drive loop forced to one kernel tier.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierThroughput {
    /// GEMM path measured (`gemm-owlp` / `gemm-exact`).
    pub case: String,
    /// Kernel tier forced via `with_tier`.
    pub tier: String,
    /// Best serial throughput at that tier, ops/s.
    pub serial_ops_per_s: f64,
}

/// The `simd` section (schema v5): what the runtime kernel dispatch
/// detected and selected, per-tier drive-loop throughput, and the
/// cross-tier bit-identity verdict CI gates on.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimdSection {
    /// `OWLP_SIMD` as this process saw it (`auto` when unset/empty).
    pub env: String,
    /// Dispatch-relevant CPU features the host reports.
    pub detected_features: Vec<String>,
    /// Tiers this host can execute, in ascending preference order.
    pub available_tiers: Vec<String>,
    /// The tier dispatch selected (env override clamped to the host).
    pub selected_tier: String,
    /// Tier each public kernel entry point resolves to.
    pub entry_points: Vec<EntryPointTier>,
    /// Per-tier serial GEMM throughput, every available tier forced.
    pub tiers: Vec<TierThroughput>,
    /// Every available tier reproduced the scalar oracle's output bits on
    /// both GEMM paths, serially and at the full thread budget.
    pub tiers_bit_identical: bool,
}

/// The `host` section (schema v7): where the numbers came from, so
/// reports from different machines are comparable at a glance.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct HostSection {
    /// CPU marketing name (`/proc/cpuinfo`), when the host exposes one.
    pub cpu_model: Option<String>,
    /// Dispatch-relevant SIMD features the runtime detected.
    pub detected_features: Vec<String>,
    /// Detected (or defaulted) per-core cache capacities — the inputs
    /// the drive loops derive their blocking geometry from.
    pub cache: owlp_format::CacheInfo,
}

/// Serial blocked-vs-unblocked timing of one GEMM drive loop on the
/// large shape (schema v7).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BlockedGain {
    /// GEMM path measured (`gemm-owlp` / `gemm-exact`).
    pub case: String,
    /// Workload shape.
    pub shape: String,
    /// Blocking geometry the blocked run resolved, as `mc,kc,nc` after
    /// clamping to the shape.
    pub geometry: String,
    /// Serial throughput with the resolved blocking geometry, ops/s.
    pub blocked_ops_per_s: f64,
    /// Serial throughput with blocking forced off
    /// (`BlockGeometry::UNBLOCKED` — the pre-blocking loop order), ops/s.
    pub unblocked_ops_per_s: f64,
    /// `blocked / unblocked` — what the cache blocking bought.
    pub gain: f64,
    /// Whether the gain floor gates this entry on a full run: true only
    /// when the clamped geometry actually splits a loop dimension *and*
    /// the operand planes exceed the last-level cache, so the unblocked
    /// order must stream from memory. When the whole problem fits the
    /// LLC (e.g. the 260 MB Xeon L3 of the reference container),
    /// blocking is expected to be performance-neutral — the gain is
    /// still recorded, but only the bit-identity gate applies.
    pub floor_applies: bool,
    /// Both loop orders produced the same output bits. They must:
    /// blocking is pure re-association over exact integer accumulation.
    pub bit_identical: bool,
}

/// Serial vector-vs-scalar timing of the encode classify loop and the
/// packed-plane decode (schema v7).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct CodecVectorGain {
    /// Elements per run.
    pub elements: u64,
    /// Tier the codec dispatch selected (`scalar` on hosts without a
    /// vector unit — the gains then sit at 1.0 and CI skips the floor).
    pub tier: String,
    /// `encode_tensor_into` elements/s at the selected tier.
    pub encode_vector_ops_per_s: f64,
    /// Same, forced to the scalar oracle.
    pub encode_scalar_ops_per_s: f64,
    /// `vector / scalar` for encode.
    pub encode_gain: f64,
    /// `decode_packed_into` elements/s at the selected tier.
    pub decode_vector_ops_per_s: f64,
    /// Same, forced to the scalar oracle.
    pub decode_scalar_ops_per_s: f64,
    /// `vector / scalar` for decode.
    pub decode_gain: f64,
    /// The vector tier reproduced the scalar codes, outlier streams, and
    /// decoded planes bit-for-bit.
    pub bit_identical: bool,
}

/// The `blocking` section (schema v7): what the cache-blocked drive
/// loops and the vectorized codec buy over their straight-line
/// baselines, measured in-run on this host. All timings are serial —
/// cache residency and vector width are serial effects, and the thread
/// fan-out would mask them.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BlockingSection {
    /// `OWLP_BLOCK` as this process saw it (`auto` when unset/empty).
    pub env: String,
    /// Blocked-vs-unblocked gains, one entry per GEMM drive loop.
    pub gemm: Vec<BlockedGain>,
    /// Vector-vs-scalar codec gains.
    pub codec: CodecVectorGain,
}

/// Cold-load floor CI enforces: mapping a packed archive must beat the
/// eager encode-and-pack cold start by at least this factor on a full run.
pub const COLD_LOAD_SPEEDUP_FLOOR: f64 = 10.0;

/// The `weights` section (schema v6): the zero-copy archive-v2 weight
/// path. One model's tensors are streaming-encoded to disk under a small
/// fixed budget, then cold-started both ways — eager (encode + pack +
/// panel-tile from BF16, today's startup) and mapped (open + adopt planes,
/// zero decode) — and every mapped tensor's GEMM is re-checked bit-for-bit
/// against its owned twin at every kernel tier and thread count.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct WeightsSection {
    /// Tensors packed into the archive.
    pub tensors: usize,
    /// Archive file size, bytes.
    pub archive_bytes: u64,
    /// Streaming-encode transient-memory budget, bytes.
    pub stream_budget: u64,
    /// Peak transient bytes the streaming encoder actually held.
    pub stream_peak_alloc: u64,
    /// `stream_peak_alloc <= stream_budget` — the bounded-memory gate.
    pub stream_within_budget: bool,
    /// Best eager cold start, seconds (encode + pack + panel per tensor).
    pub eager_cold_s: f64,
    /// Best mapped cold start, seconds (open archive + adopt all planes).
    pub mmap_cold_s: f64,
    /// `eager_cold_s / mmap_cold_s` — gated at
    /// [`COLD_LOAD_SPEEDUP_FLOOR`] on full runs.
    pub cold_speedup: f64,
    /// Whether the planes came from a true `mmap` (vs the aligned
    /// heap-read fallback — same layout, so the identity gates still run).
    pub mapped: bool,
    /// Every per-plane CRC32C digest verified against the mapped bytes.
    pub digests_verified: bool,
    /// Every mapped tensor's GEMM reproduced its owned twin's output bits
    /// at every available kernel tier, serially and at the thread budget.
    pub mapped_gemm_bit_identical: bool,
}

/// The full baseline report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// Report schema version.
    pub schema: u32,
    /// Hardware threads the host advertises
    /// ([`owlp_par::hardware_threads`]) — speedups are bounded by this,
    /// whatever `OWLP_THREADS` asks for.
    pub hardware_threads: usize,
    /// Threads the environment *asked* for (`OWLP_THREADS` /
    /// `with_threads`), before clamping to the hardware.
    pub requested_threads: usize,
    /// Resolved (hardware-clamped) `owlp-par` thread budget used for the
    /// parallel timings.
    pub thread_budget: usize,
    /// Whether this was a `--smoke` run (small shapes, single repetition).
    pub smoke: bool,
    /// One entry per hot path.
    pub cases: Vec<BenchCase>,
    /// Memory co-simulation verdicts (schema v3).
    pub memory: MemorySection,
    /// Fault-sweep coverage and checksum overhead (schema v4).
    pub integrity: IntegritySection,
    /// Kernel-dispatch accounting and per-tier throughput (schema v5).
    pub simd: SimdSection,
    /// Archive-v2 weight-path verdicts (schema v6).
    pub weights: WeightsSection,
    /// Host identification for cross-machine comparison (schema v7).
    pub host: HostSection,
    /// Cache-blocking and vector-codec gains (schema v7).
    pub blocking: BlockingSection,
}

/// Interleaved min-times of a plain/checked pair: the two closures run
/// alternately within one loop so clock drift, thermal throttling, and
/// scheduler noise land on both sides of the overhead ratio equally —
/// back-to-back `min_time` blocks can skew the ratio by several percent
/// on a noisy host, which is larger than the budget being enforced.
fn min_time_pair(reps: usize, mut plain: impl FnMut(), mut checked: impl FnMut()) -> (f64, f64) {
    let (mut tp, mut tc) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        plain();
        tp = tp.min(t.elapsed().as_secs_f64());
        let t = Instant::now();
        checked();
        tc = tc.min(t.elapsed().as_secs_f64());
    }
    (tp, tc)
}

/// Times `f` `reps` times and returns (best seconds, last result).
fn min_time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        out = Some(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out.expect("at least one repetition"))
}

/// Times one workload serially and at `threads`, checking bit-identity
/// through `fingerprint` (any `Eq` digest of the result).
fn case<R, D: PartialEq>(
    name: &str,
    shape: String,
    ops: u64,
    reps: usize,
    threads: usize,
    mut run: impl FnMut() -> R,
    fingerprint: impl Fn(&R) -> D,
) -> BenchCase {
    let (serial_s, serial) = owlp_par::with_threads(1, || min_time(reps, &mut run));
    // A one-thread budget has nothing parallel to time: reporting the
    // serial number twice (speedup exactly 1.0) is the honest measurement,
    // where re-timing would only add noise around 1.0×.
    let (parallel_s, bit_identical) = if threads <= 1 {
        let _ = serial;
        (serial_s, true)
    } else {
        let (parallel_s, parallel) = owlp_par::with_threads(threads, || min_time(reps, &mut run));
        (parallel_s, fingerprint(&serial) == fingerprint(&parallel))
    };
    BenchCase {
        name: name.to_string(),
        shape,
        ops,
        threads,
        serial_s,
        parallel_s,
        serial_ops_per_s: ops as f64 / serial_s,
        parallel_ops_per_s: ops as f64 / parallel_s,
        speedup: serial_s / parallel_s,
        bit_identical,
        baseline_serial_ops_per_s: None,
        serial_gain: None,
    }
}

/// Deterministic BF16 test tensor with a sprinkling of outliers.
fn tensor(len: usize, salt: u64) -> Vec<owlp_format::Bf16> {
    let mut state = SEED ^ salt;
    (0..len)
        .map(|_| {
            // xorshift64* — cheap, seeded, and dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let small = ((state >> 32) as i32 % 1000) as f32 * 1e-3;
            let v = if state.is_multiple_of(61) {
                small * 1e20
            } else {
                small
            };
            owlp_format::Bf16::from_f32(v)
        })
        .collect()
}

/// Runs the suite. `smoke` shrinks shapes and repetitions so CI can afford
/// it on every push.
pub fn run(smoke: bool) -> BenchReport {
    let reps = if smoke { 1 } else { REPS };
    let threads = owlp_par::thread_budget();
    let mut cases = Vec::new();

    // 1. Exact (Kulisch) GEMM — the golden reference everything is
    //    checked against.
    let (m, k, n) = if smoke { (48, 48, 48) } else { (160, 160, 160) };
    let (a, b) = (tensor(m * k, 1), tensor(k * n, 2));
    cases.push(case(
        "gemm-exact",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || owlp_arith::exact_gemm(&a, &b, m, k, n),
        |r| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    ));

    // 2. OwL-P datapath GEMM (encode + decode + PE columns).
    let (m, k, n) = if smoke { (24, 48, 48) } else { (64, 128, 128) };
    let (a, b) = (tensor(m * k, 3), tensor(k * n, 4));
    cases.push(case(
        "gemm-owlp",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || owlp_arith::owlp_gemm(&a, &b, m, k, n).expect("finite inputs"),
        |r| r.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    ));

    // 3/4. Tensor encode and decode throughput.
    let len = if smoke { 1 << 14 } else { 1 << 20 };
    let t = tensor(len, 5);
    cases.push(case(
        "encode",
        format!("{len} elements"),
        len as u64,
        reps,
        threads,
        || owlp_format::encode_tensor(&t, None).expect("finite inputs"),
        |e| (e.codes().to_vec(), e.outlier_count()),
    ));
    let enc = owlp_format::encode_tensor(&t, None).expect("finite inputs");
    let mut buf = Vec::new();
    cases.push(case(
        "decode",
        format!("{len} elements"),
        len as u64,
        reps,
        threads,
        || {
            enc.decode_into(&mut buf);
            buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        },
        |bits| bits.clone(),
    ));

    // 5. Event-driven array simulation (column-shard parallel).
    let (m, k, n) = if smoke { (16, 32, 32) } else { (48, 64, 64) };
    let (a, b) = (tensor(m * k, 6), tensor(k * n, 7));
    let cfg = ArrayConfig::OWLP_PAPER;
    cases.push(case(
        "event-sim",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || event_sim::simulate_gemm(&cfg, &a, &b, m, k, n).expect("finite inputs"),
        |r| r.clone(),
    ));

    // 6. Serving pool (one shard per worker).
    let requests = if smoke { 48 } else { 192 };
    let trace = TraceSpec {
        arrivals: ArrivalProcess::Poisson { rate_rps: 400.0 },
        prompt: LengthDistribution::Uniform { lo: 32, hi: 96 },
        gen: LengthDistribution::Uniform { lo: 8, hi: 32 },
        requests,
        seed: SEED,
    }
    .generate();
    let cost = CostModel::new(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2);
    let pool = PoolConfig {
        workers: 4,
        scheduler: SchedulerConfig {
            max_batch: 16,
            queue_capacity: 32,
        },
    };
    // Warm the memoised shape tables so neither timing pays them, and
    // reuse one shard scratch across every timed round — the steady-state
    // shape of a serving loop.
    let mut shards = ShardScratch::default();
    let _ = simulate_pool_with(&cost, &pool, &trace, &mut shards);
    cases.push(case(
        "serve-pool",
        format!("{requests} requests, {} workers", pool.workers),
        requests as u64,
        reps,
        threads,
        || simulate_pool_with(&cost, &pool, &trace, &mut shards).expect("pool simulation runs"),
        |r| r.clone(),
    ));

    // 7/8. Large GEMM shapes — big enough that the operand working sets
    // spill every cache level under the unblocked loop order. The
    // `blocking` section measures what the blocked order buys on the
    // same shape; these cases record the absolute throughput CI tracks
    // across PRs.
    let (m, k, n) = if smoke { (64, 64, 64) } else { (512, 512, 512) };
    let (a, b) = (tensor(m * k, 14), tensor(k * n, 15));
    cases.push(case(
        "gemm-exact-large",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || owlp_arith::exact_gemm(&a, &b, m, k, n),
        |r| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    ));
    let (a, b) = (tensor(m * k, 16), tensor(k * n, 17));
    cases.push(case(
        "gemm-owlp-large",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || owlp_arith::owlp_gemm(&a, &b, m, k, n).expect("finite inputs"),
        |r| r.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    ));

    BenchReport {
        schema: SCHEMA,
        hardware_threads: owlp_par::hardware_threads(),
        requested_threads: owlp_par::requested_threads(),
        thread_budget: threads,
        smoke,
        cases,
        memory: memory_section(smoke),
        integrity: integrity_section(smoke),
        simd: simd_section(smoke),
        weights: weights_section(smoke),
        host: host_section(),
        blocking: blocking_section(smoke),
    }
}

/// Collects the host identification block: CPU model, detected SIMD
/// features, and the cache topology the blocking geometry derives from.
fn host_section() -> HostSection {
    HostSection {
        cpu_model: owlp_format::blocking::cpu_model(),
        detected_features: owlp_arith::microkernel::detected_features()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        cache: owlp_format::cache_info(),
    }
}

/// Times both GEMM drive loops on the large shape with the resolved
/// blocking geometry and with blocking forced off, plus the encode
/// classify loop and packed-plane decode at the selected vector tier
/// versus the forced-scalar oracle. Operands for the OwL-P pair are
/// encoded and panel-packed outside the timers so the ratio isolates
/// the drive loop the geometry actually changes.
fn blocking_section(smoke: bool) -> BlockingSection {
    use owlp_arith::microkernel::{MR, NR};
    use owlp_format::simd::KernelTier;
    use owlp_format::{block_geometry, with_block, BlockGeometry, EncodedTensor, PackedOperands};

    let reps = if smoke { 1 } else { 3 };
    let (m, k, n) = if smoke { (64, 64, 64) } else { (512, 512, 512) };
    let shape = format!("{m}x{k}x{n}");
    let ops = 2 * (m * k * n) as u64;
    let cache = owlp_format::cache_info();
    let mut gemm = Vec::new();
    let mut pair = |case: &str, elem: usize, run: &mut dyn FnMut() -> Vec<u32>| {
        let geom = block_geometry(elem, MR, NR).for_shape(m, k, n, MR, NR);
        // The floor only binds when a loop dimension is actually split
        // and the operand planes overflow the LLC — otherwise the
        // unblocked order never leaves cache and there is nothing for
        // blocking to win back.
        let binds = geom.mc < m || geom.kc < k || geom.nc < n;
        let floor_applies = binds && (m * k + k * n) * elem > cache.l3;
        let (blocked_s, blocked) = owlp_par::with_threads(1, || min_time(reps, &mut *run));
        let (unblocked_s, unblocked) = with_block(BlockGeometry::UNBLOCKED, || {
            owlp_par::with_threads(1, || min_time(reps, &mut *run))
        });
        gemm.push(BlockedGain {
            case: case.to_string(),
            shape: shape.clone(),
            geometry: geom.to_string(),
            blocked_ops_per_s: ops as f64 / blocked_s,
            unblocked_ops_per_s: ops as f64 / unblocked_s,
            gain: unblocked_s / blocked_s,
            floor_applies,
            bit_identical: blocked == unblocked,
        });
    };

    let (a, b) = (tensor(m * k, 20), tensor(k * n, 21));
    pair("gemm-exact", 4, &mut || {
        owlp_arith::exact_gemm(&a, &b, m, k, n)
            .iter()
            .map(|v| v.to_bits())
            .collect()
    });

    let (ao, bo) = (tensor(m * k, 22), tensor(k * n, 23));
    let enc_a = owlp_format::encode_tensor(&ao, None).expect("finite inputs");
    let enc_b = owlp_format::encode_tensor(&bo, None).expect("finite inputs");
    let (packed_a, packed_b) = (enc_a.decode_packed(), enc_b.decode_packed());
    let panels = packed_b.pack_panels(k, n);
    pair("gemm-owlp", 2, &mut || {
        owlp_arith::gemm::owlp_gemm_packed(
            &packed_a,
            &packed_b,
            Some(&panels),
            m,
            k,
            n,
            owlp_arith::PeConfig::PAPER,
            owlp_arith::AlignUnit::Exact,
        )
        .expect("finite inputs")
        .output
        .iter()
        .map(|v| v.to_bits())
        .collect()
    });

    // Vector-vs-scalar codec: same reusable buffers on both sides, so
    // neither timing pays allocation after the first round.
    let len = if smoke { 1 << 14 } else { 1 << 20 };
    let t = tensor(len, 24);
    let tier = owlp_format::simd::selected_tier();
    let creps = if smoke { 1 } else { REPS };
    let mut enc = EncodedTensor::default();
    let mut packed = PackedOperands::default();
    let mut time_codec = |forced: KernelTier| {
        owlp_format::simd::with_tier(forced, || {
            owlp_par::with_threads(1, || {
                let (enc_s, ()) = min_time(creps, || {
                    owlp_format::encode_tensor_into(&t, None, &mut enc).expect("finite inputs")
                });
                let (dec_s, ()) = min_time(creps, || enc.decode_packed_into(&mut packed));
                (enc_s, dec_s, enc.codes().to_vec(), packed.clone())
            })
        })
    };
    let (enc_vec_s, dec_vec_s, codes_vec, packed_vec) = time_codec(tier);
    let (enc_sca_s, dec_sca_s, codes_sca, packed_sca) = time_codec(KernelTier::Scalar);
    let codec = CodecVectorGain {
        elements: len as u64,
        tier: tier.name().to_string(),
        encode_vector_ops_per_s: len as f64 / enc_vec_s,
        encode_scalar_ops_per_s: len as f64 / enc_sca_s,
        encode_gain: enc_sca_s / enc_vec_s,
        decode_vector_ops_per_s: len as f64 / dec_vec_s,
        decode_scalar_ops_per_s: len as f64 / dec_sca_s,
        decode_gain: dec_sca_s / dec_vec_s,
        bit_identical: codes_vec == codes_sca && packed_vec == packed_sca,
    };

    BlockingSection {
        env: std::env::var(owlp_format::ENV_BLOCK)
            .ok()
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| "auto".to_string()),
        gemm,
        codec,
    }
}

/// Packs a small weight set to disk under a tight streaming budget, then
/// measures both cold starts and re-checks mapped-vs-owned GEMM
/// bit-identity across every kernel tier and thread count.
fn weights_section(smoke: bool) -> WeightsSection {
    use owlp_arith::gemm::{owlp_gemm_prepared, PreparedTensor};
    use owlp_arith::microkernel;
    use owlp_format::{ArchiveWriter, MappedArchive};

    let reps = if smoke { 1 } else { REPS };
    let threads = owlp_par::thread_budget();
    // Tensor set sized so the eager side pays a real encode+pack bill;
    // the budget is far below the raw tensor bytes, forcing many
    // streaming chunks per tensor.
    let (k, n, count) = if smoke { (96, 64, 3) } else { (256, 192, 4) };
    let budget = if smoke { 32 << 10 } else { 256 << 10 };
    let tensors: Vec<(String, Vec<owlp_format::Bf16>)> = (0..count)
        .map(|i| (format!("w{i}"), tensor(k * n, 100 + i as u64)))
        .collect();

    let mut path = std::env::temp_dir();
    path.push(format!("owlp-bench-weights-{}.owl2", std::process::id()));
    let mut writer = ArchiveWriter::with_budget(&path, budget).expect("temp archive creates");
    for (name, data) in &tensors {
        writer
            .add_tensor_slice(name, k, n, data)
            .expect("bench tensors are finite");
    }
    let summary = writer.finish().expect("archive finishes");

    // Eager cold start: what startup costs today — encode, decode-pack,
    // and panel-tile every tensor from its BF16 values.
    let (eager_cold_s, owned) = min_time(reps, || {
        tensors
            .iter()
            .map(|(_, data)| PreparedTensor::with_shape(data, k, n).expect("finite"))
            .collect::<Vec<_>>()
    });
    // Mapped cold start: open the archive and adopt every tensor's planes.
    // `tensor_unverified` is the production fast path; digests get their
    // own verified pass below.
    let (mmap_cold_s, mapped_prepared) = min_time(reps, || {
        let archive = MappedArchive::open(&path).expect("archive opens");
        tensors
            .iter()
            .map(|(name, _)| {
                PreparedTensor::from_mapped(archive.tensor_unverified(name).expect("present"))
            })
            .collect::<Vec<_>>()
    });

    let archive = MappedArchive::open(&path).expect("archive reopens");
    let mapped = archive.was_mapped();
    let digests_verified = archive.verify().is_ok();

    // Bit-identity gate: every mapped tensor, every available kernel
    // tier, one thread and the full budget — mapped planes must be
    // indistinguishable from owned ones to the GEMM.
    let m = if smoke { 8 } else { 16 };
    let a = tensor(m * k, 99);
    let mut identical = true;
    for (own, map) in owned.iter().zip(&mapped_prepared) {
        identical &= own == map;
        for &tier in microkernel::available_tiers() {
            for t in [1, threads] {
                let bits = |prep: &PreparedTensor| {
                    microkernel::with_tier(tier, || {
                        owlp_par::with_threads(t, || {
                            owlp_gemm_prepared(&a, prep, m, k, n)
                                .expect("finite")
                                .output
                                .iter()
                                .map(|v| v.to_bits())
                                .collect::<Vec<_>>()
                        })
                    })
                };
                identical &= bits(own) == bits(map);
            }
        }
    }
    drop(mapped_prepared);
    drop(archive);
    std::fs::remove_file(&path).ok();

    WeightsSection {
        tensors: summary.tensors,
        archive_bytes: summary.file_len,
        stream_budget: summary.budget as u64,
        stream_peak_alloc: summary.peak_alloc as u64,
        stream_within_budget: summary.peak_alloc <= summary.budget,
        eager_cold_s,
        mmap_cold_s,
        cold_speedup: eager_cold_s / mmap_cold_s,
        mapped,
        digests_verified,
        mapped_gemm_bit_identical: identical,
    }
}

/// Times both GEMM drive loops with every available kernel tier forced
/// (serial), re-checks bit-identity against the scalar oracle at one
/// thread *and* at the full thread budget, and records what the runtime
/// dispatch detected and selected.
fn simd_section(smoke: bool) -> SimdSection {
    use owlp_arith::microkernel;

    let reps = if smoke { 1 } else { REPS };
    let threads = owlp_par::thread_budget();

    // Drive-loop shapes matching the overhead section: operands encoded
    // and panels packed once outside the timers, so the per-tier numbers
    // isolate the kernels the tiers actually change.
    let (m, k, n) = if smoke { (24, 48, 48) } else { (64, 128, 128) };
    let ops_owlp = 2 * (m * k * n) as u64;
    let (a, b) = (tensor(m * k, 10), tensor(k * n, 11));
    let enc_a = owlp_format::encode_tensor(&a, None).expect("finite inputs");
    let enc_b = owlp_format::encode_tensor(&b, None).expect("finite inputs");
    let (packed_a, packed_b) = (enc_a.decode_packed(), enc_b.decode_packed());
    let panels = packed_b.pack_panels(k, n);
    let run_owlp = || {
        owlp_arith::gemm::owlp_gemm_packed(
            &packed_a,
            &packed_b,
            Some(&panels),
            m,
            k,
            n,
            owlp_arith::PeConfig::PAPER,
            owlp_arith::AlignUnit::Exact,
        )
        .expect("finite inputs")
        .output
        .iter()
        .map(|v| v.to_bits())
        .collect::<Vec<_>>()
    };
    let (me, ke, ne) = if smoke { (48, 48, 48) } else { (160, 160, 160) };
    let ops_exact = 2 * (me * ke * ne) as u64;
    let (ae, be) = (tensor(me * ke, 12), tensor(ke * ne, 13));
    let run_exact = || {
        owlp_arith::exact_gemm(&ae, &be, me, ke, ne)
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    };

    let mut tiers = Vec::new();
    let mut identical = true;
    let mut reference: Option<(Vec<u32>, Vec<u32>)> = None;
    for &tier in microkernel::available_tiers() {
        let (owlp_s, owlp_bits) = microkernel::with_tier(tier, || {
            owlp_par::with_threads(1, || min_time(reps, run_owlp))
        });
        let (exact_s, exact_bits) = microkernel::with_tier(tier, || {
            owlp_par::with_threads(1, || min_time(reps, run_exact))
        });
        // One run at the full budget re-checks identity through the pool
        // fan-out (the drive loops resolve the forced tier before the
        // fan-out, so the override reaches every worker).
        let (owlp_par_bits, exact_par_bits) = microkernel::with_tier(tier, || {
            owlp_par::with_threads(threads, || (run_owlp(), run_exact()))
        });
        match &reference {
            // The first tier is always the scalar oracle
            // (`available_tiers` starts with it).
            None => reference = Some((owlp_bits.clone(), exact_bits.clone())),
            Some((ro, re)) => identical &= *ro == owlp_bits && *re == exact_bits,
        }
        let (ro, re) = reference.as_ref().expect("reference recorded");
        identical &= *ro == owlp_par_bits && *re == exact_par_bits;
        tiers.push(TierThroughput {
            case: "gemm-owlp".to_string(),
            tier: tier.name().to_string(),
            serial_ops_per_s: ops_owlp as f64 / owlp_s,
        });
        tiers.push(TierThroughput {
            case: "gemm-exact".to_string(),
            tier: tier.name().to_string(),
            serial_ops_per_s: ops_exact as f64 / exact_s,
        });
    }

    SimdSection {
        env: std::env::var(microkernel::ENV_SIMD)
            .ok()
            .filter(|v| !v.is_empty())
            .unwrap_or_else(|| "auto".to_string()),
        detected_features: microkernel::detected_features()
            .iter()
            .map(|s| s.to_string())
            .collect(),
        available_tiers: microkernel::available_tiers()
            .iter()
            .map(|t| t.name().to_string())
            .collect(),
        selected_tier: microkernel::selected_tier().name().to_string(),
        entry_points: microkernel::entry_point_tiers()
            .iter()
            .map(|(entry, tier)| EntryPointTier {
                entry: entry.to_string(),
                tier: tier.name().to_string(),
            })
            .collect(),
        tiers,
        tiers_bit_identical: identical,
    }
}

/// Runs the seeded integrity fault sweep and times the checksum overhead
/// of the fully-guarded GEMM paths against their unguarded twins.
fn integrity_section(smoke: bool) -> IntegritySection {
    use owlp_arith::{exact_gemm, exact_gemm_abft};
    use owlp_integrity::{fault_sweep, GuardedGemm, IntegrityConfig};

    let faults = if smoke {
        SWEEP_FAULTS_SMOKE
    } else {
        SWEEP_FAULTS
    };
    let sweep = fault_sweep(SEED, faults, IntegrityConfig::full());

    // Overhead is a *serial* measurement: the acceptance bar is on the
    // single-thread kernel, where the checksums cannot hide behind
    // parallel slack. Encode/pack happens once outside both timers — the
    // steady-state serving shape, where weights are packed once.
    let (m, k, n) = if smoke { (24, 48, 48) } else { (64, 128, 128) };
    let ops = 2 * (m * k * n) as u64;
    let (a, b) = (tensor(m * k, 8), tensor(k * n, 9));
    let guarded = GuardedGemm::new(&a, &b, m, k, n).expect("finite inputs");
    // One copy of the operands for both sides of the ratio: the plain
    // kernel reads the guarded working storage and memoised weight
    // panels, as production would.
    let (packed_a, packed_b) = guarded.working();
    let panels = guarded.panels();
    let mut overhead = Vec::new();
    let mut push = |case: &str, plain_s: f64, checked_s: f64| {
        let plain = ops as f64 / plain_s;
        let checked = ops as f64 / checked_s;
        overhead.push(IntegrityOverhead {
            case: case.to_string(),
            shape: format!("{m}x{k}x{n}"),
            plain_ops_per_s: plain,
            checked_ops_per_s: checked,
            overhead_frac: 1.0 - checked / plain,
        });
    };

    let (plain_s, checked_s) = owlp_par::with_threads(1, || {
        min_time_pair(
            OVERHEAD_REPS,
            || {
                std::hint::black_box(
                    owlp_arith::gemm::owlp_gemm_packed(
                        packed_a,
                        packed_b,
                        Some(panels),
                        m,
                        k,
                        n,
                        owlp_arith::PeConfig::PAPER,
                        owlp_arith::AlignUnit::Exact,
                    )
                    .expect("finite inputs"),
                );
            },
            || {
                std::hint::black_box(
                    guarded
                        .checked_run(IntegrityConfig::full())
                        .expect("clean operands raise no detector"),
                );
            },
        )
    });
    push("gemm-owlp", plain_s, checked_s);

    let (plain_s, checked_s) = owlp_par::with_threads(1, || {
        min_time_pair(
            OVERHEAD_REPS,
            || {
                std::hint::black_box(exact_gemm(&a, &b, m, k, n));
            },
            || {
                let (out, check) = exact_gemm_abft(&a, &b, m, k, n, None);
                let check = check.expect("banded fast path runs on this workload");
                let (bad_rows, bad_cols) = check.mismatches();
                assert!(bad_rows.is_empty() && bad_cols.is_empty(), "clean run");
                std::hint::black_box(out);
            },
        )
    });
    push("gemm-exact", plain_s, checked_s);

    let max_overhead_frac = overhead
        .iter()
        .map(|o| o.overhead_frac)
        .fold(f64::NEG_INFINITY, f64::max);
    IntegritySection {
        seed: SEED,
        faults_injected: sweep.faults,
        detected: sweep.detected,
        corrected: sweep.corrected,
        escaped_total: sweep.escaped,
        masked: sweep.masked,
        false_positives: sweep.false_positives,
        corrected_bit_identical: sweep.corrected_bit_identical,
        classes: sweep.classes,
        overhead,
        max_overhead_frac,
    }
}

/// Co-simulates the paper's generation workload on both designs and
/// collapses the roofline report into the `memory` section. Cheap even in
/// full mode — the uniform-phase engine extrapolates from a bounded warmup
/// window instead of walking every fold group.
fn memory_section(smoke: bool) -> MemorySection {
    let gen = if smoke { 8 } else { 64 };
    let wl = owlp_model::workload::generation_workload(ModelId::Llama2_7b, 32, 128, gen);
    let mut phases = Vec::new();
    let mut peak_gbps = 0.0;
    let mut conserved = true;
    for (name, acc) in [
        ("baseline", Accelerator::baseline()),
        ("owlp", Accelerator::owlp()),
    ] {
        let report = owlp_core::cosim::cosim_workload(&acc, &wl, Dataset::WikiText2);
        peak_gbps = report.peak_gbps;
        conserved &= report.bytes_conserved();
        for agg in &report.aggregates {
            phases.push(MemoryPhaseVerdict {
                design: name.to_string(),
                phase: format!("{:?}", agg.class),
                achieved_gbps: agg.achieved_gbps,
                overlap_efficiency: agg.overlap_efficiency,
                memory_bound: agg.memory_bound,
            });
        }
    }
    MemorySection {
        peak_gbps,
        phases,
        byte_conservation_ok: conserved,
    }
}

/// Fills each case's `baseline_serial_ops_per_s` / `serial_gain` from a
/// previous report's JSON text (schema 1 or 2 — only `cases[].name` and
/// `cases[].serial_ops_per_s` are consulted, so old baselines parse fine).
/// Unknown case names are left untouched. Returns `false` when the text is
/// not a report shaped that way.
pub fn attach_baseline(report: &mut BenchReport, baseline_json: &str) -> bool {
    let Ok(v) = serde_json::value_from_str(baseline_json) else {
        return false;
    };
    let Some(serde_json::Value::Array(cases)) = v.get("cases") else {
        return false;
    };
    let mut found = false;
    for old in cases {
        let Some(serde_json::Value::String(name)) = old.get("name") else {
            continue;
        };
        let old_ops = match old.get("serial_ops_per_s") {
            Some(serde_json::Value::Float(f)) => *f,
            Some(serde_json::Value::Int(i)) => *i as f64,
            _ => continue,
        };
        for c in report.cases.iter_mut().filter(|c| c.name == *name) {
            c.baseline_serial_ops_per_s = Some(old_ops);
            c.serial_gain = (old_ops > 0.0).then(|| c.serial_ops_per_s / old_ops);
            found = true;
        }
    }
    found
}

/// Serial gain below which a case counts as a regression against the
/// attached baseline. Warnings print on every run; a non-smoke
/// `repro bench-json` without `--allow-regress` fails on any.
pub const REGRESS_LIMIT_GAIN: f64 = 0.90;

/// The cases whose serial throughput regressed more than
/// [`REGRESS_LIMIT_GAIN`] allows against the attached baseline, as
/// human-readable descriptions (empty when no baseline was attached).
pub fn regressions(report: &BenchReport) -> Vec<String> {
    report
        .cases
        .iter()
        .filter_map(|c| {
            let gain = c.serial_gain?;
            (gain < REGRESS_LIMIT_GAIN).then(|| {
                format!(
                    "{} serial {:.3e} ops/s is {:.2}x its baseline {:.3e}",
                    c.name,
                    c.serial_ops_per_s,
                    gain,
                    c.baseline_serial_ops_per_s.unwrap_or(0.0),
                )
            })
        })
        .collect()
}

/// Console rendering of the report.
pub fn render(r: &BenchReport) -> String {
    let mut t = TextTable::new([
        "case",
        "shape",
        "threads",
        "serial s",
        "parallel s",
        "ops/s (ser)",
        "speedup",
        "vs old serial",
        "bit-identical",
    ]);
    for c in &r.cases {
        t.row([
            c.name.clone(),
            c.shape.clone(),
            c.threads.to_string(),
            format!("{:.4}", c.serial_s),
            format!("{:.4}", c.parallel_s),
            format!("{:.3e}", c.serial_ops_per_s),
            format!("{:.2}x", c.speedup),
            c.serial_gain
                .map_or_else(|| "-".to_string(), |g| format!("{g:.2}x")),
            c.bit_identical.to_string(),
        ]);
    }
    let mut mt = TextTable::new(["design", "phase", "GB/s", "overlap", "verdict"]);
    for p in &r.memory.phases {
        mt.row([
            p.design.clone(),
            p.phase.clone(),
            format!("{:.1}", p.achieved_gbps),
            format!("{:.3}", p.overlap_efficiency),
            if p.memory_bound {
                "memory".to_string()
            } else {
                "compute".to_string()
            },
        ]);
    }
    let mut it = TextTable::new([
        "class",
        "injected",
        "detected",
        "corrected",
        "escaped",
        "masked",
    ]);
    for c in &r.integrity.classes {
        it.row([
            c.class.clone(),
            c.injected.to_string(),
            c.detected.to_string(),
            c.corrected.to_string(),
            c.escaped.to_string(),
            c.masked.to_string(),
        ]);
    }
    let mut ot = TextTable::new(["case", "plain ops/s", "checked ops/s", "overhead"]);
    for o in &r.integrity.overhead {
        ot.row([
            o.case.clone(),
            format!("{:.3e}", o.plain_ops_per_s),
            format!("{:.3e}", o.checked_ops_per_s),
            format!("{:+.1}%", o.overhead_frac * 100.0),
        ]);
    }
    let mut st = TextTable::new(["case", "tier", "ops/s (ser)"]);
    for tt in &r.simd.tiers {
        st.row([
            tt.case.clone(),
            tt.tier.clone(),
            format!("{:.3e}", tt.serial_ops_per_s),
        ]);
    }
    let mut bt = TextTable::new([
        "case",
        "geometry",
        "blocked ops/s",
        "unblocked ops/s",
        "gain",
        "floor",
        "bit-identical",
    ]);
    for g in &r.blocking.gemm {
        bt.row([
            g.case.clone(),
            g.geometry.clone(),
            format!("{:.3e}", g.blocked_ops_per_s),
            format!("{:.3e}", g.unblocked_ops_per_s),
            format!("{:.2}x", g.gain),
            if g.floor_applies { "gated" } else { "fits-LLC" }.to_string(),
            g.bit_identical.to_string(),
        ]);
    }
    let w = &r.weights;
    let cv = &r.blocking.codec;
    format!(
        "Host: {} (features [{}], L1d {} KiB, L2 {} KiB, L3 {} KiB, {})\n\
         Parallel-speedup baselines (schema v{}, {} hardware thread{}, requested {}, budget {}{})\n{}\n\
         Memory co-simulation (roof {:.0} GB/s, byte conservation {})\n{}\n\
         Integrity sweep (seed {}, {} faults, {} escaped, {} false positive{}, corrected bit-identical {})\n{}\n\
         Checksum overhead (serial, limit {:.0}%)\n{}\n\
         Kernel tiers (OWLP_SIMD={}, selected {}, features [{}], cross-tier bit-identical {})\n{}\n\
         Cache blocking (OWLP_BLOCK={}, serial, large shape {})\n{}\n\
         Vector codec ({} elements, tier {}, bit-identical {})\n  \
         encode {:.3e} vs scalar {:.3e} el/s = {:.2}x, decode {:.3e} vs scalar {:.3e} el/s = {:.2}x\n\
         Weight archive ({} tensors, {} B, stream peak {}/{} B within-budget {}, mapped {})\n  \
         cold load: eager {:.4}s vs mmap {:.4}s = {:.1}x, digests verified {}, mapped GEMM bit-identical {}",
        r.host.cpu_model.as_deref().unwrap_or("unknown CPU"),
        r.host.detected_features.join(","),
        r.host.cache.l1d >> 10,
        r.host.cache.l2 >> 10,
        r.host.cache.l3 >> 10,
        if r.host.cache.detected {
            "detected"
        } else {
            "defaulted"
        },
        r.schema,
        r.hardware_threads,
        if r.hardware_threads == 1 { "" } else { "s" },
        r.requested_threads,
        r.thread_budget,
        if r.smoke { ", smoke" } else { "" },
        t.render(),
        r.memory.peak_gbps,
        if r.memory.byte_conservation_ok { "ok" } else { "VIOLATED" },
        mt.render(),
        r.integrity.seed,
        r.integrity.faults_injected,
        r.integrity.escaped_total,
        r.integrity.false_positives,
        if r.integrity.false_positives == 1 { "" } else { "s" },
        r.integrity.corrected_bit_identical,
        it.render(),
        OVERHEAD_LIMIT_FRAC * 100.0,
        ot.render(),
        r.simd.env,
        r.simd.selected_tier,
        r.simd.detected_features.join(","),
        r.simd.tiers_bit_identical,
        st.render(),
        r.blocking.env,
        r.blocking
            .gemm
            .first()
            .map_or("-", |g| g.shape.as_str()),
        bt.render(),
        cv.elements,
        cv.tier,
        cv.bit_identical,
        cv.encode_vector_ops_per_s,
        cv.encode_scalar_ops_per_s,
        cv.encode_gain,
        cv.decode_vector_ops_per_s,
        cv.decode_scalar_ops_per_s,
        cv.decode_gain,
        w.tensors,
        w.archive_bytes,
        w.stream_peak_alloc,
        w.stream_budget,
        w.stream_within_budget,
        w.mapped,
        w.eager_cold_s,
        w.mmap_cold_s,
        w.cold_speedup,
        w.digests_verified,
        w.mapped_gemm_bit_identical
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_bit_identical() {
        let r = owlp_par::with_threads(2, || run(true));
        assert_eq!(r.schema, SCHEMA);
        assert!(r.smoke);
        assert_eq!(r.cases.len(), 8);
        assert_eq!(r.requested_threads, 2);
        for name in ["gemm-exact-large", "gemm-owlp-large"] {
            assert!(
                r.cases.iter().any(|c| c.name == name),
                "large case {name} missing"
            );
        }
        for c in &r.cases {
            assert!(c.bit_identical, "{} diverged across thread counts", c.name);
            assert!(c.serial_s > 0.0 && c.parallel_s > 0.0, "{} timings", c.name);
            assert!(c.speedup > 0.0);
            assert!(c.baseline_serial_ops_per_s.is_none());
        }
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("\"hardware_threads\""));
        assert!(json.contains("\"requested_threads\""));
        assert!(json.contains("\"byte_conservation_ok\""));
        assert!(json.contains("\"escaped_total\""));
        assert!(json.contains("\"overhead_frac\""));
        assert!(json.contains("\"tiers_bit_identical\""));
        assert!(json.contains("\"stream_within_budget\""));
        assert!(json.contains("\"mapped_gemm_bit_identical\""));
        assert!(json.contains("\"cold_speedup\""));
        // The weights gates CI enforces on full runs: streaming encode
        // within budget, digests verified, mapped GEMM bit-identical.
        // (The ≥10x cold-load floor is only gated on full runs — smoke
        // shapes are too small for a stable ratio — but the ratio must
        // at least be well-formed.)
        assert!(r.weights.tensors > 0);
        assert!(r.weights.archive_bytes > 0);
        assert!(
            r.weights.stream_within_budget,
            "streaming encode exceeded its budget"
        );
        assert!(r.weights.digests_verified);
        assert!(
            r.weights.mapped_gemm_bit_identical,
            "a mapped tensor's GEMM diverged from its owned twin"
        );
        assert!(r.weights.cold_speedup.is_finite() && r.weights.cold_speedup > 0.0);
        // The simd section CI gates on: scalar first, every available
        // tier timed on both GEMM paths, all tiers bit-identical.
        assert_eq!(
            r.simd.available_tiers.first().map(String::as_str),
            Some("scalar")
        );
        assert_eq!(r.simd.tiers.len(), 2 * r.simd.available_tiers.len());
        assert_eq!(r.simd.entry_points.len(), 4);
        assert!(
            r.simd.tiers_bit_identical,
            "a kernel tier diverged from the scalar oracle"
        );
        assert!(r.simd.available_tiers.contains(&r.simd.selected_tier));
        // The host section: caches positive, features well-formed (the
        // model string is host-dependent and may be absent).
        assert!(r.host.cache.l1d > 0 && r.host.cache.l2 >= r.host.cache.l1d);
        assert!(json.contains("\"cpu_model\""));
        // The blocking gates CI enforces on every run: both loop orders
        // and both codec tiers bit-identical. The gain floors only bind
        // full runs — smoke shapes fit in cache, so the ratios sit near
        // 1.0 by design — but every ratio must be well-formed.
        assert_eq!(r.blocking.gemm.len(), 2);
        for g in &r.blocking.gemm {
            assert!(
                g.bit_identical,
                "{} blocked-vs-unblocked outputs diverged",
                g.case
            );
            assert!(g.gain.is_finite() && g.gain > 0.0, "{} gain", g.case);
            assert!(g.blocked_ops_per_s > 0.0 && g.unblocked_ops_per_s > 0.0);
            // The 64^3 smoke planes fit any plausible LLC, so the gain
            // floor must never arm on a smoke report.
            assert!(!g.floor_applies, "{} floor armed on a smoke shape", g.case);
        }
        let cv = &r.blocking.codec;
        assert!(cv.bit_identical, "vector codec diverged from scalar");
        assert!(cv.encode_gain.is_finite() && cv.encode_gain > 0.0);
        assert!(cv.decode_gain.is_finite() && cv.decode_gain > 0.0);
        assert!(json.contains("\"encode_gain\""));
        assert!(json.contains("\"blocked_ops_per_s\""));
        assert!(json.contains("\"floor_applies\""));
        // The integrity gates CI enforces: no escapes, no false positives,
        // every correction bit-identical, every wire class exercised.
        assert_eq!(r.integrity.faults_injected, SWEEP_FAULTS_SMOKE);
        assert_eq!(r.integrity.escaped_total, 0);
        assert_eq!(r.integrity.false_positives, 0);
        assert!(r.integrity.corrected_bit_identical);
        assert_eq!(
            r.integrity.detected + r.integrity.masked,
            r.integrity.faults_injected
        );
        assert_eq!(r.integrity.classes.len(), 6);
        for c in &r.integrity.classes {
            assert!(c.injected > 0, "{} never struck", c.class);
            assert_eq!(c.escaped, 0, "{} leaked", c.class);
        }
        assert_eq!(r.integrity.overhead.len(), 2);
        for o in &r.integrity.overhead {
            assert!(o.plain_ops_per_s > 0.0 && o.checked_ops_per_s > 0.0);
            assert!(o.overhead_frac < 1.0);
        }
        // The memory gate and the paper's phase verdicts: OwL-P decode is
        // bandwidth-bound, prefill compute-bound on both designs.
        assert!(r.memory.byte_conservation_ok);
        assert_eq!(r.memory.phases.len(), 4);
        for p in &r.memory.phases {
            match (p.design.as_str(), p.phase.as_str()) {
                ("owlp", "Decode") => assert!(p.memory_bound),
                (_, "Prefill") => assert!(!p.memory_bound, "{} prefill", p.design),
                _ => {}
            }
            assert!(p.achieved_gbps > 0.0 && p.achieved_gbps <= r.memory.peak_gbps + 1e-9);
        }
    }

    #[test]
    fn single_thread_budget_reports_unit_speedup() {
        let r = owlp_par::with_threads(1, || run(true));
        for c in &r.cases {
            assert_eq!(c.serial_s, c.parallel_s, "{}", c.name);
            assert_eq!(c.speedup, 1.0, "{}", c.name);
            assert!(c.bit_identical);
        }
    }

    #[test]
    fn baseline_attachment_computes_gains() {
        let mut r = owlp_par::with_threads(1, || run(true));
        let old = format!(
            "{{\"schema\":1,\"cases\":[{{\"name\":\"gemm-owlp\",\"serial_ops_per_s\":{}}},{{\"name\":\"no-such-case\",\"serial_ops_per_s\":1.0}}]}}",
            r.cases[1].serial_ops_per_s / 2.0
        );
        assert!(attach_baseline(&mut r, &old));
        let c = &r.cases[1];
        assert_eq!(c.name, "gemm-owlp");
        let gain = c.serial_gain.expect("gain filled");
        assert!((gain - 2.0).abs() < 1e-9, "{gain}");
        assert!(r.cases[0].serial_gain.is_none());
        // A 2x gain is no regression; a baseline twice as fast is.
        assert!(regressions(&r).is_empty());
        let fast_old = format!(
            "{{\"schema\":1,\"cases\":[{{\"name\":\"gemm-owlp\",\"serial_ops_per_s\":{}}}]}}",
            r.cases[1].serial_ops_per_s * 2.0
        );
        assert!(attach_baseline(&mut r, &fast_old));
        let regressed = regressions(&r);
        assert_eq!(regressed.len(), 1);
        assert!(regressed[0].contains("gemm-owlp"), "{}", regressed[0]);
        // Garbage input is rejected without touching the report.
        assert!(!attach_baseline(&mut r, "not json"));
        assert!(!attach_baseline(&mut r, "{\"cases\": 3}"));
    }
}
