//! Machine-readable parallel-speedup baselines (`repro bench-json`).
//!
//! Times the four `owlp-par` hot paths — exact/OwL-P GEMM, tensor
//! encode/decode, the event-driven array simulation, and the serving
//! pool — serially (`with_threads(1)`) and at the resolved thread budget,
//! and writes one JSON report (default `BENCH_PR3.json`) that CI archives
//! per commit. Every case also re-checks the determinism contract: the
//! parallel result must be bit-identical to the serial one.
//!
//! Wall-clock numbers are min-of-`REPS` ([`Instant`]), so the report is a
//! *measurement*, not a promise: on a single-hardware-thread host the
//! speedups hover around 1× and `hardware_threads` says why.

use crate::render::TextTable;
use crate::SEED;
use owlp_core::Accelerator;
use owlp_model::{Dataset, ModelId};
use owlp_serve::{
    simulate_pool, ArrivalProcess, CostModel, LengthDistribution, PoolConfig, SchedulerConfig,
    TraceSpec,
};
use owlp_systolic::{event_sim, ArrayConfig};
use serde::Serialize;
use std::time::Instant;

/// Repetitions per timing (the minimum is reported); `--smoke` uses 1.
const REPS: usize = 3;

/// Report schema version (bump on breaking field changes).
pub const SCHEMA: u32 = 1;

/// One timed workload.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchCase {
    /// Hot path exercised (`gemm-exact`, `gemm-owlp`, `encode`, `decode`,
    /// `event-sim`, `serve-pool`).
    pub name: String,
    /// Human-readable workload shape.
    pub shape: String,
    /// Work units per run (scalar products, elements, or requests).
    pub ops: u64,
    /// Threads used for the parallel timing.
    pub threads: usize,
    /// Best serial wall-clock, seconds (`OWLP_THREADS=1`).
    pub serial_s: f64,
    /// Best parallel wall-clock, seconds.
    pub parallel_s: f64,
    /// `ops / serial_s`.
    pub serial_ops_per_s: f64,
    /// `ops / parallel_s`.
    pub parallel_ops_per_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether the parallel result matched the serial result bit-for-bit.
    pub bit_identical: bool,
}

/// The full baseline report.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct BenchReport {
    /// Report schema version.
    pub schema: u32,
    /// Hardware threads the host advertises
    /// ([`std::thread::available_parallelism`]) — speedups are bounded by
    /// this, whatever `OWLP_THREADS` asks for.
    pub hardware_threads: usize,
    /// Resolved `owlp-par` thread budget for the parallel timings.
    pub thread_budget: usize,
    /// Whether this was a `--smoke` run (small shapes, single repetition).
    pub smoke: bool,
    /// One entry per hot path.
    pub cases: Vec<BenchCase>,
}

/// Times `f` `reps` times and returns (best seconds, last result).
fn min_time<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        out = Some(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out.expect("at least one repetition"))
}

/// Times one workload serially and at `threads`, checking bit-identity
/// through `fingerprint` (any `Eq` digest of the result).
fn case<R, D: PartialEq>(
    name: &str,
    shape: String,
    ops: u64,
    reps: usize,
    threads: usize,
    mut run: impl FnMut() -> R,
    fingerprint: impl Fn(&R) -> D,
) -> BenchCase {
    let (serial_s, serial) = owlp_par::with_threads(1, || min_time(reps, &mut run));
    let (parallel_s, parallel) = owlp_par::with_threads(threads, || min_time(reps, &mut run));
    BenchCase {
        name: name.to_string(),
        shape,
        ops,
        threads,
        serial_s,
        parallel_s,
        serial_ops_per_s: ops as f64 / serial_s,
        parallel_ops_per_s: ops as f64 / parallel_s,
        speedup: serial_s / parallel_s,
        bit_identical: fingerprint(&serial) == fingerprint(&parallel),
    }
}

/// Deterministic BF16 test tensor with a sprinkling of outliers.
fn tensor(len: usize, salt: u64) -> Vec<owlp_format::Bf16> {
    let mut state = SEED ^ salt;
    (0..len)
        .map(|_| {
            // xorshift64* — cheap, seeded, and dependency-free.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let small = ((state >> 32) as i32 % 1000) as f32 * 1e-3;
            let v = if state.is_multiple_of(61) {
                small * 1e20
            } else {
                small
            };
            owlp_format::Bf16::from_f32(v)
        })
        .collect()
}

/// Runs the suite. `smoke` shrinks shapes and repetitions so CI can afford
/// it on every push.
pub fn run(smoke: bool) -> BenchReport {
    let reps = if smoke { 1 } else { REPS };
    let threads = owlp_par::thread_budget();
    let mut cases = Vec::new();

    // 1. Exact (Kulisch) GEMM — the golden reference everything is
    //    checked against.
    let (m, k, n) = if smoke { (48, 48, 48) } else { (160, 160, 160) };
    let (a, b) = (tensor(m * k, 1), tensor(k * n, 2));
    cases.push(case(
        "gemm-exact",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || owlp_arith::exact_gemm(&a, &b, m, k, n),
        |r| r.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    ));

    // 2. OwL-P datapath GEMM (encode + decode + PE columns).
    let (m, k, n) = if smoke { (24, 48, 48) } else { (64, 128, 128) };
    let (a, b) = (tensor(m * k, 3), tensor(k * n, 4));
    cases.push(case(
        "gemm-owlp",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || owlp_arith::owlp_gemm(&a, &b, m, k, n).expect("finite inputs"),
        |r| r.output.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    ));

    // 3/4. Tensor encode and decode throughput.
    let len = if smoke { 1 << 14 } else { 1 << 20 };
    let t = tensor(len, 5);
    cases.push(case(
        "encode",
        format!("{len} elements"),
        len as u64,
        reps,
        threads,
        || owlp_format::encode_tensor(&t, None).expect("finite inputs"),
        |e| (e.codes().to_vec(), e.outlier_count()),
    ));
    let enc = owlp_format::encode_tensor(&t, None).expect("finite inputs");
    let mut buf = Vec::new();
    cases.push(case(
        "decode",
        format!("{len} elements"),
        len as u64,
        reps,
        threads,
        || {
            enc.decode_into(&mut buf);
            buf.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        },
        |bits| bits.clone(),
    ));

    // 5. Event-driven array simulation (column-shard parallel).
    let (m, k, n) = if smoke { (16, 32, 32) } else { (48, 64, 64) };
    let (a, b) = (tensor(m * k, 6), tensor(k * n, 7));
    let cfg = ArrayConfig::OWLP_PAPER;
    cases.push(case(
        "event-sim",
        format!("{m}x{k}x{n}"),
        2 * (m * k * n) as u64,
        reps,
        threads,
        || event_sim::simulate_gemm(&cfg, &a, &b, m, k, n).expect("finite inputs"),
        |r| r.clone(),
    ));

    // 6. Serving pool (one shard per worker).
    let requests = if smoke { 48 } else { 192 };
    let trace = TraceSpec {
        arrivals: ArrivalProcess::Poisson { rate_rps: 400.0 },
        prompt: LengthDistribution::Uniform { lo: 32, hi: 96 },
        gen: LengthDistribution::Uniform { lo: 8, hi: 32 },
        requests,
        seed: SEED,
    }
    .generate();
    let cost = CostModel::new(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2);
    let pool = PoolConfig {
        workers: 4,
        scheduler: SchedulerConfig {
            max_batch: 16,
            queue_capacity: 32,
        },
    };
    // Warm the memoised shape tables so neither timing pays them.
    let _ = simulate_pool(&cost, &pool, &trace);
    cases.push(case(
        "serve-pool",
        format!("{requests} requests, {} workers", pool.workers),
        requests as u64,
        reps,
        threads,
        || simulate_pool(&cost, &pool, &trace).expect("pool simulation runs"),
        |r| r.clone(),
    ));

    BenchReport {
        schema: SCHEMA,
        hardware_threads: std::thread::available_parallelism().map_or(1, |p| p.get()),
        thread_budget: threads,
        smoke,
        cases,
    }
}

/// Console rendering of the report.
pub fn render(r: &BenchReport) -> String {
    let mut t = TextTable::new([
        "case",
        "shape",
        "threads",
        "serial s",
        "parallel s",
        "ops/s (par)",
        "speedup",
        "bit-identical",
    ]);
    for c in &r.cases {
        t.row([
            c.name.clone(),
            c.shape.clone(),
            c.threads.to_string(),
            format!("{:.4}", c.serial_s),
            format!("{:.4}", c.parallel_s),
            format!("{:.3e}", c.parallel_ops_per_s),
            format!("{:.2}x", c.speedup),
            c.bit_identical.to_string(),
        ]);
    }
    format!(
        "Parallel-speedup baselines (schema v{}, {} hardware thread{}, budget {}{})\n{}",
        r.schema,
        r.hardware_threads,
        if r.hardware_threads == 1 { "" } else { "s" },
        r.thread_budget,
        if r.smoke { ", smoke" } else { "" },
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_complete_and_bit_identical() {
        let r = owlp_par::with_threads(2, || run(true));
        assert_eq!(r.schema, SCHEMA);
        assert!(r.smoke);
        assert_eq!(r.cases.len(), 6);
        for c in &r.cases {
            assert!(c.bit_identical, "{} diverged across thread counts", c.name);
            assert!(c.serial_s > 0.0 && c.parallel_s > 0.0, "{} timings", c.name);
            assert!(c.speedup > 0.0);
        }
        let json = serde_json::to_string(&r).expect("serializes");
        assert!(json.contains("\"hardware_threads\""));
    }
}
