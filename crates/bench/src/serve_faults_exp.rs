//! Serving-under-faults sweep (supporting analysis).
//!
//! Drives `owlp-serve` through escalating seeded fault plans — from a
//! healthy pool to a meltdown with crashed workers, stalls, transient
//! iteration failures, and silent data corruptions — and reports what the
//! recovery machinery (failover, bounded retry with backoff, degraded
//! admission, and the `owlp-integrity` detection ladder of side-band
//! parity, plane CRC, and ABFT checksums) salvages on the baseline FP32
//! array versus OwL-P. The headline column is *clean goodput*: completions
//! per second whose responses carry no undetected corruption — with the
//! full integrity configuration every SDC is caught and corrected, so
//! `corrupt` stays zero even at meltdown. Every number is a pure function
//! of `(trace seed, fault seed, config)` and replays bit-for-bit.

use crate::render::TextTable;
use crate::SEED;
use owlp_core::Accelerator;
use owlp_model::{Dataset, ModelId};
use owlp_serve::{
    serve_trace_faulty, ArrivalProcess, FaultPoolConfig, FaultSpec, LengthDistribution,
    MetricsReport, PoolConfig, RecoveryPolicy, Request, SchedulerConfig, TraceSpec,
};
use serde::Serialize;

/// Requests per trace.
const REQUESTS: usize = 192;

/// Nominal Poisson arrival rate, requests per second.
const RATE_RPS: f64 = 400.0;

/// One escalation step of the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct FaultLevel {
    /// Level name.
    pub name: &'static str,
    /// Per-worker crash probability, permille.
    pub crash_permille: u32,
    /// Per-worker stall probability, permille.
    pub stall_permille: u32,
    /// Per-iteration transient-failure probability, permille.
    pub iter_fail_permille: u32,
    /// Per-iteration SDC probability, permille.
    pub sdc_permille: u32,
}

/// The escalation ladder, mild to catastrophic.
pub const LEVELS: [FaultLevel; 5] = [
    FaultLevel {
        name: "none",
        crash_permille: 0,
        stall_permille: 0,
        iter_fail_permille: 0,
        sdc_permille: 0,
    },
    FaultLevel {
        name: "sdc",
        crash_permille: 0,
        stall_permille: 0,
        iter_fail_permille: 0,
        sdc_permille: 40,
    },
    FaultLevel {
        name: "flaky",
        crash_permille: 0,
        stall_permille: 500,
        iter_fail_permille: 25,
        sdc_permille: 0,
    },
    FaultLevel {
        name: "crash",
        crash_permille: 400,
        stall_permille: 250,
        iter_fail_permille: 10,
        sdc_permille: 0,
    },
    FaultLevel {
        name: "meltdown",
        crash_permille: 600,
        stall_permille: 500,
        iter_fail_permille: 50,
        sdc_permille: 80,
    },
];

/// Both designs' reports at one fault level.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultPoint {
    /// The escalation step.
    pub level: FaultLevel,
    /// Baseline FP32 systolic array.
    pub baseline: MetricsReport,
    /// OwL-P array.
    pub owlp: MetricsReport,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSweep {
    /// One entry per fault level, escalating.
    pub points: Vec<FaultPoint>,
}

fn pool() -> PoolConfig {
    PoolConfig {
        workers: 4,
        scheduler: SchedulerConfig {
            max_batch: 16,
            queue_capacity: 32,
        },
    }
}

fn trace() -> Vec<Request> {
    TraceSpec {
        arrivals: ArrivalProcess::Poisson { rate_rps: RATE_RPS },
        prompt: LengthDistribution::Uniform { lo: 32, hi: 96 },
        gen: LengthDistribution::Uniform { lo: 8, hi: 32 },
        requests: REQUESTS,
        seed: SEED,
    }
    .generate()
}

fn config_for(level: &FaultLevel, horizon_s: f64) -> FaultPoolConfig {
    let pool = pool();
    let spec = FaultSpec {
        seed: SEED ^ 0xFA_17,
        horizon_s,
        crash_permille: level.crash_permille,
        stall_permille: level.stall_permille,
        stall_len_s: horizon_s * 0.25,
        stall_slowdown: 3.0,
        iter_fail_permille: level.iter_fail_permille,
        sdc_permille: level.sdc_permille,
    };
    FaultPoolConfig {
        plan: spec.plan(pool.workers),
        recovery: RecoveryPolicy {
            deadline_s: Some(2.0),
            ..RecoveryPolicy::default()
        },
        failover_delay_s: 0.05,
        pool,
    }
}

/// Runs the sweep on a 4-worker pool (GPT2-Base, WikiText-2 outlier rates).
pub fn run() -> FaultSweep {
    let trace = trace();
    let horizon = trace.last().map(|r| r.arrival_s).unwrap_or(1.0);
    let points = LEVELS
        .iter()
        .map(|level| {
            let cfg = config_for(level, horizon);
            let serve = |acc: Accelerator| {
                serve_trace_faulty(acc, ModelId::Gpt2Base, Dataset::WikiText2, &cfg, &trace)
                    .expect("sweep fault config is valid")
            };
            FaultPoint {
                level: *level,
                baseline: serve(Accelerator::baseline()),
                owlp: serve(Accelerator::owlp()),
            }
        })
        .collect();
    FaultSweep { points }
}

/// Renders the sweep as a text table.
pub fn render(sweep: &FaultSweep) -> String {
    let mut t = TextTable::new([
        "level",
        "design",
        "avail",
        "goodput",
        "clean goodput",
        "retry",
        "evict",
        "shed",
        "ddl miss%",
        "SDC hit/det/corr",
        "escape",
        "tile rc",
        "corrupt",
    ]);
    for p in &sweep.points {
        for r in [&p.baseline, &p.owlp] {
            t.row([
                p.level.name.to_string(),
                r.summary.design.clone(),
                format!("{:.3}", r.availability),
                format!("{:.1}", r.summary.goodput_rps),
                format!("{:.1}", r.goodput_under_faults_rps),
                format!("{}", r.retries),
                format!("{}", r.evictions),
                format!("{}", r.shed),
                format!("{:.1}", r.deadline_miss_rate * 100.0),
                format!("{}/{}/{}", r.sdc_events, r.sdc_detected, r.sdc_corrected),
                format!("{}", r.sdc_escaped),
                format!("{}", r.tile_recomputes),
                format!("{}", r.corrupted_responses),
            ]);
        }
    }
    format!(
        "Serving under faults — GPT2-Base, 4-worker pool, batch 16, queue 32\n\
         (deadline 2 s, retry budget 3, full integrity: side-band parity +\n\
         plane CRC32C + ABFT checksums, localized tile recompute;\n\
         {REQUESTS} Poisson requests at {RATE_RPS:.0} req/s, seed {SEED:#x})\n{}",
        t.render()
    )
}

/// CI gate: with the full integrity configuration no SDC may escape into
/// a delivered response, the outcome partition must balance, and every
/// fault-free level must report zero detector activity (no false
/// positives). Returns the violations, empty on a clean sweep.
pub fn gate(sweep: &FaultSweep) -> Vec<String> {
    let mut violations = Vec::new();
    for p in &sweep.points {
        for r in [&p.baseline, &p.owlp] {
            let who = format!("{}/{}", p.level.name, r.summary.design);
            if r.sdc_escaped > 0 || r.corrupted_responses > 0 {
                violations.push(format!(
                    "{who}: {} escaped SDCs corrupted {} responses under full integrity",
                    r.sdc_escaped, r.corrupted_responses
                ));
            }
            if r.sdc_detected + r.sdc_masked + r.sdc_escaped != r.sdc_events {
                violations.push(format!(
                    "{who}: SDC partition does not balance ({} + {} + {} != {})",
                    r.sdc_detected, r.sdc_masked, r.sdc_escaped, r.sdc_events
                ));
            }
            if p.level.sdc_permille == 0 && (r.sdc_events > 0 || r.sdc_detected > 0) {
                violations.push(format!("{who}: detector activity on a fault-free level"));
            }
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        assert_eq!(run(), run());
    }

    #[test]
    fn every_level_accounts_for_every_request() {
        let sweep = run();
        assert_eq!(sweep.points.len(), LEVELS.len());
        for p in &sweep.points {
            for r in [&p.baseline, &p.owlp] {
                assert_eq!(
                    r.summary.requests, REQUESTS,
                    "{}/{} lost requests",
                    p.level.name, r.summary.design
                );
            }
        }
    }

    #[test]
    fn healthy_level_is_clean_and_escalation_hurts() {
        let sweep = run();
        let none = &sweep.points[0];
        for r in [&none.baseline, &none.owlp] {
            assert_eq!(r.availability, 1.0);
            assert_eq!(r.corrupted_responses, 0);
            assert_eq!(r.retries + r.evictions + r.sdc_events, 0);
            assert_eq!(r.goodput_under_faults_rps, r.summary.goodput_rps);
        }
        // OwL-P's per-GEMM speedup survives the roll-up.
        assert!(none.owlp.summary.goodput_rps > none.baseline.summary.goodput_rps);
        // SDC level injects; the full integrity ladder catches and
        // corrects every strike, so no response is ever corrupted.
        let sdc = &sweep.points[1];
        for r in [&sdc.baseline, &sdc.owlp] {
            assert!(r.sdc_events > 0);
            assert_eq!(r.sdc_detected + r.sdc_masked + r.sdc_escaped, r.sdc_events);
            assert_eq!(r.sdc_escaped, 0);
            assert_eq!(r.corrupted_responses, 0);
            assert!(r.sdc_corrected > 0);
            assert!(r.tile_recomputes > 0);
        }
        assert!(gate(&sweep).is_empty(), "{:?}", gate(&sweep));
        // Crash level actually kills workers and degrades availability.
        let crash = &sweep.points[3];
        assert!(crash.owlp.crashed_workers > 0);
        assert!(crash.owlp.availability < 1.0);
        // The meltdown exercises the retry path.
        let melt = &sweep.points[4];
        assert!(melt.owlp.retries > 0 || melt.owlp.evictions > 0);
    }
}
