//! Table II — ratio of normal values in transformer-based networks.
//!
//! For each of the six models, tensors are synthesised from the calibrated
//! profiles and the fraction of values inside the densest 7-exponent window
//! is measured with the real format pipeline (`owlp-format::stats`).

use crate::render::{pct, TextTable};
use owlp_format::stats::normal_ratio_of;
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use serde::{Deserialize, Serialize};

/// Paper's published Table II values (percent), for side-by-side printing.
pub const PAPER_WEIGHT: [(ModelId, f64); 6] = [
    (ModelId::BertBase, 98.5),
    (ModelId::BertLarge, 98.6),
    (ModelId::Gpt2Base, 98.2),
    (ModelId::Gpt2Large, 98.4),
    (ModelId::Llama2_7b, 98.4),
    (ModelId::Llama2_70b, 98.6),
];

/// Paper Table II activation row.
pub const PAPER_ACTIVATION: [(ModelId, f64); 6] = [
    (ModelId::BertBase, 96.6),
    (ModelId::BertLarge, 97.9),
    (ModelId::Gpt2Base, 96.8),
    (ModelId::Gpt2Large, 97.3),
    (ModelId::Llama2_7b, 97.6),
    (ModelId::Llama2_70b, 97.8),
];

/// One Table II column.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelRatios {
    /// Model.
    pub model: ModelId,
    /// Measured weight normal ratio (fraction).
    pub weight: f64,
    /// Measured activation normal ratio (fraction).
    pub activation: f64,
}

/// The full Table II result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table2 {
    /// Per-model measurements.
    pub rows: Vec<ModelRatios>,
}

/// Runs the Table II experiment.
pub fn run(seed: u64) -> Table2 {
    let kinds = [
        OpKind::QkvProj,
        OpKind::OutProj,
        OpKind::FfnUp,
        OpKind::FfnDown,
    ];
    let rows = ModelId::ALL
        .iter()
        .map(|&model| {
            let dataset = match model {
                ModelId::BertBase | ModelId::BertLarge => Dataset::Squad2,
                _ => Dataset::WikiText2,
            };
            let dims = model.config();
            let k = dims.hidden.min(2048);
            let mean_ratio = |role: TensorRole| -> f64 {
                let mut sum = 0.0;
                for (i, &kind) in kinds.iter().enumerate() {
                    let p = profile_for(model, kind, role, dataset);
                    let (rows_n, cols_n) = match role {
                        TensorRole::Weight => (k, 256),
                        TensorRole::Activation => (256, k),
                    };
                    let t = TensorGen::new(p, rows_n, cols_n).values(seed + i as u64);
                    let (_, ratio) = normal_ratio_of(&t);
                    sum += ratio;
                }
                sum / kinds.len() as f64
            };
            ModelRatios {
                model,
                weight: mean_ratio(TensorRole::Weight),
                activation: mean_ratio(TensorRole::Activation),
            }
        })
        .collect();
    Table2 { rows }
}

/// Renders the result with the paper's values alongside.
pub fn render(t: &Table2) -> String {
    let mut table = TextTable::new(["", "Weight %", "(paper)", "Activation %", "(paper)"]);
    for r in &t.rows {
        let pw = PAPER_WEIGHT.iter().find(|(m, _)| *m == r.model).unwrap().1;
        let pa = PAPER_ACTIVATION
            .iter()
            .find(|(m, _)| *m == r.model)
            .unwrap()
            .1;
        table.row([
            r.model.name().to_string(),
            pct(r.weight),
            format!("{pw:.1}"),
            pct(r.activation),
            format!("{pa:.1}"),
        ]);
    }
    format!(
        "Table II — ratio of normal values (measured vs paper)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_ratios_track_paper_within_one_point() {
        let t = run(crate::SEED);
        for r in &t.rows {
            let pw = PAPER_WEIGHT.iter().find(|(m, _)| *m == r.model).unwrap().1 / 100.0;
            let pa = PAPER_ACTIVATION
                .iter()
                .find(|(m, _)| *m == r.model)
                .unwrap()
                .1
                / 100.0;
            assert!(
                (r.weight - pw).abs() < 0.012,
                "{}: weight {} vs {}",
                r.model,
                r.weight,
                pw
            );
            assert!(
                (r.activation - pa).abs() < 0.02,
                "{}: act {} vs {}",
                r.model,
                r.activation,
                pa
            );
        }
    }

    #[test]
    fn weights_are_more_normal_than_activations() {
        // The paper's consistent pattern.
        let t = run(crate::SEED);
        for r in &t.rows {
            assert!(r.weight > r.activation, "{}", r.model);
        }
    }

    #[test]
    fn render_has_all_models() {
        let s = render(&run(crate::SEED));
        for m in ModelId::ALL {
            assert!(s.contains(m.name()));
        }
    }
}
