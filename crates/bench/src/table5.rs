//! Table V — design comparison between the TPU-like baseline and OwL-P.

use crate::render::TextTable;
use owlp_hw::{DesignPoint, DesignSummary};
use serde::{Deserialize, Serialize};

/// Paper anchors for side-by-side printing.
pub const PAPER_BASELINE: (f64, usize, f64) = (13.04, 16_384, 49.46); // W, MACs, mm²
/// Paper anchors for OwL-P.
pub const PAPER_OWLP: (f64, usize, f64) = (8.93, 49_152, 49.52);

/// The Table V result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table5 {
    /// Baseline row.
    pub baseline: DesignSummary,
    /// OwL-P row.
    pub owlp: DesignSummary,
}

/// Runs the Table V roll-up.
pub fn run() -> Table5 {
    Table5 {
        baseline: DesignPoint::baseline_paper().summary(),
        owlp: DesignPoint::owlp_paper().summary(),
    }
}

/// Renders the comparison with paper anchors.
pub fn render(t: &Table5) -> String {
    let mut table = TextTable::new([
        "Parameter",
        "TPU-like Systolic Engine",
        "(paper)",
        "OwL-P",
        "(paper)",
    ]);
    table.row([
        "Data type".to_string(),
        "BF16 Mult, FP32 Add".to_string(),
        String::new(),
        "INT MAC (4 outliers/PE)".to_string(),
        String::new(),
    ]);
    table.row([
        "PE pipeline".to_string(),
        format!("{}-stage", t.baseline.pipeline_stages),
        "4-stage".to_string(),
        format!("{}-stage", t.owlp.pipeline_stages),
        "2-stage".to_string(),
    ]);
    table.row([
        "Memory".to_string(),
        format!("{:.0} MB", t.baseline.memory_mb),
        "12MB".to_string(),
        format!("{:.0} MB", t.owlp.memory_mb),
        "12MB".to_string(),
    ]);
    table.row([
        "Power (W)".to_string(),
        format!("{:.2}", t.baseline.power_w),
        format!("{:.2}", PAPER_BASELINE.0),
        format!("{:.2}", t.owlp.power_w),
        format!("{:.2}", PAPER_OWLP.0),
    ]);
    table.row([
        "MACs".to_string(),
        t.baseline.macs.to_string(),
        PAPER_BASELINE.1.to_string(),
        t.owlp.macs.to_string(),
        PAPER_OWLP.1.to_string(),
    ]);
    table.row([
        "Area (mm², compute)".to_string(),
        format!("{:.2}", t.baseline.total_area_mm2),
        format!("{:.2}", PAPER_BASELINE.2),
        format!("{:.2}", t.owlp.total_area_mm2),
        format!("{:.2}", PAPER_OWLP.2),
    ]);
    table.row([
        "MAC array share (%)".to_string(),
        format!("{:.1}", t.baseline.mac_array_pct),
        "73.1".to_string(),
        format!("{:.1}", t.owlp.mac_array_pct),
        "73.3".to_string(),
    ]);
    format!(
        "Table V — design comparison, modelled (paper)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_counts_match_paper_exactly() {
        let t = run();
        assert_eq!(t.baseline.macs, PAPER_BASELINE.1);
        assert_eq!(t.owlp.macs, PAPER_OWLP.1);
    }

    #[test]
    fn power_and_area_near_anchors() {
        let t = run();
        assert!((t.baseline.power_w - PAPER_BASELINE.0).abs() / PAPER_BASELINE.0 < 0.25);
        assert!((t.owlp.power_w - PAPER_OWLP.0).abs() / PAPER_OWLP.0 < 0.25);
        // Areas near-equal between designs (the headline structural claim).
        let ratio = t.owlp.total_area_mm2 / t.baseline.total_area_mm2;
        assert!((0.9..=1.1).contains(&ratio), "{ratio}");
    }

    #[test]
    fn render_mentions_both_designs() {
        let s = render(&run());
        assert!(s.contains("OwL-P"));
        assert!(s.contains("TPU-like"));
    }
}
