//! Fig. 8 — `r_a` and `r_w` across models (a, b) and submodule tensors
//! (c, d), measured through the real scheduler on synthesised masks with
//! two outlier paths (the paper's measurement setup).

use crate::render::{rval, TextTable};
use crate::{measured_ra, measured_rw};
use owlp_model::{Dataset, ModelId, OpKind};
use serde::{Deserialize, Serialize};

/// Tensor kinds profiled in Fig. 8c/d.
pub const SUBMODULE_KINDS: [OpKind; 5] = [
    OpKind::QkvProj,
    OpKind::AttnScore,
    OpKind::AttnContext,
    OpKind::OutProj,
    OpKind::FfnUp,
];

/// Per-model aggregate overheads (Fig. 8a/b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelOverheads {
    /// Model.
    pub model: ModelId,
    /// Measured `r_a` averaged over submodule activations.
    pub r_a: f64,
    /// Measured `r_w` averaged over submodule weights.
    pub r_w: f64,
}

/// Per-submodule overheads for one model (Fig. 8c/d).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubmoduleOverheads {
    /// Model profiled (the paper uses GPT2-Base-like curves).
    pub model: ModelId,
    /// `(kind, r_a)` pairs.
    pub r_a: Vec<(OpKind, f64)>,
    /// `(kind, r_w)` pairs.
    pub r_w: Vec<(OpKind, f64)>,
}

/// The full Fig. 8 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig8 {
    /// Panel (a)/(b): per-model aggregates.
    pub models: Vec<ModelOverheads>,
    /// Panel (c)/(d): per-submodule detail.
    pub submodules: SubmoduleOverheads,
}

fn dataset_for(model: ModelId) -> Dataset {
    match model {
        ModelId::BertBase | ModelId::BertLarge => Dataset::Squad2,
        _ => Dataset::WikiText2,
    }
}

/// Runs the Fig. 8 experiment with `paths` outlier paths (2 in the paper).
pub fn run(seed: u64, paths: usize) -> Fig8 {
    let models = ModelId::ALL
        .iter()
        .map(|&model| {
            let k = model.config().hidden.min(2048);
            let dataset = dataset_for(model);
            let mut ra_sum = 0.0;
            let mut rw_sum = 0.0;
            for (i, &kind) in SUBMODULE_KINDS.iter().enumerate() {
                ra_sum += measured_ra(model, kind, dataset, 256, k, paths, seed + i as u64);
                rw_sum += measured_rw(model, kind, k, 256, paths, seed + 40 + i as u64);
            }
            ModelOverheads {
                model,
                r_a: ra_sum / SUBMODULE_KINDS.len() as f64,
                r_w: rw_sum / SUBMODULE_KINDS.len() as f64,
            }
        })
        .collect();
    let sub_model = ModelId::Gpt2Base;
    let k = sub_model.config().hidden;
    let submodules = SubmoduleOverheads {
        model: sub_model,
        r_a: SUBMODULE_KINDS
            .iter()
            .map(|&kind| {
                (
                    kind,
                    measured_ra(
                        sub_model,
                        kind,
                        Dataset::WikiText2,
                        256,
                        k,
                        paths,
                        seed + 80,
                    ),
                )
            })
            .collect(),
        r_w: SUBMODULE_KINDS
            .iter()
            .map(|&kind| {
                (
                    kind,
                    measured_rw(sub_model, kind, k, 256, paths, seed + 120),
                )
            })
            .collect(),
    };
    Fig8 { models, submodules }
}

/// Renders all four panels.
pub fn render(f: &Fig8) -> String {
    let mut a = TextTable::new(["model", "r_a", "r_w", "paper band"]);
    for m in &f.models {
        a.row([
            m.model.name().to_string(),
            rval(m.r_a),
            rval(m.r_w),
            "r_a 1.1-1.3, r_w <= 1.1".to_string(),
        ]);
    }
    let mut c = TextTable::new(["submodule tensor", "r_a", "r_w"]);
    for ((kind, ra), (_, rw)) in f.submodules.r_a.iter().zip(&f.submodules.r_w) {
        c.row([kind.to_string(), rval(*ra), rval(*rw)]);
    }
    format!(
        "Fig. 8(a,b) — scheduling overheads per model (2 outlier paths)\n{}\nFig. 8(c,d) — per-submodule tensors, {}\n{}",
        a.render(),
        f.submodules.model.name(),
        c.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_overheads_land_in_paper_bands() {
        let f = run(crate::SEED, 2);
        for m in &f.models {
            assert!((1.05..=1.35).contains(&m.r_a), "{}: r_a {}", m.model, m.r_a);
            assert!((1.0..=1.11).contains(&m.r_w), "{}: r_w {}", m.model, m.r_w);
        }
    }

    #[test]
    fn softmax_fed_tensor_has_highest_ra() {
        // Fig. 8c: attention-context activations (softmax outputs) lead.
        let f = run(crate::SEED, 2);
        let get = |k: OpKind| f.submodules.r_a.iter().find(|(kk, _)| *kk == k).unwrap().1;
        assert!(get(OpKind::AttnContext) > get(OpKind::QkvProj));
        assert!(get(OpKind::AttnContext) > get(OpKind::FfnUp));
    }

    #[test]
    fn render_contains_panels() {
        let s = render(&run(crate::SEED, 2));
        assert!(s.contains("Fig. 8(a,b)"));
        assert!(s.contains("attn_context"));
    }
}
