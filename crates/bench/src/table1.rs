//! Table I — numerical accuracy of computation results by method.
//!
//! The paper's Table I is qualitative; this experiment quantifies it:
//! random LLM-statistics GEMMs are evaluated under each scheme and compared
//! against the exact (Kulisch) reference. OwL-P must be bit-exact
//! (correctly rounded) on every output; the others approximate.

use crate::render::TextTable;
use owlp_arith::exact::{exact_gemm, exact_gemm_f64};
use owlp_arith::fpmac::fp_mac_gemm;
use owlp_arith::gemm::owlp_gemm;
use owlp_arith::quant::{
    blockfp_gemm, int8_gemm, int8_outlier_gemm, weight_only_int8_gemm, ErrorStats,
};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use serde::Serialize;

/// One scheme's measured accuracy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SchemeRow {
    /// Scheme name (Table I rows).
    pub scheme: String,
    /// The paper's qualitative judgement, for side-by-side printing.
    pub paper_says: &'static str,
    /// Measured error statistics vs the exact reference.
    pub stats: ErrorStats,
}

/// The full Table I experiment result.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Table1 {
    /// GEMM shape used.
    pub shape: (usize, usize, usize),
    /// Rows in the paper's order.
    pub rows: Vec<SchemeRow>,
}

/// Runs the Table I experiment.
pub fn run(seed: u64) -> Table1 {
    let (m, k, n) = (32, 256, 32);
    let model = ModelId::Gpt2Base;
    let a = TensorGen::new(
        profile_for(
            model,
            OpKind::FfnUp,
            TensorRole::Activation,
            Dataset::WikiText2,
        ),
        m,
        k,
    )
    .values(seed);
    let b = TensorGen::new(
        profile_for(model, OpKind::FfnUp, TensorRole::Weight, Dataset::WikiText2),
        k,
        n,
    )
    .values(seed ^ 0x77);
    let reference = exact_gemm_f64(&a, &b, m, k, n);
    let mut rows = Vec::new();
    let mut push = |scheme: &str, paper: &'static str, out: Vec<f32>| {
        rows.push(SchemeRow {
            scheme: scheme.to_string(),
            paper_says: paper,
            stats: ErrorStats::compare(&out, &reference),
        });
    };
    push(
        "FP (BF16 mult, FP32 seq-acc)",
        "FP",
        fp_mac_gemm(&a, &b, m, k, n),
    );
    push(
        "INT8 quantization",
        "heavy approximation",
        int8_gemm(&a, &b, m, k, n),
    );
    push(
        "Weight-only INT8 (FP-INT)",
        "dequant + FP fallback",
        weight_only_int8_gemm(&a, &b, m, k, n),
    );
    push(
        "INT8 + FP outliers",
        "heavy approx for normals",
        int8_outlier_gemm(&a, &b, m, k, n, 3.0),
    );
    push(
        "Block FP (32-block, 8-bit)",
        "light approximation",
        blockfp_gemm(&a, &b, m, k, n, 32, 8),
    );
    push(
        "OwL-P (ours)",
        "same as FP",
        owlp_gemm(&a, &b, m, k, n)
            .expect("profile tensors are finite")
            .output,
    );
    // Sanity anchor: OwL-P must equal the correctly rounded f32 reference.
    let golden32 = exact_gemm(&a, &b, m, k, n);
    let owlp_out = rows.last().unwrap();
    debug_assert_eq!(owlp_out.stats.bit_exact, golden32.len());
    Table1 {
        shape: (m, k, n),
        rows,
    }
}

/// Renders the result.
pub fn render(t: &Table1) -> String {
    let mut table = TextTable::new([
        "Data format / arithmetic",
        "mean rel err",
        "max rel err",
        "bit-exact",
        "paper says",
    ]);
    for r in &t.rows {
        table.row([
            r.scheme.clone(),
            format!("{:.3e}", r.stats.mean_rel),
            format!("{:.3e}", r.stats.max_rel),
            format!("{}/{}", r.stats.bit_exact, r.stats.total),
            r.paper_says.to_string(),
        ]);
    }
    format!(
        "Table I — numerical accuracy vs exact FP-FP GEMM ({}x{}x{} synthetic LLM tensors)\n{}",
        t.shape.0,
        t.shape.1,
        t.shape.2,
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_is_bit_exact_and_others_are_not() {
        let t = run(crate::SEED);
        let owlp = t
            .rows
            .iter()
            .find(|r| r.scheme.starts_with("OwL-P"))
            .unwrap();
        assert_eq!(owlp.stats.bit_exact, owlp.stats.total);
        let int8 = t
            .rows
            .iter()
            .find(|r| r.scheme == "INT8 quantization")
            .unwrap();
        assert!(int8.stats.mean_rel > owlp.stats.mean_rel);
        assert!(int8.stats.bit_exact < int8.stats.total);
    }

    #[test]
    fn ordering_matches_table1_qualitative_ranking() {
        // heavy (int8) > light (block fp) > owlp (= 0 vs f32 grid).
        let t = run(crate::SEED + 1);
        let err = |name: &str| {
            t.rows
                .iter()
                .find(|r| r.scheme.starts_with(name))
                .unwrap()
                .stats
                .mean_rel
        };
        assert!(err("INT8 quantization") > err("Block FP"));
        assert!(err("Block FP") > err("OwL-P"));
    }

    #[test]
    fn render_contains_all_rows() {
        let t = run(crate::SEED);
        let s = render(&t);
        for r in &t.rows {
            assert!(s.contains(&r.scheme), "{}", r.scheme);
        }
    }
}
