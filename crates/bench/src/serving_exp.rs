//! Serving metrics — tokens/s, time-per-output-token and time-to-first-
//! token for the generation workloads on both designs (supporting
//! analysis; the operator-facing view of Fig. 11).

use crate::render::TextTable;
use owlp_core::serving::{simulate_serving, ServingMetrics};
use owlp_core::Accelerator;
use owlp_model::{Dataset, ModelId};
use serde::{Deserialize, Serialize};

/// The serving experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Serving {
    /// `(baseline, owlp)` metric pairs per configuration.
    pub rows: Vec<(ServingMetrics, ServingMetrics)>,
}

/// Runs the serving comparison across the decoder models.
pub fn run() -> Serving {
    let configs = [
        (ModelId::Gpt2Base, 32usize, 128usize, 256usize),
        (ModelId::Gpt2Large, 32, 128, 256),
        (ModelId::Llama2_7b, 32, 128, 1024),
        (ModelId::Llama2_70b, 32, 128, 1024),
    ];
    let rows = configs
        .iter()
        .map(|&(model, batch, prompt, gen)| {
            let b = simulate_serving(
                &Accelerator::baseline(),
                model,
                batch,
                prompt,
                gen,
                Dataset::WikiText2,
            );
            let o = simulate_serving(
                &Accelerator::owlp(),
                model,
                batch,
                prompt,
                gen,
                Dataset::WikiText2,
            );
            (b, o)
        })
        .collect();
    Serving { rows }
}

/// Renders the comparison.
pub fn render(s: &Serving) -> String {
    let mut t = TextTable::new([
        "workload",
        "tok/s base",
        "tok/s owlp",
        "TPOT base (ms)",
        "TPOT owlp",
        "TTFT base (ms)",
        "TTFT owlp",
    ]);
    for (b, o) in &s.rows {
        t.row([
            b.workload.clone(),
            format!("{:.0}", b.tokens_per_second),
            format!("{:.0}", o.tokens_per_second),
            format!("{:.3}", b.time_per_output_token_ms),
            format!("{:.3}", o.time_per_output_token_ms),
            format!("{:.2}", b.time_to_first_token_ms),
            format!("{:.2}", o.time_to_first_token_ms),
        ]);
    }
    format!(
        "Serving metrics — batch 32, WikiText-2 statistics\n\
         (TPOT = time per output token per sequence; TTFT = prefill latency)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_improves_every_serving_metric() {
        let s = run();
        assert_eq!(s.rows.len(), 4);
        for (b, o) in &s.rows {
            assert!(o.tokens_per_second > b.tokens_per_second, "{}", b.workload);
            assert!(o.time_per_output_token_ms < b.time_per_output_token_ms);
            assert!(o.time_to_first_token_ms < b.time_to_first_token_ms);
        }
    }

    #[test]
    fn bigger_models_are_slower() {
        let s = run();
        let tok = |needle: &str| {
            s.rows
                .iter()
                .find(|(b, _)| b.workload.contains(needle))
                .map(|(b, _)| b.tokens_per_second)
                .unwrap()
        };
        assert!(tok("GPT2-Base") > tok("GPT2-Large"));
        assert!(tok("Llama2-7B") > tok("Llama2-70B"));
    }
}
