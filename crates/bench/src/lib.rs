//! # owlp-bench
//!
//! The reproduction harness: one module per table/figure of the paper's
//! evaluation, each producing a data structure plus a text rendering that
//! mirrors the paper's rows/series, with the paper's published values
//! printed alongside for comparison.
//!
//! Run everything with the `repro` binary:
//!
//! ```text
//! cargo run -p owlp-bench --bin repro --release -- all
//! cargo run -p owlp-bench --bin repro --release -- fig11
//! ```
//!
//! | module | paper artefact |
//! |---|---|
//! | [`table1`] | Table I — numerical accuracy by method |
//! | [`table2`] | Table II — normal-value ratios |
//! | [`fig1`]   | Fig. 1 — exponent histogram (GPT2-Base FFN weights) |
//! | [`fig8`]   | Fig. 8 — `r_a`/`r_w` across models and submodules |
//! | [`table3`] | Table III — Llama2 `r_a` per dataset |
//! | [`table4`] | Table IV — BERT `r_a`/`r_w` per dataset |
//! | [`fig9`]   | Fig. 9 — area/power vs outlier paths |
//! | [`fig10`]  | Fig. 10 — `r_a`/`r_w` vs outlier paths |
//! | [`table5`] | Table V — design comparison |
//! | [`fig11`]  | Fig. 11 — relative cycles & energy on 10 workloads |
//! | [`eq34`]   | Eq. (3)/(4) — closed form vs event-driven simulation |
//! | [`ablation`] | extra design-choice ablations (align width, bias bits, path split, subset size) |
//! | [`roofline_exp`] | roofline placement of decode GEMMs (supporting analysis) |
//! | [`batch_sweep`] | speedup vs batch size (supporting analysis) |
//! | [`serving_exp`] | tokens/s, TPOT, TTFT per design (supporting analysis) |
//! | [`serve_exp`] | load sweep through the `owlp-serve` continuous-batching simulator |
//! | [`serve_faults_exp`] | serving under escalating fault injection (supporting analysis) |
//! | [`dse_exp`] | array-organisation design-space exploration (supporting analysis) |
//! | [`bench_json`] | machine-readable parallel-speedup baselines (`repro bench-json`) |

pub mod ablation;
pub mod batch_sweep;
pub mod bench_json;
pub mod dse_exp;
pub mod eq34;
pub mod fig1;
pub mod fig10;
pub mod fig11;
pub mod fig8;
pub mod fig9;
pub mod render;
pub mod roofline_exp;
pub mod serve_exp;
pub mod serve_faults_exp;
pub mod serving_exp;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

/// Deterministic base seed for every experiment (reproducible runs).
pub const SEED: u64 = 0x0DD5_EED5;

/// Measures `r_a` (activation) for one tensor mask through the real
/// scheduler — shared by several experiments.
pub fn measured_ra(
    model: owlp_model::ModelId,
    kind: owlp_model::OpKind,
    dataset: owlp_model::Dataset,
    m: usize,
    k: usize,
    paths: usize,
    seed: u64,
) -> f64 {
    use owlp_model::profiles::{profile_for, TensorRole};
    let p = profile_for(model, kind, TensorRole::Activation, dataset);
    let mask = owlp_model::TensorGen::new(p, m, k).mask(seed);
    let sched = owlp_systolic::schedule::OutlierSchedule::new(32, paths, paths);
    sched.activation_stats(&mask, m, k).ratio
}

/// Measures `r_w` (weight) analogously.
pub fn measured_rw(
    model: owlp_model::ModelId,
    kind: owlp_model::OpKind,
    k: usize,
    n: usize,
    paths: usize,
    seed: u64,
) -> f64 {
    use owlp_model::profiles::{profile_for, Dataset, TensorRole};
    let p = profile_for(model, kind, TensorRole::Weight, Dataset::WikiText2);
    let mask = owlp_model::TensorGen::new(p, k, n).mask(seed);
    let sched = owlp_systolic::schedule::OutlierSchedule::new(32, paths, paths);
    sched.weight_stats(&mask, k, n).ratio
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_model::{Dataset, ModelId, OpKind};

    #[test]
    fn measured_ra_is_in_band() {
        let r = measured_ra(
            ModelId::Gpt2Base,
            OpKind::QkvProj,
            Dataset::WikiText2,
            256,
            768,
            2,
            SEED,
        );
        assert!((1.05..=1.40).contains(&r), "r_a {r}");
    }

    #[test]
    fn measured_rw_is_in_band() {
        let r = measured_rw(ModelId::Gpt2Base, OpKind::QkvProj, 768, 768, 2, SEED);
        assert!((1.01..=1.12).contains(&r), "r_w {r}");
    }
}
