//! Design-space exploration — array organisations under the 49 152-MAC
//! budget, ranked by workload-mix speedup (supporting analysis; see
//! `owlp_core::dse` for the caveat about un-modelled per-array overhead).

use crate::render::{ratio, TextTable};
use owlp_core::dse::{explore, Candidate};
use serde::{Deserialize, Serialize};

/// The DSE result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dse {
    /// Ranked candidates (best first).
    pub ranked: Vec<Candidate>,
}

/// Runs the exploration at the paper's MAC budget.
pub fn run() -> Dse {
    Dse {
        ranked: explore(49_152),
    }
}

/// Renders the ranking.
pub fn render(d: &Dse) -> String {
    let mut t = TextTable::new(["organisation", "arrays", "k-tile", "mix speedup"]);
    for c in &d.ranked {
        let marker = if c.rows == 4 && c.cols == 32 && c.num_arrays == 48 {
            "  <- chosen (matches Table V anchors)"
        } else {
            ""
        };
        t.row([
            format!("{}x{}x{} lanes", c.rows, c.cols, c.lanes),
            c.num_arrays.to_string(),
            (c.rows * c.lanes).to_string(),
            format!("{}{marker}", ratio(c.speedup)),
        ]);
    }
    format!(
        "Design-space exploration — 49 152-MAC organisations, ranked\n\
         (the cycle model charges no per-array control overhead, so the very\n\
          smallest arrays rank top; the chosen 48x(4x32) point trades a few\n\
          percent for a realisable floorplan)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_is_sorted_and_contains_the_chosen_point() {
        let d = run();
        for w in d.ranked.windows(2) {
            assert!(w[0].speedup >= w[1].speedup);
        }
        assert!(d
            .ranked
            .iter()
            .any(|c| c.rows == 4 && c.cols == 32 && c.num_arrays == 48));
    }
}
