//! Roofline placement of the decode-phase GEMMs — the mechanism behind the
//! Fig. 11 speedups, made explicit (not a paper figure; supporting
//! analysis). The closed-form per-op placement is cross-checked by the
//! event-driven `owlp-mem` co-simulation: each phase's verdict comes from
//! the per-channel HBM timeline racing the fold pipeline, not from an
//! intensity inequality.

use crate::render::TextTable;
use owlp_core::roofline::{analyze, ridge_point, RooflinePoint};
use owlp_core::{cosim, Accelerator};
use owlp_model::{workload, Dataset, ModelId};
use serde::{Deserialize, Serialize};

/// One phase of the event-driven memory co-simulation, per design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryPhase {
    /// Design point (`baseline` / `owlp`).
    pub design: String,
    /// Serving phase (`Prefill` / `Decode`).
    pub phase: String,
    /// Arithmetic intensity over the fetched (compressed) bytes.
    pub intensity_macs_per_byte: f64,
    /// Achieved off-chip bandwidth over the phase makespan, GB/s.
    pub achieved_gbps: f64,
    /// `max(compute, memory) / makespan` — 1.0 is perfect prefetch overlap.
    pub overlap_efficiency: f64,
    /// Event-driven verdict: memory cycles exceed compute cycles.
    pub memory_bound: bool,
    /// Channel-level byte accounting matched the request stream.
    pub bytes_conserved: bool,
}

/// The roofline experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Baseline ridge point (MACs/byte).
    pub baseline_ridge: f64,
    /// OwL-P ridge point.
    pub owlp_ridge: f64,
    /// Off-chip bandwidth roof (GB/s) shared by both designs.
    pub peak_gbps: f64,
    /// Baseline per-op placements (deduplicated by op string).
    pub baseline: Vec<RooflinePoint>,
    /// OwL-P per-op placements.
    pub owlp: Vec<RooflinePoint>,
    /// Event-driven per-phase verdicts from the `owlp-mem` co-simulation.
    pub memory: Vec<MemoryPhase>,
    /// Decode-phase makespan ratio baseline/OwL-P under the co-simulation
    /// — the serving speedup the traffic compression buys.
    pub decode_speedup: f64,
}

/// Runs the roofline analysis on a Llama2-7B generation slice.
pub fn run() -> Roofline {
    run_with(false)
}

/// Runs the roofline analysis; `smoke` shortens the generation tail so CI
/// can afford the co-simulated sweep on every push (the per-phase verdicts
/// are invariant to the tail length — decode traffic scales uniformly).
pub fn run_with(smoke: bool) -> Roofline {
    let gen = if smoke { 8 } else { 64 };
    let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 128, gen);
    let base = Accelerator::baseline();
    let owlp = Accelerator::owlp();
    let dedup = |points: Vec<RooflinePoint>| -> Vec<RooflinePoint> {
        let mut seen = std::collections::BTreeSet::new();
        points
            .into_iter()
            .filter(|p| seen.insert(p.op.clone()))
            .collect()
    };
    let mut memory = Vec::new();
    let mut peak_gbps = 0.0;
    let mut decode_makespans = [0.0f64; 2];
    for (i, (name, acc)) in [("baseline", &base), ("owlp", &owlp)].iter().enumerate() {
        let report = cosim::cosim_workload(acc, &wl, Dataset::WikiText2);
        peak_gbps = report.peak_gbps;
        for agg in &report.aggregates {
            if format!("{:?}", agg.class) == "Decode" {
                decode_makespans[i] = agg.makespan;
            }
            memory.push(MemoryPhase {
                design: name.to_string(),
                phase: format!("{:?}", agg.class),
                intensity_macs_per_byte: agg.intensity_macs_per_byte,
                achieved_gbps: agg.achieved_gbps,
                overlap_efficiency: agg.overlap_efficiency,
                memory_bound: agg.memory_bound,
                bytes_conserved: agg.bytes_conserved,
            });
        }
    }
    Roofline {
        baseline_ridge: ridge_point(&base),
        owlp_ridge: ridge_point(&owlp),
        peak_gbps,
        baseline: dedup(analyze(&base, &wl, Dataset::WikiText2)),
        owlp: dedup(analyze(&owlp, &wl, Dataset::WikiText2)),
        memory,
        decode_speedup: decode_makespans[0] / decode_makespans[1].max(f64::MIN_POSITIVE),
    }
}

/// Renders both rooflines.
pub fn render(r: &Roofline) -> String {
    let panel = |name: &str, ridge: f64, points: &[RooflinePoint]| -> String {
        let mut t = TextTable::new(["op (one rep)", "MACs/byte", "bound", "attainable MAC/cyc"]);
        for p in points {
            t.row([
                p.op.clone(),
                if p.intensity.is_finite() {
                    format!("{:.1}", p.intensity)
                } else {
                    "∞".into()
                },
                if p.memory_bound {
                    "memory".to_string()
                } else {
                    "compute".to_string()
                },
                format!("{:.0}", p.attainable),
            ]);
        }
        format!("{name} (ridge {ridge:.1} MACs/byte)\n{}", t.render())
    };
    let mut mt = TextTable::new([
        "design",
        "phase",
        "MACs/byte",
        "GB/s",
        "overlap",
        "verdict",
        "bytes ok",
    ]);
    for p in &r.memory {
        mt.row([
            p.design.clone(),
            p.phase.clone(),
            format!("{:.1}", p.intensity_macs_per_byte),
            format!("{:.1}", p.achieved_gbps),
            format!("{:.3}", p.overlap_efficiency),
            if p.memory_bound {
                "memory".to_string()
            } else {
                "compute".to_string()
            },
            p.bytes_conserved.to_string(),
        ]);
    }
    format!(
        "Roofline — Llama2-7B generation, per-GEMM placement\n\n{}\n{}\n\
         Event-driven memory co-simulation (roof {:.0} GB/s, decode speedup {:.2}x)\n{}",
        panel("TPU-like baseline", r.baseline_ridge, &r.baseline),
        panel("OwL-P", r.owlp_ridge, &r.owlp),
        r.peak_gbps,
        r.decode_speedup,
        mt.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_ridge_is_three_times_baseline() {
        let r = run();
        assert!((r.owlp_ridge / r.baseline_ridge - 3.0).abs() < 1e-9);
    }

    #[test]
    fn decode_projections_are_memory_bound_on_both() {
        let r = run();
        for set in [&r.baseline, &r.owlp] {
            let decode = set
                .iter()
                .find(|p| p.op.starts_with("qkv_proj 32x"))
                .unwrap();
            assert!(decode.memory_bound, "{decode:?}");
        }
    }

    #[test]
    fn render_lists_ops() {
        let s = render(&run());
        assert!(s.contains("qkv_proj"));
        assert!(s.contains("ffn_down"));
        assert!(s.contains("co-simulation"));
    }

    #[test]
    fn cosim_verdicts_hold_in_smoke_mode_too() {
        let r = run_with(true);
        assert!(r.peak_gbps > 0.0);
        for p in &r.memory {
            assert!(p.bytes_conserved, "{} {}", p.design, p.phase);
            assert!(p.achieved_gbps <= r.peak_gbps + 1e-9);
            assert!(p.overlap_efficiency > 0.0 && p.overlap_efficiency <= 1.0 + 1e-12);
            match (p.design.as_str(), p.phase.as_str()) {
                // OwL-P decode streams the full weight matrix per token:
                // bandwidth-bound at paper defaults. The baseline's fold
                // pipeline is ~3× slower per byte, so its decode verdict
                // flips to compute-bound under the event model — that gap
                // is the paper's headroom claim.
                ("owlp", "Decode") => assert!(p.memory_bound, "owlp decode"),
                (_, "Prefill") => assert!(!p.memory_bound, "{} prefill", p.design),
                ("baseline", "Decode") => {}
                other => panic!("unexpected phase {other:?}"),
            }
        }
        // Traffic compression shows up as a decode-makespan win.
        assert!(r.decode_speedup > 1.0, "{}", r.decode_speedup);
    }
}
