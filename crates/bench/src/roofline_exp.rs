//! Roofline placement of the decode-phase GEMMs — the mechanism behind the
//! Fig. 11 speedups, made explicit (not a paper figure; supporting
//! analysis).

use crate::render::TextTable;
use owlp_core::roofline::{analyze, ridge_point, RooflinePoint};
use owlp_core::Accelerator;
use owlp_model::{workload, Dataset, ModelId};
use serde::{Deserialize, Serialize};

/// The roofline experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Baseline ridge point (MACs/byte).
    pub baseline_ridge: f64,
    /// OwL-P ridge point.
    pub owlp_ridge: f64,
    /// Baseline per-op placements (deduplicated by op string).
    pub baseline: Vec<RooflinePoint>,
    /// OwL-P per-op placements.
    pub owlp: Vec<RooflinePoint>,
}

/// Runs the roofline analysis on a Llama2-7B generation slice.
pub fn run() -> Roofline {
    let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 128, 64);
    let base = Accelerator::baseline();
    let owlp = Accelerator::owlp();
    let dedup = |points: Vec<RooflinePoint>| -> Vec<RooflinePoint> {
        let mut seen = std::collections::BTreeSet::new();
        points
            .into_iter()
            .filter(|p| seen.insert(p.op.clone()))
            .collect()
    };
    Roofline {
        baseline_ridge: ridge_point(&base),
        owlp_ridge: ridge_point(&owlp),
        baseline: dedup(analyze(&base, &wl, Dataset::WikiText2)),
        owlp: dedup(analyze(&owlp, &wl, Dataset::WikiText2)),
    }
}

/// Renders both rooflines.
pub fn render(r: &Roofline) -> String {
    let panel = |name: &str, ridge: f64, points: &[RooflinePoint]| -> String {
        let mut t = TextTable::new(["op (one rep)", "MACs/byte", "bound", "attainable MAC/cyc"]);
        for p in points {
            t.row([
                p.op.clone(),
                if p.intensity.is_finite() {
                    format!("{:.1}", p.intensity)
                } else {
                    "∞".into()
                },
                if p.memory_bound {
                    "memory".to_string()
                } else {
                    "compute".to_string()
                },
                format!("{:.0}", p.attainable),
            ]);
        }
        format!("{name} (ridge {ridge:.1} MACs/byte)\n{}", t.render())
    };
    format!(
        "Roofline — Llama2-7B generation, per-GEMM placement\n\n{}\n{}",
        panel("TPU-like baseline", r.baseline_ridge, &r.baseline),
        panel("OwL-P", r.owlp_ridge, &r.owlp)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_ridge_is_three_times_baseline() {
        let r = run();
        assert!((r.owlp_ridge / r.baseline_ridge - 3.0).abs() < 1e-9);
    }

    #[test]
    fn decode_projections_are_memory_bound_on_both() {
        let r = run();
        for set in [&r.baseline, &r.owlp] {
            let decode = set
                .iter()
                .find(|p| p.op.starts_with("qkv_proj 32x"))
                .unwrap();
            assert!(decode.memory_bound, "{decode:?}");
        }
    }

    #[test]
    fn render_lists_ops() {
        let s = render(&run());
        assert!(s.contains("qkv_proj"));
        assert!(s.contains("ffn_down"));
    }
}
