//! Table III — Llama2 `r_a` across evaluation datasets (and the constant
//! `r_w` footnote).

use crate::render::{rval, TextTable};
use crate::{measured_ra, measured_rw};
use owlp_model::{Dataset, ModelId, OpKind};
use serde::{Deserialize, Serialize};

/// Paper Table III values for side-by-side printing.
pub fn paper_value(model: ModelId, dataset: Dataset) -> Option<f64> {
    let v = match (model, dataset) {
        (ModelId::Llama2_7b, Dataset::HellaSwag) => 1.216,
        (ModelId::Llama2_7b, Dataset::WinoGrande) => 1.297,
        (ModelId::Llama2_7b, Dataset::Piqa) => 1.359,
        (ModelId::Llama2_7b, Dataset::WikiText2) => 1.168,
        (ModelId::Llama2_7b, Dataset::Mmlu) => 1.179,
        (ModelId::Llama2_70b, Dataset::HellaSwag) => 1.263,
        (ModelId::Llama2_70b, Dataset::WinoGrande) => 1.282,
        (ModelId::Llama2_70b, Dataset::Piqa) => 1.345,
        (ModelId::Llama2_70b, Dataset::WikiText2) => 1.158,
        (ModelId::Llama2_70b, Dataset::Mmlu) => 1.126,
        _ => return None,
    };
    Some(v)
}

/// Paper footnote: constant `r_w` per model.
pub const PAPER_RW: [(ModelId, f64); 2] =
    [(ModelId::Llama2_7b, 1.052), (ModelId::Llama2_70b, 1.071)];

/// The Table III result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3 {
    /// `(model, dataset, measured r_a)` cells.
    pub r_a: Vec<(ModelId, Dataset, f64)>,
    /// `(model, measured r_w)` footnote values.
    pub r_w: Vec<(ModelId, f64)>,
}

/// Runs the Table III experiment.
pub fn run(seed: u64) -> Table3 {
    let models = [ModelId::Llama2_7b, ModelId::Llama2_70b];
    let mut r_a = Vec::new();
    for &model in &models {
        let k = model.config().hidden.min(2048);
        for &dataset in &Dataset::LLM_SET {
            let r = measured_ra(model, OpKind::QkvProj, dataset, 384, k, 2, seed);
            r_a.push((model, dataset, r));
        }
    }
    let r_w = models
        .iter()
        .map(|&model| {
            let k = model.config().hidden.min(2048);
            (
                model,
                measured_rw(model, OpKind::QkvProj, k, 256, 2, seed + 7),
            )
        })
        .collect();
    Table3 { r_a, r_w }
}

/// Renders the table.
pub fn render(t: &Table3) -> String {
    let mut table = TextTable::new(["", "HellaSwag", "WinoGrande", "PIQA", "WikiText-2", "MMLU"]);
    for &model in &[ModelId::Llama2_7b, ModelId::Llama2_70b] {
        let cell = |d: Dataset| {
            let measured = t
                .r_a
                .iter()
                .find(|(m, dd, _)| *m == model && *dd == d)
                .map(|(_, _, r)| *r);
            let paper = paper_value(model, d);
            match (measured, paper) {
                (Some(m), Some(p)) => format!("{} ({p:.3})", rval(m)),
                _ => "-".to_string(),
            }
        };
        table.row([
            model.name().to_string(),
            cell(Dataset::HellaSwag),
            cell(Dataset::WinoGrande),
            cell(Dataset::Piqa),
            cell(Dataset::WikiText2),
            cell(Dataset::Mmlu),
        ]);
    }
    let mut foot = String::new();
    for (model, rw) in &t.r_w {
        let paper = PAPER_RW.iter().find(|(m, _)| m == model).unwrap().1;
        foot.push_str(&format!(
            "  {} r_w = {} (paper {paper:.3})\n",
            model.name(),
            rval(*rw)
        ));
    }
    format!(
        "Table III — r_a for Llama2 across datasets, measured (paper)\n{}\n{}",
        table.render(),
        foot
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_are_in_band_and_vary_mildly() {
        let t = run(crate::SEED);
        for &(m, d, r) in &t.r_a {
            assert!((1.05..=1.45).contains(&r), "{m} {d}: {r}");
        }
        // Dataset spread is small (paper: negligible variation).
        for &model in &[ModelId::Llama2_7b, ModelId::Llama2_70b] {
            let vals: Vec<f64> = t
                .r_a
                .iter()
                .filter(|(m, _, _)| *m == model)
                .map(|(_, _, r)| *r)
                .collect();
            let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = vals.iter().cloned().fold(0.0, f64::max);
            assert!(max - min < 0.12, "{model}: spread {min}..{max}");
        }
    }

    #[test]
    fn piqa_is_the_heaviest_dataset() {
        // Matches the paper's ordering (PIQA has the largest r_a).
        let t = run(crate::SEED);
        for &model in &[ModelId::Llama2_7b, ModelId::Llama2_70b] {
            let get = |d: Dataset| {
                t.r_a
                    .iter()
                    .find(|(m, dd, _)| *m == model && *dd == d)
                    .unwrap()
                    .2
            };
            assert!(get(Dataset::Piqa) > get(Dataset::WikiText2), "{model}");
        }
    }

    #[test]
    fn rw_footnote_in_band() {
        let t = run(crate::SEED);
        for &(m, rw) in &t.r_w {
            assert!((1.02..=1.10).contains(&rw), "{m}: {rw}");
        }
    }
}
