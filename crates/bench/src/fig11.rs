//! Fig. 11 — relative total cycles (a) and relative energy (b) of OwL-P
//! versus the FP baseline on the ten evaluation workloads, with the
//! QKV / attention / projection / FFN breakdown.

use crate::render::{ratio, TextTable};
use owlp_core::report::geomean;
use owlp_core::{workloads, Accelerator, Comparison, SimulationReport};
use owlp_model::OpClass;
use serde::{Deserialize, Serialize};

/// One workload's pair of reports plus the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadResult {
    /// Baseline report.
    pub baseline: SimulationReport,
    /// OwL-P report.
    pub owlp: SimulationReport,
    /// Ratios.
    pub comparison: Comparison,
}

/// The full Fig. 11 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig11 {
    /// Per-workload results in the paper's order.
    pub results: Vec<WorkloadResult>,
    /// Geometric-mean speedup (paper: 2.70×).
    pub avg_speedup: f64,
    /// Geometric-mean energy savings (paper: 3.57×).
    pub avg_energy: f64,
}

/// Runs the Fig. 11 evaluation.
pub fn run() -> Fig11 {
    let baseline = Accelerator::baseline();
    let owlp = Accelerator::owlp();
    let results: Vec<WorkloadResult> = workloads::paper_workloads()
        .iter()
        .map(|wl| {
            let dataset = workloads::default_dataset(wl.model);
            let b = baseline.simulate(wl, dataset);
            let o = owlp.simulate(wl, dataset);
            let comparison = Comparison::between(&b, &o);
            WorkloadResult {
                baseline: b,
                owlp: o,
                comparison,
            }
        })
        .collect();
    let avg_speedup = geomean(results.iter().map(|r| r.comparison.speedup));
    let avg_energy = geomean(results.iter().map(|r| r.comparison.energy_ratio));
    Fig11 {
        results,
        avg_speedup,
        avg_energy,
    }
}

/// Renders both panels.
pub fn render(f: &Fig11) -> String {
    let mut a = TextTable::new([
        "workload",
        "rel. cycles",
        "speedup",
        "QKV",
        "Attention",
        "Projection",
        "FFN",
    ]);
    for r in &f.results {
        let rel = 1.0 / r.comparison.speedup;
        let class_cell = |c: OpClass| -> String {
            // Fraction of the baseline's cycles that OwL-P spends in this
            // class: the stacked-bar segment of Fig. 11a.
            let b = r.baseline.per_class.get(&c).map(|x| x.cycles).unwrap_or(0);
            let o = r.owlp.per_class.get(&c).map(|x| x.cycles).unwrap_or(0);
            format!("{:.3}", o as f64 / r.baseline.cycles.max(1) as f64)
                + &format!("/{:.3}", b as f64 / r.baseline.cycles.max(1) as f64)
        };
        a.row([
            r.baseline.workload.clone(),
            format!("{rel:.3}"),
            ratio(r.comparison.speedup),
            class_cell(OpClass::Qkv),
            class_cell(OpClass::Attention),
            class_cell(OpClass::Projection),
            class_cell(OpClass::Ffn),
        ]);
    }
    let mut b = TextTable::new(["workload", "rel. energy", "savings", "traffic ratio"]);
    for r in &f.results {
        b.row([
            r.baseline.workload.clone(),
            format!("{:.3}", 1.0 / r.comparison.energy_ratio),
            ratio(r.comparison.energy_ratio),
            ratio(r.comparison.traffic_ratio),
        ]);
    }
    format!(
        "Fig. 11(a) — relative cycles, OwL-P vs FP baseline (class cells: owlp/baseline share)\n{}\n\
         average speedup: {} (paper 2.70x)\n\n\
         Fig. 11(b) — relative energy\n{}\n\
         average energy savings: {} (paper 3.57x, range 2.94-4.04x)\n",
        a.render(),
        ratio(f.avg_speedup),
        b.render(),
        ratio(f.avg_energy)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_wins_every_workload() {
        let f = run();
        assert_eq!(f.results.len(), 10);
        for r in &f.results {
            assert!(
                r.comparison.speedup > 1.0,
                "{}: {}",
                r.baseline.workload,
                r.comparison.speedup
            );
            assert!(
                r.comparison.energy_ratio > 1.0,
                "{}: {}",
                r.baseline.workload,
                r.comparison.energy_ratio
            );
        }
    }

    #[test]
    fn averages_land_near_paper_headlines() {
        let f = run();
        assert!(
            (2.0..=3.4).contains(&f.avg_speedup),
            "avg speedup {} (paper 2.70)",
            f.avg_speedup
        );
        assert!(
            (2.6..=4.6).contains(&f.avg_energy),
            "avg energy savings {} (paper 3.57)",
            f.avg_energy
        );
    }

    #[test]
    fn energy_savings_band_matches_paper_range() {
        // Paper: 2.94–4.04× across workloads; allow a wider modelling band.
        let f = run();
        for r in &f.results {
            assert!(
                (2.0..=5.2).contains(&r.comparison.energy_ratio),
                "{}: {}",
                r.baseline.workload,
                r.comparison.energy_ratio
            );
        }
    }

    #[test]
    fn ffn_dominates_bert_cycles() {
        // Structural sanity of the breakdown: for BERT, FFN is the largest
        // class on both designs.
        let f = run();
        let bert = &f.results[0];
        for rep in [&bert.baseline, &bert.owlp] {
            let ffn = rep.class_cycle_share(OpClass::Ffn);
            for c in [OpClass::Qkv, OpClass::Projection] {
                assert!(ffn > rep.class_cycle_share(c), "{}", rep.design);
            }
        }
    }
}
