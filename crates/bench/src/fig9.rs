//! Fig. 9 — normalized area and power of the systolic array versus the
//! number of outlier paths per PE, from the `owlp-hw` component model.

use crate::render::{rval, TextTable};
use owlp_hw::design::fig9_point;
use serde::{Deserialize, Serialize};

/// Swept outlier-path counts.
pub const PATHS: [usize; 4] = [0, 2, 4, 8];

/// The Fig. 9 result: `(paths, normalized area, normalized power)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig9 {
    /// One point per swept path count, normalised to the BF16 FMA array
    /// with the same MAC count.
    pub points: Vec<(usize, f64, f64)>,
}

/// Runs the Fig. 9 sweep.
pub fn run() -> Fig9 {
    Fig9 {
        points: PATHS
            .iter()
            .map(|&p| {
                let (a, pw) = fig9_point(p);
                (p, a, pw)
            })
            .collect(),
    }
}

/// Renders the sweep.
pub fn render(f: &Fig9) -> String {
    let mut t = TextTable::new(["outlier paths/PE", "area (norm.)", "power (norm.)"]);
    for &(p, a, pw) in &f.points {
        t.row([p.to_string(), rval(a), rval(pw)]);
    }
    format!(
        "Fig. 9 — OwL-P array area/power vs outlier paths, normalized to the BF16 baseline\n\
         (paper: proposed design far below baseline at every path count; mild growth with paths)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_below_baseline() {
        let f = run();
        for &(p, a, pw) in &f.points {
            assert!(a < 0.6, "paths {p}: area {a}");
            assert!(pw < 0.6, "paths {p}: power {pw}");
        }
    }

    #[test]
    fn area_grows_monotonically_with_paths() {
        let f = run();
        for w in f.points.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
    }
}
