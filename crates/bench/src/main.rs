//! `repro` — regenerate every table and figure of the OwL-P paper.
//!
//! ```text
//! repro all            run every experiment
//! repro table1         Table I   numerical accuracy by method
//! repro table2         Table II  normal-value ratios
//! repro fig1           Fig. 1    exponent histogram
//! repro fig8           Fig. 8    r_a / r_w across models & submodules
//! repro table3         Table III Llama2 r_a per dataset
//! repro table4         Table IV  BERT r_a / r_w per dataset
//! repro fig9           Fig. 9    area/power vs outlier paths
//! repro fig10          Fig. 10   r_a / r_w vs outlier paths
//! repro table5         Table V   design comparison
//! repro fig11          Fig. 11   relative cycles & energy (10 workloads)
//! repro eq34           Eq. (3)/(4) validation vs event simulation
//! repro ablations      align-width / bias-bits / path-split ablations
//! repro serve-faults   serving under escalating fault injection
//! ```
//!
//! Plus three non-paper maintenance commands:
//!
//! ```text
//! repro bench-json [--smoke] [--out PATH] [--baseline PATH] [--allow-regress]
//! repro pack [--out PATH] [--budget BYTES] [--verify]
//! repro features [--archive PATH]
//! ```
//!
//! `bench-json` times the `owlp-par` hot paths serial vs parallel and
//! writes a machine-readable baseline report (default `BENCH_PR9.json`),
//! comparing serial throughput against the previous baseline (default
//! `BENCH_PR8.json`) when present. The report carries a `memory` section —
//! event-driven HBM co-simulation verdicts — an `integrity` section —
//! seeded fault-sweep coverage plus checksum overhead — a `simd`
//! section — runtime kernel-dispatch accounting with per-tier throughput
//! and cross-tier bit-identity — and a `weights` section — archive-v2
//! streaming-encode budget conformance, mmap-vs-eager cold load, and
//! mapped-vs-owned GEMM bit-identity — plus, since schema v7, a `host`
//! section (CPU model, SIMD features, cache sizes) and a `blocking`
//! section (blocked-vs-unblocked drive-loop gains and vector-vs-scalar
//! codec gains measured in-run). The run fails when byte conservation is
//! violated, when any swept fault escapes or raises a false positive,
//! when any kernel tier diverges from the scalar oracle, when the
//! streaming encoder exceeds its budget or a mapped GEMM diverges, when
//! either loop order or codec tier breaks bit-identity, or (full runs
//! only) when the checksum overhead exceeds its budget, the mapped cold
//! load misses its ≥10x floor, the blocked GEMM gains miss their
//! 1.4x/1.3x floors on hosts where cache pressure makes blocking bind
//! (`floor_applies`), the vector encode gain misses its 1.5x floor, or a
//! case's serial throughput regresses more than 10% against the baseline
//! without `--allow-regress`.
//!
//! `pack` streaming-encodes the deterministic smoke model's weights into
//! an archive-v2 file under the `OWLP_STREAM_BUDGET` byte budget (or
//! `--budget`, accepting K/M/G suffixes); `--verify` maps the archive
//! back, checks every plane digest, and re-runs the transformer forward
//! pass off the mapped planes bit-for-bit against the exact engine — the
//! CI serving-cold-start gate.
//!
//! `features` prints the detected CPU features, the kernel tier each
//! microkernel entry point dispatches to, and the effective
//! `OWLP_SIMD` / `OWLP_THREADS` / `OWLP_STREAM_BUDGET` overrides; with
//! `--archive PATH` it also scrubs that archive-v2 file (whole-plane and
//! per-tile CRC32C digests) and reports what it verified.
//!
//! `repro serve-faults --json PATH` writes the fault sweep as JSON to
//! `PATH` and exits nonzero when the integrity gate fails (an SDC escaped
//! into a delivered response under the full detector configuration) —
//! the machine-readable form CI diffs across thread budgets.
//!
//! `repro roofline --smoke` shortens the co-simulated generation tail so
//! CI can gate on the phase verdicts cheaply.

use owlp_bench::{
    ablation, batch_sweep, bench_json, dse_exp, eq34, fig1, fig10, fig11, fig8, fig9, roofline_exp,
    serve_exp, serve_faults_exp, serving_exp, table1, table2, table3, table4, table5, SEED,
};

const EXPERIMENTS: [&str; 18] = [
    "table1",
    "table2",
    "fig1",
    "fig8",
    "table3",
    "table4",
    "fig9",
    "fig10",
    "table5",
    "fig11",
    "eq34",
    "ablations",
    "roofline",
    "batch",
    "serving",
    "serve",
    "serve-faults",
    "dse",
];

fn run_json(name: &str, smoke: bool) -> Result<String, String> {
    fn ser<T: serde::Serialize>(name: &str, v: &T) -> Result<String, String> {
        serde_json::to_string_pretty(&serde_json::json!({ "experiment": name, "result": v }))
            .map_err(|e| e.to_string())
    }
    match name {
        "table1" => ser(name, &table1::run(SEED)),
        "table2" => ser(name, &table2::run(SEED)),
        "fig1" => ser(name, &fig1::run(SEED)),
        "fig8" => ser(name, &fig8::run(SEED, 2)),
        "table3" => ser(name, &table3::run(SEED)),
        "table4" => ser(name, &table4::run(SEED)),
        "fig9" => ser(name, &fig9::run()),
        "fig10" => ser(name, &fig10::run(SEED)),
        "table5" => ser(name, &table5::run()),
        "fig11" => ser(name, &fig11::run()),
        "eq34" => ser(name, &eq34::run(SEED)),
        "ablations" => ser(
            name,
            &serde_json::json!({
                "align_width": ablation::align_width(SEED),
                "window_width": ablation::window_width(SEED),
                "path_split": ablation::path_split(),
                "block_size": ablation::block_size(SEED),
                "blockfp_sweep": ablation::blockfp_sweep(SEED),
            }),
        ),
        "roofline" => ser(name, &roofline_exp::run_with(smoke)),
        "batch" => ser(name, &batch_sweep::run()),
        "serving" => ser(name, &serving_exp::run()),
        "serve" => ser(name, &serve_exp::run()),
        "serve-faults" => ser(name, &serve_faults_exp::run()),
        "dse" => ser(name, &dse_exp::run()),
        other => Err(format!("unknown experiment '{other}'")),
    }
}

fn run_one(name: &str, smoke: bool) -> Result<String, String> {
    match name {
        "table1" => Ok(table1::render(&table1::run(SEED))),
        "table2" => Ok(table2::render(&table2::run(SEED))),
        "fig1" => Ok(fig1::render(&fig1::run(SEED))),
        "fig8" => Ok(fig8::render(&fig8::run(SEED, 2))),
        "table3" => Ok(table3::render(&table3::run(SEED))),
        "table4" => Ok(table4::render(&table4::run(SEED))),
        "fig9" => Ok(fig9::render(&fig9::run())),
        "fig10" => Ok(fig10::render(&fig10::run(SEED))),
        "table5" => Ok(table5::render(&table5::run())),
        "fig11" => Ok(fig11::render(&fig11::run())),
        "eq34" => Ok(eq34::render(&eq34::run(SEED))),
        "ablations" => Ok(format!(
            "{}\n{}\n{}\n{}\n{}",
            ablation::render_align(&ablation::align_width(SEED)),
            ablation::render_window(&ablation::window_width(SEED)),
            ablation::render_paths(&ablation::path_split()),
            ablation::render_blocks(&ablation::block_size(SEED)),
            ablation::render_blockfp(&ablation::blockfp_sweep(SEED))
        )),
        "roofline" => Ok(roofline_exp::render(&roofline_exp::run_with(smoke))),
        "batch" => Ok(batch_sweep::render(&batch_sweep::run())),
        "serving" => Ok(serving_exp::render(&serving_exp::run())),
        "serve" => Ok(serve_exp::render(&serve_exp::run())),
        "serve-faults" => Ok(serve_faults_exp::render(&serve_faults_exp::run())),
        "dse" => Ok(dse_exp::render(&dse_exp::run())),
        other => Err(format!("unknown experiment '{other}'")),
    }
}

/// `repro bench-json [--smoke] [--out PATH] [--baseline PATH]
/// [--allow-regress]` — run the parallel-speedup baseline suite and write
/// the JSON report. When the baseline file (default `BENCH_PR8.json`)
/// exists, each case also records its old-vs-new serial throughput gain;
/// a case regressing past [`bench_json::REGRESS_LIMIT_GAIN`] always warns
/// and fails non-smoke runs unless `--allow-regress` is given.
fn run_bench_json(args: &[String]) {
    let smoke = args.iter().any(|a| a == "--smoke");
    let allow_regress = args.iter().any(|a| a == "--allow-regress");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_PR9.json", String::as_str);
    let baseline = args
        .iter()
        .position(|a| a == "--baseline")
        .and_then(|i| args.get(i + 1))
        .map_or("BENCH_PR8.json", String::as_str);
    let mut report = bench_json::run(smoke);
    if let Ok(old) = std::fs::read_to_string(baseline) {
        if !bench_json::attach_baseline(&mut report, &old) {
            eprintln!("warning: {baseline} is not a bench report; skipping comparison");
        }
    }
    let report = report;
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    if let Err(e) = std::fs::write(out, json + "\n") {
        eprintln!("error: cannot write {out}: {e}");
        std::process::exit(2);
    }
    println!("{}", bench_json::render(&report));
    println!("wrote {out}");
    if report.cases.iter().any(|c| !c.bit_identical) {
        eprintln!("error: a parallel result diverged from the serial result");
        std::process::exit(1);
    }
    if !report.simd.tiers_bit_identical {
        eprintln!("error: a forced kernel tier diverged from the scalar oracle");
        std::process::exit(1);
    }
    // Blocking identity gates bind every run; the gain floors, like all
    // timing gates, only bind full runs (smoke shapes fit in cache, so
    // blocking has nothing to buy there).
    for g in &report.blocking.gemm {
        if !g.bit_identical {
            eprintln!(
                "error: {} blocked-vs-unblocked outputs diverged (geometry {})",
                g.case, g.geometry
            );
            std::process::exit(1);
        }
    }
    if !report.blocking.codec.bit_identical {
        eprintln!("error: the vector codec diverged from the scalar oracle");
        std::process::exit(1);
    }
    if !report.smoke {
        // The gain floor only binds when the derived geometry actually
        // splits a loop dimension AND the operand planes exceed the
        // last-level cache (`floor_applies`): on hosts whose LLC swallows
        // both planes — e.g. a 260 MB server L3 — blocking is a measured
        // no-op and demanding a speedup from it would be dishonest.
        for g in &report.blocking.gemm {
            let floor = if g.case == "gemm-exact" {
                bench_json::BLOCKED_GAIN_FLOOR_EXACT
            } else {
                bench_json::BLOCKED_GAIN_FLOOR_OWLP
            };
            if g.floor_applies && g.gain < floor {
                eprintln!(
                    "error: {} blocked gain {:.2}x is below the {:.1}x floor",
                    g.case, g.gain, floor
                );
                std::process::exit(1);
            }
        }
        let cv = &report.blocking.codec;
        if cv.tier != "scalar" && cv.encode_gain < bench_json::ENCODE_VECTOR_GAIN_FLOOR {
            eprintln!(
                "error: encode vector gain {:.2}x (tier {}) is below the {:.1}x floor",
                cv.encode_gain,
                cv.tier,
                bench_json::ENCODE_VECTOR_GAIN_FLOOR
            );
            std::process::exit(1);
        }
    }
    if !report.memory.byte_conservation_ok {
        eprintln!("error: the memory co-simulation violated byte conservation");
        std::process::exit(1);
    }
    let weights = &report.weights;
    if !weights.stream_within_budget {
        eprintln!(
            "error: streaming encode peaked at {} bytes over its {}-byte budget",
            weights.stream_peak_alloc, weights.stream_budget
        );
        std::process::exit(1);
    }
    if !weights.digests_verified {
        eprintln!("error: an archive plane digest failed verification");
        std::process::exit(1);
    }
    if !weights.mapped_gemm_bit_identical {
        eprintln!("error: a mapped tensor's GEMM diverged from its owned twin");
        std::process::exit(1);
    }
    // The cold-load floor is a timing, so like the other timing gates it
    // only binds full runs — smoke shapes are too small for the ratio to
    // clear jitter.
    if !report.smoke && weights.cold_speedup < bench_json::COLD_LOAD_SPEEDUP_FLOOR {
        eprintln!(
            "error: mapped cold load is only {:.1}x faster than eager (floor {:.0}x)",
            weights.cold_speedup,
            bench_json::COLD_LOAD_SPEEDUP_FLOOR
        );
        std::process::exit(1);
    }
    let integ = &report.integrity;
    if integ.escaped_total > 0 {
        eprintln!(
            "error: {} swept faults escaped the full integrity configuration",
            integ.escaped_total
        );
        std::process::exit(1);
    }
    if integ.false_positives > 0 {
        eprintln!(
            "error: {} fault-free probes raised a detector",
            integ.false_positives
        );
        std::process::exit(1);
    }
    if !integ.corrected_bit_identical {
        eprintln!("error: a corrected run diverged from the fault-free oracle");
        std::process::exit(1);
    }
    // Overhead is a timing, so only full runs gate on it: smoke shapes are
    // too small for the fraction to be meaningful against CI jitter.
    if !report.smoke && integ.max_overhead_frac > bench_json::OVERHEAD_LIMIT_FRAC {
        eprintln!(
            "error: checksum overhead {:.1}% exceeds the {:.0}% budget",
            integ.max_overhead_frac * 100.0,
            bench_json::OVERHEAD_LIMIT_FRAC * 100.0
        );
        std::process::exit(1);
    }
    // Serial-throughput regressions always warn; like overhead, they only
    // gate full runs (smoke shapes are too noisy), and `--allow-regress`
    // waives the gate for runs on known-slow or loaded machines.
    let regressed = bench_json::regressions(&report);
    for r in &regressed {
        eprintln!("warning: regression: {r}");
    }
    if !report.smoke && !allow_regress && !regressed.is_empty() {
        eprintln!(
            "error: {} case(s) regressed more than {:.0}% vs {baseline}; \
             pass --allow-regress to override",
            regressed.len(),
            (1.0 - bench_json::REGRESS_LIMIT_GAIN) * 100.0
        );
        std::process::exit(1);
    }
}

/// `repro pack [--out PATH] [--budget BYTES] [--verify]` — the offline
/// half of the serving cold start: streaming-encode the deterministic
/// smoke model's weights into an archive-v2 file under a bounded
/// transient-memory budget. With `--verify`, map the archive back, check
/// every plane digest, serve a GEMM off the mapped planes, and re-run the
/// transformer forward pass bit-for-bit against the exact engine.
fn run_pack(args: &[String]) {
    use owlp_core::{GemmEngine, TinyConfig, TinyTransformer};
    use owlp_model::ModelId;

    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map_or("model.owl2", String::as_str);
    let verify = args.iter().any(|a| a == "--verify");
    let budget = match args
        .iter()
        .position(|a| a == "--budget")
        .and_then(|i| args.get(i + 1))
    {
        Some(s) => match owlp_format::archive2::parse_stream_budget(s) {
            Some(b) => b,
            None => {
                eprintln!("error: --budget {s:?} is not a byte count (K/M/G suffixes accepted)");
                std::process::exit(2);
            }
        },
        None => owlp_format::stream_budget_from_env(),
    };

    let cfg = TinyConfig::small();
    let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, SEED);
    let summary = match model.save_archive_with_budget(std::path::Path::new(out), budget) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot pack {out}: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "packed {} tensor{} into {out}: {} bytes, stream budget {} bytes, peak {} bytes",
        summary.tensors,
        if summary.tensors == 1 { "" } else { "s" },
        summary.file_len,
        summary.budget,
        summary.peak_alloc
    );
    if summary.peak_alloc > summary.budget {
        eprintln!(
            "error: streaming encode peaked at {} bytes over its {}-byte budget",
            summary.peak_alloc, summary.budget
        );
        std::process::exit(1);
    }
    if !verify {
        return;
    }

    // Digest-verified load through the serving path, plus one GEMM off
    // the mapped planes.
    let (served, cold) = match owlp_serve::ColdStart::measure(std::path::Path::new(out)) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: cold start failed: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = owlp_serve::ServedWeights::load(std::path::Path::new(out)) {
        eprintln!("error: a plane digest failed verification: {e}");
        std::process::exit(1);
    }
    println!(
        "cold start: {} tensors in {:.6}s (mmap {}), digest scrub ok",
        cold.tensors, cold.load_s, cold.mapped,
    );
    // First sorted name is `layer0/w1`, whose k is the hidden dim.
    let name = served
        .names()
        .into_iter()
        .next()
        .expect("model has tensors");
    let k = cfg.hidden;
    let acts: Vec<owlp_format::Bf16> = (0..4 * k)
        .map(|i| owlp_format::Bf16::from_f32(0.25 + (i % 7) as f32 * 0.125))
        .collect();
    if let Err(e) = served.gemm(&name, &acts, 4) {
        eprintln!("error: the served GEMM failed on {name}: {e}");
        std::process::exit(1);
    }

    // The end-to-end gate: a transformer rebuilt from the mapped archive
    // must equal the model that wrote it, and its OwL-P forward pass must
    // reproduce the exact engine's bits.
    let loaded = match TinyTransformer::from_archive(cfg, std::path::Path::new(out)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot reload {out}: {e}");
            std::process::exit(1);
        }
    };
    if loaded != model {
        eprintln!("error: the reloaded transformer differs from the packed one");
        std::process::exit(1);
    }
    let x: Vec<owlp_format::Bf16> = (0..cfg.seq * cfg.hidden)
        .map(|i| owlp_format::Bf16::from_f32(((i % 13) as f32 - 6.0) * 0.125))
        .collect();
    let owlp = loaded
        .forward(&x, GemmEngine::Owlp)
        .expect("finite forward");
    let exact = loaded
        .forward(&x, GemmEngine::Exact)
        .expect("finite forward");
    let identical = owlp
        .output
        .iter()
        .zip(&exact.output)
        .all(|(a, b)| a.to_bits() == b.to_bits());
    if !identical {
        eprintln!("error: the mapped forward pass diverged from the exact engine");
        std::process::exit(1);
    }
    println!("verify: mapped forward pass bit-identical to the exact engine");
}

/// `repro features [--archive PATH]` — print the detected CPU features,
/// the kernel tier each microkernel entry point dispatches to, and the
/// effective environment overrides, so a bench or CI log can be
/// interpreted without re-deriving what the host supports. With
/// `--archive`, scrub that archive-v2 file's digests and report the
/// verified plane/tile counts.
fn run_features(args: &[String]) {
    use owlp_arith::microkernel;
    let features = microkernel::detected_features();
    let tiers: Vec<&str> = microkernel::available_tiers()
        .iter()
        .map(|t| t.name())
        .collect();
    println!("cpu features : {}", features.join(" "));
    println!("kernel tiers : {}", tiers.join(" "));
    println!("selected tier: {}", microkernel::selected_tier());
    println!("entry points :");
    for (entry, tier) in microkernel::entry_point_tiers() {
        println!("  {entry:<14} {tier}");
    }
    let env_of = |k: &str| std::env::var(k).unwrap_or_else(|_| "(unset)".into());
    println!(
        "{:<13}: {}",
        microkernel::ENV_SIMD,
        env_of(microkernel::ENV_SIMD)
    );
    println!(
        "{:<13}: {}",
        owlp_par::ENV_THREADS,
        env_of(owlp_par::ENV_THREADS)
    );
    println!("threads      : {}", owlp_par::thread_budget());
    println!(
        "{:<13}: {}",
        owlp_format::archive2::STREAM_BUDGET_ENV,
        env_of(owlp_format::archive2::STREAM_BUDGET_ENV)
    );
    println!(
        "stream budget: {} bytes",
        owlp_format::stream_budget_from_env()
    );
    if let Some(path) = args
        .iter()
        .position(|a| a == "--archive")
        .and_then(|i| args.get(i + 1))
    {
        match owlp_format::MappedArchive::open(std::path::Path::new(path)) {
            Ok(archive) => match archive.verify() {
                Ok(report) => println!(
                    "archive      : {path} ok — {} tensors, {} planes, {} tiles verified (mmap {})",
                    report.tensors,
                    report.planes,
                    report.tiles,
                    archive.was_mapped()
                ),
                Err(e) => {
                    eprintln!("error: archive {path} failed its digest scrub: {e}");
                    std::process::exit(1);
                }
            },
            Err(e) => {
                eprintln!("error: cannot open archive {path}: {e}");
                std::process::exit(2);
            }
        }
    }
}

/// `repro serve-faults --json PATH` — write the fault sweep as JSON and
/// enforce the serving-layer integrity gate.
fn run_serve_faults_json(path: &str) {
    let sweep = serve_faults_exp::run();
    // Same `{experiment, result}` envelope as the stdout `--json` path.
    let json = serde_json::to_string_pretty(
        &serde_json::json!({ "experiment": "serve-faults", "result": &sweep }),
    )
    .expect("sweep serializes");
    if let Err(e) = std::fs::write(path, json + "\n") {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {path}");
    let violations = serve_faults_exp::gate(&sweep);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("error: {v}");
        }
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `serve-faults --json PATH` (with a path operand) writes the gated
    // machine-readable sweep; bare `--json` keeps the stdout behaviour.
    // Checked before the global `--json` strip so the path survives.
    if args.first().map(String::as_str) == Some("serve-faults") {
        if let Some(path) = args
            .iter()
            .position(|a| a == "--json")
            .and_then(|i| args.get(i + 1))
            .filter(|p| !p.starts_with('-'))
        {
            run_serve_faults_json(path);
            return;
        }
    }
    let json = args.iter().any(|a| a == "--json");
    args.retain(|a| a != "--json");
    // `bench-json` parses its own flags (including `--smoke`), so only
    // strip the flag for the experiment path.
    if args.first().map(String::as_str) == Some("bench-json") {
        run_bench_json(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("pack") {
        run_pack(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("features") {
        run_features(&args[1..]);
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    args.retain(|a| a != "--smoke");
    let targets: Vec<&str> = match args.first().map(String::as_str) {
        None | Some("all") => EXPERIMENTS.to_vec(),
        Some("--help") | Some("-h") => {
            eprintln!(
                "usage: repro [all|{}] [--json] [--smoke]\n       repro bench-json [--smoke] [--out PATH] [--baseline PATH] [--allow-regress]\n       repro pack [--out PATH] [--budget BYTES] [--verify]\n       repro features [--archive PATH]\n       repro serve-faults --json PATH",
                EXPERIMENTS.join("|")
            );
            return;
        }
        Some(name) => vec![name],
    };
    for (i, name) in targets.iter().enumerate() {
        let rendered = if json {
            run_json(name, smoke)
        } else {
            run_one(name, smoke)
        };
        match rendered {
            Ok(out) => {
                if i > 0 && !json {
                    println!("\n{}\n", "=".repeat(78));
                }
                println!("{out}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("usage: repro [all|{}] [--json]", EXPERIMENTS.join("|"));
                std::process::exit(2);
            }
        }
    }
}
