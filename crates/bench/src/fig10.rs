//! Fig. 10 — `r_a` versus activation outlier paths (a) and `r_w` versus
//! weight outlier paths (b) for the GPT2 and Llama2 families on WikiText-2.

use crate::render::{rval, TextTable};
use crate::{measured_ra, measured_rw};
use owlp_model::{Dataset, ModelId, OpKind};
use serde::{Deserialize, Serialize};

/// Swept path counts.
pub const PATHS: [usize; 4] = [1, 2, 4, 8];

/// Models plotted in Fig. 10.
pub const MODELS: [ModelId; 4] = [
    ModelId::Gpt2Base,
    ModelId::Gpt2Large,
    ModelId::Llama2_7b,
    ModelId::Llama2_70b,
];

/// The Fig. 10 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig10 {
    /// `(model, paths, r_a)` series for panel (a).
    pub r_a: Vec<(ModelId, usize, f64)>,
    /// `(model, paths, r_w)` series for panel (b).
    pub r_w: Vec<(ModelId, usize, f64)>,
}

/// Runs the Fig. 10 sweep.
pub fn run(seed: u64) -> Fig10 {
    let mut r_a = Vec::new();
    let mut r_w = Vec::new();
    for &model in &MODELS {
        let k = model.config().hidden.min(2048);
        for &paths in &PATHS {
            r_a.push((
                model,
                paths,
                measured_ra(
                    model,
                    OpKind::QkvProj,
                    Dataset::WikiText2,
                    256,
                    k,
                    paths,
                    seed,
                ),
            ));
            r_w.push((
                model,
                paths,
                measured_rw(model, OpKind::QkvProj, k, 256, paths, seed + 5),
            ));
        }
    }
    Fig10 { r_a, r_w }
}

/// Renders both panels.
pub fn render(f: &Fig10) -> String {
    let panel = |name: &str, series: &[(ModelId, usize, f64)]| -> String {
        let mut t = TextTable::new(["model", "1 path", "2 paths", "4 paths", "8 paths"]);
        for &model in &MODELS {
            let mut cells = vec![model.name().to_string()];
            for &p in &PATHS {
                let v = series
                    .iter()
                    .find(|(m, pp, _)| *m == model && *pp == p)
                    .map(|(_, _, r)| *r)
                    .unwrap_or(f64::NAN);
                cells.push(rval(v));
            }
            t.row(cells);
        }
        format!("{name}\n{}", t.render())
    };
    format!(
        "Fig. 10 — scheduling overhead vs outlier paths (WikiText-2)\n{}\n{}",
        panel("(a) r_a vs activation outlier paths", &f.r_a),
        panel("(b) r_w vs weight outlier paths", &f.r_w)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_decrease_with_paths() {
        let f = run(crate::SEED);
        for &model in &MODELS {
            let series: Vec<f64> = PATHS
                .iter()
                .map(|&p| {
                    f.r_a
                        .iter()
                        .find(|(m, pp, _)| *m == model && *pp == p)
                        .unwrap()
                        .2
                })
                .collect();
            for w in series.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "{model}: {series:?}");
            }
            // 8 paths all but eliminate the overhead.
            assert!(series[3] < 1.05, "{model}: {}", series[3]);
        }
    }

    #[test]
    fn two_paths_is_the_knee() {
        // The paper picks 4 total paths (2+2): going 1→2 helps much more
        // than 4→8.
        let f = run(crate::SEED);
        for &model in &MODELS {
            let get = |p: usize| {
                f.r_a
                    .iter()
                    .find(|(m, pp, _)| *m == model && *pp == p)
                    .unwrap()
                    .2
            };
            let gain_12 = get(1) - get(2);
            let gain_48 = get(4) - get(8);
            assert!(gain_12 > gain_48, "{model}: {gain_12} vs {gain_48}");
        }
    }
}
