//! Batch-size sweep — supporting analysis for the paper's §VI-C setup.
//!
//! The paper evaluates generation at batch 32 (continuous batching). This
//! sweep shows why the batch size matters: at batch 1 the decode phase is
//! purely bandwidth-bound, so OwL-P's advantage collapses to the
//! compression ratio (~1.4×); by batch 32 the workload re-enters the
//! compute-bound regime where the 3× MAC density dominates.

use crate::render::{ratio, TextTable};
use owlp_core::report::Comparison;
use owlp_core::Accelerator;
use owlp_model::{workload, Dataset, ModelId};
use serde::{Deserialize, Serialize};

/// Swept batch sizes.
pub const BATCHES: [usize; 6] = [1, 4, 8, 16, 32, 64];

/// The sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSweep {
    /// `(batch, speedup, energy_ratio)` per point.
    pub points: Vec<(usize, f64, f64)>,
}

/// Runs the sweep on Llama2-7B generation (256 tokens).
pub fn run() -> BatchSweep {
    let base = Accelerator::baseline();
    let owlp = Accelerator::owlp();
    let points = BATCHES
        .iter()
        .map(|&batch| {
            let wl = workload::generation_workload(ModelId::Llama2_7b, batch, 128, 256);
            let b = base.simulate(&wl, Dataset::WikiText2);
            let o = owlp.simulate(&wl, Dataset::WikiText2);
            let c = Comparison::between(&b, &o);
            (batch, c.speedup, c.energy_ratio)
        })
        .collect();
    BatchSweep { points }
}

/// Renders the sweep.
pub fn render(s: &BatchSweep) -> String {
    let mut t = TextTable::new(["batch", "speedup", "energy savings"]);
    for &(b, sp, en) in &s.points {
        t.row([b.to_string(), ratio(sp), ratio(en)]);
    }
    format!(
        "Batch sweep — Llama2-7B generation (256 tokens)\n\
         (at batch 1 OwL-P hits the bandwidth wall — its gain is capped by\n\
          the fill-overhead-bound baseline vs its own compressed transfers;\n\
          growing the batch re-enters the compute-bound regime where the 3x\n\
          MAC density minus scheduling overhead shows fully)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_grows_with_batch_and_spans_the_two_regimes() {
        let s = run();
        let get = |b: usize| s.points.iter().find(|p| p.0 == b).unwrap().1;
        // Monotone non-decreasing across the sweep.
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 0.02, "{:?}", s.points);
        }
        // Bandwidth-capped floor at small batch...
        assert!((1.5..=2.3).contains(&get(1)), "batch-1 speedup {}", get(1));
        // ...compute-bound ceiling near 3× minus overheads, clearly above
        // the floor.
        assert!(get(64) > 2.6, "batch-64 speedup {}", get(64));
        assert!(get(64) - get(1) > 0.5);
    }

    #[test]
    fn energy_savings_exceed_speedup_at_every_batch() {
        // The per-MAC energy advantage applies even when bandwidth-bound.
        let s = run();
        for &(b, sp, en) in &s.points {
            assert!(en > sp * 0.9, "batch {b}: energy {en} vs speedup {sp}");
        }
    }
}
