//! Table IV — BERT-family `r_a` and `r_w` on SQuAD2 and GLUE.

use crate::render::{rval, TextTable};
use crate::{measured_ra, measured_rw};
use owlp_model::{Dataset, ModelId, OpKind};
use serde::{Deserialize, Serialize};

/// Paper Table IV values `(model, dataset, r_a, r_w)`.
pub const PAPER: [(ModelId, Dataset, f64, f64); 4] = [
    (ModelId::BertBase, Dataset::Squad2, 1.293, 1.048),
    (ModelId::BertBase, Dataset::Glue, 1.306, 1.052),
    (ModelId::BertLarge, Dataset::Squad2, 1.301, 1.049),
    (ModelId::BertLarge, Dataset::Glue, 1.308, 1.052),
];

/// The Table IV result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4 {
    /// `(model, dataset, measured r_a, measured r_w)` rows.
    pub rows: Vec<(ModelId, Dataset, f64, f64)>,
}

/// Runs the Table IV experiment.
pub fn run(seed: u64) -> Table4 {
    let mut rows = Vec::new();
    for &model in &[ModelId::BertBase, ModelId::BertLarge] {
        let k = model.config().hidden;
        for &dataset in &Dataset::BERT_SET {
            let ra = measured_ra(model, OpKind::QkvProj, dataset, 512, k, 2, seed);
            let rw = measured_rw(model, OpKind::QkvProj, k, 256, 2, seed + 3);
            rows.push((model, dataset, ra, rw));
        }
    }
    Table4 { rows }
}

/// Renders the table.
pub fn render(t: &Table4) -> String {
    let mut table = TextTable::new(["model", "dataset", "r_a (paper)", "r_w (paper)"]);
    for &(m, d, ra, rw) in &t.rows {
        let paper = PAPER
            .iter()
            .find(|(pm, pd, _, _)| *pm == m && *pd == d)
            .unwrap();
        table.row([
            m.name().to_string(),
            d.name().to_string(),
            format!("{} ({:.3})", rval(ra), paper.2),
            format!("{} ({:.3})", rval(rw), paper.3),
        ]);
    }
    format!(
        "Table IV — r_a and r_w for the BERT family, measured (paper)\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_in_paper_neighbourhood() {
        let t = run(crate::SEED);
        for &(m, d, ra, rw) in &t.rows {
            let paper = PAPER
                .iter()
                .find(|(pm, pd, _, _)| *pm == m && *pd == d)
                .unwrap();
            assert!(
                (ra - paper.2).abs() < 0.12,
                "{m} {d}: r_a {ra} vs {}",
                paper.2
            );
            assert!(
                (rw - paper.3).abs() < 0.04,
                "{m} {d}: r_w {rw} vs {}",
                paper.3
            );
        }
    }

    #[test]
    fn datasets_barely_move_the_numbers() {
        let t = run(crate::SEED);
        let squad = t
            .rows
            .iter()
            .find(|(m, d, _, _)| *m == ModelId::BertBase && *d == Dataset::Squad2)
            .unwrap();
        let glue = t
            .rows
            .iter()
            .find(|(m, d, _, _)| *m == ModelId::BertBase && *d == Dataset::Glue)
            .unwrap();
        assert!((squad.2 - glue.2).abs() < 0.06);
        // r_w is dataset-independent by construction.
        assert_eq!(squad.3, glue.3);
    }
}
