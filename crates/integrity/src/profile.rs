//! Measured detection profiles: what each armed-detector configuration
//! *actually* catches, per fault site class.
//!
//! The serving layer's SDC model used to flip a coin against a configured
//! "coverage" permille. This module replaces that with measurement: every
//! [`FaultSite`] wire class (plus an accumulator-lane strike) is injected
//! into a real guarded GEMM once per [`IntegrityConfig`], and the
//! resulting detect/localize/correct outcome is recorded. Because every
//! detector is deterministic — parity, CRC, and exact integer checksums
//! have no probabilistic component — one injection per class fully
//! characterizes the configuration.
//!
//! Profiles are memoized per configuration bitmask in a static
//! [`OnceLock`] table: the first scheduler that asks pays one small GEMM
//! sweep (~23 executions of a 6×16×8 problem); everyone after reads a
//! `&'static`.

use owlp_arith::fault::FaultSite;
use owlp_format::decode::DecodedOperand;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

use crate::checked::{Detector, GuardedGemm, IntegrityConfig, Strike};
use crate::workload::synth_tensor;
use owlp_arith::LaneStrike;

/// Measured outcome of one fault site class under one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteProfile {
    /// Which detector fired, if any.
    pub detector: Option<Detector>,
    /// Whether detection localized the damage (bounded repair possible).
    pub localized: bool,
    /// Whether the fault was corrected (repair or re-execution).
    pub corrected: bool,
    /// Whether the delivered output matched the fault-free oracle.
    pub bit_clean: bool,
}

impl SiteProfile {
    /// Whether the class is detected at all under this configuration.
    pub fn detected(&self) -> bool {
        self.detector.is_some()
    }
}

/// Detection outcomes for every fault site class under one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionProfile {
    /// The configuration the profile was measured under.
    pub config: IntegrityConfig,
    /// Outcomes aligned with [`FaultSite::all`] order.
    pub sites: Vec<SiteProfile>,
    /// Outcome of an accumulator-lane strike.
    pub accumulator: SiteProfile,
}

const MAG_BITS: usize = DecodedOperand::MAG_BITS as usize;

/// Dense index of `site` in [`FaultSite::all`] order.
pub fn site_index(site: FaultSite) -> usize {
    match site {
        FaultSite::Significand(b) => b as usize,
        FaultSite::Sign => MAG_BITS,
        FaultSite::ShiftBit => MAG_BITS + 1,
        FaultSite::OutlierTag => MAG_BITS + 2,
        FaultSite::OutlierExp(b) => MAG_BITS + 3 + b as usize,
    }
}

impl DetectionProfile {
    /// Measures the profile by real injection on a fixed small workload.
    pub fn measure(config: IntegrityConfig) -> Self {
        let (m, k, n) = (6, 16, 8);
        let a = synth_tensor(m * k, 97, 9);
        let b = synth_tensor(k * n, 98, 11);
        let mut guarded = GuardedGemm::new(&a, &b, m, k, n).expect("finite profile workload");
        let of_run = |run: crate::checked::GuardedRun| SiteProfile {
            detector: run.detector,
            localized: run.localized,
            corrected: run.corrected(),
            bit_clean: run.bit_clean,
        };
        let sites = FaultSite::all()
            .into_iter()
            .enumerate()
            .map(|(idx, site)| {
                debug_assert_eq!(
                    site_index(site),
                    idx,
                    "profile index must match all() order"
                );
                // A representative normal element on the weight tensor
                // (element k+2 is untagged for the chosen outlier strides);
                // exponent strikes index the outlier side table instead.
                let strike = Strike::from_site(site, true, k + 2, 0);
                of_run(guarded.run(config, Some(strike)))
            })
            .collect();
        let accumulator = of_run(guarded.run(
            config,
            Some(Strike::Lane(LaneStrike {
                i: 1,
                j: 2,
                bit: 30,
            })),
        ));
        DetectionProfile {
            config,
            sites,
            accumulator,
        }
    }

    /// The memoized profile for `config`.
    pub fn shared(config: IntegrityConfig) -> &'static DetectionProfile {
        static PROFILES: [OnceLock<DetectionProfile>; IntegrityConfig::COUNT] =
            [const { OnceLock::new() }; IntegrityConfig::COUNT];
        PROFILES[config.bitmask()].get_or_init(|| DetectionProfile::measure(config))
    }

    /// The measured outcome for one operand fault site class.
    pub fn site(&self, site: FaultSite) -> &SiteProfile {
        &self.sites[site_index(site)]
    }

    /// Fraction of operand site classes detected, in permille (for
    /// reporting — scheduling decisions use the per-site outcomes).
    pub fn coverage_permille(&self) -> u32 {
        if self.sites.is_empty() {
            return 0;
        }
        let detected = self.sites.iter().filter(|s| s.detected()).count();
        (detected * 1000 / self.sites.len()) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_detects_and_corrects_every_class() {
        let p = DetectionProfile::shared(IntegrityConfig::full());
        assert_eq!(p.sites.len(), FaultSite::all().len());
        for (site, s) in FaultSite::all().into_iter().zip(&p.sites) {
            let expect = if site.side_band() {
                Detector::Parity
            } else {
                Detector::PlaneCrc
            };
            assert_eq!(s.detector, Some(expect), "{site:?}");
            assert!(s.localized && s.corrected && s.bit_clean, "{site:?}");
        }
        assert_eq!(p.accumulator.detector, Some(Detector::Abft));
        assert!(p.accumulator.localized && p.accumulator.bit_clean);
        assert_eq!(p.coverage_permille(), 1000);
    }

    #[test]
    fn disarmed_config_detects_nothing() {
        let p = DetectionProfile::shared(IntegrityConfig::off());
        assert!(p.sites.iter().all(|s| s.detector.is_none() && !s.corrected));
        assert_eq!(p.accumulator.detector, None);
        assert_eq!(p.coverage_permille(), 0);
    }

    #[test]
    fn crc_only_still_catches_side_band_storage_faults() {
        let cfg = IntegrityConfig {
            parity: false,
            plane_crc: true,
            abft: false,
        };
        let p = DetectionProfile::shared(cfg);
        for (site, s) in FaultSite::all().into_iter().zip(&p.sites) {
            assert_eq!(s.detector, Some(Detector::PlaneCrc), "{site:?}");
        }
        // But nothing guards the accumulator without ABFT.
        assert_eq!(p.accumulator.detector, None);
    }

    #[test]
    fn shared_profiles_are_memoized() {
        let a = DetectionProfile::shared(IntegrityConfig::full());
        let b = DetectionProfile::shared(IntegrityConfig::full());
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    fn site_index_matches_all_order() {
        for (idx, site) in FaultSite::all().into_iter().enumerate() {
            assert_eq!(site_index(site), idx, "{site:?}");
        }
    }
}
