//! Storage digests for the packed operand planes and microkernel panels.
//!
//! [`OperandDigests`] seals a [`PackedOperands`] at pack time: one CRC32C
//! per metadata plane plus a **per-tile** CRC table over the `sval` plane
//! ([`SVAL_TILE`] elements per tile). Tiling serves two purposes: a
//! mismatch localizes to one tile so the repair is `O(SVAL_TILE)` rather
//! than a full re-decode, and the layout matches the planned streaming
//! weight format (ROADMAP: per-tile checksums on the zero-copy weight
//! stream), so the same table can ride in that container unchanged.
//!
//! Verification runs at *load* boundaries (after `decode_packed`, after a
//! panel pack, after DMA in a real system) — not per GEMM. The per-GEMM
//! detector is the ABFT checksum ([`crate::abft`]), whose cost amortizes
//! against the `O(m·k·n)` kernel.

use crate::crc::{crc32c_bytes, crc32c_i16, crc32c_u16, crc32c_u32};
use owlp_format::{PackedOperands, PackedPanels, PackedPlane};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Elements per `sval` digest tile — re-exported from
/// [`owlp_format::crc`], where the on-disk archive's per-tile CRC tables
/// share the same granule, so a table sealed at pack time verifies the
/// mapped planes unchanged.
pub use owlp_format::crc::SVAL_TILE;

/// A detected integrity violation, typed by the layer that caught it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntegrityError {
    /// A packed plane's CRC32C no longer matches its sealed digest.
    PlaneDigest {
        /// Which plane mismatched.
        plane: PackedPlane,
        /// For the tiled `sval` plane, the damaged tile index.
        tile: Option<usize>,
    },
    /// A microkernel panel data tile no longer matches its sealed digest.
    PanelDigest {
        /// Damaged tile index into the panel data.
        tile: usize,
    },
    /// An element's `{sh, tag, exp}` side-band parity bit is inconsistent.
    SideBandParity {
        /// Element index whose parity check failed.
        index: usize,
    },
    /// Post-GEMM ABFT row/column checksums disagree with the reference.
    ChecksumMismatch {
        /// Number of row sums that mismatched.
        rows: usize,
        /// Number of column sums that mismatched.
        cols: usize,
    },
}

impl std::fmt::Display for IntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntegrityError::PlaneDigest {
                plane,
                tile: Some(tile),
            } => {
                write!(f, "packed {plane:?} plane digest mismatch in tile {tile}")
            }
            IntegrityError::PlaneDigest { plane, tile: None } => {
                write!(f, "packed {plane:?} plane digest mismatch")
            }
            IntegrityError::PanelDigest { tile } => {
                write!(f, "panel data digest mismatch in tile {tile}")
            }
            IntegrityError::SideBandParity { index } => {
                write!(f, "side-band parity violation at element {index}")
            }
            IntegrityError::ChecksumMismatch { rows, cols } => {
                write!(
                    f,
                    "abft checksum mismatch across {rows} row sum(s) and {cols} column sum(s)"
                )
            }
        }
    }
}

impl std::error::Error for IntegrityError {}

/// The byte range of `sval` tile `tile` in a plane of `len` elements.
pub fn sval_tile_range(tile: usize, len: usize) -> Range<usize> {
    let start = tile * SVAL_TILE;
    start..len.min(start + SVAL_TILE)
}

/// Sealed digests of one [`PackedOperands`], computed at pack time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OperandDigests {
    /// CRC32C of the `mag` plane.
    pub mag: u32,
    /// CRC32C of the `meta` plane.
    pub meta: u32,
    /// Per-[`SVAL_TILE`] CRC32C table over the `sval` plane.
    pub sval_tiles: Vec<u32>,
    /// CRC32C of the outlier position side table.
    pub outlier_pos: u32,
    /// CRC32C of the outlier exponent side table.
    pub outlier_exp: u32,
}

impl OperandDigests {
    /// Digests `packed` as currently stored.
    pub fn of(packed: &PackedOperands) -> Self {
        OperandDigests {
            mag: crc32c_u16(packed.mags()),
            meta: crc32c_bytes(packed.metas()),
            sval_tiles: packed.svals().chunks(SVAL_TILE).map(crc32c_i16).collect(),
            outlier_pos: crc32c_u32(packed.outlier_positions()),
            outlier_exp: crc32c_bytes(packed.outlier_exps()),
        }
    }

    /// Re-digests `packed` and compares against the sealed values.
    ///
    /// Planes are checked metadata-first (`mag`, `meta`, side tables, then
    /// the `sval` tiles), so an `sval` tile report implies the `mag`/`meta`
    /// planes it would be rebuilt from verified clean — the precondition
    /// for an in-place [`PackedOperands::rebuild_sval_range`] repair.
    ///
    /// # Errors
    ///
    /// The first [`IntegrityError::PlaneDigest`] in check order.
    pub fn verify(&self, packed: &PackedOperands) -> Result<(), IntegrityError> {
        if crc32c_u16(packed.mags()) != self.mag {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::Mag,
                tile: None,
            });
        }
        if crc32c_bytes(packed.metas()) != self.meta {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::Meta,
                tile: None,
            });
        }
        if crc32c_u32(packed.outlier_positions()) != self.outlier_pos {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::OutlierPos,
                tile: None,
            });
        }
        if crc32c_bytes(packed.outlier_exps()) != self.outlier_exp {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::OutlierExp,
                tile: None,
            });
        }
        for (tile, chunk) in packed.svals().chunks(SVAL_TILE).enumerate() {
            if self.sval_tiles.get(tile).copied() != Some(crc32c_i16(chunk)) {
                return Err(IntegrityError::PlaneDigest {
                    plane: PackedPlane::Sval,
                    tile: Some(tile),
                });
            }
        }
        if self.sval_tiles.len() != packed.svals().len().div_ceil(SVAL_TILE) {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::Sval,
                tile: None,
            });
        }
        Ok(())
    }

    /// Verifies the planes the GEMM fast path *reads*: the `sval` tiles,
    /// the `meta` side-band, and both outlier side tables — everything
    /// whose corruption can reach an output value. The `mag` plane is a
    /// repair source, not a compute input: it is covered by [`verify`] at
    /// repair and scrub boundaries, where its digest gates the in-place
    /// `sval` rebuild. This is the check the per-GEMM overhead budget
    /// prices; [`verify`] is the full storage scrub.
    ///
    /// # Errors
    ///
    /// The first [`IntegrityError::PlaneDigest`] in check order (`meta`,
    /// side tables, then the `sval` tiles).
    pub fn verify_consumed(&self, packed: &PackedOperands) -> Result<(), IntegrityError> {
        if crc32c_bytes(packed.metas()) != self.meta {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::Meta,
                tile: None,
            });
        }
        if crc32c_u32(packed.outlier_positions()) != self.outlier_pos {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::OutlierPos,
                tile: None,
            });
        }
        if crc32c_bytes(packed.outlier_exps()) != self.outlier_exp {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::OutlierExp,
                tile: None,
            });
        }
        for (tile, chunk) in packed.svals().chunks(SVAL_TILE).enumerate() {
            if self.sval_tiles.get(tile).copied() != Some(crc32c_i16(chunk)) {
                return Err(IntegrityError::PlaneDigest {
                    plane: PackedPlane::Sval,
                    tile: Some(tile),
                });
            }
        }
        if self.sval_tiles.len() != packed.svals().len().div_ceil(SVAL_TILE) {
            return Err(IntegrityError::PlaneDigest {
                plane: PackedPlane::Sval,
                tile: None,
            });
        }
        Ok(())
    }
}

/// Sealed per-tile digests of one [`PackedPanels`] data block.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PanelDigests {
    /// Per-[`SVAL_TILE`] CRC32C table over the panel-major `i16` data.
    pub tiles: Vec<u32>,
}

impl PanelDigests {
    /// Digests `panels` as currently stored.
    pub fn of(panels: &PackedPanels) -> Self {
        PanelDigests {
            tiles: panels.data().chunks(SVAL_TILE).map(crc32c_i16).collect(),
        }
    }

    /// Re-digests `panels` and compares against the sealed values.
    ///
    /// # Errors
    ///
    /// [`IntegrityError::PanelDigest`] naming the first damaged tile.
    pub fn verify(&self, panels: &PackedPanels) -> Result<(), IntegrityError> {
        for (tile, chunk) in panels.data().chunks(SVAL_TILE).enumerate() {
            if self.tiles.get(tile).copied() != Some(crc32c_i16(chunk)) {
                return Err(IntegrityError::PanelDigest { tile });
            }
        }
        if self.tiles.len() != panels.data().len().div_ceil(SVAL_TILE) {
            return Err(IntegrityError::PanelDigest {
                tile: self.tiles.len().min(panels.data().len() / SVAL_TILE),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synth_tensor;
    use owlp_format::encode_tensor;

    fn packed_fixture() -> PackedOperands {
        let t = synth_tensor(3 * SVAL_TILE + 17, 11, 7);
        encode_tensor(&t, None).expect("finite").decode_packed()
    }

    #[test]
    fn clean_operands_verify() {
        let packed = packed_fixture();
        let digests = OperandDigests::of(&packed);
        assert_eq!(digests.sval_tiles.len(), 4);
        assert!(digests.verify(&packed).is_ok());
    }

    #[test]
    fn sval_strike_localizes_to_its_tile_and_repairs_in_place() {
        let mut packed = packed_fixture();
        let digests = OperandDigests::of(&packed);
        let index = 2 * SVAL_TILE + 5;
        packed.flip_bit(PackedPlane::Sval, index, 9);
        let err = digests.verify(&packed).expect_err("must detect");
        assert_eq!(
            err,
            IntegrityError::PlaneDigest {
                plane: PackedPlane::Sval,
                tile: Some(2),
            }
        );
        // Repair precondition holds (mag/meta clean), so rebuild the tile.
        packed.rebuild_sval_range(sval_tile_range(2, packed.len()));
        assert!(digests.verify(&packed).is_ok());
    }

    #[test]
    fn every_plane_strike_is_detected() {
        let cases = [
            (PackedPlane::Mag, 7usize, 3u32),
            (PackedPlane::Meta, 40, 0),
            (PackedPlane::Sval, 1, 14),
            (PackedPlane::OutlierPos, 0, 2),
            (PackedPlane::OutlierExp, 0, 6),
        ];
        for (plane, index, bit) in cases {
            let mut packed = packed_fixture();
            let digests = OperandDigests::of(&packed);
            packed.flip_bit(plane, index, bit);
            let err = digests.verify(&packed).expect_err("must detect");
            match err {
                IntegrityError::PlaneDigest { plane: p, .. } => assert_eq!(p, plane),
                other => panic!("unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn panel_strike_is_detected_and_involution_restores() {
        let t = synth_tensor(16 * 12, 5, 9);
        let packed = encode_tensor(&t, None).expect("finite").decode_packed();
        let mut panels = packed.pack_panels(16, 12);
        let digests = PanelDigests::of(&panels);
        assert!(digests.verify(&panels).is_ok());
        panels.flip_bit(33, 12);
        assert_eq!(
            digests.verify(&panels),
            Err(IntegrityError::PanelDigest { tile: 0 })
        );
        panels.flip_bit(33, 12);
        assert!(digests.verify(&panels).is_ok());
    }

    #[test]
    fn errors_render_in_lowercase_prose() {
        let err = IntegrityError::PlaneDigest {
            plane: PackedPlane::Sval,
            tile: Some(3),
        };
        assert_eq!(
            err.to_string(),
            "packed Sval plane digest mismatch in tile 3"
        );
        let err = IntegrityError::ChecksumMismatch { rows: 1, cols: 1 };
        assert!(err.to_string().starts_with("abft checksum mismatch"));
    }
}
