//! CRC32C — re-exported from `owlp-format`.
//!
//! The implementation moved to [`owlp_format::crc`] when the on-disk
//! archive (`owlp_format::archive2`) started sealing the same per-plane /
//! per-tile digests into its index at pack time: the format layer is the
//! digest *producer*, this crate the runtime *verifier*, and the crate
//! graph only permits that dependency direction. Everything this module
//! ever exported is re-exported here unchanged, so
//! `owlp_integrity::crc::*` call sites (and the crate-root re-exports)
//! keep working.

pub use owlp_format::crc::{
    crc32c, crc32c_bytes, crc32c_i16, crc32c_u16, crc32c_u32, Crc32cHasher,
};
