//! ABFT checksum algebra for the OwL-P packed GEMM.
//!
//! The drive loop collects *observed* row/column sums of the raw
//! shared-frame accumulator words ([`AbftSums`], via
//! `owlp_arith::gemm::owlp_gemm_packed_abft`). This module computes the
//! *reference* side from the packed `sval` planes alone:
//!
//! ```text
//! rows[i] = Σ_k a_sval[i,k] · (Σ_j b_sval[k,j])      — O(k·(m+n)) mults
//! cols[j] = Σ_k (Σ_i a_sval[i,k]) · b_sval[k,j]
//! ```
//!
//! Both sides are sums of the *same* integer products, merely regrouped,
//! so over `i128` they agree **exactly** on a fault-free run — no epsilon,
//! no false positives. Outlier corrections deliberately bypass the raw
//! words on the observed side and the `sval` algebra never sees them on
//! the reference side, so tagged elements cancel identically.
//!
//! A single accumulator upset of `±2^bit` at element `(i, j)` shifts
//! exactly `rows[i]` and `cols[j]` by that amount: the mismatch pattern
//! localizes the element, and [`recompute_element`] repairs it with one
//! `O(k)` PE-column pass that is bit-identical to the fast path.

use owlp_arith::column::PeColumn;
use owlp_arith::pe::PeConfig;
use owlp_arith::AbftSums;
use owlp_format::decode::DecodedOperand;
use owlp_format::PackedOperands;

use crate::digest::IntegrityError;

/// The reference checksum vectors of an `m×k·k×n` packed GEMM, computed
/// independently of the drive loop from the `sval` planes.
pub fn reference_sums(
    packed_a: &PackedOperands,
    packed_b: &PackedOperands,
    m: usize,
    k: usize,
    n: usize,
) -> AbftSums {
    let a = packed_a.svals();
    let b = packed_b.svals();
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    // Depth-wise marginals first: bsum[kk] = Σ_j b[kk,j], asum[kk] = Σ_i a[i,kk].
    // This runs on every checked GEMM, so it is priced against the ≤5%
    // overhead budget. Fast path: with m, n ≤ 2^15 both marginals fit an
    // `i32` (|marginal| ≤ 2^15·2^15 = 2^30), every product is one widening
    // 32×32→64 multiply the autovectorizer can lane, and k ≤ 2^17 keeps
    // the `i64` inner sums under 2^62 — overflow-free. Every realizable
    // workload takes this branch; the widening `i128` fallback keeps the
    // function total. The `bsum` marginal and the `cols` vector fall out
    // of the same sweep over the B plane, so B is read once, not twice.
    if m <= 1 << 15 && n <= 1 << 15 && k <= 1 << 17 {
        let mut asum = vec![0i32; k];
        for row in a.chunks_exact(k) {
            for (acc, &v) in asum.iter_mut().zip(row) {
                *acc += i32::from(v);
            }
        }
        let mut bsum = vec![0i32; k];
        let mut cols = vec![0i64; n];
        for (kk, row) in b.chunks_exact(n).enumerate() {
            let s = i64::from(asum[kk]);
            let mut rsum = 0i32;
            for (acc, &v) in cols.iter_mut().zip(row) {
                rsum += i32::from(v);
                *acc += s * i64::from(v);
            }
            bsum[kk] = rsum;
        }
        let rows = a
            .chunks_exact(k)
            .map(|row| {
                let s: i64 = row
                    .iter()
                    .zip(&bsum)
                    .map(|(&v, &s)| i64::from(v) * i64::from(s))
                    .sum();
                i128::from(s)
            })
            .collect();
        return AbftSums {
            rows,
            cols: cols.into_iter().map(i128::from).collect(),
        };
    }
    let mut asum = vec![0i64; k];
    for row in a.chunks_exact(k) {
        for (acc, &v) in asum.iter_mut().zip(row) {
            *acc += i64::from(v);
        }
    }
    let mut bsum = vec![0i64; k];
    for (kk, row) in b.chunks_exact(n).enumerate() {
        bsum[kk] = row.iter().map(|&v| i64::from(v)).sum();
    }
    let rows = a
        .chunks_exact(k)
        .map(|row| {
            row.iter()
                .zip(&bsum)
                .map(|(&v, &s)| i128::from(v) * i128::from(s))
                .sum()
        })
        .collect();
    let mut cols = vec![0i128; n];
    for (kk, row) in b.chunks_exact(n).enumerate() {
        let s = i128::from(asum[kk]);
        for (acc, &v) in cols.iter_mut().zip(row) {
            *acc += s * i128::from(v);
        }
    }
    AbftSums { rows, cols }
}

/// Indices where `observed` and `reference` disagree, `(rows, cols)`.
pub fn mismatches(observed: &AbftSums, reference: &AbftSums) -> (Vec<usize>, Vec<usize>) {
    let rows = observed
        .rows
        .iter()
        .zip(&reference.rows)
        .enumerate()
        .filter_map(|(i, (o, r))| (o != r).then_some(i))
        .collect();
    let cols = observed
        .cols
        .iter()
        .zip(&reference.cols)
        .enumerate()
        .filter_map(|(j, (o, r))| (o != r).then_some(j))
        .collect();
    (rows, cols)
}

/// Verifies the checksums, reporting the mismatch shape on failure.
///
/// # Errors
///
/// [`IntegrityError::ChecksumMismatch`] with the mismatching row/column
/// counts.
pub fn verify(observed: &AbftSums, reference: &AbftSums) -> Result<(), IntegrityError> {
    let (rows, cols) = mismatches(observed, reference);
    if rows.is_empty() && cols.is_empty() {
        Ok(())
    } else {
        Err(IntegrityError::ChecksumMismatch {
            rows: rows.len(),
            cols: cols.len(),
        })
    }
}

/// Recomputes output element `(i, j)` with one PE-column pass over the
/// packed operands — the localized ABFT repair. Bit-identical to the fast
/// path (the crate-level theorem: every exact-align datapath computes the
/// same correctly rounded FP32 value).
#[allow(clippy::too_many_arguments)]
pub fn recompute_element(
    packed_a: &PackedOperands,
    packed_b: &PackedOperands,
    shared_a: u8,
    shared_w: u8,
    k: usize,
    n: usize,
    i: usize,
    j: usize,
) -> f32 {
    let acts: Vec<DecodedOperand> = (0..k).map(|kk| packed_a.get(i * k + kk)).collect();
    let wts: Vec<DecodedOperand> = (0..k).map(|kk| packed_b.get(kk * n + j)).collect();
    let rows = k.div_ceil(PeConfig::PAPER.lanes).max(1);
    PeColumn::new(PeConfig::PAPER, rows)
        .compute_unchecked(&acts, &wts, shared_a, shared_w)
        .value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synth_tensor;
    use owlp_arith::{owlp_gemm_packed_abft, LaneStrike};
    use owlp_format::encode_tensor;

    #[test]
    fn reference_matches_the_drive_loop_and_repair_is_bit_identical() {
        let (m, k, n) = (5, 16, 7);
        let enc_a = encode_tensor(&synth_tensor(m * k, 21, 9), None).expect("finite");
        let enc_b = encode_tensor(&synth_tensor(k * n, 22, 11), None).expect("finite");
        let packed_a = enc_a.decode_packed();
        let packed_b = enc_b.decode_packed();
        let (clean, observed) =
            owlp_gemm_packed_abft(&packed_a, &packed_b, None, m, k, n, None).expect("gemm");
        let reference = reference_sums(&packed_a, &packed_b, m, k, n);
        assert!(verify(&observed, &reference).is_ok());

        let strike = LaneStrike {
            i: 3,
            j: 2,
            bit: 27,
        };
        let (_struck, observed) =
            owlp_gemm_packed_abft(&packed_a, &packed_b, None, m, k, n, Some(strike)).expect("gemm");
        assert_eq!(mismatches(&observed, &reference), (vec![3], vec![2]));
        assert_eq!(
            verify(&observed, &reference),
            Err(IntegrityError::ChecksumMismatch { rows: 1, cols: 1 })
        );
        let repaired = recompute_element(
            &packed_a,
            &packed_b,
            clean.shared_a,
            clean.shared_w,
            k,
            n,
            3,
            2,
        );
        assert_eq!(repaired.to_bits(), clean.output[3 * n + 2].to_bits());
    }
}
