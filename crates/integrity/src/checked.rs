//! The guarded GEMM: all three detectors threaded around one execution,
//! with sanctioned fault injection and the full escalation ladder
//! *detect → localize → repair → re-execute*.
//!
//! [`GuardedGemm`] owns a durable copy of the encoded tensors (the
//! "golden storage" a real system would hold in ECC DRAM or re-fetch) and
//! the working packed planes a strike actually damages. One [`Strike`]
//! models one single-bit upset:
//!
//! * operand-plane strikes flip a real bit of a packed word, mapped from
//!   the [`FaultSite`] wire classes of the sensitivity analysis
//!   ([`Strike::from_site`]);
//! * accumulator strikes flip a raw [`owlp_arith::WindowAcc`] bit inside
//!   the drive loop ([`LaneStrike`]).
//!
//! Detection outcomes come from the checksums themselves — side-band
//! parity and plane digests before the GEMM, ABFT after — never from a
//! coin flip. Repairs are localized when the detector localizes
//! (tile rebuild, element recompute) and escalate to a full re-execution
//! when it does not.

use owlp_arith::fault::FaultSite;
use owlp_arith::gemm::{owlp_gemm_packed, owlp_gemm_packed_abft};
use owlp_arith::{AlignUnit, ArithError, LaneStrike, OwlpGemmOutput, PeConfig};
use owlp_format::decode::DecodedOperand;
use owlp_format::{encode_tensor, Bf16, EncodedTensor, PackedOperands, PackedPanels, PackedPlane};
use serde::{Deserialize, Serialize};

use crate::abft;
use crate::digest::{sval_tile_range, IntegrityError, OperandDigests};

/// Which detectors are armed. The serving layer carries this in its
/// recovery policy; the bitmask indexes the memoized detection profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IntegrityConfig {
    /// Side-band parity over `{sh, tag, exp}` (load-time scan).
    pub parity: bool,
    /// CRC32C plane/tile digests (load-time verification).
    pub plane_crc: bool,
    /// Post-GEMM ABFT row/column checksums.
    pub abft: bool,
}

impl IntegrityConfig {
    /// Number of distinct configurations (for profile memoization).
    pub const COUNT: usize = 8;

    /// All detectors armed.
    pub const fn full() -> Self {
        IntegrityConfig {
            parity: true,
            plane_crc: true,
            abft: true,
        }
    }

    /// No detectors — the unprotected baseline.
    pub const fn off() -> Self {
        IntegrityConfig {
            parity: false,
            plane_crc: false,
            abft: false,
        }
    }

    /// Dense index in `0..Self::COUNT`.
    pub const fn bitmask(self) -> usize {
        self.parity as usize | (self.plane_crc as usize) << 1 | (self.abft as usize) << 2
    }

    /// Inverse of [`IntegrityConfig::bitmask`].
    pub const fn from_bitmask(mask: usize) -> Self {
        IntegrityConfig {
            parity: mask & 1 != 0,
            plane_crc: mask & 2 != 0,
            abft: mask & 4 != 0,
        }
    }
}

impl Default for IntegrityConfig {
    /// Full protection — matching the paper-grade serving configuration.
    fn default() -> Self {
        IntegrityConfig::full()
    }
}

/// Which checksum layer caught a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Detector {
    /// Load-time side-band parity scan.
    Parity,
    /// Load-time CRC32C plane/tile digest verification.
    PlaneCrc,
    /// Post-GEMM ABFT checksum comparison.
    Abft,
}

/// One sanctioned single-bit upset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strike {
    /// Flip a bit of one packed plane word of the activation tensor.
    OperandA {
        /// Damaged plane.
        plane: PackedPlane,
        /// Word index within the plane.
        index: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Flip a bit of one packed plane word of the weight tensor.
    OperandB {
        /// Damaged plane.
        plane: PackedPlane,
        /// Word index within the plane.
        index: usize,
        /// Bit position within the word.
        bit: u32,
    },
    /// Flip a raw accumulator bit of one output element mid-GEMM.
    Lane(LaneStrike),
}

/// The `sval` bit that carries the operand's sign after folding.
const SVAL_SIGN_BIT: u32 = 15;

impl Strike {
    /// Maps a [`FaultSite`] wire class onto the packed word bit that
    /// stores it: significand bits and the sign live in the folded `sval`
    /// data word, the shift bit and outlier tag in the `meta` side-band
    /// byte, and outlier exponent bits in the exponent side table (where
    /// `slot` indexes the table rather than the element grid).
    pub fn from_site(site: FaultSite, on_b: bool, element: usize, slot: usize) -> Strike {
        let (plane, index, bit) = match site {
            FaultSite::Significand(b) => (PackedPlane::Sval, element, u32::from(b)),
            FaultSite::Sign => (PackedPlane::Sval, element, SVAL_SIGN_BIT),
            FaultSite::ShiftBit => (PackedPlane::Meta, element, 1),
            FaultSite::OutlierTag => (PackedPlane::Meta, element, 2),
            FaultSite::OutlierExp(b) => (PackedPlane::OutlierExp, slot, u32::from(b)),
        };
        if on_b {
            Strike::OperandB { plane, index, bit }
        } else {
            Strike::OperandA { plane, index, bit }
        }
    }
}

/// Outcome of one guarded execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedRun {
    /// The delivered `m×n` FP32 output.
    pub output: Vec<f32>,
    /// The first detector that fired, if any.
    pub detector: Option<Detector>,
    /// Whether detection localized the damage (element, tile, or plane) —
    /// the precondition for a bounded repair instead of re-execution.
    pub localized: bool,
    /// Bounded repairs performed (tiles rebuilt, elements recomputed,
    /// planes re-decoded from durable storage).
    pub repairs: usize,
    /// Whether the ladder escalated to a full re-execution.
    pub reexecuted: bool,
    /// Whether the delivered output is bit-identical to the fault-free
    /// oracle (`false` means the fault *escaped* or the repair failed).
    pub bit_clean: bool,
}

impl GuardedRun {
    /// Whether a detected fault was also corrected (repair or re-run).
    pub fn corrected(&self) -> bool {
        self.detector.is_some() && (self.repairs > 0 || self.reexecuted)
    }
}

/// A GEMM execution harness with durable encoded tensors, sealed digests,
/// a fault-free oracle, and working packed planes strikes can damage.
#[derive(Debug, Clone)]
pub struct GuardedGemm {
    enc_a: EncodedTensor,
    enc_b: EncodedTensor,
    packed_a: PackedOperands,
    packed_b: PackedOperands,
    pristine_a: PackedOperands,
    pristine_b: PackedOperands,
    digests_a: OperandDigests,
    digests_b: OperandDigests,
    /// Microkernel weight panels memoised from the pristine `packed_b`, as
    /// `PreparedTensor::with_shape` does in production. Only the pristine
    /// paths ([`Self::checked_run`] and the oracle) may use these:
    /// [`Self::run`] packs panels per call so strikes on the working `B`
    /// planes reach the GEMM.
    panels: PackedPanels,
    oracle: Vec<f32>,
    m: usize,
    k: usize,
    n: usize,
}

impl GuardedGemm {
    /// Encodes, packs, seals, and computes the fault-free oracle.
    ///
    /// # Errors
    ///
    /// As `owlp_gemm` — non-finite inputs or shape mismatches.
    pub fn new(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Result<Self, ArithError> {
        let enc_a = encode_tensor(a, None)?;
        let enc_b = encode_tensor(b, None)?;
        let packed_a = enc_a.decode_packed();
        let packed_b = enc_b.decode_packed();
        let panels = packed_b.pack_panels(k, n);
        let oracle = owlp_gemm_packed(
            &packed_a,
            &packed_b,
            Some(&panels),
            m,
            k,
            n,
            PeConfig::PAPER,
            AlignUnit::Exact,
        )?
        .output;
        Ok(GuardedGemm {
            digests_a: OperandDigests::of(&packed_a),
            digests_b: OperandDigests::of(&packed_b),
            panels,
            pristine_a: packed_a.clone(),
            pristine_b: packed_b.clone(),
            packed_a,
            packed_b,
            enc_a,
            enc_b,
            oracle,
            m,
            k,
            n,
        })
    }

    /// The fault-free reference output.
    pub fn oracle(&self) -> &[f32] {
        &self.oracle
    }

    /// `(m, k, n)`.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.m, self.k, self.n)
    }

    /// Length of `plane` on the chosen tensor — the valid strike index
    /// range for [`Strike::from_site`].
    pub fn plane_len(&self, on_b: bool, plane: PackedPlane) -> usize {
        if on_b {
            self.pristine_b.plane_len(plane)
        } else {
            self.pristine_a.plane_len(plane)
        }
    }

    /// One guarded execution: apply `strike` (if any) to the working
    /// state, run the armed detectors around the GEMM, repair what they
    /// localize, and restore pristine working planes for the next run.
    pub fn run(&mut self, cfg: IntegrityConfig, strike: Option<Strike>) -> GuardedRun {
        let mut lane_strike = None;
        match strike {
            Some(Strike::OperandA { plane, index, bit }) => {
                self.packed_a.flip_bit(plane, index, bit);
            }
            Some(Strike::OperandB { plane, index, bit }) => {
                self.packed_b.flip_bit(plane, index, bit);
            }
            Some(Strike::Lane(s)) => lane_strike = Some(s),
            None => {}
        }

        let mut detector = None;
        let mut localized = false;
        let mut repairs = 0usize;

        // Load-time side-band parity scan: catches latent meta/exp
        // corruption before any consumer re-derives state from it. Repair
        // is a re-decode from the durable encoded tensor.
        if cfg.parity {
            if self.packed_a.parity_scan().is_some() {
                detector = Some(Detector::Parity);
                localized = true;
                self.enc_a.decode_packed_into(&mut self.packed_a);
                repairs += 1;
            } else if self.packed_b.parity_scan().is_some() {
                detector = Some(Detector::Parity);
                localized = true;
                self.enc_b.decode_packed_into(&mut self.packed_b);
                repairs += 1;
            }
        }

        // Load-time plane digests: catch data-plane corruption parity does
        // not cover. An sval tile hit is repaired in place (mag/meta
        // verified clean first — see OperandDigests::verify); anything
        // else re-decodes the whole tensor from durable storage.
        if cfg.plane_crc && detector.is_none() {
            for side in [false, true] {
                let (digests, packed, enc) = if side {
                    (&self.digests_b, &mut self.packed_b, &self.enc_b)
                } else {
                    (&self.digests_a, &mut self.packed_a, &self.enc_a)
                };
                if let Err(err) = digests.verify(packed) {
                    detector = Some(Detector::PlaneCrc);
                    localized = true;
                    repairs += 1;
                    match err {
                        IntegrityError::PlaneDigest {
                            plane: PackedPlane::Sval,
                            tile: Some(tile),
                        } => packed.rebuild_sval_range(sval_tile_range(tile, packed.len())),
                        _ => enc.decode_packed_into(packed),
                    }
                    debug_assert!(
                        digests.verify(packed).is_ok(),
                        "repair must restore digests"
                    );
                    break;
                }
            }
        }

        // The GEMM itself, with ABFT collection when armed (or when a lane
        // strike must land — collection is how the strike hook reaches the
        // accumulator; verification stays off unless cfg.abft).
        let mut out;
        let mut reexecuted = false;
        if cfg.abft || lane_strike.is_some() {
            let (result, observed) = owlp_gemm_packed_abft(
                &self.packed_a,
                &self.packed_b,
                None,
                self.m,
                self.k,
                self.n,
                lane_strike,
            )
            .expect("guarded operands stay finite");
            out = result;
            if cfg.abft {
                let reference =
                    abft::reference_sums(&self.packed_a, &self.packed_b, self.m, self.k, self.n);
                let (bad_rows, bad_cols) = abft::mismatches(&observed, &reference);
                if !bad_rows.is_empty() || !bad_cols.is_empty() {
                    detector = detector.or(Some(Detector::Abft));
                    if bad_rows.len() == 1 && bad_cols.len() == 1 {
                        // Single-strike signature: recompute one element.
                        localized = true;
                        out.output[bad_rows[0] * self.n + bad_cols[0]] = abft::recompute_element(
                            &self.packed_a,
                            &self.packed_b,
                            out.shared_a,
                            out.shared_w,
                            self.k,
                            self.n,
                            bad_rows[0],
                            bad_cols[0],
                        );
                        repairs += 1;
                    } else {
                        // Ambiguous pattern: escalate to re-execution (the
                        // transient is gone on the retry).
                        out = self.clean_rerun();
                        reexecuted = true;
                    }
                }
            }
        } else {
            out = self.clean_rerun();
        }

        // Restore pristine working planes so the harness is reusable.
        self.packed_a.clone_from(&self.pristine_a);
        self.packed_b.clone_from(&self.pristine_b);

        let bit_clean = out
            .output
            .iter()
            .zip(&self.oracle)
            .all(|(x, y)| x.to_bits() == y.to_bits());
        GuardedRun {
            output: out.output,
            detector,
            localized,
            repairs,
            reexecuted,
            bit_clean,
        }
    }

    /// Non-mutating checked execution on the pristine state — the
    /// production call shape the bench overhead measurement times: verify
    /// storage digests and parity, run the GEMM with ABFT collection, and
    /// verify the checksums.
    ///
    /// # Errors
    ///
    /// The first [`IntegrityError`] an armed detector raises.
    pub fn checked_run(&self, cfg: IntegrityConfig) -> Result<OwlpGemmOutput, IntegrityError> {
        if cfg.parity {
            if let Some(index) = self.packed_a.parity_scan() {
                return Err(IntegrityError::SideBandParity { index });
            }
            if let Some(index) = self.packed_b.parity_scan() {
                return Err(IntegrityError::SideBandParity { index });
            }
        }
        if cfg.plane_crc {
            // The per-GEMM boundary verifies the planes the kernel reads;
            // the mag plane (repair source only) is scrubbed by the full
            // `verify` in the detection/repair ladder of [`Self::run`].
            self.digests_a.verify_consumed(&self.packed_a)?;
            self.digests_b.verify_consumed(&self.packed_b)?;
        }
        if cfg.abft {
            // Pristine-state contract: the working planes equal the sealed
            // ones here, so the memoised panels are the production shape.
            let (out, observed) = owlp_gemm_packed_abft(
                &self.packed_a,
                &self.packed_b,
                Some(&self.panels),
                self.m,
                self.k,
                self.n,
                None,
            )
            .expect("guarded operands stay finite");
            let reference =
                abft::reference_sums(&self.packed_a, &self.packed_b, self.m, self.k, self.n);
            abft::verify(&observed, &reference)?;
            Ok(out)
        } else {
            Ok(self.clean_rerun())
        }
    }

    fn clean_rerun(&self) -> OwlpGemmOutput {
        owlp_gemm_packed(
            &self.packed_a,
            &self.packed_b,
            None,
            self.m,
            self.k,
            self.n,
            PeConfig::PAPER,
            AlignUnit::Exact,
        )
        .expect("guarded operands stay finite")
    }

    /// The working packed planes, `(packed_a, packed_b)`. Overhead timings
    /// drive the *unguarded* kernel through these same references so plain
    /// and checked runs share one copy of the operands — as production
    /// would — instead of the plain twin dragging a duplicate working set
    /// through the cache.
    pub fn working(&self) -> (&PackedOperands, &PackedOperands) {
        (&self.packed_a, &self.packed_b)
    }

    /// The microkernel weight panels memoised from the pristine `B`
    /// planes — valid for any pristine-state run, alongside
    /// [`Self::working`].
    pub fn panels(&self) -> &PackedPanels {
        &self.panels
    }

    /// One decoded operand from the working activation/weight planes (for
    /// diagnostics and tests).
    pub fn operand(&self, on_b: bool, i: usize) -> DecodedOperand {
        if on_b {
            self.packed_b.get(i)
        } else {
            self.packed_a.get(i)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::synth_tensor;

    fn harness() -> GuardedGemm {
        let (m, k, n) = (6, 16, 8);
        let a = synth_tensor(m * k, 31, 9);
        let b = synth_tensor(k * n, 32, 11);
        GuardedGemm::new(&a, &b, m, k, n).expect("finite workload")
    }

    #[test]
    fn clean_runs_raise_no_detector_under_any_config() {
        let mut g = harness();
        for mask in 0..IntegrityConfig::COUNT {
            let cfg = IntegrityConfig::from_bitmask(mask);
            let run = g.run(cfg, None);
            assert_eq!(run.detector, None, "false positive under {cfg:?}");
            assert!(run.bit_clean, "clean run must match the oracle ({cfg:?})");
            assert!(g.checked_run(cfg).is_ok());
        }
    }

    #[test]
    fn sval_strike_is_caught_by_crc_and_repaired_bit_identically() {
        let mut g = harness();
        let strike = Strike::from_site(FaultSite::Significand(6), true, 37, 0);
        let run = g.run(IntegrityConfig::full(), Some(strike));
        assert_eq!(run.detector, Some(Detector::PlaneCrc));
        assert!(run.localized && run.corrected() && run.bit_clean);
    }

    #[test]
    fn side_band_strikes_are_caught_by_parity_first() {
        let mut g = harness();
        for site in [
            FaultSite::ShiftBit,
            FaultSite::OutlierTag,
            FaultSite::OutlierExp(3),
        ] {
            let run = g.run(
                IntegrityConfig::full(),
                Some(Strike::from_site(site, false, 11, 0)),
            );
            assert_eq!(run.detector, Some(Detector::Parity), "{site:?}");
            assert!(run.bit_clean, "{site:?}");
        }
    }

    #[test]
    fn accumulator_strike_is_caught_by_abft_and_recomputed() {
        let mut g = harness();
        let strike = Strike::Lane(LaneStrike {
            i: 2,
            j: 5,
            bit: 31,
        });
        let run = g.run(IntegrityConfig::full(), Some(strike));
        assert_eq!(run.detector, Some(Detector::Abft));
        assert!(run.localized, "1×1 mismatch must localize");
        assert_eq!(run.repairs, 1);
        assert!(run.bit_clean, "recomputed element must match the oracle");
    }

    #[test]
    fn unprotected_data_strike_escapes() {
        // Outlier-free workload: on the outlier-heavy harness a small sval
        // perturbation can be masked by FP32 rounding of the huge outlier
        // term, which is a *masked* outcome, not an escape.
        let (m, k, n) = (6, 16, 8);
        let a = synth_tensor(m * k, 31, 0);
        let b = synth_tensor(k * n, 32, 0);
        let mut g = GuardedGemm::new(&a, &b, m, k, n).expect("finite workload");
        // A mid-significand weight strike with every detector disarmed:
        // the corruption reaches the output unchallenged.
        let strike = Strike::from_site(FaultSite::Significand(9), true, 37, 0);
        let run = g.run(IntegrityConfig::off(), Some(strike));
        assert_eq!(run.detector, None);
        assert!(!run.bit_clean, "strike must corrupt the unprotected output");
    }

    #[test]
    fn outlier_exp_strike_escapes_only_when_both_side_band_detectors_are_off() {
        let mut g = harness();
        let strike = Strike::from_site(FaultSite::OutlierExp(5), false, 0, 0);
        let off = g.run(IntegrityConfig::off(), Some(strike));
        assert!(!off.bit_clean, "exp strike re-frames an outlier product");
        let crc_only = IntegrityConfig {
            parity: false,
            plane_crc: true,
            abft: false,
        };
        let run = g.run(crc_only, Some(strike));
        assert_eq!(run.detector, Some(Detector::PlaneCrc));
        assert!(run.bit_clean);
    }
}
