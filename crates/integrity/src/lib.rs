//! # owlp-integrity
//!
//! Cross-layer data integrity for the OwL-P datapath: storage checksums on
//! the packed operand planes, side-band parity on the control wires, and
//! exact algorithm-based fault tolerance (ABFT) over the integer GEMM —
//! with *real* fault injection, localization, and repair rather than
//! probabilistic coverage knobs.
//!
//! The layer exploits the property the paper's datapath is built on: every
//! normal product is an **integer on a shared exponent frame**, so row and
//! column sums of the raw accumulator words obey closed integer arithmetic.
//! An independently computed reference must match *exactly* — there is no
//! FP tolerance band, hence **zero false positives** — and a single upset
//! perturbs exactly one row and one column sum by `±2^bit`, localizing the
//! damaged output element for an `O(k)` repair.
//!
//! Three detectors, by fault domain:
//!
//! * **side-band parity** ([`owlp_format::packed::META_PAR`]) guards the
//!   `{sh, tag, exp}` control wires — the fields the fault-sensitivity
//!   analysis in `owlp-arith::fault` singles out as critical. Meta-plane
//!   corruption is *latent*: the hot kernel consumes pre-baked `sval`
//!   words, so a flipped tag or shift bit silently corrupts any later
//!   re-derivation. Parity catches it at load time, before it can.
//! * **plane digests** ([`OperandDigests`], CRC32C) guard the data planes.
//!   The `sval` plane is digested in [`SVAL_TILE`]-element tiles so a hit
//!   localizes to one tile, repairable in place from the (clean) `mag` and
//!   `meta` planes via [`owlp_format::PackedOperands::rebuild_sval_range`].
//! * **ABFT checksums** ([`abft`]) guard the arithmetic itself: transient
//!   upsets inside accumulator lanes that no storage checksum can see.
//!
//! [`GuardedGemm`] threads all three around one GEMM execution and drives
//! the escalation ladder *detect → localize → repair → re-execute*;
//! [`fault_sweep`] measures coverage by injecting thousands of single-bit
//! strikes into real executions; [`DetectionProfile`] condenses those
//! measurements per fault site for the serving layer's SDC model.

pub mod abft;
pub mod checked;
pub mod crc;
pub mod digest;
pub mod profile;
pub mod sweep;
pub mod workload;

pub use checked::{Detector, GuardedGemm, GuardedRun, IntegrityConfig, Strike};
pub use crc::{crc32c, crc32c_bytes};
pub use digest::{IntegrityError, OperandDigests, PanelDigests, SVAL_TILE};
pub use profile::{DetectionProfile, SiteProfile};
pub use sweep::{fault_sweep, ClassCoverage, SweepReport};
