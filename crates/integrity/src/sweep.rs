//! Seeded large-count fault sweeps over real GEMM executions.
//!
//! [`fault_sweep`] injects `faults` single-bit strikes — uniformly over
//! every [`FaultSite`] wire class on both operand tensors plus
//! accumulator lanes — into a [`GuardedGemm`] and classifies each outcome
//! from the detectors' own verdicts and a bit-exact oracle comparison:
//!
//! * **detected / localized / corrected** — a checksum fired; the repair
//!   (or re-execution) must restore the oracle bits exactly;
//! * **escaped** — no detector fired and the output is corrupt: the
//!   silent data corruption the layer exists to eliminate;
//! * **masked** — no detector fired and the output is bit-clean anyway
//!   (e.g. a low accumulator bit absorbed by FP32 rounding, or latent
//!   metadata damage the hot kernel never consumes).
//!
//! Interleaved fault-free probes measure the false-positive rate, which
//! must be exactly zero: every detector compares closed integer
//! arithmetic, not FP approximations.

use owlp_arith::fault::FaultSite;
use owlp_arith::LaneStrike;
use owlp_format::PackedPlane;
use serde::{Deserialize, Serialize};

use crate::checked::{GuardedGemm, IntegrityConfig, Strike};
use crate::workload::synth_tensor;

/// Coverage counters for one fault site class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassCoverage {
    /// Class label (`significand`, `sign`, `shift-bit`, `outlier-tag`,
    /// `outlier-exp`, `accumulator`).
    pub class: String,
    /// Strikes injected into this class.
    pub injected: u64,
    /// Strikes a detector caught.
    pub detected: u64,
    /// Caught strikes whose damage was localized (bounded repair).
    pub localized: u64,
    /// Caught strikes that were corrected (repair or re-execution).
    pub corrected: u64,
    /// Undetected strikes that corrupted the delivered output.
    pub escaped: u64,
    /// Undetected strikes with a bit-clean output anyway.
    pub masked: u64,
}

impl ClassCoverage {
    fn new(class: &str) -> Self {
        ClassCoverage {
            class: class.to_string(),
            injected: 0,
            detected: 0,
            localized: 0,
            corrected: 0,
            escaped: 0,
            masked: 0,
        }
    }
}

/// Aggregate result of one seeded sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepReport {
    /// RNG seed the sweep ran under.
    pub seed: u64,
    /// The detector configuration swept.
    pub config: IntegrityConfig,
    /// Total strikes injected.
    pub faults: u64,
    /// Strikes caught by any detector.
    pub detected: u64,
    /// Caught strikes corrected back to the oracle bits.
    pub corrected: u64,
    /// Undetected corruptions of the delivered output.
    pub escaped: u64,
    /// Undetected strikes that left the output bit-clean.
    pub masked: u64,
    /// Fault-free probe runs interleaved with the strikes.
    pub clean_probes: u64,
    /// Probes on which any detector fired (must be zero — the checksums
    /// are exact).
    pub false_positives: u64,
    /// Whether every corrected run delivered oracle-identical bits.
    pub corrected_bit_identical: bool,
    /// Per-class breakdown.
    pub classes: Vec<ClassCoverage>,
}

fn class_label(site: FaultSite) -> &'static str {
    match site {
        FaultSite::Significand(_) => "significand",
        FaultSite::Sign => "sign",
        FaultSite::ShiftBit => "shift-bit",
        FaultSite::OutlierTag => "outlier-tag",
        FaultSite::OutlierExp(_) => "outlier-exp",
    }
}

/// xorshift64* — deterministic, seed-stable across platforms.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Highest raw accumulator bit a sweep strike may flip. The shared-frame
/// windows carry far more headroom, but staying well inside the occupied
/// range keeps every strike representative of a realistic lane upset.
const MAX_LANE_BIT: u64 = 48;

/// Runs a seeded sweep of `faults` strikes under `config`, interleaving
/// one fault-free probe per 64 strikes (at least 16).
pub fn fault_sweep(seed: u64, faults: u64, config: IntegrityConfig) -> SweepReport {
    let (m, k, n) = (8, 16, 12);
    let a = synth_tensor(m * k, seed ^ 0x9E37_79B9_7F4A_7C15, 9);
    let b = synth_tensor(k * n, seed ^ 0xC2B2_AE3D_27D4_EB4F, 11);
    let mut guarded = GuardedGemm::new(&a, &b, m, k, n).expect("finite sweep workload");
    let mut rng = Rng(crate::workload::mix_seed(seed));

    let sites = FaultSite::all();
    let mut classes: Vec<ClassCoverage> = [
        "significand",
        "sign",
        "shift-bit",
        "outlier-tag",
        "outlier-exp",
        "accumulator",
    ]
    .iter()
    .map(|c| ClassCoverage::new(c))
    .collect();
    let class_slot = |label: &str, classes: &mut Vec<ClassCoverage>| -> usize {
        classes
            .iter()
            .position(|c| c.class == label)
            .expect("class table is fixed")
    };

    let mut report = SweepReport {
        seed,
        config,
        faults,
        detected: 0,
        corrected: 0,
        escaped: 0,
        masked: 0,
        clean_probes: 0,
        false_positives: 0,
        corrected_bit_identical: true,
        classes: Vec::new(),
    };

    let probe_every = 64;
    for shot in 0..faults {
        // Uniform over the 22 operand wire classes plus accumulator lanes.
        let pick = rng.below(sites.len() as u64 + 1) as usize;
        let (label, strike) = if pick == sites.len() {
            let strike = Strike::Lane(LaneStrike {
                i: rng.below(m as u64) as usize,
                j: rng.below(n as u64) as usize,
                bit: rng.below(MAX_LANE_BIT) as u32,
            });
            ("accumulator", strike)
        } else {
            let site = sites[pick];
            let on_b = rng.below(2) == 1;
            let (element, slot) = match site {
                FaultSite::OutlierExp(_) => {
                    let slots = guarded.plane_len(on_b, PackedPlane::OutlierExp) as u64;
                    (0, rng.below(slots) as usize)
                }
                _ => {
                    let len = guarded.plane_len(on_b, PackedPlane::Sval) as u64;
                    (rng.below(len) as usize, 0)
                }
            };
            (
                class_label(site),
                Strike::from_site(site, on_b, element, slot),
            )
        };

        let run = guarded.run(config, Some(strike));
        let slot = class_slot(label, &mut classes);
        let class = &mut classes[slot];
        class.injected += 1;
        if run.detector.is_some() {
            report.detected += 1;
            class.detected += 1;
            if run.localized {
                class.localized += 1;
            }
            if run.corrected() {
                report.corrected += 1;
                class.corrected += 1;
            }
            report.corrected_bit_identical &= run.bit_clean;
        } else if run.bit_clean {
            report.masked += 1;
            class.masked += 1;
        } else {
            report.escaped += 1;
            class.escaped += 1;
        }

        if shot % probe_every == 0 || shot >= faults.saturating_sub(16) {
            report.clean_probes += 1;
            let probe = guarded.run(config, None);
            if probe.detector.is_some() || !probe.bit_clean {
                report.false_positives += 1;
            }
        }
    }
    report.classes = classes;
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_sweep_has_no_escapes_and_no_false_positives() {
        let r = fault_sweep(7, 600, IntegrityConfig::full());
        assert_eq!(r.faults, 600);
        assert_eq!(r.escaped, 0, "checksummed path must not leak corruption");
        assert_eq!(r.false_positives, 0, "exact checksums never cry wolf");
        assert!(r.corrected_bit_identical);
        assert!(r.detected > 0 && r.corrected == r.detected);
        assert_eq!(r.detected + r.masked + r.escaped, r.faults);
        let by_class: u64 = r.classes.iter().map(|c| c.injected).sum();
        assert_eq!(by_class, r.faults);
        for class in &r.classes {
            assert!(class.injected > 0, "{} never exercised", class.class);
            assert_eq!(class.escaped, 0, "{} leaked", class.class);
        }
    }

    #[test]
    fn sweeps_are_seed_deterministic() {
        let a = fault_sweep(42, 150, IntegrityConfig::full());
        let b = fault_sweep(42, 150, IntegrityConfig::full());
        assert_eq!(a, b);
        let c = fault_sweep(43, 150, IntegrityConfig::full());
        assert_ne!(a, c);
    }

    #[test]
    fn disarmed_sweep_lets_faults_escape() {
        let r = fault_sweep(11, 300, IntegrityConfig::off());
        assert_eq!(r.detected, 0);
        assert!(r.escaped > 0, "unprotected runs must show real escapes");
        assert_eq!(r.false_positives, 0);
    }

    #[test]
    fn abft_only_cover_catches_accumulator_strikes_exactly() {
        let cfg = IntegrityConfig {
            parity: false,
            plane_crc: false,
            abft: true,
        };
        let r = fault_sweep(5, 400, cfg);
        let acc = r.classes.iter().find(|c| c.class == "accumulator").unwrap();
        assert_eq!(acc.detected, acc.injected, "ABFT owns the accumulator");
        assert_eq!(acc.escaped, 0);
        // Operand data faults are not ABFT's domain (the reference is
        // computed from the same svals), so some escape without the CRC.
        assert!(r.escaped > 0);
    }
}
