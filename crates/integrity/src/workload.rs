//! Deterministic synthetic tensors for integrity measurement.
//!
//! One xorshift64* generator shared by the detection-profile workload, the
//! fault sweep, and the bench overhead measurement, so every consumer
//! injects into the *same* reproducible data.

use owlp_format::Bf16;

/// `len` moderate BF16 values seeded by `seed`; every `outlier_every`-th
/// element (when nonzero) is scaled by `1e20` so it lands far outside any
/// shared-exponent window and exercises the outlier side tables.
/// One splitmix64 step — decorrelates adjacent seeds before the xorshift
/// stream starts (`seed | 1` alone would alias 42 and 43).
pub(crate) fn mix_seed(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

pub fn synth_tensor(len: usize, seed: u64, outlier_every: usize) -> Vec<Bf16> {
    let mut state = mix_seed(seed);
    (0..len)
        .map(|i| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let mixed = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
            let frac = ((mixed >> 40) as f32) / (1u64 << 24) as f32;
            let mut v = (frac - 0.5) * 8.0;
            if v == 0.0 {
                v = 0.5;
            }
            if outlier_every != 0 && i % outlier_every == outlier_every - 1 {
                v *= 1.0e20;
            }
            Bf16::from_f32(v)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensors_are_deterministic_finite_and_outlier_bearing() {
        let a = synth_tensor(128, 42, 7);
        let b = synth_tensor(128, 42, 7);
        assert_eq!(a, b);
        assert!(a.iter().all(|x| x.to_f32().is_finite()));
        assert!(a.iter().any(|x| x.to_f32().abs() > 1.0e18));
        assert!(a.iter().all(|x| x.to_f32() != 0.0));
        let c = synth_tensor(128, 43, 7);
        assert_ne!(a, c);
    }
}
