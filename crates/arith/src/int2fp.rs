//! INT-to-FP conversion (paper Fig. 4c).
//!
//! The INT2FP unit at the bottom of each PE column normalises the aligned
//! integer accumulator and rounds **once** to FP32 (round-to-nearest, ties
//! to even). Because every upstream step is exact, this single rounding
//! makes the column output the correctly-rounded value of the exact dot
//! product.

/// Converts `mag × 2^frame` (plus an optional sticky flag for bits already
/// discarded below the frame by a bounded align unit) to `f32` with a single
/// round-to-nearest-even.
///
/// Exact zero converts to `+0.0`. Values beyond the f32 range saturate to
/// ±∞; values below the subnormal grid round to (signed) zero.
///
/// ```
/// use owlp_arith::int2fp::int_to_f32;
/// assert_eq!(int_to_f32(3, -1, false), 1.5);
/// assert_eq!(int_to_f32(-5, 2, false), -20.0);
/// assert_eq!(int_to_f32(0, 0, false).to_bits(), 0.0f32.to_bits());
/// ```
pub fn int_to_f32(mag: i128, frame: i32, sticky: bool) -> f32 {
    if mag == 0 {
        // A sticky remnant below an exact zero is smaller than half of any
        // ulp: rounds to zero.
        return 0.0;
    }
    let negative = mag < 0;
    let abs = mag.unsigned_abs();
    round_u128_to_f32(abs, frame, sticky, negative)
}

/// Round-to-nearest-even conversion of `abs × 2^frame` to f32 with an
/// explicit sign and extra sticky input.
pub(crate) fn round_u128_to_f32(abs: u128, frame: i32, extra_sticky: bool, negative: bool) -> f32 {
    debug_assert!(abs != 0);
    let msb = 127 - abs.leading_zeros() as i32;
    // Cut position (in bits above `frame`'s grid) so the kept integer has at
    // most 24 bits and the result lands on f32's (sub)normal grid.
    let cut = (msb - 23).max(-149 - frame);
    let value = if cut <= 0 {
        // Fewer than 24 significant bits available: exact, no rounding.
        // (abs < 2^24 here, so the f64 product below is exact.)
        debug_assert!(abs < 1 << 24);
        abs as f64 * (frame as f64).exp2()
    } else {
        let kept = (abs >> cut) as u64;
        let guard = abs & (1u128 << (cut - 1)) != 0;
        let below = abs & ((1u128 << (cut - 1)) - 1) != 0;
        let sticky = below || extra_sticky;
        let rounded = if guard && (sticky || kept & 1 == 1) {
            kept + 1
        } else {
            kept
        };
        rounded as f64 * ((frame + cut) as f64).exp2()
    };
    let signed = if negative { -value } else { value };
    // `value` is exactly on the f32 grid (or overflows), so this conversion
    // cannot introduce a second rounding.
    signed as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values() {
        assert_eq!(int_to_f32(1, 0, false), 1.0);
        assert_eq!(int_to_f32(255, -7, false), 255.0 / 128.0);
        assert_eq!(int_to_f32(-1, -126, false), -(-126.0f32).exp2());
    }

    #[test]
    fn rounding_to_24_bits() {
        // 2^25 + 1 needs 26 bits → rounds to 2^25 (tie? no: guard 0).
        assert_eq!(int_to_f32((1 << 25) + 1, 0, false), (1u32 << 25) as f32);
        // 2^24 + 1: guard is the dropped 1, sticky 0, kept even → stays.
        assert_eq!(int_to_f32((1 << 24) + 1, 0, false), (1u32 << 24) as f32);
        // 2^24 + 3: kept odd low bit + guard → rounds up.
        assert_eq!(
            int_to_f32((1 << 24) + 3, 0, false),
            ((1u32 << 24) + 4) as f32
        );
    }

    #[test]
    fn sticky_breaks_ties_upward() {
        // 2^24 + 1 is a tie without sticky (stays even); with sticky set the
        // value is strictly above the tie → rounds up.
        assert_eq!(
            int_to_f32((1 << 24) + 1, 0, true),
            ((1u32 << 24) + 2) as f32
        );
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(int_to_f32(1, 200, false), f32::INFINITY);
        assert_eq!(int_to_f32(-1, 200, false), f32::NEG_INFINITY);
    }

    #[test]
    fn underflow_hits_the_subnormal_grid() {
        // 2^-149 is the smallest f32 subnormal.
        assert_eq!(int_to_f32(1, -149, false), (-149.0f32).exp2());
        // 2^-150 is exactly half the smallest subnormal: ties-to-even → 0.
        assert_eq!(int_to_f32(1, -150, false), 0.0);
        // 3 × 2^-150 rounds to 2 × 2^-149.
        assert_eq!(int_to_f32(3, -150, false), 2.0 * (-149.0f32).exp2());
    }

    #[test]
    fn zero_is_positive_zero() {
        assert_eq!(int_to_f32(0, 0, false).to_bits(), 0.0f32.to_bits());
        assert_eq!(int_to_f32(0, 0, true).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn agrees_with_f64_rounding_on_moderate_values() {
        // For values well inside the normal range, converting via f64 in one
        // step is also correctly rounded — cross-check.
        for mag in [12345678901i128, -987654321, 1, -255, (1 << 40) + 12345] {
            for frame in [-30i32, -7, 0, 13] {
                let direct = int_to_f32(mag, frame, false);
                let via_f64 = (mag as f64 * (frame as f64).exp2()) as f32;
                assert_eq!(
                    direct.to_bits(),
                    via_f64.to_bits(),
                    "mag {mag} frame {frame}"
                );
            }
        }
    }
}
