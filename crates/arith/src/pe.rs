//! The OwL-P processing element (paper §IV-B, Fig. 4a).
//!
//! Each PE executes an **8-way integer dot product** over pre-aligned
//! operands from the bias decoder. After each multiplication:
//!
//! * the product is shifted left by `4·(sh_a + sh_w)` — the deferred MSB
//!   half of the two operands' bias shifts, realised by a cheap 3-way
//!   `{0,4,8}` shifter instead of a per-operand barrel shifter;
//! * the **path-selection unit** routes the result: products involving an
//!   outlier operand bypass the vector-sum block onto the intra-PE outlier
//!   path (at most `outlier paths` of them per cycle — the scheduler
//!   guarantees this bound, the model enforces it); everything else is
//!   accumulated into the normal partial sum.
//!
//! Products with a zero magnitude are routed to the vector sum regardless of
//! tags: a zero contributes nothing, so it never needs (or occupies) an
//! outlier path. This is what makes the scheduler's inserted zeros free and
//! stored zeros harmless.

use crate::error::ArithError;
use owlp_format::decode::DecodedOperand;
use serde::{Deserialize, Serialize};

/// Static PE parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeConfig {
    /// Dot-product width (8 in the paper).
    pub lanes: usize,
    /// Outlier paths reserved for activation-caused outlier products.
    pub act_outlier_paths: usize,
    /// Outlier paths reserved for weight-caused outlier products.
    pub weight_outlier_paths: usize,
}

impl PeConfig {
    /// The paper's chosen design point: 8 lanes, 4 outlier paths per PE
    /// (2 for activations + 2 for weights; §VI-B).
    pub const PAPER: PeConfig = PeConfig {
        lanes: 8,
        act_outlier_paths: 2,
        weight_outlier_paths: 2,
    };

    /// Total outlier paths per PE.
    pub fn total_outlier_paths(&self) -> usize {
        self.act_outlier_paths + self.weight_outlier_paths
    }
}

impl Default for PeConfig {
    fn default() -> Self {
        Self::PAPER
    }
}

/// One lane's multiplication result after the post-multiply shifter and
/// path selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneProduct {
    /// Signed, fully shifted integer product.
    pub mag: i64,
    /// The power-of-two frame: `value = mag × 2^frame` exactly.
    pub frame: i32,
    /// Whether the activation operand was a (nonzero) outlier.
    pub act_outlier: bool,
    /// Whether the weight operand was a (nonzero) outlier.
    pub weight_outlier: bool,
}

impl LaneProduct {
    /// Whether the product takes the intra-PE outlier path.
    pub fn takes_outlier_path(&self) -> bool {
        self.mag != 0 && (self.act_outlier || self.weight_outlier)
    }
}

/// A result travelling the outlier bypass path: the product plus the frame
/// information the bottom-of-column align unit needs (paper §IV-C: `E_o` is
/// `shared + outlier` or `outlier + outlier` depending on the operands).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutlierResult {
    /// Signed integer product.
    pub mag: i64,
    /// Exact frame exponent of the product.
    pub frame: i32,
}

/// Output of one PE dot-product cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeOutput {
    /// Accumulated normal partial sum, exact in the shared frame.
    pub normal_sum: i64,
    /// The shared frame: `2^(shared_a + shared_w − 268)`.
    pub normal_frame: i32,
    /// Outlier products bypassed this cycle (≤ total outlier paths).
    pub outliers: Vec<OutlierResult>,
    /// Lanes whose product was nonzero (for utilisation accounting).
    pub active_lanes: usize,
}

/// Functional model of one OwL-P PE.
///
/// ```
/// use owlp_arith::pe::{PeConfig, ProcessingElement};
/// use owlp_format::{Bf16, BiasDecoder, ExponentWindow};
///
/// # fn main() -> Result<(), owlp_arith::ArithError> {
/// let w = ExponentWindow::owlp(125);
/// let dec = BiasDecoder::new(w.base());
/// let acts: Vec<_> = (1..=8).map(|i| dec.decode_bf16(Bf16::from_f32(i as f32 / 4.0), w)).collect();
/// let wts: Vec<_> = (1..=8).map(|i| dec.decode_bf16(Bf16::from_f32(0.25 + i as f32 / 4.0), w)).collect();
/// let pe = ProcessingElement::new(PeConfig::PAPER);
/// let out = pe.dot(&acts, &wts, w.base(), w.base())?;
/// assert!(out.outliers.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcessingElement {
    config: PeConfig,
}

impl ProcessingElement {
    /// Creates a PE with the given configuration.
    pub fn new(config: PeConfig) -> Self {
        ProcessingElement { config }
    }

    /// The PE's configuration.
    pub fn config(&self) -> PeConfig {
        self.config
    }

    /// Multiplies one lane: integer product, `{0,4,8}` shift, frame
    /// bookkeeping. Pure combinational model (no capacity check).
    pub fn multiply_lane(
        act: DecodedOperand,
        wt: DecodedOperand,
        shared_a: u8,
        shared_w: u8,
    ) -> LaneProduct {
        let raw = act.mag as i64 * wt.mag as i64;
        let shifted = raw << (4 * (act.sh as u32 + wt.sh as u32));
        let mag = if act.sign ^ wt.sign {
            -shifted
        } else {
            shifted
        };
        let ea = if act.tag {
            if act.exp == 0 {
                1
            } else {
                act.exp as i32
            }
        } else {
            shared_a as i32
        };
        let ew = if wt.tag {
            if wt.exp == 0 {
                1
            } else {
                wt.exp as i32
            }
        } else {
            shared_w as i32
        };
        LaneProduct {
            mag,
            frame: ea + ew - 2 * (127 + 7),
            act_outlier: act.tag && mag != 0,
            weight_outlier: wt.tag && mag != 0,
        }
    }

    /// One dot-product cycle over up to `lanes` operand pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::DimensionMismatch`] if the slices differ in
    /// length or exceed the lane count, and
    /// [`ArithError::OutlierPathOverflow`] if path selection produces more
    /// outlier results than the PE has paths — the condition the outlier
    /// scheduler (paper §V-A) prevents by zero insertion.
    pub fn dot(
        &self,
        acts: &[DecodedOperand],
        wts: &[DecodedOperand],
        shared_a: u8,
        shared_w: u8,
    ) -> Result<PeOutput, ArithError> {
        if acts.len() != wts.len() {
            return Err(ArithError::DimensionMismatch {
                what: "pe lane operands",
                expected: acts.len(),
                actual: wts.len(),
            });
        }
        if acts.len() > self.config.lanes {
            return Err(ArithError::DimensionMismatch {
                what: "pe lane count",
                expected: self.config.lanes,
                actual: acts.len(),
            });
        }
        let normal_frame = shared_a as i32 + shared_w as i32 - 2 * (127 + 7);
        let mut normal_sum: i64 = 0;
        let mut outliers = Vec::new();
        let mut act_out = 0usize;
        let mut w_out = 0usize;
        let mut active = 0usize;
        for (&a, &w) in acts.iter().zip(wts) {
            let lane = Self::multiply_lane(a, w, shared_a, shared_w);
            if lane.mag != 0 {
                active += 1;
            }
            if lane.takes_outlier_path() {
                if lane.act_outlier {
                    act_out += 1;
                }
                if lane.weight_outlier && !lane.act_outlier {
                    w_out += 1;
                }
                outliers.push(OutlierResult {
                    mag: lane.mag,
                    frame: lane.frame,
                });
            } else {
                debug_assert!(
                    lane.mag == 0 || lane.frame == normal_frame,
                    "normal product must live in the shared frame"
                );
                normal_sum += lane.mag;
            }
        }
        if act_out > self.config.act_outlier_paths
            || w_out > self.config.weight_outlier_paths
            || outliers.len() > self.config.total_outlier_paths()
        {
            return Err(ArithError::OutlierPathOverflow {
                produced: outliers.len(),
                capacity: self.config.total_outlier_paths(),
            });
        }
        Ok(PeOutput {
            normal_sum,
            normal_frame,
            outliers,
            active_lanes: active,
        })
    }

    /// Like [`ProcessingElement::dot`] but without capacity enforcement —
    /// used by the scheduler itself when *measuring* outlier pressure.
    pub fn dot_unchecked(
        &self,
        acts: &[DecodedOperand],
        wts: &[DecodedOperand],
        shared_a: u8,
        shared_w: u8,
    ) -> PeOutput {
        let normal_frame = shared_a as i32 + shared_w as i32 - 2 * (127 + 7);
        let mut normal_sum: i64 = 0;
        let mut outliers = Vec::new();
        let mut active = 0usize;
        for (&a, &w) in acts.iter().zip(wts) {
            let lane = Self::multiply_lane(a, w, shared_a, shared_w);
            if lane.mag != 0 {
                active += 1;
            }
            if lane.takes_outlier_path() {
                outliers.push(OutlierResult {
                    mag: lane.mag,
                    frame: lane.frame,
                });
            } else {
                normal_sum += lane.mag;
            }
        }
        PeOutput {
            normal_sum,
            normal_frame,
            outliers,
            active_lanes: active,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::{Bf16, BiasDecoder, ExponentWindow};

    fn setup(base: u8) -> (ExponentWindow, BiasDecoder) {
        let w = ExponentWindow::owlp(base);
        (w, BiasDecoder::new(base))
    }

    fn dec_all(xs: &[f32], dec: &BiasDecoder, w: ExponentWindow) -> Vec<DecodedOperand> {
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    }

    #[test]
    fn normal_dot_product_is_exact() {
        let (w, dec) = setup(124);
        let acts = dec_all(&[1.0, 2.0, 0.5, 4.0, 1.5, 3.0, 0.25, 8.0], &dec, w);
        let wts = dec_all(&[0.5, 0.5, 2.0, 0.25, 1.0, 1.0, 4.0, 0.125], &dec, w);
        let pe = ProcessingElement::new(PeConfig::PAPER);
        let out = pe.dot(&acts, &wts, 124, 124).unwrap();
        assert!(out.outliers.is_empty());
        let value = out.normal_sum as f64 * (out.normal_frame as f64).exp2();
        let expect: f64 = [0.5, 1.0, 1.0, 1.0, 1.5, 3.0, 1.0, 1.0].iter().sum();
        assert_eq!(value, expect);
        assert_eq!(out.active_lanes, 8);
    }

    #[test]
    fn shifter_applies_four_bits_per_sh() {
        let (w, dec) = setup(124);
        // bias 5 → sh=1, pre-shift 1 (value 2^(124+5-127)·1.0 = 4.0).
        let a = dec.decode_bf16(Bf16::from_f32(4.0), w);
        assert!(a.sh);
        let b = dec.decode_bf16(Bf16::from_f32(4.0), w);
        let lane = ProcessingElement::multiply_lane(a, b, 124, 124);
        let value = lane.mag as f64 * (lane.frame as f64).exp2();
        assert_eq!(value, 16.0);
    }

    #[test]
    fn outlier_products_take_the_bypass_path() {
        let (w, dec) = setup(124);
        let mut acts = dec_all(&[1.0; 8], &dec, w);
        acts[2] = dec.decode_bf16(Bf16::from_f32(1e30), w);
        let wts = dec_all(&[2.0; 8], &dec, w);
        let pe = ProcessingElement::new(PeConfig::PAPER);
        let out = pe.dot(&acts, &wts, 124, 124).unwrap();
        assert_eq!(out.outliers.len(), 1);
        let o = out.outliers[0];
        let value = o.mag as f64 * (o.frame as f64).exp2();
        let expect = Bf16::from_f32(1e30).to_f64() * 2.0;
        assert_eq!(value, expect);
        // Normal sum covers the remaining 7 lanes.
        let normal = out.normal_sum as f64 * (out.normal_frame as f64).exp2();
        assert_eq!(normal, 14.0);
    }

    #[test]
    fn double_outlier_product_frame() {
        let (w, dec) = setup(124);
        let a = dec.decode_bf16(Bf16::from_f32(1e30), w);
        let b = dec.decode_bf16(Bf16::from_f32(1e-30), w);
        let lane = ProcessingElement::multiply_lane(a, b, 124, 124);
        assert!(lane.act_outlier && lane.weight_outlier);
        let value = lane.mag as f64 * (lane.frame as f64).exp2();
        let expect = Bf16::from_f32(1e30).to_f64() * Bf16::from_f32(1e-30).to_f64();
        assert_eq!(value, expect);
    }

    #[test]
    fn zero_times_outlier_is_not_an_outlier_result() {
        let (w, dec) = setup(124);
        let zero = dec.decode_bf16(Bf16::ZERO, w);
        let big = dec.decode_bf16(Bf16::from_f32(1e30), w);
        let lane = ProcessingElement::multiply_lane(zero, big, 124, 124);
        assert_eq!(lane.mag, 0);
        assert!(!lane.takes_outlier_path());
    }

    #[test]
    fn path_overflow_is_detected() {
        let (w, dec) = setup(124);
        let mut acts = dec_all(&[1.0; 8], &dec, w);
        for lane in [0, 1, 2] {
            acts[lane] = dec.decode_bf16(Bf16::from_f32(1e30), w);
        }
        let wts = dec_all(&[1.0; 8], &dec, w);
        let pe = ProcessingElement::new(PeConfig::PAPER);
        let err = pe.dot(&acts, &wts, 124, 124).unwrap_err();
        assert!(matches!(
            err,
            ArithError::OutlierPathOverflow { produced: 3, .. }
        ));
        // The unchecked variant still measures all three.
        let out = pe.dot_unchecked(&acts, &wts, 124, 124);
        assert_eq!(out.outliers.len(), 3);
    }

    #[test]
    fn weight_and_activation_paths_are_separate_budgets() {
        let (w, dec) = setup(124);
        let mut acts = dec_all(&[1.0; 8], &dec, w);
        let mut wts = dec_all(&[1.0; 8], &dec, w);
        // 2 activation outliers + 2 weight outliers on distinct lanes: legal.
        acts[0] = dec.decode_bf16(Bf16::from_f32(1e25), w);
        acts[1] = dec.decode_bf16(Bf16::from_f32(1e25), w);
        wts[2] = dec.decode_bf16(Bf16::from_f32(1e-25), w);
        wts[3] = dec.decode_bf16(Bf16::from_f32(1e-25), w);
        let pe = ProcessingElement::new(PeConfig::PAPER);
        let out = pe.dot(&acts, &wts, 124, 124).unwrap();
        assert_eq!(out.outliers.len(), 4);
        // A third activation outlier overflows the activation budget even
        // though total paths (4) are not exhausted by activations alone.
        acts[4] = dec.decode_bf16(Bf16::from_f32(1e25), w);
        let err = pe.dot(&acts, &wts, 124, 124).unwrap_err();
        assert!(matches!(err, ArithError::OutlierPathOverflow { .. }));
    }

    #[test]
    fn mismatched_lanes_error() {
        let pe = ProcessingElement::new(PeConfig::PAPER);
        let op = DecodedOperand::ZERO;
        assert!(matches!(
            pe.dot(&[op; 3], &[op; 2], 120, 120),
            Err(ArithError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            pe.dot(&[op; 9], &[op; 9], 120, 120),
            Err(ArithError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn subnormal_operands_multiply_exactly() {
        let (w, dec) = setup(124);
        let tiny = dec.decode_bf16(Bf16::MIN_POSITIVE_SUBNORMAL, w);
        let one = dec.decode_bf16(Bf16::ONE, w);
        let lane = ProcessingElement::multiply_lane(tiny, one, 124, 124);
        let value = lane.mag as f64 * (lane.frame as f64).exp2();
        assert_eq!(value, Bf16::MIN_POSITIVE_SUBNORMAL.to_f64());
    }
}
