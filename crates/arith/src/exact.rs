//! Correctly-rounded reference dot products and GEMM.
//!
//! These are the golden functions of the whole reproduction: the
//! mathematically exact sum of BF16 products, rounded **once** to FP32.
//! [`crate::gemm::owlp_gemm`] must match them bit-for-bit; the sequential
//! FP32 baseline of [`crate::fpmac`] generally does not (it rounds at every
//! accumulation step).

use crate::gemm::{AbftSums, LaneStrike};
use crate::kulisch::KulischAcc;
use crate::microkernel::{self, MR, NR};
use crate::window::WindowAcc;
use owlp_format::Bf16;

/// ABFT checksum pair of one [`exact_gemm_abft`] run: the *observed*
/// row/column sums of the banded fast path's i64 lanes, and the
/// *reference* sums computed independently from the aligned band planes.
/// Both live on the same integer grid (`2^(base_a + base_b)`), so
/// `observed == reference` holds exactly on a clean run — there is no
/// roundoff tolerance to tune. Out-of-band tag corrections bypass the
/// lanes on both sides of the comparison, so they cannot raise a false
/// positive either.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbftCheck {
    /// Row/column sums the drive loop actually accumulated.
    pub observed: AbftSums,
    /// The same sums recomputed from the band planes (`rows[i] =
    /// Σ_k plane_a[i,k]·(Σ_j plane_b[k,j])`, and transposed for columns).
    pub reference: AbftSums,
}

impl AbftCheck {
    /// Row and column indices whose observed sum disagrees with the
    /// reference — empty on a clean run; exactly one of each after a
    /// single lane strike, intersecting at the damaged element.
    pub fn mismatches(&self) -> (Vec<usize>, Vec<usize>) {
        let rows = (0..self.observed.rows.len())
            .filter(|&i| self.observed.rows[i] != self.reference.rows[i])
            .collect();
        let cols = (0..self.observed.cols.len())
            .filter(|&j| self.observed.cols[j] != self.reference.cols[j])
            .collect();
        (rows, cols)
    }
}

/// Magnitude bits of one BF16×BF16 product (8-bit × 8-bit significands).
const PRODUCT_BITS: i32 = 16;

/// The frame span of a tensor's nonzero elements (min/max of
/// [`Bf16::pow2_frame`]), or `None` when every element is zero. Also
/// enforces the exact-arithmetic finiteness contract for *all* elements,
/// exactly as the per-product path would.
///
/// # Panics
///
/// Panics on non-finite values.
fn frame_span(t: &[Bf16]) -> Option<(i32, i32)> {
    let mut span: Option<(i32, i32)> = None;
    for &x in t {
        assert!(x.is_finite(), "non-finite operand in exact product");
        if x.significand() == 0 {
            continue;
        }
        let f = x.pow2_frame();
        span = Some(match span {
            None => (f, f),
            Some((lo, hi)) => (lo.min(f), hi.max(f)),
        });
    }
    span
}

/// A WindowAcc template covering every product of the two spans (`None`
/// when the span is too wide for the 126-bit window, or when one side is
/// all zeros — the caller handles both).
fn product_window(sa: (i32, i32), sb: (i32, i32), terms: usize) -> Option<WindowAcc> {
    WindowAcc::for_span(sa.0 + sb.0, sa.1 + sb.1 + PRODUCT_BITS, terms as u64)
}

/// Widest in-band frame range (inclusive, above the band base) one operand
/// side may use: an in-band element is stored *aligned* as
/// `significand << (frame − base)` with an 8-bit significand, and the
/// aligned value must fit the signed `i32` band plane (`8 + 23 = 31` bits).
const MAX_BAND_WIDTH: i32 = 23;

/// Splits a total in-band bit `budget` between the two operand sides,
/// favouring whichever side actually spans more frames. Both widths are
/// clamped to [`MAX_BAND_WIDTH`] and their sum never exceeds `budget`.
fn split_band_widths(span_a: i32, span_b: i32, budget: i32) -> (i32, i32) {
    let wa = span_a
        .min((budget - span_b.min(budget / 2)).max(0))
        .clamp(0, MAX_BAND_WIDTH);
    let wb = span_b.min(budget - wa).clamp(0, MAX_BAND_WIDTH);
    (wa, wb)
}

/// Base frame of the densest width-`width` band of `t`'s nonzero frames —
/// the placement that leaves the fewest elements out-of-band. BF16 frames
/// live in a span of at most a few hundred values, so a flat histogram
/// plus a sliding-window max is exact and cheap.
fn densest_band(t: &[Bf16], span: (i32, i32), width: i32) -> i32 {
    let (lo, hi) = span;
    if hi - lo <= width {
        return lo; // the whole tensor fits one band
    }
    let bins = (hi - lo + 1) as usize;
    let mut hist = vec![0u64; bins];
    for &x in t {
        if x.significand() != 0 {
            hist[(x.pow2_frame() - lo) as usize] += 1;
        }
    }
    let w = (width + 1) as usize;
    let mut cur: u64 = hist[..w].iter().sum();
    let (mut best, mut best_at) = (cur, 0usize);
    for s in 1..=bins - w {
        cur += hist[s + w - 1];
        cur -= hist[s - 1];
        if cur > best {
            best = cur;
            best_at = s;
        }
    }
    lo + best_at as i32
}

/// Out-of-band elements of one row (of A) or column (of B): `(k-index,
/// signed significand, frame)`, in increasing k-index order.
type BandTags = Vec<Vec<(u32, i64, i32)>>;

/// Decomposes row-major `m×k` A into an aligned signed-`i32` band plane
/// (zeros for zero or out-of-band elements) plus per-row out-of-band tags.
fn band_rows(a: &[Bf16], k: usize, base: i32, width: i32) -> (Vec<i32>, BandTags) {
    let mut plane = vec![0i32; a.len()];
    let mut tags: BandTags = vec![Vec::new(); a.len() / k.max(1)];
    for (pos, &x) in a.iter().enumerate() {
        let sig = x.significand() as i32;
        if sig == 0 {
            continue;
        }
        let sig = if x.sign() { -sig } else { sig };
        let f = x.pow2_frame();
        if f >= base && f - base <= width {
            plane[pos] = sig << (f - base);
        } else {
            tags[pos / k].push(((pos % k) as u32, sig as i64, f));
        }
    }
    (plane, tags)
}

/// Decomposes row-major `k×n` B into zero-padded K-major `NR`-wide aligned
/// `i32` panels (the layout [`microkernel::tile_dot_i32`] consumes) plus
/// per-column out-of-band tags.
fn band_col_panels(b: &[Bf16], k: usize, n: usize, base: i32, width: i32) -> (Vec<i32>, BandTags) {
    let panels = n.div_ceil(NR).max(1);
    let mut data = vec![0i32; panels * k * NR];
    let mut tags: BandTags = vec![Vec::new(); n];
    for kk in 0..k {
        for (j, &x) in b[kk * n..(kk + 1) * n].iter().enumerate() {
            let sig = x.significand() as i32;
            if sig == 0 {
                continue;
            }
            let sig = if x.sign() { -sig } else { sig };
            let f = x.pow2_frame();
            if f >= base && f - base <= width {
                data[(j / NR) * k * NR + kk * NR + (j % NR)] = sig << (f - base);
            } else {
                tags[j].push((kk as u32, sig as i64, f));
            }
        }
    }
    (data, tags)
}

/// The exact dot product of two BF16 slices, rounded once to `f32`
/// (round-to-nearest-even).
///
/// When the two spans of nonzero frames are narrow enough that every
/// product fits one 126-bit window (the common case — and always the case
/// for shared-exponent-encoded data), the sum is taken in a flat
/// [`WindowAcc`]; otherwise each product goes through the full Kulisch
/// register via the batched API. Both paths compute the identical exact
/// sum and round it once, so the result is bit-identical either way.
///
/// # Panics
///
/// Panics if the slices differ in length or contain non-finite values.
///
/// ```
/// use owlp_format::Bf16;
/// use owlp_arith::exact_dot;
/// let a = vec![Bf16::from_f32(1e30), Bf16::from_f32(1.0), Bf16::from_f32(-1e30)];
/// let b = vec![Bf16::ONE; 3];
/// assert_eq!(exact_dot(&a, &b), 1.0); // no catastrophic cancellation
/// ```
pub fn exact_dot(a: &[Bf16], b: &[Bf16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let (sa, sb) = (frame_span(a), frame_span(b));
    let (Some(sa), Some(sb)) = (sa, sb) else {
        return 0.0; // one side all zero → exact +0.0, as Kulisch returns
    };
    if let Some(mut win) = product_window(sa, sb, a.len()) {
        for (&x, &y) in a.iter().zip(b) {
            let p = x.significand() as i64 * y.significand() as i64;
            if p == 0 {
                continue;
            }
            let p = if x.sign() ^ y.sign() { -p } else { p };
            win.add(p, x.pow2_frame() + y.pow2_frame());
        }
        return win.round_to_f32();
    }
    let mut acc = KulischAcc::new();
    acc.add_product_batch(a, b);
    acc.round_to_f32()
}

/// The exact dot product evaluated in extended precision `f64` view — used
/// as the error yardstick for the approximate quantization schemes of
/// paper Table I (where f32's own grid would mask their error).
pub fn exact_dot_f64(a: &[Bf16], b: &[Bf16]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = KulischAcc::new();
    acc.add_product_batch(a, b);
    acc.to_f64_lossy()
}

/// Row tiles per parallel chunk: aim for roughly this many scalar products
/// per chunk so thread fan-out only engages on GEMMs that can pay for it.
const GEMM_GRAIN_OPS: usize = 1 << 14;

/// Rows of output per parallel chunk for an `m×k · k×n` GEMM.
pub(crate) fn row_grain(k: usize, n: usize) -> usize {
    (GEMM_GRAIN_OPS / (k.saturating_mul(n)).max(1)).max(1)
}

/// Exact GEMM: `C[m][n] = round_once(Σ_k A[m][k]·B[k][n])`.
///
/// `a` is `m×k` row-major, `b` is `k×n` row-major; the result is `m×n`
/// row-major. Output rows are computed tile-parallel on the [`owlp_par`]
/// grid and assembled in row order; every output element is an independent
/// single-rounded exact sum, so the result is bit-identical at every
/// thread count.
///
/// # Panics
///
/// Panics on shape mismatch or non-finite inputs.
pub fn exact_gemm(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f32> {
    exact_gemm_impl::<false>(a, b, m, k, n, None).0
}

/// [`exact_gemm`] with ABFT checksum collection and optionally a
/// sanctioned single-bit lane strike (applied to the in-band i64 lane of
/// one output element, corrupting output and checksums consistently).
///
/// Returns `None` for the check when the banded fast path did not run —
/// an all-zero factor (nothing to protect) or the Kulisch proof-boundary
/// fallback (whose per-product accumulation has no shared integer frame
/// to checksum). Callers treat `None` as "ABFT unavailable", not as a
/// verdict.
///
/// # Panics
///
/// As [`exact_gemm`].
pub fn exact_gemm_abft(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    strike: Option<LaneStrike>,
) -> (Vec<f32>, Option<AbftCheck>) {
    exact_gemm_impl::<true>(a, b, m, k, n, strike)
}

// `ABFT` is const so the plain `exact_gemm` monomorphization carries no
// per-element strike/checksum checks in the banded hot loop (the PR6
// bench recorded that leak as a serial regression).
fn exact_gemm_impl<const ABFT: bool>(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    strike: Option<LaneStrike>,
) -> (Vec<f32>, Option<AbftCheck>) {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let (sa, sb) = (frame_span(a), frame_span(b));
    let (Some(sa), Some(sb)) = (sa, sb) else {
        return (vec![0.0; m * n], None); // one factor all zero → exact +0.0
    };
    // Banded fast path budget: an in-band product magnitude is below
    // 2^(16 + wa + wb), and a k-term lane sum of those needs
    // ⌈log2 k⌉ + 1 headroom bits on top, so the whole lane provably fits
    // a signed i64 iff 16 + wa + wb + headroom ≤ 63.
    let headroom = 64 - (k.max(1) as u64).leading_zeros() as i32;
    let budget = 47 - headroom;
    let ops_per_row = 2 * (k as u64) * (n as u64);
    let mut reference: Option<AbftSums> = None;
    let row_blocks = if budget >= 0 {
        // Fast path: align the densest frame band of each tensor to a
        // signed-i32 plane, run the register-tiled integer microkernel
        // over the planes (every in-band product is exact in the i64
        // lanes by the budget above), and patch the few out-of-band
        // elements per output with exact per-tag corrections. Tagged and
        // zero elements store 0 in the plane, so the lane needs no
        // subtraction — the corrections are purely additive and the total
        // is the same exact sum, rounded once.
        let (wa, wb) = split_band_widths(sa.1 - sa.0, sb.1 - sb.0, budget);
        let base_a = densest_band(a, sa, wa);
        let base_b = densest_band(b, sb, wb);
        let (aplane, row_tags) = band_rows(a, k, base_a, wa);
        let (bpanels, col_tags) = band_col_panels(b, k, n, base_b, wb);
        // ABFT reference sums straight from the band planes (the panel
        // zero-padding contributes nothing): what the lanes *must* add up
        // to, independently of the kernel's regrouping.
        reference = ABFT.then(|| {
            // Marginals in i64 (the band planes are i32, so ~2^31 summands
            // of slack) and widening 64×64→128 multiplies for the final
            // sums: this runs on every checked GEMM and is priced against
            // the ≤5% integrity overhead budget. The panels are walked
            // panel-major so the inner loops stay contiguous; the zero
            // padding of edge panels contributes nothing to either sum.
            let mut asum = vec![0i64; k];
            for row in aplane.chunks_exact(k) {
                for (s, &v) in asum.iter_mut().zip(row) {
                    *s += i64::from(v);
                }
            }
            let mut bsum = vec![0i64; k];
            let mut cols_ref = vec![0i128; n];
            for (pb, panel) in bpanels.chunks_exact(k * NR).enumerate() {
                let j0 = pb * NR;
                let width = NR.min(n - j0);
                for (kk, lane) in panel.chunks_exact(NR).enumerate() {
                    bsum[kk] += lane.iter().map(|&v| i64::from(v)).sum::<i64>();
                    let s = i128::from(asum[kk]);
                    for (c, &v) in lane.iter().take(width).enumerate() {
                        cols_ref[j0 + c] += s * i128::from(v);
                    }
                }
            }
            let rows_ref = aplane
                .chunks_exact(k)
                .map(|row| {
                    row.iter()
                        .zip(&bsum)
                        .map(|(&v, &s)| i128::from(v) * i128::from(s))
                        .sum()
                })
                .collect();
            AbftSums {
                rows: rows_ref,
                cols: cols_ref,
            }
        });
        let lo = base_a + base_b;
        let zero_row = vec![0i32; k];
        // Cache-blocking geometry over the 4-byte i32 band planes,
        // resolved before the fan-out (like the kernel tier below) so the
        // `with_block`/`OWLP_BLOCK` overrides apply at every thread count.
        // No Kc spill cap here: the band budget already proves the
        // full-depth i64 lane sum exact, and every stripe-partial sum is
        // bounded by the same budget.
        let geom = owlp_format::block_geometry(4, MR, NR).for_shape(m, k, n, MR, NR);
        let (mc, nc, kc) = (geom.mc, geom.nc, geom.kc);
        // MR-aligned grain; a grain wider than one Mc block rounds to
        // whole blocks so chunk boundaries never split a block.
        let grain = {
            let g = row_grain(k, n).next_multiple_of(MR);
            if g > mc {
                g.next_multiple_of(mc)
            } else {
                g
            }
        };
        // Resolved before the fan-out so a `with_tier` override on this
        // thread applies inside every pool worker.
        let tier = microkernel::selected_tier();
        owlp_par::map_chunks_weighted(m, grain, ops_per_row, |rows| {
            let mut block = vec![0.0f32; rows.len() * n];
            let mut sums = ABFT.then(|| (vec![0i128; rows.len()], vec![0i128; n]));
            // Finalizes one MR×NR lane tile: the sanctioned strike, the
            // checksum partials, and the per-element out-of-band
            // corrections — one copy shared by the single-stripe and
            // multi-stripe traversals below.
            let mut finalize_tile = |lanes: &[[i64; NR]; MR], ib: usize, jb: usize| {
                let mr = MR.min(rows.end - ib);
                let nr = NR.min(n - jb);
                let panel = &bpanels[(jb / NR) * k * NR..(jb / NR + 1) * k * NR];
                // Tile-local checksum partials, flushed once per tile:
                // i128 addition is exact and order-free, so batching
                // the per-element read-modify-writes into registers
                // leaves the checksums bit-identical.
                let mut tile_rs = [0i128; MR];
                let mut tile_cs = [0i128; NR];
                for (r, lane_row) in lanes.iter().enumerate().take(mr) {
                    let i = ib + r;
                    let rtags = &row_tags[i];
                    let arow = &aplane[i * k..(i + 1) * k];
                    for (c, &lane) in lane_row.iter().enumerate().take(nr) {
                        let j = jb + c;
                        let mut lane = lane;
                        // Sanctioned lane upset: flip before both the
                        // output use and the checksum collection so the
                        // two corrupt consistently. Compiled out of the
                        // non-ABFT monomorphization.
                        if ABFT {
                            if let Some(s) = strike {
                                if s.i == i && s.j == j {
                                    lane ^= 1i64 << s.bit;
                                }
                            }
                            tile_rs[r] += lane as i128;
                            tile_cs[c] += lane as i128;
                        }
                        let ctags = &col_tags[j];
                        let out = &mut block[(i - rows.start) * n + j];
                        if rtags.is_empty() && ctags.is_empty() {
                            let mut win = WindowAcc::new(lo);
                            win.add_aligned(lane);
                            *out = win.round_to_f32();
                            continue;
                        }
                        // Merge-walk both tag lists in k order so a
                        // doubly-tagged position contributes its one
                        // exact product rather than two mixed terms.
                        let mut acc = KulischAcc::new();
                        acc.add_scaled(lane, lo);
                        let (mut x, mut y) = (0usize, 0usize);
                        while x < rtags.len() || y < ctags.len() {
                            let ka = rtags.get(x).map_or(u32::MAX, |t| t.0);
                            let kb = ctags.get(y).map_or(u32::MAX, |t| t.0);
                            if ka < kb {
                                let (kk, sig, f) = rtags[x];
                                x += 1;
                                let other = panel[kk as usize * NR + c] as i64;
                                acc.add_scaled(sig * other, f + base_b);
                            } else if kb < ka {
                                let (kk, sig, f) = ctags[y];
                                y += 1;
                                let other = arow[kk as usize] as i64;
                                acc.add_scaled(sig * other, base_a + f);
                            } else {
                                let (_, siga, fa) = rtags[x];
                                let (_, sigb, fb) = ctags[y];
                                x += 1;
                                y += 1;
                                acc.add_scaled(siga * sigb, fa + fb);
                            }
                        }
                        *out = acc.round_to_f32();
                    }
                }
                if ABFT {
                    if let Some((rs, cs)) = sums.as_mut() {
                        for (r, part) in tile_rs.iter().enumerate().take(mr) {
                            rs[ib + r - rows.start] += part;
                        }
                        for (c, part) in tile_cs.iter().enumerate().take(nr) {
                            cs[jb + c] += part;
                        }
                    }
                }
            };
            // BLIS-style blocked traversal: pure re-association of the same
            // exact integer sums, so every (Mc, Kc, Nc) choice — including
            // the unblocked geometry — is bit-identical at every tier.
            let single_stripe = k <= kc;
            // Per-(Mc,Nc)-block lane plane for the multi-stripe path,
            // allocated lazily and reused across blocks.
            let mut lane_tiles: Vec<[[i64; NR]; MR]> = Vec::new();
            let mut ic = rows.start;
            while ic < rows.end {
                let ic_end = (ic + mc).min(rows.end);
                let mut jc = 0usize;
                while jc < n {
                    let hi_col = (jc + nc).min(n);
                    if single_stripe {
                        // One Kc stripe covers the whole depth: lanes go
                        // straight from registers into the finalize pass.
                        for jb in (jc..hi_col).step_by(NR) {
                            let panel = &bpanels[(jb / NR) * k * NR..(jb / NR + 1) * k * NR];
                            for ib in (ic..ic_end).step_by(MR) {
                                let mr = MR.min(ic_end - ib);
                                let a_rows: [&[i32]; MR] = std::array::from_fn(|r| {
                                    if r < mr {
                                        &aplane[(ib + r) * k..(ib + r + 1) * k]
                                    } else {
                                        zero_row.as_slice()
                                    }
                                });
                                let lanes = microkernel::tile_dot_i32_with(tier, a_rows, panel);
                                finalize_tile(&lanes, ib, jb);
                            }
                        }
                    } else {
                        // Kc stripes accumulate into a tile-major i64 lane
                        // plane covering this (Mc, Nc) block; the band
                        // budget keeps every partial and the full-depth sum
                        // exact in i64, so no spill plane is ever needed.
                        let groups = (hi_col - jc).div_ceil(NR);
                        let tile_rows = (ic_end - ic).div_ceil(MR);
                        lane_tiles.clear();
                        lane_tiles.resize(groups * tile_rows, [[0i64; NR]; MR]);
                        let mut pc = 0usize;
                        while pc < k {
                            let kcl = kc.min(k - pc);
                            for (g, jb) in (jc..hi_col).step_by(NR).enumerate() {
                                let pbase = (jb / NR) * k * NR;
                                let stripe = &bpanels[pbase + pc * NR..pbase + (pc + kcl) * NR];
                                for (tr, ib) in (ic..ic_end).step_by(MR).enumerate() {
                                    let mr = MR.min(ic_end - ib);
                                    let a_rows: [&[i32]; MR] = std::array::from_fn(|r| {
                                        if r < mr {
                                            let row = (ib + r) * k;
                                            &aplane[row + pc..row + pc + kcl]
                                        } else {
                                            &zero_row[..kcl]
                                        }
                                    });
                                    microkernel::tile_mul_i32_with(
                                        tier,
                                        a_rows,
                                        stripe,
                                        &mut lane_tiles[g * tile_rows + tr],
                                    );
                                }
                            }
                            pc += kcl;
                        }
                        for (g, jb) in (jc..hi_col).step_by(NR).enumerate() {
                            for (tr, ib) in (ic..ic_end).step_by(MR).enumerate() {
                                finalize_tile(&lane_tiles[g * tile_rows + tr], ib, jb);
                            }
                        }
                    }
                    jc = hi_col;
                }
                ic = ic_end;
            }
            (block, sums)
        })
    } else {
        // Proof-boundary fallback (`k` so large the lane headroom eats the
        // whole band budget — beyond any realizable tensor): full Kulisch
        // register per element via the batched product API.
        let mut bt = vec![Bf16::ZERO; k * n];
        for kk in 0..k {
            for j in 0..n {
                bt[j * k + kk] = b[kk * n + j];
            }
        }
        owlp_par::map_chunks_weighted(m, row_grain(k, n), ops_per_row, |rows| {
            let mut block = Vec::with_capacity(rows.len() * n);
            for i in rows {
                let row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let mut acc = KulischAcc::new();
                    acc.add_product_batch(row, &bt[j * k..(j + 1) * k]);
                    block.push(acc.round_to_f32());
                }
            }
            (block, None)
        })
    };
    let mut out = Vec::with_capacity(m * n);
    // Observed ABFT sums: row partials concatenate in chunk (row) order;
    // column partials merge elementwise — i128 adds, so order-free and
    // bit-identical at every thread count.
    let mut observed = (ABFT && reference.is_some()).then(|| AbftSums {
        rows: Vec::with_capacity(m),
        cols: vec![0i128; n],
    });
    for (block, chunk_sums) in row_blocks {
        out.extend(block);
        if let (Some(dst), Some((rs, cs))) = (observed.as_mut(), chunk_sums) {
            dst.rows.extend(rs);
            for (d, s) in dst.cols.iter_mut().zip(cs) {
                *d += s;
            }
        }
    }
    let check = match (observed, reference) {
        (Some(observed), Some(reference)) => Some(AbftCheck {
            observed,
            reference,
        }),
        _ => None,
    };
    (out, check)
}

/// Exact GEMM in the `f64` error yardstick (see [`exact_dot_f64`]).
pub fn exact_gemm_f64(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let mut bt = vec![Bf16::ZERO; k * n];
    for kk in 0..k {
        for j in 0..n {
            bt[j * k + kk] = b[kk * n + j];
        }
    }
    let row_blocks =
        owlp_par::map_chunks_weighted(m, row_grain(k, n), 2 * (k as u64) * (n as u64), |rows| {
            let mut block = Vec::with_capacity(rows.len() * n);
            for i in rows {
                let row = &a[i * k..(i + 1) * k];
                for j in 0..n {
                    let mut acc = KulischAcc::new();
                    acc.add_product_batch(row, &bt[j * k..(j + 1) * k]);
                    block.push(acc.to_f64_lossy());
                }
            }
            block
        });
    let mut out = Vec::with_capacity(m * n);
    for block in row_blocks {
        out.extend(block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    #[test]
    fn dot_simple() {
        let a: Vec<Bf16> = [1.0f32, 2.0, 3.0].iter().map(|&x| bf(x)).collect();
        let b: Vec<Bf16> = [4.0f32, 5.0, 6.0].iter().map(|&x| bf(x)).collect();
        assert_eq!(exact_dot(&a, &b), 32.0);
    }

    #[test]
    fn dot_empty_is_positive_zero() {
        assert_eq!(exact_dot(&[], &[]).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn gemm_identity() {
        // A × I = A for a 3×3.
        let a: Vec<Bf16> = (1..=9).map(|i| bf(i as f32 * 0.5)).collect();
        let mut eye = vec![Bf16::ZERO; 9];
        for i in 0..3 {
            eye[i * 3 + i] = Bf16::ONE;
        }
        let c = exact_gemm(&a, &eye, 3, 3, 3);
        for (ci, ai) in c.iter().zip(&a) {
            assert_eq!(*ci, ai.to_f32());
        }
    }

    #[test]
    fn gemm_shapes_nonsquare() {
        // 2×3 × 3×1.
        let a: Vec<Bf16> = [1.0f32, 0.5, 2.0, -1.0, 4.0, 0.25]
            .iter()
            .map(|&x| bf(x))
            .collect();
        let b: Vec<Bf16> = [2.0f32, 4.0, 8.0].iter().map(|&x| bf(x)).collect();
        let c = exact_gemm(&a, &b, 2, 3, 1);
        assert_eq!(
            c,
            vec![1.0 * 2.0 + 0.5 * 4.0 + 2.0 * 8.0, -2.0 + 16.0 + 2.0]
        );
    }

    #[test]
    fn exactness_where_f32_sequential_fails() {
        let mut a = vec![bf(1e30), bf(-1e30)];
        let mut b = vec![Bf16::ONE, Bf16::ONE];
        // Interleave small terms that a sequential f32 accumulator loses.
        for _ in 0..10 {
            a.push(bf(0.5));
            b.push(bf(0.5));
        }
        // Exact: 10 × 0.25 = 2.5.
        assert_eq!(exact_dot(&a, &b), 2.5);
    }

    #[test]
    fn f64_yardstick_agrees_on_easy_cases() {
        let a: Vec<Bf16> = (0..32).map(|i| bf(i as f32 / 8.0)).collect();
        let b: Vec<Bf16> = (0..32).map(|i| bf(1.0 - i as f32 / 64.0)).collect();
        let v32 = exact_dot(&a, &b) as f64;
        let v64 = exact_dot_f64(&a, &b);
        assert!((v32 - v64).abs() <= v64.abs() * 1e-7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = exact_dot(&[Bf16::ONE], &[]);
    }

    /// Per-product Kulisch GEMM — the pre-fast-path reference.
    fn oracle_gemm(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(m * n);
        for i in 0..m {
            for j in 0..n {
                let mut acc = KulischAcc::new();
                for kk in 0..k {
                    acc.add_product(a[i * k + kk], b[kk * n + j]);
                }
                out.push(acc.round_to_f32());
            }
        }
        out
    }

    fn mixed_tensor(len: usize, outlier_every: usize, seed: u64) -> Vec<Bf16> {
        let mut state = seed | 1;
        (0..len)
            .map(|i| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let base = ((state >> 33) as i32 % 999) as f32 * 3e-3 - 1.2;
                let v = match () {
                    _ if i % 11 == 3 => 0.0,
                    _ if outlier_every > 0 && i % outlier_every == 1 => base * 1e24,
                    _ => base,
                };
                bf(v)
            })
            .collect()
    }

    #[test]
    fn window_fast_path_matches_per_product_oracle() {
        // Narrow span: the window fast path fires.
        let (m, k, n) = (7, 33, 11);
        let a = mixed_tensor(m * k, 0, 7);
        let b = mixed_tensor(k * n, 0, 8);
        let fast = exact_gemm(&a, &b, m, k, n);
        let oracle = oracle_gemm(&a, &b, m, k, n);
        for (x, y) in fast.iter().zip(&oracle) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn wide_span_tagged_path_matches_per_product_oracle() {
        // Outliers stretch the product span far past any single band (and
        // past the i128 window), so the banded path must tag out-of-band
        // elements and patch each output with exact corrections.
        let (m, k, n) = (5, 29, 9);
        let a = mixed_tensor(m * k, 13, 17);
        let b = mixed_tensor(k * n, 7, 23);
        let span_a = frame_span(&a).expect("nonzero");
        let span_b = frame_span(&b).expect("nonzero");
        assert!(
            product_window(span_a, span_b, k).is_none(),
            "test tensors must be span-hostile"
        );
        let banded = exact_gemm(&a, &b, m, k, n);
        let oracle = oracle_gemm(&a, &b, m, k, n);
        for (x, y) in banded.iter().zip(&oracle) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn forced_blocks_stay_bit_identical_with_tags_and_abft() {
        use owlp_format::{with_block, BlockGeometry};
        // Span-hostile tensors so the tag-correction path runs too.
        let (m, k, n) = (13, 29, 9);
        let a = mixed_tensor(m * k, 13, 17);
        let b = mixed_tensor(k * n, 7, 23);
        let strike = Some(LaneStrike {
            i: 4,
            j: 2,
            bit: 21,
        });
        let baseline = with_block(BlockGeometry::UNBLOCKED, || {
            exact_gemm_abft(&a, &b, m, k, n, strike)
        });
        // Ragged tails, block == extent, block > extent, and the
        // multi-stripe lane-plane path (kc < k) all regroup the same exact
        // integer sums — outputs and checksums must match bit for bit.
        for geom in ["4,8,4", "8,29,12", "16,64,16", "4,16,8", "12,12,4"] {
            let g = BlockGeometry::parse(geom).unwrap();
            let (out, check) = with_block(g, || exact_gemm_abft(&a, &b, m, k, n, strike));
            for (x, y) in out.iter().zip(&baseline.0) {
                assert_eq!(x.to_bits(), y.to_bits(), "geometry {geom}");
            }
            assert_eq!(
                check.as_ref().map(|c| &c.observed),
                baseline.1.as_ref().map(|c| &c.observed),
                "geometry {geom}"
            );
        }
    }

    #[test]
    fn abft_check_is_clean_and_localizes_a_lane_strike() {
        let (m, k, n) = (7, 33, 11);
        let a = mixed_tensor(m * k, 0, 7);
        let b = mixed_tensor(k * n, 0, 8);
        let (out, check) = exact_gemm_abft(&a, &b, m, k, n, None);
        assert_eq!(out, exact_gemm(&a, &b, m, k, n), "ABFT must not perturb");
        let check = check.expect("fast path ran");
        assert_eq!(check.observed, check.reference, "clean run, exact match");
        assert_eq!(check.mismatches(), (vec![], vec![]));
        let strike = LaneStrike {
            i: 2,
            j: 5,
            bit: 33,
        };
        let (bad, struck) = exact_gemm_abft(&a, &b, m, k, n, Some(strike));
        let struck = struck.expect("fast path ran");
        assert_eq!(struck.mismatches(), (vec![2], vec![5]), "localized");
        assert_ne!(bad[2 * n + 5].to_bits(), out[2 * n + 5].to_bits());
    }

    #[test]
    fn abft_ignores_out_of_band_tag_corrections() {
        // Span-hostile tensors: outliers go down the tag-correction path,
        // which bypasses the lanes on both sides of the comparison — a
        // heavy-outlier run must still check perfectly clean.
        let (m, k, n) = (5, 29, 9);
        let a = mixed_tensor(m * k, 13, 17);
        let b = mixed_tensor(k * n, 7, 23);
        let (out, check) = exact_gemm_abft(&a, &b, m, k, n, None);
        assert_eq!(out, exact_gemm(&a, &b, m, k, n));
        let check = check.expect("banded path ran");
        assert_eq!(check.observed, check.reference);
    }

    #[test]
    fn abft_is_bit_identical_across_thread_counts() {
        let (m, k, n) = (4 * row_grain(37, 19), 37, 19);
        let a = mixed_tensor(m * k, 0, 31);
        let b = mixed_tensor(k * n, 0, 37);
        let serial = owlp_par::with_threads(1, || exact_gemm_abft(&a, &b, m, k, n, None));
        for t in [2, 4, 8] {
            let par = owlp_par::with_threads(t, || exact_gemm_abft(&a, &b, m, k, n, None));
            assert_eq!(par.1, serial.1, "{t} threads");
            for (x, y) in par.0.iter().zip(&serial.0) {
                assert_eq!(x.to_bits(), y.to_bits(), "{t} threads");
            }
        }
    }

    #[test]
    fn band_split_respects_budget_and_caps() {
        for span_a in [0, 3, 23, 40, 200] {
            for span_b in [0, 5, 23, 47, 180] {
                for budget in [0, 7, 24, 46] {
                    let (wa, wb) = split_band_widths(span_a, span_b, budget);
                    assert!(wa >= 0 && wb >= 0);
                    assert!(wa + wb <= budget, "{span_a} {span_b} {budget}");
                    assert!(wa <= MAX_BAND_WIDTH && wb <= MAX_BAND_WIDTH);
                    assert!(wa <= span_a && wb <= span_b);
                }
            }
        }
    }

    #[test]
    fn densest_band_prefers_the_crowded_frames() {
        // 30 values near 1.0 and a lone 1e30 outlier: the densest width-4
        // band must sit on the cluster, not the outlier.
        let mut t: Vec<Bf16> = (0..30).map(|i| bf(1.0 + i as f32 / 64.0)).collect();
        t.push(bf(1e30));
        let span = frame_span(&t).expect("nonzero");
        let base = densest_band(&t, span, 4);
        let cluster_frames: Vec<i32> = t[..30].iter().map(|x| x.pow2_frame()).collect();
        let lo = *cluster_frames.iter().min().unwrap();
        assert!(base <= lo && lo <= base + 4, "base {base} misses cluster");
    }

    #[test]
    fn all_zero_factor_gives_positive_zero_grid() {
        let a = vec![Bf16::ZERO; 6];
        let b = mixed_tensor(6, 0, 5);
        let c = exact_gemm(&a, &b, 2, 3, 2);
        assert!(c.iter().all(|v| v.to_bits() == 0.0f32.to_bits()));
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        // m is a few multiples of the row grain so the run really spans
        // several parallel chunks.
        let (m, k, n) = (4 * row_grain(37, 19), 37, 19);
        let a: Vec<Bf16> = (0..m * k)
            .map(|i| bf(((i * 37 % 101) as f32 - 50.0) * 0.03125))
            .collect();
        let b: Vec<Bf16> = (0..k * n)
            .map(|i| bf(((i * 17 % 89) as f32 - 44.0) * 0.0625))
            .collect();
        let serial = owlp_par::with_threads(1, || exact_gemm(&a, &b, m, k, n));
        for t in [2, 4, 8] {
            let par = owlp_par::with_threads(t, || exact_gemm(&a, &b, m, k, n));
            for (x, y) in par.iter().zip(&serial) {
                assert_eq!(x.to_bits(), y.to_bits(), "{t} threads");
            }
            let par64 = owlp_par::with_threads(t, || exact_gemm_f64(&a, &b, m, k, n));
            let ser64 = owlp_par::with_threads(1, || exact_gemm_f64(&a, &b, m, k, n));
            for (x, y) in par64.iter().zip(&ser64) {
                assert_eq!(x.to_bits(), y.to_bits(), "{t} threads (f64)");
            }
        }
    }
}
