//! Correctly-rounded reference dot products and GEMM.
//!
//! These are the golden functions of the whole reproduction: the
//! mathematically exact sum of BF16 products, rounded **once** to FP32.
//! [`crate::gemm::owlp_gemm`] must match them bit-for-bit; the sequential
//! FP32 baseline of [`crate::fpmac`] generally does not (it rounds at every
//! accumulation step).

use crate::kulisch::KulischAcc;
use owlp_format::Bf16;

/// The exact dot product of two BF16 slices, rounded once to `f32`
/// (round-to-nearest-even).
///
/// # Panics
///
/// Panics if the slices differ in length or contain non-finite values.
///
/// ```
/// use owlp_format::Bf16;
/// use owlp_arith::exact_dot;
/// let a = vec![Bf16::from_f32(1e30), Bf16::from_f32(1.0), Bf16::from_f32(-1e30)];
/// let b = vec![Bf16::ONE; 3];
/// assert_eq!(exact_dot(&a, &b), 1.0); // no catastrophic cancellation
/// ```
pub fn exact_dot(a: &[Bf16], b: &[Bf16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = KulischAcc::new();
    for (&x, &y) in a.iter().zip(b) {
        acc.add_product(x, y);
    }
    acc.round_to_f32()
}

/// The exact dot product evaluated in extended precision `f64` view — used
/// as the error yardstick for the approximate quantization schemes of
/// paper Table I (where f32's own grid would mask their error).
pub fn exact_dot_f64(a: &[Bf16], b: &[Bf16]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = KulischAcc::new();
    for (&x, &y) in a.iter().zip(b) {
        acc.add_product(x, y);
    }
    acc.to_f64_lossy()
}

/// Row tiles per parallel chunk: aim for roughly this many scalar products
/// per chunk so thread fan-out only engages on GEMMs that can pay for it.
const GEMM_GRAIN_OPS: usize = 1 << 14;

/// Rows of output per parallel chunk for an `m×k · k×n` GEMM.
pub(crate) fn row_grain(k: usize, n: usize) -> usize {
    (GEMM_GRAIN_OPS / (k.saturating_mul(n)).max(1)).max(1)
}

/// Exact GEMM: `C[m][n] = round_once(Σ_k A[m][k]·B[k][n])`.
///
/// `a` is `m×k` row-major, `b` is `k×n` row-major; the result is `m×n`
/// row-major. Output rows are computed tile-parallel on the [`owlp_par`]
/// grid and assembled in row order; every output element is an independent
/// single-rounded exact sum, so the result is bit-identical at every
/// thread count.
///
/// # Panics
///
/// Panics on shape mismatch or non-finite inputs.
pub fn exact_gemm(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let row_blocks = owlp_par::map_chunks(m, row_grain(k, n), |rows| {
        let mut block = Vec::with_capacity(rows.len() * n);
        for i in rows {
            for j in 0..n {
                let mut acc = KulischAcc::new();
                for kk in 0..k {
                    acc.add_product(a[i * k + kk], b[kk * n + j]);
                }
                block.push(acc.round_to_f32());
            }
        }
        block
    });
    let mut out = Vec::with_capacity(m * n);
    for block in row_blocks {
        out.extend(block);
    }
    out
}

/// Exact GEMM in the `f64` error yardstick (see [`exact_dot_f64`]).
pub fn exact_gemm_f64(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f64> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let row_blocks = owlp_par::map_chunks(m, row_grain(k, n), |rows| {
        let mut block = Vec::with_capacity(rows.len() * n);
        for i in rows {
            for j in 0..n {
                let mut acc = KulischAcc::new();
                for kk in 0..k {
                    acc.add_product(a[i * k + kk], b[kk * n + j]);
                }
                block.push(acc.to_f64_lossy());
            }
        }
        block
    });
    let mut out = Vec::with_capacity(m * n);
    for block in row_blocks {
        out.extend(block);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    #[test]
    fn dot_simple() {
        let a: Vec<Bf16> = [1.0f32, 2.0, 3.0].iter().map(|&x| bf(x)).collect();
        let b: Vec<Bf16> = [4.0f32, 5.0, 6.0].iter().map(|&x| bf(x)).collect();
        assert_eq!(exact_dot(&a, &b), 32.0);
    }

    #[test]
    fn dot_empty_is_positive_zero() {
        assert_eq!(exact_dot(&[], &[]).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn gemm_identity() {
        // A × I = A for a 3×3.
        let a: Vec<Bf16> = (1..=9).map(|i| bf(i as f32 * 0.5)).collect();
        let mut eye = vec![Bf16::ZERO; 9];
        for i in 0..3 {
            eye[i * 3 + i] = Bf16::ONE;
        }
        let c = exact_gemm(&a, &eye, 3, 3, 3);
        for (ci, ai) in c.iter().zip(&a) {
            assert_eq!(*ci, ai.to_f32());
        }
    }

    #[test]
    fn gemm_shapes_nonsquare() {
        // 2×3 × 3×1.
        let a: Vec<Bf16> = [1.0f32, 0.5, 2.0, -1.0, 4.0, 0.25]
            .iter()
            .map(|&x| bf(x))
            .collect();
        let b: Vec<Bf16> = [2.0f32, 4.0, 8.0].iter().map(|&x| bf(x)).collect();
        let c = exact_gemm(&a, &b, 2, 3, 1);
        assert_eq!(
            c,
            vec![1.0 * 2.0 + 0.5 * 4.0 + 2.0 * 8.0, -2.0 + 16.0 + 2.0]
        );
    }

    #[test]
    fn exactness_where_f32_sequential_fails() {
        let mut a = vec![bf(1e30), bf(-1e30)];
        let mut b = vec![Bf16::ONE, Bf16::ONE];
        // Interleave small terms that a sequential f32 accumulator loses.
        for _ in 0..10 {
            a.push(bf(0.5));
            b.push(bf(0.5));
        }
        // Exact: 10 × 0.25 = 2.5.
        assert_eq!(exact_dot(&a, &b), 2.5);
    }

    #[test]
    fn f64_yardstick_agrees_on_easy_cases() {
        let a: Vec<Bf16> = (0..32).map(|i| bf(i as f32 / 8.0)).collect();
        let b: Vec<Bf16> = (0..32).map(|i| bf(1.0 - i as f32 / 64.0)).collect();
        let v32 = exact_dot(&a, &b) as f64;
        let v64 = exact_dot_f64(&a, &b);
        assert!((v32 - v64).abs() <= v64.abs() * 1e-7);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = exact_dot(&[Bf16::ONE], &[]);
    }

    #[test]
    fn parallel_gemm_is_bit_identical_to_serial() {
        // m is a few multiples of the row grain so the run really spans
        // several parallel chunks.
        let (m, k, n) = (4 * row_grain(37, 19), 37, 19);
        let a: Vec<Bf16> = (0..m * k)
            .map(|i| bf(((i * 37 % 101) as f32 - 50.0) * 0.03125))
            .collect();
        let b: Vec<Bf16> = (0..k * n)
            .map(|i| bf(((i * 17 % 89) as f32 - 44.0) * 0.0625))
            .collect();
        let serial = owlp_par::with_threads(1, || exact_gemm(&a, &b, m, k, n));
        for t in [2, 4, 8] {
            let par = owlp_par::with_threads(t, || exact_gemm(&a, &b, m, k, n));
            for (x, y) in par.iter().zip(&serial) {
                assert_eq!(x.to_bits(), y.to_bits(), "{t} threads");
            }
            let par64 = owlp_par::with_threads(t, || exact_gemm_f64(&a, &b, m, k, n));
            let ser64 = owlp_par::with_threads(1, || exact_gemm_f64(&a, &b, m, k, n));
            for (x, y) in par64.iter().zip(&ser64) {
                assert_eq!(x.to_bits(), y.to_bits(), "{t} threads (f64)");
            }
        }
    }
}
