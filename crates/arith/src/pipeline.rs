//! Register-accurate PE pipeline models.
//!
//! Table V contrasts the baseline's **4-stage** fused FP MAC pipeline with
//! OwL-P's **2-stage** INT PE. This module models both at
//! register-transfer granularity — issue an operand bundle per cycle,
//! results emerge after the pipeline latency, one result per cycle at full
//! throughput — so latency/occupancy claims can be tested rather than
//! asserted, and so the event simulator's skew bookkeeping has a
//! cycle-true reference for single PEs.
//!
//! The *values* computed are exactly those of [`crate::pe`] and
//! [`crate::fpmac`]; the pipeline adds only timing.

use crate::pe::{PeConfig, PeOutput, ProcessingElement};
use owlp_format::decode::DecodedOperand;
use owlp_format::Bf16;
use serde::{Deserialize, Serialize};

/// One in-flight OwL-P PE operation.
#[derive(Debug, Clone, PartialEq)]
struct OwlpBundle {
    acts: Vec<DecodedOperand>,
    wts: Vec<DecodedOperand>,
    tag: u64,
}

/// A 2-stage OwL-P PE pipeline: stage 0 multiplies + shifts, stage 1
/// path-selects + accumulates; a result retires every cycle once full.
///
/// ```
/// use owlp_arith::pipeline::OwlpPePipeline;
/// use owlp_arith::pe::PeConfig;
///
/// let mut pipe = OwlpPePipeline::new(PeConfig::PAPER, 124, 124);
/// assert_eq!(pipe.latency(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OwlpPePipeline {
    pe: ProcessingElement,
    shared_a: u8,
    shared_w: u8,
    stages: [Option<OwlpBundle>; 2],
    cycle: u64,
    retired: u64,
}

/// A retired result with its timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Retired<T> {
    /// Caller-supplied tag identifying the issued bundle.
    pub tag: u64,
    /// Cycle at which the result left the pipeline.
    pub cycle: u64,
    /// The computed result.
    pub result: T,
}

impl OwlpPePipeline {
    /// Creates an empty pipeline bound to the tensors' shared exponents.
    pub fn new(config: PeConfig, shared_a: u8, shared_w: u8) -> Self {
        OwlpPePipeline {
            pe: ProcessingElement::new(config),
            shared_a,
            shared_w,
            stages: [None, None],
            cycle: 0,
            retired: 0,
        }
    }

    /// Pipeline latency in cycles (Table V: 2 for OwL-P).
    pub fn latency(&self) -> u32 {
        2
    }

    /// Current cycle count.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Results retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Advances one cycle, optionally issuing a new bundle, and returns the
    /// retiring result, if any.
    ///
    /// The datapath itself never stalls (path-overflow inputs are the
    /// scheduler's responsibility; they are evaluated with the unchecked
    /// datapath here and surfaced in the output's outlier list).
    pub fn step(
        &mut self,
        issue: Option<(u64, Vec<DecodedOperand>, Vec<DecodedOperand>)>,
    ) -> Option<Retired<PeOutput>> {
        self.cycle += 1;
        // Stage 1 retires.
        let retiring = self.stages[1].take().map(|b| {
            self.retired += 1;
            Retired {
                tag: b.tag,
                cycle: self.cycle,
                result: self
                    .pe
                    .dot_unchecked(&b.acts, &b.wts, self.shared_a, self.shared_w),
            }
        });
        // Stage 0 advances.
        self.stages[1] = self.stages[0].take();
        // Issue.
        if let Some((tag, acts, wts)) = issue {
            self.stages[0] = Some(OwlpBundle { acts, wts, tag });
        }
        retiring
    }

    /// Drains remaining in-flight operations, returning them in retirement
    /// order.
    pub fn drain(&mut self) -> Vec<Retired<PeOutput>> {
        let mut out = Vec::new();
        while self.stages.iter().any(Option::is_some) {
            if let Some(r) = self.step(None) {
                out.push(r);
            }
        }
        out
    }
}

/// One in-flight FMA operation.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FmaBundle {
    a: Bf16,
    b: Bf16,
    acc_in: f32,
    tag: u64,
}

/// The baseline 4-stage fused FP MAC pipeline: multiply, align, add,
/// normalise/round. Accumulator forwarding is the caller's concern (in a
/// systolic column the psum arrives from the PE above, so no same-PE
/// read-after-write hazard exists).
#[derive(Debug, Clone, PartialEq)]
pub struct FmaPipeline {
    stages: [Option<FmaBundle>; 4],
    cycle: u64,
    retired: u64,
}

impl Default for FmaPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl FmaPipeline {
    /// Creates an empty pipeline.
    pub fn new() -> Self {
        FmaPipeline {
            stages: [None; 4],
            cycle: 0,
            retired: 0,
        }
    }

    /// Pipeline latency in cycles (Table V: 4 for the baseline).
    pub fn latency(&self) -> u32 {
        4
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Results retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Advances one cycle; `issue` is `(tag, a, b, acc_in)`.
    pub fn step(&mut self, issue: Option<(u64, Bf16, Bf16, f32)>) -> Option<Retired<f32>> {
        self.cycle += 1;
        let retiring = self.stages[3].take().map(|b| {
            self.retired += 1;
            Retired {
                tag: b.tag,
                cycle: self.cycle,
                result: b.acc_in + b.a.to_f32() * b.b.to_f32(),
            }
        });
        self.stages[3] = self.stages[2].take();
        self.stages[2] = self.stages[1].take();
        self.stages[1] = self.stages[0].take();
        if let Some((tag, a, b, acc_in)) = issue {
            self.stages[0] = Some(FmaBundle { a, b, acc_in, tag });
        }
        retiring
    }

    /// Drains remaining in-flight operations.
    pub fn drain(&mut self) -> Vec<Retired<f32>> {
        let mut out = Vec::new();
        while self.stages.iter().any(Option::is_some) {
            if let Some(r) = self.step(None) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::{BiasDecoder, ExponentWindow};

    fn ops(xs: &[f32]) -> Vec<DecodedOperand> {
        let w = ExponentWindow::owlp(124);
        let dec = BiasDecoder::new(124);
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    }

    #[test]
    fn owlp_latency_is_two_cycles() {
        // An op issued on step k retires on step k + latency.
        let mut p = OwlpPePipeline::new(PeConfig::PAPER, 124, 124);
        let acts = ops(&[1.0; 8]);
        let wts = ops(&[2.0; 8]);
        assert!(p.step(Some((7, acts, wts))).is_none()); // step 1: stage 0
        assert!(p.step(None).is_none()); // step 2: stage 1
        let r = p.step(None).expect("retires 2 cycles after issue"); // step 3
        assert_eq!(r.tag, 7);
        assert_eq!(r.cycle, 1 + p.latency() as u64);
        let v = r.result.normal_sum as f64 * (r.result.normal_frame as f64).exp2();
        assert_eq!(v, 16.0);
    }

    #[test]
    fn fma_latency_is_four_cycles() {
        let mut p = FmaPipeline::new();
        assert!(p
            .step(Some((1, Bf16::from_f32(3.0), Bf16::from_f32(2.0), 1.0)))
            .is_none());
        for _ in 0..3 {
            assert!(p.step(None).is_none());
        }
        let r = p.step(None).expect("retires 4 cycles after issue");
        assert_eq!(r.result, 7.0);
        assert_eq!(r.cycle, 1 + p.latency() as u64);
    }

    #[test]
    fn full_throughput_one_result_per_cycle() {
        let mut p = OwlpPePipeline::new(PeConfig::PAPER, 124, 124);
        let acts = ops(&[1.0; 8]);
        let wts = ops(&[1.0; 8]);
        let mut retired = 0u64;
        for i in 0..100u64 {
            if p.step(Some((i, acts.clone(), wts.clone()))).is_some() {
                retired += 1;
            }
        }
        retired += p.drain().len() as u64;
        assert_eq!(retired, 100);
        // 100 issues retire in 100 + latency cycles.
        assert_eq!(p.cycle(), 100 + 2);
    }

    #[test]
    fn results_retire_in_issue_order() {
        let mut p = FmaPipeline::new();
        let mut tags = Vec::new();
        for i in 0..20u64 {
            if let Some(r) = p.step(Some((i, Bf16::from_f32(i as f32), Bf16::ONE, 0.0))) {
                tags.push(r.tag);
            }
        }
        tags.extend(p.drain().into_iter().map(|r| r.tag));
        assert_eq!(tags, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn pipeline_values_match_the_functional_models() {
        // FMA pipeline result == fp arithmetic; OwL-P pipeline result ==
        // ProcessingElement::dot_unchecked.
        let acts = ops(&[1.5, 2.0, 0.5, 1.0, 3.0, 0.25, 1.25, 2.5]);
        let wts = ops(&[0.5, 1.0, 2.0, 4.0, 0.5, 4.0, 1.0, 0.5]);
        let mut p = OwlpPePipeline::new(PeConfig::PAPER, 124, 124);
        p.step(Some((0, acts.clone(), wts.clone())));
        let r = p.drain().remove(0);
        let pe = ProcessingElement::new(PeConfig::PAPER);
        assert_eq!(r.result, pe.dot_unchecked(&acts, &wts, 124, 124));
    }

    #[test]
    fn bubbles_pass_through() {
        let mut p = OwlpPePipeline::new(PeConfig::PAPER, 124, 124);
        let acts = ops(&[1.0; 8]);
        let wts = ops(&[1.0; 8]);
        p.step(Some((1, acts.clone(), wts.clone()))); // step 1
        p.step(None); // step 2: op 1 in stage 1
        assert_eq!(p.retired(), 0);
        p.step(Some((2, acts, wts))); // step 3: op 1 retires, op 2 issues
        assert_eq!(p.retired(), 1);
        p.step(None); // step 4
        assert_eq!(p.retired(), 1);
        p.step(None); // step 5: op 2 retires (the bubble flowed through)
        assert_eq!(p.retired(), 2);
    }
}
