//! The bottom-of-column align unit (paper Fig. 4b).
//!
//! At the end of a PE column, the accumulated normal partial sum and the
//! bypassed outlier results — each an exact integer in its own power-of-two
//! frame — are combined into one number and handed to the INT2FP unit. The
//! align unit identifies the maximum exponent `E_max` among the partial-sum
//! frame (`E_part = shared_a + shared_w`) and the outlier frames, aligns all
//! contributions to it, and adds.
//!
//! Two fidelity levels are modelled:
//!
//! * [`AlignUnit::exact`] — unlimited alignment width. Every contribution is
//!   added exactly, so the subsequent single rounding yields the correctly
//!   rounded FP32 dot product. This is what the paper's correctness
//!   guarantee corresponds to (and what `owlp-arith`'s equivalence tests
//!   use).
//! * [`AlignUnit::bounded`] — a `width`-bit aligned accumulator with a
//!   sticky bit, as hardware would build it. Contributions further than
//!   `width` bits below `E_max` are truncated into the sticky bit. The
//!   ablation benches quantify how narrow the unit can be before results
//!   diverge from exact (in practice BF16's 8-bit significands and the
//!   narrow normal window make ~64 bits sufficient for bit-exactness on
//!   real workloads).

use crate::int2fp::round_u128_to_f32;
use crate::kulisch::KulischAcc;
use crate::pe::OutlierResult;
use serde::{Deserialize, Serialize};

/// One exact addend: `value = mag × 2^frame`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Contribution {
    /// Signed integer magnitude.
    pub mag: i64,
    /// Power-of-two frame exponent.
    pub frame: i32,
}

impl From<OutlierResult> for Contribution {
    fn from(o: OutlierResult) -> Self {
        Contribution {
            mag: o.mag,
            frame: o.frame,
        }
    }
}

/// Alignment/accumulation policy for combining a column's results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AlignUnit {
    /// Unlimited width: exact accumulation, correctly rounded result.
    #[default]
    Exact,
    /// A `width`-bit aligned integer accumulator with sticky truncation.
    Bounded {
        /// Accumulator width in bits (≥ 32).
        width: u32,
    },
}

impl AlignUnit {
    /// The exact (reference) align unit.
    pub fn exact() -> Self {
        AlignUnit::Exact
    }

    /// A bounded hardware align unit.
    ///
    /// # Panics
    ///
    /// Panics if `width < 32` or `width > 120` (the model accumulates in
    /// `i128` and needs carry headroom).
    pub fn bounded(width: u32) -> Self {
        assert!(
            (32..=120).contains(&width),
            "align width {width} out of the modelled range"
        );
        AlignUnit::Bounded { width }
    }

    /// Combines contributions and converts to `f32` in one rounding.
    ///
    /// ```
    /// use owlp_arith::{AlignUnit, Contribution};
    /// let unit = AlignUnit::exact();
    /// let r = unit.reduce(&[
    ///     Contribution { mag: 3, frame: 0 },   // 3.0
    ///     Contribution { mag: 1, frame: -2 },  // 0.25
    /// ]);
    /// assert_eq!(r, 3.25);
    /// ```
    pub fn reduce(&self, contributions: &[Contribution]) -> f32 {
        match *self {
            AlignUnit::Exact => {
                let mut acc = KulischAcc::new();
                for c in contributions {
                    acc.add_scaled(c.mag, c.frame);
                }
                acc.round_to_f32()
            }
            AlignUnit::Bounded { width } => reduce_bounded(contributions, width),
        }
    }
}

/// Bounded-width alignment: all contributions are aligned to the maximum
/// frame; bits falling more than `width` below the leading position are
/// folded into a sticky flag (sign-magnitude truncation, the standard
/// aligned-adder construction).
fn reduce_bounded(contributions: &[Contribution], width: u32) -> f32 {
    let nonzero: Vec<Contribution> = contributions
        .iter()
        .copied()
        .filter(|c| c.mag != 0)
        .collect();
    if nonzero.is_empty() {
        return 0.0;
    }
    // Frame of the accumulator LSB: highest contribution top-bit minus width.
    let top = nonzero
        .iter()
        .map(|c| c.frame + 64 - c.mag.unsigned_abs().leading_zeros() as i32)
        .max()
        .expect("nonzero set");
    let lsb_frame = top - width as i32;
    let mut acc: i128 = 0;
    let mut sticky = false;
    for c in &nonzero {
        let shift = c.frame - lsb_frame;
        if shift >= 0 {
            acc += (c.mag as i128) << shift;
        } else {
            let s = (-shift) as u32;
            if s >= 64 {
                sticky |= c.mag != 0;
                continue;
            }
            let abs = c.mag.unsigned_abs();
            let kept = (abs >> s) as i128;
            sticky |= abs & ((1u64 << s) - 1) != 0;
            acc += if c.mag < 0 { -kept } else { kept };
        }
    }
    if acc == 0 {
        return 0.0;
    }
    let negative = acc < 0;
    round_u128_to_f32(acc.unsigned_abs(), lsb_frame, sticky, negative)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_reduce_simple() {
        let unit = AlignUnit::exact();
        let r = unit.reduce(&[
            Contribution { mag: 10, frame: -1 },
            Contribution { mag: -3, frame: 0 },
        ]);
        assert_eq!(r, 2.0);
    }

    #[test]
    fn exact_reduce_empty_is_zero() {
        assert_eq!(AlignUnit::exact().reduce(&[]).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn exact_handles_huge_frame_gaps() {
        // 2^200 + 2^-200 − 2^200 = 2^-200 exactly.
        let unit = AlignUnit::exact();
        let r = unit.reduce(&[
            Contribution { mag: 1, frame: 200 },
            Contribution {
                mag: 1,
                frame: -200,
            },
            Contribution {
                mag: -1,
                frame: 200,
            },
        ]);
        assert_eq!(r, (-200.0f32).exp2());
    }

    #[test]
    fn bounded_matches_exact_when_wide_enough() {
        let contributions = vec![
            Contribution {
                mag: 123_456,
                frame: -10,
            },
            Contribution {
                mag: -987,
                frame: -3,
            },
            Contribution { mag: 42, frame: 5 },
            Contribution {
                mag: 7_777_777,
                frame: -20,
            },
        ];
        let exact = AlignUnit::exact().reduce(&contributions);
        for width in [64, 96, 120] {
            let b = AlignUnit::bounded(width).reduce(&contributions);
            assert_eq!(b.to_bits(), exact.to_bits(), "width {width}");
        }
    }

    #[test]
    fn bounded_truncates_distant_small_terms_into_sticky() {
        // A term 100 bits below the leader only matters through sticky.
        let contributions = vec![
            Contribution { mag: 1, frame: 100 },
            Contribution { mag: 1, frame: -40 },
        ];
        let exact = AlignUnit::exact().reduce(&contributions);
        let narrow = AlignUnit::bounded(32).reduce(&contributions);
        // Both round to 2^100: the tiny term is below half-ulp either way.
        assert_eq!(exact, narrow);
        assert_eq!(exact, (100.0f32).exp2());
    }

    #[test]
    fn bounded_can_deviate_when_cancellation_exceeds_width() {
        // Two large terms cancel; a term 80 bits down carries the result.
        // A 48-bit unit loses it entirely (sticky only).
        let contributions = vec![
            Contribution {
                mag: 1 << 30,
                frame: 40,
            },
            Contribution {
                mag: -(1 << 30),
                frame: 40,
            },
            Contribution { mag: 3, frame: -30 },
        ];
        let exact = AlignUnit::exact().reduce(&contributions);
        assert_eq!(exact, 3.0 * (-30.0f32).exp2());
        let narrow = AlignUnit::bounded(32).reduce(&contributions);
        // The narrow unit sees only sticky from the small term: result 0.
        assert_eq!(narrow, 0.0);
    }

    #[test]
    fn all_zero_contributions() {
        let unit = AlignUnit::bounded(64);
        assert_eq!(unit.reduce(&[Contribution { mag: 0, frame: 10 }]), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of the modelled range")]
    fn bounded_width_validation() {
        let _ = AlignUnit::bounded(16);
    }

    #[test]
    fn contribution_from_outlier_result() {
        let o = OutlierResult { mag: -5, frame: 3 };
        let c: Contribution = o.into();
        assert_eq!(c.mag, -5);
        assert_eq!(c.frame, 3);
    }
}
