//! AArch64 NEON tier: `smlal`-family widening multiply-accumulates.
//!
//! The exactness argument mirrors [`super::x86`]: `vmull_s16`/`vmlal_s16`
//! produce/accumulate exact `i32` values (one `vmull` + one `vmlal` sums
//! two `i16×i16` products per `i32` lane — `≤ 2·32752² < 2^31`, so the
//! `i32` never wraps given the sval bound), and every `i32` partial is
//! widened to `i64` lanes (`vaddw_s32` / `vpadalq_s32`) before further
//! accumulation. `vmlal_s32` is an exact 32×32→64 widening MAC for the
//! band path. NEON is mandatory in AArch64, so these are safe functions
//! dispatched whenever the tier is selected.

#![allow(unsafe_code)]

use super::{scalar, MR, NR};
use std::arch::aarch64::*;

/// NEON tier of [`super::tile_mul_i16`]: two K-depths × `NR` columns per
/// step, one `vmull_s16` + `vmlal_s16` per row, widened via `vaddw_s32`.
#[inline]
pub fn tile_mul_i16_neon(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    let pairs = seg & !1;
    unsafe {
        let p = panel.as_ptr();
        let mut acc = [[vdupq_n_s64(0); 2]; MR];
        let mut kk = 0usize;
        while kk < pairs {
            let b0 = vld1_s16(p.add(kk * NR)); // depth kk, NR columns
            let b1 = vld1_s16(p.add((kk + 1) * NR)); // depth kk+1
            for r in 0..MR {
                let a0 = vdup_n_s16(*a_rows[r].get_unchecked(kk));
                let a1 = vdup_n_s16(*a_rows[r].get_unchecked(kk + 1));
                // Exact i32 column sums over the depth pair.
                let s = vmlal_s16(vmull_s16(a0, b0), a1, b1);
                acc[r][0] = vaddw_s32(acc[r][0], vget_low_s32(s));
                acc[r][1] = vaddw_s32(acc[r][1], vget_high_s32(s));
            }
            kk += 2;
        }
        for (lr, ar) in lanes.iter_mut().zip(&acc) {
            let mut t = [0i64; NR];
            vst1q_s64(t.as_mut_ptr(), ar[0]);
            vst1q_s64(t.as_mut_ptr().add(2), ar[1]);
            for (lane, v) in lr.iter_mut().zip(t) {
                *lane += v;
            }
        }
    }
    if pairs < seg {
        let sub: [&[i16]; MR] = std::array::from_fn(|r| &a_rows[r][pairs..]);
        scalar::tile_mul_i16(sub, &panel[pairs * NR..], lanes);
    }
}

/// NEON tier of one [`super::dot_sval`] K-segment: 8 products per step,
/// pairwise-accumulated into i64 lanes with `vpadalq_s32`.
#[inline]
pub fn dot_seg_neon(a: &[i16], b: &[i16]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let wide = len & !7;
    let mut sum;
    unsafe {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc = vdupq_n_s64(0);
        let mut i = 0usize;
        while i < wide {
            let x = vld1q_s16(pa.add(i));
            let y = vld1q_s16(pb.add(i));
            // Two i16×i16 products per i32 lane — exact under the sval bound.
            let prod = vmlal_s16(
                vmull_s16(vget_low_s16(x), vget_low_s16(y)),
                vget_high_s16(x),
                vget_high_s16(y),
            );
            acc = vpadalq_s32(acc, prod);
            i += 8;
        }
        sum = vaddvq_s64(acc);
    }
    sum += scalar::dot_seg(&a[wide..], &b[wide..]);
    sum
}

/// NEON tier of [`super::tile_mul_i32`]: per depth, `vmlal_s32` widening
/// MACs of the broadcast A value against each half of the panel quad.
#[inline]
pub fn tile_mul_i32_neon(a_rows: [&[i32]; MR], panel: &[i32], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    unsafe {
        let p = panel.as_ptr();
        let mut acc = [[vdupq_n_s64(0); 2]; MR];
        for kk in 0..seg {
            let b = vld1q_s32(p.add(kk * NR));
            let (blo, bhi) = (vget_low_s32(b), vget_high_s32(b));
            for r in 0..MR {
                let av = vdup_n_s32(*a_rows[r].get_unchecked(kk));
                acc[r][0] = vmlal_s32(acc[r][0], blo, av);
                acc[r][1] = vmlal_s32(acc[r][1], bhi, av);
            }
        }
        for (lr, ar) in lanes.iter_mut().zip(&acc) {
            let mut t = [0i64; NR];
            vst1q_s64(t.as_mut_ptr(), ar[0]);
            vst1q_s64(t.as_mut_ptr().add(2), ar[1]);
            for (lane, v) in lr.iter_mut().zip(t) {
                *lane += v;
            }
        }
    }
}
