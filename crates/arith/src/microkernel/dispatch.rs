//! Runtime kernel-tier selection — re-exported from
//! [`owlp_format::simd`].
//!
//! The tier machinery (detection, `OWLP_SIMD` parsing, [`with_tier`]
//! scopes, clamping) moved to `owlp-format` when the encode/decode plane
//! transforms grew SIMD tiers of their own: the codec sits *below* this
//! crate in the dependency order but must share the same knob and the
//! same forced-scalar oracle. Everything that used
//! `owlp_arith::microkernel::dispatch` keeps working unchanged through
//! this re-export.

pub use owlp_format::simd::{
    available_tiers, clamp, detected_features, env_request, selected_tier, with_tier, KernelTier,
    ENV_SIMD,
};
