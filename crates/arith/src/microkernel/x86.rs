//! x86-64 SIMD tiers: SSE2 (baseline, always safe to call) and AVX2
//! (guarded by runtime detection in [`super::dispatch`]).
//!
//! ## Why `madd_epi16` is exact here
//!
//! `_mm_madd_epi16` / `_mm256_madd_epi16` compute, per `i32` output lane,
//! `a[2i]·b[2i] + a[2i+1]·b[2i+1]` — two `i16×i16` products and their sum
//! in `i32`. The **only** input for which that sum overflows `i32` is
//! `(-32768)² + (-32768)² = 2^31`; sval planes satisfy `|sval| ≤ 32752 <
//! 32768` ([`owlp_format::packed::sval_of`]'s bound, re-proved in the
//! microkernel tests), so every pairwise sum here is `≤ 2·32752² <
//! 2^31` — exact. Each madd result is then widened to `i64` **before**
//! any further accumulation (a madd result can reach ~2^31, so `i32`
//! lane accumulation would be wrong); per-lane `i64` sums stay below
//! `2^44` per [`super::K_SPILL`] segment exactly as in the scalar proof.
//! The pairwise regrouping itself is just another association order of
//! the same exact integer sum, so bit-identity with the scalar oracle
//! holds by construction.
//!
//! All loads are unaligned (`loadu`); the 32-byte alignment provided by
//! `owlp_format::aligned` is a performance property, never a safety
//! contract. A-row pairs are read with `read_unaligned` on `i32`-sized
//! windows — on little-endian x86 the low half is `a[kk]`, the high half
//! `a[kk+1]`, matching madd's in-register pair order.

#![allow(unsafe_code)]

use super::{scalar, MR, MR8, NR};
use std::arch::x86_64::*;

/// Finishes the `seg % width` remainder depths through the scalar oracle
/// (identical association order per term, so exactness is untouched).
#[inline]
fn scalar_tail(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR], done: usize) {
    let seg = a_rows[0].len();
    if done < seg {
        let sub: [&[i16]; MR] = std::array::from_fn(|r| &a_rows[r][done..]);
        scalar::tile_mul_i16(sub, &panel[done * NR..], lanes);
    }
}

/// SSE2 tier of [`super::tile_mul_i16`]: two K-depths × `NR` columns per
/// step. One 128-bit panel load covers depths `kk, kk+1`; the in-register
/// interleave pairs each column's two depths adjacently for `madd`.
///
/// SSE2 is part of the x86-64 baseline ABI, so this is a safe function.
#[inline]
pub fn tile_mul_i16_sse2(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    let pairs = seg & !1;
    unsafe {
        let p = panel.as_ptr();
        // Two 2×i64 accumulators per row = one i64 lane per column.
        let mut acc = [[_mm_setzero_si128(); 2]; MR];
        let mut kk = 0usize;
        while kk < pairs {
            // [c0..c3 | d0..d3] (depths kk, kk+1 × NR columns) →
            // [c0,d0,c1,d1,c2,d2,c3,d3]: each column's depth pair adjacent.
            let b = _mm_loadu_si128(p.add(kk * NR) as *const __m128i);
            let bi = _mm_unpacklo_epi16(b, _mm_unpackhi_epi64(b, b));
            for r in 0..MR {
                let pair = (a_rows[r].as_ptr().add(kk) as *const i32).read_unaligned();
                let prod = _mm_madd_epi16(_mm_set1_epi32(pair), bi);
                // Widen the four i32 column sums to i64 before accumulating.
                let sign = _mm_srai_epi32::<31>(prod);
                acc[r][0] = _mm_add_epi64(acc[r][0], _mm_unpacklo_epi32(prod, sign));
                acc[r][1] = _mm_add_epi64(acc[r][1], _mm_unpackhi_epi32(prod, sign));
            }
            kk += 2;
        }
        for (lr, ar) in lanes.iter_mut().zip(&acc) {
            let mut t = [0i64; NR];
            _mm_storeu_si128(t.as_mut_ptr() as *mut __m128i, ar[0]);
            _mm_storeu_si128(t.as_mut_ptr().add(2) as *mut __m128i, ar[1]);
            for (lane, v) in lr.iter_mut().zip(t) {
                *lane += v;
            }
        }
    }
    scalar_tail(a_rows, panel, lanes, pairs);
}

/// AVX2 tier of [`super::tile_mul_i16`]: four K-depths × `NR` columns per
/// step. One 256-bit panel load covers depths `kk..kk+4`; each 128-bit
/// half is interleaved like the SSE2 tier, and the A side broadcasts one
/// depth pair per half. One `madd` then yields all four column sums for
/// two depth pairs, widened and folded into a single 4×i64 accumulator.
///
/// # Safety
/// The caller must have verified AVX2 support (`dispatch::clamp` /
/// `available_tiers`).
#[target_feature(enable = "avx2")]
pub unsafe fn tile_mul_i16_avx2(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    let quads = seg & !3;
    let p = panel.as_ptr();
    let mut acc = [_mm256_setzero_si256(); MR];
    let mut kk = 0usize;
    while kk < quads {
        let b = _mm256_loadu_si256(p.add(kk * NR) as *const __m256i);
        // Per 128-bit half: [c0..c3 | d0..d3] → [c0,d0,...,c3,d3].
        let bi = _mm256_unpacklo_epi16(b, _mm256_shuffle_epi32::<0xEE>(b));
        for r in 0..MR {
            let ar = a_rows[r].as_ptr().add(kk);
            let p0 = (ar as *const i32).read_unaligned();
            let p1 = (ar.add(2) as *const i32).read_unaligned();
            let av = _mm256_set_m128i(_mm_set1_epi32(p1), _mm_set1_epi32(p0));
            let prod = _mm256_madd_epi16(av, bi);
            // Low half: columns × depth pair 0; high half: × depth pair 1.
            let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
            let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(prod));
            acc[r] = _mm256_add_epi64(acc[r], _mm256_add_epi64(lo, hi));
        }
        kk += 4;
    }
    for (lr, ar) in lanes.iter_mut().zip(&acc) {
        let mut t = [0i64; NR];
        _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, *ar);
        for (lane, v) in lr.iter_mut().zip(t) {
            *lane += v;
        }
    }
    scalar_tail(a_rows, panel, lanes, quads);
}

/// AVX2 widened tier of [`super::tile_mul_i16_x8`]: the same four
/// K-depths × `NR` columns per step as [`tile_mul_i16_avx2`], but the
/// 256-bit panel load and its in-register interleave are amortized over
/// *eight* A rows instead of four. The eight 4×i64 accumulators, the
/// interleaved panel vector, and the per-row temporaries fit the sixteen
/// ymm registers, so the inner loop stays spill-free while halving the
/// panel-stream traffic per output row.
///
/// # Safety
/// The caller must have verified AVX2 support (`dispatch::clamp` /
/// `available_tiers`).
#[target_feature(enable = "avx2")]
pub unsafe fn tile_mul_i16_x8_avx2(
    a_rows: [&[i16]; MR8],
    panel: &[i16],
    lo: &mut [[i64; NR]; MR],
    hi: &mut [[i64; NR]; MR],
) {
    let seg = a_rows[0].len();
    let quads = seg & !3;
    let p = panel.as_ptr();
    let mut acc = [_mm256_setzero_si256(); MR8];
    let mut kk = 0usize;
    while kk < quads {
        let b = _mm256_loadu_si256(p.add(kk * NR) as *const __m256i);
        // Per 128-bit half: [c0..c3 | d0..d3] → [c0,d0,...,c3,d3].
        let bi = _mm256_unpacklo_epi16(b, _mm256_shuffle_epi32::<0xEE>(b));
        for (row, accr) in a_rows.iter().zip(&mut acc) {
            let ar = row.as_ptr().add(kk);
            let p0 = (ar as *const i32).read_unaligned();
            let p1 = (ar.add(2) as *const i32).read_unaligned();
            let av = _mm256_set_m128i(_mm_set1_epi32(p1), _mm_set1_epi32(p0));
            let prod = _mm256_madd_epi16(av, bi);
            let plo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
            let phi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(prod));
            *accr = _mm256_add_epi64(*accr, _mm256_add_epi64(plo, phi));
        }
        kk += 4;
    }
    for (r, ar) in acc.iter().enumerate() {
        let mut t = [0i64; NR];
        _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, *ar);
        let lanes = if r < MR { &mut lo[r] } else { &mut hi[r - MR] };
        for (lane, v) in lanes.iter_mut().zip(t) {
            *lane += v;
        }
    }
    let first: [&[i16]; MR] = std::array::from_fn(|r| a_rows[r]);
    let second: [&[i16]; MR] = std::array::from_fn(|r| a_rows[MR + r]);
    scalar_tail(first, panel, lo, quads);
    scalar_tail(second, panel, hi, quads);
}

/// SSE2 tier of one [`super::dot_sval`] K-segment: 8 products per step
/// through `madd`, widened to two 2×i64 accumulators.
#[inline]
pub fn dot_seg_sse2(a: &[i16], b: &[i16]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let wide = len & !7;
    let sum;
    unsafe {
        let (pa, pb) = (a.as_ptr(), b.as_ptr());
        let mut acc_lo = _mm_setzero_si128();
        let mut acc_hi = _mm_setzero_si128();
        let mut i = 0usize;
        while i < wide {
            let x = _mm_loadu_si128(pa.add(i) as *const __m128i);
            let y = _mm_loadu_si128(pb.add(i) as *const __m128i);
            let prod = _mm_madd_epi16(x, y);
            let sign = _mm_srai_epi32::<31>(prod);
            acc_lo = _mm_add_epi64(acc_lo, _mm_unpacklo_epi32(prod, sign));
            acc_hi = _mm_add_epi64(acc_hi, _mm_unpackhi_epi32(prod, sign));
            i += 8;
        }
        let mut t = [0i64; 2];
        _mm_storeu_si128(
            t.as_mut_ptr() as *mut __m128i,
            _mm_add_epi64(acc_lo, acc_hi),
        );
        sum = t[0] + t[1];
    }
    sum + scalar::dot_seg(&a[wide..], &b[wide..])
}

/// AVX2 tier of one [`super::dot_sval`] K-segment: 16 products per step.
///
/// # Safety
/// The caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
pub unsafe fn dot_seg_avx2(a: &[i16], b: &[i16]) -> i64 {
    debug_assert_eq!(a.len(), b.len());
    let len = a.len();
    let wide = len & !15;
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_si256();
    let mut i = 0usize;
    while i < wide {
        let x = _mm256_loadu_si256(pa.add(i) as *const __m256i);
        let y = _mm256_loadu_si256(pb.add(i) as *const __m256i);
        let prod = _mm256_madd_epi16(x, y);
        let lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod));
        let hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(prod));
        acc = _mm256_add_epi64(acc, _mm256_add_epi64(lo, hi));
        i += 16;
    }
    let mut t = [0i64; 4];
    _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, acc);
    t.iter().sum::<i64>() + scalar::dot_seg(&a[wide..], &b[wide..])
}

/// AVX2 tier of [`super::tile_mul_i32`]: per depth, the four panel
/// columns are sign-extended to i64 lanes and multiplied against the
/// broadcast A value with `_mm256_mul_epi32` (a 32×32→64 signed multiply
/// of each lane's low dword — exact). There is no SSE2 tier: the SSE2
/// ISA has no signed widening 32-bit multiply (`mul_epi32` is SSE4.1),
/// so the Sse2 dispatch level keeps this entry point scalar.
///
/// # Safety
/// The caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
pub unsafe fn tile_mul_i32_avx2(a_rows: [&[i32]; MR], panel: &[i32], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    let p = panel.as_ptr();
    let mut acc = [_mm256_setzero_si256(); MR];
    for kk in 0..seg {
        // [b0,b1,b2,b3] → i64 lanes whose low dwords are b0..b3.
        let bw = _mm256_cvtepi32_epi64(_mm_loadu_si128(p.add(kk * NR) as *const __m128i));
        for (ar, accr) in a_rows.iter().zip(&mut acc) {
            let av = _mm256_set1_epi32(*ar.get_unchecked(kk));
            *accr = _mm256_add_epi64(*accr, _mm256_mul_epi32(av, bw));
        }
    }
    for (lr, ar) in lanes.iter_mut().zip(&acc) {
        let mut t = [0i64; NR];
        _mm256_storeu_si256(t.as_mut_ptr() as *mut __m256i, *ar);
        for (lane, v) in lr.iter_mut().zip(t) {
            *lane += v;
        }
    }
}
