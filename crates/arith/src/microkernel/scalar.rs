//! The scalar reference kernels — the always-on oracle.
//!
//! These are the PR5 register-tiled loops, verbatim: every SIMD tier in
//! [`super::x86`] / [`super::neon`] is differential-tested against them
//! (`tests/microkernel_equivalence.rs`), and `OWLP_SIMD=scalar` forces
//! them at runtime on any host. They carry the exactness contract the
//! SIMD tiers inherit: products are exact in `i32`, `i64` lane sums are
//! exact per [`super::K_SPILL`] segment, and integer regrouping cannot
//! change the sum.
//!
//! Contracts here are the relaxed module-level ones (`panel.len() ≥
//! seg·NR`) — the public wrappers in [`super`] own the debug assertions.

use super::{MR, NR};

/// Scalar tier of [`super::tile_mul_i16`]: one `i16×i16→i32` FMA per
/// product, widened to the `i64` lane once per term.
#[inline]
pub fn tile_mul_i16(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    for kk in 0..seg {
        let b = &panel[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let av = a_rows[r][kk] as i32;
            for (c, lane) in lanes[r].iter_mut().enumerate() {
                // i16×i16 → exact i32 product, widened once per lane.
                *lane += (av * b[c] as i32) as i64;
            }
        }
    }
}

/// Scalar tier of one [`super::dot_sval`] K-segment: the plain
/// multiply-accumulate sweep (`a.len() == b.len() ≤ K_SPILL`).
#[inline]
pub fn dot_seg(a: &[i16], b: &[i16]) -> i64 {
    let mut sum = 0i64;
    for (x, y) in a.iter().zip(b) {
        sum += (*x as i32 * *y as i32) as i64;
    }
    sum
}

/// Scalar tier of [`super::tile_mul_i32`]: band-plane products taken
/// directly in `i64` (`|a| < 2^31` each side).
#[inline]
pub fn tile_mul_i32(a_rows: [&[i32]; MR], panel: &[i32], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    for kk in 0..seg {
        let b = &panel[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let av = a_rows[r][kk] as i64;
            for (c, lane) in lanes[r].iter_mut().enumerate() {
                *lane += av * b[c] as i64;
            }
        }
    }
}
