//! Register-tiled GEMM microkernels with explicit SIMD tiers and
//! runtime dispatch.
//!
//! The scalar hot loops ([`crate::gemm::owlp_gemm_decoded`] and the
//! windowed [`crate::exact::exact_gemm`] tiles) historically did one
//! `u16 as i64 × u16 as i64` FMA per product, plus a per-product branch
//! for the sign and the `{0,4,8}` post-multiply shift. The paper's whole
//! point is that the OwL-P datapath is *integer-only* — so the software
//! model should run at integer-SIMD speed too. This module restructures
//! the inner loop around two facts:
//!
//! 1. **Products are exact in narrow integers.** A packed operand's folded
//!    significand (`sval = ±(mag << 4·sh)`, see
//!    [`owlp_format::packed::PackedOperands::svals`]) satisfies
//!    `|sval| ≤ (2^11 − 1)·2^4 = 32752 < 2^15`, so it fits an `i16` and a
//!    product of two fits an `i32` (`|p| < 2^30`) with no rounding — the
//!    `{0,4,8}` shifter and both signs are already folded in. The
//!    `i16×i16→i32` multiply-add shape is exactly what packed integer
//!    SIMD units are built for — and since PR7 the kernels use them
//!    **explicitly** rather than hoping the autovectorizer does.
//!
//! 2. **Lane sums provably cannot overflow before the spill.** Partial
//!    sums are kept in `i64` lanes and spilled into the existing
//!    [`WindowAcc`] `i128` frame every [`K_SPILL`] terms. The bound:
//!    `K_SPILL · max|p| ≤ 2^14 · 2^30 = 2^44 ≪ 2^63`, so the `i64` lane
//!    is exact by a margin of 19 bits (any `K_SPILL ≤ 2^32` would do;
//!    2^14 keeps a segment resident in L1). Integer addition is
//!    associative and commutative, so regrouping the dot product into
//!    MR×NR register tiles, K segments, per-lane partials — **or the
//!    pairwise-`madd` adjacent sums of the SIMD tiers** — computes the
//!    *same* exact integer as the scalar sweep; bit-identity with the
//!    Kulisch oracle is preserved by construction at every tier. The one
//!    extra SIMD obligation, that `madd`'s intra-instruction `i32` pair
//!    sum itself cannot wrap, follows from the sval bound
//!    (`2·32752² < 2^31`; only `(-32768)²·2` would overflow) — see
//!    [`x86`]'s module docs for the full argument.
//!
//! ## Tiers and dispatch
//!
//! Every entry point has a scalar reference implementation ([`scalar`],
//! the always-on oracle) plus optional SIMD tiers: SSE2 and AVX2 on
//! x86-64 ([`x86`]), NEON on aarch64 ([`neon`]). A tier is selected once
//! per process ([`dispatch::selected_tier`]) from runtime CPU detection
//! and the `OWLP_SIMD=scalar|sse2|avx2|neon|auto` override; tests force
//! tiers per-scope with [`with_tier`]. The drive loops resolve the tier
//! *before* fanning out to the thread pool and call the `*_with` variants
//! so a forced tier holds at every thread count. On the Sse2 tier,
//! [`tile_dot_i32`] stays scalar (SSE2 has no signed widening 32-bit
//! multiply); all other entry points vectorize on every non-scalar tier.
//!
//! The kernel computes an [`MR`]×[`NR`] output tile per call: `MR` rows
//! of A (flat sval slices) against one [`owlp_format::PackedPanels`]
//! panel of `NR` interleaved weight columns. Callers pad edge tiles with
//! an all-zero row / rely on the panel's zero-padded columns — zero
//! svals contribute nothing, so there are no edge-case variants to
//! diverge from the proof above. Panels may carry zero-padded depths
//! beyond the K segment ([`owlp_format::PackedPanels::padded_k`]); the
//! kernels only require `panel.len() ≥ seg·NR`.
//!
//! The `i32` twin ([`tile_dot_i32`]) serves the exact-GEMM band path,
//! where in-band aligned magnitudes span up to 31 bits; its caller sizes
//! the band so that even the **full-k** lane sum fits `i64` (see
//! `crate::exact`), so it needs no intermediate spill.

pub mod dispatch;
#[cfg(target_arch = "aarch64")]
mod neon;
pub mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use dispatch::{
    available_tiers, detected_features, env_request, selected_tier, with_tier, KernelTier, ENV_SIMD,
};

use crate::window::WindowAcc;

/// Output-tile rows per microkernel call.
pub const MR: usize = 4;

/// Output-tile columns per microkernel call — fixed by the panel layout.
pub const NR: usize = owlp_format::packed::PANEL_NR;

/// K-depth between lane spills into the [`WindowAcc`] frame. With
/// products `|p| < 2^30`, a lane accumulates `< 2^44` per segment —
/// provably exact in `i64` (see the module docs).
pub const K_SPILL: usize = 1 << 14;

/// Multiplies one K-segment of an MR×NR tile into the `i64` lane array:
/// `lanes[r][c] += Σ_kk a_rows[r][kk] · panel[kk·NR + c]`, on the
/// process-selected tier.
///
/// `a_rows` are `seg`-long sval slices (pad missing edge rows with a zero
/// slice); `panel` is a K-major panel segment of at least `seg·NR`
/// entries (extra zero-padded depths are ignored). The caller must spill
/// at least every [`K_SPILL`] terms.
#[inline]
pub fn tile_mul_i16(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR]) {
    tile_mul_i16_with(selected_tier(), a_rows, panel, lanes);
}

/// [`tile_mul_i16`] on an explicit (clamped) tier — the form the drive
/// loops use so a tier resolved before a parallel fan-out applies on
/// every worker thread.
#[inline]
pub fn tile_mul_i16_with(
    tier: KernelTier,
    a_rows: [&[i16]; MR],
    panel: &[i16],
    lanes: &mut [[i64; NR]; MR],
) {
    let seg = a_rows[0].len();
    debug_assert!(seg <= K_SPILL, "segment longer than the spill period");
    debug_assert!(a_rows.iter().all(|r| r.len() == seg));
    debug_assert!(panel.len() >= seg * NR, "panel shorter than the K segment");
    match dispatch::clamp(tier) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` only yields Avx2 when runtime detection saw it.
        KernelTier::Avx2 => unsafe { x86::tile_mul_i16_avx2(a_rows, panel, lanes) },
        #[cfg(target_arch = "x86_64")]
        KernelTier::Sse2 => x86::tile_mul_i16_sse2(a_rows, panel, lanes),
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => neon::tile_mul_i16_neon(a_rows, panel, lanes),
        _ => scalar::tile_mul_i16(a_rows, panel, lanes),
    }
}

/// Output-tile rows of the widened `8×NR` register tier: two vertically
/// stacked `MR×NR` tiles sharing one panel load stream. The AVX2 kernel
/// amortizes the panel load + in-register interleave over eight A rows;
/// every other tier computes the identical exact lanes as two `MR` tile
/// calls, so the drive loops only *prefer* the widened shape on AVX2.
pub const MR8: usize = 2 * MR;

/// Multiplies one K-segment of an 8×NR tile into two stacked `i64` lane
/// tiles (`lo` = rows `0..MR`, `hi` = rows `MR..MR8`), on the
/// process-selected tier. Contract as [`tile_mul_i16`].
#[inline]
pub fn tile_mul_i16_x8(
    a_rows: [&[i16]; MR8],
    panel: &[i16],
    lo: &mut [[i64; NR]; MR],
    hi: &mut [[i64; NR]; MR],
) {
    tile_mul_i16_x8_with(selected_tier(), a_rows, panel, lo, hi);
}

/// [`tile_mul_i16_x8`] on an explicit (clamped) tier.
#[inline]
pub fn tile_mul_i16_x8_with(
    tier: KernelTier,
    a_rows: [&[i16]; MR8],
    panel: &[i16],
    lo: &mut [[i64; NR]; MR],
    hi: &mut [[i64; NR]; MR],
) {
    let seg = a_rows[0].len();
    debug_assert!(seg <= K_SPILL, "segment longer than the spill period");
    debug_assert!(a_rows.iter().all(|r| r.len() == seg));
    debug_assert!(panel.len() >= seg * NR, "panel shorter than the K segment");
    match dispatch::clamp(tier) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` only yields Avx2 when runtime detection saw it.
        KernelTier::Avx2 => unsafe { x86::tile_mul_i16_x8_avx2(a_rows, panel, lo, hi) },
        t => {
            // No widened kernel below AVX2: two MR-tile calls on the same
            // tier accumulate the identical exact integer lanes (the split
            // is pure re-association of disjoint row sums).
            let first: [&[i16]; MR] = std::array::from_fn(|r| a_rows[r]);
            let second: [&[i16]; MR] = std::array::from_fn(|r| a_rows[MR + r]);
            tile_mul_i16_with(t, first, panel, lo);
            tile_mul_i16_with(t, second, panel, hi);
        }
    }
}

/// Full-depth MR×NR tile: segments of [`K_SPILL`] terms accumulate in
/// `i64` lanes and spill into per-element [`WindowAcc`]s cloned from
/// `win0` (the shared-frame window of the GEMM call).
#[inline]
pub fn tile_dot_i16(a_rows: [&[i16]; MR], panel: &[i16], win0: WindowAcc) -> [[WindowAcc; NR]; MR] {
    tile_dot_i16_with(selected_tier(), a_rows, panel, win0)
}

/// [`tile_dot_i16`] on an explicit tier (clamped once up front).
#[inline]
pub fn tile_dot_i16_with(
    tier: KernelTier,
    a_rows: [&[i16]; MR],
    panel: &[i16],
    win0: WindowAcc,
) -> [[WindowAcc; NR]; MR] {
    let tier = dispatch::clamp(tier);
    let k = a_rows[0].len();
    debug_assert!(panel.len() >= k * NR);
    let mut wins = [[win0; NR]; MR];
    let mut lanes = [[0i64; NR]; MR];
    let mut s = 0usize;
    while s < k {
        let seg = K_SPILL.min(k - s);
        let sub: [&[i16]; MR] = std::array::from_fn(|r| &a_rows[r][s..s + seg]);
        tile_mul_i16_with(tier, sub, &panel[s * NR..(s + seg) * NR], &mut lanes);
        for (wr, lr) in wins.iter_mut().zip(&mut lanes) {
            for (w, lane) in wr.iter_mut().zip(lr.iter_mut()) {
                w.add_aligned(std::mem::take(lane));
            }
        }
        s += seg;
    }
    wins
}

/// Full-depth 8×NR tile (see [`MR8`]): [`tile_dot_i16_with`] for two
/// stacked MR tiles, returned as `[lower rows, upper rows]` so the
/// finalize passes keep consuming `MR×NR` window tiles unchanged.
#[inline]
pub fn tile_dot_i16_x8_with(
    tier: KernelTier,
    a_rows: [&[i16]; MR8],
    panel: &[i16],
    win0: WindowAcc,
) -> [[[WindowAcc; NR]; MR]; 2] {
    let tier = dispatch::clamp(tier);
    let k = a_rows[0].len();
    debug_assert!(panel.len() >= k * NR);
    let mut wins = [[[win0; NR]; MR]; 2];
    let mut lanes = [[[0i64; NR]; MR]; 2];
    let mut s = 0usize;
    while s < k {
        let seg = K_SPILL.min(k - s);
        let sub: [&[i16]; MR8] = std::array::from_fn(|r| &a_rows[r][s..s + seg]);
        let (l0, l1) = lanes.split_at_mut(1);
        tile_mul_i16_x8_with(
            tier,
            sub,
            &panel[s * NR..(s + seg) * NR],
            &mut l0[0],
            &mut l1[0],
        );
        for (wt, lt) in wins.iter_mut().zip(&mut lanes) {
            for (wr, lr) in wt.iter_mut().zip(lt.iter_mut()) {
                for (w, lane) in wr.iter_mut().zip(lr.iter_mut()) {
                    w.add_aligned(std::mem::take(lane));
                }
            }
        }
        s += seg;
    }
    wins
}

/// Clean-pair dot product over folded significands, spilled into a copy
/// of `win0` per [`K_SPILL`] segment — the systolic event simulator's
/// all-normal wavefront (streams may differ in length; the shorter one
/// bounds the depth, matching the zip semantics of the scalar loop).
#[inline]
pub fn dot_sval(a: &[i16], b: &[i16], win0: WindowAcc) -> WindowAcc {
    dot_sval_with(selected_tier(), a, b, win0)
}

/// [`dot_sval`] on an explicit tier (clamped once up front).
#[inline]
pub fn dot_sval_with(tier: KernelTier, a: &[i16], b: &[i16], win0: WindowAcc) -> WindowAcc {
    let tier = dispatch::clamp(tier);
    let len = a.len().min(b.len());
    let mut win = win0;
    let mut s = 0usize;
    while s < len {
        let seg = K_SPILL.min(len - s);
        let (sa, sb) = (&a[s..s + seg], &b[s..s + seg]);
        let sum = match tier {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `clamp` only yields Avx2 when runtime detection saw it.
            KernelTier::Avx2 => unsafe { x86::dot_seg_avx2(sa, sb) },
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 => x86::dot_seg_sse2(sa, sb),
            #[cfg(target_arch = "aarch64")]
            KernelTier::Neon => neon::dot_seg_neon(sa, sb),
            _ => scalar::dot_seg(sa, sb),
        };
        win.add_aligned(sum);
        s += seg;
    }
    win
}

/// The `i32` twin of [`tile_mul_i16`] for the exact-GEMM band planes:
/// products are taken in `i64` (`|a| < 2^31` each side). The caller's
/// band-width budget guarantees the full-depth lane sum fits `i64`, so
/// no spill period applies here.
#[inline]
pub fn tile_mul_i32(a_rows: [&[i32]; MR], panel: &[i32], lanes: &mut [[i64; NR]; MR]) {
    tile_mul_i32_with(selected_tier(), a_rows, panel, lanes);
}

/// [`tile_mul_i32`] on an explicit (clamped) tier. The Sse2 tier has no
/// vector path here (no SSE2 signed widening 32-bit multiply) and runs
/// the scalar oracle.
#[inline]
pub fn tile_mul_i32_with(
    tier: KernelTier,
    a_rows: [&[i32]; MR],
    panel: &[i32],
    lanes: &mut [[i64; NR]; MR],
) {
    let seg = a_rows[0].len();
    debug_assert!(a_rows.iter().all(|r| r.len() == seg));
    debug_assert!(panel.len() >= seg * NR);
    match dispatch::clamp(tier) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `clamp` only yields Avx2 when runtime detection saw it.
        KernelTier::Avx2 => unsafe { x86::tile_mul_i32_avx2(a_rows, panel, lanes) },
        #[cfg(target_arch = "aarch64")]
        KernelTier::Neon => neon::tile_mul_i32_neon(a_rows, panel, lanes),
        _ => scalar::tile_mul_i32(a_rows, panel, lanes),
    }
}

/// Full-depth MR×NR tile over `i32` band planes, returning raw `i64`
/// lane sums (the caller owns rounding / correction).
#[inline]
pub fn tile_dot_i32(a_rows: [&[i32]; MR], panel: &[i32]) -> [[i64; NR]; MR] {
    tile_dot_i32_with(selected_tier(), a_rows, panel)
}

/// [`tile_dot_i32`] on an explicit tier.
#[inline]
pub fn tile_dot_i32_with(tier: KernelTier, a_rows: [&[i32]; MR], panel: &[i32]) -> [[i64; NR]; MR] {
    let mut lanes = [[0i64; NR]; MR];
    tile_mul_i32_with(tier, a_rows, panel, &mut lanes);
    lanes
}

/// The tier each public entry point *effectively* runs on under the
/// current selection — they differ only where an ISA level lacks the
/// needed instruction (Sse2's `tile_dot_i32`). For `repro features` and
/// the bench report.
pub fn entry_point_tiers() -> [(&'static str, KernelTier); 4] {
    let t = selected_tier();
    let i32_tier = if t == KernelTier::Sse2 {
        KernelTier::Scalar
    } else {
        t
    };
    [
        ("tile_dot_i16", t),
        ("tile_dot_i16_x8", t),
        ("tile_dot_i32", i32_tier),
        ("dot_sval", t),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::{encode_tensor, Bf16};

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    /// Normal-band values so every product lands on the shared frame.
    fn normals(len: usize, seed: u64) -> Vec<Bf16> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state >> 40) as f32 / (1u64 << 24) as f32;
                let sign = if state & 2 == 0 { 1.0 } else { -1.0 };
                bf(sign * (0.75 + u * 0.5))
            })
            .collect()
    }

    #[test]
    fn sval_bound_is_i16_safe() {
        // The proof constant: max mag (11 bits) at max shift.
        let max = ((1i32 << 11) - 1) << 4;
        assert_eq!(max, 32752);
        assert!(max <= i16::MAX as i32);
        // And the product bound used for K_SPILL.
        assert!((max as i64 * max as i64) < 1 << 30);
        assert!((K_SPILL as i64) << 30 <= 1 << 44);
        // The madd-specific bound: an adjacent pair sum fits i32.
        assert!(2 * (max as i64) * (max as i64) < 1 << 31);
    }

    #[test]
    fn tile_matches_scalar_dot_per_element() {
        let k = 3 * K_SPILL / 2 + 7; // forces a mid-depth spill + remainder
        let a: Vec<Bf16> = normals(MR * k, 11);
        let b: Vec<Bf16> = normals(k * NR, 22);
        let ea = encode_tensor(&a, None).unwrap();
        let eb = encode_tensor(&b, None).unwrap();
        let pa = ea.decode_packed();
        let pb = eb.decode_packed();
        let panels = pb.pack_panels(k, NR);
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), eb.shared_exp(), k);
        let a_rows: [&[i16]; MR] = std::array::from_fn(|r| &pa.svals()[r * k..(r + 1) * k]);
        for &tier in available_tiers() {
            let wins = tile_dot_i16_with(tier, a_rows, panels.panel(0), win0);
            for (r, wrow) in wins.iter().enumerate() {
                for (c, wtile) in wrow.iter().enumerate() {
                    let mut win = win0;
                    let mut sum = 0i64;
                    for kk in 0..k {
                        sum += pa.svals()[r * k + kk] as i64 * pb.svals()[kk * NR + c] as i64;
                        if kk & 0x1F == 0x1F {
                            win.add_aligned(sum);
                            sum = 0;
                        }
                    }
                    win.add_aligned(sum);
                    assert_eq!(
                        wtile.round_to_f32().to_bits(),
                        win.round_to_f32().to_bits(),
                        "tier {tier} tile ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn x8_tile_matches_two_mr_tiles_on_every_tier() {
        let k = K_SPILL + 21; // spill crossing + odd remainder for the tails
        let a: Vec<Bf16> = normals(MR8 * k, 77);
        let b: Vec<Bf16> = normals(k * NR, 88);
        let ea = encode_tensor(&a, None).unwrap();
        let eb = encode_tensor(&b, None).unwrap();
        let (pa, pb) = (ea.decode_packed(), eb.decode_packed());
        let panels = pb.pack_panels(k, NR);
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), eb.shared_exp(), k);
        let a8: [&[i16]; MR8] = std::array::from_fn(|r| &pa.svals()[r * k..(r + 1) * k]);
        let lo_rows: [&[i16]; MR] = std::array::from_fn(|r| a8[r]);
        let hi_rows: [&[i16]; MR] = std::array::from_fn(|r| a8[MR + r]);
        let oracle_lo = tile_dot_i16_with(KernelTier::Scalar, lo_rows, panels.panel(0), win0);
        let oracle_hi = tile_dot_i16_with(KernelTier::Scalar, hi_rows, panels.panel(0), win0);
        for &tier in available_tiers() {
            let [w0, w1] = tile_dot_i16_x8_with(tier, a8, panels.panel(0), win0);
            for r in 0..MR {
                for c in 0..NR {
                    assert_eq!(
                        w0[r][c].raw(),
                        oracle_lo[r][c].raw(),
                        "tier {tier} lo ({r},{c})"
                    );
                    assert_eq!(
                        w1[r][c].raw(),
                        oracle_hi[r][c].raw(),
                        "tier {tier} hi ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn dot_sval_matches_scalar_spill_loop() {
        let k = K_SPILL + 33;
        let a = normals(k, 5);
        let b = normals(k, 6);
        let ea = encode_tensor(&a, None).unwrap();
        let eb = encode_tensor(&b, None).unwrap();
        let (pa, pb) = (ea.decode_packed(), eb.decode_packed());
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), eb.shared_exp(), k);
        let mut win = win0;
        for kk in 0..k {
            win.add_aligned(pa.svals()[kk] as i64 * pb.svals()[kk] as i64);
        }
        for &tier in available_tiers() {
            let fast = dot_sval_with(tier, pa.svals(), pb.svals(), win0);
            assert_eq!(
                fast.round_to_f32().to_bits(),
                win.round_to_f32().to_bits(),
                "tier {tier}"
            );
        }
    }

    #[test]
    fn zero_padded_rows_and_columns_contribute_nothing() {
        let k = 37;
        let a = normals(k, 3);
        let ea = encode_tensor(&a, None).unwrap();
        let pa = ea.decode_packed();
        let zero = vec![0i16; k];
        let a_rows: [&[i16]; MR] =
            std::array::from_fn(|r| if r == 0 { pa.svals() } else { zero.as_slice() });
        let panel = vec![0i16; k * NR];
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), 127, k);
        for &tier in available_tiers() {
            let wins = tile_dot_i16_with(tier, a_rows, &panel, win0);
            for row in &wins {
                for w in row {
                    assert!(w.is_zero(), "tier {tier}");
                }
            }
        }
    }

    #[test]
    fn i32_tile_matches_scalar() {
        let k = 129;
        let mut state = 0xACE1u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 33) as i32 % (1 << 20)) - (1 << 19)
        };
        let a: Vec<i32> = (0..MR * k).map(|_| next()).collect();
        let panel: Vec<i32> = (0..k * NR).map(|_| next()).collect();
        let a_rows: [&[i32]; MR] = std::array::from_fn(|r| &a[r * k..(r + 1) * k]);
        for &tier in available_tiers() {
            let lanes = tile_dot_i32_with(tier, a_rows, &panel);
            for r in 0..MR {
                for c in 0..NR {
                    let scalar: i64 = (0..k)
                        .map(|kk| a[r * k + kk] as i64 * panel[kk * NR + c] as i64)
                        .sum();
                    assert_eq!(lanes[r][c], scalar, "tier {tier} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn max_magnitude_svals_are_exact_on_every_tier() {
        // The madd worst case: every operand at ±32752 with alternating
        // signs, odd length so the remainder path runs too.
        let k = 2 * K_SPILL + 15;
        let a: Vec<i16> = (0..k)
            .map(|i| if i % 2 == 0 { 32752 } else { -32752 })
            .collect();
        let b: Vec<i16> = (0..k)
            .map(|i| if i % 3 == 0 { -32752 } else { 32752 })
            .collect();
        let win0 = WindowAcc::for_owlp_normal(127, 127, k);
        let oracle = dot_sval_with(KernelTier::Scalar, &a, &b, win0);
        for &tier in available_tiers() {
            let got = dot_sval_with(tier, &a, &b, win0);
            assert_eq!(got.raw(), oracle.raw(), "tier {tier}");
        }
        // And through the tile path, one column of each sign pattern.
        let panel: Vec<i16> = (0..k)
            .flat_map(|i| {
                let v = if i % 5 == 0 { -32752i16 } else { 32752 };
                [v, -v, v, -v]
            })
            .collect();
        let a_rows: [&[i16]; MR] = [&a, &b, &a, &b];
        let oracle = tile_dot_i16_with(KernelTier::Scalar, a_rows, &panel, win0);
        for &tier in available_tiers() {
            let got = tile_dot_i16_with(tier, a_rows, &panel, win0);
            for r in 0..MR {
                for c in 0..NR {
                    assert_eq!(got[r][c].raw(), oracle[r][c].raw(), "tier {tier} ({r},{c})");
                }
            }
        }
    }

    #[test]
    fn padded_panels_are_ignored_beyond_the_segment() {
        // A panel longer than seg·NR (the PR7 zero-padded layout) must
        // produce the same lanes as the exact-length panel.
        let k = 21; // odd: exercises every tier's tail
        let a: Vec<i16> = (0..k as i16).map(|i| (i * 7 - 50) * 3).collect();
        let a_rows: [&[i16]; MR] = [&a, &a, &a, &a];
        let exact: Vec<i16> = (0..k * NR).map(|i| (i as i16 % 111) - 55).collect();
        let mut padded = exact.clone();
        padded.extend(std::iter::repeat_n(0i16, 3 * NR));
        for &tier in available_tiers() {
            let mut lanes_a = [[0i64; NR]; MR];
            let mut lanes_b = [[0i64; NR]; MR];
            tile_mul_i16_with(tier, a_rows, &exact, &mut lanes_a);
            tile_mul_i16_with(tier, a_rows, &padded, &mut lanes_b);
            assert_eq!(lanes_a, lanes_b, "tier {tier}");
        }
    }

    #[test]
    fn entry_point_tiers_are_consistent() {
        let tiers = entry_point_tiers();
        assert_eq!(tiers.len(), 4);
        for (name, tier) in tiers {
            assert!(
                available_tiers().contains(&tier),
                "{name} reports unavailable tier {tier}"
            );
        }
    }
}
