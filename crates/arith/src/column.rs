//! A weight-stationary PE column (paper Fig. 3).
//!
//! A column of `R` PEs computes one output element's dot product over
//! `K = R × lanes` operand pairs per pass. Normal products accumulate into
//! the partial sum flowing down the column; outlier products hop onto the
//! vertical inter-PE outlier path (capacity `total_outlier_paths` results
//! per wavefront — each PE has that many outlier registers feeding the PE
//! below). At the bottom, the align unit and INT2FP produce the FP32 output.
//!
//! The wavefront capacity is the structural hazard the outlier-aware
//! scheduler of `owlp-systolic` avoids: products belonging to the same
//! input row travel down in one wavefront, so *per input row and per array
//! column* the number of outlier products must not exceed the path count.
//! [`PeColumn::compute`] enforces exactly that invariant.

use crate::align::{AlignUnit, Contribution};
use crate::error::ArithError;
use crate::pe::{PeConfig, ProcessingElement};
use owlp_format::decode::DecodedOperand;
use serde::{Deserialize, Serialize};

/// Outcome of one column pass (one output element).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColumnOutput {
    /// The FP32 result after align + INT2FP.
    pub value: f32,
    /// Number of products routed down the outlier path.
    pub outlier_products: usize,
    /// Number of nonzero products accumulated on the normal path.
    pub normal_products: usize,
}

/// A column of weight-stationary PEs plus its bottom-of-column conversion
/// logic.
///
/// ```
/// use owlp_arith::column::PeColumn;
/// use owlp_arith::pe::PeConfig;
/// use owlp_format::{Bf16, BiasDecoder, ExponentWindow};
///
/// # fn main() -> Result<(), owlp_arith::ArithError> {
/// let w = ExponentWindow::owlp(125);
/// let dec = BiasDecoder::new(w.base());
/// let a: Vec<_> = (0..16).map(|i| dec.decode_bf16(Bf16::from_f32(1.0 + i as f32 / 16.0), w)).collect();
/// let b: Vec<_> = (0..16).map(|i| dec.decode_bf16(Bf16::from_f32(0.5 + i as f32 / 32.0), w)).collect();
/// let col = PeColumn::new(PeConfig::PAPER, 2); // 2 PEs × 8 lanes = K 16
/// let out = col.compute(&a, &b, w.base(), w.base())?;
/// assert!(out.value > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeColumn {
    pe: ProcessingElement,
    rows: usize,
    align: AlignUnit,
}

impl PeColumn {
    /// A column of `rows` PEs with the exact align unit.
    pub fn new(config: PeConfig, rows: usize) -> Self {
        PeColumn {
            pe: ProcessingElement::new(config),
            rows,
            align: AlignUnit::Exact,
        }
    }

    /// Overrides the align unit (e.g. a bounded hardware width for ablation).
    pub fn with_align(mut self, align: AlignUnit) -> Self {
        self.align = align;
        self
    }

    /// PEs in the column.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Maximum dot-product length per pass.
    pub fn k_capacity(&self) -> usize {
        self.rows * self.pe.config().lanes
    }

    /// Computes one output element over up to [`PeColumn::k_capacity`]
    /// operand pairs (shorter inputs are implicitly zero-padded).
    ///
    /// # Errors
    ///
    /// * [`ArithError::DimensionMismatch`] on length mismatch or overlong
    ///   inputs.
    /// * [`ArithError::OutlierPathOverflow`] when the input wavefront
    ///   carries more outlier products than the column's paths — the hazard
    ///   zero-insertion scheduling removes.
    pub fn compute(
        &self,
        acts: &[DecodedOperand],
        wts: &[DecodedOperand],
        shared_a: u8,
        shared_w: u8,
    ) -> Result<ColumnOutput, ArithError> {
        if acts.len() != wts.len() {
            return Err(ArithError::DimensionMismatch {
                what: "column operands",
                expected: acts.len(),
                actual: wts.len(),
            });
        }
        if acts.len() > self.k_capacity() {
            return Err(ArithError::DimensionMismatch {
                what: "column K extent",
                expected: self.k_capacity(),
                actual: acts.len(),
            });
        }
        let lanes = self.pe.config().lanes;
        let mut contributions: Vec<Contribution> = Vec::new();
        let mut normal_sum: i64 = 0;
        let mut normal_frame = shared_a as i32 + shared_w as i32 - 2 * (127 + 7);
        let mut outlier_products = 0usize;
        let mut normal_products = 0usize;
        for (a_chunk, w_chunk) in acts.chunks(lanes).zip(wts.chunks(lanes)) {
            let out = self.pe.dot_unchecked(a_chunk, w_chunk, shared_a, shared_w);
            normal_sum += out.normal_sum;
            normal_frame = out.normal_frame;
            outlier_products += out.outliers.len();
            normal_products += out.active_lanes - out.outliers.len();
            contributions.extend(out.outliers.iter().map(|&o| Contribution::from(o)));
        }
        // Wavefront hazard check: all outlier products of this pass share
        // the down-travelling wavefront, bounded by the per-PE register
        // count.
        let capacity = self.pe.config().total_outlier_paths();
        if outlier_products > capacity {
            return Err(ArithError::OutlierPathOverflow {
                produced: outlier_products,
                capacity,
            });
        }
        contributions.push(Contribution {
            mag: normal_sum,
            frame: normal_frame,
        });
        let value = self.align.reduce(&contributions);
        Ok(ColumnOutput {
            value,
            outlier_products,
            normal_products,
        })
    }

    /// Like [`PeColumn::compute`] but without the wavefront capacity check —
    /// for measuring outlier pressure before scheduling.
    pub fn compute_unchecked(
        &self,
        acts: &[DecodedOperand],
        wts: &[DecodedOperand],
        shared_a: u8,
        shared_w: u8,
    ) -> ColumnOutput {
        let lanes = self.pe.config().lanes;
        let mut contributions: Vec<Contribution> = Vec::new();
        let mut normal_sum: i64 = 0;
        let mut normal_frame = shared_a as i32 + shared_w as i32 - 2 * (127 + 7);
        let mut outlier_products = 0usize;
        let mut normal_products = 0usize;
        for (a_chunk, w_chunk) in acts.chunks(lanes).zip(wts.chunks(lanes)) {
            let out = self.pe.dot_unchecked(a_chunk, w_chunk, shared_a, shared_w);
            normal_sum += out.normal_sum;
            normal_frame = out.normal_frame;
            outlier_products += out.outliers.len();
            normal_products += out.active_lanes - out.outliers.len();
            contributions.extend(out.outliers.iter().map(|&o| Contribution::from(o)));
        }
        contributions.push(Contribution {
            mag: normal_sum,
            frame: normal_frame,
        });
        let value = self.align.reduce(&contributions);
        ColumnOutput {
            value,
            outlier_products,
            normal_products,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_dot;
    use owlp_format::{Bf16, BiasDecoder, ExponentWindow};

    fn decode_vec(xs: &[f32], base: u8) -> Vec<DecodedOperand> {
        let w = ExponentWindow::owlp(base);
        let dec = BiasDecoder::new(base);
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    }

    fn bf_vec(xs: &[f32]) -> Vec<Bf16> {
        xs.iter().map(|&x| Bf16::from_f32(x)).collect()
    }

    #[test]
    fn column_matches_exact_dot_without_outliers() {
        let xs: Vec<f32> = (0..24).map(|i| 1.0 + i as f32 / 32.0).collect();
        let ys: Vec<f32> = (0..24).map(|i| 2.0 - i as f32 / 24.0).collect();
        let acts = decode_vec(&xs, 124);
        let wts = decode_vec(&ys, 124);
        let col = PeColumn::new(PeConfig::PAPER, 3);
        let out = col.compute(&acts, &wts, 124, 124).unwrap();
        assert_eq!(
            out.value.to_bits(),
            exact_dot(&bf_vec(&xs), &bf_vec(&ys)).to_bits()
        );
        assert_eq!(out.outlier_products, 0);
    }

    #[test]
    fn column_matches_exact_dot_with_outliers() {
        let mut xs: Vec<f32> = (0..16).map(|i| 1.0 + i as f32 / 8.0).collect();
        xs[5] = 3.0e20; // activation outlier
        let mut ys: Vec<f32> = (0..16).map(|i| 0.5 + i as f32 / 16.0).collect();
        ys[12] = 1.0e-22; // weight outlier
        let acts = decode_vec(&xs, 124);
        let wts = decode_vec(&ys, 124);
        let col = PeColumn::new(PeConfig::PAPER, 2);
        let out = col.compute(&acts, &wts, 124, 124).unwrap();
        assert_eq!(out.outlier_products, 2);
        assert_eq!(
            out.value.to_bits(),
            exact_dot(&bf_vec(&xs), &bf_vec(&ys)).to_bits()
        );
    }

    #[test]
    fn wavefront_overflow_detected_across_pes() {
        // 5 activation outliers spread over different PEs still share the
        // wavefront → overflow with 4 total paths.
        let mut xs: Vec<f32> = vec![1.0; 40];
        for i in [0, 9, 18, 27, 36] {
            xs[i] = 1e25;
        }
        let ys: Vec<f32> = vec![1.0; 40];
        let acts = decode_vec(&xs, 124);
        let wts = decode_vec(&ys, 124);
        let col = PeColumn::new(PeConfig::PAPER, 5);
        let err = col.compute(&acts, &wts, 124, 124).unwrap_err();
        assert!(matches!(
            err,
            ArithError::OutlierPathOverflow {
                produced: 5,
                capacity: 4
            }
        ));
        // Unchecked still evaluates correctly.
        let out = col.compute_unchecked(&acts, &wts, 124, 124);
        assert_eq!(
            out.value.to_bits(),
            exact_dot(&bf_vec(&xs), &bf_vec(&ys)).to_bits()
        );
    }

    #[test]
    fn zero_padding_shorter_inputs() {
        let xs = [1.5f32, 2.0, -0.5];
        let ys = [2.0f32, 1.0, 4.0];
        let acts = decode_vec(&xs, 124);
        let wts = decode_vec(&ys, 124);
        let col = PeColumn::new(PeConfig::PAPER, 4);
        let out = col.compute(&acts, &wts, 124, 124).unwrap();
        assert_eq!(out.value, 3.0 + 2.0 - 2.0);
    }

    #[test]
    fn k_capacity() {
        let col = PeColumn::new(PeConfig::PAPER, 4);
        assert_eq!(col.k_capacity(), 32);
        let too_long = vec![DecodedOperand::ZERO; 33];
        assert!(matches!(
            col.compute(&too_long, &too_long, 120, 120),
            Err(ArithError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn bounded_align_column_still_exact_on_typical_data() {
        let xs: Vec<f32> = (0..32).map(|i| (i as f32 * 0.73).sin() + 1.5).collect();
        let ys: Vec<f32> = (0..32).map(|i| (i as f32 * 0.31).cos() + 1.2).collect();
        let acts = decode_vec(&xs, 124);
        let wts = decode_vec(&ys, 124);
        let exact_col = PeColumn::new(PeConfig::PAPER, 4);
        let bounded_col = exact_col.with_align(AlignUnit::bounded(64));
        let e = exact_col.compute(&acts, &wts, 124, 124).unwrap();
        let b = bounded_col.compute(&acts, &wts, 124, 124).unwrap();
        assert_eq!(e.value.to_bits(), b.value.to_bits());
    }
}
