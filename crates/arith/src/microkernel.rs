//! Register-tiled, autovectorization-friendly GEMM microkernels.
//!
//! The scalar hot loops ([`crate::gemm::owlp_gemm_decoded`] and the
//! windowed [`crate::exact::exact_gemm`] tiles) historically did one
//! `u16 as i64 × u16 as i64` FMA per product, plus a per-product branch
//! for the sign and the `{0,4,8}` post-multiply shift. The paper's whole
//! point is that the OwL-P datapath is *integer-only* — so the software
//! model should run at integer-SIMD speed too. This module restructures
//! the inner loop around two facts:
//!
//! 1. **Products are exact in narrow integers.** A packed operand's folded
//!    significand (`sval = ±(mag << 4·sh)`, see
//!    [`owlp_format::packed::PackedOperands::svals`]) satisfies
//!    `|sval| ≤ (2^11 − 1)·2^4 = 32752 < 2^15`, so it fits an `i16` and a
//!    product of two fits an `i32` (`|p| < 2^30`) with no rounding — the
//!    `{0,4,8}` shifter and both signs are already folded in. The
//!    `i16×i16→i32` multiply-add shape is exactly what packed integer
//!    SIMD units (and autovectorizers) are built for.
//!
//! 2. **Lane sums provably cannot overflow before the spill.** Partial
//!    sums are kept in `i64` lanes and spilled into the existing
//!    [`WindowAcc`] `i128` frame every [`K_SPILL`] terms. The bound:
//!    `K_SPILL · max|p| ≤ 2^14 · 2^30 = 2^44 ≪ 2^63`, so the `i64` lane
//!    is exact by a margin of 19 bits (any `K_SPILL ≤ 2^32` would do;
//!    2^14 keeps a segment resident in L1). Integer addition is
//!    associative and commutative, so regrouping the dot product into
//!    MR×NR register tiles, K segments, and per-lane partials computes
//!    the *same* exact integer as the scalar sweep — bit-identity with
//!    the Kulisch oracle is preserved by construction, exactly as for
//!    [`WindowAcc`] itself.
//!
//! The kernel computes an [`MR`]×[`NR`] output tile per call: `MR` rows
//! of A (flat sval slices) against one [`owlp_format::PackedPanels`]
//! panel of `NR` interleaved weight columns. Callers pad edge tiles with
//! an all-zero row / rely on the panel's zero-padded columns — zero
//! svals contribute nothing, so there are no edge-case variants to
//! diverge from the proof above.
//!
//! The `i32` twin ([`tile_dot_i32`]) serves the exact-GEMM band path,
//! where in-band aligned magnitudes span up to 31 bits; its caller sizes
//! the band so that even the **full-k** lane sum fits `i64` (see
//! `crate::exact`), so it needs no intermediate spill.

use crate::window::WindowAcc;

/// Output-tile rows per microkernel call.
pub const MR: usize = 4;

/// Output-tile columns per microkernel call — fixed by the panel layout.
pub const NR: usize = owlp_format::packed::PANEL_NR;

/// K-depth between lane spills into the [`WindowAcc`] frame. With
/// products `|p| < 2^30`, a lane accumulates `< 2^44` per segment —
/// provably exact in `i64` (see the module docs).
pub const K_SPILL: usize = 1 << 14;

/// Multiplies one K-segment of an MR×NR tile into the `i64` lane array:
/// `lanes[r][c] += Σ_kk a_rows[r][kk] · panel[kk·NR + c]`.
///
/// `a_rows` are `seg`-long sval slices (pad missing edge rows with a zero
/// slice); `panel` is the matching `seg·NR` K-major panel segment. The
/// caller must spill at least every [`K_SPILL`] terms.
#[inline]
pub fn tile_mul_i16(a_rows: [&[i16]; MR], panel: &[i16], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    debug_assert!(seg <= K_SPILL, "segment longer than the spill period");
    debug_assert!(a_rows.iter().all(|r| r.len() == seg));
    debug_assert_eq!(panel.len(), seg * NR);
    for kk in 0..seg {
        let b = &panel[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let av = a_rows[r][kk] as i32;
            for (c, lane) in lanes[r].iter_mut().enumerate() {
                // i16×i16 → exact i32 product, widened once per lane.
                *lane += (av * b[c] as i32) as i64;
            }
        }
    }
}

/// Full-depth MR×NR tile: segments of [`K_SPILL`] terms accumulate in
/// `i64` lanes and spill into per-element [`WindowAcc`]s cloned from
/// `win0` (the shared-frame window of the GEMM call).
#[inline]
pub fn tile_dot_i16(a_rows: [&[i16]; MR], panel: &[i16], win0: WindowAcc) -> [[WindowAcc; NR]; MR] {
    let k = a_rows[0].len();
    debug_assert_eq!(panel.len(), k * NR);
    let mut wins = [[win0; NR]; MR];
    let mut lanes = [[0i64; NR]; MR];
    let mut s = 0usize;
    while s < k {
        let seg = K_SPILL.min(k - s);
        let sub: [&[i16]; MR] = std::array::from_fn(|r| &a_rows[r][s..s + seg]);
        tile_mul_i16(sub, &panel[s * NR..(s + seg) * NR], &mut lanes);
        for (wr, lr) in wins.iter_mut().zip(&mut lanes) {
            for (w, lane) in wr.iter_mut().zip(lr.iter_mut()) {
                w.add_aligned(std::mem::take(lane));
            }
        }
        s += seg;
    }
    wins
}

/// Clean-pair dot product over folded significands, spilled into a copy
/// of `win0` per [`K_SPILL`] segment — the systolic event simulator's
/// all-normal wavefront (streams may differ in length; the shorter one
/// bounds the depth, matching the zip semantics of the scalar loop).
#[inline]
pub fn dot_sval(a: &[i16], b: &[i16], win0: WindowAcc) -> WindowAcc {
    let len = a.len().min(b.len());
    let mut win = win0;
    let mut s = 0usize;
    while s < len {
        let seg = K_SPILL.min(len - s);
        let mut sum = 0i64;
        for kk in s..s + seg {
            sum += (a[kk] as i32 * b[kk] as i32) as i64;
        }
        win.add_aligned(sum);
        s += seg;
    }
    win
}

/// The `i32` twin of [`tile_mul_i16`] for the exact-GEMM band planes:
/// products are taken in `i64` (`|a| < 2^31` each side). The caller's
/// band-width budget guarantees the full-depth lane sum fits `i64`, so
/// no spill period applies here.
#[inline]
pub fn tile_mul_i32(a_rows: [&[i32]; MR], panel: &[i32], lanes: &mut [[i64; NR]; MR]) {
    let seg = a_rows[0].len();
    debug_assert!(a_rows.iter().all(|r| r.len() == seg));
    debug_assert_eq!(panel.len(), seg * NR);
    for kk in 0..seg {
        let b = &panel[kk * NR..kk * NR + NR];
        for r in 0..MR {
            let av = a_rows[r][kk] as i64;
            for (c, lane) in lanes[r].iter_mut().enumerate() {
                *lane += av * b[c] as i64;
            }
        }
    }
}

/// Full-depth MR×NR tile over `i32` band planes, returning raw `i64`
/// lane sums (the caller owns rounding / correction).
#[inline]
pub fn tile_dot_i32(a_rows: [&[i32]; MR], panel: &[i32]) -> [[i64; NR]; MR] {
    let mut lanes = [[0i64; NR]; MR];
    tile_mul_i32(a_rows, panel, &mut lanes);
    lanes
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::{encode_tensor, Bf16};

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    /// Normal-band values so every product lands on the shared frame.
    fn normals(len: usize, seed: u64) -> Vec<Bf16> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let u = (state >> 40) as f32 / (1u64 << 24) as f32;
                let sign = if state & 2 == 0 { 1.0 } else { -1.0 };
                bf(sign * (0.75 + u * 0.5))
            })
            .collect()
    }

    #[test]
    fn sval_bound_is_i16_safe() {
        // The proof constant: max mag (11 bits) at max shift.
        let max = ((1i32 << 11) - 1) << 4;
        assert_eq!(max, 32752);
        assert!(max <= i16::MAX as i32);
        // And the product bound used for K_SPILL.
        assert!((max as i64 * max as i64) < 1 << 30);
        assert!((K_SPILL as i64) << 30 <= 1 << 44);
    }

    #[test]
    fn tile_matches_scalar_dot_per_element() {
        let k = 3 * K_SPILL / 2 + 7; // forces a mid-depth spill + remainder
        let a: Vec<Bf16> = normals(MR * k, 11);
        let b: Vec<Bf16> = normals(k * NR, 22);
        let ea = encode_tensor(&a, None).unwrap();
        let eb = encode_tensor(&b, None).unwrap();
        let pa = ea.decode_packed();
        let pb = eb.decode_packed();
        let panels = pb.pack_panels(k, NR);
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), eb.shared_exp(), k);
        let a_rows: [&[i16]; MR] = std::array::from_fn(|r| &pa.svals()[r * k..(r + 1) * k]);
        let wins = tile_dot_i16(a_rows, panels.panel(0), win0);
        for (r, wrow) in wins.iter().enumerate() {
            for (c, wtile) in wrow.iter().enumerate() {
                let mut win = win0;
                let mut sum = 0i64;
                for kk in 0..k {
                    sum += pa.svals()[r * k + kk] as i64 * pb.svals()[kk * NR + c] as i64;
                    if kk & 0x1F == 0x1F {
                        win.add_aligned(sum);
                        sum = 0;
                    }
                }
                win.add_aligned(sum);
                assert_eq!(
                    wtile.round_to_f32().to_bits(),
                    win.round_to_f32().to_bits(),
                    "tile ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn dot_sval_matches_scalar_spill_loop() {
        let k = K_SPILL + 33;
        let a = normals(k, 5);
        let b = normals(k, 6);
        let ea = encode_tensor(&a, None).unwrap();
        let eb = encode_tensor(&b, None).unwrap();
        let (pa, pb) = (ea.decode_packed(), eb.decode_packed());
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), eb.shared_exp(), k);
        let fast = dot_sval(pa.svals(), pb.svals(), win0);
        let mut win = win0;
        for kk in 0..k {
            win.add_aligned(pa.svals()[kk] as i64 * pb.svals()[kk] as i64);
        }
        assert_eq!(fast.round_to_f32().to_bits(), win.round_to_f32().to_bits());
    }

    #[test]
    fn zero_padded_rows_and_columns_contribute_nothing() {
        let k = 37;
        let a = normals(k, 3);
        let ea = encode_tensor(&a, None).unwrap();
        let pa = ea.decode_packed();
        let zero = vec![0i16; k];
        let a_rows: [&[i16]; MR] =
            std::array::from_fn(|r| if r == 0 { pa.svals() } else { zero.as_slice() });
        let panel = vec![0i16; k * NR];
        let win0 = WindowAcc::for_owlp_normal(ea.shared_exp(), 127, k);
        let wins = tile_dot_i16(a_rows, &panel, win0);
        for row in &wins {
            for w in row {
                assert!(w.is_zero());
            }
        }
    }

    #[test]
    fn i32_tile_matches_scalar() {
        let k = 129;
        let mut state = 0xACE1u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 33) as i32 % (1 << 20)) - (1 << 19)
        };
        let a: Vec<i32> = (0..MR * k).map(|_| next()).collect();
        let panel: Vec<i32> = (0..k * NR).map(|_| next()).collect();
        let a_rows: [&[i32]; MR] = std::array::from_fn(|r| &a[r * k..(r + 1) * k]);
        let lanes = tile_dot_i32(a_rows, &panel);
        for r in 0..MR {
            for c in 0..NR {
                let scalar: i64 = (0..k)
                    .map(|kk| a[r * k + kk] as i64 * panel[kk * NR + c] as i64)
                    .sum();
                assert_eq!(lanes[r][c], scalar, "({r},{c})");
            }
        }
    }
}
