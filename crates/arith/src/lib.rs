//! # owlp-arith
//!
//! Arithmetic datapath models for the OwL-P accelerator (paper §IV):
//!
//! * [`kulisch`] — an exact fixed-point super-accumulator over BF16
//!   products; the golden reference every other path is checked against.
//! * [`exact`] — correctly-rounded (single-rounding) FP32 dot products and
//!   GEMM built on the Kulisch accumulator.
//! * [`fpmac`] — the baseline **BF16-multiply / FP32-accumulate** MAC of the
//!   TPU-like comparison design (sequential rounding at every add).
//! * [`pipeline`] — register-accurate 2-stage (OwL-P) and 4-stage (FMA)
//!   PE pipeline timing models (paper Table V);
//! * [`pe`] — the OwL-P processing element: 8-way INT dot product with
//!   per-lane path selection and the `{0,4,8}`-bit post-multiply shifter
//!   (paper Fig. 4a).
//! * [`align`] / [`int2fp`] — the bottom-of-column align unit and INT-to-FP
//!   converter (paper Fig. 4b/c), in both an exact and a bounded-width
//!   hardware variant.
//! * [`mod@column`] — a weight-stationary PE column combining partial-sum and
//!   outlier-path propagation.
//! * [`gemm`] — end-to-end functional GEMMs: `owlp_gemm` (encode → decode →
//!   INT array → FP), the FP baseline, and the exact reference.
//! * [`fault`] — fault-injection sensitivity analysis of the decoded
//!   operand fields (which wires a real implementation should protect);
//! * [`testbench`] — a coverage-driven randomized self-checking testbench
//!   over the whole GEMM pipeline;
//! * [`quant`] — the comparison schemes of paper Table I: plain INT8
//!   quantization, INT8 + FP outliers, and block floating point.
//!
//! ## The numerical-accuracy claim, precisely
//!
//! OwL-P accumulates every product **exactly** in integer form and rounds
//! **once** when converting to FP32. Its result is therefore the correctly
//! rounded FP32 value of the mathematically exact dot product — at least as
//! accurate as *any* FP accumulation order, and bit-reproducible. The crate's
//! tests assert `owlp_gemm == exact_gemm` **bit-for-bit** and that the
//! sequential-FP32 baseline's error w.r.t. the exact sum is never smaller.
//!
//! ```
//! use owlp_format::Bf16;
//! use owlp_arith::{exact, gemm};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a: Vec<Bf16> = [1.5f32, -2.0, 1000.0, 3.0e-4].iter().map(|&x| Bf16::from_f32(x)).collect();
//! let b: Vec<Bf16> = [0.25f32, 4.0, -1.0e-3, 2.0].iter().map(|&x| Bf16::from_f32(x)).collect();
//! let owlp = gemm::owlp_gemm(&a, &b, 1, 4, 1)?;
//! let golden = exact::exact_gemm(&a, &b, 1, 4, 1);
//! assert_eq!(owlp.output[0].to_bits(), golden[0].to_bits());
//! # Ok(())
//! # }
//! ```

pub mod align;
pub mod column;
pub mod error;
pub mod exact;
pub mod fault;
pub mod fpmac;
pub mod gemm;
pub mod int2fp;
pub mod kulisch;
pub mod microkernel;
pub mod pe;
pub mod pipeline;
pub mod quant;
pub mod testbench;
pub mod window;

pub use align::{AlignUnit, Contribution};
pub use error::ArithError;
pub use exact::{exact_dot, exact_gemm, exact_gemm_abft, AbftCheck};
pub use fpmac::{fp_mac_dot, fp_mac_gemm};
pub use gemm::{
    owlp_gemm, owlp_gemm_packed_abft, owlp_gemm_prepared, owlp_gemm_prepared_f32_with,
    owlp_gemm_prepared_with, AbftSums, GemmScratch, LaneStrike, OwlpGemmOutput, PreparedTensor,
};
pub use kulisch::KulischAcc;
pub use pe::{LaneProduct, PeConfig, ProcessingElement};
pub use window::WindowAcc;
