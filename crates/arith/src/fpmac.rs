//! The baseline FP MAC: BF16 multiply, FP32 sequential accumulate.
//!
//! This is the arithmetic of the TPU-like comparison design in the paper's
//! evaluation (§VI-B: "BF16 multiplication and FP32 accumulation"). The
//! product of two BF16 values is exactly representable in FP32 (8 × 8
//! significand bits ≤ 24), so the only rounding happens in the running
//! FP32 addition — once per element. That per-step rounding is what OwL-P's
//! exact integer accumulation eliminates.

use owlp_format::Bf16;

/// Sequential BF16-multiply / FP32-accumulate dot product, in index order —
/// the reference behaviour of one baseline MAC column.
///
/// ```
/// use owlp_format::Bf16;
/// use owlp_arith::fp_mac_dot;
/// let a = vec![Bf16::from_f32(2.0); 4];
/// let b = vec![Bf16::from_f32(0.5); 4];
/// assert_eq!(fp_mac_dot(&a, &b), 4.0);
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn fp_mac_dot(a: &[Bf16], b: &[Bf16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    let mut acc = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        acc += x.to_f32() * y.to_f32();
    }
    acc
}

/// Tree-reduction variant (pairwise summation) — how a wide FP adder tree
/// would accumulate. Exposed for accuracy-comparison experiments; still
/// rounds at every node, unlike the exact path.
pub fn fp_tree_dot(a: &[Bf16], b: &[Bf16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot product length mismatch");
    fn reduce(products: &mut Vec<f32>) -> f32 {
        while products.len() > 1 {
            let mut next = Vec::with_capacity(products.len().div_ceil(2));
            for pair in products.chunks(2) {
                next.push(if pair.len() == 2 {
                    pair[0] + pair[1]
                } else {
                    pair[0]
                });
            }
            *products = next;
        }
        products.first().copied().unwrap_or(0.0)
    }
    let mut products: Vec<f32> = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| x.to_f32() * y.to_f32())
        .collect();
    reduce(&mut products)
}

/// Baseline GEMM: `C[m][n] = fp_mac_dot(A[m, :], B[:, n])`.
///
/// `a` is `m×k` row-major, `b` is `k×n` row-major.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn fp_mac_gemm(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk].to_f32() * b[kk * n + j].to_f32();
            }
            out[i * n + j] = acc;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_dot;

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    #[test]
    fn simple_dot() {
        let a: Vec<Bf16> = [1.0f32, 2.0, 3.0].iter().map(|&x| bf(x)).collect();
        let b: Vec<Bf16> = [4.0f32, 5.0, 6.0].iter().map(|&x| bf(x)).collect();
        assert_eq!(fp_mac_dot(&a, &b), 32.0);
        assert_eq!(fp_tree_dot(&a, &b), 32.0);
    }

    #[test]
    fn bf16_products_are_exact_in_f32() {
        // Any single product must equal the exact path: only accumulation
        // rounds.
        for (x, y) in [
            (1.5f32, 2.5f32),
            (0.0078125, 3.0),
            (1e19, 1e-19),
            (-7.0, 0.328125),
        ] {
            let (bx, by) = (bf(x), bf(y));
            assert_eq!(fp_mac_dot(&[bx], &[by]), exact_dot(&[bx], &[by]));
        }
    }

    #[test]
    fn sequential_accumulation_loses_small_terms() {
        // 1e30 + 0.25·10 − 1e30: sequential f32 gives 0, exact gives 2.5.
        let mut a = vec![bf(1e30)];
        let mut b = vec![Bf16::ONE];
        for _ in 0..10 {
            a.push(bf(0.5));
            b.push(bf(0.5));
        }
        a.push(bf(-1e30));
        b.push(Bf16::ONE);
        assert_eq!(fp_mac_dot(&a, &b), 0.0);
        assert_eq!(exact_dot(&a, &b), 2.5);
    }

    #[test]
    fn gemm_matches_dot_per_element() {
        let a: Vec<Bf16> = (0..6).map(|i| bf(i as f32 * 0.3)).collect();
        let b: Vec<Bf16> = (0..6).map(|i| bf(1.0 - i as f32 * 0.1)).collect();
        let c = fp_mac_gemm(&a, &b, 2, 3, 2);
        // c[0][0] = dot(row0 of A, col0 of B)
        let row0 = &a[0..3];
        let col0 = vec![b[0], b[2], b[4]];
        assert_eq!(c[0], fp_mac_dot(row0, &col0));
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(fp_mac_dot(&[], &[]), 0.0);
        assert_eq!(fp_tree_dot(&[], &[]), 0.0);
    }

    #[test]
    fn tree_dot_odd_length() {
        let a: Vec<Bf16> = (1..=5).map(|i| bf(i as f32)).collect();
        let b = vec![Bf16::ONE; 5];
        assert_eq!(fp_tree_dot(&a, &b), 15.0);
    }
}
