//! Bounded-window wide-integer accumulation — the fast path of the
//! all-normal wavefront.
//!
//! The paper's shared-exponent encoding (§IV) bounds the frame span of
//! normal×normal products *statically*: every normal operand's magnitude
//! is an integer on the grid `2^(shared − 134)` (11 magnitude bits with the
//! `{0,4,8}` pre-shift already folded in), so every normal product of one
//! GEMM call lives in the **single** frame
//! `shared_a + shared_w − 2·(127 + 7)` and spans at most ~30 bits. A
//! 768-bit Kulisch register is overkill for that window: an `i128` with a
//! fixed least-significant frame holds the entire sum with > 90 bits of
//! carry headroom.
//!
//! Because integer addition is associative and commutative, regrouping the
//! products into this window and rounding **once** at the end produces the
//! *same* correctly-rounded FP32 value as pushing every product through
//! [`KulischAcc`] — both compute the exact sum, and both round it with the
//! identical round-to-nearest-even conversion ([`int_to_f32`] /
//! [`KulischAcc::round_to_f32`]). Bit-exactness is preserved by
//! construction, not by luck; the property tests in
//! `tests/parallel_determinism.rs` pit the two against each other anyway.

use crate::int2fp::int_to_f32;
use crate::kulisch::KulischAcc;

/// Bits of an `i128` usable for magnitude before the sign bit (one spare
/// bit kept below the two's-complement sign).
const CAPACITY_BITS: i32 = 126;

/// Worst-case magnitude bits of one OwL-P PE product (normal or outlier —
/// the datapath is the same multiplier): 11-bit × 11-bit magnitudes (hidden
/// bit + 7-bit fraction + ≤3 pre-shift bits) plus the `{0,4,8}`
/// post-multiply shifter.
pub const OWLP_PRODUCT_BITS: i32 = 11 + 11 + 8;

/// A fixed-window exact accumulator: the value is `acc × 2^lo`.
///
/// Constructed for a *specific* workload whose product frames provably fit
/// the window (see [`WindowAcc::for_span`] / [`WindowAcc::for_owlp_normal`]);
/// within that contract it is exact, and [`WindowAcc::round_to_f32`] is the
/// same single RNE rounding the Kulisch path performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowAcc {
    acc: i128,
    /// Frame (power of two) of bit 0 of `acc`.
    lo: i32,
}

impl WindowAcc {
    /// An accumulator whose least-significant bit sits at `2^lo`.
    ///
    /// The caller asserts (by construction of its workload) that every
    /// added term has `frame ≥ lo` and that the running sum stays within
    /// the `i128`; use [`WindowAcc::for_span`] to have that checked.
    pub fn new(lo: i32) -> Self {
        WindowAcc { acc: 0, lo }
    }

    /// An accumulator for up to `terms` terms, each a value of magnitude
    /// `< 2^hi_bit` on the grid `2^lo` — or `None` when the worst-case sum
    /// cannot be proven to fit the 126-bit window (the caller then falls
    /// back to [`KulischAcc`]).
    pub fn for_span(lo: i32, hi_bit: i32, terms: u64) -> Option<Self> {
        let span = (hi_bit - lo).max(0);
        // Headroom: terms each < 2^span sum to < 2^(span + ceil_log2(terms)).
        let headroom = 64 - terms.leading_zeros() as i32;
        if span + headroom <= CAPACITY_BITS {
            Some(WindowAcc::new(lo))
        } else {
            None
        }
    }

    /// The window of one OwL-P GEMM's all-normal wavefronts, derived from
    /// the two tensors' shared exponents plus the PE shift range: every
    /// normal product is an integer `< 2^30` in the frame
    /// `shared_a + shared_w − 2·(127 + 7)`.
    ///
    /// Infallible for any real `k`: 30 product bits + log₂(k) headroom is
    /// nowhere near 126 bits.
    pub fn for_owlp_normal(shared_a: u8, shared_w: u8, k: usize) -> Self {
        let lo = shared_a as i32 + shared_w as i32 - 2 * (127 + 7);
        Self::for_span(lo, lo + OWLP_PRODUCT_BITS, k as u64)
            .expect("OwL-P normal window always fits i128")
    }

    /// The frame of bit 0.
    pub fn frame(&self) -> i32 {
        self.lo
    }

    /// Whether the accumulated value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.acc == 0
    }

    /// Adds `mag × 2^frame` exactly (`frame ≥ lo` per the window contract).
    #[inline]
    pub fn add(&mut self, mag: i64, frame: i32) {
        debug_assert!(
            frame >= self.lo,
            "term frame {frame} below window {}",
            self.lo
        );
        self.acc += (mag as i128) << (frame - self.lo);
    }

    /// Adds `mag` already expressed in the window's own frame — the inner
    /// loop of the all-normal GEMM path, where every product shares `lo`.
    #[inline]
    pub fn add_aligned(&mut self, mag: i64) {
        self.acc += mag as i128;
    }

    /// Adds another window's exact value (`other.lo ≥ self.lo`; the caller
    /// proves the combined sum fits, e.g. by sizing `self` with
    /// [`WindowAcc::for_span`] over both workloads).
    pub fn add_window(&mut self, other: &WindowAcc) {
        debug_assert!(
            other.lo >= self.lo,
            "window frame {} below target window {}",
            other.lo,
            self.lo
        );
        self.acc += other.acc << (other.lo - self.lo);
    }

    /// The raw accumulator word (the exact value is `raw × 2^frame`) — the
    /// ABFT checksum input: integer row/column sums over these words obey
    /// the same closed arithmetic as the data itself.
    pub fn raw(&self) -> i128 {
        self.acc
    }

    /// Flips one bit of the accumulator word — the sanctioned
    /// accumulator-lane upset for fault-injection studies (an involution).
    pub fn toggle_bit(&mut self, bit: u32) {
        self.acc ^= 1i128 << bit;
    }

    /// Rounds the exact value to `f32` — the identical single RNE rounding
    /// as [`KulischAcc::round_to_f32`].
    pub fn round_to_f32(&self) -> f32 {
        int_to_f32(self.acc, self.lo, false)
    }

    /// Spills the exact value into a Kulisch register (used when a fast
    /// partial sum joins an outlier-carrying accumulation).
    pub fn merge_into(&self, acc: &mut KulischAcc) {
        acc.add_wide(self.acc, self.lo);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::Bf16;

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    /// Deterministic pseudo-random stream of (mag, frame) terms.
    fn terms(seed: u64, count: usize, lo: i32, span: i32) -> Vec<(i64, i32)> {
        let mut state = seed | 1;
        (0..count)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let mag = ((state >> 16) as u32 & 0x3FFF_FFFF) as i64;
                let mag = if state & 1 == 0 { -mag } else { mag };
                let frame = lo + (state >> 48) as i32 % span.max(1);
                (mag, frame)
            })
            .collect()
    }

    #[test]
    fn matches_kulisch_on_random_windows() {
        for (seed, lo) in [(1u64, -200), (99, -37), (12345, 40)] {
            let ts = terms(seed, 5_000, lo, 20);
            let mut win =
                WindowAcc::for_span(lo, lo + 20 + 30, ts.len() as u64).expect("window fits");
            let mut acc = KulischAcc::new();
            for &(mag, frame) in &ts {
                win.add(mag, frame);
                acc.add_scaled(mag, frame);
            }
            assert_eq!(
                win.round_to_f32().to_bits(),
                acc.round_to_f32().to_bits(),
                "seed {seed} lo {lo}"
            );
            // The spill path agrees too.
            let mut spilled = KulischAcc::new();
            win.merge_into(&mut spilled);
            assert_eq!(spilled, acc, "spill seed {seed}");
        }
    }

    #[test]
    fn owlp_normal_window_matches_kulisch_products() {
        // Normal-range BF16 products against the Kulisch oracle via the
        // shared-frame (add_aligned) path, exactly as the GEMM uses it.
        // All values sit in [1, 2) so their exponent equals the shared
        // exponent and every product lands exactly on the window frame.
        let vals: Vec<Bf16> = (0..64)
            .map(|i| {
                let sign = if i % 3 == 0 { -1.0 } else { 1.0 };
                bf(sign * (1.0 + i as f32 * 0.01))
            })
            .collect();
        let shared = 127u8; // exponent of every value in [1, 2)
        let lo = shared as i32 + shared as i32 - 268;
        let mut win = WindowAcc::for_owlp_normal(shared, shared, vals.len());
        assert_eq!(win.frame(), lo);
        let mut acc = KulischAcc::new();
        for (i, &x) in vals.iter().enumerate() {
            let y = vals[(i * 7 + 3) % vals.len()];
            // Express the product on the shared normal grid by hand.
            let fx = x.pow2_frame();
            let fy = y.pow2_frame();
            let p = x.significand() as i64 * y.significand() as i64;
            let p = if x.sign() ^ y.sign() { -p } else { p };
            let sh = (fx + fy) - lo;
            assert!(sh >= 0, "test values stay in the normal window");
            win.add_aligned(p << sh);
            acc.add_product(x, y);
        }
        assert_eq!(win.round_to_f32().to_bits(), acc.round_to_f32().to_bits());
    }

    #[test]
    fn for_span_rejects_oversized_windows() {
        assert!(WindowAcc::for_span(-266, -266 + 110, 1 << 20).is_none());
        assert!(WindowAcc::for_span(-266, -266 + 63, u64::MAX).is_none());
        assert!(WindowAcc::for_span(0, 30, 1 << 20).is_some());
    }

    #[test]
    fn zero_rounds_to_positive_zero() {
        let win = WindowAcc::new(-50);
        assert!(win.is_zero());
        assert_eq!(win.round_to_f32().to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn cancellation_is_exact() {
        let mut win = WindowAcc::new(-100);
        win.add(i64::MAX / 4, -80);
        win.add(-(i64::MAX / 4), -80);
        win.add(3, -100);
        assert_eq!(win.round_to_f32(), 3.0 * (-100f32).exp2());
    }
}
