//! Error types for the arithmetic datapath.

use owlp_format::FormatError;
use std::error::Error;
use std::fmt;

/// Errors from datapath simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArithError {
    /// The number of outlier products generated in one PE cycle exceeded the
    /// PE's outlier-path capacity. The outlier-aware scheduler (paper §V-A)
    /// exists precisely to prevent this; hitting it means inputs bypassed
    /// scheduling.
    OutlierPathOverflow {
        /// Outlier products produced this cycle.
        produced: usize,
        /// Paths available per cycle.
        capacity: usize,
    },
    /// Operand slices had inconsistent lengths for the requested GEMM shape.
    DimensionMismatch {
        /// Description of the mismatched dimension.
        what: &'static str,
        /// Expected element count.
        expected: usize,
        /// Actual element count.
        actual: usize,
    },
    /// An encoding step failed (non-finite input, packing overflow, …).
    Format(FormatError),
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::OutlierPathOverflow { produced, capacity } => write!(
                f,
                "{produced} outlier products exceed the {capacity} outlier paths per cycle"
            ),
            ArithError::DimensionMismatch {
                what,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "dimension mismatch in {what}: expected {expected}, got {actual}"
                )
            }
            ArithError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl Error for ArithError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArithError::Format(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FormatError> for ArithError {
    fn from(e: FormatError) -> Self {
        ArithError::Format(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ArithError::Format(FormatError::NonFinite { index: 0 });
        assert!(e.to_string().contains("format error"));
        assert!(e.source().is_some());
        let o = ArithError::OutlierPathOverflow {
            produced: 3,
            capacity: 2,
        };
        assert!(o.source().is_none());
        assert!(o.to_string().contains("3 outlier"));
    }
}
