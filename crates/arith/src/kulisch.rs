//! Exact fixed-point super-accumulation (Kulisch accumulator).
//!
//! Every product of two finite BF16 values is an integer multiple of
//! `2^-266` (two subnormal frames of `2^-133` each) and bounded by
//! `2^256`. A 768-bit two's-complement fixed-point register therefore
//! accumulates *any* realistic number of such products without error. This
//! is the mathematical reference the paper's correctness claim is judged
//! against, and also the model of an "ideal" align unit with unlimited
//! width (see [`crate::align`] for the bounded hardware variant).

use owlp_format::Bf16;

/// Number of 64-bit limbs in the accumulator.
const LIMBS: usize = 12;
/// Weight of bit 0 of the accumulator: the value is `Σ limbs × 2^LSB_POW`.
const LSB_POW: i32 = -300;
/// Highest usable bit index (two's-complement sign headroom).
const MSB_INDEX: i32 = (LIMBS as i32) * 64 - 1;

/// An exact accumulator for sums of `mag × 2^pow2` terms.
///
/// The register spans bit weights `2^-300 ..= 2^467`, comfortably covering
/// every BF16 product frame (`2^-266 ..= 2^240`) plus > 200 bits of carry
/// headroom — enough for 2^200 accumulated terms.
///
/// ```
/// use owlp_arith::KulischAcc;
/// use owlp_format::Bf16;
///
/// let mut acc = KulischAcc::new();
/// acc.add_product(Bf16::from_f32(1.0e30), Bf16::from_f32(1.0e-30));
/// acc.add_product(Bf16::from_f32(-1.5), Bf16::from_f32(2.0));
/// // (1e30·1e-30 rounded to bf16 grid) − 3.0, computed exactly, rounded once:
/// let r = acc.round_to_f32();
/// assert!((r - (-1.99)).abs() < 0.02);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KulischAcc {
    limbs: [u64; LIMBS],
}

impl Default for KulischAcc {
    fn default() -> Self {
        Self::new()
    }
}

impl KulischAcc {
    /// Creates a zeroed accumulator.
    pub fn new() -> Self {
        KulischAcc { limbs: [0; LIMBS] }
    }

    /// Whether the accumulated value is exactly zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.iter().all(|&l| l == 0)
    }

    /// Whether the accumulated value is negative.
    pub fn is_negative(&self) -> bool {
        self.limbs[LIMBS - 1] & (1 << 63) != 0
    }

    /// Adds `mag × 2^pow2` exactly.
    ///
    /// # Panics
    ///
    /// Panics if `pow2` falls outside the register's span — impossible for
    /// BF16 product frames, which is the intended domain.
    pub fn add_scaled(&mut self, mag: i64, pow2: i32) {
        if mag == 0 {
            return;
        }
        let shift = pow2 - LSB_POW;
        assert!(shift >= 0, "pow2 {pow2} below accumulator LSB");
        assert!(
            shift + 64 <= MSB_INDEX,
            "pow2 {pow2} too large for accumulator span"
        );
        let limb = (shift / 64) as usize;
        let off = (shift % 64) as u32;
        let wide = (mag as i128) << off; // |mag| < 2^63, off ≤ 63 → fits
        let words = [wide as u64, (wide >> 64) as u64];
        let ext = if mag < 0 { u64::MAX } else { 0 };
        let mut carry = false;
        for (i, &w) in words.iter().enumerate() {
            carry = add_with_carry(&mut self.limbs[limb + i], w, carry);
        }
        for l in &mut self.limbs[limb + 2..] {
            carry = add_with_carry(l, ext, carry);
        }
        // Wrap-around of the top limb cancels against the sign extension of
        // negative addends; with the provisioned headroom the represented
        // value never approaches the register bounds.
    }

    /// Adds the exact product of two finite BF16 values.
    ///
    /// # Panics
    ///
    /// Panics if either operand is NaN or ±∞.
    pub fn add_product(&mut self, a: Bf16, b: Bf16) {
        assert!(
            a.is_finite() && b.is_finite(),
            "non-finite operand in exact product"
        );
        let mag = a.significand() as i64 * b.significand() as i64;
        let mag = if a.sign() ^ b.sign() { -mag } else { mag };
        self.add_scaled(mag, a.pow2_frame() + b.pow2_frame());
    }

    /// Adds `v × 2^frame` exactly for a full-width `i128` value (the spill
    /// path of [`crate::window::WindowAcc`] and of the batched product
    /// loop): the value is decomposed into 62-bit digits so each lands in
    /// [`KulischAcc::add_scaled`]'s `i64` domain.
    pub(crate) fn add_wide(&mut self, v: i128, frame: i32) {
        if v == 0 {
            return;
        }
        const DIGIT: u32 = 62;
        let mask: i128 = (1i128 << DIGIT) - 1;
        // Radix-2^62 digits with floor semantics (arithmetic shift), so
        // v == hi·2^124 + mid·2^62 + lo with lo, mid ∈ [0, 2^62).
        let lo = (v & mask) as i64;
        let mid = ((v >> DIGIT) & mask) as i64;
        let hi = (v >> (2 * DIGIT)) as i64;
        self.add_scaled(lo, frame);
        self.add_scaled(mid, frame + DIGIT as i32);
        self.add_scaled(hi, frame + 2 * DIGIT as i32);
    }

    /// Adds the exact products of two equal-length BF16 slices — the same
    /// result as calling [`KulischAcc::add_product`] per pair, but with the
    /// limb-index computation hoisted out of the per-product loop.
    ///
    /// Consecutive products usually share (or nearly share) a frame, so
    /// they are gathered into one `i128` pending window anchored at the
    /// first frame seen; the 12-limb register is only touched when a
    /// product jumps outside the pending window or its headroom runs out.
    /// Integer adds regroup freely, so the accumulated value is identical
    /// bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch or non-finite values, as
    /// [`KulischAcc::add_product`] does.
    pub fn add_product_batch(&mut self, a: &[Bf16], b: &[Bf16]) {
        assert_eq!(a.len(), b.len(), "dot product length mismatch");
        // A product magnitude has ≤ 16 bits; keep every pending term under
        // 2^100 and cap the term count so |pend| stays below 2^126.
        const MAX_SHIFT: i32 = 84;
        const PEND_TERMS: u32 = 1 << 26;
        let mut pend: i128 = 0;
        let mut anchor: i32 = 0;
        let mut have = false;
        let mut slack: u32 = PEND_TERMS;
        for (&x, &y) in a.iter().zip(b) {
            assert!(
                x.is_finite() && y.is_finite(),
                "non-finite operand in exact product"
            );
            let p = x.significand() as i64 * y.significand() as i64;
            if p == 0 {
                continue;
            }
            let p = if x.sign() ^ y.sign() { -p } else { p };
            let frame = x.pow2_frame() + y.pow2_frame();
            let sh = frame - anchor;
            if !have || !(0..=MAX_SHIFT).contains(&sh) || slack == 0 {
                if have {
                    self.add_wide(pend, anchor);
                }
                pend = p as i128;
                anchor = frame;
                have = true;
                slack = PEND_TERMS;
            } else {
                pend += (p as i128) << sh;
                slack -= 1;
            }
        }
        if have {
            self.add_wide(pend, anchor);
        }
    }

    /// Adds another accumulator's value.
    pub fn merge(&mut self, other: &KulischAcc) {
        let mut carry = false;
        for (l, &o) in self.limbs.iter_mut().zip(&other.limbs) {
            carry = add_with_carry(l, o, carry);
        }
    }

    /// Rounds the exact value to `f32` with round-to-nearest, ties to even —
    /// a single rounding of the mathematically exact sum.
    ///
    /// Exact zero returns `+0.0`. Overflow returns ±∞.
    pub fn round_to_f32(&self) -> f32 {
        if self.is_zero() {
            return 0.0;
        }
        let negative = self.is_negative();
        let abs = self.abs_limbs();
        // Index of the most significant set bit.
        let msb = highest_bit(&abs).expect("nonzero accumulator has a set bit");
        // Unbiased exponent of the leading bit.
        let exp = msb as i32 + LSB_POW;
        // Cut so the kept integer has ≤ 24 bits and the result exponent is
        // ≥ -126 − 23 (the f32 subnormal grid).
        let cut = (msb as i32 - 23).max(-149 - LSB_POW);
        let kept = extract_bits_rne(&abs, cut);
        if kept == 0 {
            return if negative { -0.0 } else { 0.0 };
        }
        let _ = exp;
        // kept × 2^(cut + LSB_POW) is exactly on the f32 grid (kept ≤ 2^24),
        // so the f64 → f32 conversion below cannot round a second time
        // (it only saturates to ∞ on overflow, which is the desired result).
        let magnitude = kept as f64 * ((cut + LSB_POW) as f64).exp2();
        let v = if negative { -magnitude } else { magnitude };
        v as f32
    }

    /// Lossy `f64` view for diagnostics (rounds once to f64 precision).
    pub fn to_f64_lossy(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let negative = self.is_negative();
        let abs = self.abs_limbs();
        let msb = highest_bit(&abs).expect("nonzero");
        let cut = (msb as i32 - 52).max(0);
        let kept = extract_bits_rne(&abs, cut);
        let magnitude = kept as f64 * ((cut + LSB_POW) as f64).exp2();
        if negative {
            -magnitude
        } else {
            magnitude
        }
    }

    fn abs_limbs(&self) -> [u64; LIMBS] {
        if !self.is_negative() {
            return self.limbs;
        }
        let mut out = [0u64; LIMBS];
        let mut carry = true;
        for (o, &l) in out.iter_mut().zip(&self.limbs) {
            let inv = !l;
            let (s, c) = inv.overflowing_add(carry as u64);
            *o = s;
            carry = c;
        }
        out
    }
}

#[inline]
fn add_with_carry(a: &mut u64, b: u64, carry: bool) -> bool {
    let (s1, c1) = a.overflowing_add(b);
    let (s2, c2) = s1.overflowing_add(carry as u64);
    *a = s2;
    c1 || c2
}

/// Index of the most significant set bit across limbs, or `None` if zero.
fn highest_bit(limbs: &[u64; LIMBS]) -> Option<usize> {
    for (i, &l) in limbs.iter().enumerate().rev() {
        if l != 0 {
            return Some(i * 64 + 63 - l.leading_zeros() as usize);
        }
    }
    None
}

/// Extracts `value >> cut` rounded to nearest-even, reading guard and sticky
/// bits below the cut. `cut ≥ 0`. The result fits in ≤ 25 bits for the f32
/// path (24 kept bits plus a possible rounding carry).
fn extract_bits_rne(limbs: &[u64; LIMBS], cut: i32) -> u64 {
    let cut = cut.max(0) as usize;
    let mut kept: u64 = 0;
    // Collect up to 64 bits starting at `cut`.
    let limb = cut / 64;
    let off = (cut % 64) as u32;
    if limb < LIMBS {
        kept = limbs[limb] >> off;
        if off > 0 && limb + 1 < LIMBS {
            kept |= limbs[limb + 1] << (64 - off);
        }
        // Higher limbs beyond 64 kept bits would overflow the caller's
        // expectation; callers guarantee the span above the cut is ≤ 64 bits.
    }
    // Guard bit (just below the cut) and sticky (everything below guard).
    let (guard, sticky) = if cut == 0 {
        (false, false)
    } else {
        let g_idx = cut - 1;
        let guard = limbs[g_idx / 64] & (1u64 << (g_idx % 64)) != 0;
        let mut sticky = false;
        // Whole limbs strictly below the guard bit's limb.
        for &l in &limbs[..g_idx / 64] {
            if l != 0 {
                sticky = true;
                break;
            }
        }
        if !sticky && !g_idx.is_multiple_of(64) {
            let mask = (1u64 << (g_idx % 64)) - 1;
            sticky = limbs[g_idx / 64] & mask != 0;
        }
        (guard, sticky)
    };
    if guard && (sticky || kept & 1 == 1) {
        kept += 1;
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bf(x: f32) -> Bf16 {
        Bf16::from_f32(x)
    }

    #[test]
    fn zero_accumulator() {
        let acc = KulischAcc::new();
        assert!(acc.is_zero());
        assert_eq!(acc.round_to_f32().to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn single_product_is_exact() {
        let mut acc = KulischAcc::new();
        acc.add_product(bf(1.5), bf(2.5));
        assert_eq!(acc.round_to_f32(), 3.75);
    }

    #[test]
    fn negative_sums() {
        let mut acc = KulischAcc::new();
        acc.add_product(bf(2.0), bf(-3.0));
        acc.add_product(bf(1.0), bf(1.0));
        assert_eq!(acc.round_to_f32(), -5.0);
        assert!(acc.is_negative());
    }

    #[test]
    fn perfect_cancellation() {
        let mut acc = KulischAcc::new();
        acc.add_product(bf(1e20), bf(1e18));
        acc.add_product(bf(-1e20), bf(1e18));
        acc.add_product(bf(1.0), bf(3.0));
        assert!(!acc.is_zero());
        assert_eq!(acc.round_to_f32(), 3.0);
    }

    #[test]
    fn catastrophic_cancellation_beats_f32() {
        // In f32 sequential accumulation 1e30 + 1 − 1e30 = 0; exactly it is 1.
        let mut acc = KulischAcc::new();
        acc.add_product(bf(1e30), bf(1.0));
        acc.add_product(bf(1.0), bf(1.0));
        acc.add_product(bf(-1e30), bf(1.0));
        assert_eq!(acc.round_to_f32(), 1.0);
    }

    #[test]
    fn extremes_of_the_product_range() {
        let mut acc = KulischAcc::new();
        // Smallest subnormal squared: 2^-266.
        acc.add_product(Bf16::MIN_POSITIVE_SUBNORMAL, Bf16::MIN_POSITIVE_SUBNORMAL);
        assert!(!acc.is_zero());
        // Underflows f32 → rounds to 0.
        assert_eq!(acc.round_to_f32(), 0.0);
        let lossy = acc.to_f64_lossy();
        assert!(lossy > 0.0 && lossy < 1e-79);

        let mut acc2 = KulischAcc::new();
        acc2.add_product(Bf16::MAX, Bf16::MAX);
        // ≈ 1.15e77, overflows f32 → +∞.
        assert_eq!(acc2.round_to_f32(), f32::INFINITY);
        assert!((acc2.to_f64_lossy() - Bf16::MAX.to_f64() * Bf16::MAX.to_f64()).abs() < 1e61);
    }

    #[test]
    fn subnormal_f32_results_are_on_grid() {
        let mut acc = KulischAcc::new();
        // 2^-75 × 2^-75 = 2^-150 → exactly halfway between 0 and the
        // smallest f32 subnormal 2^-149; ties-to-even → 0.
        let tiny = Bf16::from_f32((-75.0f32).exp2());
        acc.add_product(tiny, tiny);
        assert_eq!(acc.round_to_f32(), 0.0);
        // 3 × 2^-150 = 1.5 × 2^-149 → rounds to 2 × 2^-149.
        let mut acc2 = KulischAcc::new();
        acc2.add_product(tiny, tiny);
        acc2.add_product(tiny, tiny);
        acc2.add_product(tiny, tiny);
        assert_eq!(acc2.round_to_f32(), 2.0 * (-149.0f32).exp2());
    }

    #[test]
    fn rne_tie_to_even() {
        // Construct a sum exactly halfway between two f32 values:
        // 2^24 + 0.5 ulp: 16777216 + 1 = 16777217 is halfway between
        // 16777216 and 16777218 in f32; RNE keeps 16777216.
        let mut acc = KulischAcc::new();
        acc.add_scaled(16_777_217, 0);
        assert_eq!(acc.round_to_f32(), 16_777_216.0);
        // 16777219 is halfway between 16777218 and 16777220 → even: 16777220.
        let mut acc2 = KulischAcc::new();
        acc2.add_scaled(16_777_219, 0);
        assert_eq!(acc2.round_to_f32(), 16_777_220.0);
    }

    #[test]
    fn merge_equals_combined_adds() {
        let mut a = KulischAcc::new();
        let mut b = KulischAcc::new();
        let mut both = KulischAcc::new();
        for i in 0..50i64 {
            let x = bf(i as f32 * 0.37 - 7.0);
            let y = bf((i as f32).sin() * 12.0);
            if i % 2 == 0 {
                a.add_product(x, y);
            } else {
                b.add_product(x, y);
            }
            both.add_product(x, y);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn matches_f64_for_moderate_sums() {
        // Where f64 is exact (few terms, moderate exponents), results agree.
        let xs = [1.5f32, -0.25, 3.0, 100.0, -0.0625];
        let ys = [2.0f32, 8.0, -0.5, 0.125, 4.0];
        let mut acc = KulischAcc::new();
        let mut reference = 0.0f64;
        for (&x, &y) in xs.iter().zip(&ys) {
            let (bx, by) = (bf(x), bf(y));
            acc.add_product(bx, by);
            reference += bx.to_f64() * by.to_f64();
        }
        assert_eq!(acc.round_to_f32() as f64, reference);
    }

    #[test]
    #[should_panic(expected = "non-finite operand")]
    fn non_finite_product_panics() {
        let mut acc = KulischAcc::new();
        acc.add_product(Bf16::NAN, bf(1.0));
    }

    #[test]
    fn add_scaled_zero_is_noop() {
        let mut acc = KulischAcc::new();
        acc.add_scaled(0, -400); // out-of-range pow is fine when mag == 0
        assert!(acc.is_zero());
    }

    #[test]
    fn batch_matches_per_product_adds() {
        // A frame-hostile mix: normals, outlier-scale values, zeros, and
        // sign flips — the batch path must regroup to the same bits.
        let mut state = 0xB16B_00B5u64;
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let base = ((state >> 33) as i32 % 999) as f32 * 3e-3;
            let scale = match state % 97 {
                0 => 1e25,
                1 => 1e-25,
                _ => 1.0,
            };
            xs.push(bf(base * scale));
            ys.push(bf(if i % 5 == 0 { 0.0 } else { base - 0.7 }));
        }
        let mut per_product = KulischAcc::new();
        for (&x, &y) in xs.iter().zip(&ys) {
            per_product.add_product(x, y);
        }
        let mut batch = KulischAcc::new();
        batch.add_product_batch(&xs, &ys);
        assert_eq!(batch, per_product);
        assert_eq!(
            batch.round_to_f32().to_bits(),
            per_product.round_to_f32().to_bits()
        );
    }

    #[test]
    fn add_wide_splits_match_direct_adds() {
        for v in [
            0i128,
            1,
            -1,
            (1i128 << 100) + 12345,
            -(1i128 << 100) - 9876,
            i64::MAX as i128 * 7,
            i64::MIN as i128 * 3,
        ] {
            let mut wide = KulischAcc::new();
            wide.add_wide(v, -40);
            // Reference: feed |v| in signed 16-bit digits.
            let mut reference = KulischAcc::new();
            let sign: i64 = if v < 0 { -1 } else { 1 };
            let mut rest = v.unsigned_abs();
            let mut frame = -40;
            while rest != 0 {
                reference.add_scaled(sign * (rest & 0xFFFF) as i64, frame);
                rest >>= 16;
                frame += 16;
            }
            assert_eq!(wide, reference, "v {v}");
        }
    }

    #[test]
    #[should_panic(expected = "non-finite operand")]
    fn batch_rejects_non_finite() {
        let mut acc = KulischAcc::new();
        acc.add_product_batch(&[bf(1.0), Bf16::NAN], &[bf(1.0), bf(1.0)]);
    }

    #[test]
    fn many_term_accumulation_is_exact() {
        // Σ i over 10⁵ terms, each as product i × 1.0 with i on the bf16 grid.
        let mut acc = KulischAcc::new();
        let mut reference = 0.0f64;
        for i in 0..100_000u32 {
            let x = bf((i % 250) as f32);
            acc.add_product(x, Bf16::ONE);
            reference += x.to_f64();
        }
        assert_eq!(acc.to_f64_lossy(), reference);
    }
}
