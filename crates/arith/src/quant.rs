//! Comparison quantization schemes (paper Table I).
//!
//! Table I positions OwL-P against three families:
//!
//! | scheme | arithmetic | numerical accuracy |
//! |---|---|---|
//! | plain INT8 quantization | INT | heavy approximation |
//! | INT8 + FP outliers (LLM.int8-style) | INT + FP | heavy approx. for normals |
//! | block floating point (MX-style) | INT + α | light approximation |
//! | **OwL-P** | INT + α | **same as FP** |
//!
//! This module implements all three comparators as functional GEMMs plus the
//! error metrics used by the `repro table1` experiment. The exact reference
//! is [`crate::exact::exact_gemm_f64`].

use owlp_format::Bf16;
use serde::{Deserialize, Serialize};

/// Plain symmetric per-tensor INT8 quantized GEMM: both operands quantized
/// with scale `max|x| / 127`, products accumulated in `i32`/`i64`, one
/// dequantization at the end.
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn int8_gemm(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let (qa, sa) = quantize_int8(a);
    let (qb, sb) = quantize_int8(b);
    let scale = sa * sb;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc: i64 = 0;
            for kk in 0..k {
                acc += qa[i * k + kk] as i64 * qb[kk * n + j] as i64;
            }
            out[i * n + j] = (acc as f64 * scale) as f32;
        }
    }
    out
}

/// INT8 + FP-outlier GEMM (LLM.int8-style): values whose magnitude exceeds
/// `threshold_sigmas` standard deviations stay in FP32 and are accumulated
/// on a separate FP path; the rest are INT8-quantized over the clipped
/// range. The two partial results are added in FP32.
///
/// # Panics
///
/// Panics on shape mismatch or a non-positive threshold.
pub fn int8_outlier_gemm(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    threshold_sigmas: f64,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert!(threshold_sigmas > 0.0, "threshold must be positive");
    let (qa, sa, fa) = split_quantize(a, threshold_sigmas);
    let (qb, sb, fb) = split_quantize(b, threshold_sigmas);
    let scale = sa * sb;
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut int_acc: i64 = 0;
            let mut fp_acc: f32 = 0.0;
            for kk in 0..k {
                let (ia, ib) = (i * k + kk, kk * n + j);
                match (fa[ia], fb[ib]) {
                    (None, None) => int_acc += qa[ia] as i64 * qb[ib] as i64,
                    // Any outlier operand routes the product to the FP unit;
                    // the non-outlier side is dequantized for the multiply.
                    (Some(x), None) => fp_acc += x * (qb[ib] as f64 * sb) as f32,
                    (None, Some(y)) => fp_acc += (qa[ia] as f64 * sa) as f32 * y,
                    (Some(x), Some(y)) => fp_acc += x * y,
                }
            }
            out[i * n + j] = (int_acc as f64 * scale) as f32 + fp_acc;
        }
    }
    out
}

/// Weight-only INT8 quantized GEMM (AWQ/GPTQ-style deployment, computed
/// FIGNA-style as FP-INT): weights are quantized per tensor to INT8, then
/// dequantized and multiplied against full-precision BF16 activations with
/// FP32 sequential accumulation. Activations keep full precision (which is
/// why the scheme is popular), but the weight grid still approximates and
/// the FP fallback costs the hardware the paper wants to avoid (§II-A).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn weight_only_int8_gemm(a: &[Bf16], b: &[Bf16], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    let (qb, sb) = quantize_int8(b);
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                // Dequantize-then-FP-multiply, as weight-only inference
                // kernels do.
                let w = (qb[kk * n + j] as f64 * sb) as f32;
                acc += a[i * k + kk].to_f32() * w;
            }
            out[i * n + j] = acc;
        }
    }
    out
}

/// Block-floating-point GEMM (MX/MSFP-style): along the reduction dimension,
/// each `block` of values shares the maximum exponent; mantissas are rounded
/// to `mant_bits` total bits (sign + magnitude, hidden bit materialised).
/// Values more than `mant_bits − 1` exponent steps below the block max are
/// flushed toward zero — the approximation outliers inflict on block FP
/// (paper §II-A).
///
/// # Panics
///
/// Panics on shape mismatch, `block == 0`, or `mant_bits` outside `2..=15`.
pub fn blockfp_gemm(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    block: usize,
    mant_bits: u32,
) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "A shape mismatch");
    assert_eq!(b.len(), k * n, "B shape mismatch");
    assert!(block > 0, "block size must be positive");
    assert!((2..=15).contains(&mant_bits), "mantissa width out of range");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            let mut kk = 0;
            while kk < k {
                let hi = (kk + block).min(k);
                // Shared exponent = max exponent in the block across the row
                // of A and column of B separately (per-operand blocks).
                let ea = block_max_exp(&a[i * k + kk..i * k + hi]);
                let eb = block_max_exp_strided(b, kk, hi, n, j);
                for idx in kk..hi {
                    let qa = quantize_blockfp(a[i * k + idx], ea, mant_bits);
                    let qb = quantize_blockfp(b[idx * n + j], eb, mant_bits);
                    acc += qa * qb;
                }
                kk = hi;
            }
            out[i * n + j] = acc as f32;
        }
    }
    out
}

fn block_max_exp(xs: &[Bf16]) -> i32 {
    xs.iter()
        .map(|x| x.exponent_bits() as i32)
        .max()
        .unwrap_or(0)
        .max(1)
}

fn block_max_exp_strided(b: &[Bf16], lo: usize, hi: usize, n: usize, j: usize) -> i32 {
    (lo..hi)
        .map(|kk| b[kk * n + j].exponent_bits() as i32)
        .max()
        .unwrap_or(0)
        .max(1)
}

/// Quantizes one value onto the block grid `2^(emax − 127 − (mant_bits − 2))`.
fn quantize_blockfp(x: Bf16, emax: i32, mant_bits: u32) -> f64 {
    let grid = (emax - 127 - (mant_bits as i32 - 2)) as f64;
    let step = grid.exp2();
    let q = (x.to_f64() / step).round();
    let limit = ((1i64 << (mant_bits - 1)) - 1) as f64;
    q.clamp(-limit, limit) * step
}

fn quantize_int8(xs: &[Bf16]) -> (Vec<i8>, f64) {
    let max_abs = xs.iter().map(|x| x.to_f64().abs()).fold(0.0f64, f64::max);
    if max_abs == 0.0 {
        return (vec![0; xs.len()], 1.0);
    }
    let scale = max_abs / 127.0;
    let q = xs
        .iter()
        .map(|x| (x.to_f64() / scale).round().clamp(-127.0, 127.0) as i8)
        .collect();
    (q, scale)
}

/// Splits into (quantized normals, scale, per-element FP outliers).
fn split_quantize(xs: &[Bf16], sigmas: f64) -> (Vec<i8>, f64, Vec<Option<f32>>) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().map(|x| x.to_f64()).sum::<f64>() / n;
    let var = xs.iter().map(|x| (x.to_f64() - mean).powi(2)).sum::<f64>() / n;
    let threshold = sigmas * var.sqrt();
    let outlier: Vec<Option<f32>> = xs
        .iter()
        .map(|x| {
            let v = x.to_f64();
            if threshold > 0.0 && (v - mean).abs() > threshold {
                Some(x.to_f32())
            } else {
                None
            }
        })
        .collect();
    let max_abs = xs
        .iter()
        .zip(&outlier)
        .filter(|(_, o)| o.is_none())
        .map(|(x, _)| x.to_f64().abs())
        .fold(0.0f64, f64::max);
    let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
    let q = xs
        .iter()
        .zip(&outlier)
        .map(|(x, o)| {
            if o.is_some() {
                0
            } else {
                (x.to_f64() / scale).round().clamp(-127.0, 127.0) as i8
            }
        })
        .collect();
    (q, scale, outlier)
}

/// Aggregate error metrics against an exact reference.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ErrorStats {
    /// Largest relative error.
    pub max_rel: f64,
    /// Mean relative error.
    pub mean_rel: f64,
    /// Root-mean-square relative error.
    pub rms_rel: f64,
    /// Elements that match the correctly-rounded f32 reference bit-for-bit.
    pub bit_exact: usize,
    /// Total elements compared.
    pub total: usize,
}

impl ErrorStats {
    /// Compares an approximate f32 result against the exact f64 reference.
    ///
    /// Relative error uses `max(|exact|, floor)` as denominator so that
    /// near-zero references do not blow up the metric; `floor` is the RMS
    /// magnitude of the reference.
    pub fn compare(approx: &[f32], exact: &[f64]) -> ErrorStats {
        assert_eq!(approx.len(), exact.len(), "length mismatch");
        if approx.is_empty() {
            return ErrorStats::default();
        }
        let floor = (exact.iter().map(|e| e * e).sum::<f64>() / exact.len() as f64)
            .sqrt()
            .max(f64::MIN_POSITIVE);
        let mut max_rel = 0.0f64;
        let mut sum = 0.0f64;
        let mut sq = 0.0f64;
        let mut bit_exact = 0usize;
        for (&a, &e) in approx.iter().zip(exact) {
            let rel = (a as f64 - e).abs() / e.abs().max(floor);
            max_rel = max_rel.max(rel);
            sum += rel;
            sq += rel * rel;
            if a.to_bits() == (e as f32).to_bits() {
                bit_exact += 1;
            }
        }
        let n = approx.len() as f64;
        ErrorStats {
            max_rel,
            mean_rel: sum / n,
            rms_rel: (sq / n).sqrt(),
            bit_exact,
            total: approx.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{exact_gemm, exact_gemm_f64};
    use crate::gemm::owlp_gemm;

    /// Narrow-band magnitudes (the LLM-like core distribution) with
    /// occasional ×64 outliers — the regime Table I's comparison assumes.
    fn synth(len: usize, seed: u64, outlier_every: usize) -> Vec<Bf16> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 40) as f32 / (1u64 << 24) as f32;
                let sign = if state & (1 << 13) == 0 { 1.0 } else { -1.0 };
                let base = sign * (0.75 + u * 0.5);
                let v = if outlier_every > 0 && i % outlier_every == outlier_every - 1 {
                    base * 64.0
                } else {
                    base
                };
                Bf16::from_f32(v)
            })
            .collect()
    }

    #[test]
    fn int8_is_a_heavy_approximation() {
        let a = synth(8 * 32, 1, 13);
        let b = synth(32 * 8, 2, 17);
        let exact = exact_gemm_f64(&a, &b, 8, 32, 8);
        let q = int8_gemm(&a, &b, 8, 32, 8);
        let stats = ErrorStats::compare(&q, &exact);
        assert!(
            stats.mean_rel > 1e-3,
            "int8 error unexpectedly small: {stats:?}"
        );
    }

    #[test]
    fn outlier_aware_int8_beats_plain_int8_with_outliers() {
        let a = synth(8 * 64, 3, 9);
        let b = synth(64 * 8, 4, 11);
        let exact = exact_gemm_f64(&a, &b, 8, 64, 8);
        let plain = ErrorStats::compare(&int8_gemm(&a, &b, 8, 64, 8), &exact);
        let aware = ErrorStats::compare(&int8_outlier_gemm(&a, &b, 8, 64, 8, 3.0), &exact);
        assert!(
            aware.mean_rel < plain.mean_rel,
            "outlier-aware {aware:?} should beat plain {plain:?}"
        );
    }

    #[test]
    fn blockfp_is_a_light_approximation() {
        // In the outlier-bearing regime the paper targets, per-tensor INT8
        // scales stretch to the outliers and crush the normal values, while
        // block FP localises the damage to outlier-containing blocks.
        let a = synth(8 * 64, 5, 16);
        let b = synth(64 * 8, 6, 16);
        let exact = exact_gemm_f64(&a, &b, 8, 64, 8);
        let bfp = ErrorStats::compare(&blockfp_gemm(&a, &b, 8, 64, 8, 32, 8), &exact);
        let int8 = ErrorStats::compare(&int8_gemm(&a, &b, 8, 64, 8), &exact);
        assert!(bfp.mean_rel > 0.0, "block fp still approximates");
        assert!(bfp.mean_rel < int8.mean_rel, "bfp {bfp:?} vs int8 {int8:?}");
    }

    #[test]
    fn blockfp_crushes_normals_that_share_a_block_with_an_outlier() {
        // §II-A: an outlier stretches the block's shared exponent, wiping
        // out the mantissa bits of the normal values next to it.
        let x = Bf16::from_f32(0.8046875); // a typical normal value
        let clean_emax = 127; // block max ~1.0
        let dirty_emax = 127 + 8; // block contains a ×256 outlier
        let q_clean = quantize_blockfp(x, clean_emax, 8);
        let q_dirty = quantize_blockfp(x, dirty_emax, 8);
        let rel_clean = (q_clean - x.to_f64()).abs() / x.to_f64();
        let rel_dirty = (q_dirty - x.to_f64()).abs() / x.to_f64();
        assert!(
            rel_clean < 0.02,
            "clean block keeps normals accurate: {rel_clean}"
        );
        assert!(rel_dirty > 0.1, "dirty block crushes normals: {rel_dirty}");
        // The outlier itself is represented fine either way.
        let big = Bf16::from_f32(0.8046875 * 256.0);
        let q_big = quantize_blockfp(big, dirty_emax, 8);
        assert!((q_big - big.to_f64()).abs() / big.to_f64() < 0.02);
    }

    #[test]
    fn weight_only_sits_between_full_int8_and_fp() {
        // Full-precision activations fix half the problem: error lands
        // between plain INT8 and the (near-exact) FP baseline.
        let a = synth(8 * 64, 11, 16);
        let b = synth(64 * 8, 12, 16);
        let exact = exact_gemm_f64(&a, &b, 8, 64, 8);
        let wo = ErrorStats::compare(&weight_only_int8_gemm(&a, &b, 8, 64, 8), &exact);
        let full = ErrorStats::compare(&int8_gemm(&a, &b, 8, 64, 8), &exact);
        assert!(wo.mean_rel < full.mean_rel, "{wo:?} vs {full:?}");
        assert!(wo.mean_rel > 1e-6, "weight grid still approximates: {wo:?}");
    }

    #[test]
    fn owlp_is_bit_exact_where_all_schemes_approximate() {
        let a = synth(4 * 48, 9, 12);
        let b = synth(48 * 4, 10, 15);
        let exact64 = exact_gemm_f64(&a, &b, 4, 48, 4);
        let exact32 = exact_gemm(&a, &b, 4, 48, 4);
        let owlp = owlp_gemm(&a, &b, 4, 48, 4).unwrap();
        let stats = ErrorStats::compare(&owlp.output, &exact64);
        assert_eq!(
            stats.bit_exact, stats.total,
            "owlp must be correctly rounded everywhere"
        );
        for (x, y) in owlp.output.iter().zip(&exact32) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn zero_tensor_edge_cases() {
        let a = vec![Bf16::ZERO; 4];
        let b = vec![Bf16::ZERO; 4];
        assert_eq!(int8_gemm(&a, &b, 2, 2, 2), vec![0.0; 4]);
        assert_eq!(int8_outlier_gemm(&a, &b, 2, 2, 2, 3.0), vec![0.0; 4]);
        assert_eq!(blockfp_gemm(&a, &b, 2, 2, 2, 2, 8), vec![0.0; 4]);
    }

    #[test]
    fn error_stats_on_identical_inputs() {
        let exact = vec![1.0f64, -2.0, 3.5];
        let approx: Vec<f32> = exact.iter().map(|&x| x as f32).collect();
        let s = ErrorStats::compare(&approx, &exact);
        assert_eq!(s.bit_exact, 3);
        assert_eq!(s.max_rel, 0.0);
    }
}
