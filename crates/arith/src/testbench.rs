//! Coverage-driven randomized verification of the GEMM datapath.
//!
//! A self-checking testbench in the silicon-verification style: random
//! GEMM trials drive the full OwL-P pipeline against the exact reference,
//! while functional **coverage bins** record which interesting situations
//! the stimulus has actually exercised — outlier densities, wavefront
//! pressures, cancellation magnitudes, subnormal/zero operands, shape
//! classes. A run is only convincing when the checker passed *and* the
//! coverage goals closed.

use crate::exact::exact_gemm;
use crate::gemm::owlp_gemm;
use owlp_format::Bf16;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Functional coverage bins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CoverBin {
    /// Trial had no outliers at all.
    NoOutliers,
    /// 0 < outlier rate ≤ 2 %.
    SparseOutliers,
    /// Outlier rate > 2 %.
    DenseOutliers,
    /// Some column wavefront carried > 2 outlier products.
    HighWavefront,
    /// At least one exact zero operand.
    ZeroOperand,
    /// At least one subnormal operand.
    SubnormalOperand,
    /// Operands spanning ≥ 60 binary orders of magnitude.
    WideDynamicRange,
    /// An output whose exact value is ≥ 2²⁰× smaller than the largest
    /// product magnitude (heavy cancellation).
    Cancellation,
    /// K not a multiple of the 8-lane width (ragged final PE).
    RaggedK,
    /// Single-row (decode-style) GEMM.
    SingleRow,
}

/// Result of a testbench run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestbenchReport {
    /// Trials executed.
    pub trials: u64,
    /// Output elements compared.
    pub checked: u64,
    /// Mismatches against the exact reference (must be 0).
    pub mismatches: u64,
    /// Hits per coverage bin.
    pub coverage: BTreeMap<CoverBin, u64>,
}

impl TestbenchReport {
    /// Whether every bin was hit at least once.
    pub fn coverage_closed(&self) -> bool {
        use CoverBin::*;
        [
            NoOutliers,
            SparseOutliers,
            DenseOutliers,
            HighWavefront,
            ZeroOperand,
            SubnormalOperand,
            WideDynamicRange,
            Cancellation,
            RaggedK,
            SingleRow,
        ]
        .iter()
        .all(|b| self.coverage.get(b).copied().unwrap_or(0) > 0)
    }

    /// Whether the checker passed.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }
}

/// Deterministic xorshift-based stimulus generator.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Draws one stimulus value according to a trial "personality".
fn draw_value(rng: &mut Rng, outlier_rate: f64, zeros: bool, subnormals: bool) -> Bf16 {
    let frac = (rng.below(128)) as u16;
    let sign = (rng.below(2) as u16) << 15;
    if zeros && rng.unit() < 0.02 {
        return Bf16::from_bits(sign);
    }
    if subnormals && rng.unit() < 0.02 {
        return Bf16::from_bits(sign | frac.max(1));
    }
    if rng.unit() < outlier_rate {
        // Anywhere in the finite range.
        let e = 1 + rng.below(254) as u16;
        return Bf16::from_bits(sign | (e << 7) | frac);
    }
    // Normal band around exponent 124..=130.
    let e = 124 + rng.below(7) as u16;
    Bf16::from_bits(sign | (e << 7) | frac)
}

/// Runs `trials` randomized GEMM trials from `seed`.
///
/// Every trial checks the full OwL-P pipeline bit-for-bit against the
/// exact reference and records coverage. Use
/// [`TestbenchReport::coverage_closed`] to confirm the stimulus reached all
/// the interesting corners.
pub fn run(trials: u64, seed: u64) -> TestbenchReport {
    let mut rng = Rng(seed | 1);
    let mut report = TestbenchReport {
        trials,
        checked: 0,
        mismatches: 0,
        coverage: BTreeMap::new(),
    };
    let hit = |report: &mut TestbenchReport, bin: CoverBin| {
        *report.coverage.entry(bin).or_insert(0) += 1;
    };
    for trial in 0..trials {
        // Personality: shape class, outlier density, special values.
        let m = if trial % 5 == 0 {
            1
        } else {
            1 + rng.below(6) as usize
        };
        let k = 1 + rng.below(48) as usize;
        let n = 1 + rng.below(6) as usize;
        let outlier_rate = match trial % 4 {
            0 => 0.0,
            1 => 0.01,
            2 => 0.05,
            _ => 0.15,
        };
        let zeros = trial % 3 == 0;
        let subnormals = trial % 7 == 0;
        let mut a: Vec<Bf16> = (0..m * k)
            .map(|_| draw_value(&mut rng, outlier_rate, zeros, subnormals))
            .collect();
        let mut b: Vec<Bf16> = (0..k * n)
            .map(|_| draw_value(&mut rng, outlier_rate, zeros, subnormals))
            .collect();
        // Directed stimulus: every 11th trial plants an exactly cancelling
        // huge pair (same |value|, opposite signs, identical weight rows)
        // so the cancellation corner is guaranteed to be exercised.
        if trial % 11 == 10 && k >= 2 {
            let p = rng.below((k - 1) as u64) as usize;
            let big = Bf16::from_f32(3.0e18);
            for i in 0..m {
                a[i * k + p] = big;
                a[i * k + p + 1] = big.neg();
            }
            for j in 0..n {
                b[(p + 1) * n + j] = b[p * n + j];
            }
        }

        // Drive + check.
        let out = owlp_gemm(&a, &b, m, k, n).expect("finite stimulus");
        let golden = exact_gemm(&a, &b, m, k, n);
        report.checked += golden.len() as u64;
        report.mismatches += out
            .output
            .iter()
            .zip(&golden)
            .filter(|(x, y)| x.to_bits() != y.to_bits())
            .count() as u64;

        // Coverage sampling.
        let total_outliers = out.act_outliers + out.weight_outliers;
        if total_outliers == 0 {
            hit(&mut report, CoverBin::NoOutliers);
        } else if (total_outliers as f64) / ((m * k + k * n) as f64) <= 0.02 {
            hit(&mut report, CoverBin::SparseOutliers);
        } else {
            hit(&mut report, CoverBin::DenseOutliers);
        }
        if out.max_wavefront_outliers > 2 {
            hit(&mut report, CoverBin::HighWavefront);
        }
        if a.iter().chain(&b).any(|v| v.is_zero()) {
            hit(&mut report, CoverBin::ZeroOperand);
        }
        if a.iter().chain(&b).any(|v| v.is_subnormal()) {
            hit(&mut report, CoverBin::SubnormalOperand);
        }
        let exps: Vec<i32> = a
            .iter()
            .chain(&b)
            .filter(|v| !v.is_zero())
            .map(|v| v.exponent_bits() as i32)
            .collect();
        if let (Some(&lo), Some(&hi)) = (exps.iter().min(), exps.iter().max()) {
            if hi - lo >= 60 {
                hit(&mut report, CoverBin::WideDynamicRange);
            }
        }
        // Cancellation: compare each output against the largest |product|.
        for i in 0..m {
            for j in 0..n {
                let max_prod = (0..k)
                    .map(|kk| (a[i * k + kk].to_f64() * b[kk * n + j].to_f64()).abs())
                    .fold(0.0f64, f64::max);
                let idx = i * n + j;
                if max_prod > 0.0
                    && golden[idx].abs() as f64 > 0.0
                    && (golden[idx].abs() as f64) < max_prod / (1u64 << 20) as f64
                {
                    hit(&mut report, CoverBin::Cancellation);
                }
            }
        }
        if !k.is_multiple_of(8) {
            hit(&mut report, CoverBin::RaggedK);
        }
        if m == 1 {
            hit(&mut report, CoverBin::SingleRow);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_hundred_trials_pass_with_closed_coverage() {
        let report = run(500, 0xC0FFEE);
        assert!(report.passed(), "{} mismatches", report.mismatches);
        assert!(
            report.coverage_closed(),
            "coverage holes: {:?}",
            report.coverage
        );
        assert!(report.checked > 1_000);
    }

    #[test]
    fn runs_are_deterministic() {
        assert_eq!(run(50, 42), run(50, 42));
    }

    #[test]
    fn different_seeds_reach_different_stimulus() {
        let a = run(50, 1);
        let b = run(50, 2);
        assert!(a.passed() && b.passed());
        assert_ne!(a.coverage, b.coverage);
    }
}
