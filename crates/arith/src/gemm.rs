//! End-to-end functional GEMMs.
//!
//! [`owlp_gemm`] runs the full OwL-P pipeline — shared-exponent encoding,
//! bias decoding, INT PE columns with outlier bypass, align + INT2FP — and
//! is verified bit-exact against [`crate::exact::exact_gemm`]. It also
//! reports the outlier statistics the performance model consumes.

use crate::align::AlignUnit;
use crate::column::PeColumn;
use crate::error::ArithError;
use crate::kulisch::KulischAcc;
use crate::microkernel::{self, MR, MR8, NR};
use crate::pe::PeConfig;
use crate::window::{WindowAcc, OWLP_PRODUCT_BITS};
use owlp_format::decode::DecodedOperand;
use owlp_format::{
    encode_tensor, encode_tensor_into, Bf16, EncodedTensor, MappedTensor, PackedOperands,
    PackedPanels,
};
use serde::{Deserialize, Serialize};

/// Result of an OwL-P GEMM with datapath statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwlpGemmOutput {
    /// Row-major `m×n` FP32 results.
    pub output: Vec<f32>,
    /// Shared exponent chosen for the activation tensor.
    pub shared_a: u8,
    /// Shared exponent chosen for the weight tensor.
    pub shared_w: u8,
    /// Outlier entries in the encoded activation tensor.
    pub act_outliers: usize,
    /// Outlier entries in the encoded weight tensor.
    pub weight_outliers: usize,
    /// Largest number of outlier products observed in one column wavefront
    /// (one output element's pass) — what the scheduler must keep under the
    /// path budget.
    pub max_wavefront_outliers: usize,
    /// Total products routed down outlier paths.
    pub total_outlier_products: usize,
}

/// ABFT checksum vectors of one OwL-P GEMM: the *observed* row and column
/// sums of the raw shared-frame accumulator words ([`WindowAcc::raw`]),
/// collected inline by the drive loop before outlier correction.
///
/// Because every normal product is an integer on the shared frame, these
/// sums obey the same closed arithmetic as the data: an independent
/// reference `rows[i] = Σ_k a_sval[i,k]·(Σ_j b_sval[k,j])` must match
/// *exactly* — zero false positives, no FP tolerance band — and a single
/// accumulator-lane upset perturbs exactly one row and one column sum,
/// localizing the damaged output element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbftSums {
    /// `rows[i]` — Σ over j of the raw pre-correction accumulator of
    /// output element `(i, j)`.
    pub rows: Vec<i128>,
    /// `cols[j]` — Σ over i of the same raw words.
    pub cols: Vec<i128>,
}

/// A sanctioned single-bit upset on one output element's accumulator lane,
/// applied inside the drive loop *before* the ABFT sums are collected — so
/// the corrupted output and the checksums disagree with the reference in
/// exactly the way a real in-flight particle strike would produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneStrike {
    /// Output row of the struck element.
    pub i: usize,
    /// Output column of the struck element.
    pub j: usize,
    /// Accumulator bit to flip (`< 127`).
    pub bit: u32,
}

/// A tensor encoded and packed once, for reuse across GEMM calls.
///
/// Weight tensors in a serving loop are multiplied every iteration but
/// never change; preparing them once hoists the encode + decode-pack work
/// out of the per-request path (the memoisation the event-driven model and
/// the functional transformer use). The planes inside may be owned heap
/// buffers (the encode path) or borrowed views into a mapped archive v2
/// file ([`PreparedTensor::from_mapped`]) — the GEMM reads them through
/// the same slices either way.
#[derive(Debug, Clone, PartialEq)]
pub struct PreparedTensor {
    packed: PackedOperands,
    /// Weight panels for the register-tiled microkernel, memoised when the
    /// tensor was prepared with a known `k×n` shape
    /// ([`PreparedTensor::with_shape`]).
    panels: Option<PackedPanels>,
}

impl PreparedTensor {
    /// Encodes and packs `t` once (shape-agnostic: no panel cache — the
    /// GEMM packs panels per call).
    ///
    /// # Errors
    ///
    /// Returns [`ArithError::Format`] for non-finite inputs.
    pub fn new(t: &[Bf16]) -> Result<Self, ArithError> {
        let enc = encode_tensor(t, None)?;
        let packed = enc.decode_packed();
        Ok(PreparedTensor {
            packed,
            panels: None,
        })
    }

    /// Encodes, packs, **and panel-tiles** `t` as a `k×n` weight matrix:
    /// the microkernel panels are built once here and reused by every
    /// [`owlp_gemm_prepared`] call, replacing the per-call (formerly
    /// per-output-element) strided column gather.
    ///
    /// # Errors
    ///
    /// As [`PreparedTensor::new`], plus [`ArithError::DimensionMismatch`]
    /// when `t.len() != k·n`.
    pub fn with_shape(t: &[Bf16], k: usize, n: usize) -> Result<Self, ArithError> {
        check_shape(t, k * n, "B")?;
        let mut prep = PreparedTensor::new(t)?;
        prep.panels = Some(prep.packed.pack_panels(k, n));
        Ok(prep)
    }

    /// Adopts the planes of an archive-v2 tensor *without decoding or
    /// re-packing anything*: the operand planes and (when the archive
    /// stored them) the microkernel weight panels are borrowed views into
    /// the mapped file, so preparation is O(1) and the weight bytes stay
    /// shared with the page cache. Bit-identical to
    /// [`PreparedTensor::with_shape`] on the tensor's original values.
    pub fn from_mapped(t: MappedTensor) -> Self {
        let (packed, panels) = t.into_parts();
        PreparedTensor { packed, panels }
    }

    /// The packed decoded operands.
    pub fn packed(&self) -> &PackedOperands {
        &self.packed
    }

    /// The memoised microkernel panels, when prepared with a shape.
    pub fn panels(&self) -> Option<&PackedPanels> {
        self.panels.as_ref()
    }
}

/// Reusable activation-side buffers for [`owlp_gemm_prepared_with`] and
/// [`owlp_gemm_prepared_f32_with`]: the per-step activation path of a
/// serving loop rounds (f32 inputs only), re-encodes
/// ([`owlp_format::encode_tensor_into`]) and re-decodes
/// ([`owlp_format::EncodedTensor::decode_packed_into`]) into the same
/// buffers every call, so in steady state the whole activation side —
/// BF16 rounding buffer, code/exponent streams, and packed planes —
/// allocates nothing.
#[derive(Debug, Default)]
pub struct GemmScratch {
    packed_a: PackedOperands,
    enc_a: EncodedTensor,
    bf_a: Vec<Bf16>,
}

/// [`owlp_gemm`] with a pre-prepared weight tensor: only the activation
/// side pays encode + pack, the weight side reuses its cached planes (and
/// its memoised panels, when built via [`PreparedTensor::with_shape`]).
///
/// # Errors
///
/// As [`owlp_gemm`].
pub fn owlp_gemm_prepared(
    a: &[Bf16],
    b: &PreparedTensor,
    m: usize,
    k: usize,
    n: usize,
) -> Result<OwlpGemmOutput, ArithError> {
    let mut scratch = GemmScratch::default();
    owlp_gemm_prepared_with(a, b, m, k, n, &mut scratch)
}

/// [`owlp_gemm_prepared`] with caller-owned activation scratch: a serving
/// loop (e.g. the `owlp-core` transformer's per-layer sweep) keeps one
/// [`GemmScratch`] alive so the per-step activation decode allocates
/// nothing in steady state.
///
/// # Errors
///
/// As [`owlp_gemm`].
pub fn owlp_gemm_prepared_with(
    a: &[Bf16],
    b: &PreparedTensor,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) -> Result<OwlpGemmOutput, ArithError> {
    check_shape(a, m * k, "A")?;
    encode_tensor_into(a, None, &mut scratch.enc_a)?;
    scratch.enc_a.decode_packed_into(&mut scratch.packed_a);
    owlp_gemm_packed(
        &scratch.packed_a,
        &b.packed,
        b.panels.as_ref(),
        m,
        k,
        n,
        PeConfig::PAPER,
        AlignUnit::Exact,
    )
}

/// [`owlp_gemm_prepared_with`] taking raw `f32` activations: the f32 →
/// BF16 rounding an accelerator's vector unit performs on the way into
/// the GEMM happens here, into the scratch's reusable rounding buffer —
/// so a fused forward pass (e.g. the `owlp-core` transformer) hands its
/// f32 activations straight in and never materialises a per-call BF16
/// tensor. Bit-identical to rounding with [`Bf16::from_f32`] and calling
/// [`owlp_gemm_prepared_with`].
///
/// # Errors
///
/// As [`owlp_gemm`].
pub fn owlp_gemm_prepared_f32_with(
    a: &[f32],
    b: &PreparedTensor,
    m: usize,
    k: usize,
    n: usize,
    scratch: &mut GemmScratch,
) -> Result<OwlpGemmOutput, ArithError> {
    check_len(a.len(), m * k, "A")?;
    scratch.bf_a.clear();
    scratch.bf_a.extend(a.iter().map(|&x| Bf16::from_f32(x)));
    // Split-borrow the scratch so the rounded buffer can feed the encode
    // while the packed planes receive the decode.
    let GemmScratch {
        packed_a,
        enc_a,
        bf_a,
    } = scratch;
    encode_tensor_into(bf_a, None, enc_a)?;
    enc_a.decode_packed_into(packed_a);
    owlp_gemm_packed(
        packed_a,
        &b.packed,
        b.panels.as_ref(),
        m,
        k,
        n,
        PeConfig::PAPER,
        AlignUnit::Exact,
    )
}

/// Runs the OwL-P pipeline on `a` (`m×k`, row-major) × `b` (`k×n`,
/// row-major) with the paper's PE configuration and the exact align unit.
///
/// # Errors
///
/// Returns [`ArithError::Format`] for non-finite inputs and
/// [`ArithError::DimensionMismatch`] for shape errors.
///
/// ```
/// use owlp_format::Bf16;
/// use owlp_arith::{exact_gemm, owlp_gemm};
/// # fn main() -> Result<(), owlp_arith::ArithError> {
/// let a: Vec<Bf16> = (0..6).map(|i| Bf16::from_f32(i as f32 - 2.5)).collect();
/// let b: Vec<Bf16> = (0..6).map(|i| Bf16::from_f32(0.5 * i as f32)).collect();
/// let r = owlp_gemm(&a, &b, 2, 3, 2)?;
/// let golden = exact_gemm(&a, &b, 2, 3, 2);
/// assert_eq!(r.output, golden);
/// # Ok(())
/// # }
/// ```
pub fn owlp_gemm(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
) -> Result<OwlpGemmOutput, ArithError> {
    owlp_gemm_with(a, b, m, k, n, PeConfig::PAPER, AlignUnit::Exact)
}

/// [`owlp_gemm`] with explicit PE configuration and align-unit policy.
///
/// # Errors
///
/// As [`owlp_gemm`].
pub fn owlp_gemm_with(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    config: PeConfig,
    align: AlignUnit,
) -> Result<OwlpGemmOutput, ArithError> {
    check_shape(a, m * k, "A")?;
    check_shape(b, k * n, "B")?;
    let enc_a = encode_tensor(a, None)?;
    let enc_b = encode_tensor(b, None)?;
    let packed_a = enc_a.decode_packed();
    let packed_b = enc_b.decode_packed();
    owlp_gemm_decoded(&packed_a, &packed_b, m, k, n, config, align)
}

/// The datapath half of [`owlp_gemm`], reusable when the tensors are
/// already encoded/decoded (as the accelerator model does per layer).
/// Packs microkernel panels for `b` on the fly; see [`owlp_gemm_packed`]
/// to supply memoised ones.
///
/// # Errors
///
/// As [`owlp_gemm`].
pub fn owlp_gemm_decoded(
    packed_a: &PackedOperands,
    packed_b: &PackedOperands,
    m: usize,
    k: usize,
    n: usize,
    config: PeConfig,
    align: AlignUnit,
) -> Result<OwlpGemmOutput, ArithError> {
    owlp_gemm_packed(packed_a, packed_b, None, m, k, n, config, align)
}

/// Merges a row's and a column's sorted outlier tables, yielding each
/// tagged depth once with its pair of exponent terms — the shared exponent
/// standing in for whichever side is untagged. This is the single walk the
/// per-element outlier correction makes over the tag union.
#[inline]
fn for_each_tag(
    rtags: &[(u32, i32)],
    ctags: &[(u32, i32)],
    shared_a: i32,
    shared_w: i32,
    mut f: impl FnMut(usize, i32, i32),
) {
    let (mut x, mut y) = (0usize, 0usize);
    while x < rtags.len() || y < ctags.len() {
        let (kk, ea, ew) = if y == ctags.len() || (x < rtags.len() && rtags[x].0 < ctags[y].0) {
            let (kk, ea) = rtags[x];
            x += 1;
            (kk as usize, ea, shared_w)
        } else if x == rtags.len() || ctags[y].0 < rtags[x].0 {
            let (kk, ew) = ctags[y];
            y += 1;
            (kk as usize, shared_a, ew)
        } else {
            let (kk, ea) = rtags[x];
            let ew = ctags[y].1;
            x += 1;
            y += 1;
            (kk as usize, ea, ew)
        };
        f(kk, ea, ew);
    }
}

/// Min/max exponent term over one tag list (`None` when untagged) — the
/// per-row/per-column bound the correction uses to size its wide window
/// without a per-element scan over the tags.
fn tag_exp_bounds(tags: &[(u32, i32)]) -> Option<(i32, i32)> {
    tags.iter().fold(None, |acc, &(_, e)| match acc {
        None => Some((e, e)),
        Some((lo, hi)) => Some((lo.min(e), hi.max(e))),
    })
}

/// The full datapath drive loop, with optionally memoised weight panels.
///
/// Under [`AlignUnit::Exact`] the m×n sweep runs in MR×NR register tiles:
/// the [`crate::microkernel`] computes each tile as an `i16×i16→i32`
/// outer-product dot over the activation sval rows and one
/// [`PackedPanels`] panel, partial-summing `i64` lanes that spill into a
/// per-element [`WindowAcc`] on the shared-exponent frame (no overflow by
/// the K_SPILL bound — see the microkernel docs). Outliers stay
/// *segmented out of the hot loop*: the few tagged positions — found by
/// merging the row's and column's sorted outlier tables, i.e. exactly the
/// segments [`PackedOperands::range_has_tagged`] would flag — are then
/// corrected per element: their as-if-normal term is subtracted and the
/// true outlier product (same integer magnitude, frame rebuilt from the
/// outliers' own exponents exactly as the PE's outlier bypass does) is
/// added back through a second, dynamically sized window, or through a
/// [`KulischAcc`] when the frame span outgrows an `i128`. Every path
/// computes the exact sum and rounds once with the same RNE conversion,
/// so the result is bit-identical to driving the PE column; the outlier
/// statistics count exactly the nonzero tagged products the PE's bypass
/// path would carry. Runs under an [`AlignUnit::Bounded`] policy are
/// order-sensitive and keep the full [`PeColumn`] datapath.
///
/// `panels` (when `Some` and shape-matched) must be
/// `packed_b.pack_panels(k, n)` — [`PreparedTensor::with_shape`] memoises
/// exactly that; mismatched or absent panels are rebuilt here.
///
/// # Errors
///
/// As [`owlp_gemm`].
#[allow(clippy::too_many_arguments)]
pub fn owlp_gemm_packed(
    packed_a: &PackedOperands,
    packed_b: &PackedOperands,
    panels: Option<&PackedPanels>,
    m: usize,
    k: usize,
    n: usize,
    config: PeConfig,
    align: AlignUnit,
) -> Result<OwlpGemmOutput, ArithError> {
    owlp_gemm_packed_impl::<false>(packed_a, packed_b, panels, m, k, n, config, align, None)
        .map(|(out, _)| out)
}

/// [`owlp_gemm_packed`] with ABFT checksum collection (and optionally a
/// sanctioned accumulator-lane strike), on the paper's PE configuration
/// and the exact align unit — the only datapath whose regrouped integer
/// sums the checksum algebra covers.
///
/// The returned [`AbftSums`] are the observed raw row/column sums; the
/// integrity layer verifies them against an independently computed
/// reference and, on mismatch, localizes and recomputes the damaged
/// element. Collection is O(m·n) extra integer adds on top of the
/// O(m·k·n) kernel, so the overhead vanishes with `k`.
///
/// # Errors
///
/// As [`owlp_gemm`].
#[allow(clippy::too_many_arguments)]
pub fn owlp_gemm_packed_abft(
    packed_a: &PackedOperands,
    packed_b: &PackedOperands,
    panels: Option<&PackedPanels>,
    m: usize,
    k: usize,
    n: usize,
    strike: Option<LaneStrike>,
) -> Result<(OwlpGemmOutput, AbftSums), ArithError> {
    owlp_gemm_packed_impl::<true>(
        packed_a,
        packed_b,
        panels,
        m,
        k,
        n,
        PeConfig::PAPER,
        AlignUnit::Exact,
        strike,
    )
    .map(|(out, sums)| (out, sums.expect("ABFT sums collected on the exact path")))
}

// `ABFT` is a const generic so the compiler monomorphizes a checksum-free
// copy of the hot loop for the plain GEMM: the per-element strike and
// row/column-sum bookkeeping below compiles out entirely instead of
// burdening the non-ABFT path with dead `Option` checks (the PR6 bench
// recorded exactly that leak as a serial regression).
#[allow(clippy::too_many_arguments)]
fn owlp_gemm_packed_impl<const ABFT: bool>(
    packed_a: &PackedOperands,
    packed_b: &PackedOperands,
    panels: Option<&PackedPanels>,
    m: usize,
    k: usize,
    n: usize,
    config: PeConfig,
    align: AlignUnit,
    strike: Option<LaneStrike>,
) -> Result<(OwlpGemmOutput, Option<AbftSums>), ArithError> {
    check_len(packed_a.len(), m * k, "decoded A")?;
    check_len(packed_b.len(), k * n, "decoded B")?;
    let rows = k.div_ceil(config.lanes).max(1);
    let column = PeColumn::new(config, rows).with_align(align);
    let shared_a = packed_a.shared_exp();
    let shared_w = packed_b.shared_exp();
    let fast_ok = matches!(align, AlignUnit::Exact);
    debug_assert!(fast_ok || !ABFT, "ABFT requires the exact align unit");
    // Tagged-position tables, hoisted out of the m×n loop: for each
    // activation row and weight column, the in-row/in-column offsets of its
    // tagged outliers plus their decoded exponent term (`max(exp, 1)`, the
    // PE's subnormal-outlier clamp). Both lists come out sorted because the
    // packed side tables are position-sorted.
    let mut row_tags: Vec<Vec<(u32, i32)>> = vec![Vec::new(); if fast_ok { m } else { 0 }];
    let mut col_tags: Vec<Vec<(u32, i32)>> = vec![Vec::new(); if fast_ok { n } else { 0 }];
    if fast_ok {
        for (&p, &e) in packed_a
            .outlier_positions()
            .iter()
            .zip(packed_a.outlier_exps())
        {
            row_tags[p as usize / k].push((p % k as u32, e.max(1) as i32));
        }
        for (&p, &e) in packed_b
            .outlier_positions()
            .iter()
            .zip(packed_b.outlier_exps())
        {
            col_tags[p as usize % n].push((p / n as u32, e.max(1) as i32));
        }
    }
    // Per-row/per-column exponent-term bounds, hoisted out of the m×n
    // sweep: the correction sizes its wide window from these instead of
    // re-scanning each element's tag union. The bound is conservative (it
    // also covers the doubly-tagged cross term whether or not one occurs),
    // which can only push the rare huge-span case onto the Kulisch
    // fallback — both paths compute the same exact sum.
    let row_ea: Vec<Option<(i32, i32)>> = row_tags.iter().map(|t| tag_exp_bounds(t)).collect();
    let col_ew: Vec<Option<(i32, i32)>> = col_tags.iter().map(|t| tag_exp_bounds(t)).collect();
    // Tagged-depth bitmasks (one `k`-bit mask per row/column, flat at
    // `mask_words` words each): the correction tests `row ∩ column` with a
    // couple of word ANDs and only falls back to the branchy merged walk
    // when a depth really is tagged on both sides — rare, and the only
    // case whose rebuilt frame can escape the singly-tagged bounds.
    let mask_words = k.div_ceil(64).max(1);
    let mut row_masks = vec![0u64; if fast_ok { m * mask_words } else { 0 }];
    let mut col_masks = vec![0u64; if fast_ok { n * mask_words } else { 0 }];
    if fast_ok {
        for (i, tags) in row_tags.iter().enumerate() {
            for &(kk, _) in tags {
                row_masks[i * mask_words + kk as usize / 64] |= 1u64 << (kk % 64);
            }
        }
        for (j, tags) in col_tags.iter().enumerate() {
            for &(kk, _) in tags {
                col_masks[j * mask_words + kk as usize / 64] |= 1u64 << (kk % 64);
            }
        }
    }
    let a_sval = packed_a.svals();
    let win0 = WindowAcc::for_owlp_normal(shared_a, shared_w, k);
    // Weight panels for the microkernel: reuse the caller's memoised set
    // when its shape matches, otherwise pack once per call (still hoisted
    // out of the m×n sweep entirely).
    let mut panels_store = None;
    let panels: Option<&PackedPanels> = if fast_ok {
        Some(match panels {
            Some(p) if p.k() == k && p.n() == n => p,
            _ => panels_store.insert(packed_b.pack_panels(k, n)),
        })
    } else {
        None
    };
    // All-zero activation row standing in for the `m % MR` edge rows: zero
    // svals contribute nothing, so the full-size kernel handles edges.
    let zero_row = vec![0i16; k];
    // Cache-blocking geometry (BLIS-style Mc/Kc/Nc), resolved once before
    // the fan-out so the thread-local `with_block` override and the
    // `OWLP_BLOCK` environment knob apply at every thread count, exactly
    // like the kernel tier below. Kc is additionally capped at the lane
    // spill period so one Kc stripe always fits a single i64 lane segment.
    let geom = owlp_format::block_geometry(2, MR, NR).for_shape(m, k, n, MR, NR);
    let (mc, nc) = (geom.mc, geom.nc);
    let kc = geom.kc.min(microkernel::K_SPILL);
    // Tile-parallel over output columns: each chunk runs the register-tiled
    // microkernel (or the PE column) over its panel range. The grain is
    // NR-aligned so no MR×NR tile straddles a chunk boundary, and a grain
    // wider than one Nc block rounds to whole blocks so chunk boundaries
    // never split a block at any thread count. Results assemble in column
    // order and the wavefront statistics reduce over the ordered tile list
    // (max and sum — order-free anyway), so the output is bit-identical to
    // the serial sweep at every thread count.
    let grain = {
        let g = crate::exact::row_grain(k, m).next_multiple_of(NR);
        if g > nc {
            g.next_multiple_of(nc)
        } else {
            g
        }
    };
    let col_ops = 2 * (k as u64).saturating_mul(m as u64).max(1);
    // Resolved before the fan-out so a `with_tier` override on this thread
    // (tests, per-tier benches) applies inside every pool worker.
    let tier = microkernel::selected_tier();
    // The widened 8×NR tile only pays on AVX2, where it amortizes one
    // panel load + interleave over eight rows; on every other tier it
    // would compute the same two MR-tile calls the 4-row loop already
    // makes, so those tiers keep the narrow shape.
    let use_x8 = tier == microkernel::KernelTier::Avx2;
    let tiles = owlp_par::map_chunks_weighted(n, grain, col_ops, |cols| {
        let j0 = cols.start;
        let mut values;
        let mut max_wavefront = 0usize;
        let mut total = 0usize;
        // Per-chunk ABFT partials: full-length row sums (this chunk's
        // column slice contributes to every row) and this chunk's column
        // sums. i128 addition is exact, so the merge is order-free and the
        // checksums are bit-identical at every thread count.
        let mut sums = ABFT.then(|| (vec![0i128; m], vec![0i128; cols.len()]));
        if fast_ok {
            let panels = panels.expect("panels are built whenever the fast path runs");
            values = vec![0.0f32; cols.len() * m];
            // Doubly-tagged products whose frame escapes the sized window
            // (rare) — reused across elements.
            let mut extras: Vec<(i64, i32)> = Vec::new();
            // Finalizes one MR×NR window tile into `values`: the sanctioned
            // strike, the ABFT checksum partials, and the per-element
            // outlier-correction walk. Shared by the single-stripe path
            // (windows straight out of `tile_dot`) and the multi-stripe
            // path (windows rebuilt from the persistent lane plane), so the
            // correction logic exists in exactly one copy.
            let mut finalize_tile =
                |wins: &[[WindowAcc; NR]; MR], ib: usize, jb: usize, panel: &[i16]| {
                    let mr = MR.min(m - ib);
                    let nr = NR.min(cols.end - jb);
                    // Tile-local checksum partials: the per-element i128
                    // read-modify-writes on the chunk-wide sum vectors are
                    // batched into registers here and flushed once per tile
                    // (i128 addition is exact and order-free, so the
                    // checksums are unchanged bit for bit).
                    let mut tile_rs = [0i128; MR];
                    let mut tile_cs = [0i128; NR];
                    for (r, wins_row) in wins.iter().enumerate().take(mr) {
                        let i = ib + r;
                        let rtags = &row_tags[i];
                        let rmask = &row_masks[i * mask_words..(i + 1) * mask_words];
                        let row_sval = &a_sval[i * k..(i + 1) * k];
                        for (c, &tile_win) in wins_row.iter().enumerate().take(nr) {
                            let j = jb + c;
                            let ctags = &col_tags[j];
                            let mut win = tile_win;
                            let out_idx = (j - cols.start) * m + i;
                            // The sanctioned upset lands on the raw lane
                            // *before* checksum collection: output and
                            // checksums corrupt consistently, exactly as an
                            // in-flight strike would. Compiled out of the
                            // non-ABFT monomorphization.
                            if ABFT {
                                if let Some(s) = strike {
                                    if s.i == i && s.j == j {
                                        win.toggle_bit(s.bit);
                                    }
                                }
                                tile_rs[r] += win.raw();
                                tile_cs[c] += win.raw();
                            }
                            if rtags.is_empty() && ctags.is_empty() {
                                values[out_idx] = win.round_to_f32();
                                continue;
                            }
                            // Correction walk over the merged union of
                            // tagged positions: pull each tagged product out
                            // of the shared frame and rebuild it on its true
                            // outlier frame — `max(exp, 1)` replacing the
                            // shared exponent on each tagged side, exactly
                            // the PE's bypass-path frame. Zero products stay
                            // on the normal path (the PE never routes them
                            // to an outlier slot). One pass: the wide window
                            // is sized up front from the hoisted per-row/
                            // per-column exponent bounds, so each tagged
                            // product is subtracted and re-added in the same
                            // step. Falls back to the Kulisch register only
                            // when the bounded span outgrows an i128.
                            // The window is sized from the singly-tagged
                            // bounds only: a doubly-tagged depth (both the
                            // row and the column tag the same kk — rare,
                            // and the only case whose frame can escape
                            // these bounds) is diverted to the `extras`
                            // side list and folded in afterwards.
                            let mut lo = win.frame();
                            let mut hi = lo + OWLP_PRODUCT_BITS;
                            if let Some((elo, ehi)) = row_ea[i] {
                                lo = lo.min(elo + shared_w as i32 - 268);
                                hi = hi.max(ehi + shared_w as i32 - 268 + OWLP_PRODUCT_BITS);
                            }
                            if let Some((elo, ehi)) = col_ew[j] {
                                lo = lo.min(shared_a as i32 + elo - 268);
                                hi = hi.max(shared_a as i32 + ehi - 268 + OWLP_PRODUCT_BITS);
                            }
                            let terms = (k + rtags.len() + ctags.len()) as u64;
                            let mut routed = 0usize;
                            match WindowAcc::for_span(lo, hi, terms) {
                                Some(mut wide) => {
                                    let cmask = &col_masks[j * mask_words..(j + 1) * mask_words];
                                    let disjoint = rmask.iter().zip(cmask).all(|(a, b)| a & b == 0);
                                    if disjoint {
                                        // No depth is tagged on both sides:
                                        // two straight sweeps, each rebuilt
                                        // frame provably inside the window
                                        // by the singly-tagged bounds above.
                                        // Same signed integer the kernel
                                        // added: the sval product folds sign
                                        // and the 4·(sh_a + sh_w) shift.
                                        for &(kk, ea) in rtags.iter() {
                                            let kk = kk as usize;
                                            let v = row_sval[kk] as i64 * panel[kk * NR + c] as i64;
                                            if v == 0 {
                                                continue;
                                            }
                                            win.add_aligned(-v);
                                            wide.add(v, ea + shared_w as i32 - 268);
                                            routed += 1;
                                        }
                                        for &(kk, ew) in ctags.iter() {
                                            let kk = kk as usize;
                                            let v = row_sval[kk] as i64 * panel[kk * NR + c] as i64;
                                            if v == 0 {
                                                continue;
                                            }
                                            win.add_aligned(-v);
                                            wide.add(v, shared_a as i32 + ew - 268);
                                            routed += 1;
                                        }
                                        values[out_idx] = if routed == 0 {
                                            // Every tagged product was zero —
                                            // the shared-frame window already
                                            // holds the exact sum.
                                            win.round_to_f32()
                                        } else {
                                            wide.add_window(&win);
                                            wide.round_to_f32()
                                        };
                                        max_wavefront = max_wavefront.max(routed);
                                        total += routed;
                                        continue;
                                    }
                                    let hi_fit = hi - OWLP_PRODUCT_BITS;
                                    extras.clear();
                                    for_each_tag(
                                        rtags,
                                        ctags,
                                        shared_a as i32,
                                        shared_w as i32,
                                        |kk, ea, ew| {
                                            let v = row_sval[kk] as i64 * panel[kk * NR + c] as i64;
                                            if v == 0 {
                                                return;
                                            }
                                            win.add_aligned(-v);
                                            let f = ea + ew - 268;
                                            if f >= lo && f <= hi_fit {
                                                wide.add(v, f);
                                            } else {
                                                extras.push((v, f));
                                            }
                                            routed += 1;
                                        },
                                    );
                                    values[out_idx] = if !extras.is_empty() {
                                        // A doubly-tagged frame escaped the
                                        // window — take everything through
                                        // the Kulisch register.
                                        let mut acc = KulischAcc::new();
                                        win.merge_into(&mut acc);
                                        wide.merge_into(&mut acc);
                                        for &(v, f) in extras.iter() {
                                            acc.add_scaled(v, f);
                                        }
                                        acc.round_to_f32()
                                    } else if routed == 0 {
                                        // Every tagged product was zero — the
                                        // shared-frame window already holds
                                        // the exact sum.
                                        win.round_to_f32()
                                    } else {
                                        wide.add_window(&win);
                                        wide.round_to_f32()
                                    };
                                }
                                None => {
                                    let mut acc = KulischAcc::new();
                                    for_each_tag(
                                        rtags,
                                        ctags,
                                        shared_a as i32,
                                        shared_w as i32,
                                        |kk, ea, ew| {
                                            let v = row_sval[kk] as i64 * panel[kk * NR + c] as i64;
                                            if v == 0 {
                                                return;
                                            }
                                            win.add_aligned(-v);
                                            acc.add_scaled(v, ea + ew - 268);
                                            routed += 1;
                                        },
                                    );
                                    values[out_idx] = if routed == 0 {
                                        win.round_to_f32()
                                    } else {
                                        win.merge_into(&mut acc);
                                        acc.round_to_f32()
                                    };
                                }
                            }
                            max_wavefront = max_wavefront.max(routed);
                            total += routed;
                        }
                    }
                    if ABFT {
                        if let Some((rs, cs)) = sums.as_mut() {
                            for (r, part) in tile_rs.iter().enumerate().take(mr) {
                                rs[ib + r] += part;
                            }
                            for (c, part) in tile_cs.iter().enumerate().take(nr) {
                                cs[jb + c - cols.start] += part;
                            }
                        }
                    }
                };
            // BLIS-style blocked traversal of this chunk's column range.
            // Blocking is pure re-association of the same exact integer
            // sums, so every (Mc, Kc, Nc) choice — including the unblocked
            // geometry — produces bit-identical output at every tier.
            let single_stripe = k <= kc;
            // Persistent per-Nc-block accumulator planes for the
            // multi-stripe path, allocated lazily and reused across blocks.
            let row_tiles = m.div_ceil(MR);
            let mut lane_tiles: Vec<[[i64; NR]; MR]> = Vec::new();
            let mut spill_tiles: Vec<[[WindowAcc; NR]; MR]> = Vec::new();
            let mut jc = cols.start;
            while jc < cols.end {
                let hi_col = (jc + nc).min(cols.end);
                if single_stripe {
                    // One Kc stripe covers the whole depth: windows go
                    // straight from registers into the finalize pass — the
                    // pre-blocking structure with Mc/Nc loop shaping on top.
                    for ic in (0..m).step_by(mc) {
                        let ic_end = (ic + mc).min(m);
                        for jb in (jc..hi_col).step_by(NR) {
                            let panel = panels.panel(jb / NR);
                            let mut ib = ic;
                            while ib < ic_end {
                                if use_x8 && ib + MR8 <= ic_end {
                                    let a8: [&[i16]; MR8] = std::array::from_fn(|r| {
                                        &a_sval[(ib + r) * k..(ib + r + 1) * k]
                                    });
                                    let [w0, w1] =
                                        microkernel::tile_dot_i16_x8_with(tier, a8, panel, win0);
                                    finalize_tile(&w0, ib, jb, panel);
                                    finalize_tile(&w1, ib + MR, jb, panel);
                                    ib += MR8;
                                } else {
                                    let mr = MR.min(ic_end - ib);
                                    let a_rows: [&[i16]; MR] = std::array::from_fn(|r| {
                                        if r < mr {
                                            &a_sval[(ib + r) * k..(ib + r + 1) * k]
                                        } else {
                                            zero_row.as_slice()
                                        }
                                    });
                                    // The microkernel covers the outlier-free
                                    // bulk: every product is an integer
                                    // < 2^30 on the shared frame (outlier
                                    // svals included as their as-if-normal
                                    // value, corrected in the finalize), so
                                    // regrouping into register tiles cannot
                                    // change the exact per-element sum.
                                    let wins =
                                        microkernel::tile_dot_i16_with(tier, a_rows, panel, win0);
                                    finalize_tile(&wins, ib, jb, panel);
                                    ib += MR;
                                }
                            }
                        }
                    }
                } else {
                    // Multi-stripe: Kc stripes accumulate into a persistent
                    // tile-major i64 lane plane covering this Nc block;
                    // depths beyond the spill period flush into a lazy
                    // WindowAcc spill plane first. Each flush boundary is
                    // just another association order of the same exact sum.
                    let groups = (hi_col - jc).div_ceil(NR);
                    lane_tiles.clear();
                    lane_tiles.resize(groups * row_tiles, [[0i64; NR]; MR]);
                    let spill = k > microkernel::K_SPILL;
                    if spill {
                        spill_tiles.clear();
                        spill_tiles.resize(groups * row_tiles, [[win0; NR]; MR]);
                    }
                    let mut depth = 0usize;
                    let mut pc = 0usize;
                    while pc < k {
                        let kcl = kc.min(k - pc);
                        if depth + kcl > microkernel::K_SPILL {
                            debug_assert!(spill, "flush only occurs when k > K_SPILL");
                            for (lt, st) in lane_tiles.iter_mut().zip(spill_tiles.iter_mut()) {
                                for (lr, sr) in lt.iter_mut().zip(st.iter_mut()) {
                                    for (lane, w) in lr.iter_mut().zip(sr.iter_mut()) {
                                        w.add_aligned(std::mem::take(lane));
                                    }
                                }
                            }
                            depth = 0;
                        }
                        for ic in (0..m).step_by(mc) {
                            let ic_end = (ic + mc).min(m);
                            for (g, jb) in (jc..hi_col).step_by(NR).enumerate() {
                                let panel = panels.panel(jb / NR);
                                let stripe = &panel[pc * NR..(pc + kcl) * NR];
                                let mut ib = ic;
                                while ib < ic_end {
                                    let t = g * row_tiles + ib / MR;
                                    if use_x8 && ib + MR8 <= ic_end {
                                        let a8: [&[i16]; MR8] = std::array::from_fn(|r| {
                                            let row = (ib + r) * k;
                                            &a_sval[row + pc..row + pc + kcl]
                                        });
                                        let (lo_t, hi_t) = lane_tiles.split_at_mut(t + 1);
                                        microkernel::tile_mul_i16_x8_with(
                                            tier,
                                            a8,
                                            stripe,
                                            &mut lo_t[t],
                                            &mut hi_t[0],
                                        );
                                        ib += MR8;
                                    } else {
                                        let mr = MR.min(ic_end - ib);
                                        let a_rows: [&[i16]; MR] = std::array::from_fn(|r| {
                                            if r < mr {
                                                let row = (ib + r) * k;
                                                &a_sval[row + pc..row + pc + kcl]
                                            } else {
                                                &zero_row[..kcl]
                                            }
                                        });
                                        microkernel::tile_mul_i16_with(
                                            tier,
                                            a_rows,
                                            stripe,
                                            &mut lane_tiles[t],
                                        );
                                        ib += MR;
                                    }
                                }
                            }
                        }
                        depth += kcl;
                        pc += kcl;
                    }
                    // Finalize pass: rebuild each tile's windows from the
                    // lane plane (plus the spill plane when one exists) and
                    // run the shared strike/checksum/correction logic.
                    for (g, jb) in (jc..hi_col).step_by(NR).enumerate() {
                        let panel = panels.panel(jb / NR);
                        for ib in (0..m).step_by(MR) {
                            let t = g * row_tiles + ib / MR;
                            let wins: [[WindowAcc; NR]; MR] = std::array::from_fn(|r| {
                                std::array::from_fn(|c| {
                                    let mut w = if spill { spill_tiles[t][r][c] } else { win0 };
                                    w.add_aligned(lane_tiles[t][r][c]);
                                    w
                                })
                            });
                            finalize_tile(&wins, ib, jb, panel);
                        }
                    }
                }
                jc = hi_col;
            }
        } else {
            values = Vec::with_capacity(cols.len() * m);
            // Bounded align reduces contributions in the PE column's
            // arrival order — order-sensitive, so drive the real datapath.
            let mut wt_col: Vec<DecodedOperand> = Vec::new();
            let mut act_rows: Vec<Option<Vec<DecodedOperand>>> = vec![None; m];
            for j in cols {
                wt_col.clear();
                wt_col.extend((0..k).map(|kk| packed_b.get(kk * n + j)));
                for (i, slot) in act_rows.iter_mut().enumerate() {
                    let act_row = slot.get_or_insert_with(|| {
                        (i * k..(i + 1) * k).map(|x| packed_a.get(x)).collect()
                    });
                    let out = column.compute_unchecked(act_row, &wt_col, shared_a, shared_w);
                    values.push(out.value);
                    max_wavefront = max_wavefront.max(out.outlier_products);
                    total += out.outlier_products;
                }
            }
        }
        (j0, values, max_wavefront, total, sums)
    });
    let mut output = vec![0.0f32; m * n];
    let mut max_wavefront = 0usize;
    let mut total_outlier_products = 0usize;
    let mut abft_sums = ABFT.then(|| AbftSums {
        rows: vec![0i128; m],
        cols: vec![0i128; n],
    });
    for (j0, values, tile_max, tile_total, chunk_sums) in tiles {
        max_wavefront = max_wavefront.max(tile_max);
        total_outlier_products += tile_total;
        if let (Some(dst), Some((rs, cs))) = (abft_sums.as_mut(), chunk_sums) {
            for (d, s) in dst.rows.iter_mut().zip(rs) {
                *d += s;
            }
            dst.cols[j0..j0 + cs.len()].copy_from_slice(&cs);
        }
        for (idx, v) in values.into_iter().enumerate() {
            let (dj, i) = (idx / m.max(1), idx % m.max(1));
            output[i * n + j0 + dj] = v;
        }
    }
    Ok((
        OwlpGemmOutput {
            output,
            shared_a,
            shared_w,
            act_outliers: packed_a.stored_outlier_count(),
            weight_outliers: packed_b.stored_outlier_count(),
            max_wavefront_outliers: max_wavefront,
            total_outlier_products,
        },
        abft_sums,
    ))
}

fn check_shape(t: &[Bf16], expected: usize, what: &'static str) -> Result<(), ArithError> {
    check_len(t.len(), expected, what)
}

fn check_len(actual: usize, expected: usize, what: &'static str) -> Result<(), ArithError> {
    if actual != expected {
        return Err(ArithError::DimensionMismatch {
            what,
            expected,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_gemm;
    use crate::fpmac::fp_mac_gemm;

    fn bf_vec(xs: &[f32]) -> Vec<Bf16> {
        xs.iter().map(|&x| Bf16::from_f32(x)).collect()
    }

    /// Deterministic pseudo-random BF16 tensor: magnitudes in a narrow
    /// exponent band (like real LLM tensors) with optional huge outliers.
    fn synth(len: usize, seed: u64, outlier_every: usize) -> Vec<Bf16> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
                let sign = if state & (1 << 13) == 0 { 1.0 } else { -1.0 };
                let base = sign * (0.75 + u * 0.5); // exponents 126..=127
                let v = if outlier_every > 0 && i % outlier_every == outlier_every - 1 {
                    base * 1.0e18
                } else {
                    base
                };
                Bf16::from_f32(v)
            })
            .collect()
    }

    #[test]
    fn bit_exact_vs_golden_no_outliers() {
        let a = synth(8 * 16, 1, 0);
        let b = synth(16 * 4, 2, 0);
        let r = owlp_gemm(&a, &b, 8, 16, 4).unwrap();
        let golden = exact_gemm(&a, &b, 8, 16, 4);
        for (x, y) in r.output.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(r.act_outliers, 0);
    }

    #[test]
    fn bit_exact_vs_golden_with_outliers() {
        let a = synth(4 * 24, 3, 11);
        let b = synth(24 * 5, 4, 17);
        let r = owlp_gemm(&a, &b, 4, 24, 5).unwrap();
        let golden = exact_gemm(&a, &b, 4, 24, 5);
        for (x, y) in r.output.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(r.act_outliers > 0);
        assert!(r.total_outlier_products > 0);
    }

    #[test]
    fn forced_blocks_stay_bit_identical_with_outliers_and_abft() {
        use owlp_format::{with_block, BlockGeometry};
        let (m, k, n) = (13, 40, 11);
        let a = synth(m * k, 5, 9);
        let b = synth(k * n, 6, 13);
        let ea = encode_tensor(&a, None).unwrap();
        let eb = encode_tensor(&b, None).unwrap();
        let (pa, pb) = (ea.decode_packed(), eb.decode_packed());
        let strike = Some(LaneStrike { i: 3, j: 7, bit: 9 });
        let baseline = with_block(BlockGeometry::UNBLOCKED, || {
            owlp_gemm_packed_abft(&pa, &pb, None, m, k, n, strike).unwrap()
        });
        // Ragged tails, block == extent, block > extent, and the
        // multi-stripe lane-plane path (kc < k) all regroup the same exact
        // integer sums — outputs and ABFT checksums must match bit for bit.
        for geom in ["4,8,4", "8,40,12", "16,64,16", "4,16,8", "12,24,4"] {
            let g = BlockGeometry::parse(geom).unwrap();
            let (out, sums) = with_block(g, || {
                owlp_gemm_packed_abft(&pa, &pb, None, m, k, n, strike).unwrap()
            });
            for (x, y) in out.output.iter().zip(&baseline.0.output) {
                assert_eq!(x.to_bits(), y.to_bits(), "geometry {geom}");
            }
            assert_eq!(sums, baseline.1, "geometry {geom}");
            assert_eq!(
                out.total_outlier_products,
                baseline.0.total_outlier_products
            );
            assert_eq!(
                out.max_wavefront_outliers,
                baseline.0.max_wavefront_outliers
            );
        }
    }

    #[test]
    fn owlp_is_at_least_as_accurate_as_fp_baseline() {
        // Against the exact result, OwL-P's error is zero by construction;
        // the sequential FP32 baseline's is ≥ 0. Construct a case where the
        // baseline is strictly worse.
        let a = bf_vec(&[1e30, 0.5, 0.5, 0.5, 0.5, -1e30]);
        let b = bf_vec(&[1.0, 0.5, 0.5, 0.5, 0.5, 1.0]);
        let owlp = owlp_gemm(&a, &b, 1, 6, 1).unwrap().output[0];
        let base = fp_mac_gemm(&a, &b, 1, 6, 1)[0];
        let golden = exact_gemm(&a, &b, 1, 6, 1)[0];
        assert_eq!(owlp, golden);
        assert_eq!(golden, 1.0);
        assert_eq!(base, 0.0); // the baseline lost the small terms
    }

    #[test]
    fn zero_dimensional_edges() {
        let r = owlp_gemm(&[], &[], 0, 0, 0).unwrap();
        assert!(r.output.is_empty());
        let a = bf_vec(&[1.0, 2.0]);
        let r2 = owlp_gemm(&a, &[], 2, 1, 0).unwrap();
        assert!(r2.output.is_empty());
    }

    #[test]
    fn k_zero_gives_zeros() {
        let r = owlp_gemm(&[], &[], 2, 0, 3).unwrap();
        assert_eq!(r.output, vec![0.0; 6]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = bf_vec(&[1.0; 5]);
        let b = bf_vec(&[1.0; 6]);
        assert!(matches!(
            owlp_gemm(&a, &b, 2, 3, 2),
            Err(ArithError::DimensionMismatch { what: "A", .. })
        ));
    }

    #[test]
    fn nonfinite_input_is_reported() {
        let mut a = bf_vec(&[1.0; 4]);
        a[2] = Bf16::INFINITY;
        let b = bf_vec(&[1.0; 4]);
        assert!(matches!(
            owlp_gemm(&a, &b, 2, 2, 2),
            Err(ArithError::Format(_))
        ));
    }

    #[test]
    fn wavefront_statistics_reported() {
        // Put 3 outliers in one activation row → wavefront of 3.
        let mut xs = vec![1.0f32; 2 * 16];
        xs[1] = 1e20;
        xs[5] = 1e20;
        xs[9] = 1e20;
        let a = bf_vec(&xs);
        let b = bf_vec(&[1.0f32; 16 * 2]);
        let r = owlp_gemm(&a, &b, 2, 16, 2).unwrap();
        assert_eq!(r.max_wavefront_outliers, 3);
    }

    #[test]
    fn parallel_owlp_gemm_is_bit_identical_to_serial() {
        // Column grain is 16384/(k·m) = 16, so n = 64 spans four tiles.
        let (m, k, n) = (16, 64, 64);
        let a = synth(m * k, 21, 9);
        let b = synth(k * n, 22, 13);
        let serial = owlp_par::with_threads(1, || owlp_gemm(&a, &b, m, k, n).unwrap());
        for t in [2, 4, 8] {
            let par = owlp_par::with_threads(t, || owlp_gemm(&a, &b, m, k, n).unwrap());
            assert_eq!(par, serial, "{t} threads");
        }
    }

    #[test]
    fn prepared_with_shape_and_scratch_is_bit_identical() {
        // Shapes deliberately off the MR/NR grid; outliers on both sides.
        let (m, k, n) = (9, 37, 13);
        let acts = [synth(m * k, 31, 9), synth(m * k, 32, 7)];
        let b = synth(k * n, 33, 11);
        let plain = PreparedTensor::new(&b).unwrap();
        assert!(plain.panels().is_none());
        let shaped = PreparedTensor::with_shape(&b, k, n).unwrap();
        assert!(shaped.panels().is_some());
        let mut scratch = GemmScratch::default();
        for a in &acts {
            let fresh = owlp_gemm_prepared(a, &plain, m, k, n).unwrap();
            let memo = owlp_gemm_prepared_with(a, &shaped, m, k, n, &mut scratch).unwrap();
            assert_eq!(
                memo, fresh,
                "memoised panels + scratch must not change a bit"
            );
            let golden = exact_gemm(a, &b, m, k, n);
            for (x, y) in memo.output.iter().zip(&golden) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        assert!(matches!(
            PreparedTensor::with_shape(&b, k, n + 1),
            Err(ArithError::DimensionMismatch { what: "B", .. })
        ));
    }

    #[test]
    fn prepared_f32_path_matches_rounded_bf16_path() {
        let (m, k, n) = (7, 41, 10);
        let b = synth(k * n, 51, 8);
        let shaped = PreparedTensor::with_shape(&b, k, n).unwrap();
        let mut scratch = GemmScratch::default();
        // Several shapes through ONE scratch, including f32 values that
        // round (inexact in BF16) and an outlier-scale activation.
        for seed in [1u64, 2, 3] {
            let a32: Vec<f32> = (0..m * k)
                .map(|i| {
                    let base = ((i as f32) * 0.137 + seed as f32).sin() * 3.0;
                    if i % 17 == 0 {
                        base * 1e20
                    } else {
                        base
                    }
                })
                .collect();
            let rounded: Vec<Bf16> = a32.iter().map(|&x| Bf16::from_f32(x)).collect();
            let via_bf16 = owlp_gemm_prepared(&rounded, &shaped, m, k, n).unwrap();
            let via_f32 =
                owlp_gemm_prepared_f32_with(&a32, &shaped, m, k, n, &mut scratch).unwrap();
            assert_eq!(via_f32, via_bf16, "f32 entry must only move the rounding");
        }
        assert!(matches!(
            owlp_gemm_prepared_f32_with(&[0.0f32; 3], &shaped, m, k, n, &mut scratch),
            Err(ArithError::DimensionMismatch { what: "A", .. })
        ));
        assert!(matches!(
            owlp_gemm_prepared_f32_with(&vec![f32::NAN; m * k], &shaped, m, k, n, &mut scratch),
            Err(ArithError::Format(_))
        ));
    }

    #[test]
    fn abft_sums_match_reference_and_localize_a_strike() {
        let (m, k, n) = (9, 37, 13);
        let a = synth(m * k, 41, 9);
        let b = synth(k * n, 42, 11);
        let enc_a = encode_tensor(&a, None).unwrap();
        let enc_b = encode_tensor(&b, None).unwrap();
        let (pa, pb) = (enc_a.decode_packed(), enc_b.decode_packed());
        let (out, sums) = owlp_gemm_packed_abft(&pa, &pb, None, m, k, n, None).unwrap();
        // The ABFT run must not perturb the plain result by a bit.
        let plain = owlp_gemm(&a, &b, m, k, n).unwrap();
        assert_eq!(out, plain);
        // Independent reference over the sval planes: the raw accumulator
        // of (i, j) is exactly Σ_k a_sval[i,k]·b_sval[k,j].
        let bsum: Vec<i128> = (0..k)
            .map(|kk| (0..n).map(|j| pb.svals()[kk * n + j] as i128).sum())
            .collect();
        for i in 0..m {
            let want: i128 = (0..k)
                .map(|kk| pa.svals()[i * k + kk] as i128 * bsum[kk])
                .sum();
            assert_eq!(sums.rows[i], want, "row {i}");
        }
        // A single lane strike moves exactly one row and one column sum,
        // by exactly ±2^bit — even when f32 rounding masks it in the
        // output (an outlier-dominated element swallows a low-bit flip;
        // the integer checksums never do).
        let strike = LaneStrike {
            i: 4,
            j: 7,
            bit: 19,
        };
        let (_, struck) = owlp_gemm_packed_abft(&pa, &pb, None, m, k, n, Some(strike)).unwrap();
        let delta = struck.rows[4] - sums.rows[4];
        assert_eq!(delta.abs(), 1i128 << 19);
        assert_eq!(struck.cols[7] - sums.cols[7], delta);
        for i in (0..m).filter(|&i| i != 4) {
            assert_eq!(struck.rows[i], sums.rows[i], "row {i} untouched");
        }
        for j in (0..n).filter(|&j| j != 7) {
            assert_eq!(struck.cols[j], sums.cols[j], "col {j} untouched");
        }
        // On an outlier-free workload the same strike is output-visible.
        let a2 = synth(m * k, 43, 0);
        let b2 = synth(k * n, 44, 0);
        let enc_a2 = encode_tensor(&a2, None).unwrap();
        let enc_b2 = encode_tensor(&b2, None).unwrap();
        let (pa2, pb2) = (enc_a2.decode_packed(), enc_b2.decode_packed());
        let (clean2, _) = owlp_gemm_packed_abft(&pa2, &pb2, None, m, k, n, None).unwrap();
        let (bad2, _) = owlp_gemm_packed_abft(&pa2, &pb2, None, m, k, n, Some(strike)).unwrap();
        assert_ne!(
            bad2.output[4 * n + 7].to_bits(),
            clean2.output[4 * n + 7].to_bits()
        );
    }

    #[test]
    fn parallel_abft_sums_are_bit_identical_to_serial() {
        let (m, k, n) = (16, 64, 64);
        let a = synth(m * k, 51, 9);
        let b = synth(k * n, 52, 13);
        let enc_a = encode_tensor(&a, None).unwrap();
        let enc_b = encode_tensor(&b, None).unwrap();
        let (pa, pb) = (enc_a.decode_packed(), enc_b.decode_packed());
        let run = || owlp_gemm_packed_abft(&pa, &pb, None, m, k, n, None).unwrap();
        let serial = owlp_par::with_threads(1, run);
        for t in [2, 4, 8] {
            assert_eq!(owlp_par::with_threads(t, run), serial, "{t} threads");
        }
    }

    #[test]
    fn large_k_spanning_many_pes() {
        let a = synth(2 * 256, 7, 40);
        let b = synth(256 * 3, 8, 33);
        let r = owlp_gemm(&a, &b, 2, 256, 3).unwrap();
        let golden = exact_gemm(&a, &b, 2, 256, 3);
        for (x, y) in r.output.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
