//! End-to-end functional GEMMs.
//!
//! [`owlp_gemm`] runs the full OwL-P pipeline — shared-exponent encoding,
//! bias decoding, INT PE columns with outlier bypass, align + INT2FP — and
//! is verified bit-exact against [`crate::exact::exact_gemm`]. It also
//! reports the outlier statistics the performance model consumes.

use crate::align::AlignUnit;
use crate::column::PeColumn;
use crate::error::ArithError;
use crate::pe::PeConfig;
use owlp_format::decode::DecodedOperand;
use owlp_format::{encode_tensor, Bf16, EncodedTensor};
use serde::{Deserialize, Serialize};

/// Result of an OwL-P GEMM with datapath statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OwlpGemmOutput {
    /// Row-major `m×n` FP32 results.
    pub output: Vec<f32>,
    /// Shared exponent chosen for the activation tensor.
    pub shared_a: u8,
    /// Shared exponent chosen for the weight tensor.
    pub shared_w: u8,
    /// Outlier entries in the encoded activation tensor.
    pub act_outliers: usize,
    /// Outlier entries in the encoded weight tensor.
    pub weight_outliers: usize,
    /// Largest number of outlier products observed in one column wavefront
    /// (one output element's pass) — what the scheduler must keep under the
    /// path budget.
    pub max_wavefront_outliers: usize,
    /// Total products routed down outlier paths.
    pub total_outlier_products: usize,
}

/// Runs the OwL-P pipeline on `a` (`m×k`, row-major) × `b` (`k×n`,
/// row-major) with the paper's PE configuration and the exact align unit.
///
/// # Errors
///
/// Returns [`ArithError::Format`] for non-finite inputs and
/// [`ArithError::DimensionMismatch`] for shape errors.
///
/// ```
/// use owlp_format::Bf16;
/// use owlp_arith::{exact_gemm, owlp_gemm};
/// # fn main() -> Result<(), owlp_arith::ArithError> {
/// let a: Vec<Bf16> = (0..6).map(|i| Bf16::from_f32(i as f32 - 2.5)).collect();
/// let b: Vec<Bf16> = (0..6).map(|i| Bf16::from_f32(0.5 * i as f32)).collect();
/// let r = owlp_gemm(&a, &b, 2, 3, 2)?;
/// let golden = exact_gemm(&a, &b, 2, 3, 2);
/// assert_eq!(r.output, golden);
/// # Ok(())
/// # }
/// ```
pub fn owlp_gemm(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
) -> Result<OwlpGemmOutput, ArithError> {
    owlp_gemm_with(a, b, m, k, n, PeConfig::PAPER, AlignUnit::Exact)
}

/// [`owlp_gemm`] with explicit PE configuration and align-unit policy.
///
/// # Errors
///
/// As [`owlp_gemm`].
pub fn owlp_gemm_with(
    a: &[Bf16],
    b: &[Bf16],
    m: usize,
    k: usize,
    n: usize,
    config: PeConfig,
    align: AlignUnit,
) -> Result<OwlpGemmOutput, ArithError> {
    check_shape(a, m * k, "A")?;
    check_shape(b, k * n, "B")?;
    let enc_a = encode_tensor(a, None)?;
    let enc_b = encode_tensor(b, None)?;
    let ops_a = enc_a.decode_operands();
    let ops_b = enc_b.decode_operands();
    owlp_gemm_decoded(&enc_a, &ops_a, &enc_b, &ops_b, m, k, n, config, align)
}

/// The datapath half of [`owlp_gemm`], reusable when the tensors are
/// already encoded/decoded (as the accelerator model does per layer).
#[allow(clippy::too_many_arguments)]
pub fn owlp_gemm_decoded(
    enc_a: &EncodedTensor,
    ops_a: &[DecodedOperand],
    enc_b: &EncodedTensor,
    ops_b: &[DecodedOperand],
    m: usize,
    k: usize,
    n: usize,
    config: PeConfig,
    align: AlignUnit,
) -> Result<OwlpGemmOutput, ArithError> {
    check_len(ops_a.len(), m * k, "decoded A")?;
    check_len(ops_b.len(), k * n, "decoded B")?;
    let rows = k.div_ceil(config.lanes).max(1);
    let column = PeColumn::new(config, rows).with_align(align);
    let shared_a = enc_a.shared_exp();
    let shared_w = enc_b.shared_exp();
    // Tile-parallel over output columns: each tile gathers its weight
    // columns and runs every activation row through the PE column. Results
    // assemble in column order and the wavefront statistics reduce over the
    // ordered tile list (max and sum — order-free anyway), so the output is
    // bit-identical to the serial sweep at every thread count.
    let grain = crate::exact::row_grain(k, m);
    let tiles = owlp_par::map_chunks(n, grain, |cols| {
        let j0 = cols.start;
        let mut values = Vec::with_capacity(cols.len() * m);
        let mut max_wavefront = 0usize;
        let mut total = 0usize;
        let mut wt_col = vec![DecodedOperand::ZERO; k];
        for j in cols {
            for kk in 0..k {
                wt_col[kk] = ops_b[kk * n + j];
            }
            for i in 0..m {
                let act_row = &ops_a[i * k..(i + 1) * k];
                let out = column.compute_unchecked(act_row, &wt_col, shared_a, shared_w);
                values.push(out.value);
                max_wavefront = max_wavefront.max(out.outlier_products);
                total += out.outlier_products;
            }
        }
        (j0, values, max_wavefront, total)
    });
    let mut output = vec![0.0f32; m * n];
    let mut max_wavefront = 0usize;
    let mut total_outlier_products = 0usize;
    for (j0, values, tile_max, tile_total) in tiles {
        max_wavefront = max_wavefront.max(tile_max);
        total_outlier_products += tile_total;
        for (idx, v) in values.into_iter().enumerate() {
            let (dj, i) = (idx / m.max(1), idx % m.max(1));
            output[i * n + j0 + dj] = v;
        }
    }
    Ok(OwlpGemmOutput {
        output,
        shared_a,
        shared_w,
        act_outliers: enc_a.outlier_count(),
        weight_outliers: enc_b.outlier_count(),
        max_wavefront_outliers: max_wavefront,
        total_outlier_products,
    })
}

fn check_shape(t: &[Bf16], expected: usize, what: &'static str) -> Result<(), ArithError> {
    check_len(t.len(), expected, what)
}

fn check_len(actual: usize, expected: usize, what: &'static str) -> Result<(), ArithError> {
    if actual != expected {
        return Err(ArithError::DimensionMismatch {
            what,
            expected,
            actual,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::exact_gemm;
    use crate::fpmac::fp_mac_gemm;

    fn bf_vec(xs: &[f32]) -> Vec<Bf16> {
        xs.iter().map(|&x| Bf16::from_f32(x)).collect()
    }

    /// Deterministic pseudo-random BF16 tensor: magnitudes in a narrow
    /// exponent band (like real LLM tensors) with optional huge outliers.
    fn synth(len: usize, seed: u64, outlier_every: usize) -> Vec<Bf16> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        (0..len)
            .map(|i| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let u = (state >> 40) as f32 / (1u64 << 24) as f32; // [0,1)
                let sign = if state & (1 << 13) == 0 { 1.0 } else { -1.0 };
                let base = sign * (0.75 + u * 0.5); // exponents 126..=127
                let v = if outlier_every > 0 && i % outlier_every == outlier_every - 1 {
                    base * 1.0e18
                } else {
                    base
                };
                Bf16::from_f32(v)
            })
            .collect()
    }

    #[test]
    fn bit_exact_vs_golden_no_outliers() {
        let a = synth(8 * 16, 1, 0);
        let b = synth(16 * 4, 2, 0);
        let r = owlp_gemm(&a, &b, 8, 16, 4).unwrap();
        let golden = exact_gemm(&a, &b, 8, 16, 4);
        for (x, y) in r.output.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(r.act_outliers, 0);
    }

    #[test]
    fn bit_exact_vs_golden_with_outliers() {
        let a = synth(4 * 24, 3, 11);
        let b = synth(24 * 5, 4, 17);
        let r = owlp_gemm(&a, &b, 4, 24, 5).unwrap();
        let golden = exact_gemm(&a, &b, 4, 24, 5);
        for (x, y) in r.output.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(r.act_outliers > 0);
        assert!(r.total_outlier_products > 0);
    }

    #[test]
    fn owlp_is_at_least_as_accurate_as_fp_baseline() {
        // Against the exact result, OwL-P's error is zero by construction;
        // the sequential FP32 baseline's is ≥ 0. Construct a case where the
        // baseline is strictly worse.
        let a = bf_vec(&[1e30, 0.5, 0.5, 0.5, 0.5, -1e30]);
        let b = bf_vec(&[1.0, 0.5, 0.5, 0.5, 0.5, 1.0]);
        let owlp = owlp_gemm(&a, &b, 1, 6, 1).unwrap().output[0];
        let base = fp_mac_gemm(&a, &b, 1, 6, 1)[0];
        let golden = exact_gemm(&a, &b, 1, 6, 1)[0];
        assert_eq!(owlp, golden);
        assert_eq!(golden, 1.0);
        assert_eq!(base, 0.0); // the baseline lost the small terms
    }

    #[test]
    fn zero_dimensional_edges() {
        let r = owlp_gemm(&[], &[], 0, 0, 0).unwrap();
        assert!(r.output.is_empty());
        let a = bf_vec(&[1.0, 2.0]);
        let r2 = owlp_gemm(&a, &[], 2, 1, 0).unwrap();
        assert!(r2.output.is_empty());
    }

    #[test]
    fn k_zero_gives_zeros() {
        let r = owlp_gemm(&[], &[], 2, 0, 3).unwrap();
        assert_eq!(r.output, vec![0.0; 6]);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = bf_vec(&[1.0; 5]);
        let b = bf_vec(&[1.0; 6]);
        assert!(matches!(
            owlp_gemm(&a, &b, 2, 3, 2),
            Err(ArithError::DimensionMismatch { what: "A", .. })
        ));
    }

    #[test]
    fn nonfinite_input_is_reported() {
        let mut a = bf_vec(&[1.0; 4]);
        a[2] = Bf16::INFINITY;
        let b = bf_vec(&[1.0; 4]);
        assert!(matches!(
            owlp_gemm(&a, &b, 2, 2, 2),
            Err(ArithError::Format(_))
        ));
    }

    #[test]
    fn wavefront_statistics_reported() {
        // Put 3 outliers in one activation row → wavefront of 3.
        let mut xs = vec![1.0f32; 2 * 16];
        xs[1] = 1e20;
        xs[5] = 1e20;
        xs[9] = 1e20;
        let a = bf_vec(&xs);
        let b = bf_vec(&[1.0f32; 16 * 2]);
        let r = owlp_gemm(&a, &b, 2, 16, 2).unwrap();
        assert_eq!(r.max_wavefront_outliers, 3);
    }

    #[test]
    fn parallel_owlp_gemm_is_bit_identical_to_serial() {
        // Column grain is 16384/(k·m) = 16, so n = 64 spans four tiles.
        let (m, k, n) = (16, 64, 64);
        let a = synth(m * k, 21, 9);
        let b = synth(k * n, 22, 13);
        let serial = owlp_par::with_threads(1, || owlp_gemm(&a, &b, m, k, n).unwrap());
        for t in [2, 4, 8] {
            let par = owlp_par::with_threads(t, || owlp_gemm(&a, &b, m, k, n).unwrap());
            assert_eq!(par, serial, "{t} threads");
        }
    }

    #[test]
    fn large_k_spanning_many_pes() {
        let a = synth(2 * 256, 7, 40);
        let b = synth(256 * 3, 8, 33);
        let r = owlp_gemm(&a, &b, 2, 256, 3).unwrap();
        let golden = exact_gemm(&a, &b, 2, 256, 3);
        for (x, y) in r.output.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
