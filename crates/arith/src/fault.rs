//! Fault-injection analysis of the decoded-operand datapath.
//!
//! Bit flips are injected into decoded operands (significand, sign, shift
//! bit, outlier tag, outlier exponent) and the corrupted dot product is
//! compared against the fault-free result. The analysis quantifies which
//! fields are critical — e.g. a flipped **outlier tag** mis-frames an
//! entire product by the gap between the shared and outlier exponents
//! (potentially hundreds of binary orders), while a significand LSB flip
//! moves the result by at most one pre-shift-scaled ulp. This motivates
//! protecting tag/exponent side-band wires in a real implementation.

use crate::column::PeColumn;
use crate::pe::PeConfig;
use owlp_format::decode::DecodedOperand;
use owlp_format::{Bf16, BiasDecoder, ExponentWindow};
use serde::{Deserialize, Serialize};

/// Which field of a decoded operand a fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A bit of the pre-aligned significand (`0..DecodedOperand::MAG_BITS`).
    Significand(u8),
    /// The sign wire.
    Sign,
    /// The shift bit (`sh`): a flip mis-scales the product by 2^±4.
    ShiftBit,
    /// The outlier tag: a flip re-frames the product entirely.
    OutlierTag,
    /// A bit of the outlier exponent side-band (`0..Bf16::EXP_BITS`).
    OutlierExp(u8),
}

impl FaultSite {
    /// All injectable sites. Bit ranges derive from the format constants:
    /// [`DecodedOperand::MAG_BITS`] significand wires and
    /// [`Bf16::EXP_BITS`] outlier-exponent side-band wires.
    pub fn all() -> Vec<FaultSite> {
        let mut v: Vec<FaultSite> = (0..DecodedOperand::MAG_BITS as u8)
            .map(FaultSite::Significand)
            .collect();
        v.push(FaultSite::Sign);
        v.push(FaultSite::ShiftBit);
        v.push(FaultSite::OutlierTag);
        v.extend((0..Bf16::EXP_BITS as u8).map(FaultSite::OutlierExp));
        v
    }

    /// Whether this site rides the tag/exponent **side-band** (the control
    /// wires the module-level analysis singles out as critical) rather than
    /// the significand data word. Side-band wires are the ones a parity bit
    /// over `{tag, sh, exp}` would cover in a real implementation.
    pub fn side_band(self) -> bool {
        matches!(
            self,
            FaultSite::OutlierTag | FaultSite::ShiftBit | FaultSite::OutlierExp(_)
        )
    }

    /// Applies the fault to one operand.
    pub fn inject(self, op: &mut DecodedOperand) {
        match self {
            FaultSite::Significand(b) => op.mag ^= 1 << b,
            FaultSite::Sign => op.sign = !op.sign,
            FaultSite::ShiftBit => op.sh = !op.sh,
            FaultSite::OutlierTag => op.tag = !op.tag,
            FaultSite::OutlierExp(b) => op.exp ^= 1 << b,
        }
    }
}

/// Outcome of injecting one fault into one dot product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The injected site.
    pub site: FaultSite,
    /// Fault-free result.
    pub golden: f32,
    /// Faulty result.
    pub observed: f32,
    /// `|observed − golden| / max(|golden|, ε)`.
    pub relative_error: f64,
}

impl FaultOutcome {
    /// Whether the fault was silent (no output change).
    pub fn silent(&self) -> bool {
        self.observed.to_bits() == self.golden.to_bits()
    }
}

/// Injects `site` into operand `lane` of the activation vector and
/// evaluates the dot product on a PE column.
///
/// # Panics
///
/// Panics if `lane` is out of range or the operand slices mismatch in
/// length.
pub fn inject_into_dot(
    acts: &[DecodedOperand],
    wts: &[DecodedOperand],
    shared_a: u8,
    shared_w: u8,
    lane: usize,
    site: FaultSite,
) -> FaultOutcome {
    assert_eq!(acts.len(), wts.len(), "operand length mismatch");
    assert!(lane < acts.len(), "lane out of range");
    let rows = acts.len().div_ceil(PeConfig::PAPER.lanes).max(1);
    let column = PeColumn::new(PeConfig::PAPER, rows);
    let golden = column
        .compute_unchecked(acts, wts, shared_a, shared_w)
        .value;
    let mut faulty = acts.to_vec();
    site.inject(&mut faulty[lane]);
    let observed = column
        .compute_unchecked(&faulty, wts, shared_a, shared_w)
        .value;
    FaultOutcome {
        site,
        golden,
        observed,
        relative_error: (observed as f64 - golden as f64).abs()
            / (golden.abs() as f64).max(f64::MIN_POSITIVE),
    }
}

/// Sweeps every fault site over one lane and returns the outcomes sorted by
/// descending relative error — the sensitivity ranking.
pub fn sensitivity_sweep(
    acts: &[DecodedOperand],
    wts: &[DecodedOperand],
    shared_a: u8,
    shared_w: u8,
    lane: usize,
) -> Vec<FaultOutcome> {
    let mut outcomes: Vec<FaultOutcome> = FaultSite::all()
        .into_iter()
        .map(|site| inject_into_dot(acts, wts, shared_a, shared_w, lane, site))
        .collect();
    outcomes.sort_by(|a, b| {
        b.relative_error
            .partial_cmp(&a.relative_error)
            .expect("errors are finite")
    });
    outcomes
}

/// One row of the criticality-ranked site table: how much damage a bit
/// flip at `site` does on a representative dot product, and whether a
/// side-band parity bit would see it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct SiteCriticality {
    /// The fault site.
    pub site: FaultSite,
    /// Mean relative error over the reference sweep, floored at `1e-12` so
    /// even silent sites keep a non-zero sampling weight.
    pub weight: f64,
    /// Whether the site is on the parity-protectable tag/exponent side-band
    /// (see [`FaultSite::side_band`]).
    pub side_band: bool,
}

/// The criticality-ranked site table: every injectable site scored by the
/// mean relative error it causes across a fixed, representative operand set
/// (mixed magnitudes plus genuine outliers so the tag/exponent side-band is
/// exercised), sorted most-critical first.
///
/// The table is a pure function — same ranking on every call and every
/// machine — which is what lets a serving-level SDC sampler draw sites
/// weighted by hardware criticality while staying bit-reproducible.
pub fn criticality_table() -> Vec<SiteCriticality> {
    const BASE: u8 = 124;
    let dec = BiasDecoder::new(BASE);
    let w = ExponentWindow::owlp(BASE);
    let decode = |xs: &[f32]| -> Vec<DecodedOperand> {
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    };
    // Two outliers per vector (1e6 and 3e-7 sit far outside the 7-exponent
    // window at base 124), the rest moderate normals.
    let acts = decode(&[1.5, -2.0, 1.0e6, 0.5, 3.0, -0.25, 3.0e-7, 2.5]);
    let wts = decode(&[0.5, 1.0, 2.0, -4.0, 0.5, 4.0, 1.0, -0.5]);
    let lanes = acts.len();
    let mut table: Vec<SiteCriticality> = FaultSite::all()
        .into_iter()
        .map(|site| {
            let mean = (0..lanes)
                .map(|lane| inject_into_dot(&acts, &wts, BASE, BASE, lane, site).relative_error)
                .sum::<f64>()
                / lanes as f64;
            SiteCriticality {
                site,
                weight: mean.max(1e-12),
                side_band: site.side_band(),
            }
        })
        .collect();
    table.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("weights are finite"));
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn operands(xs: &[f32], base: u8) -> Vec<DecodedOperand> {
        let w = ExponentWindow::owlp(base);
        let dec = BiasDecoder::new(base);
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    }

    #[test]
    fn tag_flip_on_a_normal_operand_is_catastrophic() {
        // A normal operand suddenly claims the outlier frame (exp byte 0 →
        // subnormal scale): the product collapses by ~2^-130.
        let acts = operands(&[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 2, FaultSite::OutlierTag);
        assert!(out.relative_error > 0.05, "{out:?}");
    }

    #[test]
    fn significand_lsb_flip_is_bounded() {
        let acts = operands(&[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::Significand(0));
        // One ulp of a 1.0 operand against a sum of 20: ≤ 1/128/20.
        assert!(out.relative_error < 1e-2, "{out:?}");
        assert!(!out.silent());
    }

    #[test]
    fn shift_bit_flip_scales_by_sixteen() {
        // Operand value 1.0 with sh=0 becomes ×16 when sh flips.
        let acts = operands(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::ShiftBit);
        assert_eq!(out.golden, 1.0);
        assert_eq!(out.observed, 16.0);
    }

    #[test]
    fn sign_flip_negates_the_contribution() {
        let acts = operands(&[3.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::Sign);
        assert_eq!(out.golden, 4.0);
        assert_eq!(out.observed, -2.0);
    }

    #[test]
    fn sensitivity_ranking_places_control_bits_first() {
        // For an operand of moderate magnitude, the frame-level faults
        // (tag, high exponent bits, shift) dominate data-bit faults.
        let acts = operands(&[1.5, 2.0, 0.5, 1.0, 3.0, 0.25, 1.25, 2.5], 124);
        let wts = operands(&[0.5, 1.0, 2.0, 4.0, 0.5, 4.0, 1.0, 0.5], 124);
        let ranked = sensitivity_sweep(&acts, &wts, 124, 124, 3);
        let top: Vec<FaultSite> = ranked.iter().take(3).map(|o| o.site).collect();
        assert!(
            top.iter().any(|s| matches!(
                s,
                FaultSite::OutlierTag | FaultSite::ShiftBit | FaultSite::Significand(9..=10)
            )),
            "top sites {top:?}"
        );
        // And the least sensitive site is a low significand bit (or a
        // silent fault on unused outlier-exponent bits).
        let bottom = ranked.last().unwrap();
        assert!(bottom.relative_error <= ranked[0].relative_error);
    }

    #[test]
    fn site_list_is_derived_from_format_constants() {
        let all = FaultSite::all();
        let sig = all
            .iter()
            .filter(|s| matches!(s, FaultSite::Significand(_)))
            .count();
        let exp = all
            .iter()
            .filter(|s| matches!(s, FaultSite::OutlierExp(_)))
            .count();
        assert_eq!(sig, DecodedOperand::MAG_BITS as usize);
        assert_eq!(exp, Bf16::EXP_BITS as usize);
        assert_eq!(all.len(), sig + exp + 3); // + sign, shift, tag
    }

    #[test]
    fn criticality_table_is_ranked_deterministic_and_flags_side_band() {
        let t = criticality_table();
        assert_eq!(t.len(), FaultSite::all().len());
        for w in t.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
        assert!(t.iter().all(|r| r.weight > 0.0));
        assert_eq!(criticality_table(), t);
        for r in &t {
            assert_eq!(r.side_band, r.site.side_band());
        }
        // The ranking reproduces the module-level conclusion: the most
        // critical wires are all on the tag/exponent side-band (a flipped
        // high exponent bit mis-frames a product by hundreds of binary
        // orders), and even the tag out-damages the significand LSB.
        assert!(t[..4].iter().all(|r| r.side_band), "{:?}", &t[..4]);
        let weight_of = |site: FaultSite| t.iter().find(|r| r.site == site).unwrap().weight;
        assert!(weight_of(FaultSite::OutlierTag) > weight_of(FaultSite::Significand(0)));
    }

    #[test]
    fn outlier_exp_faults_on_normals_are_silent() {
        // Normal operands ignore the exponent side-band: flipping it does
        // nothing (tag is clear). This is a masking property, not a bug.
        let acts = operands(&[1.0; 8], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::OutlierExp(3));
        assert!(out.silent());
    }
}
