//! Fault-injection analysis of the decoded-operand datapath.
//!
//! Bit flips are injected into decoded operands (significand, sign, shift
//! bit, outlier tag, outlier exponent) and the corrupted dot product is
//! compared against the fault-free result. The analysis quantifies which
//! fields are critical — e.g. a flipped **outlier tag** mis-frames an
//! entire product by the gap between the shared and outlier exponents
//! (potentially hundreds of binary orders), while a significand LSB flip
//! moves the result by at most one pre-shift-scaled ulp. This motivates
//! protecting tag/exponent side-band wires in a real implementation.

use crate::column::PeColumn;
use crate::pe::PeConfig;
use owlp_format::decode::DecodedOperand;
use serde::{Deserialize, Serialize};

/// Which field of a decoded operand a fault hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// A bit of the pre-aligned significand (`0..11`).
    Significand(u8),
    /// The sign wire.
    Sign,
    /// The shift bit (`sh`): a flip mis-scales the product by 2^±4.
    ShiftBit,
    /// The outlier tag: a flip re-frames the product entirely.
    OutlierTag,
    /// A bit of the outlier exponent side-band (`0..8`).
    OutlierExp(u8),
}

impl FaultSite {
    /// All injectable sites.
    pub fn all() -> Vec<FaultSite> {
        let mut v: Vec<FaultSite> = (0..11).map(FaultSite::Significand).collect();
        v.push(FaultSite::Sign);
        v.push(FaultSite::ShiftBit);
        v.push(FaultSite::OutlierTag);
        v.extend((0..8).map(FaultSite::OutlierExp));
        v
    }

    /// Applies the fault to one operand.
    pub fn inject(self, op: &mut DecodedOperand) {
        match self {
            FaultSite::Significand(b) => op.mag ^= 1 << b,
            FaultSite::Sign => op.sign = !op.sign,
            FaultSite::ShiftBit => op.sh = !op.sh,
            FaultSite::OutlierTag => op.tag = !op.tag,
            FaultSite::OutlierExp(b) => op.exp ^= 1 << b,
        }
    }
}

/// Outcome of injecting one fault into one dot product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultOutcome {
    /// The injected site.
    pub site: FaultSite,
    /// Fault-free result.
    pub golden: f32,
    /// Faulty result.
    pub observed: f32,
    /// `|observed − golden| / max(|golden|, ε)`.
    pub relative_error: f64,
}

impl FaultOutcome {
    /// Whether the fault was silent (no output change).
    pub fn silent(&self) -> bool {
        self.observed.to_bits() == self.golden.to_bits()
    }
}

/// Injects `site` into operand `lane` of the activation vector and
/// evaluates the dot product on a PE column.
///
/// # Panics
///
/// Panics if `lane` is out of range or the operand slices mismatch in
/// length.
pub fn inject_into_dot(
    acts: &[DecodedOperand],
    wts: &[DecodedOperand],
    shared_a: u8,
    shared_w: u8,
    lane: usize,
    site: FaultSite,
) -> FaultOutcome {
    assert_eq!(acts.len(), wts.len(), "operand length mismatch");
    assert!(lane < acts.len(), "lane out of range");
    let rows = acts.len().div_ceil(PeConfig::PAPER.lanes).max(1);
    let column = PeColumn::new(PeConfig::PAPER, rows);
    let golden = column
        .compute_unchecked(acts, wts, shared_a, shared_w)
        .value;
    let mut faulty = acts.to_vec();
    site.inject(&mut faulty[lane]);
    let observed = column
        .compute_unchecked(&faulty, wts, shared_a, shared_w)
        .value;
    FaultOutcome {
        site,
        golden,
        observed,
        relative_error: (observed as f64 - golden as f64).abs()
            / (golden.abs() as f64).max(f64::MIN_POSITIVE),
    }
}

/// Sweeps every fault site over one lane and returns the outcomes sorted by
/// descending relative error — the sensitivity ranking.
pub fn sensitivity_sweep(
    acts: &[DecodedOperand],
    wts: &[DecodedOperand],
    shared_a: u8,
    shared_w: u8,
    lane: usize,
) -> Vec<FaultOutcome> {
    let mut outcomes: Vec<FaultOutcome> = FaultSite::all()
        .into_iter()
        .map(|site| inject_into_dot(acts, wts, shared_a, shared_w, lane, site))
        .collect();
    outcomes.sort_by(|a, b| {
        b.relative_error
            .partial_cmp(&a.relative_error)
            .expect("errors are finite")
    });
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_format::{Bf16, BiasDecoder, ExponentWindow};

    fn operands(xs: &[f32], base: u8) -> Vec<DecodedOperand> {
        let w = ExponentWindow::owlp(base);
        let dec = BiasDecoder::new(base);
        xs.iter()
            .map(|&x| dec.decode_bf16(Bf16::from_f32(x), w))
            .collect()
    }

    #[test]
    fn tag_flip_on_a_normal_operand_is_catastrophic() {
        // A normal operand suddenly claims the outlier frame (exp byte 0 →
        // subnormal scale): the product collapses by ~2^-130.
        let acts = operands(&[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 2, FaultSite::OutlierTag);
        assert!(out.relative_error > 0.05, "{out:?}");
    }

    #[test]
    fn significand_lsb_flip_is_bounded() {
        let acts = operands(&[1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::Significand(0));
        // One ulp of a 1.0 operand against a sum of 20: ≤ 1/128/20.
        assert!(out.relative_error < 1e-2, "{out:?}");
        assert!(!out.silent());
    }

    #[test]
    fn shift_bit_flip_scales_by_sixteen() {
        // Operand value 1.0 with sh=0 becomes ×16 when sh flips.
        let acts = operands(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::ShiftBit);
        assert_eq!(out.golden, 1.0);
        assert_eq!(out.observed, 16.0);
    }

    #[test]
    fn sign_flip_negates_the_contribution() {
        let acts = operands(&[3.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::Sign);
        assert_eq!(out.golden, 4.0);
        assert_eq!(out.observed, -2.0);
    }

    #[test]
    fn sensitivity_ranking_places_control_bits_first() {
        // For an operand of moderate magnitude, the frame-level faults
        // (tag, high exponent bits, shift) dominate data-bit faults.
        let acts = operands(&[1.5, 2.0, 0.5, 1.0, 3.0, 0.25, 1.25, 2.5], 124);
        let wts = operands(&[0.5, 1.0, 2.0, 4.0, 0.5, 4.0, 1.0, 0.5], 124);
        let ranked = sensitivity_sweep(&acts, &wts, 124, 124, 3);
        let top: Vec<FaultSite> = ranked.iter().take(3).map(|o| o.site).collect();
        assert!(
            top.iter().any(|s| matches!(
                s,
                FaultSite::OutlierTag | FaultSite::ShiftBit | FaultSite::Significand(9..=10)
            )),
            "top sites {top:?}"
        );
        // And the least sensitive site is a low significand bit (or a
        // silent fault on unused outlier-exponent bits).
        let bottom = ranked.last().unwrap();
        assert!(bottom.relative_error <= ranked[0].relative_error);
    }

    #[test]
    fn outlier_exp_faults_on_normals_are_silent() {
        // Normal operands ignore the exponent side-band: flipping it does
        // nothing (tag is clear). This is a masking property, not a bug.
        let acts = operands(&[1.0; 8], 124);
        let wts = operands(&[1.0; 8], 124);
        let out = inject_into_dot(&acts, &wts, 124, 124, 0, FaultSite::OutlierExp(3));
        assert!(out.silent());
    }
}
