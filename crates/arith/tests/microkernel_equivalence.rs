//! Cross-product equivalence of the GEMM drive loops: blocking geometry
//! × kernel tier × thread count must never change a single output bit.
//!
//! Both drive loops accumulate in exact integer arithmetic, so any
//! `(mc, kc, nc)` split — including degenerate ones like `1,1,1`, a
//! block exactly matching the shape, or a block larger than the shape —
//! is pure re-association. The oracle is the forced-scalar tier with
//! blocking disabled on one thread; every other combination must
//! reproduce it exactly, ABFT sums included.

use owlp_arith::gemm::owlp_gemm;
use owlp_arith::microkernel;
use owlp_arith::{exact_gemm, exact_gemm_abft};
use owlp_format::simd::KernelTier;
use owlp_format::{with_block, Bf16, BlockGeometry};
use proptest::prelude::*;

/// Seeded BF16 tensor mixing small values with sparse large outliers,
/// mirroring the bench generator so both paths exercise the outlier
/// lanes.
fn tensor(len: usize, mut state: u64) -> Vec<Bf16> {
    state |= 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let small = ((state >> 32) as i32 % 1000) as f32 * 1e-3;
            let v = if state.is_multiple_of(61) {
                small * 1e20
            } else {
                small
            };
            Bf16::from_f32(v)
        })
        .collect()
}

/// Output bits of both GEMM paths plus the exact path's ABFT row/column
/// sums under the given tier, geometry, and thread count.
fn run_all(
    a: &[Bf16],
    b: &[Bf16],
    (m, k, n): (usize, usize, usize),
    tier: KernelTier,
    geom: BlockGeometry,
    threads: usize,
) -> (Vec<u32>, Vec<u32>, Vec<i128>) {
    microkernel::with_tier(tier, || {
        with_block(geom, || {
            owlp_par::with_threads(threads, || {
                let exact: Vec<u32> = exact_gemm(a, b, m, k, n)
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let owlp: Vec<u32> = owlp_gemm(a, b, m, k, n)
                    .expect("finite inputs")
                    .output
                    .iter()
                    .map(|v| v.to_bits())
                    .collect();
                let (_, check) = exact_gemm_abft(a, b, m, k, n, None);
                let abft: Vec<i128> = check
                    .map(|c| {
                        c.observed
                            .rows
                            .iter()
                            .chain(c.observed.cols.iter())
                            .copied()
                            .collect()
                    })
                    .unwrap_or_default();
                (exact, owlp, abft)
            })
        })
    })
}

proptest! {
    // Each case fans out over geometries × tiers × thread counts, so a
    // modest case count still covers thousands of combinations.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn blocking_tier_thread_sweep_is_bit_identical(
        m in 1usize..22,
        k in 1usize..48,
        n in 1usize..22,
        mc in 1usize..32,
        kc in 1usize..64,
        nc in 1usize..32,
        seed in any::<u64>(),
    ) {
        let a = tensor(m * k, seed);
        let b = tensor(k * n, seed ^ 0x9e37_79b9_7f4a_7c15);
        let oracle = run_all(
            &a,
            &b,
            (m, k, n),
            KernelTier::Scalar,
            BlockGeometry::UNBLOCKED,
            1,
        );

        // Remainder-edge geometries: the random split, blocking off, a
        // block exactly matching the shape, a block strictly larger
        // than the shape, and the smallest legal block.
        let geometries = [
            BlockGeometry { mc, kc, nc },
            BlockGeometry::UNBLOCKED,
            BlockGeometry { mc: m, kc: k, nc: n },
            BlockGeometry { mc: m + 8, kc: k + 8, nc: n + 8 },
            BlockGeometry { mc: 1, kc: 1, nc: 1 },
        ];
        for geom in geometries {
            for &tier in microkernel::available_tiers() {
                for threads in [1usize, 4, 8] {
                    let got = run_all(&a, &b, (m, k, n), tier, geom, threads);
                    prop_assert_eq!(
                        &got,
                        &oracle,
                        "diverged at {}x{}x{} geom {:?} tier {:?} threads {}",
                        m,
                        k,
                        n,
                        geom,
                        tier,
                        threads
                    );
                }
            }
        }
    }
}
