//! Property-based tests of the arithmetic datapath invariants.

use owlp_arith::align::{AlignUnit, Contribution};
use owlp_arith::exact::{exact_dot, exact_dot_f64, exact_gemm};
use owlp_arith::fault::FaultSite;
use owlp_arith::fpmac::{fp_mac_dot, fp_tree_dot};
use owlp_arith::gemm::owlp_gemm;
use owlp_arith::int2fp::int_to_f32;
use owlp_arith::kulisch::KulischAcc;
use owlp_format::decode::DecodedOperand;
use owlp_format::Bf16;
use proptest::prelude::*;

fn finite_bf16() -> impl Strategy<Value = Bf16> {
    (0u16..0x80, 0u16..255, any::<bool>())
        .prop_map(|(frac, exp, sign)| Bf16::from_bits(((sign as u16) << 15) | (exp << 7) | frac))
}

/// A "moderate" BF16 whose products/sums stay within exact-f64 territory:
/// exponents 122..133 give products whose bits span < 45 binary orders, so
/// any sum of a few dozen of them is exactly representable in f64.
fn moderate_bf16() -> impl Strategy<Value = Bf16> {
    (0u16..0x80, 122u16..133, any::<bool>())
        .prop_map(|(frac, exp, sign)| Bf16::from_bits(((sign as u16) << 15) | (exp << 7) | frac))
}

fn any_operand() -> impl Strategy<Value = DecodedOperand> {
    (
        0u16..(1 << DecodedOperand::MAG_BITS),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(mag, sh, sign, tag, exp)| DecodedOperand {
            mag,
            sh,
            sign,
            tag,
            exp,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every fault site is a pure bit/bool toggle: injecting it twice
    /// restores the operand exactly (and once always changes it) — the
    /// property that lets the integrity sweep inject and undo strikes
    /// without re-decoding tensors.
    #[test]
    fn fault_injection_is_an_involution(
        op in any_operand(),
        site in prop::sample::select(FaultSite::all()),
    ) {
        let mut struck = op;
        site.inject(&mut struck);
        prop_assert_ne!(struck, op, "{:?} must not be silent on the operand", site);
        site.inject(&mut struck);
        prop_assert_eq!(struck, op, "{:?} must be an involution", site);
    }

    /// `side_band()` partitions the site list exactly: the side-band sites
    /// are precisely {ShiftBit, OutlierTag, OutlierExp(_)} and every site
    /// appears in exactly one class (with no duplicates in `all()`).
    #[test]
    fn side_band_partitions_the_sites(_nothing in 0u8..1) {
        let all = FaultSite::all();
        for (i, s) in all.iter().enumerate() {
            prop_assert_eq!(
                s.side_band(),
                matches!(s, FaultSite::ShiftBit | FaultSite::OutlierTag | FaultSite::OutlierExp(_)),
                "{:?}", s
            );
            prop_assert!(!all[i + 1..].contains(s), "{:?} duplicated", s);
        }
        let side: usize = all.iter().filter(|s| s.side_band()).count();
        let data = all.iter().filter(|s| !s.side_band()).count();
        prop_assert_eq!(side + data, all.len());
        prop_assert_eq!(side, 2 + Bf16::EXP_BITS as usize);
        prop_assert_eq!(data, DecodedOperand::MAG_BITS as usize + 1); // + sign
    }

    /// The Kulisch accumulator agrees with f64 wherever f64 is exact.
    #[test]
    fn kulisch_matches_f64_on_moderate_inputs(
        pairs in prop::collection::vec((moderate_bf16(), moderate_bf16()), 0..24),
    ) {
        let mut acc = KulischAcc::new();
        let mut reference = 0.0f64;
        for &(a, b) in &pairs {
            acc.add_product(a, b);
            reference += a.to_f64() * b.to_f64();
        }
        // Moderate range keeps every product and the sum exactly
        // representable in f64 (53-bit significand, 24 needed per term and
        // < 6 bits of carry growth here).
        prop_assert_eq!(acc.to_f64_lossy(), reference);
    }

    /// Accumulation order is irrelevant (exactness ⇒ commutativity).
    #[test]
    fn kulisch_is_order_independent(
        pairs in prop::collection::vec((finite_bf16(), finite_bf16()), 0..24),
        seed in 0u64..1000,
    ) {
        let mut forward = KulischAcc::new();
        for &(a, b) in &pairs {
            forward.add_product(a, b);
        }
        // Deterministic shuffle.
        let mut shuffled = pairs.clone();
        let mut state = seed | 1;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (state as usize) % (i + 1));
        }
        let mut backward = KulischAcc::new();
        for &(a, b) in &shuffled {
            backward.add_product(a, b);
        }
        prop_assert_eq!(forward.round_to_f32().to_bits(), backward.round_to_f32().to_bits());
    }

    /// The exact dot is the correct rounding: it differs from the f64 view
    /// by at most half an ulp of f32.
    #[test]
    fn exact_dot_is_correctly_rounded(
        pairs in prop::collection::vec((moderate_bf16(), moderate_bf16()), 1..16),
    ) {
        let (a, b): (Vec<Bf16>, Vec<Bf16>) = pairs.into_iter().unzip();
        let rounded = exact_dot(&a, &b) as f64;
        let real = exact_dot_f64(&a, &b);
        if real != 0.0 {
            let ulp = (real.abs() as f32).to_bits();
            let ulp = f64::from(f32::from_bits(ulp + 1)) - f64::from(f32::from_bits(ulp));
            prop_assert!((rounded - real).abs() <= ulp / 2.0 + f64::EPSILON * real.abs());
        }
    }

    /// OwL-P == exact on random GEMMs (the central theorem, re-proved at
    /// the crate boundary with unrestrained inputs).
    #[test]
    fn owlp_equals_exact_gemm(
        a in prop::collection::vec(finite_bf16(), 12),
        b in prop::collection::vec(finite_bf16(), 12),
    ) {
        let (m, k, n) = (3, 4, 3);
        let r = owlp_gemm(&a, &b, m, k, n).expect("finite inputs");
        let golden = exact_gemm(&a, &b, m, k, n);
        for (x, y) in r.output.iter().zip(&golden) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// FP accumulation (sequential or tree) is never *more* accurate than
    /// the exact path w.r.t. the true sum.
    #[test]
    fn fp_error_is_nonnegative(
        pairs in prop::collection::vec((moderate_bf16(), moderate_bf16()), 1..20),
    ) {
        let (a, b): (Vec<Bf16>, Vec<Bf16>) = pairs.into_iter().unzip();
        let real = exact_dot_f64(&a, &b);
        let exact_err = (exact_dot(&a, &b) as f64 - real).abs();
        let seq_err = (fp_mac_dot(&a, &b) as f64 - real).abs();
        let tree_err = (fp_tree_dot(&a, &b) as f64 - real).abs();
        prop_assert!(seq_err + 1e-300 >= exact_err);
        prop_assert!(tree_err + 1e-300 >= exact_err);
    }

    /// INT2FP equals a direct f64→f32 conversion wherever the value fits in
    /// one f64 exactly.
    #[test]
    fn int2fp_matches_f64_path(mag in -(1i64 << 50)..(1i64 << 50), frame in -60i32..60) {
        let direct = int_to_f32(mag as i128, frame, false);
        let via = (mag as f64 * (frame as f64).exp2()) as f32;
        prop_assert_eq!(direct.to_bits(), via.to_bits());
    }

    /// The exact align unit is insensitive to contribution order.
    #[test]
    fn align_reduce_is_order_independent(
        contributions in prop::collection::vec((-5000i64..5000, -40i32..40), 0..16),
    ) {
        let c1: Vec<Contribution> =
            contributions.iter().map(|&(mag, frame)| Contribution { mag, frame }).collect();
        let mut c2 = c1.clone();
        c2.reverse();
        let u = AlignUnit::exact();
        prop_assert_eq!(u.reduce(&c1).to_bits(), u.reduce(&c2).to_bits());
    }

    /// Bounded align units converge to the exact result as width grows.
    #[test]
    fn bounded_align_converges(
        contributions in prop::collection::vec((-5000i64..5000, -20i32..20), 1..10),
    ) {
        let c: Vec<Contribution> =
            contributions.iter().map(|&(mag, frame)| Contribution { mag, frame }).collect();
        let exact = AlignUnit::exact().reduce(&c);
        // The span of frames here is ≤ 40 bits + 13 magnitude bits, so a
        // 64-bit unit is already exact.
        let b64 = AlignUnit::bounded(64).reduce(&c);
        prop_assert_eq!(exact.to_bits(), b64.to_bits());
    }
}
