//! The accelerator simulator.
//!
//! [`Accelerator::simulate`] runs every [`GemmOp`] of a workload through:
//!
//! 1. **scheduling overheads** — the calibrated exponent profiles give
//!    `r_a`/`r_w` per operand (OwL-P only; the FP baseline has none);
//! 2. **compute cycles** — paper Eq. (4) with rep-level fold parallelism
//!    across the 16 arrays;
//! 3. **off-chip traffic** — the stationary operand streams from HBM2 each
//!    repetition (multi-GB weight/KV footprints cannot persist in the 12 MB
//!    buffer); OwL-P moves the compressed memory-map bytes of Fig. 5, the
//!    baseline moves raw BF16;
//! 4. **effective time** — compute and transfer overlap, so each op costs
//!    `max(compute, transfer)` cycles (the memory-bound decode phase is
//!    bandwidth-limited, which is where compression pays);
//! 5. **energy** — MAC energy × useful MACs, SRAM movement, DRAM movement,
//!    leakage over the effective window.

use crate::report::{ClassReport, SimulationReport};
use owlp_format::chunk::PackingLayout;
use owlp_hw::{DesignPoint, EnergyModel, MemorySystem};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{GemmOp, Workload};
use owlp_systolic::{cycle_model, ArrayConfig};
use serde::{Deserialize, Serialize};

/// Which design point an [`Accelerator`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AcceleratorKind {
    /// TPU-like BF16 baseline.
    Baseline,
    /// The OwL-P INT design with the compressed number format.
    Owlp,
}

/// A simulated accelerator design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Accelerator {
    kind: AcceleratorKind,
    array: ArrayConfig,
    design: DesignPoint,
}

impl Accelerator {
    /// The TPU-like BF16 baseline (Table V left column).
    pub fn baseline() -> Self {
        Accelerator {
            kind: AcceleratorKind::Baseline,
            array: ArrayConfig::BASELINE_PAPER,
            design: DesignPoint::baseline_paper(),
        }
    }

    /// The OwL-P design point (Table V right column).
    pub fn owlp() -> Self {
        Accelerator {
            kind: AcceleratorKind::Owlp,
            array: ArrayConfig::OWLP_PAPER,
            design: DesignPoint::owlp_paper(),
        }
    }

    /// An OwL-P variant with a different outlier-path split (Fig. 10
    /// sweeps).
    pub fn owlp_with_paths(act: usize, weight: usize) -> Self {
        let mut a = Self::owlp();
        a.array = a.array.with_outlier_paths(act, weight);
        a
    }

    /// An OwL-P variant with a custom array organisation (design-space
    /// exploration; the hardware cost model keeps the Table V anchors since
    /// total MACs and PE structure are unchanged).
    pub fn owlp_with_array(array: ArrayConfig) -> Self {
        let mut a = Self::owlp();
        a.array = array;
        a
    }

    /// The same design with a different memory system — the entry point
    /// for `repro` sweeps that vary channel count / burst size /
    /// double-buffer depth from JSON config.
    pub fn with_memory(mut self, memory: MemorySystem) -> Self {
        self.design.memory = memory;
        self
    }

    /// Which design this is.
    pub fn kind(&self) -> AcceleratorKind {
        self.kind
    }

    /// The systolic-array configuration.
    pub fn array(&self) -> &ArrayConfig {
        &self.array
    }

    /// The hardware design point.
    pub fn design(&self) -> &DesignPoint {
        &self.design
    }

    /// Simulates a workload with `r_a`/`r_w` **measured** on sampled
    /// synthetic masks through the real scheduler, instead of the analytic
    /// Poisson expectation — a cross-validation of [`Accelerator::simulate`]
    /// (slower; samples up to `sample × k` mask elements per op).
    pub fn simulate_measured(
        &self,
        workload: &Workload,
        dataset: Dataset,
        seed: u64,
        sample: usize,
    ) -> SimulationReport {
        self.simulate_inner(workload, dataset, Some((seed, sample.max(1))))
    }

    /// Simulates a workload under a dataset's activation statistics.
    pub fn simulate(&self, workload: &Workload, dataset: Dataset) -> SimulationReport {
        self.simulate_inner(workload, dataset, None)
    }

    fn simulate_inner(
        &self,
        workload: &Workload,
        dataset: Dataset,
        measured: Option<(u64, usize)>,
    ) -> SimulationReport {
        let memory = self.design.memory;
        let energy_model = EnergyModel {
            pe: self.design.pe,
            memory,
            logic_area_mm2: self.design.compute_area_mm2(),
        };
        let mut report = SimulationReport::new(self.design.name, &workload.name);
        let mut ra_weighted = 0.0;
        let mut rw_weighted = 0.0;
        let mut mac_total = 0u64;
        for op in &workload.ops {
            let (r_a, r_w) = match measured {
                None => self.overheads(workload, op, dataset),
                Some((seed, sample)) => {
                    self.measured_overheads(workload, op, dataset, seed, sample)
                }
            };
            let class = self.simulate_op(workload, op, dataset, r_a, r_w, &energy_model, &memory);
            ra_weighted += r_a * op.macs() as f64;
            rw_weighted += r_w * op.macs() as f64;
            mac_total += op.macs();
            report.accumulate(op.class(), &class);
        }
        if mac_total > 0 {
            report.avg_r_a = ra_weighted / mac_total as f64;
            report.avg_r_w = rw_weighted / mac_total as f64;
        }
        report.seconds = report.cycles as f64 / (self.array.clock_mhz * 1e6);
        report
    }

    /// Costs one op in isolation: scheduling overheads plus the full
    /// cycle/energy model, as one [`ClassReport`]. This is the per-op
    /// entry point the serving scheduler builds its cost tables from;
    /// accumulating it over a workload's ops reproduces
    /// [`Accelerator::simulate`] exactly.
    pub fn op_report(&self, workload: &Workload, op: &GemmOp, dataset: Dataset) -> ClassReport {
        let memory = self.design.memory;
        let energy_model = EnergyModel {
            pe: self.design.pe,
            memory,
            logic_area_mm2: self.design.compute_area_mm2(),
        };
        let (r_a, r_w) = self.overheads(workload, op, dataset);
        self.simulate_op(workload, op, dataset, r_a, r_w, &energy_model, &memory)
    }

    /// Wall-clock seconds for a cycle count at this design's frequency.
    pub fn seconds_for(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.array.clock_mhz * 1e6)
    }

    /// Scheduling overheads for one op (1.0/1.0 on the baseline).
    pub fn overheads(&self, workload: &Workload, op: &GemmOp, dataset: Dataset) -> (f64, f64) {
        if self.kind == AcceleratorKind::Baseline {
            return (1.0, 1.0);
        }
        let tile = self.array.k_tile().min(op.k.max(1));
        let act = profile_for(workload.model, op.kind, TensorRole::Activation, dataset);
        let wt = profile_for(workload.model, op.kind, TensorRole::Weight, dataset);
        let r_a = act.expected_extra_ratio(tile, self.array.act_outlier_paths.max(1));
        let r_w = wt.expected_extra_ratio(tile, self.array.weight_outlier_paths.max(1));
        (r_a, r_w)
    }

    /// Scheduling overheads measured on sampled masks through the real
    /// scheduler (see [`Accelerator::simulate_measured`]).
    pub fn measured_overheads(
        &self,
        workload: &Workload,
        op: &GemmOp,
        dataset: Dataset,
        seed: u64,
        sample: usize,
    ) -> (f64, f64) {
        if self.kind == AcceleratorKind::Baseline {
            return (1.0, 1.0);
        }
        use owlp_model::TensorGen;
        use owlp_systolic::schedule::OutlierSchedule;
        let k = op.k.clamp(1, 4096);
        let m = op.m.min(sample).max(1);
        let n = op.n.min(sample).max(1);
        let act = profile_for(workload.model, op.kind, TensorRole::Activation, dataset);
        let wt = profile_for(workload.model, op.kind, TensorRole::Weight, dataset);
        let act_mask = TensorGen::new(act, m, k).mask(seed);
        let wt_mask = TensorGen::new(wt, k, n).mask(seed ^ 0xBEEF);
        let tile = self.array.k_tile().min(k);
        let sched = OutlierSchedule::new(
            tile,
            self.array.act_outlier_paths.max(1),
            self.array.weight_outlier_paths.max(1),
        );
        let r_a = sched.activation_stats(&act_mask, m, k).ratio;
        let r_w = sched.weight_stats(&wt_mask, k, n).ratio;
        (r_a, r_w)
    }

    #[allow(clippy::too_many_arguments)]
    fn simulate_op(
        &self,
        workload: &Workload,
        op: &GemmOp,
        dataset: Dataset,
        r_a: f64,
        r_w: f64,
        energy_model: &EnergyModel,
        memory: &MemorySystem,
    ) -> ClassReport {
        // --- Compute cycles: Eq. (4) per repetition, with fold-level
        // parallelism across arrays shared by the repetitions.
        let b = cycle_model::cycles_with_overhead(&self.array, op.m, op.k, op.n, r_a, r_w);
        let total_folds = b.folds.saturating_mul(op.count);
        let compute_cycles = if total_folds == 0 {
            0
        } else {
            b.per_fold * total_folds.div_ceil(self.array.num_arrays as u64)
        };

        // --- Off-chip traffic: the stationary operand streams per
        // repetition; activations/outputs stay on chip for these shapes.
        let bpe = self.bytes_per_element(workload, op, dataset);
        let weight_bytes =
            (op.weight_elements() as f64 * bpe.weight * op.count as f64).ceil() as u64;
        // §IV-D fallback: outlier exponents beyond the on-chip buffer are
        // re-fetched from HBM per resident tile set, one burst per entry
        // (zero at paper outlier rates — the 64 Ki-entry buffer holds a
        // full tile set's outliers with an order of magnitude to spare).
        let groups = total_folds.div_ceil(self.array.num_arrays.max(1) as u64);
        let spill = if groups == 0 {
            0
        } else {
            let per_group = (op.weight_elements() * op.count).div_ceil(groups);
            let entries = owlp_mem::tiles::tile_outlier_entries(
                per_group,
                self.outlier_storage_rate(workload, op, dataset),
            );
            memory.outlier_buffer.overflow_bytes(entries) * groups
        };
        let dram_bytes = weight_bytes + spill;
        // On-chip movement: stationary operand + streamed activations +
        // outputs (FP32 accumulators written back as BF16/OwL-P).
        let sram_bytes = dram_bytes
            + ((op.activation_elements() + op.output_elements()) as f64
                * bpe.activation
                * op.count as f64)
                .ceil() as u64;

        // --- Effective time: double-buffered compute/transfer overlap
        // (steady state at the slower rate, plus one un-overlapped head
        // fetch per op group; see `crate::timing`).
        let transfer_cycles =
            (memory.transfer_seconds(dram_bytes) * self.array.clock_mhz * 1e6).ceil() as u64;
        let head_fetch = transfer_cycles / op.count.max(1);
        let cycles = compute_cycles.max(transfer_cycles) + head_fetch.min(compute_cycles);
        let seconds = cycles as f64 / (self.array.clock_mhz * 1e6);

        ClassReport {
            cycles,
            compute_cycles,
            macs: op.macs(),
            dram_bytes,
            energy: energy_model.energy_with_cycles(
                compute_cycles,
                self.array.total_macs(),
                owlp_hw::design::ACTIVITY_FACTOR,
                dram_bytes,
                sram_bytes,
                seconds,
            ),
        }
    }

    /// Fraction of stored weight elements that occupy an outlier-buffer
    /// entry while their tile set is resident (outliers plus zeros, which
    /// the format stores as exponent-0 outlier entries; see
    /// [`Accelerator::bytes_per_element`]). Zero on the baseline, which
    /// has no outlier path.
    pub(crate) fn outlier_storage_rate(
        &self,
        workload: &Workload,
        op: &GemmOp,
        dataset: Dataset,
    ) -> f64 {
        match self.kind {
            AcceleratorKind::Baseline => 0.0,
            AcceleratorKind::Owlp => {
                let p = profile_for(workload.model, op.kind, TensorRole::Weight, dataset);
                p.expected_outlier_rate() + p.zero_fraction
            }
        }
    }

    /// Bytes per stored element on the off-chip link.
    pub(crate) fn bytes_per_element(
        &self,
        workload: &Workload,
        op: &GemmOp,
        dataset: Dataset,
    ) -> BytesPerElement {
        match self.kind {
            AcceleratorKind::Baseline => BytesPerElement {
                weight: 2.0,
                activation: 2.0,
            },
            AcceleratorKind::Owlp => {
                let layout = PackingLayout::PAPER;
                let per = |role: TensorRole| {
                    let p = profile_for(workload.model, op.kind, role, dataset);
                    // Zeros are stored as exponent-0 outlier entries.
                    let outlier_storage = p.expected_outlier_rate() + p.zero_fraction;
                    let elements = 100_000usize;
                    let outliers = (elements as f64 * outlier_storage).round() as usize;
                    layout.packed_bits(elements, outliers) as f64 / 8.0 / elements as f64
                };
                BytesPerElement {
                    weight: per(TensorRole::Weight),
                    activation: per(TensorRole::Activation),
                }
            }
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub(crate) struct BytesPerElement {
    pub(crate) weight: f64,
    pub(crate) activation: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Comparison;
    use owlp_model::{workload, ModelId};

    #[test]
    fn owlp_beats_baseline_on_bert() {
        let wl = workload::encoder_workload(ModelId::BertBase, 512, 1);
        let b = Accelerator::baseline().simulate(&wl, Dataset::Squad2);
        let o = Accelerator::owlp().simulate(&wl, Dataset::Squad2);
        let c = Comparison::between(&b, &o);
        assert!(c.speedup > 1.5, "speedup {}", c.speedup);
        assert!(c.energy_ratio > 1.5, "energy ratio {}", c.energy_ratio);
    }

    #[test]
    fn owlp_beats_baseline_on_generation() {
        let wl = workload::generation_workload(ModelId::Gpt2Base, 32, 128, 256);
        let b = Accelerator::baseline().simulate(&wl, Dataset::WikiText2);
        let o = Accelerator::owlp().simulate(&wl, Dataset::WikiText2);
        let c = Comparison::between(&b, &o);
        assert!(c.speedup > 1.2, "speedup {}", c.speedup);
        assert!(c.energy_ratio > 1.5, "energy ratio {}", c.energy_ratio);
        // Compression shrinks traffic by ≈ 16/11.5 ≈ 1.39×.
        assert!(
            (1.25..=1.55).contains(&c.traffic_ratio),
            "traffic {}",
            c.traffic_ratio
        );
    }

    #[test]
    fn baseline_has_no_scheduling_overhead() {
        let wl = workload::encoder_workload(ModelId::BertLarge, 512, 1);
        let b = Accelerator::baseline().simulate(&wl, Dataset::Glue);
        assert_eq!(b.avg_r_a, 1.0);
        assert_eq!(b.avg_r_w, 1.0);
    }

    #[test]
    fn owlp_overheads_are_in_paper_bands() {
        let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 128, 64);
        let o = Accelerator::owlp().simulate(&wl, Dataset::WikiText2);
        assert!((1.05..=1.40).contains(&o.avg_r_a), "r_a {}", o.avg_r_a);
        assert!((1.01..=1.10).contains(&o.avg_r_w), "r_w {}", o.avg_r_w);
    }

    #[test]
    fn decode_phase_bandwidth_pressure() {
        // For the Llama2 decode QKV op on the baseline, transfer time
        // exceeds the *ideal* (MAC-limited) compute time — decode is
        // memory-bound for any well-utilised array — and stays the same
        // order as the Eq. (3) cycles with fill overhead. Compression must
        // therefore move the bottleneck.
        let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 0, 4);
        let acc = Accelerator::baseline();
        let op = wl.ops.iter().find(|o| o.m == 32).unwrap();
        let mem = acc.design.memory;
        let b = cycle_model::cycles_with_overhead(&acc.array, op.m, op.k, op.n, 1.0, 1.0);
        let compute = b.per_fold * b.folds.div_ceil(acc.array.num_arrays as u64);
        let ideal = op.m as u64 * op.k as u64 * op.n as u64 / acc.array.total_macs() as u64;
        let bytes = op.weight_elements() * 2;
        let transfer = (mem.transfer_seconds(bytes) * acc.array.clock_mhz * 1e6).ceil() as u64;
        assert!(transfer > ideal, "transfer {transfer} vs ideal {ideal}");
        assert!(
            transfer * 4 > compute,
            "transfer {transfer} vs compute {compute}"
        );
    }

    #[test]
    fn more_outlier_paths_reduce_cycles() {
        let wl = workload::encoder_workload(ModelId::BertBase, 512, 1);
        let few = Accelerator::owlp_with_paths(1, 1).simulate(&wl, Dataset::Squad2);
        let many = Accelerator::owlp_with_paths(4, 4).simulate(&wl, Dataset::Squad2);
        assert!(many.cycles <= few.cycles);
        assert!(many.avg_r_a < few.avg_r_a);
    }

    #[test]
    fn compressed_bytes_per_element_is_about_1_5() {
        let wl = workload::encoder_workload(ModelId::BertBase, 512, 1);
        let acc = Accelerator::owlp();
        let op = &wl.ops[0];
        let bpe = acc.bytes_per_element(&wl, op, Dataset::Squad2);
        assert!(
            (1.40..=1.60).contains(&bpe.weight),
            "weight bpe {}",
            bpe.weight
        );
        assert!(
            bpe.activation >= bpe.weight,
            "activations carry more outliers"
        );
        assert!(bpe.activation < 1.7);
    }

    #[test]
    fn measured_overheads_cross_validate_analytic() {
        // The measured-mask path must agree with the Poisson analytic on
        // both the overheads and the end-to-end speedup.
        let wl = workload::encoder_workload(ModelId::BertBase, 256, 1);
        let owlp = Accelerator::owlp();
        let analytic = owlp.simulate(&wl, Dataset::Squad2);
        let measured = owlp.simulate_measured(&wl, Dataset::Squad2, 99, 256);
        assert!(
            (analytic.avg_r_a - measured.avg_r_a).abs() < 0.06,
            "r_a {} vs {}",
            analytic.avg_r_a,
            measured.avg_r_a
        );
        assert!(
            (analytic.avg_r_w - measured.avg_r_w).abs() < 0.03,
            "r_w {} vs {}",
            analytic.avg_r_w,
            measured.avg_r_w
        );
        let rel = (analytic.cycles as f64 - measured.cycles as f64).abs() / analytic.cycles as f64;
        assert!(rel < 0.08, "cycle mismatch {rel}");
    }

    #[test]
    fn outlier_buffer_overflow_feeds_traffic_and_energy() {
        // At paper sizing the 64 Ki-entry buffer absorbs every tile set's
        // outliers; shrinking it to nothing forces the §IV-D spill path,
        // which must show up in traffic, cycles, and DRAM energy.
        let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 128, 16);
        let stock = Accelerator::owlp().simulate(&wl, Dataset::WikiText2);
        let mut mem = owlp_hw::MemorySystem::paper();
        mem.outlier_buffer.entries = 0;
        let starved = Accelerator::owlp()
            .with_memory(mem)
            .simulate(&wl, Dataset::WikiText2);
        assert!(
            starved.dram_bytes > stock.dram_bytes,
            "{} vs {}",
            starved.dram_bytes,
            stock.dram_bytes
        );
        assert!(starved.cycles >= stock.cycles);
        assert!(starved.energy.dram_j > stock.energy.dram_j);
    }

    #[test]
    fn report_classes_cover_whole_workload() {
        let wl = workload::generation_workload(ModelId::Gpt2Large, 32, 128, 256);
        let o = Accelerator::owlp().simulate(&wl, Dataset::WikiText2);
        let share_sum: f64 = owlp_model::OpClass::ALL
            .iter()
            .map(|&c| o.class_cycle_share(c))
            .sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }
}
