//! End-to-end numerical-equivalence verification.
//!
//! The paper's headline correctness claim: an LLM inferred on OwL-P yields
//! the same results as on conventional FP hardware. This module runs
//! synthetic layers — tensors drawn from the calibrated profiles, shapes
//! from the real model configurations — through the complete OwL-P pipeline
//! (shared-exponent encoding → bias decoding → INT PE columns with outlier
//! bypass → align → INT2FP) and compares against the exact FP reference,
//! bit for bit.

use owlp_arith::exact::exact_gemm;
use owlp_arith::gemm::owlp_gemm;
use owlp_arith::ArithError;
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use serde::{Deserialize, Serialize};

/// Result of one layer equivalence check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EquivalenceReport {
    /// Output elements compared.
    pub elements: usize,
    /// Elements matching the correctly-rounded reference bit-for-bit.
    pub bit_exact: usize,
    /// Activation outliers encountered.
    pub act_outliers: usize,
    /// Weight outliers encountered.
    pub weight_outliers: usize,
}

impl EquivalenceReport {
    /// Whether every output matched.
    pub fn is_equivalent(&self) -> bool {
        self.bit_exact == self.elements
    }
}

/// Runs one synthetic layer GEMM of shape `(m, k) × (k, n)` for `model`'s
/// `kind` tensors and checks OwL-P against the exact reference.
///
/// # Errors
///
/// Propagates datapath errors (non-finite values cannot occur with profile
/// generation, so errors indicate bugs).
pub fn check_layer(
    model: ModelId,
    kind: OpKind,
    dataset: Dataset,
    m: usize,
    k: usize,
    n: usize,
    seed: u64,
) -> Result<EquivalenceReport, ArithError> {
    let act_profile = profile_for(model, kind, TensorRole::Activation, dataset);
    let wt_profile = profile_for(model, kind, TensorRole::Weight, dataset);
    let a = TensorGen::new(act_profile, m, k).values(seed);
    let b = TensorGen::new(wt_profile, k, n).values(seed ^ 0xABCD);
    let owlp = owlp_gemm(&a, &b, m, k, n)?;
    let golden = exact_gemm(&a, &b, m, k, n);
    let bit_exact = owlp
        .output
        .iter()
        .zip(&golden)
        .filter(|(x, y)| x.to_bits() == y.to_bits())
        .count();
    Ok(EquivalenceReport {
        elements: golden.len(),
        bit_exact,
        act_outliers: owlp.act_outliers,
        weight_outliers: owlp.weight_outliers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_qkv_layer_is_bit_exact() {
        let r = check_layer(
            ModelId::BertBase,
            OpKind::QkvProj,
            Dataset::Squad2,
            16,
            64,
            24,
            7,
        )
        .unwrap();
        assert!(r.is_equivalent(), "{r:?}");
        assert!(
            r.act_outliers + r.weight_outliers > 0,
            "outliers must be exercised"
        );
    }

    #[test]
    fn llama_ffn_layer_is_bit_exact() {
        let r = check_layer(
            ModelId::Llama2_7b,
            OpKind::FfnUp,
            Dataset::WikiText2,
            8,
            128,
            16,
            11,
        )
        .unwrap();
        assert!(r.is_equivalent(), "{r:?}");
    }

    #[test]
    fn softmax_heavy_attention_layer_is_bit_exact() {
        let r = check_layer(
            ModelId::Gpt2Base,
            OpKind::AttnContext,
            Dataset::WikiText2,
            12,
            96,
            12,
            3,
        )
        .unwrap();
        assert!(r.is_equivalent(), "{r:?}");
        assert!(
            r.act_outliers > 0,
            "softmax activations should carry outliers"
        );
    }
}
