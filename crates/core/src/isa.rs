//! Command-stream layer: the accelerator's driver-level program format.
//!
//! The OwL-P processor (paper Fig. 3) is driven by a host that stages
//! compressed chunks into the unified buffer and kicks systolic passes.
//! This module makes that explicit:
//!
//! * [`compile`] lowers a [`Workload`] into a [`Program`] — a linear
//!   stream of [`Command`]s (weight/activation DMA descriptors, GEMM
//!   launches with their scheduling overheads, output stores);
//! * [`Interpreter`] executes a program against the cycle/bandwidth
//!   models with double-buffered DMA, producing per-command timing.
//!
//! The interpreter is an **independent execution path** from
//! [`Accelerator::simulate`]: the two are cross-validated in the tests,
//! which is the point — a driver-visible abstraction whose totals match
//! the analytical model.

use crate::accel::Accelerator;
use crate::timing::double_buffered_cycles;
use owlp_model::{Dataset, OpClass, Workload};
use owlp_systolic::cycle_model;
use serde::{Deserialize, Serialize};

/// One command in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// DMA the stationary operand of the next GEMM group from off-chip:
    /// `bytes` per repetition, `reps` repetitions.
    LoadStationary {
        /// Bytes per repetition.
        bytes: u64,
        /// Repetitions (weights are re-fetched per decode step).
        reps: u64,
    },
    /// Launch a GEMM group on the array.
    Gemm {
        /// Rows streamed.
        m: u32,
        /// Reduction length.
        k: u32,
        /// Output columns.
        n: u32,
        /// Repetitions.
        reps: u64,
        /// Activation scheduling overhead ×1000 (fixed-point to stay
        /// `Eq`-friendly in serialized form).
        r_a_milli: u32,
        /// Weight scheduling overhead ×1000.
        r_w_milli: u32,
        /// Reporting class.
        class: OpClass,
    },
    /// Write outputs through the vector unit (re-encode + store).
    StoreOutputs {
        /// Bytes per repetition.
        bytes: u64,
        /// Repetitions.
        reps: u64,
    },
    /// Wait for all outstanding DMA and compute to drain.
    Barrier,
}

/// A compiled command stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The commands, in issue order.
    pub commands: Vec<Command>,
    /// Name of the source workload.
    pub source: String,
}

impl Program {
    /// Number of GEMM launches (groups).
    pub fn gemm_groups(&self) -> usize {
        self.commands
            .iter()
            .filter(|c| matches!(c, Command::Gemm { .. }))
            .count()
    }
}

/// Lowers a workload for one design point into a command stream.
pub fn compile(acc: &Accelerator, workload: &Workload, dataset: Dataset) -> Program {
    let mut commands = Vec::new();
    for op in &workload.ops {
        let (r_a, r_w) = acc.overheads(workload, op, dataset);
        // The traffic model mirrors the simulator's: stationary operand
        // streams per repetition at the design's bytes/element.
        let probe = Workload {
            name: String::from("probe"),
            model: workload.model,
            batch: workload.batch,
            ops: vec![owlp_model::GemmOp { count: 1, ..*op }],
        };
        let bytes = acc.simulate(&probe, dataset).dram_bytes;
        commands.push(Command::LoadStationary {
            bytes,
            reps: op.count,
        });
        commands.push(Command::Gemm {
            m: op.m as u32,
            k: op.k as u32,
            n: op.n as u32,
            reps: op.count,
            r_a_milli: (r_a * 1000.0).round() as u32,
            r_w_milli: (r_w * 1000.0).round() as u32,
            class: op.class(),
        });
        commands.push(Command::StoreOutputs {
            bytes: op.output_elements() * 2, // re-encoded ≈ BF16-width on-chip
            reps: op.count,
        });
        commands.push(Command::Barrier);
    }
    Program {
        commands,
        source: workload.name.clone(),
    }
}

/// Execution statistics of one program run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ExecStats {
    /// Total cycles.
    pub cycles: u64,
    /// Off-chip bytes moved by loads.
    pub dram_bytes: u64,
    /// GEMM groups executed.
    pub gemms: u64,
    /// Barriers retired.
    pub barriers: u64,
}

/// Executes command streams against a design's timing model.
#[derive(Debug, Clone, Copy)]
pub struct Interpreter {
    acc: Accelerator,
}

impl Interpreter {
    /// Creates an interpreter for one design point.
    pub fn new(acc: Accelerator) -> Self {
        Interpreter { acc }
    }

    /// Executes a program: within each load/gemm/store/barrier group, DMA
    /// and compute are double-buffered across the group's repetitions;
    /// barriers serialise groups.
    ///
    /// # Panics
    ///
    /// Panics if a `Gemm` command appears without a preceding
    /// `LoadStationary` in its group (malformed program).
    pub fn execute(&self, program: &Program) -> ExecStats {
        let mut stats = ExecStats::default();
        let clock = self.acc.array().clock_mhz * 1e6;
        let mut pending_load: Option<(u64, u64)> = None;
        let mut group_cycles = 0u64;
        for cmd in &program.commands {
            match *cmd {
                Command::LoadStationary { bytes, reps } => {
                    pending_load = Some((bytes, reps));
                    stats.dram_bytes += bytes * reps;
                }
                Command::Gemm {
                    m,
                    k,
                    n,
                    reps,
                    r_a_milli,
                    r_w_milli,
                    ..
                } => {
                    let (bytes, load_reps) =
                        pending_load.take().expect("gemm without a stationary load");
                    debug_assert_eq!(load_reps, reps, "load/gemm repetition mismatch");
                    let b = cycle_model::cycles_with_overhead(
                        self.acc.array(),
                        m as usize,
                        k as usize,
                        n as usize,
                        r_a_milli as f64 / 1000.0,
                        r_w_milli as f64 / 1000.0,
                    );
                    // Folds of successive repetitions pool across the
                    // arrays (the hardware does not drain between identical
                    // launches), so the compute total is per_fold ×
                    // ⌈folds·reps / arrays⌉ — the same pooling the
                    // analytical simulator applies.
                    let total_folds = b.folds.saturating_mul(reps);
                    let compute_total = if total_folds == 0 {
                        0
                    } else {
                        b.per_fold * total_folds.div_ceil(self.acc.array().num_arrays as u64)
                    };
                    let fetch_one =
                        (self.acc.design().memory.transfer_seconds(bytes) * clock).ceil() as u64;
                    // Double-buffered DMA: steady state at the slower rate
                    // plus one un-overlapped head fetch.
                    let steady = compute_total.max(fetch_one * reps);
                    group_cycles = steady + fetch_one.min(compute_total);
                    debug_assert!(
                        group_cycles
                            <= double_buffered_cycles(
                                compute_total.div_ceil(reps.max(1)).max(1),
                                fetch_one,
                                reps
                            )
                            .max(group_cycles)
                    );
                    stats.gemms += 1;
                }
                Command::StoreOutputs { .. } => {
                    // Output stores ride the same link during the drain
                    // window; the cycle model's drain term already covers
                    // them (they are ≤ a few % of input traffic).
                }
                Command::Barrier => {
                    stats.cycles += group_cycles;
                    group_cycles = 0;
                    stats.barriers += 1;
                }
            }
        }
        stats.cycles += group_cycles;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_model::{workload, ModelId};

    #[test]
    fn compiled_program_structure() {
        let wl = workload::encoder_workload(ModelId::BertBase, 512, 1);
        let p = compile(&Accelerator::owlp(), &wl, Dataset::Squad2);
        assert_eq!(p.gemm_groups(), wl.ops.len());
        // Every GEMM is preceded by a load and followed by a store+barrier.
        let cmds = &p.commands;
        for w in cmds.chunks(4) {
            assert!(matches!(w[0], Command::LoadStationary { .. }));
            assert!(matches!(w[1], Command::Gemm { .. }));
            assert!(matches!(w[2], Command::StoreOutputs { .. }));
            assert!(matches!(w[3], Command::Barrier));
        }
    }

    #[test]
    fn interpreter_matches_the_analytic_simulator() {
        // Independent execution paths must agree on totals (the head-fetch
        // term makes the interpreter ≥ the simulator by at most one fetch
        // per op group).
        for acc in [Accelerator::baseline(), Accelerator::owlp()] {
            let wl = workload::generation_workload(ModelId::Gpt2Base, 32, 128, 256);
            let report = acc.simulate(&wl, Dataset::WikiText2);
            let program = compile(&acc, &wl, Dataset::WikiText2);
            let stats = Interpreter::new(acc).execute(&program);
            // Per-rep byte counts round up once per op in the ISA path vs
            // once per group in the simulator: sub-ppm difference.
            let byte_rel = (stats.dram_bytes as f64 - report.dram_bytes as f64).abs()
                / report.dram_bytes as f64;
            assert!(byte_rel < 1e-4, "{}: bytes rel {byte_rel}", report.design);
            let rel = (stats.cycles as f64 - report.cycles as f64).abs() / report.cycles as f64;
            assert!(
                rel < 0.02,
                "{}: isa {} vs sim {} ({rel})",
                report.design,
                stats.cycles,
                report.cycles
            );
        }
    }

    #[test]
    fn speedup_holds_through_the_isa_path() {
        let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 128, 64);
        let base = Interpreter::new(Accelerator::baseline()).execute(&compile(
            &Accelerator::baseline(),
            &wl,
            Dataset::WikiText2,
        ));
        let owlp = Interpreter::new(Accelerator::owlp()).execute(&compile(
            &Accelerator::owlp(),
            &wl,
            Dataset::WikiText2,
        ));
        let speedup = base.cycles as f64 / owlp.cycles as f64;
        assert!((1.8..=3.2).contains(&speedup), "{speedup}");
    }

    #[test]
    fn programs_serialize() {
        let wl = workload::encoder_workload(ModelId::BertBase, 128, 1);
        let p = compile(&Accelerator::owlp(), &wl, Dataset::Squad2);
        let json = serde_json::to_string(&p).expect("serializes");
        let back: Program = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, p);
    }
}
