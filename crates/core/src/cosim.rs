//! Bridge from [`Accelerator`] workloads to the `owlp-mem` co-simulator.
//!
//! [`Accelerator::simulate`] prices each op with the closed-form
//! `max(compute, transfer)` overlap; this module lowers the same ops into
//! [`PhaseSpec`]s — fold groups racing their stationary-tile fetches on
//! the per-channel HBM model — and aggregates the event-driven results
//! into a roofline report. The lowering reuses the accelerator's own
//! compute model (Eq. 4 fold structure) and compressed bytes-per-element,
//! so compute cycles agree exactly with [`Accelerator::op_report`]; only
//! the memory side gains fidelity (channel skew, burst padding, prefetch
//! depth, outlier-buffer spill).

use crate::accel::Accelerator;
use owlp_mem::tiles::tile_outlier_entries;
use owlp_mem::{CosimEngine, PhaseClass, PhaseResult, PhaseSpec, RooflineReport};
use owlp_model::profiles::Dataset;
use owlp_model::{GemmOp, Phase, Workload};
use owlp_systolic::cycle_model;

/// Maps a workload phase tag onto the co-simulator's class.
pub fn phase_class(phase: Phase) -> PhaseClass {
    match phase {
        Phase::Single => PhaseClass::Single,
        Phase::Prefill => PhaseClass::Prefill,
        Phase::Decode => PhaseClass::Decode,
    }
}

/// A co-sim engine over this accelerator's memory system and clock.
pub fn engine_for(acc: &Accelerator) -> CosimEngine {
    CosimEngine::new(acc.design().memory, acc.array().clock_mhz * 1e6)
}

/// Lowers one op into a uniform phase spec: `groups` fold groups (one per
/// parallel sweep of the arrays, across repetitions), each computing
/// `per_fold` cycles and fetching its share of the op's compressed
/// stationary-weight traffic.
pub fn op_phase_spec(
    acc: &Accelerator,
    workload: &Workload,
    op: &GemmOp,
    dataset: Dataset,
) -> PhaseSpec {
    let (r_a, r_w) = acc.overheads(workload, op, dataset);
    let b = cycle_model::cycles_with_overhead(acc.array(), op.m, op.k, op.n, r_a, r_w);
    let total_folds = b.folds.saturating_mul(op.count);
    let groups = if total_folds == 0 {
        0
    } else {
        total_folds.div_ceil(acc.array().num_arrays.max(1) as u64)
    };
    let bpe = acc.bytes_per_element(workload, op, dataset);
    let weight_bytes = (op.weight_elements() as f64 * bpe.weight * op.count as f64).ceil() as u64;
    let (tile_bytes, outliers) = if groups == 0 {
        (0, 0)
    } else {
        let per_group_elements = (op.weight_elements() * op.count).div_ceil(groups);
        (
            weight_bytes.div_ceil(groups),
            tile_outlier_entries(
                per_group_elements,
                acc.outlier_storage_rate(workload, op, dataset),
            ),
        )
    };
    PhaseSpec {
        label: format!("{:?}/{}", op.phase, op.kind).to_lowercase(),
        class: phase_class(op.phase),
        groups,
        compute_cycles_per_group: b.per_fold,
        tile_bytes_per_group: tile_bytes,
        outliers_per_group: outliers,
        // Activations and outputs stream through small staging buffers
        // rather than residing whole; their energy is already booked by
        // the closed-form model, so the tile budget sees only weights.
        resident_bytes: 0,
        macs: op.macs(),
    }
}

/// Co-simulates one op and returns its phase result.
pub fn op_cosim(
    acc: &Accelerator,
    workload: &Workload,
    op: &GemmOp,
    dataset: Dataset,
) -> PhaseResult {
    engine_for(acc).run_phase(&op_phase_spec(acc, workload, op, dataset))
}

/// Wall-clock seconds of one op under the co-sim makespan — the drop-in
/// replacement for pricing via `op_report(..).cycles`.
pub fn op_cosim_seconds(
    acc: &Accelerator,
    workload: &Workload,
    op: &GemmOp,
    dataset: Dataset,
) -> f64 {
    let engine = engine_for(acc);
    let r = engine.run_phase(&op_phase_spec(acc, workload, op, dataset));
    engine.seconds(r.makespan)
}

/// Co-simulates a whole workload and aggregates the per-op results into a
/// roofline report (per-phase-class verdicts included).
pub fn cosim_workload(acc: &Accelerator, workload: &Workload, dataset: Dataset) -> RooflineReport {
    let engine = engine_for(acc);
    let results = workload
        .ops
        .iter()
        .map(|op| engine.run_phase(&op_phase_spec(acc, workload, op, dataset)))
        .collect();
    RooflineReport::new(&acc.design().memory, engine.clock_hz(), results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_model::{workload, ModelId};

    const PAPER_BATCH: usize = 32;

    #[test]
    fn lowered_compute_cycles_match_the_closed_form_model() {
        let wl = workload::generation_workload(ModelId::Llama2_7b, PAPER_BATCH, 128, 64);
        let acc = Accelerator::owlp();
        for op in &wl.ops {
            let spec = op_phase_spec(&acc, &wl, op, Dataset::WikiText2);
            let rep = acc.op_report(&wl, op, Dataset::WikiText2);
            assert_eq!(
                spec.groups * spec.compute_cycles_per_group,
                rep.compute_cycles,
                "{}",
                spec.label
            );
        }
    }

    #[test]
    fn decode_is_memory_bound_and_prefill_compute_bound_at_paper_defaults() {
        let wl = workload::generation_workload(ModelId::Llama2_7b, PAPER_BATCH, 128, 64);
        let acc = Accelerator::owlp();
        let report = cosim_workload(&acc, &wl, Dataset::WikiText2);
        let dec = report.class_aggregate(PhaseClass::Decode).unwrap();
        let pre = report.class_aggregate(PhaseClass::Prefill).unwrap();
        assert!(dec.memory_bound, "decode must be bandwidth-bound");
        assert!(!pre.memory_bound, "prefill must be compute-bound");
        assert!(report.bytes_conserved());
        // The bandwidth-bound phase streams near the roof.
        assert!(dec.achieved_gbps > 0.5 * report.peak_gbps);
        assert!(dec.achieved_gbps <= report.peak_gbps + 1e-9);
    }

    #[test]
    fn cosim_memory_never_beats_the_closed_form_transfer() {
        let wl = workload::generation_workload(ModelId::Gpt2Base, 8, 64, 32);
        for acc in [Accelerator::owlp(), Accelerator::baseline()] {
            let engine = engine_for(&acc);
            for op in &wl.ops {
                let r = op_cosim(&acc, &wl, op, Dataset::WikiText2);
                let closed = engine.transfer_cycles(r.fetched_bytes);
                assert!(
                    r.memory_cycles >= closed - 1e-6 * closed.max(1.0),
                    "{}: {} < {closed}",
                    r.label,
                    r.memory_cycles
                );
                assert!(r.prologue >= 0.0);
                assert!(r.conserves_bytes());
            }
        }
    }

    #[test]
    fn op_seconds_track_the_closed_form_price_within_the_overlap_slack() {
        // The co-sim price and the closed-form price agree on the
        // dominant term; they differ only in prologue/epilogue handling
        // and channel quantisation, so the ratio stays near 1.
        let wl = workload::generation_workload(ModelId::Llama2_7b, PAPER_BATCH, 128, 16);
        let acc = Accelerator::owlp();
        for op in &wl.ops {
            let cosim = op_cosim_seconds(&acc, &wl, op, Dataset::WikiText2);
            let closed = acc.seconds_for(acc.op_report(&wl, op, Dataset::WikiText2).cycles);
            let ratio = cosim / closed;
            assert!(
                (0.45..=2.2).contains(&ratio),
                "{}: cosim {cosim} vs closed {closed}",
                op.kind
            );
        }
    }

    #[test]
    fn compression_raises_decode_throughput_on_the_same_roofline() {
        // The paper's core serving claim: decode makespan scales with the
        // bytes moved, so the ~1.39× traffic compression shows up as a
        // proportionally shorter decode phase.
        let wl = workload::generation_workload(ModelId::Llama2_7b, PAPER_BATCH, 128, 16);
        let base = cosim_workload(&Accelerator::baseline(), &wl, Dataset::WikiText2);
        let owlp = cosim_workload(&Accelerator::owlp(), &wl, Dataset::WikiText2);
        let bd = base.class_aggregate(PhaseClass::Decode).unwrap();
        let od = owlp.class_aggregate(PhaseClass::Decode).unwrap();
        assert!(od.fetched_bytes < bd.fetched_bytes);
        // Same 500 MHz clock on both designs: compare cycles directly.
        assert_eq!(base.clock_hz, owlp.clock_hz);
        let traffic_ratio = bd.fetched_bytes as f64 / od.fetched_bytes as f64;
        let speedup = bd.makespan / od.makespan;
        assert!(
            speedup > 0.8 * traffic_ratio,
            "{speedup} vs {traffic_ratio}"
        );
    }
}
