//! Serving-level metrics: translate simulated cycles into the numbers an
//! inference-serving operator cares about — tokens/second, time per output
//! token, time to first token — for the generation workloads.

use crate::accel::Accelerator;
use crate::report::SimulationReport;
use owlp_model::{workload, Dataset, GemmOp, ModelId, OpClass, Phase, Workload};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why serving metrics could not be derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServingError {
    /// `gen_len == 0`: there are no output tokens to account time to.
    ZeroGenerationLength,
    /// `workload.batch == 0`: there are no sequences.
    ZeroBatch,
    /// The report covers no simulated time (an empty workload, or a
    /// simulation that produced zero cycles), so every rate is undefined.
    ZeroDuration,
}

impl fmt::Display for ServingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServingError::ZeroGenerationLength => "generation length is zero",
            ServingError::ZeroBatch => "workload batch is zero",
            ServingError::ZeroDuration => "simulation report covers zero seconds",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ServingError {}

/// Serving metrics derived from a generation-workload simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Workload name.
    pub workload: String,
    /// Design name.
    pub design: String,
    /// Generated tokens per second, across the whole batch.
    pub tokens_per_second: f64,
    /// Mean time per output token per sequence, milliseconds.
    pub time_per_output_token_ms: f64,
    /// Time to first token (the prefill share of the run), milliseconds.
    pub time_to_first_token_ms: f64,
    /// End-to-end seconds.
    pub total_seconds: f64,
}

/// Derives serving metrics from a generation simulation.
///
/// `batch` sequences each produce `gen_len` tokens. Prefill time (TTFT) is
/// the MAC-weighted share of the ops tagged [`Phase::Prefill`]; decode-only
/// workloads (no prompt, or a one-token prompt, which is decode-shaped)
/// therefore report a TTFT of exactly zero. Untagged workloads (all ops
/// [`Phase::Single`], e.g. hand-built streams) fall back to the `M > batch`
/// shape heuristic.
///
/// # Errors
///
/// [`ServingError::ZeroGenerationLength`] / [`ServingError::ZeroBatch`] on
/// degenerate arguments, and [`ServingError::ZeroDuration`] when the report
/// covers no simulated time (rates would divide by zero).
pub fn serving_metrics(
    report: &SimulationReport,
    workload: &Workload,
    gen_len: usize,
) -> Result<ServingMetrics, ServingError> {
    if gen_len == 0 {
        return Err(ServingError::ZeroGenerationLength);
    }
    if workload.batch == 0 {
        return Err(ServingError::ZeroBatch);
    }
    if report.seconds <= 0.0 {
        return Err(ServingError::ZeroDuration);
    }
    let total_tokens = (workload.batch * gen_len) as f64;
    let tagged = workload.ops.iter().any(|o| o.phase != Phase::Single);
    let is_prefill = |o: &&GemmOp| {
        if tagged {
            o.phase == Phase::Prefill
        } else {
            o.m > workload.batch
        }
    };
    let prefill_macs: u64 = workload
        .ops
        .iter()
        .filter(is_prefill)
        .map(|o| o.macs())
        .sum();
    let total_macs: u64 = workload.ops.iter().map(|o| o.macs()).sum();
    let prefill_fraction = if total_macs == 0 {
        0.0
    } else {
        prefill_macs as f64 / total_macs as f64
    };
    let ttft = report.seconds * prefill_fraction;
    let decode_seconds = report.seconds - ttft;
    Ok(ServingMetrics {
        workload: report.workload.clone(),
        design: report.design.clone(),
        tokens_per_second: total_tokens / report.seconds,
        time_per_output_token_ms: decode_seconds / gen_len as f64 * 1e3,
        time_to_first_token_ms: ttft * 1e3,
        total_seconds: report.seconds,
    })
}

/// Convenience: simulate and derive metrics in one call.
///
/// # Panics
///
/// Panics if `gen_len == 0` or `batch == 0` (propagated from the workload
/// builder and [`serving_metrics`]).
pub fn simulate_serving(
    acc: &Accelerator,
    model: ModelId,
    batch: usize,
    prompt_len: usize,
    gen_len: usize,
    dataset: Dataset,
) -> ServingMetrics {
    let wl = workload::generation_workload(model, batch, prompt_len, gen_len);
    let report = acc.simulate(&wl, dataset);
    serving_metrics(&report, &wl, gen_len).expect("generation workload yields valid metrics")
}

/// Cost of one workload op through the accelerator model — one row of the
/// per-op cost table a serving scheduler prices iterations with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct OpCost {
    /// The op (shape, repetitions, phase).
    pub op: GemmOp,
    /// Effective cycles across all repetitions (compute/transfer overlap).
    pub cycles: u64,
    /// Pure compute cycles.
    pub compute_cycles: u64,
    /// Wall-clock seconds at the design's frequency.
    pub seconds: f64,
}

/// Per-op cycle costs of a workload on one design point.
///
/// Unlike [`Accelerator::simulate`], which folds everything into per-class
/// totals, this keeps one entry per op so a scheduler can price individual
/// prefill/decode iterations (and cache by shape).
pub fn op_costs(acc: &Accelerator, workload: &Workload, dataset: Dataset) -> Vec<OpCost> {
    workload
        .ops
        .iter()
        .map(|op| {
            let r = acc.op_report(workload, op, dataset);
            OpCost {
                op: *op,
                cycles: r.cycles,
                compute_cycles: r.compute_cycles,
                seconds: acc.seconds_for(r.cycles),
            }
        })
        .collect()
}

/// Share of decode time spent in attention — grows with context length and
/// is the long-context bottleneck both designs share.
pub fn attention_share(report: &SimulationReport) -> f64 {
    report.class_cycle_share(OpClass::Attention)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_serves_more_tokens_per_second() {
        let base = simulate_serving(
            &Accelerator::baseline(),
            ModelId::Gpt2Base,
            32,
            128,
            256,
            Dataset::WikiText2,
        );
        let owlp = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Gpt2Base,
            32,
            128,
            256,
            Dataset::WikiText2,
        );
        assert!(owlp.tokens_per_second > 2.0 * base.tokens_per_second);
        assert!(owlp.time_per_output_token_ms < base.time_per_output_token_ms);
        assert!(owlp.time_to_first_token_ms < base.time_to_first_token_ms);
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let m = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Llama2_7b,
            32,
            128,
            512,
            Dataset::WikiText2,
        );
        // tokens/s × total time ≈ batch × gen.
        let tokens = m.tokens_per_second * m.total_seconds;
        assert!((tokens - (32.0 * 512.0)).abs() < 1.0, "{tokens}");
        // TTFT + decode time = total.
        let decode = m.time_per_output_token_ms * 512.0 / 1e3;
        assert!((m.time_to_first_token_ms / 1e3 + decode - m.total_seconds).abs() < 1e-9);
    }

    #[test]
    fn longer_prompts_increase_ttft() {
        let short = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Gpt2Base,
            8,
            32,
            64,
            Dataset::WikiText2,
        );
        let long = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Gpt2Base,
            8,
            512,
            64,
            Dataset::WikiText2,
        );
        assert!(long.time_to_first_token_ms > 2.0 * short.time_to_first_token_ms);
    }

    #[test]
    fn degenerate_inputs_are_typed_errors() {
        let wl = workload::generation_workload(ModelId::Gpt2Base, 4, 16, 8);
        let report = Accelerator::owlp().simulate(&wl, Dataset::WikiText2);
        assert_eq!(
            serving_metrics(&report, &wl, 0),
            Err(ServingError::ZeroGenerationLength)
        );
        let mut empty_batch = wl.clone();
        empty_batch.batch = 0;
        assert_eq!(
            serving_metrics(&report, &empty_batch, 8),
            Err(ServingError::ZeroBatch)
        );
        // A fresh report has zero duration: rates are undefined, not inf.
        let blank = SimulationReport::new("d", "w");
        assert_eq!(
            serving_metrics(&blank, &wl, 8),
            Err(ServingError::ZeroDuration)
        );
        assert!(ServingError::ZeroDuration.to_string().contains("zero"));
    }

    #[test]
    fn decode_only_workloads_have_zero_ttft() {
        // A one-token prompt is decode-shaped; the old `M > batch`
        // heuristic handled it inconsistently across batch sizes.
        for (batch, prompt) in [(1usize, 1usize), (8, 1), (32, 1), (4, 0)] {
            let m = simulate_serving(
                &Accelerator::owlp(),
                ModelId::Gpt2Base,
                batch,
                prompt,
                64,
                Dataset::WikiText2,
            );
            assert_eq!(m.time_to_first_token_ms, 0.0, "batch {batch}");
            assert!(
                m.time_per_output_token_ms.is_finite() && m.time_per_output_token_ms > 0.0,
                "batch {batch}"
            );
            // With no prefill, decode accounts for the whole run.
            let decode = m.time_per_output_token_ms * 64.0 / 1e3;
            assert!((decode - m.total_seconds).abs() < 1e-12);
        }
    }

    #[test]
    fn short_prompts_still_attribute_prefill_time() {
        // prompt < batch: the shape heuristic dropped the prompt-attention
        // ops (M = prompt ≤ batch) from TTFT; phase tags keep them.
        let wl = workload::generation_workload(ModelId::Gpt2Base, 32, 16, 64);
        let report = Accelerator::owlp().simulate(&wl, Dataset::WikiText2);
        let m = serving_metrics(&report, &wl, 64).unwrap();
        assert!(m.time_to_first_token_ms > 0.0);
        let tagged: u64 = wl
            .ops
            .iter()
            .filter(|o| o.phase == owlp_model::Phase::Prefill)
            .map(|o| o.macs())
            .sum();
        let heuristic: u64 = wl
            .ops
            .iter()
            .filter(|o| o.m > wl.batch)
            .map(|o| o.macs())
            .sum();
        assert!(tagged > heuristic, "{tagged} vs {heuristic}");
    }

    #[test]
    fn op_costs_sum_to_simulated_total() {
        let wl = workload::generation_workload(ModelId::Gpt2Base, 8, 64, 32);
        let acc = Accelerator::owlp();
        let report = acc.simulate(&wl, Dataset::WikiText2);
        let costs = op_costs(&acc, &wl, Dataset::WikiText2);
        assert_eq!(costs.len(), wl.ops.len());
        let cycle_sum: u64 = costs.iter().map(|c| c.cycles).sum();
        assert_eq!(cycle_sum, report.cycles);
        let sec_sum: f64 = costs.iter().map(|c| c.seconds).sum();
        assert!((sec_sum - report.seconds).abs() < 1e-9);
    }

    #[test]
    fn throughput_is_plausible_for_the_hardware() {
        // GPT2-Base on a 16k-MAC 500 MHz engine: thousands of tokens/s at
        // batch 32, not millions and not single digits.
        let base = simulate_serving(
            &Accelerator::baseline(),
            ModelId::Gpt2Base,
            32,
            128,
            256,
            Dataset::WikiText2,
        );
        assert!(
            (100.0..5_000_000.0).contains(&base.tokens_per_second),
            "{}",
            base.tokens_per_second
        );
    }
}
