//! Serving-level metrics: translate simulated cycles into the numbers an
//! inference-serving operator cares about — tokens/second, time per output
//! token, time to first token — for the generation workloads.

use crate::accel::Accelerator;
use crate::report::SimulationReport;
use owlp_model::{workload, Dataset, ModelId, OpClass, Workload};
use serde::{Deserialize, Serialize};

/// Serving metrics derived from a generation-workload simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingMetrics {
    /// Workload name.
    pub workload: String,
    /// Design name.
    pub design: String,
    /// Generated tokens per second, across the whole batch.
    pub tokens_per_second: f64,
    /// Mean time per output token per sequence, milliseconds.
    pub time_per_output_token_ms: f64,
    /// Time to first token (the prefill share of the run), milliseconds.
    pub time_to_first_token_ms: f64,
    /// End-to-end seconds.
    pub total_seconds: f64,
}

/// Derives serving metrics from a generation simulation.
///
/// `batch` sequences each produce `gen_len` tokens; prefill time is
/// attributed from the large-`M` ops' cycle share (those are the
/// prompt-processing GEMMs).
///
/// # Panics
///
/// Panics if `gen_len == 0` or `batch == 0`.
pub fn serving_metrics(
    report: &SimulationReport,
    workload: &Workload,
    gen_len: usize,
) -> ServingMetrics {
    assert!(gen_len > 0, "generation length must be positive");
    assert!(workload.batch > 0, "batch must be positive");
    let total_tokens = (workload.batch * gen_len) as f64;
    // Prefill ops are the ones with M > batch (whole-prompt GEMMs) or
    // attention over the prompt with M == prompt length (> 1).
    let prefill_macs: u64 = workload
        .ops
        .iter()
        .filter(|o| o.m > workload.batch)
        .map(|o| o.macs())
        .sum();
    let total_macs: u64 = workload.ops.iter().map(|o| o.macs()).sum();
    let prefill_fraction = if total_macs == 0 {
        0.0
    } else {
        prefill_macs as f64 / total_macs as f64
    };
    let ttft = report.seconds * prefill_fraction;
    let decode_seconds = report.seconds - ttft;
    ServingMetrics {
        workload: report.workload.clone(),
        design: report.design.clone(),
        tokens_per_second: total_tokens / report.seconds.max(f64::MIN_POSITIVE),
        time_per_output_token_ms: decode_seconds / gen_len as f64 * 1e3,
        time_to_first_token_ms: ttft * 1e3,
        total_seconds: report.seconds,
    }
}

/// Convenience: simulate and derive metrics in one call.
pub fn simulate_serving(
    acc: &Accelerator,
    model: ModelId,
    batch: usize,
    prompt_len: usize,
    gen_len: usize,
    dataset: Dataset,
) -> ServingMetrics {
    let wl = workload::generation_workload(model, batch, prompt_len, gen_len);
    let report = acc.simulate(&wl, dataset);
    serving_metrics(&report, &wl, gen_len)
}

/// Share of decode time spent in attention — grows with context length and
/// is the long-context bottleneck both designs share.
pub fn attention_share(report: &SimulationReport) -> f64 {
    report.class_cycle_share(OpClass::Attention)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owlp_serves_more_tokens_per_second() {
        let base = simulate_serving(
            &Accelerator::baseline(),
            ModelId::Gpt2Base,
            32,
            128,
            256,
            Dataset::WikiText2,
        );
        let owlp = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Gpt2Base,
            32,
            128,
            256,
            Dataset::WikiText2,
        );
        assert!(owlp.tokens_per_second > 2.0 * base.tokens_per_second);
        assert!(owlp.time_per_output_token_ms < base.time_per_output_token_ms);
        assert!(owlp.time_to_first_token_ms < base.time_to_first_token_ms);
    }

    #[test]
    fn metrics_are_internally_consistent() {
        let m = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Llama2_7b,
            32,
            128,
            512,
            Dataset::WikiText2,
        );
        // tokens/s × total time ≈ batch × gen.
        let tokens = m.tokens_per_second * m.total_seconds;
        assert!((tokens - (32.0 * 512.0)).abs() < 1.0, "{tokens}");
        // TTFT + decode time = total.
        let decode = m.time_per_output_token_ms * 512.0 / 1e3;
        assert!((m.time_to_first_token_ms / 1e3 + decode - m.total_seconds).abs() < 1e-9);
    }

    #[test]
    fn longer_prompts_increase_ttft() {
        let short = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Gpt2Base,
            8,
            32,
            64,
            Dataset::WikiText2,
        );
        let long = simulate_serving(
            &Accelerator::owlp(),
            ModelId::Gpt2Base,
            8,
            512,
            64,
            Dataset::WikiText2,
        );
        assert!(long.time_to_first_token_ms > 2.0 * short.time_to_first_token_ms);
    }

    #[test]
    fn throughput_is_plausible_for_the_hardware() {
        // GPT2-Base on a 16k-MAC 500 MHz engine: thousands of tokens/s at
        // batch 32, not millions and not single digits.
        let base = simulate_serving(
            &Accelerator::baseline(),
            ModelId::Gpt2Base,
            32,
            128,
            256,
            Dataset::WikiText2,
        );
        assert!(
            (100.0..5_000_000.0).contains(&base.tokens_per_second),
            "{}",
            base.tokens_per_second
        );
    }
}
