//! Simulation reports and design-point comparisons (paper Fig. 11).

use owlp_hw::EnergyBreakdown;
use owlp_model::OpClass;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-operation-class totals — one stacked-bar segment of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClassReport {
    /// Effective cycles (compute/bandwidth bound, whichever dominates).
    pub cycles: u64,
    /// Pure compute cycles (Eq. 4).
    pub compute_cycles: u64,
    /// Useful MACs.
    pub macs: u64,
    /// Off-chip bytes moved.
    pub dram_bytes: u64,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl ClassReport {
    fn add(&mut self, other: &ClassReport) {
        self.cycles += other.cycles;
        self.compute_cycles += other.compute_cycles;
        self.macs += other.macs;
        self.dram_bytes += other.dram_bytes;
        self.energy.add(&other.energy);
    }
}

/// Full result of simulating one workload on one design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationReport {
    /// Design-point name.
    pub design: String,
    /// Workload name.
    pub workload: String,
    /// Total effective cycles.
    pub cycles: u64,
    /// Wall-clock seconds at the design's frequency.
    pub seconds: f64,
    /// Total off-chip traffic, bytes.
    pub dram_bytes: u64,
    /// Total energy.
    pub energy: EnergyBreakdown,
    /// Per-class breakdown.
    pub per_class: BTreeMap<OpClass, ClassReport>,
    /// Workload-average activation scheduling overhead (MAC-weighted).
    pub avg_r_a: f64,
    /// Workload-average weight scheduling overhead (MAC-weighted).
    pub avg_r_w: f64,
}

impl SimulationReport {
    /// Creates an empty report.
    pub fn new(design: &str, workload: &str) -> Self {
        SimulationReport {
            design: design.to_string(),
            workload: workload.to_string(),
            cycles: 0,
            seconds: 0.0,
            dram_bytes: 0,
            energy: EnergyBreakdown::default(),
            per_class: BTreeMap::new(),
            avg_r_a: 1.0,
            avg_r_w: 1.0,
        }
    }

    /// Folds one class contribution in.
    pub fn accumulate(&mut self, class: OpClass, c: &ClassReport) {
        self.cycles += c.cycles;
        self.dram_bytes += c.dram_bytes;
        self.energy.add(&c.energy);
        self.per_class.entry(class).or_default().add(c);
    }

    /// Fraction of total cycles in one class (0 when empty).
    pub fn class_cycle_share(&self, class: OpClass) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.per_class.get(&class).map(|c| c.cycles).unwrap_or(0) as f64 / self.cycles as f64
    }
}

/// Relative comparison of two design points on the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// `baseline.cycles / owlp.cycles` (the paper's performance gain).
    pub speedup: f64,
    /// `baseline.energy / owlp.energy` (the paper's energy savings).
    pub energy_ratio: f64,
    /// `baseline.dram_bytes / owlp.dram_bytes` (compression effect).
    pub traffic_ratio: f64,
    /// OwL-P cycles normalised to baseline per class (Fig. 11a bars).
    pub relative_cycles_per_class: BTreeMap<OpClass, f64>,
}

impl Comparison {
    /// Compares a baseline report against an OwL-P report.
    ///
    /// # Panics
    ///
    /// Panics if the reports cover different workloads.
    pub fn between(baseline: &SimulationReport, owlp: &SimulationReport) -> Comparison {
        assert_eq!(baseline.workload, owlp.workload, "mismatched workloads");
        let mut relative = BTreeMap::new();
        for class in OpClass::ALL {
            let b = baseline
                .per_class
                .get(&class)
                .map(|c| c.cycles)
                .unwrap_or(0);
            let o = owlp.per_class.get(&class).map(|c| c.cycles).unwrap_or(0);
            if b > 0 {
                relative.insert(class, o as f64 / b as f64);
            }
        }
        Comparison {
            workload: baseline.workload.clone(),
            speedup: baseline.cycles as f64 / owlp.cycles.max(1) as f64,
            energy_ratio: baseline.energy.total_j() / owlp.energy.total_j().max(f64::MIN_POSITIVE),
            traffic_ratio: baseline.dram_bytes as f64 / owlp.dram_bytes.max(1) as f64,
            relative_cycles_per_class: relative,
        }
    }
}

/// Geometric mean over comparisons, for headline averages.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn class_report(cycles: u64, macs: u64) -> ClassReport {
        ClassReport {
            cycles,
            compute_cycles: cycles,
            macs,
            dram_bytes: 100,
            energy: Default::default(),
        }
    }

    #[test]
    fn accumulate_totals_and_classes() {
        let mut r = SimulationReport::new("d", "w");
        r.accumulate(OpClass::Qkv, &class_report(10, 5));
        r.accumulate(OpClass::Ffn, &class_report(30, 15));
        r.accumulate(OpClass::Qkv, &class_report(10, 5));
        assert_eq!(r.cycles, 50);
        assert_eq!(r.per_class[&OpClass::Qkv].cycles, 20);
        assert!((r.class_cycle_share(OpClass::Ffn) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn comparison_ratios() {
        let mut b = SimulationReport::new("base", "w");
        b.accumulate(OpClass::Qkv, &class_report(300, 1));
        let mut o = SimulationReport::new("owlp", "w");
        o.accumulate(OpClass::Qkv, &class_report(100, 1));
        let c = Comparison::between(&b, &o);
        assert!((c.speedup - 3.0).abs() < 1e-12);
        assert!((c.relative_cycles_per_class[&OpClass::Qkv] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "mismatched workloads")]
    fn comparison_requires_same_workload() {
        let b = SimulationReport::new("base", "w1");
        let o = SimulationReport::new("owlp", "w2");
        let _ = Comparison::between(&b, &o);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty::<f64>()), 1.0);
    }

    #[test]
    fn empty_report_shares() {
        let r = SimulationReport::new("d", "w");
        assert_eq!(r.class_cycle_share(OpClass::Qkv), 0.0);
    }
}
