//! Roofline analysis of the two design points.
//!
//! The paper's performance story is a roofline story: the baseline's decode
//! GEMMs sit left of the ridge (bandwidth-bound), OwL-P raises the
//! bandwidth roof by compressing traffic (×~1.4) and the compute roof by
//! tripling MACs. This module computes arithmetic intensity and attainable
//! throughput per GEMM op, so the claim can be examined op by op.

use crate::accel::Accelerator;
use owlp_model::profiles::Dataset;
use owlp_model::{GemmOp, Workload};
use serde::{Deserialize, Serialize};

/// Roofline placement of one op on one design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Op kind string (for reporting).
    pub op: String,
    /// Arithmetic intensity: MACs per off-chip byte.
    pub intensity: f64,
    /// The ridge point of the design (MACs/byte where compute = bandwidth).
    pub ridge: f64,
    /// Attainable MAC throughput (MACs/cycle, capped by both roofs).
    pub attainable: f64,
    /// Whether the op is bandwidth-bound on this design.
    pub memory_bound: bool,
}

/// Computes the ridge point of a design: peak MACs/cycle divided by
/// off-chip bytes/cycle.
pub fn ridge_point(acc: &Accelerator) -> f64 {
    let macs_per_cycle = acc.array().total_macs() as f64;
    let bytes_per_cycle = acc.design().memory.offchip_bytes_per_s / (acc.array().clock_mhz * 1e6);
    macs_per_cycle / bytes_per_cycle
}

/// Places every op of a workload on the design's roofline.
pub fn analyze(acc: &Accelerator, workload: &Workload, dataset: Dataset) -> Vec<RooflinePoint> {
    let ridge = ridge_point(acc);
    let macs_per_cycle = acc.array().total_macs() as f64;
    let bytes_per_cycle = acc.design().memory.offchip_bytes_per_s / (acc.array().clock_mhz * 1e6);
    workload
        .ops
        .iter()
        .map(|op| {
            let bytes = op_bytes(acc, workload, op, dataset);
            let intensity = if bytes == 0.0 {
                f64::INFINITY
            } else {
                (op.macs() / op.count.max(1)) as f64 / bytes
            };
            let attainable = macs_per_cycle.min(intensity * bytes_per_cycle);
            RooflinePoint {
                op: format!("{} {}x{}x{}", op.kind, op.m, op.k, op.n),
                intensity,
                ridge,
                attainable,
                memory_bound: intensity < ridge,
            }
        })
        .collect()
}

/// Off-chip bytes of one repetition of `op` on this design (compressed for
/// OwL-P, raw BF16 for the baseline) — mirrors the simulator's traffic
/// model.
fn op_bytes(acc: &Accelerator, workload: &Workload, op: &GemmOp, dataset: Dataset) -> f64 {
    // Reuse the simulator's accounting through a single-op probe.
    let probe = Workload {
        name: String::from("probe"),
        model: workload.model,
        batch: workload.batch,
        ops: vec![GemmOp { count: 1, ..*op }],
    };
    let rep = acc.simulate(&probe, dataset);
    rep.dram_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_model::{workload, ModelId};

    #[test]
    fn ridge_points_differ_as_expected() {
        // OwL-P has 3× the compute on the same link: its ridge is 3× higher
        // — it needs more intensity to stay compute-bound, which the
        // compressed format partially gives back.
        let rb = ridge_point(&Accelerator::baseline());
        let ro = ridge_point(&Accelerator::owlp());
        assert!((ro / rb - 3.0).abs() < 1e-9, "{ro} vs {rb}");
        // Baseline ridge: 16384 MACs/cycle ÷ 512 B/cycle = 32 MACs/B.
        assert!((rb - 32.0).abs() < 1e-9, "{rb}");
    }

    #[test]
    fn decode_gemms_are_memory_bound_prefill_is_not() {
        let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 128, 8);
        let acc = Accelerator::baseline();
        let points = analyze(&acc, &wl, Dataset::WikiText2);
        // Decode QKV (m = 32): intensity = 32 MACs/weight-element / 2 B =
        // 16 MACs/B < ridge 32 → memory-bound.
        let decode = points
            .iter()
            .find(|p| p.op.starts_with("qkv_proj 32x"))
            .unwrap();
        assert!(decode.memory_bound, "{decode:?}");
        // Prefill QKV (m = 128×32): far right of the ridge.
        let prefill = points
            .iter()
            .find(|p| p.op.starts_with("qkv_proj 4096x"))
            .unwrap();
        assert!(!prefill.memory_bound, "{prefill:?}");
        assert!(prefill.attainable > decode.attainable);
    }

    #[test]
    fn compression_raises_attainable_throughput_when_memory_bound() {
        let wl = workload::generation_workload(ModelId::Llama2_7b, 32, 0, 4);
        let base_points = analyze(&Accelerator::baseline(), &wl, Dataset::WikiText2);
        let owlp_points = analyze(&Accelerator::owlp(), &wl, Dataset::WikiText2);
        let b = base_points
            .iter()
            .find(|p| p.op.starts_with("qkv_proj 32x"))
            .unwrap();
        let o = owlp_points
            .iter()
            .find(|p| p.op.starts_with("qkv_proj 32x"))
            .unwrap();
        // Same MAC work per rep, fewer bytes → higher intensity on OwL-P.
        assert!(
            o.intensity > 1.25 * b.intensity,
            "{} vs {}",
            o.intensity,
            b.intensity
        );
    }
}
