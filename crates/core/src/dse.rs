//! Design-space exploration of the OwL-P array organisation.
//!
//! The paper fixes the MAC budget (3× the baseline in equal area) but not
//! the array organisation. This module sweeps candidate organisations —
//! (rows, cols, lanes, arrays, outlier-path split) — under the same MAC
//! budget, evaluates each on a representative workload mix, and reports
//! the Pareto view. The tests confirm the organisation chosen in
//! `ArrayConfig::OWLP_PAPER` sits near the swept optimum. (The cycle model
//! charges no per-array control/buffering/interconnect overhead, so the
//! sweep mildly favours ever-more, ever-smaller arrays; a real floorplan
//! pushes back — which is why the chosen 48×(4×32) point, not the
//! degenerate 96×(2×32) one, is the sensible pick.)

use crate::accel::Accelerator;
use crate::report::geomean;
use crate::workloads;
use owlp_systolic::ArrayConfig;
use serde::{Deserialize, Serialize};

/// One explored design candidate with its evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// Array geometry.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Lanes per PE.
    pub lanes: usize,
    /// Independent arrays.
    pub num_arrays: usize,
    /// Total MACs (constant across the sweep).
    pub total_macs: usize,
    /// Geometric-mean speedup over the FP baseline on the workload mix.
    pub speedup: f64,
}

/// Enumerates organisations with exactly `mac_budget` MACs, `lanes = 8`,
/// power-of-two rows/cols, and a 32-element column reduction tile or
/// larger (the scheduler's calibration needs ≥ one PE row of 8 lanes).
pub fn candidates(mac_budget: usize) -> Vec<ArrayConfig> {
    let lanes = 8usize;
    let mut out = Vec::new();
    for rows_pow in 0..=5 {
        let rows = 1usize << rows_pow;
        for cols_pow in 2..=7 {
            let cols = 1usize << cols_pow;
            let per_array = rows * cols * lanes;
            if !mac_budget.is_multiple_of(per_array) {
                continue;
            }
            let num_arrays = mac_budget / per_array;
            if !(1..=128).contains(&num_arrays) {
                continue;
            }
            out.push(ArrayConfig {
                rows,
                cols,
                lanes,
                num_arrays,
                act_outlier_paths: 2,
                weight_outlier_paths: 2,
                clock_mhz: 500.0,
            });
        }
    }
    out
}

/// Evaluates every candidate on a fast workload mix (one encoder + one
/// short generation workload) and returns candidates sorted by descending
/// speedup.
pub fn explore(mac_budget: usize) -> Vec<Candidate> {
    let baseline = Accelerator::baseline();
    // A reduced mix keeps the sweep fast while covering both regimes.
    let mix = [
        workloads::paper_workloads().remove(0), // BERT-Base 512 (compute-bound)
        owlp_model::workload::generation_workload(owlp_model::ModelId::Llama2_7b, 32, 128, 64), // decode-heavy
    ];
    let base_reports: Vec<_> = mix
        .iter()
        .map(|wl| baseline.simulate(wl, workloads::default_dataset(wl.model)))
        .collect();
    let mut out: Vec<Candidate> = candidates(mac_budget)
        .into_iter()
        .map(|cfg| {
            let acc = Accelerator::owlp_with_array(cfg);
            let speedups: Vec<f64> = mix
                .iter()
                .zip(&base_reports)
                .map(|(wl, base)| {
                    let r = acc.simulate(wl, workloads::default_dataset(wl.model));
                    base.cycles as f64 / r.cycles.max(1) as f64
                })
                .collect();
            Candidate {
                rows: cfg.rows,
                cols: cfg.cols,
                lanes: cfg.lanes,
                num_arrays: cfg.num_arrays,
                total_macs: cfg.total_macs(),
                speedup: geomean(speedups),
            }
        })
        .collect();
    out.sort_by(|a, b| {
        b.speedup
            .partial_cmp(&a.speedup)
            .expect("speedups are finite")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_candidates_hold_the_mac_budget() {
        let cs = candidates(49_152);
        assert!(cs.len() >= 8, "sweep too small: {}", cs.len());
        for c in &cs {
            assert_eq!(c.total_macs(), 49_152);
            assert_eq!(c.lanes, 8);
        }
    }

    #[test]
    fn paper_organisation_is_near_the_swept_optimum() {
        let ranked = explore(49_152);
        let best = &ranked[0];
        let pos = ranked
            .iter()
            .position(|c| c.rows == 4 && c.cols == 32 && c.num_arrays == 48)
            .expect("the chosen organisation is in the sweep");
        let paper = &ranked[pos];
        // Within 15 % of the (control-overhead-free) optimum and in the
        // upper half of the ranking.
        assert!(
            paper.speedup >= 0.85 * best.speedup,
            "chosen {paper:?} vs best {best:?}"
        );
        assert!(pos < ranked.len() / 2, "rank {pos} of {}", ranked.len());
        // The un-modelled optimum is the degenerate many-tiny-arrays point.
        assert!(best.num_arrays >= paper.num_arrays);
    }

    #[test]
    fn very_deep_arrays_lose_on_decode() {
        // rows=32 (k_tile 256) has huge fill overhead for M=32 decode and a
        // 256-element wavefront for scheduling: it must rank below the
        // shallow organisations.
        let ranked = explore(49_152);
        let deep = ranked.iter().find(|c| c.rows >= 16);
        if let Some(deep) = deep {
            assert!(deep.speedup < ranked[0].speedup, "{deep:?}");
        }
    }
}
