//! # owlp-core
//!
//! The OwL-P accelerator simulator: end-to-end performance, energy and
//! numerical evaluation of LLM inference on the OwL-P design versus the
//! TPU-like BF16 baseline (the paper's §VI evaluation).
//!
//! * [`accel`] — [`Accelerator`]: runs an `owlp-model` workload through the
//!   `owlp-systolic` cycle model and the `owlp-hw` energy model, with the
//!   OwL-P number format's compression applied to off-chip traffic and the
//!   outlier-scheduling overheads `r_a`/`r_w` applied to compute cycles.
//! * [`report`] — [`SimulationReport`] with the paper's Fig. 11 per-class
//!   breakdown (QKV / attention / projection / FFN) and
//!   [`report::Comparison`] for speedup / energy-savings ratios.
//! * [`workloads`] — the ten evaluation workloads of Fig. 11.
//! * [`cosim`] — the bridge to the `owlp-mem` HBM/SRAM co-simulator:
//!   per-op fold groups racing their tile fetches, with roofline
//!   aggregation per serving phase.
//! * [`numeric`] — end-to-end numerical-equivalence verification: synthetic
//!   layers run through the full encode → INT-array → FP pipeline and
//!   compared bit-for-bit against the exact FP reference.
//!
//! ```
//! use owlp_core::{Accelerator, workloads};
//! use owlp_model::Dataset;
//!
//! let wl = &workloads::paper_workloads()[0]; // BERT-Base, 512 tokens
//! let base = Accelerator::baseline().simulate(wl, Dataset::Squad2);
//! let owlp = Accelerator::owlp().simulate(wl, Dataset::Squad2);
//! assert!(base.seconds > owlp.seconds); // OwL-P wins
//! ```

pub mod accel;
pub mod cosim;
pub mod dse;
pub mod isa;
pub mod numeric;
pub mod report;
pub mod roofline;
pub mod serving;
pub mod timing;
pub mod transformer;
pub mod workloads;

pub use accel::{Accelerator, AcceleratorKind};
pub use report::{ClassReport, Comparison, SimulationReport};
pub use transformer::{ForwardTrace, GemmEngine, TinyConfig, TinyTransformer};
