//! The ten evaluation workloads of paper Fig. 11.
//!
//! * BERT-Base / BERT-Large: encoder inference, 512 tokens;
//! * GPT2-Base / GPT2-Large: generation, 256 and 1024 tokens;
//! * Llama2-7B / Llama2-70B: generation, 1024 and 4096 tokens;
//!
//! all generation workloads with KV caching and continuous batching at
//! batch 32 (paper §VI-C), with a 128-token prompt.

use owlp_model::{workload, ModelId, Workload};

/// Prompt length assumed for the generation workloads (the paper reports
/// only the generation targets).
pub const PROMPT_LEN: usize = 128;

/// Generation batch size (paper §VI-C).
pub const BATCH: usize = 32;

/// BERT input token length (paper §VI-C).
pub const BERT_SEQ: usize = 512;

/// Builds the ten workloads in the paper's Fig. 11 order.
pub fn paper_workloads() -> Vec<Workload> {
    vec![
        workload::encoder_workload(ModelId::BertBase, BERT_SEQ, 1),
        workload::encoder_workload(ModelId::BertLarge, BERT_SEQ, 1),
        workload::generation_workload(ModelId::Gpt2Base, BATCH, PROMPT_LEN, 256),
        workload::generation_workload(ModelId::Gpt2Base, BATCH, PROMPT_LEN, 1024),
        workload::generation_workload(ModelId::Gpt2Large, BATCH, PROMPT_LEN, 256),
        workload::generation_workload(ModelId::Gpt2Large, BATCH, PROMPT_LEN, 1024),
        workload::generation_workload(ModelId::Llama2_7b, BATCH, PROMPT_LEN, 1024),
        workload::generation_workload(ModelId::Llama2_7b, BATCH, PROMPT_LEN, 4096),
        workload::generation_workload(ModelId::Llama2_70b, BATCH, PROMPT_LEN, 1024),
        workload::generation_workload(ModelId::Llama2_70b, BATCH, PROMPT_LEN, 4096),
    ]
}

/// The default dataset per workload: SQuAD2 for the BERT family,
/// WikiText-2 for the decoder families.
pub fn default_dataset(model: ModelId) -> owlp_model::Dataset {
    match model {
        ModelId::BertBase | ModelId::BertLarge => owlp_model::Dataset::Squad2,
        _ => owlp_model::Dataset::WikiText2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_ten_workloads() {
        let w = paper_workloads();
        assert_eq!(w.len(), 10);
        // Two per model family member.
        assert_eq!(w.iter().filter(|w| w.model == ModelId::Gpt2Base).count(), 2);
        assert_eq!(
            w.iter().filter(|w| w.model == ModelId::Llama2_70b).count(),
            2
        );
    }

    #[test]
    fn names_are_unique() {
        let w = paper_workloads();
        let mut names: Vec<&str> = w.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn datasets_match_families() {
        use owlp_model::Dataset;
        assert_eq!(default_dataset(ModelId::BertBase), Dataset::Squad2);
        assert_eq!(default_dataset(ModelId::Llama2_7b), Dataset::WikiText2);
    }
}
