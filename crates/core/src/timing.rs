//! Double-buffered transfer/compute overlap timing.
//!
//! Both designs stream the stationary operand of fold `i+1` while fold `i`
//! computes (standard double buffering; the 12 MB buffer holds two fold
//! working sets with room to spare). For a group of identical folds the
//! total time is therefore
//!
//! ```text
//! T = fetch_one + folds × max(compute_one, fetch_one)
//! ```
//!
//! — the steady state runs at the slower of the two rates, plus one
//! un-overlapped head fetch. The coarse `max(ΣC, ΣF)` model understates
//! this by exactly that head term; [`double_buffered_cycles`] makes it
//! explicit and the simulator uses it.

/// Total cycles for `groups` identical fold groups under double buffering.
///
/// `compute_one`/`fetch_one` are per-group cycle counts. Zero groups cost
/// zero cycles.
pub fn double_buffered_cycles(compute_one: u64, fetch_one: u64, groups: u64) -> u64 {
    if groups == 0 {
        return 0;
    }
    fetch_one + groups * compute_one.max(fetch_one)
}

/// The coarse (fully-overlapped) bound: `max(ΣC, ΣF)`.
pub fn coarse_cycles(compute_one: u64, fetch_one: u64, groups: u64) -> u64 {
    (compute_one * groups).max(fetch_one * groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_groups_cost_nothing() {
        assert_eq!(double_buffered_cycles(100, 50, 0), 0);
    }

    #[test]
    fn compute_bound_steady_state() {
        // 10 groups, compute 100 > fetch 40: head fetch + 10×100.
        assert_eq!(double_buffered_cycles(100, 40, 10), 40 + 1000);
    }

    #[test]
    fn bandwidth_bound_steady_state() {
        assert_eq!(double_buffered_cycles(30, 80, 10), 80 + 800);
    }

    #[test]
    fn exceeds_coarse_bound_by_exactly_the_head_fetch() {
        for (c, f, g) in [(100u64, 40u64, 7u64), (30, 80, 12), (55, 55, 3)] {
            let detailed = double_buffered_cycles(c, f, g);
            let coarse = coarse_cycles(c, f, g);
            assert_eq!(detailed - coarse, f, "c={c} f={f} g={g}");
        }
    }

    #[test]
    fn head_term_vanishes_relative_to_long_runs() {
        let detailed = double_buffered_cycles(100, 90, 100_000) as f64;
        let coarse = coarse_cycles(100, 90, 100_000) as f64;
        assert!((detailed - coarse) / coarse < 1e-4);
    }
}
