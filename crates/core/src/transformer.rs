//! End-to-end functional transformer inference on the OwL-P datapath.
//!
//! The paper's "bullet-proof" claim is network-level: *running an
//! FP-trained model on OwL-P hardware changes nothing about its outputs*.
//! This module makes that testable: a small but complete pre-norm
//! transformer encoder (multi-head attention with softmax, residuals,
//! layernorm, GELU FFN) whose every GEMM can be executed by one of three
//! engines:
//!
//! * [`GemmEngine::Exact`] — the correctly-rounded reference;
//! * [`GemmEngine::Owlp`] — the full OwL-P pipeline (encode → INT array
//!   with outlier bypass → align → INT2FP);
//! * [`GemmEngine::FpBaseline`] — BF16-multiply / FP32-sequential-accumulate
//!   (the TPU-like baseline's arithmetic).
//!
//! All non-GEMM math (softmax, layernorm, GELU, residuals) is identical
//! f32 code across engines, and GEMM inputs are rounded to BF16 exactly as
//! an accelerator's vector unit would. The test suite asserts that the
//! OwL-P forward pass is **bit-identical** to the exact engine at every
//! intermediate tensor, while the FP baseline drifts by per-add rounding —
//! the network-level restatement of paper Table I's last row.

use owlp_arith::exact::exact_gemm;
use owlp_arith::fpmac::fp_mac_gemm;
use owlp_arith::gemm::{owlp_gemm, owlp_gemm_prepared_f32_with, GemmScratch, PreparedTensor};
use owlp_arith::ArithError;
use owlp_format::{ArchiveError, ArchiveSummary, ArchiveWriter, Bf16, FormatError, MappedArchive};
use owlp_model::profiles::{profile_for, Dataset, TensorRole};
use owlp_model::{ModelId, OpKind, TensorGen};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Which datapath executes the GEMMs of a forward pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GemmEngine {
    /// Correctly-rounded exact reference.
    Exact,
    /// The OwL-P integer datapath.
    Owlp,
    /// BF16 multiply, FP32 sequential accumulation (baseline hardware).
    FpBaseline,
}

impl GemmEngine {
    fn gemm(
        self,
        a: &[Bf16],
        b: &[Bf16],
        m: usize,
        k: usize,
        n: usize,
    ) -> Result<Vec<f32>, ArithError> {
        match self {
            GemmEngine::Exact => Ok(exact_gemm(a, b, m, k, n)),
            GemmEngine::Owlp => Ok(owlp_gemm(a, b, m, k, n)?.output),
            GemmEngine::FpBaseline => Ok(fp_mac_gemm(a, b, m, k, n)),
        }
    }
}

/// Dimensions of the test transformer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TinyConfig {
    /// Sequence length.
    pub seq: usize,
    /// Model dimension.
    pub hidden: usize,
    /// Attention heads (`hidden % heads == 0`).
    pub heads: usize,
    /// FFN intermediate dimension.
    pub ffn: usize,
    /// Layers.
    pub layers: usize,
}

impl TinyConfig {
    /// A small default that exercises every code path quickly.
    pub fn small() -> Self {
        TinyConfig {
            seq: 8,
            hidden: 32,
            heads: 4,
            ffn: 64,
            layers: 2,
        }
    }

    fn head_dim(&self) -> usize {
        self.hidden / self.heads
    }

    /// `(k, n)` of the four weight tensors of one layer, in the
    /// wqkv/wo/w1/w2 order of `LayerWeights::prepared`.
    fn weight_shapes(&self) -> [(usize, usize); 4] {
        [
            (self.hidden, 3 * self.hidden),
            (self.hidden, self.hidden),
            (self.hidden, self.ffn),
            (self.ffn, self.hidden),
        ]
    }
}

/// Archive-v2 name of weight tensor `t` (wqkv/wo/w1/w2 order) of layer `l`.
fn tensor_name(l: usize, t: usize) -> String {
    const NAMES: [&str; 4] = ["wqkv", "wo", "w1", "w2"];
    format!("layer{l}/{}", NAMES[t])
}

/// Per-layer weights in BF16 (as the accelerator stores them), each paired
/// with its OwL-P-prepared form (encoded, packed, **and panel-tiled** once
/// at construction, so repeated forward passes — a serving loop's decode
/// iterations — never re-encode, re-decode, or re-tile a weight tensor).
#[derive(Debug, Clone, PartialEq)]
struct LayerWeights {
    wqkv: Vec<Bf16>,               // hidden × 3·hidden
    wo: Vec<Bf16>,                 // hidden × hidden
    w1: Vec<Bf16>,                 // hidden × ffn
    w2: Vec<Bf16>,                 // ffn × hidden
    prepared: [PreparedTensor; 4], // wqkv, wo, w1, w2 — same order
}

/// A complete functional transformer with profile-generated weights.
#[derive(Debug, Clone, PartialEq)]
pub struct TinyTransformer {
    config: TinyConfig,
    layers: Vec<LayerWeights>,
}

/// The forward pass result: final hidden states plus the raw output of
/// every GEMM, for engine-vs-engine comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForwardTrace {
    /// Final `seq × hidden` hidden states.
    pub output: Vec<f32>,
    /// Every GEMM's raw f32 outputs, in execution order.
    pub gemm_outputs: Vec<Vec<f32>>,
}

impl TinyTransformer {
    /// Builds a transformer whose weights follow `model`'s calibrated
    /// weight profiles (so real outlier statistics are exercised).
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads`.
    pub fn new(config: TinyConfig, model: ModelId, seed: u64) -> Self {
        assert_eq!(
            config.hidden % config.heads,
            0,
            "hidden must divide into heads"
        );
        let gen = |kind: OpKind, rows: usize, cols: usize, salt: u64| -> Vec<Bf16> {
            let p = profile_for(model, kind, TensorRole::Weight, Dataset::WikiText2);
            TensorGen::new(p, rows, cols).values(seed ^ salt)
        };
        let layers = (0..config.layers)
            .map(|l| {
                let s = (l as u64 + 1) * 0x9E37;
                let wqkv = gen(OpKind::QkvProj, config.hidden, 3 * config.hidden, s);
                let wo = gen(OpKind::OutProj, config.hidden, config.hidden, s ^ 0x11);
                let w1 = gen(OpKind::FfnUp, config.hidden, config.ffn, s ^ 0x22);
                let w2 = gen(OpKind::FfnDown, config.ffn, config.hidden, s ^ 0x33);
                let prep = |t: &[Bf16], k: usize, n: usize| {
                    PreparedTensor::with_shape(t, k, n).expect("generated weights are finite")
                };
                let prepared = [
                    prep(&wqkv, config.hidden, 3 * config.hidden),
                    prep(&wo, config.hidden, config.hidden),
                    prep(&w1, config.hidden, config.ffn),
                    prep(&w2, config.ffn, config.hidden),
                ];
                LayerWeights {
                    wqkv,
                    wo,
                    w1,
                    w2,
                    prepared,
                }
            })
            .collect();
        TinyTransformer { config, layers }
    }

    /// The configuration.
    pub fn config(&self) -> TinyConfig {
        self.config
    }

    /// Packs every weight tensor into an archive-v2 file at `path` —
    /// planes, sorted outlier tables, and microkernel panels laid out
    /// exactly as the GEMM consumes them — under the
    /// `OWLP_STREAM_BUDGET` streaming-encode byte budget. The offline
    /// half of the serving cold start: [`TinyTransformer::from_archive`]
    /// maps the result back with zero decode or re-pack work.
    ///
    /// # Errors
    ///
    /// I/O failures and encode errors ([`ArchiveError`]).
    pub fn save_archive(&self, path: &Path) -> Result<ArchiveSummary, ArchiveError> {
        let mut writer = ArchiveWriter::create(path)?;
        self.write_tensors(&mut writer)?;
        writer.finish()
    }

    /// [`TinyTransformer::save_archive`] with an explicit streaming-encode
    /// byte budget instead of the environment default.
    ///
    /// # Errors
    ///
    /// As [`TinyTransformer::save_archive`].
    pub fn save_archive_with_budget(
        &self,
        path: &Path,
        budget: usize,
    ) -> Result<ArchiveSummary, ArchiveError> {
        let mut writer = ArchiveWriter::with_budget(path, budget)?;
        self.write_tensors(&mut writer)?;
        writer.finish()
    }

    fn write_tensors(&self, writer: &mut ArchiveWriter) -> Result<(), ArchiveError> {
        let shapes = self.config.weight_shapes();
        for (l, lw) in self.layers.iter().enumerate() {
            let tensors = [&lw.wqkv, &lw.wo, &lw.w1, &lw.w2];
            for (t, (&(k, n), data)) in shapes.iter().zip(tensors).enumerate() {
                writer.add_tensor_slice(&tensor_name(l, t), k, n, data)?;
            }
        }
        Ok(())
    }

    /// Rebuilds a transformer from a packed archive, borrowing every
    /// weight plane and panel straight out of the mapped file: each
    /// tensor's digests are verified, its BF16 values are reconstructed
    /// losslessly (for the exact/FP reference engines), and its prepared
    /// form adopts the mapped planes with no decode or re-pack — the
    /// serving cold-start path. The result is equal to the transformer
    /// that wrote the archive, and its forward pass is bit-identical.
    ///
    /// # Errors
    ///
    /// [`ArchiveError`] for unreadable/corrupt archives, missing tensors,
    /// or shapes that disagree with `config`.
    pub fn from_archive(config: TinyConfig, path: &Path) -> Result<Self, ArchiveError> {
        let archive = MappedArchive::open(path)?;
        let shapes = config.weight_shapes();
        let layers = (0..config.layers)
            .map(|l| {
                let mut tensors: [Option<(Vec<Bf16>, PreparedTensor)>; 4] =
                    [None, None, None, None];
                for (t, slot) in tensors.iter_mut().enumerate() {
                    let mapped = archive.tensor(&tensor_name(l, t))?;
                    let (k, n) = shapes[t];
                    if (mapped.k(), mapped.n()) != (k, n) {
                        return Err(ArchiveError::Format(FormatError::ShapeMismatch {
                            expected: k * n,
                            actual: mapped.k() * mapped.n(),
                        }));
                    }
                    *slot = Some((mapped.to_bf16_vec(), PreparedTensor::from_mapped(mapped)));
                }
                let [qkv, o, up, down] = tensors.map(|t| t.expect("all four slots filled"));
                Ok(LayerWeights {
                    wqkv: qkv.0,
                    wo: o.0,
                    w1: up.0,
                    w2: down.0,
                    prepared: [qkv.1, o.1, up.1, down.1],
                })
            })
            .collect::<Result<Vec<_>, ArchiveError>>()?;
        Ok(TinyTransformer { config, layers })
    }

    /// Runs the forward pass on `input` (`seq × hidden` BF16, row-major).
    ///
    /// # Errors
    ///
    /// Propagates datapath errors (cannot occur for finite inputs).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != seq × hidden`.
    pub fn forward(&self, input: &[Bf16], engine: GemmEngine) -> Result<ForwardTrace, ArithError> {
        let c = self.config;
        assert_eq!(input.len(), c.seq * c.hidden, "input shape mismatch");
        let mut trace = ForwardTrace {
            output: Vec::new(),
            gemm_outputs: Vec::new(),
        };
        // One activation-side scratch for the whole pass: every weight GEMM
        // rounds, re-encodes, and decodes its f32 activations through the
        // same reused buffers — the packed-form fused path, no per-call
        // BF16 tensor materialisation on the OwL-P engine.
        let mut scratch = GemmScratch::default();
        let mut x: Vec<f32> = input.iter().map(|b| b.to_f32()).collect();
        for lw in &self.layers {
            // --- Attention block (pre-norm).
            let normed = layernorm(&x, c.seq, c.hidden);
            let qkv = self.run_weight(
                engine,
                &mut trace,
                &mut scratch,
                &normed,
                &lw.wqkv,
                &lw.prepared[0],
                c.seq,
                c.hidden,
                3 * c.hidden,
            )?;
            let d = c.head_dim();
            let scale = 1.0 / (d as f32).sqrt();
            let mut ctx = vec![0.0f32; c.seq * c.hidden];
            for h in 0..c.heads {
                // Slice Q/K/V for this head out of the fused projection.
                let slice = |base: usize| -> Vec<Bf16> {
                    let mut out = Vec::with_capacity(c.seq * d);
                    for t in 0..c.seq {
                        for j in 0..d {
                            out.push(Bf16::from_f32(qkv[t * 3 * c.hidden + base + h * d + j]));
                        }
                    }
                    out
                };
                let q = slice(0);
                let k = slice(c.hidden);
                let v = slice(2 * c.hidden);
                // scores = Q · Kᵀ: run as GEMM with K transposed.
                let k_t = transpose(&k, c.seq, d);
                let scores = self.run(engine, &mut trace, &q, &k_t, c.seq, d, c.seq)?;
                // softmax rows (identical f32 code on all engines).
                let probs = softmax_rows(&scores, c.seq, c.seq, scale);
                let probs_bf = to_bf16(&probs);
                let head_ctx = self.run(engine, &mut trace, &probs_bf, &v, c.seq, c.seq, d)?;
                for t in 0..c.seq {
                    for j in 0..d {
                        ctx[t * c.hidden + h * d + j] = head_ctx[t * d + j];
                    }
                }
            }
            let proj = self.run_weight(
                engine,
                &mut trace,
                &mut scratch,
                &ctx,
                &lw.wo,
                &lw.prepared[1],
                c.seq,
                c.hidden,
                c.hidden,
            )?;
            for (xi, pi) in x.iter_mut().zip(&proj) {
                *xi += pi;
            }
            // --- FFN block (pre-norm).
            let normed = layernorm(&x, c.seq, c.hidden);
            let up = self.run_weight(
                engine,
                &mut trace,
                &mut scratch,
                &normed,
                &lw.w1,
                &lw.prepared[2],
                c.seq,
                c.hidden,
                c.ffn,
            )?;
            let act: Vec<f32> = up.iter().map(|&u| gelu(u)).collect();
            let down = self.run_weight(
                engine,
                &mut trace,
                &mut scratch,
                &act,
                &lw.w2,
                &lw.prepared[3],
                c.seq,
                c.ffn,
                c.hidden,
            )?;
            for (xi, di) in x.iter_mut().zip(&down) {
                *xi += di;
            }
        }
        trace.output = x;
        Ok(trace)
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        engine: GemmEngine,
        trace: &mut ForwardTrace,
        a: &[Bf16],
        b: &[Bf16],
        m: usize,
        k: usize,
        n: usize,
    ) -> Result<Vec<f32>, ArithError> {
        let out = engine.gemm(a, b, m, k, n)?;
        trace.gemm_outputs.push(out.clone());
        Ok(out)
    }

    /// A weight GEMM, fed raw f32 activations: on the OwL-P engine the
    /// weight side skips straight to its prepared (encoded + packed +
    /// panel-tiled) form and the activation side rounds/encodes/decodes
    /// through the caller's reused scratch buffers — no per-call BF16
    /// tensor is ever materialised. The reference engines round with the
    /// identical `Bf16::from_f32` conversion, so every engine's GEMM sees
    /// the same BF16 inputs and the bit-identity contract of [`Self::run`]
    /// is unchanged.
    #[allow(clippy::too_many_arguments)]
    fn run_weight(
        &self,
        engine: GemmEngine,
        trace: &mut ForwardTrace,
        scratch: &mut GemmScratch,
        a: &[f32],
        b: &[Bf16],
        prepared: &PreparedTensor,
        m: usize,
        k: usize,
        n: usize,
    ) -> Result<Vec<f32>, ArithError> {
        let out = match engine {
            GemmEngine::Owlp => owlp_gemm_prepared_f32_with(a, prepared, m, k, n, scratch)?.output,
            _ => engine.gemm(&to_bf16(a), b, m, k, n)?,
        };
        trace.gemm_outputs.push(out.clone());
        Ok(out)
    }
}

fn to_bf16(xs: &[f32]) -> Vec<Bf16> {
    xs.iter().map(|&x| Bf16::from_f32(x)).collect()
}

fn transpose(m: &[Bf16], rows: usize, cols: usize) -> Vec<Bf16> {
    let mut out = vec![Bf16::ZERO; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            out[c * rows + r] = m[r * cols + c];
        }
    }
    out
}

/// Row-wise layernorm (γ=1, β=0), plain f32.
fn layernorm(x: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; x.len()];
    for r in 0..rows {
        let row = &x[r * cols..(r + 1) * cols];
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + 1e-5).sqrt();
        for c in 0..cols {
            out[r * cols + c] = (row[c] - mean) * inv;
        }
    }
    out
}

/// Row-wise scaled softmax, plain f32.
fn softmax_rows(scores: &[f32], rows: usize, cols: usize, scale: f32) -> Vec<f32> {
    let mut out = vec![0.0f32; scores.len()];
    for r in 0..rows {
        let row = &scores[r * cols..(r + 1) * cols];
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b * scale));
        let mut denom = 0.0f32;
        for c in 0..cols {
            let e = (row[c] * scale - max).exp();
            out[r * cols + c] = e;
            denom += e;
        }
        for c in 0..cols {
            out[r * cols + c] /= denom;
        }
    }
    out
}

/// tanh-approximation GELU, plain f32.
fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (0.797_884_6 * (x + 0.044_715 * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn input(cfg: TinyConfig, seed: u64) -> Vec<Bf16> {
        let p = profile_for(
            ModelId::Gpt2Base,
            OpKind::QkvProj,
            TensorRole::Activation,
            Dataset::WikiText2,
        );
        TensorGen::new(p, cfg.seq, cfg.hidden).values(seed)
    }

    #[test]
    fn owlp_forward_is_bit_identical_to_exact() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, 1);
        let x = input(cfg, 2);
        let exact = model.forward(&x, GemmEngine::Exact).unwrap();
        let owlp = model.forward(&x, GemmEngine::Owlp).unwrap();
        assert_eq!(exact.gemm_outputs.len(), owlp.gemm_outputs.len());
        for (i, (e, o)) in exact
            .gemm_outputs
            .iter()
            .zip(&owlp.gemm_outputs)
            .enumerate()
        {
            for (x, y) in e.iter().zip(o) {
                assert_eq!(x.to_bits(), y.to_bits(), "gemm {i} diverged");
            }
        }
        for (x, y) in exact.output.iter().zip(&owlp.output) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fp_baseline_drifts_but_stays_close() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, 3);
        let x = input(cfg, 4);
        let exact = model.forward(&x, GemmEngine::Exact).unwrap();
        let fp = model.forward(&x, GemmEngine::FpBaseline).unwrap();
        let mut any_diff = false;
        let mut max_rel = 0.0f32;
        for (e, f) in exact.output.iter().zip(&fp.output) {
            if e.to_bits() != f.to_bits() {
                any_diff = true;
            }
            let rel = (e - f).abs() / e.abs().max(1e-3);
            max_rel = max_rel.max(rel);
        }
        assert!(
            any_diff,
            "sequential FP32 should differ in at least one ulp somewhere"
        );
        assert!(max_rel < 1e-2, "but only by rounding noise: {max_rel}");
    }

    #[test]
    fn gemm_count_matches_architecture() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, 5);
        let x = input(cfg, 6);
        let t = model.forward(&x, GemmEngine::Exact).unwrap();
        // Per layer: qkv + heads×(score + context) + proj + up + down.
        let expected = cfg.layers * (1 + cfg.heads * 2 + 1 + 2);
        assert_eq!(t.gemm_outputs.len(), expected);
    }

    #[test]
    fn forward_is_deterministic() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Llama2_7b, 7);
        let x = input(cfg, 8);
        let a = model.forward(&x, GemmEngine::Owlp).unwrap();
        let b = model.forward(&x, GemmEngine::Owlp).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn outputs_are_finite_and_normalised() {
        let cfg = TinyConfig {
            seq: 6,
            hidden: 24,
            heads: 3,
            ffn: 48,
            layers: 3,
        };
        let model = TinyTransformer::new(cfg, ModelId::BertBase, 9);
        let x = input(cfg, 10);
        let t = model.forward(&x, GemmEngine::Owlp).unwrap();
        assert!(t.output.iter().all(|v| v.is_finite()));
        // Residual stream should not explode through 3 layers.
        let max = t.output.iter().fold(0.0f32, |a, &b| a.max(b.abs()));
        assert!(max < 1e4, "residual stream blew up: {max}");
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn wrong_input_shape_panics() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, 1);
        let _ = model.forward(&[Bf16::ONE; 3], GemmEngine::Exact);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "owlp-transformer-test-{}-{name}.owl2",
            std::process::id()
        ));
        p
    }

    #[test]
    fn archive_roundtrip_reloads_an_equal_transformer() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, 11);
        let path = temp_path("roundtrip");
        // A tiny budget forces many streaming chunks per tensor.
        model.save_archive_with_budget(&path, 8 << 10).unwrap();
        let loaded = TinyTransformer::from_archive(cfg, &path).unwrap();
        // Mapped planes compare by contents, so equality covers every
        // weight value, packed plane, and memoised panel.
        assert_eq!(model, loaded);
        let x = input(cfg, 12);
        let a = model.forward(&x, GemmEngine::Owlp).unwrap();
        let b = loaded.forward(&x, GemmEngine::Owlp).unwrap();
        assert_eq!(a, b, "mapped weights must not change a bit");
        let exact = loaded.forward(&x, GemmEngine::Exact).unwrap();
        for (x, y) in exact.output.iter().zip(&b.output) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn from_archive_rejects_a_mismatched_config() {
        let cfg = TinyConfig::small();
        let model = TinyTransformer::new(cfg, ModelId::Gpt2Base, 13);
        let path = temp_path("mismatch");
        model.save_archive_with_budget(&path, 64 << 10).unwrap();
        let mut wider = cfg;
        wider.ffn *= 2;
        assert!(TinyTransformer::from_archive(wider, &path).is_err());
        let mut deeper = cfg;
        deeper.layers += 1;
        assert!(TinyTransformer::from_archive(deeper, &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
