//! Weight loading for the serving pool: pack once offline, map at startup.
//!
//! A serving process restarts far more often than its weights change, so
//! the cold start is dominated by getting weights from disk into the form
//! the GEMM consumes. The archive-v2 path splits that work asymmetrically:
//! the *offline* `repro pack` step encodes, packs, panel-tiles, and
//! digests every tensor under a bounded streaming budget
//! (`OWLP_STREAM_BUDGET`), and the *startup* path here just maps the file
//! and adopts the planes — O(index) syscalls, zero decode, zero re-pack,
//! weight bytes shared with the page cache across worker processes.
//!
//! [`ServedWeights::load`] verifies every plane digest on the way in (the
//! storage-integrity gate); [`ServedWeights::load_unverified`] is the pure
//! zero-copy open for callers that scrub on a separate schedule.

use crate::error::ServeError;
use owlp_arith::gemm::{owlp_gemm_prepared, PreparedTensor};
use owlp_arith::ArithError;
use owlp_format::{Bf16, MappedArchive};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::Instant;

/// A model's weight set served out of a mapped archive-v2 file: every
/// tensor is a [`PreparedTensor`] whose planes and microkernel panels are
/// borrowed views into the map, ready for `owlp_gemm_prepared` with no
/// per-request preparation work.
#[derive(Debug)]
pub struct ServedWeights {
    archive: MappedArchive,
    tensors: BTreeMap<String, PreparedTensor>,
    verified: bool,
}

impl ServedWeights {
    /// Maps the archive at `path` and adopts every tensor's planes,
    /// verifying each plane's CRC32C digest on the way in.
    ///
    /// # Errors
    ///
    /// [`ServeError::Weights`] for unreadable, torn, or corrupt archives.
    pub fn load(path: &Path) -> Result<Self, ServeError> {
        Self::open(path, true)
    }

    /// Maps the archive at `path` without digest verification — the pure
    /// zero-copy cold start (corruption still cannot *crash* the GEMM:
    /// plane shapes are validated by the index).
    ///
    /// # Errors
    ///
    /// As [`ServedWeights::load`], minus digest failures.
    pub fn load_unverified(path: &Path) -> Result<Self, ServeError> {
        Self::open(path, false)
    }

    fn open(path: &Path, verify: bool) -> Result<Self, ServeError> {
        let archive = MappedArchive::open(path).map_err(|e| ServeError::Weights(e.to_string()))?;
        let names: Vec<String> = archive.names().map(str::to_string).collect();
        let mut tensors = BTreeMap::new();
        for name in names {
            let mapped = if verify {
                archive.tensor(&name)
            } else {
                archive.tensor_unverified(&name)
            }
            .map_err(|e| ServeError::Weights(e.to_string()))?;
            tensors.insert(name, PreparedTensor::from_mapped(mapped));
        }
        Ok(ServedWeights {
            archive,
            tensors,
            verified: verify,
        })
    }

    /// The prepared tensor named `name`, if present.
    pub fn get(&self, name: &str) -> Option<&PreparedTensor> {
        self.tensors.get(name)
    }

    /// Tensor names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.tensors.keys().cloned().collect()
    }

    /// Number of tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Whether the archive holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Archive file size in bytes.
    pub fn archive_bytes(&self) -> u64 {
        self.archive.file_len()
    }

    /// Whether the planes are true `mmap` views (`false` on the aligned
    /// heap-read fallback — same zero-decode layout, privately backed).
    pub fn was_mapped(&self) -> bool {
        self.archive.was_mapped()
    }

    /// Whether plane digests were verified at load.
    pub fn verified(&self) -> bool {
        self.verified
    }

    /// One full-precision GEMM against the served tensor `name` (shape
    /// `k×n` from the archive index): `a` is `m×k` row-major BF16. The
    /// smoke check `repro pack --verify` and the CI gate drive this to
    /// prove a mapped archive serves bit-identical results.
    ///
    /// # Errors
    ///
    /// [`ServeError::Weights`] for unknown names; [`ServeError::Gemm`]
    /// for shape/finiteness errors.
    pub fn gemm(&self, name: &str, a: &[Bf16], m: usize) -> Result<Vec<f32>, ServeError> {
        let (k, n) = self
            .archive
            .shape(name)
            .ok_or_else(|| ServeError::Weights(format!("no tensor named {name:?}")))?;
        let prep = self
            .tensors
            .get(name)
            .expect("index and tensor map stay in sync");
        Ok(owlp_gemm_prepared(a, prep, m, k, n)?.output)
    }
}

impl From<ArithError> for ServeError {
    fn from(e: ArithError) -> Self {
        ServeError::Gemm(e.to_string())
    }
}

/// Cold-start measurement: what startup paid to get weights GEMM-ready.
#[derive(Debug, Clone, PartialEq)]
pub struct ColdStart {
    /// Tensors adopted from the archive.
    pub tensors: usize,
    /// Archive file size in bytes.
    pub archive_bytes: u64,
    /// Wall-clock seconds from open to every tensor prepared.
    pub load_s: f64,
    /// Whether plane digests were verified during the load.
    pub verified: bool,
    /// Whether the planes are true `mmap` views.
    pub mapped: bool,
}

impl ColdStart {
    /// Times [`ServedWeights::load_unverified`] — the production cold
    /// start — and returns the weights with the measurement.
    ///
    /// # Errors
    ///
    /// As [`ServedWeights::load_unverified`].
    pub fn measure(path: &Path) -> Result<(ServedWeights, ColdStart), ServeError> {
        let t0 = Instant::now();
        let weights = ServedWeights::load_unverified(path)?;
        let load_s = t0.elapsed().as_secs_f64();
        let cold = ColdStart {
            tensors: weights.len(),
            archive_bytes: weights.archive_bytes(),
            load_s,
            verified: weights.verified(),
            mapped: weights.was_mapped(),
        };
        Ok((weights, cold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use owlp_arith::exact_gemm;
    use owlp_format::ArchiveWriter;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "owlp-serve-weights-{}-{name}.owl2",
            std::process::id()
        ));
        p
    }

    /// Narrow-band values with huge outliers and stored zeros mixed in.
    fn mixed(len: usize, salt: u64) -> Vec<Bf16> {
        (0..len)
            .map(|i| {
                let x = ((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 97) as f32;
                let v = 0.5 + x / 97.0;
                match i % 19 {
                    0 => Bf16::from_f32(v * 1e26),
                    1 => Bf16::ZERO,
                    _ => Bf16::from_f32(v),
                }
            })
            .collect()
    }

    #[test]
    fn served_weights_gemm_is_bit_identical_to_the_exact_reference() {
        let path = temp_path("gemm");
        let (k, n) = (37, 13);
        let b = mixed(k * n, 5);
        let mut w = ArchiveWriter::with_budget(&path, 4 << 10).unwrap();
        w.add_tensor_slice("blk/w", k, n, &b).unwrap();
        w.finish().unwrap();

        let weights = ServedWeights::load(&path).unwrap();
        assert!(weights.verified());
        assert_eq!(weights.names(), vec!["blk/w".to_string()]);
        let m = 9;
        let a = mixed(m * k, 6);
        let got = weights.gemm("blk/w", &a, m).unwrap();
        let golden = exact_gemm(&a, &b, m, k, n);
        for (x, y) in got.iter().zip(&golden) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(matches!(
            weights.gemm("missing", &a, m),
            Err(ServeError::Weights(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cold_start_measures_the_unverified_load() {
        let path = temp_path("cold");
        let mut w = ArchiveWriter::with_budget(&path, 16 << 10).unwrap();
        w.add_tensor_slice("a", 24, 16, &mixed(24 * 16, 7)).unwrap();
        w.add_tensor_slice("b", 16, 8, &mixed(16 * 8, 8)).unwrap();
        w.finish().unwrap();

        let (weights, cold) = ColdStart::measure(&path).unwrap();
        assert_eq!(cold.tensors, 2);
        assert_eq!(cold.archive_bytes, weights.archive_bytes());
        assert!(cold.load_s >= 0.0);
        assert!(!cold.verified);
        assert_eq!(weights.len(), 2);
        assert!(!weights.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_archive_is_a_typed_error() {
        let err = ServedWeights::load(Path::new("/nonexistent/owl2")).unwrap_err();
        assert!(matches!(err, ServeError::Weights(_)));
    }
}
