//! Continuous-batching scheduler: a discrete-event serving simulation.
//!
//! The scheduler advances a virtual clock in iteration-level steps (per
//! Orca): each loop turn ingests arrivals into a **bounded admission
//! queue** (overflow is rejected — the backpressure policy), admits queued
//! requests FIFO into free slots of the running batch, charges their
//! prefill, then runs one decode iteration for the whole running batch.
//! Sequences leave as soon as their generation finishes, freeing slots for
//! the next admission — the batch re-forms every iteration rather than
//! draining.
//!
//! Token accounting: prefill primes the KV cache; decode step `s` emits
//! output token `s+1`. TTFT is therefore queue wait + prefill + the first
//! decode step, and TPOT averages the remaining `gen_len − 1` steps.
//!
//! The simulation is a pure function of the trace and config — no wall
//! clock, no OS randomness — which is what lets the multi-worker pool
//! (see [`crate::pool`]) reproduce metrics bit-for-bit from a seed.

use crate::cost::CostModel;
use crate::request::Request;
use serde::Serialize;
use std::collections::VecDeque;

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchedulerConfig {
    /// Array capacity: concurrent sequences per iteration batch.
    pub max_batch: usize,
    /// Admission-queue bound; arrivals beyond it are rejected (clamped to
    /// at least 1).
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 32,
            queue_capacity: 64,
        }
    }
}

/// Per-request latency record of a served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CompletedRequest {
    /// Request id.
    pub id: u64,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Generated tokens.
    pub gen_len: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// When the scheduler admitted it out of the queue.
    pub admitted_s: f64,
    /// When its first output token appeared.
    pub first_token_s: f64,
    /// When its last output token appeared.
    pub finished_s: f64,
}

impl CompletedRequest {
    /// Time to first token (queue wait + prefill + first decode step).
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Mean time per output token after the first (0 for one-token
    /// generations, which have no inter-token gaps).
    pub fn tpot_s(&self) -> f64 {
        if self.gen_len <= 1 {
            0.0
        } else {
            (self.finished_s - self.first_token_s) / (self.gen_len - 1) as f64
        }
    }

    /// End-to-end latency.
    pub fn e2e_s(&self) -> f64 {
        self.finished_s - self.arrival_s
    }
}

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct SimStats {
    /// Decode iterations executed.
    pub iterations: u64,
    /// Largest iteration batch formed (≤ `max_batch` by construction).
    pub peak_batch: usize,
    /// Deepest the admission queue got.
    pub peak_queue: usize,
    /// Final virtual-clock value, seconds.
    pub end_s: f64,
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimOutcome {
    /// Served requests, sorted by id.
    pub completed: Vec<CompletedRequest>,
    /// Rejected request ids (admission-queue overflow), sorted.
    pub rejected: Vec<u64>,
    /// Run counters.
    pub stats: SimStats,
}

struct Running {
    req: Request,
    produced: usize,
    first_token_s: Option<f64>,
    admitted_s: f64,
}

/// Simulates serving `trace` through one array group.
///
/// The trace must be sorted by arrival time (as produced by
/// [`crate::request::TraceSpec::generate`] or validated by
/// [`crate::trace::Trace::from_json`]); requests with `gen_len == 0` are
/// treated as one-token generations.
pub fn simulate(cost: &CostModel, cfg: &SchedulerConfig, trace: &[Request]) -> SimOutcome {
    let max_batch = cfg.max_batch.max(1);
    let queue_capacity = cfg.queue_capacity.max(1);
    let mut clock = 0.0f64;
    let mut next = 0usize;
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut completed: Vec<CompletedRequest> = Vec::new();
    let mut rejected: Vec<u64> = Vec::new();
    let mut stats = SimStats::default();

    loop {
        // Ingest every arrival up to the current clock; the bounded queue
        // is the backpressure point.
        while next < trace.len() && trace[next].arrival_s <= clock {
            if queue.len() < queue_capacity {
                queue.push_back(trace[next]);
            } else {
                rejected.push(trace[next].id);
            }
            next += 1;
        }
        stats.peak_queue = stats.peak_queue.max(queue.len());

        if running.is_empty() && queue.is_empty() {
            match trace.get(next) {
                // Idle: jump straight to the next arrival.
                Some(r) => {
                    clock = r.arrival_s;
                    continue;
                }
                None => break,
            }
        }

        // Admit FIFO into free slots and charge their prefill.
        while running.len() < max_batch {
            let Some(req) = queue.pop_front() else { break };
            let admitted_s = clock;
            clock += cost.prefill_seconds(req.prompt_len);
            running.push(Running {
                req,
                produced: 0,
                first_token_s: None,
                admitted_s,
            });
        }

        // One decode iteration across the running batch.
        let kv_lens: Vec<usize> = running
            .iter()
            .map(|r| r.req.prompt_len + r.produced + 1)
            .collect();
        clock += cost.decode_step_seconds(&kv_lens);
        stats.iterations += 1;
        stats.peak_batch = stats.peak_batch.max(running.len());

        let mut i = 0;
        while i < running.len() {
            let r = &mut running[i];
            r.produced += 1;
            r.first_token_s.get_or_insert(clock);
            if r.produced >= r.req.gen_len.max(1) {
                let r = running.remove(i);
                completed.push(CompletedRequest {
                    id: r.req.id,
                    prompt_len: r.req.prompt_len,
                    gen_len: r.req.gen_len.max(1),
                    arrival_s: r.req.arrival_s,
                    admitted_s: r.admitted_s,
                    first_token_s: r.first_token_s.unwrap_or(clock),
                    finished_s: clock,
                });
            } else {
                i += 1;
            }
        }
    }

    stats.end_s = clock;
    completed.sort_by_key(|c| c.id);
    rejected.sort_unstable();
    SimOutcome {
        completed,
        rejected,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ArrivalProcess, LengthDistribution, TraceSpec};
    use owlp_core::Accelerator;
    use owlp_model::{Dataset, ModelId};

    fn cost() -> CostModel {
        CostModel::new(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2)
    }

    fn trace(rate_rps: f64, requests: usize) -> Vec<Request> {
        TraceSpec {
            arrivals: ArrivalProcess::Poisson { rate_rps },
            prompt: LengthDistribution::Uniform { lo: 16, hi: 64 },
            gen: LengthDistribution::Uniform { lo: 4, hi: 32 },
            requests,
            seed: 0x0DD5_EED5,
        }
        .generate()
    }

    #[test]
    fn every_request_is_accounted_for() {
        let cm = cost();
        let t = trace(50.0, 200);
        let out = simulate(&cm, &SchedulerConfig::default(), &t);
        assert_eq!(out.completed.len() + out.rejected.len(), t.len());
        assert!(out.stats.peak_batch <= 32);
    }

    #[test]
    fn latencies_are_causally_ordered() {
        let cm = cost();
        let out = simulate(&cm, &SchedulerConfig::default(), &trace(20.0, 100));
        for c in &out.completed {
            assert!(c.admitted_s >= c.arrival_s, "req {}", c.id);
            assert!(c.first_token_s > c.admitted_s, "req {}", c.id);
            assert!(c.finished_s >= c.first_token_s, "req {}", c.id);
            assert!(c.ttft_s() > 0.0);
            assert!(c.tpot_s() >= 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cm = cost();
        let t = trace(30.0, 150);
        let a = simulate(&cm, &SchedulerConfig::default(), &t);
        let b = simulate(&cm, &SchedulerConfig::default(), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn overload_rejects_but_underload_does_not() {
        let cm = cost();
        let cfg = SchedulerConfig {
            max_batch: 4,
            queue_capacity: 4,
        };
        let calm = simulate(&cm, &cfg, &trace(5.0, 100));
        assert!(calm.rejected.is_empty(), "{:?}", calm.rejected.len());
        let slam = simulate(&cm, &cfg, &trace(100_000.0, 400));
        assert!(!slam.rejected.is_empty());
        assert_eq!(slam.completed.len() + slam.rejected.len(), 400);
    }

    #[test]
    fn queue_wait_grows_with_load() {
        let cm = cost();
        let cfg = SchedulerConfig {
            max_batch: 8,
            queue_capacity: 512,
        };
        let wait = |rate: f64| {
            let out = simulate(&cm, &cfg, &trace(rate, 120));
            out.completed
                .iter()
                .map(|c| c.admitted_s - c.arrival_s)
                .sum::<f64>()
                / out.completed.len() as f64
        };
        assert!(wait(2_000.0) > 2.0 * wait(2.0));
    }
}
