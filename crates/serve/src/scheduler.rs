//! Continuous-batching scheduler: a discrete-event serving simulation.
//!
//! The scheduler advances a virtual clock in iteration-level steps (per
//! Orca): each loop turn ingests arrivals into a **bounded admission
//! queue** (overflow is rejected — the backpressure policy), admits queued
//! requests FIFO into free slots of the running batch, charges their
//! prefill, then runs one decode iteration for the whole running batch.
//! Sequences leave as soon as their generation finishes, freeing slots for
//! the next admission — the batch re-forms every iteration rather than
//! draining.
//!
//! Token accounting: prefill primes the KV cache; decode step `s` emits
//! output token `s+1`. TTFT is therefore queue wait + prefill + the first
//! decode step, and TPOT averages the remaining `gen_len − 1` steps.
//!
//! The simulation is a pure function of the trace and config — no wall
//! clock, no OS randomness — which is what lets the multi-worker pool
//! (see [`crate::pool`]) reproduce metrics bit-for-bit from a seed.

use crate::cost::CostModel;
use crate::fault::{backoff_delay_s, FaultPlan, RecoveryPolicy, SdcSampler, WorkerFaultPlan};
use crate::request::{Request, SplitMix64};
use owlp_integrity::{DetectionProfile, Detector};
use serde::Serialize;
use std::collections::VecDeque;

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct SchedulerConfig {
    /// Array capacity: concurrent sequences per iteration batch.
    pub max_batch: usize,
    /// Admission-queue bound; arrivals beyond it are rejected (clamped to
    /// at least 1).
    pub queue_capacity: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            max_batch: 32,
            queue_capacity: 64,
        }
    }
}

/// Per-request latency record of a served request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CompletedRequest {
    /// Request id.
    pub id: u64,
    /// Prompt tokens.
    pub prompt_len: usize,
    /// Generated tokens.
    pub gen_len: usize,
    /// Arrival time, seconds.
    pub arrival_s: f64,
    /// When the scheduler admitted it out of the queue.
    pub admitted_s: f64,
    /// When its first output token appeared.
    pub first_token_s: f64,
    /// When its last output token appeared.
    pub finished_s: f64,
}

impl CompletedRequest {
    /// Time to first token (queue wait + prefill + first decode step).
    pub fn ttft_s(&self) -> f64 {
        self.first_token_s - self.arrival_s
    }

    /// Mean time per output token after the first (0 for one-token
    /// generations, which have no inter-token gaps).
    pub fn tpot_s(&self) -> f64 {
        if self.gen_len <= 1 {
            0.0
        } else {
            (self.finished_s - self.first_token_s) / (self.gen_len - 1) as f64
        }
    }

    /// End-to-end latency.
    pub fn e2e_s(&self) -> f64 {
        self.finished_s - self.arrival_s
    }
}

/// Aggregate counters of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct SimStats {
    /// Decode iterations executed.
    pub iterations: u64,
    /// Largest iteration batch formed (≤ `max_batch` by construction).
    pub peak_batch: usize,
    /// Deepest the admission queue got.
    pub peak_queue: usize,
    /// Final virtual-clock value, seconds.
    pub end_s: f64,
}

/// Everything a simulation run produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SimOutcome {
    /// Served requests, sorted by id.
    pub completed: Vec<CompletedRequest>,
    /// Rejected request ids (admission-queue overflow), sorted.
    pub rejected: Vec<u64>,
    /// Run counters.
    pub stats: SimStats,
}

struct Running {
    req: Request,
    produced: usize,
    first_token_s: Option<f64>,
    admitted_s: f64,
}

/// Simulates serving `trace` through one array group.
///
/// The trace must be sorted by arrival time (as produced by
/// [`crate::request::TraceSpec::generate`] or validated by
/// [`crate::trace::Trace::from_json`]); requests with `gen_len == 0` are
/// treated as one-token generations.
pub fn simulate(cost: &CostModel, cfg: &SchedulerConfig, trace: &[Request]) -> SimOutcome {
    let max_batch = cfg.max_batch.max(1);
    let queue_capacity = cfg.queue_capacity.max(1);
    let mut clock = 0.0f64;
    let mut next = 0usize;
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut completed: Vec<CompletedRequest> = Vec::new();
    let mut rejected: Vec<u64> = Vec::new();
    let mut stats = SimStats::default();

    loop {
        // Ingest every arrival up to the current clock; the bounded queue
        // is the backpressure point.
        while next < trace.len() && trace[next].arrival_s <= clock {
            if queue.len() < queue_capacity {
                queue.push_back(trace[next]);
            } else {
                rejected.push(trace[next].id);
            }
            next += 1;
        }
        stats.peak_queue = stats.peak_queue.max(queue.len());

        if running.is_empty() && queue.is_empty() {
            match trace.get(next) {
                // Idle: jump straight to the next arrival.
                Some(r) => {
                    clock = r.arrival_s;
                    continue;
                }
                None => break,
            }
        }

        // Admit FIFO into free slots and charge their prefill.
        while running.len() < max_batch {
            let Some(req) = queue.pop_front() else { break };
            let admitted_s = clock;
            clock += cost.prefill_seconds(req.prompt_len);
            running.push(Running {
                req,
                produced: 0,
                first_token_s: None,
                admitted_s,
            });
        }

        // One decode iteration across the running batch.
        let kv_lens: Vec<usize> = running
            .iter()
            .map(|r| r.req.prompt_len + r.produced + 1)
            .collect();
        clock += cost.decode_step_seconds(&kv_lens);
        stats.iterations += 1;
        stats.peak_batch = stats.peak_batch.max(running.len());

        let mut i = 0;
        while i < running.len() {
            let r = &mut running[i];
            r.produced += 1;
            r.first_token_s.get_or_insert(clock);
            if r.produced >= r.req.gen_len.max(1) {
                let r = running.remove(i);
                completed.push(CompletedRequest {
                    id: r.req.id,
                    prompt_len: r.req.prompt_len,
                    gen_len: r.req.gen_len.max(1),
                    arrival_s: r.req.arrival_s,
                    admitted_s: r.admitted_s,
                    first_token_s: r.first_token_s.unwrap_or(clock),
                    finished_s: clock,
                });
            } else {
                i += 1;
            }
        }
    }

    stats.end_s = clock;
    completed.sort_by_key(|c| c.id);
    rejected.sort_unstable();
    SimOutcome {
        completed,
        rejected,
        stats,
    }
}

/// Fault-path counters of one worker (or, summed, one pool) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct FaultStats {
    /// Retry re-admissions scheduled after transient failures.
    pub retries: u64,
    /// Requests evicted after exhausting their retry budget.
    pub evictions: u64,
    /// Transient iteration faults that struck.
    pub iter_faults: u64,
    /// Silent-data-corruption strikes.
    pub sdc_events: u64,
    /// SDC strikes an armed integrity detector caught (parity, plane CRC,
    /// or ABFT — per the measured detection profile).
    pub sdc_detected: u64,
    /// Detected strikes corrected in place by a localized repair (tile
    /// rebuild or element recompute).
    pub sdc_corrected: u64,
    /// Undetected strikes that corrupted a response (true escapes).
    pub sdc_escaped: u64,
    /// Undetected strikes absorbed with no output effect (e.g. FP32
    /// rounding masked the perturbation, or the damage was latent
    /// metadata the kernel never consumed).
    pub sdc_masked: u64,
    /// Localized repairs performed (each charged at the policy's
    /// tile-recompute cost instead of a full re-execution).
    pub tile_recomputes: u64,
    /// Summed detection latency of caught SDCs, in iterations: load-time
    /// detectors (parity, plane CRC) catch before the iteration's compute
    /// (latency 0), ABFT catches after it (latency 1).
    pub sdc_detect_latency_iters: u64,
    /// Iterations re-executed after a detected SDC.
    pub reexec_iterations: u64,
    /// Workers that crashed.
    pub crashed_workers: u32,
}

impl FaultStats {
    /// Accumulates another run's counters.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.retries += other.retries;
        self.evictions += other.evictions;
        self.iter_faults += other.iter_faults;
        self.sdc_events += other.sdc_events;
        self.sdc_detected += other.sdc_detected;
        self.sdc_corrected += other.sdc_corrected;
        self.sdc_escaped += other.sdc_escaped;
        self.sdc_masked += other.sdc_masked;
        self.tile_recomputes += other.tile_recomputes;
        self.sdc_detect_latency_iters += other.sdc_detect_latency_iters;
        self.reexec_iterations += other.reexec_iterations;
        self.crashed_workers += other.crashed_workers;
    }
}

/// Everything a fault-aware simulation run produced.
///
/// Request ids partition exactly: every trace id lands in exactly one of
/// `base.completed`, `base.rejected`, `failed`, `deadline_missed`, `shed`,
/// or (worker-level, until the pool re-dispatches them) `orphans`.
/// `corrupted` is a subset of `base.completed`.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultSimOutcome {
    /// The classic outcome: served + queue-overflow-rejected + counters.
    pub base: SimOutcome,
    /// Requests dropped after exhausting their retry budget, sorted.
    pub failed: Vec<u64>,
    /// Requests that missed their deadline (dropped in queue or finished
    /// late), sorted.
    pub deadline_missed: Vec<u64>,
    /// Requests shed by degraded-mode admission tightening (the queue had
    /// nominal room, but the healthy-worker count said otherwise), sorted.
    pub shed: Vec<u64>,
    /// Served requests whose response carries an undetected corruption,
    /// sorted; a subset of `base.completed` ids.
    pub corrupted: Vec<u64>,
    /// In-flight/queued/future requests stranded by a worker crash; empty
    /// at pool level (the pool re-dispatches them to survivors).
    pub orphans: Vec<Request>,
    /// Fault-path counters.
    pub faults: FaultStats,
    /// Healthy worker-seconds over total worker-seconds (1.0 fault-free;
    /// recomputed by the pool from crash times).
    pub availability: f64,
}

struct PendingReq {
    req: Request,
    /// Transient failures suffered so far.
    attempt: u32,
    /// Earliest re-admission time (backoff); equals arrival for fresh
    /// requests.
    ready_s: f64,
}

struct RunningF {
    req: Request,
    attempt: u32,
    produced: usize,
    first_token_s: Option<f64>,
    admitted_s: f64,
    corrupted: bool,
}

/// Inserts into the retry list keeping `(ready_s, id)` order.
fn insert_retry(retries: &mut Vec<PendingReq>, p: PendingReq) {
    let at = retries.partition_point(|q| (q.ready_s, q.req.id) <= (p.ready_s, p.req.id));
    retries.insert(at, p);
}

/// Share of SDC strikes that hit accumulator lanes mid-GEMM, permille;
/// the rest strike operand storage at a criticality-weighted site. Lane
/// upsets are what ABFT exists for, so the mix keeps both detector
/// domains exercised.
pub const ACC_STRIKE_PERMILLE: u64 = 250;

/// Simulates serving `trace` through one array group under a fault plan.
///
/// `worker` indexes this worker's entry in `plan` (an out-of-range index
/// means a fault-free worker); the whole plan is needed because degraded
/// admission keys off the pool-wide healthy count. With a zero plan and a
/// policy with no deadline this is **bit-identical** to [`simulate`]: the
/// fault branches charge no time and draw no randomness, so the happy path
/// cannot drift (property-tested).
///
/// Semantics, all at iteration granularity and fully deterministic:
///
/// * **crash** — checked at loop top: the worker halts, everything it holds
///   (running, queued, backing off, not yet ingested) returns as `orphans`;
/// * **stall** — iteration/prefill charges are multiplied by the stall
///   window's slowdown at charge time;
/// * **transient failure** — one victim request loses the iteration and
///   re-enters admission after [`backoff_delay_s`] (its generation restarts;
///   `max_retries` exceeded ⇒ evicted into `failed`);
/// * **SDC** — the strike hits an accumulator lane (a fixed
///   [`ACC_STRIKE_PERMILLE`] share) or a criticality-weighted operand
///   [`crate::fault::SdcSite`]; its fate is read from the **measured**
///   [`DetectionProfile`] of the policy's armed detectors. Detected and
///   localized ⇒ corrected at `tile_recompute_cost_permille` of one step;
///   detected but unlocalized ⇒ the iteration re-executes at full price;
///   undetected ⇒ either masked (bit-clean output anyway) or one victim
///   response is silently corrupted;
/// * **deadline** — queued/backing-off requests past their deadline are
///   dropped before admission; completions past the deadline count as
///   missed, not served;
/// * **degraded admission** — with crashes in the plan, the effective queue
///   bound scales by the pool-wide healthy fraction; arrivals refused only
///   by the tightened bound count as `shed`, not `rejected`.
pub fn simulate_faulty(
    cost: &CostModel,
    cfg: &SchedulerConfig,
    recovery: &RecoveryPolicy,
    plan: &FaultPlan,
    worker: usize,
    sampler: Option<&SdcSampler>,
    trace: &[Request],
) -> FaultSimOutcome {
    let zero_plan = WorkerFaultPlan::default();
    let wp = plan.workers.get(worker).unwrap_or(&zero_plan);
    let sampler = if wp.sdc_permille == 0 {
        None
    } else {
        // The process-wide sampler: the fallback used to re-price the whole
        // criticality table per call.
        Some(sampler.unwrap_or_else(|| SdcSampler::shared()))
    };
    // Measured detection outcomes for the armed detectors; only built (and
    // memoized process-wide) when SDCs can actually strike, so the
    // zero-plan path stays bit-identical to `simulate`.
    let profile = (wp.sdc_permille > 0).then(|| DetectionProfile::shared(recovery.integrity));

    let max_batch = cfg.max_batch.max(1);
    let queue_capacity = cfg.queue_capacity.max(1);
    let total_workers = plan.workers.len().max(1);
    let degraded = recovery.degraded_admission && plan.has_crashes();
    let stalled = !wp.stalls.is_empty();
    let mut rng = SplitMix64::new(wp.stream_seed);
    let mut clock = 0.0f64;
    let mut next = 0usize;
    let mut queue: VecDeque<PendingReq> = VecDeque::new();
    let mut retries: Vec<PendingReq> = Vec::new();
    let mut running: Vec<RunningF> = Vec::new();
    let mut completed: Vec<CompletedRequest> = Vec::new();
    let mut rejected: Vec<u64> = Vec::new();
    let mut failed: Vec<u64> = Vec::new();
    let mut deadline_missed: Vec<u64> = Vec::new();
    let mut shed: Vec<u64> = Vec::new();
    let mut corrupted: Vec<u64> = Vec::new();
    let mut orphans: Vec<Request> = Vec::new();
    let mut stats = SimStats::default();
    let mut faults = FaultStats::default();

    loop {
        // The crash takes effect at the first iteration boundary past it.
        if let Some(crash) = wp.crash_at_s {
            if clock >= crash {
                faults.crashed_workers = 1;
                orphans.extend(running.drain(..).map(|r| r.req));
                orphans.extend(queue.drain(..).map(|p| p.req));
                orphans.extend(retries.drain(..).map(|p| p.req));
                orphans.extend_from_slice(&trace[next..]);
                break;
            }
        }

        // Ingest every arrival up to the current clock; the bounded queue
        // is the backpressure point, tightened in degraded mode.
        let eff_cap = if degraded {
            let healthy = plan.healthy_at(clock).max(1);
            (queue_capacity * healthy)
                .div_ceil(total_workers)
                .clamp(1, queue_capacity)
        } else {
            queue_capacity
        };
        while next < trace.len() && trace[next].arrival_s <= clock {
            let r = trace[next];
            if queue.len() < eff_cap {
                queue.push_back(PendingReq {
                    req: r,
                    attempt: 0,
                    ready_s: r.arrival_s,
                });
            } else if queue.len() < queue_capacity {
                shed.push(r.id);
            } else {
                rejected.push(r.id);
            }
            next += 1;
        }
        stats.peak_queue = stats.peak_queue.max(queue.len());

        // Deadline-doomed waiters are dropped before they waste service.
        if let Some(d) = recovery.deadline_s {
            let expired = |p: &PendingReq| p.req.arrival_s + d <= clock;
            for p in queue.iter().filter(|p| expired(p)) {
                deadline_missed.push(p.req.id);
            }
            queue.retain(|p| !expired(p));
            for p in retries.iter().filter(|p| expired(p)) {
                deadline_missed.push(p.req.id);
            }
            retries.retain(|p| !expired(p));
        }

        let retry_ready = retries.first().map(|p| p.ready_s);
        if running.is_empty() && queue.is_empty() && retry_ready.is_none_or(|t| t > clock) {
            // Idle: jump straight to the next event (arrival or backoff
            // expiry), whichever comes first.
            let arrival = trace.get(next).map(|r| r.arrival_s);
            clock = match (arrival, retry_ready) {
                (Some(a), Some(t)) => a.min(t),
                (Some(a), None) => a,
                (None, Some(t)) => t,
                (None, None) => break,
            };
            continue;
        }

        // Admit into free slots — expired backoffs first (they are the
        // oldest requests), then FIFO from the queue — charging prefill.
        while running.len() < max_batch {
            let p = if retries.first().is_some_and(|p| p.ready_s <= clock) {
                retries.remove(0)
            } else {
                let Some(p) = queue.pop_front() else { break };
                p
            };
            let admitted_s = clock;
            let prefill = cost.prefill_seconds(p.req.prompt_len);
            clock += if stalled {
                prefill * wp.stall_multiplier(admitted_s)
            } else {
                prefill
            };
            running.push(RunningF {
                req: p.req,
                attempt: p.attempt,
                produced: 0,
                first_token_s: None,
                admitted_s,
                corrupted: false,
            });
        }

        // One decode iteration across the running batch.
        let kv_lens: Vec<usize> = running
            .iter()
            .map(|r| r.req.prompt_len + r.produced + 1)
            .collect();
        let step = cost.decode_step_seconds(&kv_lens);
        let step = if stalled {
            step * wp.stall_multiplier(clock)
        } else {
            step
        };
        clock += step;
        stats.iterations += 1;
        stats.peak_batch = stats.peak_batch.max(running.len());

        // Transient iteration failure: one victim loses its token and goes
        // through backoff (or out, once the retry budget is spent).
        if wp.iter_fail_permille > 0
            && !running.is_empty()
            && rng.below(1000) < u64::from(wp.iter_fail_permille.min(1000))
        {
            faults.iter_faults += 1;
            let v = rng.below(running.len() as u64) as usize;
            let r = running.remove(v);
            if r.attempt >= recovery.max_retries {
                faults.evictions += 1;
                failed.push(r.req.id);
            } else {
                faults.retries += 1;
                let ready_s =
                    clock + backoff_delay_s(recovery, wp.stream_seed, r.req.id, r.attempt);
                insert_retry(
                    &mut retries,
                    PendingReq {
                        req: r.req,
                        attempt: r.attempt + 1,
                        ready_s,
                    },
                );
            }
        }

        // SDC: strike an accumulator lane or a criticality-weighted operand
        // site, then read the strike's fate from the measured detection
        // profile of the armed detectors — detection is a property of the
        // checksums, not a coin flip.
        if wp.sdc_permille > 0
            && !running.is_empty()
            && rng.below(1000) < u64::from(wp.sdc_permille.min(1000))
        {
            faults.sdc_events += 1;
            let profile = profile.expect("profile present when sdc_permille > 0");
            let outcome = if rng.below(1000) < ACC_STRIKE_PERMILLE {
                profile.accumulator
            } else {
                let sampler = sampler.expect("sampler present when sdc_permille > 0");
                *profile.site(sampler.draw(&mut rng).site)
            };
            match outcome.detector {
                Some(detector) => {
                    faults.sdc_detected += 1;
                    // Load-time detectors fire before the iteration's
                    // compute; ABFT verifies after it.
                    if detector == Detector::Abft {
                        faults.sdc_detect_latency_iters += 1;
                    }
                    if outcome.localized && outcome.corrected {
                        faults.sdc_corrected += 1;
                        faults.tile_recomputes += 1;
                        clock += step * f64::from(recovery.tile_recompute_cost_permille.min(1000))
                            / 1000.0;
                    } else {
                        faults.reexec_iterations += 1;
                        stats.iterations += 1;
                        clock += step; // re-run the iteration at full price
                    }
                }
                None if outcome.bit_clean => faults.sdc_masked += 1,
                None => {
                    faults.sdc_escaped += 1;
                    let v = rng.below(running.len() as u64) as usize;
                    running[v].corrupted = true;
                }
            }
        }

        let mut i = 0;
        while i < running.len() {
            let r = &mut running[i];
            r.produced += 1;
            r.first_token_s.get_or_insert(clock);
            if r.produced >= r.req.gen_len.max(1) {
                let r = running.remove(i);
                let missed = recovery
                    .deadline_s
                    .is_some_and(|d| clock - r.req.arrival_s > d);
                if missed {
                    deadline_missed.push(r.req.id);
                } else {
                    if r.corrupted {
                        corrupted.push(r.req.id);
                    }
                    completed.push(CompletedRequest {
                        id: r.req.id,
                        prompt_len: r.req.prompt_len,
                        gen_len: r.req.gen_len.max(1),
                        arrival_s: r.req.arrival_s,
                        admitted_s: r.admitted_s,
                        first_token_s: r.first_token_s.unwrap_or(clock),
                        finished_s: clock,
                    });
                }
            } else {
                i += 1;
            }
        }
    }

    stats.end_s = clock;
    completed.sort_by_key(|c| c.id);
    rejected.sort_unstable();
    failed.sort_unstable();
    deadline_missed.sort_unstable();
    shed.sort_unstable();
    corrupted.sort_unstable();
    let availability = match wp.crash_at_s {
        Some(c) if clock > 0.0 => (c / clock).clamp(0.0, 1.0),
        _ => 1.0,
    };
    FaultSimOutcome {
        base: SimOutcome {
            completed,
            rejected,
            stats,
        },
        failed,
        deadline_missed,
        shed,
        corrupted,
        orphans,
        faults,
        availability,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{ArrivalProcess, LengthDistribution, TraceSpec};
    use owlp_core::Accelerator;
    use owlp_model::{Dataset, ModelId};

    fn cost() -> CostModel {
        CostModel::new(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2)
    }

    fn trace(rate_rps: f64, requests: usize) -> Vec<Request> {
        TraceSpec {
            arrivals: ArrivalProcess::Poisson { rate_rps },
            prompt: LengthDistribution::Uniform { lo: 16, hi: 64 },
            gen: LengthDistribution::Uniform { lo: 4, hi: 32 },
            requests,
            seed: 0x0DD5_EED5,
        }
        .generate()
    }

    #[test]
    fn every_request_is_accounted_for() {
        let cm = cost();
        let t = trace(50.0, 200);
        let out = simulate(&cm, &SchedulerConfig::default(), &t);
        assert_eq!(out.completed.len() + out.rejected.len(), t.len());
        assert!(out.stats.peak_batch <= 32);
    }

    #[test]
    fn latencies_are_causally_ordered() {
        let cm = cost();
        let out = simulate(&cm, &SchedulerConfig::default(), &trace(20.0, 100));
        for c in &out.completed {
            assert!(c.admitted_s >= c.arrival_s, "req {}", c.id);
            assert!(c.first_token_s > c.admitted_s, "req {}", c.id);
            assert!(c.finished_s >= c.first_token_s, "req {}", c.id);
            assert!(c.ttft_s() > 0.0);
            assert!(c.tpot_s() >= 0.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let cm = cost();
        let t = trace(30.0, 150);
        let a = simulate(&cm, &SchedulerConfig::default(), &t);
        let b = simulate(&cm, &SchedulerConfig::default(), &t);
        assert_eq!(a, b);
    }

    #[test]
    fn overload_rejects_but_underload_does_not() {
        let cm = cost();
        let cfg = SchedulerConfig {
            max_batch: 4,
            queue_capacity: 4,
        };
        let calm = simulate(&cm, &cfg, &trace(5.0, 100));
        assert!(calm.rejected.is_empty(), "{:?}", calm.rejected.len());
        let slam = simulate(&cm, &cfg, &trace(100_000.0, 400));
        assert!(!slam.rejected.is_empty());
        assert_eq!(slam.completed.len() + slam.rejected.len(), 400);
    }

    #[test]
    fn queue_wait_grows_with_load() {
        let cm = cost();
        let cfg = SchedulerConfig {
            max_batch: 8,
            queue_capacity: 512,
        };
        let wait = |rate: f64| {
            let out = simulate(&cm, &cfg, &trace(rate, 120));
            out.completed
                .iter()
                .map(|c| c.admitted_s - c.arrival_s)
                .sum::<f64>()
                / out.completed.len() as f64
        };
        assert!(wait(2_000.0) > 2.0 * wait(2.0));
    }
}
