//! Iteration cost model: prices scheduler iterations on the accelerator.
//!
//! The scheduler works in iteration-level units (one prefill admission, one
//! decode step across the running batch). Each unit is priced by building
//! the corresponding single-iteration workload
//! ([`owlp_model::workload::prefill_workload`] /
//! [`owlp_model::workload::decode_step_workload`]) and running it through
//! the [`Accelerator`] cycle model — the same Eq. (4) + bandwidth-overlap
//! model behind the paper's batch results, so serving latencies inherit its
//! calibration.
//!
//! Decode cost decomposes as `projections(batch) + Σ attention(kv_i)`: the
//! projection GEMMs batch all running sequences into `M = batch` rows while
//! attention runs per sequence against its own cache, so the per-sequence
//! attention cost is priced at batch 1 and summed. KV lengths are rounded
//! up to powers of two (the repo's bucketing idiom) to keep the memoised
//! tables small; the cache is behind a `parking_lot` mutex so one cost
//! model can serve all pool workers.

use owlp_core::{cosim, Accelerator};
use owlp_model::{workload, Dataset, GemmOp, ModelId, OpClass, Workload};
use parking_lot::Mutex;
use std::collections::HashMap;

/// Which latency model prices the iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostSource {
    /// The closed-form `max(compute, transfer)` overlap of
    /// [`Accelerator::simulate`] (the default, and the fallback bound).
    #[default]
    ClosedForm,
    /// The event-driven `owlp-mem` co-simulation: per-channel burst
    /// timing, prefetch depth, and outlier spill, via
    /// [`owlp_core::cosim::op_cosim_seconds`].
    Cosim,
}

/// Memoised iteration prices for one (design, model, dataset) triple.
pub struct CostModel {
    acc: Accelerator,
    model: ModelId,
    dataset: Dataset,
    source: CostSource,
    prefill: Mutex<HashMap<(usize, usize), f64>>,
    projection: Mutex<HashMap<usize, f64>>,
    attention: Mutex<HashMap<usize, f64>>,
}

impl CostModel {
    /// Builds a cost model priced by the closed-form overlap model.
    pub fn new(acc: Accelerator, model: ModelId, dataset: Dataset) -> Self {
        Self::with_source(acc, model, dataset, CostSource::ClosedForm)
    }

    /// Builds a cost model priced by the `owlp-mem` co-simulation — the
    /// same memoisation, so each distinct iteration shape pays the
    /// event-driven simulation exactly once.
    pub fn with_cosim(acc: Accelerator, model: ModelId, dataset: Dataset) -> Self {
        Self::with_source(acc, model, dataset, CostSource::Cosim)
    }

    /// Builds a cost model with an explicit [`CostSource`].
    pub fn with_source(
        acc: Accelerator,
        model: ModelId,
        dataset: Dataset,
        source: CostSource,
    ) -> Self {
        CostModel {
            acc,
            model,
            dataset,
            source,
            prefill: Mutex::new(HashMap::new()),
            projection: Mutex::new(HashMap::new()),
            attention: Mutex::new(HashMap::new()),
        }
    }

    /// The latency model in use.
    pub fn source(&self) -> CostSource {
        self.source
    }

    /// Prices one op under the configured source.
    fn op_seconds(&self, wl: &Workload, op: &GemmOp) -> f64 {
        match self.source {
            CostSource::ClosedForm => self
                .acc
                .seconds_for(self.acc.op_report(wl, op, self.dataset).cycles),
            CostSource::Cosim => cosim::op_cosim_seconds(&self.acc, wl, op, self.dataset),
        }
    }

    /// Prices a whole iteration workload under the configured source.
    fn iteration_seconds(&self, wl: &Workload) -> f64 {
        match self.source {
            CostSource::ClosedForm => self.acc.simulate(wl, self.dataset).seconds,
            CostSource::Cosim => wl.ops.iter().map(|o| self.op_seconds(wl, o)).sum(),
        }
    }

    /// The design point being priced.
    pub fn accelerator(&self) -> &Accelerator {
        &self.acc
    }

    /// The model being served.
    pub fn model(&self) -> ModelId {
        self.model
    }

    /// Seconds to prefill one sequence's `prompt_len`-token prompt.
    /// Decode-shaped prompts (`prompt_len ≤ 1`) cost nothing here — their
    /// single token rides the next decode iteration.
    pub fn prefill_seconds(&self, prompt_len: usize) -> f64 {
        if prompt_len <= 1 {
            return 0.0;
        }
        let key = (1usize, bucket(prompt_len));
        if let Some(&s) = self.prefill.lock().get(&key) {
            return s;
        }
        let wl = workload::prefill_workload(self.model, 1, key.1);
        let s = self.iteration_seconds(&wl);
        self.prefill.lock().insert(key, s);
        s
    }

    /// Seconds for one decode iteration: `batch` sequences each generate
    /// one token, sequence `i` attending over `kv_lens[i]` cache entries.
    pub fn decode_step_seconds(&self, kv_lens: &[usize]) -> f64 {
        if kv_lens.is_empty() {
            return 0.0;
        }
        let mut s = self.projection_seconds(kv_lens.len());
        for &kv in kv_lens {
            s += self.attention_seconds(kv);
        }
        s
    }

    /// Seconds of the batched projection/FFN GEMMs of one decode step.
    pub fn projection_seconds(&self, batch: usize) -> f64 {
        let batch = batch.max(1);
        if let Some(&s) = self.projection.lock().get(&batch) {
            return s;
        }
        let wl = workload::decode_step_workload(self.model, batch, 1);
        let s: f64 = wl
            .ops
            .iter()
            .filter(|o| o.class() != OpClass::Attention)
            .map(|o| self.op_seconds(&wl, o))
            .sum();
        self.projection.lock().insert(batch, s);
        s
    }

    /// Seconds of one sequence's decode attention over a `kv_len` cache.
    pub fn attention_seconds(&self, kv_len: usize) -> f64 {
        let kv = bucket(kv_len.max(1));
        if let Some(&s) = self.attention.lock().get(&kv) {
            return s;
        }
        let wl = workload::decode_step_workload(self.model, 1, kv);
        let s: f64 = wl
            .ops
            .iter()
            .filter(|o| o.class() == OpClass::Attention)
            .map(|o| self.op_seconds(&wl, o))
            .sum();
        self.attention.lock().insert(kv, s);
        s
    }
}

/// Rounds up to the next power of two (the KV-length bucketing idiom).
fn bucket(n: usize) -> usize {
    n.next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2)
    }

    #[test]
    fn costs_are_positive_and_monotone() {
        let cm = model();
        assert_eq!(cm.prefill_seconds(1), 0.0);
        let p_short = cm.prefill_seconds(64);
        let p_long = cm.prefill_seconds(512);
        assert!(p_short > 0.0);
        assert!(p_long > p_short);
        let d_small = cm.decode_step_seconds(&[64; 4]);
        let d_big = cm.decode_step_seconds(&[1024; 4]);
        assert!(d_small > 0.0);
        assert!(d_big > d_small, "{d_big} vs {d_small}");
    }

    #[test]
    fn batching_decode_is_cheaper_than_serial_steps() {
        let cm = model();
        let batched = cm.decode_step_seconds(&[128; 8]);
        let serial = 8.0 * cm.decode_step_seconds(&[128]);
        assert!(batched < serial, "{batched} vs {serial}");
    }

    #[test]
    fn owlp_decodes_faster_than_baseline() {
        let owlp = model();
        let base = CostModel::new(
            Accelerator::baseline(),
            ModelId::Gpt2Base,
            Dataset::WikiText2,
        );
        let kv = [256usize; 16];
        assert!(owlp.decode_step_seconds(&kv) < base.decode_step_seconds(&kv));
        assert!(owlp.prefill_seconds(256) < base.prefill_seconds(256));
    }

    #[test]
    fn memoisation_is_transparent() {
        let cm = model();
        let a = cm.decode_step_seconds(&[100, 200]);
        let b = cm.decode_step_seconds(&[100, 200]);
        assert_eq!(a, b);
        // Bucketing: lengths in the same power-of-two bucket price equally.
        assert_eq!(cm.attention_seconds(65), cm.attention_seconds(128));
    }

    fn cosim_model() -> CostModel {
        CostModel::with_cosim(Accelerator::owlp(), ModelId::Gpt2Base, Dataset::WikiText2)
    }

    #[test]
    fn cosim_source_is_positive_monotone_and_memoised() {
        let cm = cosim_model();
        assert_eq!(cm.source(), CostSource::Cosim);
        assert_eq!(model().source(), CostSource::ClosedForm);
        assert_eq!(cm.prefill_seconds(1), 0.0);
        let p_short = cm.prefill_seconds(64);
        let p_long = cm.prefill_seconds(512);
        assert!(p_short > 0.0);
        assert!(p_long > p_short);
        let d_small = cm.decode_step_seconds(&[64; 4]);
        let d_big = cm.decode_step_seconds(&[1024; 4]);
        assert!(d_small > 0.0);
        assert!(d_big > d_small, "{d_big} vs {d_small}");
        // The memo tables are shared with the closed-form path, so the
        // second lookup must reproduce the first bit-for-bit.
        assert_eq!(d_small, cm.decode_step_seconds(&[64; 4]));
    }

    #[test]
    fn cosim_source_preserves_the_owlp_win() {
        let owlp = cosim_model();
        let base = CostModel::with_cosim(
            Accelerator::baseline(),
            ModelId::Gpt2Base,
            Dataset::WikiText2,
        );
        let kv = [256usize; 16];
        assert!(owlp.decode_step_seconds(&kv) < base.decode_step_seconds(&kv));
        assert!(owlp.prefill_seconds(256) < base.prefill_seconds(256));
    }

    #[test]
    fn cosim_prices_stay_near_the_closed_form_prices() {
        // Same workload shapes, two latency models: the event-driven
        // price refines, not replaces, the closed-form overlap.
        let closed = model();
        let cosim = cosim_model();
        for (a, b) in [
            (closed.prefill_seconds(128), cosim.prefill_seconds(128)),
            (closed.projection_seconds(16), cosim.projection_seconds(16)),
            (closed.attention_seconds(512), cosim.attention_seconds(512)),
        ] {
            let ratio = b / a;
            assert!((0.4..=2.5).contains(&ratio), "cosim {b} vs closed {a}");
        }
    }
}
